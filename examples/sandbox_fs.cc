// Filesystem sandboxing demo (paper §3.4): the same module runs against
// two preopens — one read-write, one read-only — and demonstrates that
//   (a) the module sees virtual names, never host paths,
//   (b) writes to the read-only mount are refused in userspace,
//   (c) ".."-escapes never leave the sandbox.
//
//   $ ./sandbox_fs
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "embedder/embedder.h"
#include "toolchain/mpi_imports.h"
#include "wasm/builder.h"

using namespace mpiwasm;
using wasm::Op;
using wasm::ValType;

namespace {

constexpr ValType I32 = ValType::kI32;
constexpr ValType I64 = ValType::kI64;

// Tries path_open(dirfd, path, write) and reports the WASI errno through
// proc_exit — a probe for what the sandbox permits.
std::vector<u8> build_probe(i32 dirfd, const std::string& path, bool write) {
  wasm::ModuleBuilder b;
  toolchain::MpiImports mpi = toolchain::declare_mpi_imports(b, {});
  u32 path_open = b.import_func(
      "wasi_snapshot_preview1", "path_open",
      {{I32, I32, I32, I32, I32, I64, I64, I32, I32}, {I32}});
  u32 proc_exit =
      b.import_func("wasi_snapshot_preview1", "proc_exit", {{I32}, {}});
  b.add_memory(1);
  b.export_memory();
  b.add_data_string(4096, path);
  auto& f = b.begin_func({{}, {}}, "_start");
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(dirfd);
  f.i32_const(0);
  f.i32_const(4096);
  f.i32_const(i32(path.size()));
  f.i32_const(write ? 9 : 0);             // O_CREAT|O_TRUNC for writes
  f.i64_const(write ? (1 << 6) : (1 << 1));
  f.i64_const(0);
  f.i32_const(0);
  f.i32_const(2048);
  f.call(path_open);
  f.call(proc_exit);  // exit code = WASI errno (0 on success)
  f.end();
  return b.build();
}

int run_probe(const embed::EmbedderConfig& cfg, i32 dirfd,
              const std::string& path, bool write) {
  auto bytes = build_probe(dirfd, path, write);
  embed::Embedder emb(cfg);
  return emb.run_world({bytes.data(), bytes.size()}, 1).exit_code;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  auto rw_dir = fs::temp_directory_path() / "mpiwasm-sandbox-rw";
  auto ro_dir = fs::temp_directory_path() / "mpiwasm-sandbox-ro";
  fs::create_directories(rw_dir);
  fs::create_directories(ro_dir);
  {
    std::ofstream f(ro_dir / "dataset.txt");
    f << "reference input\n";
  }

  embed::EmbedderConfig cfg;
  // The embedder's -d flag: rw_dir mounted read-write as "/scratch",
  // ro_dir read-only as "/input". The module never sees the host paths.
  cfg.preopens = {{rw_dir.string(), "scratch", false},
                  {ro_dir.string(), "input", true}};

  struct Probe {
    const char* what;
    i32 dirfd;
    std::string path;
    bool write;
    bool expect_ok;
  };
  const Probe probes[] = {
      {"write to /scratch/out.dat", 3, "out.dat", true, true},
      {"read /input/dataset.txt", 4, "dataset.txt", false, true},
      {"WRITE to read-only /input", 4, "evil.dat", true, false},
      {"escape via /scratch/../../etc/passwd", 3, "../../etc/passwd", false,
       false},
      {"absolute host path /etc/passwd", 3, "/etc/passwd", false, false},
  };
  int failures = 0;
  for (const Probe& p : probes) {
    int err = run_probe(cfg, p.dirfd, p.path, p.write);
    bool ok = err == 0;
    bool pass = ok == p.expect_ok;
    std::printf("  %-40s -> %-12s [%s]\n", p.what,
                ok ? "ALLOWED" : ("errno " + std::to_string(err)).c_str(),
                pass ? "as expected" : "UNEXPECTED");
    failures += pass ? 0 : 1;
  }
  fs::remove_all(rw_dir);
  fs::remove_all(ro_dir);
  if (failures == 0)
    std::printf("sandbox behaves per paper §3.4: isolation holds\n");
  return failures == 0 ? 0 : 1;
}
