// Integer sort demo: runs the NPB-IS-style kernel (the toolchain's
// distribution-format artifact) at several scales and both engine
// extremes, showing the "compile once, run with any embedder
// configuration" story plus the compilation cache (§3.3).
//
//   $ ./integer_sort_demo
#include <cstdio>
#include <filesystem>

#include "benchlib/harness.h"
#include "embedder/embedder.h"
#include "toolchain/kernels.h"

using namespace mpiwasm;

int main() {
  toolchain::IsParams p;
  p.keys_per_rank = 1 << 13;
  p.repetitions = 3;
  auto bytes = toolchain::build_is_module(p);
  std::printf("IS kernel: %zu bytes of Wasm, %u keys/rank\n", bytes.size(),
              p.keys_per_rank);

  auto cache_dir = std::filesystem::temp_directory_path() / "mpiwasm-is-demo";
  std::filesystem::remove_all(cache_dir);

  for (rt::EngineTier tier :
       {rt::EngineTier::kInterp, rt::EngineTier::kOptimizing}) {
    for (int ranks : {2, 4}) {
      bench::ReportCollector collector;
      embed::EmbedderConfig cfg;
      cfg.engine.tier = tier;
      cfg.engine.enable_cache = true;
      cfg.engine.cache_dir = cache_dir.string();
      cfg.extra_imports = collector.hook();
      embed::Embedder embedder(cfg);
      auto cm = embedder.compile({bytes.data(), bytes.size()});
      auto result = embedder.run_world(cm, ranks);
      auto rows = collector.rows_with_id(p.report_id);
      if (result.exit_code != 0 || rows.empty() || rows[0].b != 1.0) {
        std::fprintf(stderr, "IS run failed (tier=%s ranks=%d)\n",
                     rt::tier_name(tier), ranks);
        return 1;
      }
      std::printf("tier=%-10s ranks=%d: %8.2f Mop/s  verification OK%s\n",
                  rt::tier_name(tier), ranks, rows[0].a,
                  cm->loaded_from_cache ? "  [cache hit]" : "");
    }
  }
  std::filesystem::remove_all(cache_dir);
  return 0;
}
