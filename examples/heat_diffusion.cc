// Heat diffusion: a domain-decomposed 1-D explicit heat equation solver
// authored as a Wasm MPI application — the halo-exchange pattern the
// paper's intro motivates (large-scale scientific stencil codes).
//
// Each rank owns a slab of the rod; every timestep exchanges boundary
// temperatures with its neighbours via MPI_Sendrecv and applies
//   u'[i] = u[i] + alpha * (u[i-1] - 2 u[i] + u[i+1]).
// Rank 0 prints the rod's mean temperature trajectory.
//
//   $ ./heat_diffusion
#include <cmath>
#include <cstdio>

#include "benchlib/harness.h"
#include "embedder/abi.h"
#include "embedder/embedder.h"
#include "toolchain/mpi_imports.h"
#include "wasm/builder.h"

using namespace mpiwasm;
namespace abi = embed::abi;
using wasm::Op;
using wasm::ValType;

namespace {

constexpr u32 kN = 512;        // cells per rank
constexpr u32 kSteps = 200;
constexpr u32 kU0 = 1 << 16;   // u  (with ghost cells)
constexpr u32 kU1 = kU0 + (kN + 2) * 8;

std::vector<u8> build_heat_module() {
  wasm::ModuleBuilder b;
  toolchain::MpiImportSet set;
  set.collectives = true;
  set.sendrecv = true;
  toolchain::MpiImports mpi = toolchain::declare_mpi_imports(b, set);
  u32 report = toolchain::declare_report_import(b);
  b.add_memory(4);
  b.export_memory();
  u32 g_rank = b.add_global(ValType::kI32, true, 0);
  u32 g_size = b.add_global(ValType::kI32, true, 1);

  auto& f = b.begin_func({{}, {}}, "_start");
  u32 off = f.add_local(ValType::kI32);
  u32 lim = f.add_local(ValType::kI32);
  u32 step = f.add_local(ValType::kI32);
  u32 step_lim = f.add_local(ValType::kI32);
  u32 mean = f.add_local(ValType::kF64);

  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(1024);
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(1024);
  f.mem_op(Op::kI32Load);
  f.global_set(g_rank);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(1032);
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(1032);
  f.mem_op(Op::kI32Load);
  f.global_set(g_size);

  // Initial condition: a hot spot on rank 0 (u = 100 in the first cells).
  f.global_get(g_rank);
  f.op(Op::kI32Eqz);
  f.if_();
  f.i32_const(i32(8 * 64 + 8));
  f.local_set(lim);
  f.for_loop_i32(off, 8, lim, 8, [&] {
    f.i32_const(i32(kU0));
    f.local_get(off);
    f.op(Op::kI32Add);
    f.f64_const(100.0);
    f.mem_op(Op::kF64Store);
  });
  f.end();

  f.i32_const(i32(kSteps));
  f.local_set(step_lim);
  f.for_loop_i32(step, 0, step_lim, 1, [&] {
    // Halo exchange (left neighbour, then right neighbour).
    f.global_get(g_rank);
    f.i32_const(0);
    f.op(Op::kI32GtS);
    f.if_();
    f.i32_const(i32(kU0 + 8));
    f.i32_const(1);
    f.i32_const(abi::MPI_DOUBLE);
    f.global_get(g_rank);
    f.i32_const(1);
    f.op(Op::kI32Sub);
    f.i32_const(2);
    f.i32_const(i32(kU0));
    f.i32_const(1);
    f.i32_const(abi::MPI_DOUBLE);
    f.global_get(g_rank);
    f.i32_const(1);
    f.op(Op::kI32Sub);
    f.i32_const(1);
    f.i32_const(abi::MPI_COMM_WORLD);
    f.i32_const(abi::MPI_STATUS_IGNORE);
    f.call(mpi.sendrecv);
    f.op(Op::kDrop);
    f.end();
    f.global_get(g_rank);
    f.global_get(g_size);
    f.i32_const(1);
    f.op(Op::kI32Sub);
    f.op(Op::kI32LtS);
    f.if_();
    f.i32_const(i32(kU0 + 8 * kN));
    f.i32_const(1);
    f.i32_const(abi::MPI_DOUBLE);
    f.global_get(g_rank);
    f.i32_const(1);
    f.op(Op::kI32Add);
    f.i32_const(1);
    f.i32_const(i32(kU0 + 8 * (kN + 1)));
    f.i32_const(1);
    f.i32_const(abi::MPI_DOUBLE);
    f.global_get(g_rank);
    f.i32_const(1);
    f.op(Op::kI32Add);
    f.i32_const(2);
    f.i32_const(abi::MPI_COMM_WORLD);
    f.i32_const(abi::MPI_STATUS_IGNORE);
    f.call(mpi.sendrecv);
    f.op(Op::kDrop);
    f.end();
    // Reflecting (Neumann) boundaries at the global rod ends, so total
    // heat is exactly conserved: ghost = adjacent interior cell.
    f.global_get(g_rank);
    f.op(Op::kI32Eqz);
    f.if_();
    f.i32_const(i32(kU0));
    f.i32_const(i32(kU0 + 8));
    f.mem_op(Op::kF64Load);
    f.mem_op(Op::kF64Store);
    f.end();
    f.global_get(g_rank);
    f.global_get(g_size);
    f.i32_const(1);
    f.op(Op::kI32Sub);
    f.op(Op::kI32Eq);
    f.if_();
    f.i32_const(i32(kU0 + 8 * (kN + 1)));
    f.i32_const(i32(kU0 + 8 * kN));
    f.mem_op(Op::kF64Load);
    f.mem_op(Op::kF64Store);
    f.end();
    // Stencil update into kU1, then copy back.
    f.i32_const(i32(8 * (kN + 1)));
    f.local_set(lim);
    f.for_loop_i32(off, 8, lim, 8, [&] {
      f.i32_const(i32(kU1));
      f.local_get(off);
      f.op(Op::kI32Add);
      f.i32_const(i32(kU0));
      f.local_get(off);
      f.op(Op::kI32Add);
      f.mem_op(Op::kF64Load);
      f.f64_const(0.25);  // alpha
      f.i32_const(i32(kU0 - 8));
      f.local_get(off);
      f.op(Op::kI32Add);
      f.mem_op(Op::kF64Load);
      f.i32_const(i32(kU0));
      f.local_get(off);
      f.op(Op::kI32Add);
      f.mem_op(Op::kF64Load);
      f.f64_const(2.0);
      f.op(Op::kF64Mul);
      f.op(Op::kF64Sub);
      f.i32_const(i32(kU0 + 8));
      f.local_get(off);
      f.op(Op::kI32Add);
      f.mem_op(Op::kF64Load);
      f.op(Op::kF64Add);
      f.op(Op::kF64Mul);
      f.op(Op::kF64Add);
      f.mem_op(Op::kF64Store);
    });
    f.i32_const(i32(kU0 + 8));
    f.i32_const(i32(kU1 + 8));
    f.i32_const(i32(8 * kN));
    f.op(Op::kMemoryCopy);
  });

  // mean temperature = allreduce(sum u) / (N * size)
  f.f64_const(0);
  f.local_set(mean);
  f.i32_const(i32(8 * (kN + 1)));
  f.local_set(lim);
  f.for_loop_i32(off, 8, lim, 8, [&] {
    f.local_get(mean);
    f.i32_const(i32(kU0));
    f.local_get(off);
    f.op(Op::kI32Add);
    f.mem_op(Op::kF64Load);
    f.op(Op::kF64Add);
    f.local_set(mean);
  });
  f.i32_const(1040);
  f.local_get(mean);
  f.mem_op(Op::kF64Store);
  f.i32_const(1040);
  f.i32_const(1048);
  f.i32_const(1);
  f.i32_const(abi::MPI_DOUBLE);
  f.i32_const(abi::MPI_SUM);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.allreduce);
  f.op(Op::kDrop);
  f.global_get(g_rank);
  f.op(Op::kI32Eqz);
  f.if_();
  f.i32_const(0);  // report id
  f.i32_const(1048);
  f.mem_op(Op::kF64Load);
  f.global_get(g_size);
  f.op(Op::kF64ConvertI32S);
  f.f64_const(f64(kN));
  f.op(Op::kF64Mul);
  f.op(Op::kF64Div);
  f.i32_const(1048);
  f.mem_op(Op::kF64Load);
  f.f64_const(f64(kSteps));
  f.call(report);
  f.end();
  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();
  return b.build();
}

}  // namespace

int main() {
  std::printf("1-D heat diffusion: %u cells/rank, %u steps, 4 ranks\n", kN,
              kSteps);
  auto bytes = build_heat_module();
  std::printf("module: %zu bytes of Wasm\n", bytes.size());

  bench::ReportCollector collector;
  embed::EmbedderConfig cfg;
  cfg.extra_imports = collector.hook();
  embed::Embedder embedder(cfg);
  auto result = embedder.run_world({bytes.data(), bytes.size()}, 4);
  if (result.exit_code != 0) {
    std::fprintf(stderr, "run failed: exit=%d\n", result.exit_code);
    return 1;
  }
  for (const auto& row : collector.rows()) {
    std::printf("mean temperature %.6f (heat conserved: total %.3f)\n", row.a,
                row.b);
    // With reflecting boundaries, total heat (64 hot cells * 100.0) is
    // conserved up to FP rounding across all ranks and timesteps.
    if (std::fabs(row.b - 6400.0) > 1e-6) {
      std::fprintf(stderr, "conservation violated!\n");
      return 1;
    }
  }
  std::printf("OK: heat conserved across %u distributed timesteps\n", kSteps);
  return 0;
}
