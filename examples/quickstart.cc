// Quickstart: build an MPI application as a Wasm module, compile it once,
// and run it on four MPI ranks through the embedder — the paper's Figure 1
// workflow end to end in ~60 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "embedder/abi.h"
#include "embedder/embedder.h"
#include "toolchain/mpi_imports.h"
#include "wasm/builder.h"

using namespace mpiwasm;
namespace abi = embed::abi;

int main() {
  // --- 1. "Compile the application to Wasm" -------------------------------
  // A tiny MPI program: every rank contributes rank+1, the sum is
  // Allreduced, rank 0 prints it via WASI fd_write.
  wasm::ModuleBuilder b;
  toolchain::MpiImportSet set;
  set.collectives = true;
  toolchain::MpiImports mpi = toolchain::declare_mpi_imports(b, set);
  u32 fd_write = b.import_func(
      "wasi_snapshot_preview1", "fd_write",
      {{wasm::ValType::kI32, wasm::ValType::kI32, wasm::ValType::kI32,
        wasm::ValType::kI32},
       {wasm::ValType::kI32}});
  b.add_memory(1);
  b.export_memory();
  b.add_data_string(4096, "sum of (rank+1) over all ranks: XY\n");

  auto& f = b.begin_func({{}, {}}, "_start");
  using wasm::Op;
  u32 rank = f.add_local(wasm::ValType::kI32);
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(1024);
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(1024);
  f.mem_op(Op::kI32Load);
  f.local_set(rank);
  // in = rank + 1; MPI_Allreduce(SUM)
  f.i32_const(2048);
  f.local_get(rank);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.mem_op(Op::kI32Store);
  f.i32_const(2048);
  f.i32_const(2056);
  f.i32_const(1);
  f.i32_const(abi::MPI_INT);
  f.i32_const(abi::MPI_SUM);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.allreduce);
  f.op(Op::kDrop);
  // rank 0: patch the two digits and print.
  f.local_get(rank);
  f.op(Op::kI32Eqz);
  f.if_();
  {
    f.i32_const(4096 + 32);  // "XY" position: tens digit
    f.i32_const(2056);
    f.mem_op(Op::kI32Load);
    f.i32_const(10);
    f.op(Op::kI32DivU);
    f.i32_const('0');
    f.op(Op::kI32Add);
    f.mem_op(Op::kI32Store8);
    f.i32_const(4096 + 33);  // ones digit
    f.i32_const(2056);
    f.mem_op(Op::kI32Load);
    f.i32_const(10);
    f.op(Op::kI32RemU);
    f.i32_const('0');
    f.op(Op::kI32Add);
    f.mem_op(Op::kI32Store8);
    f.i32_const(3000);
    f.i32_const(4096);
    f.mem_op(Op::kI32Store);
    f.i32_const(3004);
    f.i32_const(35);
    f.mem_op(Op::kI32Store);
    f.i32_const(1);
    f.i32_const(3000);
    f.i32_const(1);
    f.i32_const(3008);
    f.call(fd_write);
    f.op(Op::kDrop);
  }
  f.end();
  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();
  std::vector<u8> wasm_bytes = b.build();
  std::printf("built module: %zu bytes of Wasm\n", wasm_bytes.size());

  // --- 2. "Execute on any platform with a supporting embedder" ------------
  embed::EmbedderConfig cfg;
  cfg.engine.tier = rt::EngineTier::kOptimizing;
  cfg.engine.enable_cache = true;  // §3.3: repeated runs skip compilation
  embed::Embedder embedder(cfg);
  auto cm = embedder.compile({wasm_bytes.data(), wasm_bytes.size()});
  std::printf("compiled with tier=%s in %.2fms%s\n", rt::tier_name(cm->tier),
              cm->compile_ms, cm->loaded_from_cache ? " (from cache)" : "");

  embed::RunResult result = embedder.run_world(cm, /*ranks=*/4);
  std::printf("world finished: exit=%d wall=%.3fs\n", result.exit_code,
              result.wall_seconds);
  return result.exit_code;
}
