// bench_tierup: startup-to-steady-state crossover of the tiered engine.
//
// The four static tiers force a global choice on the Table-1 trade-off
// curve: instant startup (interp) or peak throughput (optimizing). Tiered
// mode should deliver both ends at once on a per-function basis:
//   - time-to-first-result within ~2x of the interpreter (compile() only
//     predecodes), and
//   - steady-state throughput >= 90% of the optimizing tier (hot functions
//     get promoted to the same optimized regcode).
// Section 3 shows per-function cache warm-start: a second execution of the
// same module serves its promotions from (hash, func index, tier) cache
// entries instead of recompiling.
#include <filesystem>

#include "bench_common.h"
#include "support/timing.h"
#include "wasm/builder.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using wasm::Op;
using wasm::ValType;

namespace {

std::vector<u8> loop_module() {
  // run(n): i64 acc = 0; for (i = 0; i < n; ++i) acc += i*i; return acc
  wasm::ModuleBuilder b;
  auto& f = b.begin_func({{ValType::kI32}, {ValType::kI64}}, "run");
  u32 i = f.add_local(ValType::kI32);
  u32 acc = f.add_local(ValType::kI64);
  f.for_loop_i32(i, 0, 0, 1, [&] {
    f.local_get(acc);
    f.local_get(i);
    f.op(Op::kI64ExtendI32S);
    f.local_get(i);
    f.op(Op::kI64ExtendI32S);
    f.op(Op::kI64Mul);
    f.op(Op::kI64Add);
    f.local_set(acc);
  });
  f.local_get(acc);
  f.end();
  return b.build();
}

struct Measurement {
  std::string name;
  f64 compile_ms = 0;   // engine compile() cost
  f64 first_ms = 0;     // first invocation
  f64 ttfr_ms = 0;      // compile + first invocation
  f64 steady_mops = 0;  // loop iterations/s after warm-up, in millions
};

Measurement measure_micro(const rt::EngineConfig& cfg, const std::string& name,
                          i32 loop_n, int warm_calls, int timed_calls) {
  auto bytes = loop_module();
  Measurement m;
  m.name = name;

  Stopwatch compile_watch;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  m.compile_ms = compile_watch.elapsed_ms();

  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  auto arg = rt::Value::from_i32(loop_n);

  Stopwatch first_watch;
  inst.invoke("run", {&arg, 1});
  m.first_ms = first_watch.elapsed_ms();
  m.ttfr_ms = m.compile_ms + m.first_ms;

  for (int k = 0; k < warm_calls; ++k) inst.invoke("run", {&arg, 1});
  Stopwatch steady_watch;
  for (int k = 0; k < timed_calls; ++k) inst.invoke("run", {&arg, 1});
  f64 s = steady_watch.elapsed_s();
  m.steady_mops = f64(loop_n) * timed_calls / s / 1e6;
  return m;
}

void micro_crossover() {
  print_subhead("micro loop kernel: startup vs steady-state by tier");
  const i32 loop_n = 50000;
  const int warm = 48, timed = 64;

  std::vector<Measurement> rows;
  for (rt::EngineTier tier :
       {rt::EngineTier::kInterp, rt::EngineTier::kBaseline,
        rt::EngineTier::kLightOpt, rt::EngineTier::kOptimizing}) {
    rt::EngineConfig cfg;
    cfg.tier = tier;
    rows.push_back(measure_micro(cfg, rt::tier_name(tier), loop_n, warm, timed));
  }
  rt::EngineConfig tiered;
  tiered.tier = rt::EngineTier::kTiered;
  tiered.tierup_baseline_threshold = 4;
  tiered.tierup_opt_threshold = 16;
  rows.push_back(measure_micro(tiered, "tiered(4,16)", loop_n, warm, timed));

  f64 opt_steady = 0, interp_ttfr = 0;
  for (const auto& r : rows) {
    if (r.name == "optimizing") opt_steady = r.steady_mops;
    if (r.name == "interp") interp_ttfr = r.ttfr_ms;
  }
  std::printf("%-14s %12s %12s %12s %14s %12s\n", "tier", "compile ms",
              "first ms", "TTFR ms", "steady Mop/s", "% of opt");
  for (const auto& r : rows) {
    std::printf("%-14s %12.3f %12.3f %12.3f %14.2f %11.1f%%\n",
                r.name.c_str(), r.compile_ms, r.first_ms, r.ttfr_ms,
                r.steady_mops,
                opt_steady > 0 ? 100.0 * r.steady_mops / opt_steady : 0.0);
  }
  const Measurement& t = rows.back();
  std::printf("\n  => tiered steady-state: %.1f%% of optimizing "
              "(target >= 90%%)\n",
              100.0 * t.steady_mops / opt_steady);
  std::printf("  => tiered TTFR: %.2fx interp (target <= 2x)\n",
              interp_ttfr > 0 ? t.ttfr_ms / interp_ttfr : 0.0);
}

void npb_crossover() {
  print_subhead("NPB kernels (2 ranks): wall time by tier");
  struct Cfg {
    std::string name;
    rt::EngineConfig engine;
  };
  std::vector<Cfg> cfgs;
  for (rt::EngineTier tier :
       {rt::EngineTier::kInterp, rt::EngineTier::kBaseline,
        rt::EngineTier::kLightOpt, rt::EngineTier::kOptimizing}) {
    rt::EngineConfig engine;
    engine.tier = tier;
    cfgs.push_back({rt::tier_name(tier), engine});
  }
  rt::EngineConfig tiered;
  tiered.tier = rt::EngineTier::kTiered;
  tiered.tierup_baseline_threshold = 2;
  tiered.tierup_opt_threshold = 8;
  cfgs.push_back({"tiered(2,8)", tiered});

  toolchain::IsParams is;
  is.keys_per_rank = 1 << 12;
  is.repetitions = 4;
  toolchain::DtParams dt;
  dt.doubles_per_msg = 1 << 12;
  dt.repetitions = 8;

  struct Kernel {
    const char* name;
    std::vector<u8> bytes;
  };
  std::vector<Kernel> kernels;
  kernels.push_back({"NPB-IS", toolchain::build_is_module(is)});
  kernels.push_back({"NPB-DT", toolchain::build_dt_module(dt)});

  std::printf("%-8s %-14s %12s %12s %14s %14s\n", "kernel", "tier",
              "compile ms", "wall s", "promoted b/o", "tierup ms");
  for (const auto& kernel : kernels) {
    for (const auto& c : cfgs) {
      embed::EmbedderConfig ec;
      ec.engine = c.engine;
      ReportCollector collector;
      ec.extra_imports = collector.hook();
      embed::Embedder emb(ec);
      auto result =
          emb.run_world({kernel.bytes.data(), kernel.bytes.size()}, 2);
      MW_CHECK(result.exit_code == 0, "kernel failed");
      std::printf("%-8s %-14s %12.3f %12.4f %8llu/%-5llu %14.2f\n",
                  kernel.name, c.name.c_str(), result.compile_ms,
                  result.wall_seconds,
                  (unsigned long long)result.tierup.promoted_baseline,
                  (unsigned long long)result.tierup.promoted_optimizing,
                  result.tierup.tierup_compile_ms);
    }
  }
}

void cache_warm_start() {
  print_subhead("per-function cache: promotions warm-start on a second run");
  namespace fs = std::filesystem;
  auto dir = (fs::temp_directory_path() /
              ("mpiwasm-tierup-cache-" + std::to_string(::getpid())))
                 .string();

  toolchain::IsParams is;
  is.keys_per_rank = 1 << 10;
  is.repetitions = 2;
  auto bytes = toolchain::build_is_module(is);
  rt::EngineConfig cfg;
  cfg.tier = rt::EngineTier::kTiered;
  cfg.tierup_baseline_threshold = 1;
  cfg.tierup_opt_threshold = 1;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;

  for (int run = 0; run < 2; ++run) {
    embed::EmbedderConfig ec;
    ec.engine = cfg;
    ReportCollector collector;
    ec.extra_imports = collector.hook();
    embed::Embedder emb(ec);
    auto result = emb.run_world({bytes.data(), bytes.size()}, 2);
    MW_CHECK(result.exit_code == 0, "IS kernel failed");
    std::printf(
        "  run %d: %llu promotions, %llu from cache, %.2fms tier-up compile\n",
        run + 1,
        (unsigned long long)(result.tierup.promoted_baseline +
                             result.tierup.promoted_optimizing),
        (unsigned long long)result.tierup.func_cache_hits,
        result.tierup.tierup_compile_ms);
  }
  std::printf("  => second run should serve every promotion from the "
              "per-function cache\n");
  std::error_code ec_rm;
  fs::remove_all(dir, ec_rm);
}

}  // namespace

int main() {
  print_banner("Tier-up — lazy per-function compilation crossover");
  micro_crossover();
  npb_crossover();
  cache_warm_start();
  return 0;
}
