// Figure 4: selected IMB routines + HPCG on the AWS Graviton2 profile
// (single-node aarch64, shared-memory transport model).
//
// Paper result: same near-native story as Figure 3 on a different
// architecture — PingPong GM ~1.01x speedup, SendRecv 0.07x slowdown,
// Allreduce 0.10x, Allgather 0.09x, Alltoall 0.10x; HPCG tracks native up
// to 32 ranks (§4.5, Fig. 4f).
#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

int main() {
  print_banner("Figure 4 — IMB + HPCG on the Graviton2 profile");
  const auto profile = simmpi::NetworkProfile::graviton2();
  const int ranks = 4;  // paper: 32 cores on one Graviton2 node; scaled

  const ImbRoutine routines[] = {ImbRoutine::kPingPong, ImbRoutine::kSendRecv,
                                 ImbRoutine::kAllReduce, ImbRoutine::kAllGather,
                                 ImbRoutine::kAlltoall};
  for (ImbRoutine routine : routines) {
    ImbParams p;
    p.routine = routine;
    p.max_bytes = routine == ImbRoutine::kAllGather ||
                          routine == ImbRoutine::kAlltoall
                      ? 1 << 17
                      : 1 << 22;
    p.base_iters = 1 << 19;
    p.max_iters = 100;
    p.min_iters = 3;
    int np = routine == ImbRoutine::kPingPong ? 2 : ranks;
    imb_panel(p, np, profile,
              std::string("fig4_") + imb_routine_name(routine) + ".csv");
  }

  // Figure 4f: HPCG GFLOP/s across rank counts.
  print_subhead("HPCG GFLOP/s vs ranks (Fig. 4f)");
  HpcgParams hp;
  hp.n_per_rank = 1 << 14;
  hp.iterations = 20;
  std::vector<ComparisonRow> rows;
  for (int np : {1, 2, 4}) {
    f64 native_gflops = 0;
    simmpi::World world(np, profile);
    world.run([&](simmpi::Rank& r) {
      auto res = native_hpcg_run(r, hp);
      if (r.rank() == 0) native_gflops = res.gflops;
    });
    auto bytes = build_hpcg_module(hp);
    ReportCollector collector;
    embed::EmbedderConfig cfg;
    cfg.net_profile = profile;
    cfg.extra_imports = collector.hook();
    embed::Embedder emb(cfg);
    emb.run_world({bytes.data(), bytes.size()}, np);
    auto r = collector.rows_with_id(hp.report_id);
    rows.push_back({f64(np), native_gflops, r.empty() ? 0 : r[0].a});
  }
  print_comparison_table("GFLOP/s", rows, /*lower_is_better=*/false);
  write_csv("fig4_hpcg.csv", "ranks,native_gflops,wasm_gflops", rows);
  std::printf(
      "\nNote: the GFLOP/s gap is dominated by our engine executing RegCode\n"
      "through a dispatch loop instead of machine code (DESIGN.md §2); the\n"
      "paper's Wasmer/LLVM backend JITs to native instructions.\n");
  return 0;
}
