// Figure 3: Intel MPI Benchmarks, native vs MPIWasm, on the HPC-system
// profile (Intel OmniPath interconnect model, x86_64).
//
// Paper result being reproduced: MPIWasm's GM average slowdown across all
// message sizes stays in the 0.05x-0.14x band for every routine — neither
// Wasmer's host-call mechanism nor the translation layer adds significant
// overhead to MPI communication (§4.5).
#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

int main() {
  print_banner(
      "Figure 3 — IMB on the HPC profile (OmniPath model): native vs WASM");
  const auto profile = simmpi::NetworkProfile::omnipath();
  const int ranks = 8;  // paper: 768/6144 ranks; scaled to one node

  struct Panel {
    ImbRoutine routine;
    u32 max_bytes;
  };
  // Per-routine sweep caps follow the paper's figure x-axes (collectives
  // with size-scaled buffers stop earlier, §4.5 / Fig. 3e-3i).
  const Panel panels[] = {
      {ImbRoutine::kPingPong, 1 << 22},  {ImbRoutine::kSendRecv, 1 << 22},
      {ImbRoutine::kBcast, 1 << 20},     {ImbRoutine::kAllReduce, 1 << 20},
      {ImbRoutine::kAllGather, 1 << 17}, {ImbRoutine::kAlltoall, 1 << 16},
      {ImbRoutine::kReduce, 1 << 20},    {ImbRoutine::kGather, 1 << 17},
      {ImbRoutine::kScatter, 1 << 17},
  };
  for (const Panel& panel : panels) {
    ImbParams p;
    p.routine = panel.routine;
    p.max_bytes = panel.max_bytes;
    p.base_iters = 1 << 19;
    p.max_iters = 100;
    p.min_iters = 3;
    int np = panel.routine == ImbRoutine::kPingPong ? 2 : ranks;
    imb_panel(p, np, profile,
              std::string("fig3_") + imb_routine_name(panel.routine) + ".csv");
  }
  std::printf(
      "\nPaper reference (GM slowdowns at scale): PingPong 0.05x, SendRecv "
      "0.06x,\nBcast 0.13x, Allreduce 0.06x, Allgather 0.06x, Alltoall "
      "0.10x,\nReduce 0.05-0.12x, Gather 0.10-0.14x, Scatter 0.05-0.08x\n");
  return 0;
}
