// Figure 3: Intel MPI Benchmarks, native vs MPIWasm, on the HPC-system
// profile (Intel OmniPath interconnect model, x86_64).
//
// Paper result being reproduced: MPIWasm's GM average slowdown across all
// message sizes stays in the 0.05x-0.14x band for every routine — neither
// Wasmer's host-call mechanism nor the translation layer adds significant
// overhead to MPI communication (§4.5).
//
// Besides the per-routine CSVs, the run is aggregated into
// BENCH_coll_fig3.json so the collective-latency trajectory is tracked
// in-repo alongside BENCH_coll.json (--smoke shrinks the sweep for CI).
#include <cstring>

#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

namespace {

struct PanelResult {
  std::string routine;
  f64 gm = 0;  // GM slowdown, paper convention
  std::vector<ComparisonRow> rows;
};

void write_json(const std::string& path, const std::vector<PanelResult>& rs,
                bool smoke) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_fig3_imb_hpc\",\n");
  std::fprintf(out, "  \"schema\": 1,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"profile\": \"omnipath\",\n");
  std::fprintf(out, "  \"routines\": [\n");
  for (size_t i = 0; i < rs.size(); ++i) {
    const PanelResult& r = rs[i];
    std::fprintf(out, "    {\"routine\": \"%s\", \"gm_slowdown\": %.4f, "
                      "\"rows\": [\n", r.routine.c_str(), r.gm);
    for (size_t j = 0; j < r.rows.size(); ++j) {
      const ComparisonRow& row = r.rows[j];
      std::fprintf(out,
                   "      {\"bytes\": %.0f, \"native_us\": %.3f, "
                   "\"wasm_us\": %.3f}%s\n",
                   row.x, row.native, row.wasm,
                   j + 1 < r.rows.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", i + 1 < rs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_coll_fig3.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  print_banner(
      "Figure 3 — IMB on the HPC profile (OmniPath model): native vs WASM");
  const auto profile = simmpi::NetworkProfile::omnipath();
  const int ranks = 8;  // paper: 768/6144 ranks; scaled to one node

  struct Panel {
    ImbRoutine routine;
    u32 max_bytes;
  };
  // Per-routine sweep caps follow the paper's figure x-axes (collectives
  // with size-scaled buffers stop earlier, §4.5 / Fig. 3e-3i).
  const Panel panels[] = {
      {ImbRoutine::kPingPong, 1 << 22},  {ImbRoutine::kSendRecv, 1 << 22},
      {ImbRoutine::kBcast, 1 << 20},     {ImbRoutine::kAllReduce, 1 << 20},
      {ImbRoutine::kAllGather, 1 << 17}, {ImbRoutine::kAlltoall, 1 << 16},
      {ImbRoutine::kReduce, 1 << 20},    {ImbRoutine::kGather, 1 << 17},
      {ImbRoutine::kScatter, 1 << 17},   {ImbRoutine::kBarrier, 1},
  };
  std::vector<PanelResult> results;
  for (const Panel& panel : panels) {
    ImbParams p;
    p.routine = panel.routine;
    p.max_bytes = smoke ? std::min(panel.max_bytes, u32(1) << 12)
                        : panel.max_bytes;
    p.base_iters = smoke ? 1 << 14 : 1 << 19;
    p.max_iters = smoke ? 20 : 100;
    p.min_iters = 3;
    int np = panel.routine == ImbRoutine::kPingPong ? 2 : ranks;
    auto rows =
        imb_panel(p, np, profile,
                  std::string("fig3_") + imb_routine_name(panel.routine) +
                      ".csv");
    PanelResult r;
    r.routine = imb_routine_name(panel.routine);
    r.gm = gm_slowdown(rows, /*lower_is_better=*/true);
    r.rows = std::move(rows);
    results.push_back(std::move(r));
  }
  write_json(out_path, results, smoke);
  std::printf(
      "\nPaper reference (GM slowdowns at scale): PingPong 0.05x, SendRecv "
      "0.06x,\nBcast 0.13x, Allreduce 0.06x, Allgather 0.06x, Alltoall "
      "0.10x,\nReduce 0.05-0.12x, Gather 0.10-0.14x, Scatter 0.05-0.08x\n");
  return 0;
}
