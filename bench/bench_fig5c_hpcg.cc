// Figure 5c: HPCG GFLOP/s and memory bandwidth vs rank count, native vs
// MPIWasm.
//
// Paper result: parity up to ~192 ranks, then a growing gap (-14% GFLOP/s
// at 6144 ranks). §4.5 attributes the gap to Allreduce call frequency:
// every CG dot product crosses the embedder's datatype translation, and
// the number of Allreduce calls grows with rank count at fixed global
// problem size. We reproduce that mechanism with a strong-scaling sweep
// (fixed global size => more, smaller, Allreduce-dominated iterations per
// rank as ranks grow).
#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

int main() {
  print_banner("Figure 5c — HPCG strong scaling: native vs WASM");
  const auto profile = simmpi::NetworkProfile::omnipath();
  const u32 global_n = 1 << 16;
  const u32 iters = 30;

  std::vector<ComparisonRow> gflops_rows, gbps_rows;
  for (int np : {1, 2, 4, 8}) {
    HpcgParams p;
    p.n_per_rank = global_n / u32(np);  // strong scaling
    p.iterations = iters;
    // SIMD twin selection follows the MPIWASM_SIMD ablation flag; the
    // native residual check below stays bit-exact in both modes because
    // native_hpcg_run mirrors the SIMD dot's lane-accumulation order.
    p.use_simd = rt::simd_enabled_from_env();

    HpcgResult native{};
    simmpi::World world(np, profile);
    world.run([&](simmpi::Rank& r) {
      auto res = native_hpcg_run(r, p);
      if (r.rank() == 0) native = res;
    });

    auto bytes = build_hpcg_module(p);
    ReportCollector collector;
    embed::EmbedderConfig cfg;
    cfg.net_profile = profile;
    cfg.extra_imports = collector.hook();
    embed::Embedder emb(cfg);
    auto result = emb.run_world({bytes.data(), bytes.size()}, np);
    MW_CHECK(result.exit_code == 0, "hpcg wasm kernel failed");
    auto rows = collector.rows_with_id(p.report_id);
    MW_CHECK(!rows.empty(), "no hpcg report");
    MW_CHECK(rows[0].c == native.residual,
             "wasm/native residual mismatch — translation bug");

    gflops_rows.push_back({f64(np), native.gflops, rows[0].a});
    gbps_rows.push_back({f64(np), native.gbps, rows[0].b});
  }

  print_subhead("HPCG GFLOP/s vs ranks (fixed global problem)");
  print_comparison_table("GFLOP/s", gflops_rows, /*lower_is_better=*/false);
  print_subhead("HPCG effective bandwidth GB/s vs ranks");
  print_comparison_table("GB/s", gbps_rows, /*lower_is_better=*/false);
  write_csv("fig5c_gflops.csv", "ranks,native,wasm", gflops_rows);
  write_csv("fig5c_gbps.csv", "ranks,native,wasm", gbps_rows);

  // The §4.5 mechanism, made explicit: Allreduce calls per run grow 3x per
  // CG iteration regardless of local size; at fixed global size the
  // per-rank compute shrinks while translation work per call is constant.
  std::printf(
      "\nAllreduce calls per run: %u (3 per CG iteration x %u iterations),\n"
      "independent of rank count — per-call embedder overhead therefore\n"
      "grows relative to useful work as ranks increase (paper: -14%% at\n"
      "6144 ranks; shape to check: wasm/native ratio falls with ranks).\n",
      3 * iters, iters);
  return 0;
}
