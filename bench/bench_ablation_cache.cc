// Ablation B (DESIGN.md / paper §3.3): the compilation cache. The paper
// picks the slowest-compiling backend (LLVM) for its runtime speed and
// amortizes compilation with a BLAKE-3-keyed FileSystemCache; repeated
// executions must pay (almost) nothing.
#include <filesystem>

#include "bench_common.h"

#include "runtime/engine.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

int main() {
  print_banner("Ablation — compilation cache: cold vs warm compile times");

  auto cache_dir = std::filesystem::temp_directory_path() /
                   "mpiwasm-bench-cache";
  std::filesystem::remove_all(cache_dir);

  HpcgParams p;
  p.n_per_rank = 1 << 14;
  auto bytes = build_hpcg_module(p);

  std::printf("%-14s %16s %16s %12s\n", "tier", "cold (ms)", "warm (ms)",
              "amortized");
  for (rt::EngineTier tier :
       {rt::EngineTier::kBaseline, rt::EngineTier::kOptimizing}) {
    rt::EngineConfig ec;
    ec.tier = tier;
    ec.enable_cache = true;
    ec.cache_dir = cache_dir.string();

    auto cold = rt::compile({bytes.data(), bytes.size()}, ec);
    MW_CHECK(!cold->loaded_from_cache, "expected cold compile");
    // Median of 5 warm loads.
    std::vector<f64> warm_times;
    for (int i = 0; i < 5; ++i) {
      auto warm = rt::compile({bytes.data(), bytes.size()}, ec);
      MW_CHECK(warm->loaded_from_cache, "expected cache hit");
      warm_times.push_back(warm->compile_ms);
    }
    f64 warm_ms = percentile(warm_times, 50);
    std::printf("%-14s %16.3f %16.3f %11.1fx\n", rt::tier_name(tier),
                cold->compile_ms, warm_ms,
                warm_ms > 0 ? cold->compile_ms / warm_ms : 0);
  }
  std::filesystem::remove_all(cache_dir);
  std::printf(
      "\nShape to check: warm loads are a large constant factor cheaper than\n"
      "cold compiles, and the advantage grows with the optimizing tier —\n"
      "the paper's rationale for shipping LLVM + cache (§3.3).\n");
  return 0;
}
