// Figure 6: datatype translation overhead inside the embedder's Send path.
//
// Paper result: translating a datatype handle costs ~85-105ns on average
// (BYTE 85.44, CHAR 84.72, INT 99.78, FLOAT 96.32, DOUBLE 103.35, LONG
// 104.79), roughly flat in message size until >256KiB where read-lock
// acquisition on the shared Env state gets more expensive (§4.6).
#include <map>

#include "bench_common.h"

#include "embedder/abi.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;
namespace abi = embed::abi;

namespace {

const char* dt_name(i32 handle) {
  switch (handle) {
    case abi::MPI_BYTE: return "MPI_BYTE";
    case abi::MPI_CHAR: return "MPI_CHAR";
    case abi::MPI_INT: return "MPI_INT";
    case abi::MPI_FLOAT: return "MPI_FLOAT";
    case abi::MPI_DOUBLE: return "MPI_DOUBLE";
    case abi::MPI_LONG: return "MPI_LONG";
    default: return "?";
  }
}

}  // namespace

int main() {
  print_banner("Figure 6 — datatype translation overhead in MPIWasm");

  DatatypePingPongParams p;
  p.max_bytes = 1 << 22;  // 8B .. 4MiB in x8 steps
  p.iters_per_size = 64;
  auto bytes = build_datatype_pingpong_module(p);

  ReportCollector collector;
  embed::EmbedderConfig cfg;
  cfg.net_profile = simmpi::NetworkProfile::omnipath();
  cfg.record_translation = true;
  cfg.extra_imports = collector.hook();
  embed::Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, 2);
  MW_CHECK(result.exit_code == 0, "datatype probe failed");

  // Aggregate instrumented samples by (datatype, message size).
  std::map<std::pair<i32, u64>, RunningStat> cells;
  std::map<i32, RunningStat> by_dt;
  for (const auto& s : result.translation_samples) {
    if (s.msg_bytes == 0) continue;
    cells[{s.wasm_datatype, s.msg_bytes}].add(f64(s.ns));
    by_dt[s.wasm_datatype].add(f64(s.ns));
  }

  std::printf("%-12s", "bytes");
  const i32 dts[] = {abi::MPI_BYTE, abi::MPI_CHAR,  abi::MPI_INT,
                     abi::MPI_FLOAT, abi::MPI_DOUBLE, abi::MPI_LONG};
  for (i32 dt : dts) std::printf(" %11s", dt_name(dt));
  std::printf("   (mean translation ns)\n");
  for (u64 size = 8; size <= p.max_bytes; size *= 8) {
    std::printf("%-12llu", (unsigned long long)size);
    for (i32 dt : dts) {
      auto it = cells.find({dt, size});
      std::printf(" %11.1f", it == cells.end() ? 0.0 : it->second.mean());
    }
    std::printf("\n");
  }
  std::printf("\n%-12s", "mean[ns]");
  for (i32 dt : dts) std::printf(" %11.1f", by_dt[dt].mean());
  std::printf("\n");

  std::printf(
      "\nPaper reference: BYTE 85.4ns, CHAR 84.7ns, INT 99.8ns, FLOAT "
      "96.3ns,\nDOUBLE 103.4ns, LONG 104.8ns averaged over sizes; overhead "
      "rises for\nmessages > 256KiB (read-lock acquisition on the shared Env "
      "state).\nShape to check: O(100ns) flat-ish per-call cost, all six "
      "datatypes close.\n");
  return 0;
}
