// Shared helpers for the per-figure bench binaries.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "embedder/embedder.h"
#include "toolchain/kernels.h"
#include "toolchain/native_kernels.h"

namespace mpiwasm::bench {

/// Runs an IMB routine natively on `ranks` ranks; returns rank-0 rows.
inline std::vector<toolchain::ImbRow> run_native_imb(
    const toolchain::ImbParams& p, int ranks,
    const simmpi::NetworkProfile& profile) {
  std::vector<toolchain::ImbRow> rows;
  simmpi::World world(ranks, profile);
  world.run([&](simmpi::Rank& r) {
    auto local = toolchain::native_imb_run(r, p);
    if (r.rank() == 0) rows = std::move(local);
  });
  return rows;
}

/// Runs the Wasm build of the same routine through the embedder.
inline std::vector<toolchain::ImbRow> run_wasm_imb(
    const toolchain::ImbParams& p, int ranks, embed::EmbedderConfig cfg) {
  auto bytes = toolchain::build_imb_module(p);
  ReportCollector collector;
  cfg.extra_imports = collector.hook();
  embed::Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, ranks);
  MW_CHECK(result.exit_code == 0, "imb wasm kernel failed");
  std::vector<toolchain::ImbRow> rows;
  for (const auto& r : collector.rows_with_id(p.report_id))
    rows.push_back({u32(r.a), r.b, u32(r.c)});
  return rows;
}

/// Zips native/wasm rows by message size.
inline std::vector<ComparisonRow> zip_rows(
    const std::vector<toolchain::ImbRow>& native,
    const std::vector<toolchain::ImbRow>& wasm_rows) {
  std::vector<ComparisonRow> out;
  std::map<u32, f64> wasm_by_size;
  for (const auto& w : wasm_rows) wasm_by_size[w.bytes] = w.t_avg_us;
  for (const auto& n : native) {
    auto it = wasm_by_size.find(n.bytes);
    if (it != wasm_by_size.end())
      out.push_back({f64(n.bytes), n.t_avg_us, it->second});
  }
  return out;
}

/// One full IMB comparison (Figure 3/4 panel). Returns the zipped rows so
/// callers can aggregate them into trajectory artifacts (BENCH_*.json).
inline std::vector<ComparisonRow> imb_panel(
    const toolchain::ImbParams& p, int ranks,
    const simmpi::NetworkProfile& profile, const std::string& csv_path = "") {
  print_subhead(std::string(toolchain::imb_routine_name(p.routine)) + ", " +
                std::to_string(ranks) + " ranks, profile=" + profile.name);
  auto native = run_native_imb(p, ranks, profile);
  embed::EmbedderConfig cfg;
  cfg.net_profile = profile;
  auto wasm_rows = run_wasm_imb(p, ranks, cfg);
  auto rows = zip_rows(native, wasm_rows);
  print_comparison_table("t_avg [us]", rows, /*lower_is_better=*/true);
  if (!csv_path.empty())
    write_csv(csv_path, "bytes,native_us,wasm_us", rows);
  return rows;
}

}  // namespace mpiwasm::bench
