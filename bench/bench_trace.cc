// bench_trace: the mpiwasm-trace overhead contract.
//
// Two panels:
//
//   kernels — daxpy + stencil3 micro kernels at the Optimizing tier with
//     tracing *not enabled*. These rows are the cross-build gate: CI builds
//     once with -DMPIWASM_TRACE=OFF (instrumentation compiled out), records
//     its JSON, then runs the default build with `--baseline that.json`.
//     The default build's compiled-in-but-disabled timings must be within
//     1% of the compiled-out baseline — the "zero cost when off" claim.
//
//   mpi — an allreduce loop through the full embedder at 4 ranks, timed
//     with tracing+profiling off and then on, reporting the enabled-mode
//     overhead ratio and the event volume. Informational (enabled tracing
//     is allowed to cost), recorded in BENCH_trace.json for trend-watching.
//
// Output: a table on stdout and BENCH_trace.json (path via --out). --smoke
// shrinks sizes for CI (schema identical, timings still gate-worthy for the
// kernel panel since both builds shrink identically).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "embedder/embedder.h"
#include "runtime/engine.h"
#include "runtime/instance.h"
#include "support/timing.h"
#include "support/trace.h"
#include "toolchain/kernels.h"

using namespace mpiwasm;
using toolchain::MicroKernel;
using toolchain::MicroKernelParams;

namespace {

constexpr f64 kOffGate = 1.01;  // disabled tracing: <= 1% over no-trace build

/// Min-of-timed seconds per run(reps) call: min is the right statistic for
/// a noise-gated comparison — both builds see the same best-case path.
f64 time_kernel(const MicroKernelParams& p, i32 reps, int warm, int timed) {
  auto bytes = toolchain::build_micro_kernel_module(p);
  rt::EngineConfig cfg;
  cfg.tier = rt::EngineTier::kOptimizing;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  inst.invoke("init");
  auto arg = rt::Value::from_i32(reps);
  for (int k = 0; k < warm; ++k) inst.invoke("run", {&arg, 1});
  f64 best = 1e300;
  for (int k = 0; k < timed; ++k) {
    Stopwatch watch;
    inst.invoke("run", {&arg, 1});
    best = std::min(best, watch.elapsed_s());
  }
  return best;
}

struct KernelRow {
  std::string name;
  f64 seconds_off = 0;   // this build, tracing not enabled
  f64 baseline_s = 0;    // no-trace build (only with --baseline)
};

struct MpiRow {
  f64 seconds_off = 0;
  f64 seconds_on = 0;
  u64 events = 0;
  f64 overhead_on() const {
    return seconds_off > 0 ? seconds_on / seconds_off : 0;
  }
};

f64 run_allreduce_loop(int ranks, int iters, u32 count) {
  toolchain::ImbParams p;
  p.routine = toolchain::ImbRoutine::kAllReduce;
  p.min_bytes = count;
  p.max_bytes = count;
  p.max_iters = u32(iters);
  p.min_iters = u32(iters);
  auto bytes = toolchain::build_imb_module(p);
  bench::ReportCollector collector;
  embed::EmbedderConfig cfg;
  cfg.extra_imports = collector.hook();
  embed::Embedder emb(cfg);
  Stopwatch watch;
  auto result = emb.run_world({bytes.data(), bytes.size()}, ranks);
  MW_CHECK(result.exit_code == 0, "allreduce workload failed");
  return watch.elapsed_s();
}

/// Pulls `"name"`-keyed seconds_off values back out of a BENCH_trace.json
/// written by this binary (string-scan over our own fixed format — no JSON
/// library in tree).
bool load_baseline(const std::string& path, std::vector<KernelRow>& rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  for (KernelRow& r : rows) {
    const std::string key = "\"name\": \"" + r.name + "\"";
    size_t at = text.find(key);
    if (at == std::string::npos) {
      std::fprintf(stderr, "baseline %s lacks kernel %s\n", path.c_str(),
                   r.name.c_str());
      return false;
    }
    const std::string field = "\"seconds_off\": ";
    size_t f = text.find(field, at);
    if (f == std::string::npos) return false;
    r.baseline_s = std::strtod(text.c_str() + f + field.size(), nullptr);
  }
  return true;
}

void write_json(const std::string& path, const std::vector<KernelRow>& rows,
                const MpiRow& mpi, bool smoke) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
#ifdef MPIWASM_TRACE_DISABLED
  const bool compiled = false;
#else
  const bool compiled = true;
#endif
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_trace\",\n");
  std::fprintf(out, "  \"schema\": 1,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"trace_compiled\": %s,\n", compiled ? "true" : "false");
  std::fprintf(out, "  \"off_gate\": %.2f,\n", kOffGate);
  std::fprintf(out, "  \"kernels\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "    {\"name\": \"%s\", \"seconds_off\": %.9f}%s\n",
                 rows[i].name.c_str(), rows[i].seconds_off,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"mpi\": {\"ranks\": 4, \"seconds_off\": %.6f, "
               "\"seconds_on\": %.6f, \"overhead_on\": %.3f, "
               "\"events\": %llu}\n",
               mpi.seconds_off, mpi.seconds_on, mpi.overhead_on(),
               (unsigned long long)mpi.events);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_trace.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
      baseline_path = argv[++i];
  }

  std::printf("== mpiwasm-trace overhead ==\n");
  const u32 n = smoke ? 1 << 12 : 1 << 15;
  const i32 reps = smoke ? 8 : 32;
  const int warm = smoke ? 2 : 4, timed = smoke ? 8 : 24;

  // Panel A: compute kernels with tracing not enabled.
  trace::enable_tracing(false);
  trace::enable_profiling(false);
  std::vector<KernelRow> rows;
  for (MicroKernel k : {MicroKernel::kDaxpy, MicroKernel::kStencil3}) {
    MicroKernelParams p;
    p.kernel = k;
    p.n = n;
    KernelRow row;
    row.name = toolchain::micro_kernel_name(k);
    row.seconds_off = time_kernel(p, reps, warm, timed);
    rows.push_back(std::move(row));
  }

  // Panel B: MPI workload, tracing+profiling off vs on.
  const int iters = smoke ? 50 : 400;
  const u32 count = 4096;
  MpiRow mpi;
  run_allreduce_loop(4, iters, count);  // warm (cache, page faults)
  mpi.seconds_off = run_allreduce_loop(4, iters, count);
  trace::enable_tracing(true);
  trace::enable_profiling(true);
  mpi.seconds_on = run_allreduce_loop(4, iters, count);
  mpi.events = trace::event_count();
  trace::enable_tracing(false);
  trace::enable_profiling(false);
  trace::reset();

  std::printf("\n%-16s %14s\n", "kernel", "seconds_off");
  for (const KernelRow& r : rows)
    std::printf("%-16s %14.6f\n", r.name.c_str(), r.seconds_off);
  std::printf("\nmpi allreduce x%d @4 ranks: off=%.4fs on=%.4fs "
              "(%.2fx, %llu events)\n",
              iters, mpi.seconds_off, mpi.seconds_on, mpi.overhead_on(),
              (unsigned long long)mpi.events);

  write_json(out_path, rows, mpi, smoke);

  // Cross-build gate: this (trace-compiled) build against the
  // -DMPIWASM_TRACE=OFF build's JSON.
  if (!baseline_path.empty()) {
    if (!load_baseline(baseline_path, rows)) return 1;
    bool ok = true;
    std::printf("\n%-16s %14s %14s %8s\n", "kernel", "this_build",
                "no_trace_build", "ratio");
    for (const KernelRow& r : rows) {
      const f64 ratio = r.baseline_s > 0 ? r.seconds_off / r.baseline_s : 0;
      const bool pass = ratio <= kOffGate;
      std::printf("%-16s %14.6f %14.6f %7.3fx %s\n", r.name.c_str(),
                  r.seconds_off, r.baseline_s, ratio, pass ? "" : " FAIL");
      ok = ok && pass;
    }
    if (!ok) {
      std::printf("\n  => FAIL: disabled tracing exceeds the %.0f%% gate\n",
                  (kOffGate - 1.0) * 100.0);
      return 1;
    }
    std::printf("\n  => PASS: disabled tracing within %.0f%% of the "
                "no-trace build\n", (kOffGate - 1.0) * 100.0);
  }
  return 0;
}
