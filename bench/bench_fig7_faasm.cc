// Figure 7: PingPong — MPIWasm vs the Faasm-like baseline.
//
// Paper result: MPIWasm achieves a GM average speedup of 4.28x over Faasm
// across message sizes. The mechanism (§6): MPIWasm defers to the host MPI
// library with zero-copy translation, while Faasm re-implements MPI-1 on
// its gRPC-based Faabric messaging layer with serialization and staging
// copies. Our baseline embedder models exactly that difference.
#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

int main() {
  print_banner("Figure 7 — PingPong: MPIWasm vs Faasm-like baseline");

  ImbParams p;
  p.routine = ImbRoutine::kPingPong;
  p.max_bytes = 1 << 22;
  p.base_iters = 1 << 18;
  p.max_iters = 50;
  p.min_iters = 3;
  auto bytes = build_imb_module(p);

  auto run_mode = [&](bool faasm) {
    ReportCollector collector;
    embed::EmbedderConfig cfg;
    cfg.faasm_compat = faasm;
    if (!faasm) cfg.net_profile = simmpi::NetworkProfile::omnipath();
    cfg.extra_imports = collector.hook();
    embed::Embedder emb(cfg);
    auto result = emb.run_world({bytes.data(), bytes.size()}, 2);
    MW_CHECK(result.exit_code == 0, "pingpong failed");
    std::map<u32, f64> by_size;
    for (const auto& r : collector.rows_with_id(p.report_id))
      by_size[u32(r.a)] = r.b;
    return by_size;
  };

  auto mpiwasm_rows = run_mode(false);
  auto faasm_rows = run_mode(true);

  std::printf("%12s %16s %16s %10s\n", "bytes", "MPIWasm us", "Faasm-like us",
              "speedup");
  std::vector<f64> mpiwasm_times, faasm_times;
  std::vector<ComparisonRow> csv_rows;
  for (const auto& [size, t_mpiwasm] : mpiwasm_rows) {
    auto it = faasm_rows.find(size);
    if (it == faasm_rows.end()) continue;
    std::printf("%12u %16.3f %16.3f %9.2fx\n", size, t_mpiwasm, it->second,
                it->second / t_mpiwasm);
    mpiwasm_times.push_back(t_mpiwasm);
    faasm_times.push_back(it->second);
    csv_rows.push_back({f64(size), it->second, t_mpiwasm});
  }
  f64 speedup = gm_speedup(faasm_times, mpiwasm_times);
  std::printf("  => GM average speedup of MPIWasm over Faasm-like: %.2fx\n",
              speedup);
  write_csv("fig7_faasm.csv", "bytes,faasm_us,mpiwasm_us", csv_rows);
  std::printf(
      "\nPaper reference: 4.28x GM speedup across all message sizes.\n");
  return 0;
}
