// Nonblocking-collective overlap trajectory (BENCH_icoll.json).
//
// Section 1 — overlap sweep (the acceptance gate): at 8 ranks on the
// OmniPath profile, per message-size bin, measures
//   blocking : { MPI_Allreduce; compute }          per iteration
//   overlap  : { MPI_Iallreduce; compute chunks interleaved with progress
//                polls; MPI_Wait }                  per iteration
// with the per-rank compute budget calibrated to the measured blocking
// collective latency (scaled by the host's core/rank ratio, so the number
// is meaningful both on dedicated and oversubscribed CI hosts). The
// schedule engine charges wire time as completion deadlines instead of
// injection spins, so the transfer genuinely proceeds while the rank
// computes — the speedup and overlap-efficiency columns quantify how much
// of the collective the compute window hides.
//
// Section 2 — toolchain kernel panel: the heat-diffusion overlap kernel
// (halo exchange + Iallreduce residual), blocking vs nonblocking, native
// and Wasm-through-the-embedder, with bit-exact residual agreement checked
// across all four runs.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "support/timing.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::simmpi;
using namespace mpiwasm::toolchain;

namespace {

struct OverlapRow {
  int ranks = 0;
  size_t bytes = 0;
  bool autotune = true;  // online collective autotuning active for this row
  f64 factor = 1.0;     // compute budget as a fraction of the coll latency
  f64 coll_us = 0;      // blocking allreduce alone
  f64 compute_us = 0;   // calibrated per-rank compute budget
  f64 blocking_us = 0;  // allreduce + compute
  f64 overlap_us = 0;   // iallreduce + compute folded into the wait window
  f64 speedup = 0;
  f64 efficiency = 0;   // fraction of the collective hidden by compute
};

OverlapRow measure_overlap(int ranks, size_t bytes, f64 factor, int iters,
                           const NetworkProfile& prof, bool autotune) {
  OverlapRow row;
  row.ranks = ranks;
  row.bytes = bytes;
  row.autotune = autotune;
  row.factor = factor;
  const int count = int(bytes / 8);
  // Min-of-reps filters scheduler noise on CI hosts. Small payloads get
  // proportionally more samples: their windows are microseconds, so one
  // descheduled thread flips the ratio by 20%+, and the extra reps cost
  // nearly nothing against the large-size rows.
  const int reps = bytes <= 32768 ? 6 : 5;
  const int n_iters = bytes <= 32768 ? iters * 3 : iters * 3 / 2;
  CollTuning tuning;
  tuning.autotune = autotune;
  World world(ranks, prof, tuning);
  world.run([&](Rank& r) {
    std::vector<f64> in(size_t(count), 1.0), out(size_t(count), 0.0);
    auto coll = [&] {
      r.allreduce(in.data(), out.data(), count, Datatype::kDouble,
                  ReduceOp::kSum);
    };
    auto timed = [&](auto&& body) {
      f64 best = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        r.barrier();
        Stopwatch sw;
        for (int i = 0; i < n_iters; ++i) body();
        r.barrier();
        best = std::min(best, sw.elapsed_us() / f64(n_iters));
      }
      return best;
    };
    // Phase 1: the collective alone. Warmups cover the autotuner's
    // exploration budget so the timed windows measure the locked winner.
    for (int w = 0; w < 16; ++w) coll();
    f64 coll_us = timed(coll);
    // Every rank computes with the same budget: the wall-clock collective
    // latency scaled by the effective parallelism, so aggregate compute
    // roughly matches aggregate communication even when rank threads
    // outnumber cores (CI hosts).
    f64 par = std::min<f64>(
        f64(ranks), f64(std::max(1u, std::thread::hardware_concurrency())));
    r.bcast(&coll_us, 1, Datatype::kDouble, 0);
    const u64 compute_ns = u64(coll_us * 1e3 * par * factor / f64(ranks));
    // Phase 2/3: blocking collective + compute vs nonblocking collective
    // with the same compute folded into the wait window — chunked, with a
    // progress poll between chunks (the canonical overlap pattern).
    // Chunk count adapts to the budget but stays small: each chunk pays a
    // progress pass plus a scheduler round-trip, and on oversubscribed
    // hosts those round-trips serialize against the rank threads doing the
    // actual transfer. Coarse chunks (>=25us of compute each, at most 4)
    // keep that overhead below the overlap gain at every size bin.
    // The two variants interleave rep-by-rep so host-level noise (a CI
    // neighbor, a scheduler hiccup) lands on both sides of the speedup
    // ratio instead of biasing whichever phase it happened to hit.
    const int n_chunks =
        std::max(1, std::min(4, int(compute_ns / 25000)));
    f64 blocking_us = 1e300, overlap_us = 1e300;
    for (int rep = 0; rep < reps + 1; ++rep) {
      r.barrier();
      Stopwatch swb;
      for (int i = 0; i < n_iters; ++i) {
        coll();
        spin_for_ns(compute_ns);
      }
      r.barrier();
      blocking_us = std::min(blocking_us, swb.elapsed_us() / f64(n_iters));
      r.barrier();
      Stopwatch swo;
      for (int i = 0; i < n_iters; ++i) {
        Request req = r.iallreduce(in.data(), out.data(), count,
                                   Datatype::kDouble, ReduceOp::kSum);
        for (int k = 0; k < n_chunks; ++k) {
          spin_for_ns(compute_ns / u64(n_chunks));
          r.progress();
        }
        r.wait(req);
      }
      r.barrier();
      overlap_us = std::min(overlap_us, swo.elapsed_us() / f64(n_iters));
    }
    if (r.rank() == 0) {
      row.coll_us = coll_us;
      row.compute_us = f64(compute_ns) / 1e3;
      row.blocking_us = blocking_us;
      row.overlap_us = overlap_us;
      row.speedup = overlap_us > 0 ? blocking_us / overlap_us : 0;
      row.efficiency =
          coll_us > 0 ? std::min(1.0, std::max(0.0, (blocking_us - overlap_us) /
                                                        coll_us))
                      : 0;
    }
  });
  return row;
}

struct KernelRow {
  std::string variant;  // "native" | "wasm"
  f64 blocking_s = 0;
  f64 overlap_s = 0;
  f64 residual = 0;     // from the nonblocking run
  f64 speedup = 0;
};

f64 run_native_kernel(const OverlapParams& p, int ranks,
                      const NetworkProfile& prof, f64* residual) {
  f64 seconds = 0;
  World world(ranks, prof);
  world.run([&](Rank& r) {
    auto res = native_overlap_run(r, p);
    if (r.rank() == 0) {
      seconds = res.seconds;
      *residual = res.residual;
    }
  });
  return seconds;
}

f64 run_wasm_kernel(const OverlapParams& p, int ranks,
                    const NetworkProfile& prof, f64* residual) {
  auto bytes = build_overlap_module(p);
  ReportCollector collector;
  embed::EmbedderConfig cfg;
  // Native x86-64 codegen for the compute phases — this is what closes the
  // wasm-vs-native gap on the kernel panel. The `jit` knob keeps its
  // MPIWASM_JIT env default, so the ablation run degrades this to the
  // optimizing tier without a rebuild.
  cfg.engine.tier = rt::EngineTier::kJit;
  cfg.net_profile = prof;
  cfg.extra_imports = collector.hook();
  embed::Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, ranks);
  MW_CHECK(result.exit_code == 0, "overlap wasm kernel failed");
  auto rows = collector.rows_with_id(p.report_id);
  MW_CHECK(!rows.empty(), "overlap wasm kernel reported nothing");
  *residual = rows[0].b;
  return rows[0].a;
}

void write_json(const std::string& path, const std::vector<OverlapRow>& rows,
                const std::vector<KernelRow>& kernels, f64 headline,
                bool smoke) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_icoll\",\n");
  std::fprintf(out, "  \"schema\": 2,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"profile\": \"omnipath\",\n");
  std::fprintf(out, "  \"overlap\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const OverlapRow& r = rows[i];
    std::fprintf(out,
                 "    {\"ranks\": %d, \"bytes\": %zu, \"autotune\": %s, "
                 "\"compute_factor\": "
                 "%.2f, \"coll_us\": %.3f, \"compute_us\": %.3f, "
                 "\"blocking_us\": %.3f, \"overlap_us\": %.3f, "
                 "\"speedup\": %.3f, \"overlap_efficiency\": %.3f}%s\n",
                 r.ranks, r.bytes, r.autotune ? "true" : "false", r.factor,
                 r.coll_us, r.compute_us,
                 r.blocking_us, r.overlap_us, r.speedup, r.efficiency,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"kernel\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& k = kernels[i];
    std::fprintf(out,
                 "    {\"variant\": \"%s\", \"blocking_s\": %.6f, "
                 "\"overlap_s\": %.6f, \"speedup\": %.3f, "
                 "\"residual\": %.6f}%s\n",
                 k.variant.c_str(), k.blocking_s, k.overlap_s, k.speedup,
                 k.residual, i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  if (kernels.size() == 2 && kernels[0].overlap_s > 0)
    std::fprintf(out, "  \"wasm_vs_native_overlap\": %.3f,\n",
                 kernels[1].overlap_s / kernels[0].overlap_s);
  std::fprintf(out, "  \"max_midsize_speedup_8ranks\": %.3f\n", headline);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_icoll.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  print_banner("Nonblocking collectives: compute/communication overlap");
  const auto profile = NetworkProfile::omnipath();

  // --- Section 1: overlap sweep -------------------------------------------
  const std::vector<int> rank_counts = smoke ? std::vector<int>{8}
                                             : std::vector<int>{4, 8};
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{16384, 65536}
            : std::vector<size_t>{4096, 16384, 32768, 65536, 262144};
  const int iters = smoke ? 6 : 16;

  // Two compute budgets per bin: aggregate compute matching the collective
  // latency (factor 1.0) and half of it (0.5) — overlap pays off across a
  // range of compute/communication ratios, not one tuned point.
  const std::vector<f64> factors = smoke ? std::vector<f64>{1.0}
                                         : std::vector<f64>{0.5, 1.0};
  std::vector<OverlapRow> rows;
  for (int ranks : rank_counts) {
    print_subhead("Iallreduce overlap, " + std::to_string(ranks) +
                  " ranks, profile=omnipath");
    std::printf("  %10s %6s %10s %10s %12s %11s %8s %6s\n", "bytes", "comp/coll",
                "coll_us", "comp_us", "blocking_us", "overlap_us", "speedup",
                "eff");
    for (size_t bytes : sizes) {
      for (f64 factor : factors) {
        OverlapRow row =
            measure_overlap(ranks, bytes, factor, iters, profile, true);
        std::printf("  %10zu %6.2f %10.2f %10.2f %12.2f %11.2f %7.2fx %6.2f\n",
                    row.bytes, row.factor, row.coll_us, row.compute_us,
                    row.blocking_us, row.overlap_us, row.speedup,
                    row.efficiency);
        rows.push_back(row);
        if (!smoke && factor == 1.0) {
          // Ablation column: same bin with the online autotuner disabled
          // (static selection). Quantifies what adaptive selection buys.
          OverlapRow off =
              measure_overlap(ranks, bytes, factor, iters, profile, false);
          std::printf(
              "  %10zu %6.2f %10.2f %10.2f %12.2f %11.2f %7.2fx %6.2f"
              "  [autotune off]\n",
              off.bytes, off.factor, off.coll_us, off.compute_us,
              off.blocking_us, off.overlap_us, off.speedup, off.efficiency);
          rows.push_back(off);
        }
      }
    }
  }

  // Headline: best mid-size-bin (16 KiB - 256 KiB) speedup at 8 ranks.
  f64 headline = 0;
  for (const OverlapRow& r : rows)
    if (r.ranks == 8 && r.bytes >= 16384 && r.bytes <= 262144)
      headline = std::max(headline, r.speedup);
  std::printf(
      "\nmax mid-size (16KiB-256KiB) nonblocking-vs-blocking speedup at 8 "
      "ranks: %.2fx (gate: >= 1.2x)\n",
      headline);

  // --- Section 2: heat-diffusion overlap kernel, native + wasm -------------
  OverlapParams kp;
  kp.n_per_rank = smoke ? (1u << 13) : (1u << 15);
  kp.iterations = smoke ? 10 : 30;
  const int kernel_ranks = 8;
  std::vector<KernelRow> kernels;
  print_subhead("heat-diffusion kernel (halo + Iallreduce residual), " +
                std::to_string(kernel_ranks) + " ranks");
  f64 residual_ref = 0;
  bool residuals_agree = true;
  for (const char* variant : {"native", "wasm"}) {
    KernelRow k;
    k.variant = variant;
    f64 res_block = 0, res_overlap = 0;
    OverlapParams blocking = kp;
    blocking.nonblocking = false;
    OverlapParams overlap = kp;
    overlap.nonblocking = true;
    if (std::strcmp(variant, "native") == 0) {
      k.blocking_s = run_native_kernel(blocking, kernel_ranks, profile,
                                       &res_block);
      k.overlap_s = run_native_kernel(overlap, kernel_ranks, profile,
                                      &res_overlap);
    } else {
      k.blocking_s = run_wasm_kernel(blocking, kernel_ranks, profile,
                                     &res_block);
      k.overlap_s = run_wasm_kernel(overlap, kernel_ranks, profile,
                                    &res_overlap);
    }
    k.residual = res_overlap;
    k.speedup = k.overlap_s > 0 ? k.blocking_s / k.overlap_s : 0;
    if (res_block != res_overlap) residuals_agree = false;
    if (kernels.empty())
      residual_ref = res_overlap;
    else if (res_overlap != residual_ref)
      residuals_agree = false;
    std::printf("  %-6s blocking=%.4fs overlap=%.4fs speedup=%.2fx "
                "residual=%.4f\n",
                variant, k.blocking_s, k.overlap_s, k.speedup, k.residual);
    kernels.push_back(std::move(k));
  }
  MW_CHECK(residuals_agree,
           "overlap/blocking or native/wasm residuals diverged");
  std::printf("  residuals agree across all four runs\n");
  if (kernels[0].overlap_s > 0) {
    f64 ratio = kernels[1].overlap_s / kernels[0].overlap_s;
    std::printf("  wasm/native overlap time: %.2fx (target: <= 3x with the "
                "jit tier)\n", ratio);
  }

  write_json(out_path, rows, kernels, headline, smoke);

  // Hard gate in smoke mode (wired into CI): overlap must never lose more
  // than 10% against blocking in any measured bin, and the mid-size
  // headline must clear 1.2x. A regression fails the build, not just the
  // committed JSON.
  if (smoke) {
    bool ok = true;
    for (const OverlapRow& r : rows)
      if (r.speedup < 0.9) {
        std::fprintf(stderr,
                     "GATE FAIL: overlap speedup %.3f < 0.9 at ranks=%d "
                     "bytes=%zu factor=%.2f\n",
                     r.speedup, r.ranks, r.bytes, r.factor);
        ok = false;
      }
    if (headline < 1.2) {
      std::fprintf(stderr,
                   "GATE FAIL: mid-size headline speedup %.3f < 1.2\n",
                   headline);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("smoke gates passed (all bins >= 0.9x, headline >= 1.2x)\n");
  }
  return 0;
}
