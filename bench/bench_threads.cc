// bench_threads: guest-thread scaling through the wasi-threads port.
//
// Runs the element-wise micro kernels' threaded twins (worker-pool epoch
// barrier built from 0xFE atomics) at 1/2/4 guest threads plus the
// single-threaded builds as the baseline, and the threaded CG solve whose
// residual must be bit-identical across thread counts (fixed dot-partial
// blocks, sequentially combined). The committed BENCH_threads.json must
// show >= 2.5x 4-thread speedup on daxpy.
//
// Output: a table on stdout and BENCH_threads.json (path via --out).
// --smoke shrinks sizes for CI (schema identical, timings not meaningful)
// but still hard-checks checksum/residual correctness.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "embedder/threads_host.h"
#include "runtime/engine.h"
#include "runtime/instance.h"
#include "support/timing.h"
#include "toolchain/kernels.h"

using namespace mpiwasm;
using toolchain::MicroKernel;

namespace {

struct ThreadedRun {
  f64 seconds = 0;
  f64 result = 0;  // checksum or residual
};

/// Instantiates a threaded module (pure engine + the thread-spawn host
/// import), runs init/warm/timed/shutdown, and joins the guest workers
/// before the instance goes away.
ThreadedRun run_threaded(const std::vector<u8>& bytes, i32 reps, int warm,
                         int timed) {
  rt::EngineConfig cfg;
  cfg.tier = rt::EngineTier::kJit;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  embed::GuestThreads guests;  // no MPI rank: pure-engine module
  rt::ImportTable imports;
  guests.register_imports(imports);
  ThreadedRun out;
  {
    rt::Instance inst(cm, imports);
    i32 rc = inst.invoke("init").as_i32();
    if (rc != 0) {
      std::fprintf(stderr, "init() -> %d (thread spawn failed)\n", rc);
      std::exit(1);
    }
    auto arg = rt::Value::from_i32(reps);
    for (int k = 0; k < warm; ++k) inst.invoke("run", {&arg, 1});
    Stopwatch watch;
    for (int k = 0; k < timed; ++k)
      out.result = inst.invoke("run", {&arg, 1}).as_f64();
    out.seconds = watch.elapsed_s() / timed;
    inst.invoke("shutdown");
    guests.join_all();
  }
  return out;
}

struct Row {
  std::string name;
  f64 base_s = 0;            // single-threaded twin (non-shared build)
  f64 t_s[3] = {0, 0, 0};    // 1/2/4 guest threads
  f64 speedup4() const { return t_s[2] > 0 ? base_s / t_s[2] : 0; }
};

constexpr int kThreadCounts[3] = {1, 2, 4};

void write_json(const std::string& path, const std::vector<Row>& rows,
                bool residual_ok, bool checksums_ok, bool smoke) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_threads\",\n");
  std::fprintf(out, "  \"schema\": 1,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"tier\": \"jit\",\n");
  std::fprintf(out, "  \"host_hw_concurrency\": %u,\n",
               unsigned(std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"thread_counts\": [1, 2, 4],\n");
  std::fprintf(out, "  \"kernels\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"seconds\": {\"single\": %.9f, "
                 "\"t1\": %.9f, \"t2\": %.9f, \"t4\": %.9f}, "
                 "\"speedup_4t_vs_single\": %.3f}%s\n",
                 r.name.c_str(), r.base_s, r.t_s[0], r.t_s[1], r.t_s[2],
                 r.speedup4(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"checksums_bit_exact\": %s,\n",
               checksums_ok ? "true" : "false");
  std::fprintf(out, "  \"cg_residual_thread_invariant\": %s\n",
               residual_ok ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_threads.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  if (!rt::threads_enabled_from_env()) {
    std::fprintf(stderr,
                 "bench_threads requires the threads proposal "
                 "(MPIWASM_THREADS=0 is set)\n");
    return 1;
  }

  std::printf("== wasi-threads guest scaling (0xFE atomics) ==\n");
  const u32 n = smoke ? 1 << 12 : 1 << 20;
  const i32 reps = smoke ? 4 : 40;
  const int warm = smoke ? 1 : 2, timed = smoke ? 2 : 5;

  bool checksums_ok = true;
  std::vector<Row> rows;
  for (MicroKernel k : {MicroKernel::kDaxpy, MicroKernel::kStencil3}) {
    toolchain::ThreadedKernelParams tp;
    tp.kernel = k;
    tp.n = n;
    // The baseline is the existing single-threaded (non-shared) build.
    toolchain::MicroKernelParams mp;
    mp.kernel = k;
    mp.n = n;
    Row row;
    row.name = toolchain::micro_kernel_name(k);
    {
      rt::EngineConfig cfg;
      cfg.tier = rt::EngineTier::kJit;
      auto bytes = toolchain::build_micro_kernel_module(mp);
      auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
      rt::ImportTable imports;
      rt::Instance inst(cm, imports);
      inst.invoke("init");
      auto arg = rt::Value::from_i32(reps);
      for (int w = 0; w < warm; ++w) inst.invoke("run", {&arg, 1});
      Stopwatch watch;
      for (int w = 0; w < timed; ++w) inst.invoke("run", {&arg, 1});
      row.base_s = watch.elapsed_s() / timed;
    }
    // Every run(reps) call accumulates into y (daxpy), so the reference
    // covers all warm + timed invocations of the measurement loop.
    const f64 ref =
        toolchain::micro_kernel_reference(mp, u32(reps) * u32(warm + timed));
    for (int ti = 0; ti < 3; ++ti) {
      tp.nthreads = u32(kThreadCounts[ti]);
      ThreadedRun r =
          run_threaded(toolchain::build_threaded_micro_kernel_module(tp),
                       reps, warm, timed);
      row.t_s[ti] = r.seconds;
      // Element-wise kernels: the threaded checksum must equal the host
      // reference bit-exactly at every thread count.
      if (r.result != ref) {
        std::fprintf(stderr, "%s nthreads=%d checksum %.17g != ref %.17g\n",
                     row.name.c_str(), kThreadCounts[ti], r.result, ref);
        checksums_ok = false;
      }
    }
    rows.push_back(std::move(row));
  }

  // Threaded CG: residual must be bit-identical across thread counts and
  // equal to the host twin.
  toolchain::ThreadedCgParams cgp;
  cgp.n = smoke ? 1 << 10 : 1 << 16;
  const i32 cg_iters = smoke ? 8 : 25;
  const f64 cg_ref = toolchain::threaded_cg_reference(cgp, u32(cg_iters));
  bool residual_ok = true;
  Row cg_row;
  cg_row.name = "cg_laplacian";
  for (int ti = 0; ti < 3; ++ti) {
    cgp.nthreads = u32(kThreadCounts[ti]);
    ThreadedRun r = run_threaded(toolchain::build_threaded_cg_module(cgp),
                                 cg_iters, 0, 1);
    cg_row.t_s[ti] = r.seconds;
    if (r.result != cg_ref) {
      std::fprintf(stderr, "cg nthreads=%d residual %.17g != ref %.17g\n",
                   kThreadCounts[ti], r.result, cg_ref);
      residual_ok = false;
    }
  }
  cg_row.base_s = cg_row.t_s[0];
  rows.push_back(cg_row);

  std::printf("\n%-14s %12s %12s %12s %12s %10s\n", "kernel", "single", "1t",
              "2t", "4t", "speedup4");
  for (const Row& r : rows) {
    std::printf("%-14s %12.6f %12.6f %12.6f %12.6f %9.2fx\n", r.name.c_str(),
                r.base_s, r.t_s[0], r.t_s[1], r.t_s[2], r.speedup4());
  }
  const f64 daxpy4 = rows[0].speedup4();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\n  => daxpy 4-thread speedup: %.2fx "
              "(target >= 2.5x on hosts with >= 4 cores; this host has %u)\n",
              daxpy4, hw);

  write_json(out_path, rows, residual_ok, checksums_ok, smoke);
  if (!checksums_ok || !residual_ok) {
    std::fprintf(stderr, "correctness gate failed\n");
    return 1;
  }
  // The scaling gate is physical: 4 guest threads cannot beat 1 on a
  // single-core host, so it is enforced only where the hardware allows it.
  // Correctness (bit-exact checksums, thread-invariant residual) is always
  // enforced above.
  if (!smoke && hw >= 4 && daxpy4 < 2.5) {
    std::fprintf(stderr, "scaling gate failed: daxpy 4t speedup %.2fx < 2.5x\n",
                 daxpy4);
    return 1;
  }
  return 0;
}
