// bench_dispatch: the execution-core perf trajectory.
//
// Measures the executor optimizations separately and combined, per kernel:
//   prepr    — portable switch dispatch, no superinstructions, no
//              bounds-check hoisting: the closest in-tree proxy for the
//              pre-optimization executor (the always-on core-pipeline
//              improvements — lowering-time imm fusion, FMA, cmp+branch,
//              dest sinking — remain active, so it under-reports the
//              true vs-history gain)
//   switch   — switch dispatch + superinstructions + hoisting
//   threaded — computed-goto dispatch, plain pipeline
//   full     — computed-goto + superinstructions + hoisting (the
//              optimizing-tier default)
//   jit      — native x86-64 template codegen over the full pipeline
//              (EngineTier::kJit)
//
// Output: a table on stdout and a machine-readable BENCH_exec.json (path
// via --out), so the perf trajectory of the executor is tracked in-repo.
// --smoke shrinks problem sizes for CI (keeps the perf code compiling and
// running, not a measurement) and additionally asserts that the jit column
// actually ran native code.
//
// Acceptance targets (enforced on non-smoke runs, exit 1 on miss):
//   geomean(full / prepr) >= 1.3x
//   geomean(jit / full)   >= 3.0x
// Soft check (warns, never fails): full >= threaded per kernel — fusion
// must not lose to the plain pipeline anywhere.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/exec.h"
#include "support/timing.h"
#include "wasm/builder.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using wasm::Op;
using wasm::ValType;

namespace {

struct ExecConfig {
  const char* name;
  bool force_switch;
  bool fused;  // superinstructions + bounds-check hoisting
  bool jit;    // native codegen (EngineTier::kJit)
};

constexpr size_t kNumConfigs = 5;
const ExecConfig kConfigs[kNumConfigs] = {
    {"prepr", true, false, false},
    {"switch", true, true, false},
    {"threaded", false, false, false},
    {"full", false, true, false},
    {"jit", false, true, true},
};

rt::EngineConfig engine_for(const ExecConfig& c) {
  rt::EngineConfig cfg;
  cfg.tier = c.jit ? rt::EngineTier::kJit : rt::EngineTier::kOptimizing;
  cfg.jit = c.jit;
  cfg.opt_superinstructions = c.fused;
  cfg.opt_hoist_bounds = c.fused;
  return cfg;
}

// --- micro kernels (pure engine, no embedder) ------------------------------

std::vector<u8> sum_squares_module() {
  // run(n): i64 acc = 0; for (i = 0; i < n; ++i) acc += i*i
  wasm::ModuleBuilder b;
  auto& f = b.begin_func({{ValType::kI32}, {ValType::kI64}}, "run");
  u32 i = f.add_local(ValType::kI32);
  u32 acc = f.add_local(ValType::kI64);
  f.for_loop_i32(i, 0, 0, 1, [&] {
    f.local_get(acc);
    f.local_get(i);
    f.op(Op::kI64ExtendI32S);
    f.local_get(i);
    f.op(Op::kI64ExtendI32S);
    f.op(Op::kI64Mul);
    f.op(Op::kI64Add);
    f.local_set(acc);
  });
  f.local_get(acc);
  f.end();
  return b.build();
}

std::vector<u8> stream_scale_module() {
  // run(n): for i < n: a[i] = 2*a[i] + i  (i32, bounds-check heavy)
  wasm::ModuleBuilder b;
  b.add_memory(64);  // 4 MiB
  auto& f = b.begin_func({{ValType::kI32}, {ValType::kI32}}, "run");
  u32 i = f.add_local(ValType::kI32);
  f.for_loop_i32(i, 0, 0, 1, [&] {
    f.local_get(i);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.local_get(i);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.mem_op(Op::kI32Load);
    f.i32_const(1);
    f.op(Op::kI32Shl);
    f.local_get(i);
    f.op(Op::kI32Add);
    f.mem_op(Op::kI32Store);
  });
  f.i32_const(0);
  f.mem_op(Op::kI32Load);
  f.end();
  return b.build();
}

std::vector<u8> daxpy_module() {
  // run(n): for i < n: y[i] = 2.5*x[i] + y[i]  (f64 FMA + loads/stores)
  wasm::ModuleBuilder b;
  b.add_memory(128);  // x at 0, y at 4 MiB
  auto& f = b.begin_func({{ValType::kI32}, {ValType::kF64}}, "run");
  u32 i = f.add_local(ValType::kI32);
  f.for_loop_i32(i, 0, 0, 1, [&] {
    f.local_get(i);
    f.i32_const(8);
    f.op(Op::kI32Mul);
    f.f64_const(2.5);
    f.local_get(i);
    f.i32_const(8);
    f.op(Op::kI32Mul);
    f.mem_op(Op::kF64Load);
    f.op(Op::kF64Mul);
    f.local_get(i);
    f.i32_const(8);
    f.op(Op::kI32Mul);
    f.mem_op(Op::kF64Load, 1 << 22);
    f.op(Op::kF64Add);
    f.mem_op(Op::kF64Store, 1 << 22);
  });
  f.i32_const(0);
  f.mem_op(Op::kF64Load, 1 << 22);
  f.end();
  return b.build();
}

/// Steady-state seconds per call for a single-function micro module.
/// `jit_funcs_out` (optional) receives the module's native-function count.
f64 time_micro(const std::vector<u8>& bytes, const rt::EngineConfig& engine,
               i32 n, int warm, int timed, u64* jit_funcs_out = nullptr) {
  auto cm = rt::compile({bytes.data(), bytes.size()}, engine);
  if (jit_funcs_out != nullptr) *jit_funcs_out = cm->jit_funcs.load();
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  auto arg = rt::Value::from_i32(n);
  for (int k = 0; k < warm; ++k) inst.invoke("run", {&arg, 1});
  Stopwatch watch;
  for (int k = 0; k < timed; ++k) inst.invoke("run", {&arg, 1});
  return watch.elapsed_s() / timed;
}

/// Wall seconds for a toolchain kernel through the embedder. The embedder
/// run is a multi-rank threaded world, so a single wall measurement is at
/// the mercy of the scheduler; take the min over `reps` runs (after one
/// unmeasured warmup that also populates the in-process page cache and the
/// tier pipeline) so config-vs-config comparisons reflect execution cost,
/// not thread-placement luck.
f64 time_kernel(const std::vector<u8>& bytes, const rt::EngineConfig& engine,
                int ranks, int reps, u64* jit_funcs_out = nullptr) {
  embed::EmbedderConfig ec;
  ec.engine = engine;
  ReportCollector collector;
  ec.extra_imports = collector.hook();
  embed::Embedder emb(ec);
  auto cm = emb.compile({bytes.data(), bytes.size()});
  f64 best = 0;
  for (int k = 0; k <= reps; ++k) {  // k==0 is the warmup
    auto result = emb.run_world(cm, ranks);
    MW_CHECK(result.exit_code == 0, "kernel failed");
    if (jit_funcs_out != nullptr) *jit_funcs_out = result.tierup.jit_funcs;
    if (k > 0 && (best == 0 || result.wall_seconds < best))
      best = result.wall_seconds;
  }
  return best;
}

struct Row {
  std::string name;
  f64 seconds[kNumConfigs] = {0, 0, 0, 0, 0};  // parallel to kConfigs
  u64 jit_funcs = 0;  // native functions in the jit-config module
  f64 speedup() const { return seconds[3] > 0 ? seconds[0] / seconds[3] : 0; }
  f64 jit_speedup() const {
    return seconds[4] > 0 ? seconds[3] / seconds[4] : 0;
  }
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                f64 geomean, f64 jit_geomean, bool smoke) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_dispatch\",\n");
  std::fprintf(out, "  \"schema\": 2,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"threaded_dispatch_compiled\": %s,\n",
               rt::threaded_dispatch_compiled() ? "true" : "false");
  std::fprintf(out, "  \"tier\": \"optimizing (+jit column at tier jit)\",\n");
  std::fprintf(out,
               "  \"configs\": [\"prepr\", \"switch\", \"threaded\", "
               "\"full\", \"jit\"],\n");
  std::fprintf(out, "  \"kernels\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"seconds\": {\"prepr\": %.9f, "
                 "\"switch\": %.9f, \"threaded\": %.9f, \"full\": %.9f, "
                 "\"jit\": %.9f}, \"jit_funcs\": %llu, "
                 "\"speedup_full_vs_prepr\": %.3f, "
                 "\"speedup_jit_vs_full\": %.3f, "
                 "\"full_not_slower_than_threaded\": %s}%s\n",
                 r.name.c_str(), r.seconds[0], r.seconds[1], r.seconds[2],
                 r.seconds[3], r.seconds[4], (unsigned long long)r.jit_funcs,
                 r.speedup(), r.jit_speedup(),
                 r.seconds[3] <= r.seconds[2] * 1.02 ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"geomean_speedup_full_vs_prepr\": %.3f,\n", geomean);
  std::fprintf(out, "  \"geomean_speedup_jit_vs_full\": %.3f\n", jit_geomean);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_exec.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  print_banner("Executor dispatch / bounds-check / fusion trajectory");
  if (!rt::threaded_dispatch_compiled())
    std::printf("note: switch-dispatch build — threaded == switch here\n");

  struct Micro {
    const char* name;
    std::vector<u8> bytes;
    i32 n;
  };
  std::vector<Micro> micros;
  micros.push_back({"micro_sum_squares", sum_squares_module(),
                    smoke ? 5000 : 200000});
  micros.push_back({"micro_stream_scale", stream_scale_module(),
                    smoke ? 5000 : 200000});
  micros.push_back({"micro_daxpy", daxpy_module(), smoke ? 5000 : 200000});
  const int warm = smoke ? 2 : 8, timed = smoke ? 3 : 32;

  toolchain::HpcgParams hpcg;
  hpcg.n_per_rank = smoke ? 64 : 4096;
  hpcg.iterations = smoke ? 2 : 20;
  toolchain::IsParams is;
  is.keys_per_rank = smoke ? 1 << 9 : 1 << 14;
  is.repetitions = smoke ? 1 : 6;
  toolchain::DtParams dt;
  dt.doubles_per_msg = smoke ? 1 << 7 : 1 << 13;
  dt.repetitions = smoke ? 1 : 12;
  struct Kernel {
    const char* name;
    std::vector<u8> bytes;
  };
  std::vector<Kernel> kernels;
  kernels.push_back({"hpcg", toolchain::build_hpcg_module(hpcg)});
  kernels.push_back({"npb_is", toolchain::build_is_module(is)});
  kernels.push_back({"npb_dt", toolchain::build_dt_module(dt)});

  std::vector<Row> rows;
  for (const auto& m : micros) {
    Row row;
    row.name = m.name;
    for (size_t c = 0; c < kNumConfigs; ++c) {
      rt::set_dispatch_force_switch(kConfigs[c].force_switch);
      row.seconds[c] =
          time_micro(m.bytes, engine_for(kConfigs[c]), m.n, warm, timed,
                     kConfigs[c].jit ? &row.jit_funcs : nullptr);
    }
    rt::set_dispatch_force_switch(false);
    rows.push_back(std::move(row));
  }
  for (const auto& k : kernels) {
    Row row;
    row.name = k.name;
    for (size_t c = 0; c < kNumConfigs; ++c) {
      rt::set_dispatch_force_switch(kConfigs[c].force_switch);
      row.seconds[c] =
          time_kernel(k.bytes, engine_for(kConfigs[c]), 2, smoke ? 1 : 3,
                      kConfigs[c].jit ? &row.jit_funcs : nullptr);
    }
    rt::set_dispatch_force_switch(false);
    rows.push_back(std::move(row));
  }

  print_subhead("seconds per run (optimizing tier + jit)");
  std::printf("%-20s %12s %12s %12s %12s %12s %9s %9s\n", "kernel", "prepr",
              "switch", "threaded", "full", "jit", "full/pre", "jit/full");
  f64 log_sum = 0, jit_log_sum = 0;
  for (const Row& r : rows) {
    std::printf("%-20s %12.6f %12.6f %12.6f %12.6f %12.6f %8.2fx %8.2fx\n",
                r.name.c_str(), r.seconds[0], r.seconds[1], r.seconds[2],
                r.seconds[3], r.seconds[4], r.speedup(), r.jit_speedup());
    log_sum += std::log(r.speedup());
    jit_log_sum += std::log(r.jit_speedup());
  }
  f64 geomean = std::exp(log_sum / f64(rows.size()));
  f64 jit_geomean = std::exp(jit_log_sum / f64(rows.size()));
  std::printf("\n  => geomean speedup full vs plain-switch executor: %.2fx "
              "(target >= 1.30x)\n", geomean);
  std::printf("  => geomean speedup jit vs full: %.2fx (target >= 3.00x)\n",
              jit_geomean);

  // Soft check: fusion must not lose to the plain threaded pipeline on any
  // kernel (2% noise allowance). Warns only — timing jitter on shared CI
  // boxes must not flake the build.
  for (const Row& r : rows) {
    if (r.seconds[3] > r.seconds[2] * 1.02)
      std::printf("  !! soft check: full (%.6fs) slower than threaded "
                  "(%.6fs) on %s\n",
                  r.seconds[3], r.seconds[2], r.name.c_str());
  }

  write_json(out_path, rows, geomean, jit_geomean, smoke);

  if (smoke) {
    // Smoke mode asserts the jit column genuinely ran native code.
    for (const Row& r : rows) {
      if (r.jit_funcs == 0) {
        std::fprintf(stderr, "FAIL: jit column fell back to the interpreter "
                             "on every function of %s\n", r.name.c_str());
        return 1;
      }
    }
    std::printf("  smoke: jit column ran native code on all %zu kernels\n",
                rows.size());
    return 0;
  }
  if (geomean < 1.30) {
    std::fprintf(stderr, "FAIL: full-vs-prepr geomean %.2fx below 1.30x\n",
                 geomean);
    return 1;
  }
  if (jit_geomean < 3.0) {
    std::fprintf(stderr, "FAIL: jit-vs-full geomean %.2fx below 3.00x\n",
                 jit_geomean);
    return 1;
  }
  return 0;
}
