// Figure 5b: IOR aggregated read/write bandwidth vs block size, native
// POSIX vs Wasm/WASI.
//
// Paper result: MPIWasm's userspace permission handling and virtual
// directory tree (§3.4) have no significant impact on achievable I/O
// bandwidth — the native and Wasm curves overlap across block sizes.
#include <filesystem>

#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

namespace fs = std::filesystem;

int main() {
  print_banner("Figure 5b — IOR bandwidth vs block size: native vs WASM/WASI");
  const int np = 2;
  auto dir = fs::temp_directory_path() / "mpiwasm-bench-ior";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<ComparisonRow> write_rows, read_rows;
  for (u32 mib : {1, 4, 8, 12, 16}) {
    IorParams p;
    p.block_bytes = mib << 20;
    p.blocks = 4;
    p.repetitions = 2;

    IorResult native{};
    simmpi::World world(np);
    world.run([&](simmpi::Rank& r) {
      auto res = native_ior_run(r, p, dir.string());
      if (r.rank() == 0) native = res;
    });

    auto bytes = build_ior_module(p);
    ReportCollector collector;
    embed::EmbedderConfig cfg;
    cfg.preopens = {{dir.string(), "data", false}};
    cfg.extra_imports = collector.hook();
    embed::Embedder emb(cfg);
    auto result = emb.run_world({bytes.data(), bytes.size()}, np);
    MW_CHECK(result.exit_code == 0, "ior wasm kernel failed");
    auto rows = collector.rows_with_id(p.report_id);
    MW_CHECK(!rows.empty(), "no ior report");

    write_rows.push_back({f64(mib), native.write_mibs, rows[0].a});
    read_rows.push_back({f64(mib), native.read_mibs, rows[0].b});
  }

  print_subhead("write bandwidth (MiB/s) by block size (MiB)");
  print_comparison_table("MiB/s", write_rows, /*lower_is_better=*/false);
  print_subhead("read bandwidth (MiB/s) by block size (MiB)");
  print_comparison_table("MiB/s", read_rows, /*lower_is_better=*/false);
  write_csv("fig5b_write.csv", "block_mib,native_mibs,wasm_mibs", write_rows);
  write_csv("fig5b_read.csv", "block_mib,native_mibs,wasm_mibs", read_rows);

  fs::remove_all(dir);
  std::printf(
      "\nPaper reference: with 4 nodes, wasm ~29.4 GiB/s read / ~40.2 GiB/s\n"
      "write, indistinguishable from native — sandboxing adds no I/O cost.\n");
  return 0;
}
