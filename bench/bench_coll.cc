// Collective algorithm trajectory: sweeps every registered algorithm of
// every simmpi collective across message sizes and rank counts on the
// zero-cost interconnect profile, so the numbers isolate the runtime-layer
// synchronization/copy costs the algorithms differ in (the overheads the
// paper's Figures 3/4 are dominated by at small sizes).
//
// Output: a table on stdout and a machine-readable BENCH_coll.json (path
// via --out). The headline number is the geomean small-message (<= 1 KiB)
// speedup of the auto-selected algorithms over the naive linear ones for
// allreduce/bcast/barrier at 8 ranks — the acceptance gate for the
// shared-memory fan-in path.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "simmpi/coll_algos.h"
#include "simmpi/coll_tune.h"
#include "support/common.h"
#include "support/timing.h"

using namespace mpiwasm;
using namespace mpiwasm::simmpi;
using coll::CollOp;
using mpiwasm::simmpi::CollAlgo;
using mpiwasm::simmpi::coll::coll_name;

namespace {

/// Warmup calls per configuration. The autotuned rows need the exploration
/// budget (kExploreRounds passes over the largest candidate list) spent
/// before the timed window opens, so the measurement sees the locked
/// winner, not the rotation.
constexpr int kWarmups = 3;
int autotune_warmups(CollOp op) {
  return coll::Autotuner::kExploreRounds * int(coll::algos_for(op).size()) + 2;
}

/// One timed configuration; returns the per-operation latency in us.
f64 time_coll_tuned(CollOp op, const CollTuning& tuning, int ranks,
                    size_t bytes, int iters, int warmups) {
  World world(ranks, NetworkProfile::zero(), tuning);
  f64 us_per_op = 0;
  world.run([&](Rank& r) {
    int n = r.size();
    int count = int(bytes);
    std::vector<u8> a(bytes + 1, u8(1)), b(bytes + 1, u8(0));
    std::vector<u8> big_a((bytes + 1) * size_t(n), u8(1));
    std::vector<u8> big_b((bytes + 1) * size_t(n), u8(0));
    std::vector<int> counts(size_t(n), 0);
    for (size_t i = 0; i < size_t(n); ++i)
      counts[i] = count / n + (int(i) < count % n ? 1 : 0);
    auto once = [&] {
      switch (op) {
        case CollOp::kBarrier: r.barrier(); break;
        case CollOp::kBcast:
          r.bcast(a.data(), count, Datatype::kByte, 0);
          break;
        case CollOp::kReduce:
          r.reduce(a.data(), b.data(), count, Datatype::kByte, ReduceOp::kSum,
                   0);
          break;
        case CollOp::kAllreduce:
          r.allreduce(a.data(), b.data(), count, Datatype::kByte,
                      ReduceOp::kSum);
          break;
        case CollOp::kGather:
          r.gather(a.data(), count, big_b.data(), count, Datatype::kByte, 0);
          break;
        case CollOp::kScatter:
          r.scatter(big_a.data(), count, b.data(), count, Datatype::kByte, 0);
          break;
        case CollOp::kAllgather:
          r.allgather(a.data(), count, big_b.data(), count, Datatype::kByte);
          break;
        case CollOp::kAlltoall:
          r.alltoall(big_a.data(), count, big_b.data(), count,
                     Datatype::kByte);
          break;
        case CollOp::kReduceScatter:
          r.reduce_scatter(a.data(), b.data(), counts.data(), Datatype::kByte,
                           ReduceOp::kSum);
          break;
        case CollOp::kScan:
          r.scan(a.data(), b.data(), count, Datatype::kByte, ReduceOp::kSum);
          break;
        case CollOp::kExscan:
          r.exscan(a.data(), b.data(), count, Datatype::kByte, ReduceOp::kSum);
          break;
      }
    };
    for (int w = 0; w < warmups; ++w) once();
    r.barrier();
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) once();
    r.barrier();
    if (r.rank() == 0) us_per_op = sw.elapsed_us() / f64(iters);
  });
  return us_per_op;
}

f64 time_coll(CollOp op, CollAlgo algo, int ranks, size_t bytes, int iters) {
  return time_coll_tuned(op, coll::forced_tuning(op, algo), ranks, bytes,
                         iters,
                         algo == CollAlgo::kAuto ? autotune_warmups(op)
                                                 : kWarmups);
}

/// Timed allreduce run whose window INCLUDES the exploration phase (no
/// warmups), persisting the learned table to `file` — back-to-back calls
/// measure the cold-start cost vs the warm start from the saved table.
f64 time_autotune_run(int ranks, size_t bytes, int iters,
                      const std::string& file) {
  CollTuning t;
  t.autotune_file = file;
  World world(ranks, NetworkProfile::zero(), t);
  f64 us_per_op = 0;
  world.run([&](Rank& r) {
    int count = int(bytes);
    std::vector<u8> a(bytes, u8(1)), b(bytes, u8(0));
    r.barrier();
    Stopwatch sw;
    for (int i = 0; i < iters; ++i)
      r.allreduce(a.data(), b.data(), count, Datatype::kByte, ReduceOp::kSum);
    r.barrier();
    if (r.rank() == 0) us_per_op = sw.elapsed_us() / f64(iters);
  });  // World dtor persists the table
  return us_per_op;
}

struct Entry {
  std::string coll, algo;
  int ranks = 0;
  size_t bytes = 0;
  f64 us = 0;
};

int iters_for(size_t bytes, bool smoke) {
  size_t cap = smoke ? 60 : 400;
  size_t iters = (size_t(1) << 21) / (bytes + 1);
  if (iters > cap) iters = cap;
  if (iters < 20) iters = 20;
  return int(iters);
}

struct ColdWarmRow {
  size_t bytes = 0;
  f64 cold_us = 0;  // first run: exploration inside the timed window
  f64 warm_us = 0;  // second run: winners preloaded from the saved table
};

void write_json(const std::string& path, const std::vector<Entry>& entries,
                f64 small_speedup, const std::vector<ColdWarmRow>& coldwarm,
                f64 warm_vs_cold, bool smoke) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_coll\",\n");
  std::fprintf(out, "  \"schema\": 2,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"profile\": \"zero\",\n");
  std::fprintf(out, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(out,
                 "    {\"coll\": \"%s\", \"algo\": \"%s\", \"ranks\": %d, "
                 "\"bytes\": %zu, \"us_per_op\": %.3f}%s\n",
                 e.coll.c_str(), e.algo.c_str(), e.ranks, e.bytes, e.us,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"autotune_cold_warm\": [\n");
  for (size_t i = 0; i < coldwarm.size(); ++i) {
    const ColdWarmRow& c = coldwarm[i];
    std::fprintf(out,
                 "    {\"coll\": \"allreduce\", \"ranks\": 8, \"bytes\": %zu, "
                 "\"cold_us\": %.3f, \"warm_us\": %.3f}%s\n",
                 c.bytes, c.cold_us, c.warm_us,
                 i + 1 < coldwarm.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"autotune_warm_vs_cold\": %.3f,\n", warm_vs_cold);
  std::fprintf(out,
               "  \"small_message_speedup_auto_vs_linear_8ranks\": %.3f\n",
               small_speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_coll.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  std::printf("=== Collective algorithm sweep (profile=zero) ===\n");

  const CollOp kOps[] = {
      CollOp::kBarrier,       CollOp::kBcast,  CollOp::kReduce,
      CollOp::kAllreduce,     CollOp::kGather, CollOp::kScatter,
      CollOp::kAllgather,     CollOp::kAlltoall,
      CollOp::kReduceScatter, CollOp::kScan,   CollOp::kExscan,
  };
  std::vector<int> rank_counts = smoke ? std::vector<int>{8}
                                       : std::vector<int>{2, 4, 8};
  std::vector<size_t> sizes = smoke
                                  ? std::vector<size_t>{8, 1024}
                                  : std::vector<size_t>{8, 64, 1024, 16384,
                                                        262144};

  std::vector<Entry> entries;
  // (coll, algo, ranks, bytes) -> us, for the summary reduction.
  std::map<std::string, f64> by_key;
  auto key = [](const char* coll, const char* algo, int ranks, size_t bytes) {
    return std::string(coll) + "/" + algo + "/" + std::to_string(ranks) + "/" +
           std::to_string(bytes);
  };

  for (CollOp op : kOps) {
    std::printf("\n--- %s ---\n", coll_name(op));
    std::vector<CollAlgo> algos(coll::algos_for(op).begin(),
                                coll::algos_for(op).end());
    algos.push_back(CollAlgo::kAuto);
    std::vector<size_t> op_sizes =
        op == CollOp::kBarrier ? std::vector<size_t>{0} : sizes;
    for (int ranks : rank_counts) {
      for (size_t bytes : op_sizes) {
        std::printf("  r=%d %8zu B:", ranks, bytes);
        for (CollAlgo a : algos) {
          // Above the slot capacity a forced kShm silently degrades to the
          // auto table; skip instead of recording a mislabeled row.
          if (a == CollAlgo::kShm && bytes > CollectiveContext::kSlotBytes)
            continue;
          f64 us = time_coll(op, a, ranks, bytes, iters_for(bytes, smoke));
          entries.push_back({coll_name(op), coll::algo_name(a), ranks, bytes,
                             us});
          by_key[key(coll_name(op), coll::algo_name(a), ranks, bytes)] = us;
          std::printf("  %s=%.2fus", coll::algo_name(a), us);
        }
        // The kAuto row above runs with online autotuning (the default);
        // this column is the same selection with MPIWASM_COLL_AUTOTUNE=0
        // semantics — the PR 3 static table alone.
        CollTuning untuned;
        untuned.autotune = false;
        f64 us = time_coll_tuned(op, untuned, ranks, bytes,
                                 iters_for(bytes, smoke), kWarmups);
        entries.push_back({coll_name(op), "auto_static", ranks, bytes, us});
        by_key[key(coll_name(op), "auto_static", ranks, bytes)] = us;
        std::printf("  auto_static=%.2fus\n", us);
      }
    }
  }

  // Acceptance headline: small-message (<= 1 KiB) auto vs linear geomean
  // for allreduce/bcast/barrier at 8 ranks.
  f64 log_sum = 0;
  int log_n = 0;
  for (const char* coll : {"allreduce", "bcast", "barrier"}) {
    std::vector<size_t> small =
        std::string(coll) == "barrier"
            ? std::vector<size_t>{0}
            : (smoke ? std::vector<size_t>{8, 1024}
                     : std::vector<size_t>{8, 64, 1024});
    for (size_t bytes : small) {
      auto lin = by_key.find(key(coll, "linear", 8, bytes));
      auto aut = by_key.find(key(coll, "auto", 8, bytes));
      if (lin == by_key.end() || aut == by_key.end() || aut->second <= 0)
        continue;
      log_sum += std::log(lin->second / aut->second);
      ++log_n;
    }
  }
  f64 small_speedup = log_n > 0 ? std::exp(log_sum / log_n) : 0;
  std::printf(
      "\nsmall-message (<=1KiB) geomean speedup, auto vs linear, 8 ranks "
      "(allreduce/bcast/barrier): %.2fx\n",
      small_speedup);

  // Cold vs warm autotuning: the cold run pays for exploration inside the
  // timed window and persists the learned table; the warm run preloads the
  // winners and must match or beat it.
  std::printf("\n--- autotune cold vs warm (allreduce, 8 ranks) ---\n");
  const std::string table =
      (std::filesystem::temp_directory_path() / "mpiwasm-bench-coll.table")
          .string();
  std::vector<ColdWarmRow> coldwarm;
  f64 cw_log_sum = 0;
  int cw_n = 0;
  const int cw_iters = smoke ? 24 : 48;
  for (size_t bytes : {size_t(1024), size_t(65536)}) {
    std::remove(table.c_str());
    ColdWarmRow row;
    row.bytes = bytes;
    row.cold_us = time_autotune_run(8, bytes, cw_iters, table);
    row.warm_us = time_autotune_run(8, bytes, cw_iters, table);
    std::printf("  %8zu B: cold=%.2fus warm=%.2fus (%.2fx)\n", bytes,
                row.cold_us, row.warm_us,
                row.warm_us > 0 ? row.cold_us / row.warm_us : 0);
    if (row.cold_us > 0 && row.warm_us > 0) {
      cw_log_sum += std::log(row.warm_us / row.cold_us);
      ++cw_n;
    }
    coldwarm.push_back(row);
  }
  std::remove(table.c_str());
  f64 warm_vs_cold = cw_n > 0 ? std::exp(cw_log_sum / cw_n) : 0;
  std::printf("  warm/cold geomean: %.3f (<= 1.0 means the persisted table "
              "pays off)\n", warm_vs_cold);

  write_json(out_path, entries, small_speedup, coldwarm, warm_vs_cold, smoke);
  return 0;
}
