// Ablation A (DESIGN.md): how much does §3.5's zero-copy address
// translation actually buy? Same module, same host MPI, same interconnect
// profile — only the embedder's buffer handling differs (direct
// base+offset pointers vs staging copies on every Send/Recv).
#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

int main() {
  print_banner("Ablation — zero-copy translation vs copy-based translation");

  ImbParams p;
  p.routine = ImbRoutine::kPingPong;
  p.max_bytes = 1 << 22;
  p.base_iters = 1 << 18;
  p.max_iters = 50;
  p.min_iters = 3;
  auto bytes = build_imb_module(p);

  auto run_mode = [&](bool zero_copy) {
    ReportCollector collector;
    embed::EmbedderConfig cfg;
    cfg.net_profile = simmpi::NetworkProfile::omnipath();
    cfg.zero_copy = zero_copy;
    cfg.extra_imports = collector.hook();
    embed::Embedder emb(cfg);
    auto result = emb.run_world({bytes.data(), bytes.size()}, 2);
    MW_CHECK(result.exit_code == 0, "pingpong failed");
    std::map<u32, f64> by_size;
    for (const auto& r : collector.rows_with_id(p.report_id))
      by_size[u32(r.a)] = r.b;
    return by_size;
  };

  auto zc = run_mode(true);
  auto copy = run_mode(false);

  std::printf("%12s %16s %16s %12s\n", "bytes", "zero-copy us", "copy-mode us",
              "copy cost");
  std::vector<f64> zc_times, copy_times;
  for (const auto& [size, t_zc] : zc) {
    auto it = copy.find(size);
    if (it == copy.end()) continue;
    std::printf("%12u %16.3f %16.3f %11.2fx\n", size, t_zc, it->second,
                it->second / t_zc);
    zc_times.push_back(t_zc);
    copy_times.push_back(it->second);
  }
  std::printf("  => GM slowdown from disabling zero-copy: %.2fx\n",
              gm_speedup(copy_times, zc_times));
  std::printf(
      "\nShape to check: copy mode costs little for small messages (latency\n"
      "dominated) and grows with size — the reason §3.5 calls zero-copy out\n"
      "as a design requirement for large-message HPC workloads.\n");
  return 0;
}
