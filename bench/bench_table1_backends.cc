// Table 1: compile duration vs single-core HPCG performance for the
// compiler backends.
//
// Paper (Wasmer backends):      Singlepass 52ms/0.38 GF, Cranelift
// 150ms/1.32 GF, LLVM 2811ms/1.54 GF — a monotone compile-time/run-time
// trade-off. Our three compiled tiers reproduce the same monotone
// trade-off (DESIGN.md §2): Baseline = Singlepass analogue (linear-time
// emit), LightOpt = Cranelift analogue (one cheap pass round), Optimizing
// = LLVM analogue (fixpoint pipeline with fusion).
//
// Compile durations are measured on an application-sized module
// (build_compile_stress_module; the paper's HPCG compiles to 722 KiB of
// Wasm, far larger than our hand-assembled CG kernel); GFLOP/s comes from
// the actual HPCG kernel at 1 rank.
#include "bench_common.h"

#include "runtime/engine.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

int main() {
  print_banner("Table 1 — compiler backends: compile duration vs performance");

  HpcgParams p;
  p.n_per_rank = 1 << 15;
  p.iterations = 30;
  auto hpcg_bytes = build_hpcg_module(p);
  auto stress_bytes = build_compile_stress_module(400);
  std::printf("compile workload: %.1f KiB wasm module\n",
              f64(stress_bytes.size()) / 1024.0);

  std::printf("%-14s %22s %28s\n", "Backend", "Compile Duration (ms)",
              "Single-Core HPCG (GFLOP/s)");
  struct Row {
    rt::EngineTier tier;
    const char* paper_analogue;
  };
  const Row tiers[] = {
      {rt::EngineTier::kBaseline, "Singlepass-analogue"},
      {rt::EngineTier::kLightOpt, "Cranelift-analogue"},
      {rt::EngineTier::kOptimizing, "LLVM-analogue"},
  };
  for (const Row& row : tiers) {
    std::vector<f64> compile_times;
    for (int i = 0; i < 5; ++i) {
      rt::EngineConfig ec;
      ec.tier = row.tier;
      auto cm = rt::compile({stress_bytes.data(), stress_bytes.size()}, ec);
      compile_times.push_back(cm->compile_ms);
    }
    f64 compile_ms = percentile(compile_times, 50);

    ReportCollector collector;
    embed::EmbedderConfig cfg;
    cfg.engine.tier = row.tier;
    cfg.extra_imports = collector.hook();
    embed::Embedder emb(cfg);
    auto result = emb.run_world({hpcg_bytes.data(), hpcg_bytes.size()}, 1);
    MW_CHECK(result.exit_code == 0, "hpcg failed");
    auto rows = collector.rows_with_id(p.report_id);
    f64 gflops = rows.empty() ? 0 : rows[0].a;
    std::printf("%-14s %22.2f %28.4f   (%s)\n", rt::tier_name(row.tier),
                compile_ms, gflops, row.paper_analogue);
  }
  std::printf(
      "\nPaper reference: Singlepass 52ms / 0.3769 GF, Cranelift 150ms / "
      "1.3240 GF,\nLLVM 2811ms / 1.5426 GF — shape to check: compile cost "
      "and runtime speed\nboth increase monotonically across backends.\n");
  return 0;
}
