// Table 2: distribution-format sizes — dynamically linked native,
// statically linked native, and Wasm binaries of the same applications.
//
// Paper result: Wasm binaries are 139.5x smaller on average than the
// statically linked natives (everything the app needs is in the image,
// like a container, but at KiB scale); vs dynamically linked binaries the
// comparison is mixed (3 of 5 apps had bigger Wasm). Shape to check here:
// wasm << static, with dynamic in between.
#include <filesystem>

#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

namespace fs = std::filesystem;

namespace {

f64 file_kib(const fs::path& p) {
  std::error_code ec;
  auto sz = fs::file_size(p, ec);
  return ec ? -1.0 : f64(sz) / 1024.0;
}

}  // namespace

int main() {
  print_banner("Table 2 — binary sizes: native dynamic vs static vs Wasm");
  const fs::path dir = MPIWASM_TABLE2_DIR;

  struct App {
    const char* name;
    const char* exe;
    std::vector<u8> wasm;
  };
  ImbParams imb;
  std::vector<App> apps;
  apps.push_back({"IntelMPI Benchmarks", "native_imb", build_imb_module(imb)});
  apps.push_back({"HPCG", "native_hpcg", build_hpcg_module({})});
  apps.push_back({"IOR", "native_ior", build_ior_module({})});
  apps.push_back({"IS", "native_is", build_is_module({})});
  apps.push_back({"DT", "native_dt", build_dt_module({})});

  std::printf("%-22s %18s %18s %14s %10s\n", "Application",
              "Native Dyn (KiB)", "Native Static (KiB)", "Wasm (KiB)",
              "static/wasm");
  std::vector<f64> ratios;
  for (const App& app : apps) {
    f64 dyn = file_kib(dir / app.exe);
    f64 stat = file_kib(dir / (std::string(app.exe) + "_static"));
    f64 wasm_kib = f64(app.wasm.size()) / 1024.0;
    f64 ratio = wasm_kib > 0 && stat > 0 ? stat / wasm_kib : 0;
    if (ratio > 0) ratios.push_back(ratio);
    std::printf("%-22s %18.1f %18.1f %14.2f %9.1fx\n", app.name, dyn, stat,
                wasm_kib, ratio);
  }
  std::printf("\n  => GM static-to-wasm size ratio: %.1fx\n", geomean(ratios));
  std::printf(
      "\nPaper reference: IMB 1087KiB/27MiB/893KiB, HPCG 164KiB/26MiB/722KiB,"
      "\nIOR 364KiB/16MiB/315KiB, IS 36KiB/15MiB/58KiB, DT 40KiB/15MiB/50KiB;"
      "\nwasm 139.5x smaller than static on average. Our kernels are built by"
      "\nthe in-repo assembler with no libc payload, so the absolute ratio is"
      "\nlarger, but the ordering wasm << static holds.\n");
  return 0;
}
