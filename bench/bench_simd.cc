// bench_simd: the Wasm-SIMD (v128) perf trajectory.
//
// Measures every vectorizable micro kernel (toolchain/kernels.h,
// MicroKernel) in three builds/configurations, always at the Optimizing
// tier with the default executor:
//   scalar      — the scalar inner loop
//   simd_plain  — the v128 inner loop with SIMD-aware optimization off
//                 (EngineConfig::opt_simd = false): v128 ops execute, but
//                 no v128 fusion / folding / indexed addressing
//   simd        — the v128 inner loop with the full SIMD pipeline (default)
//
// Jangda et al. ("Not So Fast") single out missing vectorization as one of
// the largest Wasm-vs-native gaps; the paper's §4.5 measures the -msimd128
// effect on DT at ~1.36x. This bench tracks our equivalent: the committed
// BENCH_simd.json must show geomean(scalar / simd) >= 1.3x over the
// vectorizable kernel set.
//
// Output: a table on stdout and BENCH_simd.json (path via --out). --smoke
// shrinks sizes for CI (schema identical, timings not meaningful).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/instance.h"
#include "support/timing.h"
#include "toolchain/kernels.h"

using namespace mpiwasm;
using toolchain::MicroKernel;
using toolchain::MicroKernelParams;

namespace {

/// Steady-state seconds per run(reps) call.
f64 time_kernel(const MicroKernelParams& p, bool opt_simd, i32 reps, int warm,
                int timed) {
  auto bytes = toolchain::build_micro_kernel_module(p);
  rt::EngineConfig cfg;
  cfg.tier = rt::EngineTier::kOptimizing;
  cfg.opt_simd = opt_simd;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  inst.invoke("init");
  auto arg = rt::Value::from_i32(reps);
  for (int k = 0; k < warm; ++k) inst.invoke("run", {&arg, 1});
  Stopwatch watch;
  for (int k = 0; k < timed; ++k) inst.invoke("run", {&arg, 1});
  return watch.elapsed_s() / timed;
}

struct Row {
  std::string name;
  f64 scalar_s = 0, simd_plain_s = 0, simd_s = 0;
  f64 speedup() const { return simd_s > 0 ? scalar_s / simd_s : 0; }
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                f64 geomean, bool smoke) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_simd\",\n");
  std::fprintf(out, "  \"schema\": 1,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"tier\": \"optimizing\",\n");
  std::fprintf(out, "  \"configs\": [\"scalar\", \"simd_plain\", \"simd\"],\n");
  std::fprintf(out, "  \"kernels\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"seconds\": {\"scalar\": %.9f, "
                 "\"simd_plain\": %.9f, \"simd\": %.9f}, "
                 "\"speedup_simd_vs_scalar\": %.3f}%s\n",
                 r.name.c_str(), r.scalar_s, r.simd_plain_s, r.simd_s,
                 r.speedup(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"geomean_speedup_simd_vs_scalar\": %.3f\n", geomean);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_simd.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  std::printf("== Wasm SIMD (v128) scalar-vs-vector trajectory ==\n");
  const u32 n = smoke ? 1 << 10 : 1 << 15;
  const i32 reps = smoke ? 2 : 16;
  const int warm = smoke ? 1 : 4, timed = smoke ? 2 : 16;

  const MicroKernel kernels[] = {
      MicroKernel::kReduceF64, MicroKernel::kReduceI32, MicroKernel::kDaxpy,
      MicroKernel::kStencil3, MicroKernel::kDotF64, MicroKernel::kSaxpyF32,
  };

  std::vector<Row> rows;
  for (MicroKernel k : kernels) {
    MicroKernelParams p;
    p.kernel = k;
    p.n = n;
    Row row;
    row.name = toolchain::micro_kernel_name(k);
    p.use_simd = false;
    row.scalar_s = time_kernel(p, true, reps, warm, timed);
    p.use_simd = true;
    row.simd_plain_s = time_kernel(p, false, reps, warm, timed);
    row.simd_s = time_kernel(p, true, reps, warm, timed);
    rows.push_back(std::move(row));
  }

  std::printf("\n%-16s %12s %12s %12s %10s\n", "kernel", "scalar",
              "simd_plain", "simd", "speedup");
  f64 log_sum = 0;
  for (const Row& r : rows) {
    std::printf("%-16s %12.6f %12.6f %12.6f %9.2fx\n", r.name.c_str(),
                r.scalar_s, r.simd_plain_s, r.simd_s, r.speedup());
    log_sum += std::log(r.speedup());
  }
  f64 geomean = std::exp(log_sum / f64(rows.size()));
  std::printf("\n  => geomean SIMD-vs-scalar speedup: %.2fx "
              "(target >= 1.30x)\n", geomean);

  write_json(out_path, rows, geomean, smoke);
  return 0;
}
