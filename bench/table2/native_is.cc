// Native NPB-IS executable (Table 2 artifact).
#include <cstdio>

#include "toolchain/native_kernels.h"

using namespace mpiwasm;

int main() {
  toolchain::IsParams p;
  p.keys_per_rank = 1 << 12;
  p.repetitions = 2;
  simmpi::World world(2);
  world.run([&](simmpi::Rank& r) {
    auto res = toolchain::native_is_run(r, p);
    if (r.rank() == 0)
      std::printf("IS: %.2f Mop/s  verification %s\n", res.mops,
                  res.ok ? "PASSED" : "FAILED");
  });
  return 0;
}
