// Native HPCG executable (Table 2 artifact).
#include <cstdio>

#include "toolchain/native_kernels.h"

using namespace mpiwasm;

int main() {
  toolchain::HpcgParams p;
  p.n_per_rank = 1 << 12;
  p.iterations = 10;
  simmpi::World world(2);
  world.run([&](simmpi::Rank& r) {
    auto res = toolchain::native_hpcg_run(r, p);
    if (r.rank() == 0)
      std::printf("HPCG: %.4f GFLOP/s  %.4f GB/s  residual %.6e\n", res.gflops,
                  res.gbps, res.residual);
  });
  return 0;
}
