// Native IMB executable (Table 2 artifact): the dynamically/statically
// linked twin of imb_*.wasm.
#include <cstdio>

#include "toolchain/native_kernels.h"

using namespace mpiwasm;

int main() {
  toolchain::ImbParams p;
  p.routine = toolchain::ImbRoutine::kPingPong;
  p.max_bytes = 1 << 12;
  p.max_iters = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Rank& r) {
    auto rows = toolchain::native_imb_run(r, p);
    for (const auto& row : rows)
      std::printf("%8u bytes  %10.3f usec\n", row.bytes, row.t_avg_us);
  });
  return 0;
}
