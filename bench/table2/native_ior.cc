// Native IOR executable (Table 2 artifact).
#include <cstdio>
#include <filesystem>

#include "toolchain/native_kernels.h"

using namespace mpiwasm;

int main() {
  auto dir = std::filesystem::temp_directory_path() / "mpiwasm-native-ior";
  std::filesystem::create_directories(dir);
  toolchain::IorParams p;
  p.block_bytes = 1 << 16;
  p.blocks = 4;
  p.repetitions = 1;
  simmpi::World world(2);
  world.run([&](simmpi::Rank& r) {
    auto res = toolchain::native_ior_run(r, p, dir.string());
    if (r.rank() == 0)
      std::printf("IOR: write %.1f MiB/s  read %.1f MiB/s\n", res.write_mibs,
                  res.read_mibs);
  });
  std::filesystem::remove_all(dir);
  return 0;
}
