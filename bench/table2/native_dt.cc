// Native NPB-DT executable (Table 2 artifact).
#include <cstdio>

#include "toolchain/native_kernels.h"

using namespace mpiwasm;

int main() {
  toolchain::DtParams p;
  p.topology = toolchain::DtTopology::kShuffle;
  p.doubles_per_msg = 1 << 10;
  p.repetitions = 4;
  simmpi::World world(2);
  world.run([&](simmpi::Rank& r) {
    auto res = toolchain::native_dt_run(r, p);
    if (r.rank() == 0)
      std::printf("DT(sh): %.2f MB/s  checksum %.6e\n", res.mbps, res.checksum);
  });
  return 0;
}
