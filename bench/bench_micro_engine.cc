// Micro-benchmarks (google-benchmark) of the engine building blocks:
// per-instruction dispatch cost across tiers, host-call overhead, handle
// translation, and SHA-256 hashing for the compilation cache.
#include <benchmark/benchmark.h>

#include "embedder/env.h"
#include "runtime/engine.h"
#include "runtime/instance.h"
#include "support/sha256.h"
#include "toolchain/kernels.h"
#include "wasm/builder.h"

using namespace mpiwasm;
using wasm::Op;
using wasm::ValType;

namespace {

std::vector<u8> loop_module() {
  // run(n): i64 acc = 0; for (i = 0; i < n; ++i) acc += i*i; return acc
  wasm::ModuleBuilder b;
  auto& f = b.begin_func({{ValType::kI32}, {ValType::kI64}}, "run");
  u32 i = f.add_local(ValType::kI32);
  u32 acc = f.add_local(ValType::kI64);
  f.for_loop_i32(i, 0, 0, 1, [&] {
    f.local_get(acc);
    f.local_get(i);
    f.op(Op::kI64ExtendI32S);
    f.local_get(i);
    f.op(Op::kI64ExtendI32S);
    f.op(Op::kI64Mul);
    f.op(Op::kI64Add);
    f.local_set(acc);
  });
  f.local_get(acc);
  f.end();
  return b.build();
}

void BM_TierLoopThroughput(benchmark::State& state) {
  auto tier = rt::EngineTier(state.range(0));
  auto bytes = loop_module();
  rt::EngineConfig cfg;
  cfg.tier = tier;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  const i32 n = 10000;
  for (auto _ : state) {
    auto v = rt::Value::from_i32(n);
    benchmark::DoNotOptimize(inst.invoke("run", {&v, 1}).as_i64());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(rt::tier_name(tier));
}
BENCHMARK(BM_TierLoopThroughput)->Arg(0)->Arg(1)->Arg(2);

void BM_HostCallOverhead(benchmark::State& state) {
  wasm::ModuleBuilder b;
  u32 imp = b.import_func("env", "nop", {{}, {}});
  auto& f = b.begin_func({{ValType::kI32}, {}}, "run");
  u32 i = f.add_local(ValType::kI32);
  f.for_loop_i32(i, 0, 0, 1, [&] { f.call(imp); });
  f.end();
  auto bytes = b.build();
  rt::EngineConfig cfg;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  rt::ImportTable imports;
  imports.add("env", "nop", {{}, {}},
              [](rt::HostContext&, const rt::Slot*, rt::Slot*) {});
  rt::Instance inst(cm, imports);
  const i32 n = 1000;
  for (auto _ : state) {
    auto v = rt::Value::from_i32(n);
    inst.invoke("run", {&v, 1});
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HostCallOverhead);

void BM_DatatypeTranslation(benchmark::State& state) {
  // The Figure-6 hot path in isolation: shared_mutex read lock + lookup.
  auto shared = std::make_shared<embed::SharedHandleState>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared->lookup_datatype(embed::abi::MPI_DOUBLE));
  }
}
BENCHMARK(BM_DatatypeTranslation);

void BM_Sha256ModuleHash(benchmark::State& state) {
  std::vector<u8> data(size_t(state.range(0)));
  for (size_t i = 0; i < data.size(); ++i) data[i] = u8(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256({data.data(), data.size()}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256ModuleHash)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_MicroKernelSimd(benchmark::State& state) {
  // Scalar-vs-v128 kernel twins at the optimizing tier (bench_simd measures
  // the full matrix; this keeps one headline pair in the microbench suite).
  toolchain::MicroKernelParams p;
  p.kernel = toolchain::MicroKernel(state.range(0));
  p.n = 1 << 13;
  p.use_simd = state.range(1) != 0;
  auto bytes = toolchain::build_micro_kernel_module(p);
  rt::EngineConfig cfg;
  cfg.tier = rt::EngineTier::kOptimizing;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  inst.invoke("init");
  auto reps = rt::Value::from_i32(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.invoke("run", {&reps, 1}).as_f64());
  }
  state.SetItemsProcessed(state.iterations() * p.n);
  state.SetLabel(std::string(toolchain::micro_kernel_name(p.kernel)) +
                 (p.use_simd ? "/simd" : "/scalar"));
}
BENCHMARK(BM_MicroKernelSimd)
    ->Args({i64(toolchain::MicroKernel::kReduceF64), 0})
    ->Args({i64(toolchain::MicroKernel::kReduceF64), 1})
    ->Args({i64(toolchain::MicroKernel::kDaxpy), 0})
    ->Args({i64(toolchain::MicroKernel::kDaxpy), 1})
    ->Args({i64(toolchain::MicroKernel::kStencil3), 0})
    ->Args({i64(toolchain::MicroKernel::kStencil3), 1});

void BM_CompileHpcg(benchmark::State& state) {
  auto tier = rt::EngineTier(state.range(0));
  auto bytes = toolchain::build_hpcg_module({});
  for (auto _ : state) {
    rt::EngineConfig cfg;
    cfg.tier = tier;
    benchmark::DoNotOptimize(rt::compile({bytes.data(), bytes.size()}, cfg));
  }
  state.SetLabel(rt::tier_name(tier));
}
BENCHMARK(BM_CompileHpcg)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
