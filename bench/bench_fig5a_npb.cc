// Figure 5a: NPB kernels — IS total Mop/s across rank counts, and DT
// throughput per topology for native vs Wasm-without-SIMD vs
// Wasm-with-SIMD.
//
// Paper results: IS 8260 Mop/s (Wasm) vs 8546 (native) at 1024 ranks —
// near parity; DT's Wasm-with-SIMD is 1.36x faster than Wasm-without-SIMD,
// and native stays ahead of both because Wasm SIMD is capped at 128-bit
// lanes while the Skylake host has AVX-512 (§4.5).
#include "bench_common.h"

using namespace mpiwasm;
using namespace mpiwasm::bench;
using namespace mpiwasm::toolchain;

int main() {
  print_banner("Figure 5a — NPB IS and DT: native vs WASM (SIMD on/off)");
  const auto profile = simmpi::NetworkProfile::omnipath();

  // --- IS: Mop/s across rank counts ----------------------------------------
  print_subhead("IS total Mop/s vs ranks");
  IsParams is;
  is.keys_per_rank = 1 << 14;
  is.repetitions = 5;
  std::vector<ComparisonRow> is_rows;
  for (int np : {2, 4, 8}) {
    f64 native_mops = 0;
    simmpi::World world(np, profile);
    world.run([&](simmpi::Rank& r) {
      auto res = native_is_run(r, is);
      if (r.rank() == 0) {
        MW_CHECK(res.ok, "native IS verification failed");
        native_mops = res.mops;
      }
    });
    auto bytes = build_is_module(is);
    ReportCollector collector;
    embed::EmbedderConfig cfg;
    cfg.net_profile = profile;
    cfg.extra_imports = collector.hook();
    embed::Embedder emb(cfg);
    emb.run_world({bytes.data(), bytes.size()}, np);
    auto rows = collector.rows_with_id(is.report_id);
    MW_CHECK(!rows.empty() && rows[0].b == 1.0, "wasm IS verification failed");
    is_rows.push_back({f64(np), native_mops, rows[0].a});
  }
  print_comparison_table("Mop/s", is_rows, /*lower_is_better=*/false);
  write_csv("fig5a_is.csv", "ranks,native_mops,wasm_mops", is_rows);

  // --- DT: throughput per topology, scalar vs SIMD --------------------------
  print_subhead("DT throughput by topology (native / wasm scalar / wasm simd)");
  std::printf("%-10s %14s %18s %16s %12s\n", "topology", "native MB/s",
              "wasm w/o SIMD MB/s", "wasm w SIMD MB/s", "SIMD gain");
  DtParams dt;
  dt.doubles_per_msg = 1 << 16;
  dt.repetitions = 10;
  const int np = 4;
  for (DtTopology topo :
       {DtTopology::kBlackHole, DtTopology::kWhiteHole, DtTopology::kShuffle}) {
    dt.topology = topo;
    f64 native_mbps = 0;
    simmpi::World world(np, profile);
    world.run([&](simmpi::Rank& r) {
      auto res = native_dt_run(r, dt);
      if (r.rank() == 0) native_mbps = res.mbps;
    });
    f64 mbps[2] = {0, 0};
    for (int simd = 0; simd <= 1; ++simd) {
      dt.use_simd = simd == 1;
      auto bytes = build_dt_module(dt);
      ReportCollector collector;
      embed::EmbedderConfig cfg;
      cfg.net_profile = profile;
      cfg.extra_imports = collector.hook();
      embed::Embedder emb(cfg);
      emb.run_world({bytes.data(), bytes.size()}, np);
      auto rows = collector.rows_with_id(dt.report_id);
      mbps[simd] = rows.empty() ? 0 : rows[0].a;
    }
    std::printf("%-10s %14.1f %18.1f %16.1f %11.2fx\n",
                dt_topology_name(topo), native_mbps, mbps[0], mbps[1],
                mbps[0] > 0 ? mbps[1] / mbps[0] : 0);
  }
  std::printf(
      "\nPaper reference: wasm-with-SIMD / wasm-without-SIMD = 1.36x on DT;\n"
      "native > wasm on DT because Wasm SIMD is 128-bit only.\n");
  return 0;
}
