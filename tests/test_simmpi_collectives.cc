// Collective correctness: every collective validated against a sequential
// reference over parameter sweeps (ranks x datatypes x ops x counts).
#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/reduce_ops.h"
#include "simmpi/world.h"

namespace mpiwasm::simmpi {
namespace {

struct SweepParam {
  int ranks;
  int count;
};

class CollectiveSweep : public ::testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    RanksAndCounts, CollectiveSweep,
    ::testing::Values(SweepParam{1, 1}, SweepParam{2, 1}, SweepParam{2, 64},
                      SweepParam{3, 17}, SweepParam{4, 128}, SweepParam{5, 33},
                      SweepParam{8, 256}),
    [](const auto& info) {
      return "r" + std::to_string(info.param.ranks) + "_c" +
             std::to_string(info.param.count);
    });

TEST_P(CollectiveSweep, Barrier) {
  auto [ranks, count] = GetParam();
  (void)count;
  World world(ranks);
  std::atomic<int> phase_counter{0};
  world.run([&](Rank& r) {
    for (int phase = 0; phase < 3; ++phase) {
      phase_counter.fetch_add(1);
      r.barrier();
      // After the barrier every rank must have bumped the counter.
      EXPECT_GE(phase_counter.load(), (phase + 1) * r.size());
      r.barrier();
    }
  });
}

TEST_P(CollectiveSweep, BcastFromEveryRoot) {
  auto [ranks, count] = GetParam();
  World world(ranks);
  world.run([&, count = count](Rank& r) {
    for (int root = 0; root < r.size(); ++root) {
      std::vector<i32> buf(count);
      if (r.rank() == root)
        for (int i = 0; i < count; ++i) buf[i] = root * 1000 + i;
      r.bcast(buf.data(), count, Datatype::kInt, root);
      for (int i = 0; i < count; ++i) EXPECT_EQ(buf[i], root * 1000 + i);
    }
  });
}

TEST_P(CollectiveSweep, ReduceSumMatchesReference) {
  auto [ranks, count] = GetParam();
  World world(ranks);
  world.run([&, count = count](Rank& r) {
    std::vector<f64> in(count), out(count, -1);
    for (int i = 0; i < count; ++i) in[i] = f64(r.rank() + 1) * (i + 1);
    r.reduce(in.data(), out.data(), count, Datatype::kDouble, ReduceOp::kSum, 0);
    if (r.rank() == 0) {
      int n = r.size();
      for (int i = 0; i < count; ++i) {
        f64 expect = f64(n) * f64(n + 1) / 2.0 * (i + 1);
        EXPECT_DOUBLE_EQ(out[i], expect) << "i=" << i;
      }
    }
  });
}

TEST_P(CollectiveSweep, AllreduceEveryOp) {
  auto [ranks, count] = GetParam();
  World world(ranks);
  world.run([&, count = count](Rank& r) {
    const int n = r.size();
    // SUM / MAX / MIN on ints.
    std::vector<i32> in(count), out(count);
    for (int i = 0; i < count; ++i) in[i] = (r.rank() + 1) * 10 + i % 3;
    r.allreduce(in.data(), out.data(), count, Datatype::kInt, ReduceOp::kSum);
    for (int i = 0; i < count; ++i)
      EXPECT_EQ(out[i], n * (n + 1) / 2 * 10 + n * (i % 3));
    r.allreduce(in.data(), out.data(), count, Datatype::kInt, ReduceOp::kMax);
    for (int i = 0; i < count; ++i) EXPECT_EQ(out[i], n * 10 + i % 3);
    r.allreduce(in.data(), out.data(), count, Datatype::kInt, ReduceOp::kMin);
    for (int i = 0; i < count; ++i) EXPECT_EQ(out[i], 10 + i % 3);
    // Bitwise on unsigned.
    std::vector<u32> uin(count), uout(count);
    for (int i = 0; i < count; ++i) uin[i] = 1u << (r.rank() % 31);
    r.allreduce(uin.data(), uout.data(), count, Datatype::kUnsigned,
                ReduceOp::kBor);
    for (int i = 0; i < count; ++i) {
      u32 expect = 0;
      for (int k = 0; k < n; ++k) expect |= 1u << (k % 31);
      EXPECT_EQ(uout[i], expect);
    }
  });
}

TEST_P(CollectiveSweep, GatherCollectsInRankOrder) {
  auto [ranks, count] = GetParam();
  World world(ranks);
  world.run([&, count = count](Rank& r) {
    std::vector<i32> mine(count, r.rank() * 7);
    std::vector<i32> all(size_t(count) * r.size(), -1);
    r.gather(mine.data(), count, all.data(), count, Datatype::kInt, 0);
    if (r.rank() == 0) {
      for (int src = 0; src < r.size(); ++src)
        for (int i = 0; i < count; ++i)
          EXPECT_EQ(all[size_t(src) * count + i], src * 7);
    }
  });
}

TEST_P(CollectiveSweep, ScatterDistributes) {
  auto [ranks, count] = GetParam();
  World world(ranks);
  world.run([&, count = count](Rank& r) {
    std::vector<i32> all;
    if (r.rank() == 0) {
      all.resize(size_t(count) * r.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i32(i);
    }
    std::vector<i32> mine(count, -1);
    r.scatter(all.data(), count, mine.data(), count, Datatype::kInt, 0);
    for (int i = 0; i < count; ++i)
      EXPECT_EQ(mine[i], r.rank() * count + i);
  });
}

TEST_P(CollectiveSweep, AllgatherEveryoneSeesAll) {
  auto [ranks, count] = GetParam();
  World world(ranks);
  world.run([&, count = count](Rank& r) {
    std::vector<i32> mine(count, r.rank() + 1);
    std::vector<i32> all(size_t(count) * r.size(), -1);
    r.allgather(mine.data(), count, all.data(), count, Datatype::kInt);
    for (int src = 0; src < r.size(); ++src)
      for (int i = 0; i < count; ++i)
        EXPECT_EQ(all[size_t(src) * count + i], src + 1);
  });
}

TEST_P(CollectiveSweep, AlltoallTransposes) {
  auto [ranks, count] = GetParam();
  World world(ranks);
  world.run([&, count = count](Rank& r) {
    int n = r.size();
    std::vector<i32> send(size_t(count) * n), recv(size_t(count) * n, -1);
    for (int dst = 0; dst < n; ++dst)
      for (int i = 0; i < count; ++i)
        send[size_t(dst) * count + i] = r.rank() * 1000 + dst;
    r.alltoall(send.data(), count, recv.data(), count, Datatype::kInt);
    for (int src = 0; src < n; ++src)
      for (int i = 0; i < count; ++i)
        EXPECT_EQ(recv[size_t(src) * count + i], src * 1000 + r.rank());
  });
}

TEST_P(CollectiveSweep, AlltoallvVariableCounts) {
  auto [ranks, count] = GetParam();
  World world(ranks);
  world.run([&, count = count](Rank& r) {
    int n = r.size();
    // Rank r sends (dst + 1) * base elements to dst.
    int base = std::max(count / 4, 1);
    std::vector<int> scnt(n), sdis(n), rcnt(n), rdis(n);
    int acc = 0;
    for (int d = 0; d < n; ++d) {
      scnt[d] = (d + 1) * base;
      sdis[d] = acc;
      acc += scnt[d];
    }
    std::vector<i32> send(acc);
    for (int d = 0; d < n; ++d)
      for (int i = 0; i < scnt[d]; ++i)
        send[size_t(sdis[d]) + i] = r.rank() * 100 + d;
    // Everyone receives (me + 1) * base from each source.
    acc = 0;
    for (int s = 0; s < n; ++s) {
      rcnt[s] = (r.rank() + 1) * base;
      rdis[s] = acc;
      acc += rcnt[s];
    }
    std::vector<i32> recv(acc, -1);
    r.alltoallv(send.data(), scnt.data(), sdis.data(), recv.data(),
                rcnt.data(), rdis.data(), Datatype::kInt);
    for (int s = 0; s < n; ++s)
      for (int i = 0; i < rcnt[s]; ++i)
        EXPECT_EQ(recv[size_t(rdis[s]) + i], s * 100 + r.rank());
  });
}

TEST(ReduceOps, FloatMinMaxAndProd) {
  std::vector<f32> a{1.5f, -2.0f, 3.0f};
  std::vector<f32> b{0.5f, -1.0f, 4.0f};
  apply_reduce(ReduceOp::kMax, Datatype::kFloat, a.data(), b.data(), 3);
  EXPECT_EQ(b[0], 1.5f);
  EXPECT_EQ(b[1], -1.0f);
  EXPECT_EQ(b[2], 4.0f);
  std::vector<f64> c{2.0, 3.0}, d{4.0, 5.0};
  apply_reduce(ReduceOp::kProd, Datatype::kDouble, c.data(), d.data(), 2);
  EXPECT_DOUBLE_EQ(d[0], 8.0);
  EXPECT_DOUBLE_EQ(d[1], 15.0);
}

TEST(ReduceOps, LogicalOps) {
  std::vector<i32> a{1, 0, 5}, b{1, 1, 0};
  apply_reduce(ReduceOp::kLand, Datatype::kInt, a.data(), b.data(), 3);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 0);
  EXPECT_EQ(b[2], 0);
}

TEST(ReduceOps, BitwiseOnFloatThrows) {
  f32 a = 1, b = 2;
  EXPECT_THROW(apply_reduce(ReduceOp::kBand, Datatype::kFloat, &a, &b, 1),
               MpiError);
}

}  // namespace
}  // namespace mpiwasm::simmpi
