// Differential suite for the pluggable collective-algorithm registry:
// every algorithm variant of every collective is validated against a
// sequentially computed reference (identical to the kLinear canonical
// combine order) across message sizes from 1 B to 1 MiB, reduction ops,
// rank counts (power-of-two and not), every root, split/dup'd
// communicators, and MPI_IN_PLACE. Inputs are chosen so all reductions
// are exact in every datatype, making results independent of the
// combine-order differences between tree/ring/doubling algorithms.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "simmpi/coll_algos.h"
#include "simmpi/reduce_ops.h"
#include "simmpi/world.h"

namespace mpiwasm::simmpi {
namespace {

using coll::CollOp;

/// Tuning that forces `algo` for collective `op` and leaves the rest on
/// auto. The shm context stays enabled so kShm is honored.
CollTuning forced(CollOp op, CollAlgo algo) {
  return coll::forced_tuning(op, algo);
}

/// Deterministic exact-in-every-type element for (rank, index): small
/// positive integers so sum/prod/min/max/logical/bitwise all stay exact.
i64 gen(int rank, i64 i) { return ((rank + 1) * 31 + i * 7) % 13 + 1; }

/// Sequential reference reduction over ranks [0, n) in canonical order.
template <typename T>
std::vector<T> reduce_reference(int n, i64 count, ReduceOp op, Datatype dt) {
  std::vector<T> acc(count);
  for (i64 i = 0; i < count; ++i) acc[size_t(i)] = T(gen(0, i));
  std::vector<T> contrib(count);
  for (int rank = 1; rank < n; ++rank) {
    for (i64 i = 0; i < count; ++i) contrib[size_t(i)] = T(gen(rank, i));
    apply_reduce(op, dt, contrib.data(), acc.data(), int(count));
  }
  return acc;
}

struct AlgoCase {
  int ranks;
  CollAlgo algo;
};

std::vector<AlgoCase> cases_for(CollOp op) {
  std::vector<AlgoCase> cases;
  for (int ranks : {2, 3, 4, 5, 8})
    for (CollAlgo a : coll::algos_for(op)) cases.push_back({ranks, a});
  return cases;
}

// Sizes in elements of i64 (8 B .. 1 MiB), plus byte-level cases below.
const i64 kCounts[] = {1, 3, 16, 257, 2048, 65536, 131072};

TEST(CollAlgoDifferential, AllreduceEveryAlgorithmMatchesReference) {
  for (const auto& [ranks, algo] : cases_for(CollOp::kAllreduce)) {
    World world(ranks, NetworkProfile::zero(),
                forced(CollOp::kAllreduce, algo));
    for (i64 count : kCounts) {
      auto expect = reduce_reference<i64>(ranks, count, ReduceOp::kSum,
                                          Datatype::kLong);
      world.run([&, count](Rank& r) {
        std::vector<i64> in(count), out(size_t(count), -1);
        for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
        r.allreduce(in.data(), out.data(), int(count), Datatype::kLong,
                    ReduceOp::kSum);
        ASSERT_EQ(out, expect) << "ranks=" << ranks << " count=" << count
                               << " algo=" << coll::algo_name(algo);
      });
    }
  }
}

TEST(CollAlgoDifferential, AllreduceEveryOpAndType) {
  const i64 count = 257;
  for (const auto& [ranks, algo] : cases_for(CollOp::kAllreduce)) {
    World world(ranks, NetworkProfile::zero(),
                forced(CollOp::kAllreduce, algo));
    world.run([&](Rank& r) {
      // Exact double prod/sum/min.
      for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kProd, ReduceOp::kMin,
                          ReduceOp::kMax}) {
        auto expect =
            reduce_reference<f64>(r.size(), count, op, Datatype::kDouble);
        std::vector<f64> in(count), out(count);
        for (i64 i = 0; i < count; ++i) in[size_t(i)] = f64(gen(r.rank(), i));
        r.allreduce(in.data(), out.data(), int(count), Datatype::kDouble, op);
        ASSERT_EQ(out, expect) << coll::algo_name(algo) << " op " << int(op);
      }
      // Bitwise / logical on unsigned.
      for (ReduceOp op : {ReduceOp::kBand, ReduceOp::kBor, ReduceOp::kLand,
                          ReduceOp::kLor}) {
        auto expect =
            reduce_reference<u32>(r.size(), count, op, Datatype::kUnsigned);
        std::vector<u32> in(count), out(count);
        for (i64 i = 0; i < count; ++i) in[size_t(i)] = u32(gen(r.rank(), i));
        r.allreduce(in.data(), out.data(), int(count), Datatype::kUnsigned,
                    op);
        ASSERT_EQ(out, expect) << coll::algo_name(algo) << " op " << int(op);
      }
    });
  }
}

TEST(CollAlgoDifferential, BcastEveryAlgorithmEveryRoot) {
  for (const auto& [ranks, algo] : cases_for(CollOp::kBcast)) {
    World world(ranks, NetworkProfile::zero(), forced(CollOp::kBcast, algo));
    for (i64 bytes : {i64(1), i64(3), i64(1024), i64(65536), i64(1) << 20}) {
      world.run([&, bytes](Rank& r) {
        for (int root = 0; root < r.size(); ++root) {
          std::vector<u8> buf(size_t(bytes), u8(0));
          if (r.rank() == root)
            for (i64 i = 0; i < bytes; ++i)
              buf[size_t(i)] = u8(gen(root, i));
          r.bcast(buf.data(), int(bytes), Datatype::kByte, root);
          for (i64 i = 0; i < bytes; ++i)
            ASSERT_EQ(buf[size_t(i)], u8(gen(root, i)))
                << "root=" << root << " algo=" << coll::algo_name(algo);
        }
      });
    }
  }
}

TEST(CollAlgoDifferential, ReduceEveryAlgorithmEveryRoot) {
  const i64 count = 515;
  for (const auto& [ranks, algo] : cases_for(CollOp::kReduce)) {
    World world(ranks, NetworkProfile::zero(), forced(CollOp::kReduce, algo));
    auto expect =
        reduce_reference<i64>(ranks, count, ReduceOp::kSum, Datatype::kLong);
    world.run([&](Rank& r) {
      for (int root = 0; root < r.size(); ++root) {
        std::vector<i64> in(count), out(size_t(count), -1);
        for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
        r.reduce(in.data(), r.rank() == root ? out.data() : nullptr,
                 int(count), Datatype::kLong, ReduceOp::kSum, root);
        if (r.rank() == root)
          ASSERT_EQ(out, expect)
              << "root=" << root << " algo=" << coll::algo_name(algo);
      }
    });
  }
}

TEST(CollAlgoDifferential, GatherScatterEveryAlgorithmEveryRoot) {
  const i64 count = 129;  // elements per rank
  for (const auto& [ranks, algo] : cases_for(CollOp::kGather)) {
    World gw(ranks, NetworkProfile::zero(), forced(CollOp::kGather, algo));
    gw.run([&](Rank& r) {
      for (int root = 0; root < r.size(); ++root) {
        std::vector<i32> mine(count);
        for (i64 i = 0; i < count; ++i)
          mine[size_t(i)] = i32(gen(r.rank(), i)) + r.rank() * 1000;
        std::vector<i32> all(size_t(count) * r.size(), -1);
        r.gather(mine.data(), int(count), all.data(), int(count),
                 Datatype::kInt, root);
        if (r.rank() == root) {
          for (int src = 0; src < r.size(); ++src)
            for (i64 i = 0; i < count; ++i)
              ASSERT_EQ(all[size_t(src) * count + size_t(i)],
                        i32(gen(src, i)) + src * 1000)
                  << "root=" << root << " algo=" << coll::algo_name(algo);
        }
      }
    });
    World sw(ranks, NetworkProfile::zero(), forced(CollOp::kScatter, algo));
    sw.run([&](Rank& r) {
      for (int root = 0; root < r.size(); ++root) {
        std::vector<i32> all;
        if (r.rank() == root) {
          all.resize(size_t(count) * r.size());
          for (size_t i = 0; i < all.size(); ++i) all[i] = i32(i) * 3 + root;
        }
        std::vector<i32> mine(size_t(count), -1);
        r.scatter(all.data(), int(count), mine.data(), int(count),
                  Datatype::kInt, root);
        for (i64 i = 0; i < count; ++i)
          ASSERT_EQ(mine[size_t(i)], i32(r.rank() * count + i) * 3 + root)
              << "root=" << root << " algo=" << coll::algo_name(algo);
      }
    });
  }
}

TEST(CollAlgoDifferential, AllgatherEveryAlgorithm) {
  for (const auto& [ranks, algo] : cases_for(CollOp::kAllgather)) {
    World world(ranks, NetworkProfile::zero(),
                forced(CollOp::kAllgather, algo));
    for (i64 count : {i64(1), i64(63), i64(1024), i64(16384)}) {
      world.run([&, count](Rank& r) {
        std::vector<i64> mine(count);
        for (i64 i = 0; i < count; ++i) mine[size_t(i)] = gen(r.rank(), i);
        std::vector<i64> all(size_t(count) * r.size(), -1);
        r.allgather(mine.data(), int(count), all.data(), int(count),
                    Datatype::kLong);
        for (int src = 0; src < r.size(); ++src)
          for (i64 i = 0; i < count; ++i)
            ASSERT_EQ(all[size_t(src) * count + size_t(i)], gen(src, i))
                << "algo=" << coll::algo_name(algo) << " count=" << count;
      });
    }
  }
}

TEST(CollAlgoDifferential, AlltoallEveryAlgorithm) {
  const i64 count = 65;
  for (const auto& [ranks, algo] : cases_for(CollOp::kAlltoall)) {
    World world(ranks, NetworkProfile::zero(),
                forced(CollOp::kAlltoall, algo));
    world.run([&](Rank& r) {
      int n = r.size();
      std::vector<i32> send(size_t(count) * n), recv(size_t(count) * n, -1);
      for (int dst = 0; dst < n; ++dst)
        for (i64 i = 0; i < count; ++i)
          send[size_t(dst) * count + size_t(i)] =
              r.rank() * 10000 + dst * 100 + i32(i % 97);
      r.alltoall(send.data(), int(count), recv.data(), int(count),
                 Datatype::kInt);
      for (int src = 0; src < n; ++src)
        for (i64 i = 0; i < count; ++i)
          ASSERT_EQ(recv[size_t(src) * count + size_t(i)],
                    src * 10000 + r.rank() * 100 + i32(i % 97))
              << "algo=" << coll::algo_name(algo);
    });
  }
}

TEST(CollAlgoDifferential, ReduceScatterUnevenCounts) {
  for (const auto& [ranks, algo] : cases_for(CollOp::kReduceScatter)) {
    World world(ranks, NetworkProfile::zero(),
                forced(CollOp::kReduceScatter, algo));
    world.run([&](Rank& r) {
      int n = r.size();
      // Rank i receives (i + 1) * 37 elements.
      std::vector<int> counts(n);
      i64 total = 0;
      for (int i = 0; i < n; ++i) {
        counts[size_t(i)] = (i + 1) * 37;
        total += counts[size_t(i)];
      }
      auto expect = reduce_reference<i64>(n, total, ReduceOp::kSum,
                                          Datatype::kLong);
      std::vector<i64> in(total);
      for (i64 i = 0; i < total; ++i) in[size_t(i)] = gen(r.rank(), i);
      std::vector<i64> out(size_t(counts[size_t(r.rank())]), -1);
      r.reduce_scatter(in.data(), out.data(), counts.data(), Datatype::kLong,
                       ReduceOp::kSum);
      i64 off = 0;
      for (int i = 0; i < r.rank(); ++i) off += counts[size_t(i)];
      for (i64 i = 0; i < counts[size_t(r.rank())]; ++i)
        ASSERT_EQ(out[size_t(i)], expect[size_t(off + i)])
            << "algo=" << coll::algo_name(algo);
    });
  }
}

TEST(CollAlgoDifferential, ScanAndExscanEveryAlgorithm) {
  for (const auto& [ranks, algo] : cases_for(CollOp::kScan)) {
    World sw(ranks, NetworkProfile::zero(), forced(CollOp::kScan, algo));
    for (i64 count : {i64(1), i64(300), i64(40000)}) {
      sw.run([&, count](Rank& r) {
        auto expect = reduce_reference<i64>(r.rank() + 1, count,
                                            ReduceOp::kSum, Datatype::kLong);
        std::vector<i64> in(count), out(size_t(count), -1);
        for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
        r.scan(in.data(), out.data(), int(count), Datatype::kLong,
               ReduceOp::kSum);
        ASSERT_EQ(out, expect)
            << "algo=" << coll::algo_name(algo) << " count=" << count;
      });
    }
    World ew(ranks, NetworkProfile::zero(), forced(CollOp::kExscan, algo));
    ew.run([&](Rank& r) {
      const i64 count = 300;
      std::vector<i64> in(count), out(size_t(count), -7);
      for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
      r.exscan(in.data(), out.data(), int(count), Datatype::kLong,
               ReduceOp::kSum);
      if (r.rank() == 0) {
        for (i64 i = 0; i < count; ++i)
          ASSERT_EQ(out[size_t(i)], -7) << "rank 0 recvbuf must be untouched";
      } else {
        auto expect = reduce_reference<i64>(r.rank(), count, ReduceOp::kSum,
                                            Datatype::kLong);
        ASSERT_EQ(out, expect) << "algo=" << coll::algo_name(algo);
      }
    });
  }
}

TEST(CollAlgoDifferential, BarrierEveryAlgorithmOrders) {
  for (const auto& [ranks, algo] : cases_for(CollOp::kBarrier)) {
    World world(ranks, NetworkProfile::zero(), forced(CollOp::kBarrier, algo));
    std::atomic<int> counter{0};
    world.run([&](Rank& r) {
      for (int phase = 0; phase < 16; ++phase) {
        counter.fetch_add(1);
        r.barrier();
        ASSERT_GE(counter.load(), (phase + 1) * r.size())
            << "algo=" << coll::algo_name(algo);
        r.barrier();
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Split / dup'd communicators
// ---------------------------------------------------------------------------

TEST(CollAlgoDifferential, SplitCommunicatorsEveryAllreduceAlgorithm) {
  for (CollAlgo algo : coll::algos_for(CollOp::kAllreduce)) {
    World world(7, NetworkProfile::zero(), forced(CollOp::kAllreduce, algo));
    world.run([&](Rank& r) {
      Comm half = r.comm_split(kCommWorld, r.rank() % 2, r.rank());
      const i64 count = 1000;
      std::vector<i64> in(count), out(count);
      // Use the sub-communicator rank so the reference is computable.
      for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(half), i);
      r.allreduce(in.data(), out.data(), int(count), Datatype::kLong,
                  ReduceOp::kSum, half);
      auto expect = reduce_reference<i64>(r.size(half), count, ReduceOp::kSum,
                                          Datatype::kLong);
      ASSERT_EQ(out, expect) << "algo=" << coll::algo_name(algo);
      r.comm_free(half);
    });
  }
}

TEST(CollAlgoDifferential, DupCommunicatorRunsShmAndTreeCollectives) {
  for (CollAlgo algo :
       {CollAlgo::kShm, CollAlgo::kBinomial, CollAlgo::kLinear}) {
    World world(5, NetworkProfile::zero(), forced(CollOp::kBcast, algo));
    world.run([&](Rank& r) {
      Comm dup = r.comm_dup(kCommWorld);
      for (int root = 0; root < r.size(dup); ++root) {
        i64 v = r.rank(dup) == root ? 4242 + root : -1;
        r.bcast(&v, 1, Datatype::kLong, root, dup);
        ASSERT_EQ(v, 4242 + root) << "algo=" << coll::algo_name(algo);
      }
      r.comm_free(dup);
    });
  }
}

// ---------------------------------------------------------------------------
// MPI_IN_PLACE semantics
// ---------------------------------------------------------------------------

TEST(CollInPlace, AllreduceReduceScanMatchOutOfPlace) {
  for (CollAlgo algo : coll::algos_for(CollOp::kAllreduce)) {
    World world(6, NetworkProfile::zero(), forced(CollOp::kAllreduce, algo));
    world.run([&](Rank& r) {
      const i64 count = 333;
      auto expect = reduce_reference<i64>(r.size(), count, ReduceOp::kSum,
                                          Datatype::kLong);
      std::vector<i64> buf(count);
      for (i64 i = 0; i < count; ++i) buf[size_t(i)] = gen(r.rank(), i);
      r.allreduce(kInPlace, buf.data(), int(count), Datatype::kLong,
                  ReduceOp::kSum);
      ASSERT_EQ(buf, expect) << "algo=" << coll::algo_name(algo);
    });
  }
  World world(6);
  world.run([](Rank& r) {
    const i64 count = 64;
    // Reduce: IN_PLACE at root only; non-roots pass their send buffer.
    auto expect =
        reduce_reference<i64>(r.size(), count, ReduceOp::kMax, Datatype::kLong);
    for (int root = 0; root < r.size(); ++root) {
      std::vector<i64> buf(count);
      for (i64 i = 0; i < count; ++i) buf[size_t(i)] = gen(r.rank(), i);
      if (r.rank() == root) {
        r.reduce(kInPlace, buf.data(), int(count), Datatype::kLong,
                 ReduceOp::kMax, root);
        ASSERT_EQ(buf, expect);
      } else {
        r.reduce(buf.data(), nullptr, int(count), Datatype::kLong,
                 ReduceOp::kMax, root);
      }
    }
    // Scan in place.
    std::vector<i64> sbuf(count);
    for (i64 i = 0; i < count; ++i) sbuf[size_t(i)] = gen(r.rank(), i);
    r.scan(kInPlace, sbuf.data(), int(count), Datatype::kLong, ReduceOp::kSum);
    auto sexpect = reduce_reference<i64>(r.rank() + 1, count, ReduceOp::kSum,
                                         Datatype::kLong);
    ASSERT_EQ(sbuf, sexpect);
  });
}

TEST(CollInPlace, GatherAllgatherScatterReduceScatter) {
  World world(5);
  world.run([](Rank& r) {
    const i64 count = 48;
    int n = r.size();
    // Gather: root's contribution sits at recvbuf[root * count].
    for (int root = 0; root < n; ++root) {
      std::vector<i32> all(size_t(count) * n, -1);
      std::vector<i32> mine(count);
      for (i64 i = 0; i < count; ++i) mine[size_t(i)] = i32(gen(r.rank(), i));
      if (r.rank() == root) {
        std::memcpy(all.data() + size_t(root) * count, mine.data(),
                    size_t(count) * 4);
        r.gather(kInPlace, 0, all.data(), int(count), Datatype::kInt, root);
        for (int src = 0; src < n; ++src)
          for (i64 i = 0; i < count; ++i)
            ASSERT_EQ(all[size_t(src) * count + size_t(i)], i32(gen(src, i)));
      } else {
        r.gather(mine.data(), int(count), nullptr, int(count), Datatype::kInt,
                 root);
      }
    }
    // Allgather in place (every rank).
    std::vector<i32> all(size_t(count) * n, -1);
    for (i64 i = 0; i < count; ++i)
      all[size_t(r.rank()) * count + size_t(i)] = i32(gen(r.rank(), i));
    r.allgather(kInPlace, 0, all.data(), int(count), Datatype::kInt);
    for (int src = 0; src < n; ++src)
      for (i64 i = 0; i < count; ++i)
        ASSERT_EQ(all[size_t(src) * count + size_t(i)], i32(gen(src, i)));
    // Scatter: root keeps its block in sendbuf.
    for (int root = 0; root < n; ++root) {
      std::vector<i32> src_all;
      std::vector<i32> mine(size_t(count), -1);
      if (r.rank() == root) {
        src_all.resize(size_t(count) * n);
        for (size_t i = 0; i < src_all.size(); ++i) src_all[i] = i32(i) + root;
        r.scatter(src_all.data(), int(count),
                  const_cast<void*>(kInPlace), int(count), Datatype::kInt,
                  root);
        // Root's block is untouched inside sendbuf; nothing to verify
        // beyond no crash and peers' contents below.
      } else {
        r.scatter(nullptr, int(count), mine.data(), int(count), Datatype::kInt,
                  root);
        for (i64 i = 0; i < count; ++i)
          ASSERT_EQ(mine[size_t(i)], i32(r.rank() * count + i) + root);
      }
    }
    // Reduce_scatter in place: full input in recvbuf, result at the front.
    std::vector<int> counts(static_cast<size_t>(n), int(count));
    i64 total = i64(count) * n;
    auto expect =
        reduce_reference<i64>(n, total, ReduceOp::kSum, Datatype::kLong);
    std::vector<i64> buf(total);
    for (i64 i = 0; i < total; ++i) buf[size_t(i)] = gen(r.rank(), i);
    r.reduce_scatter(kInPlace, buf.data(), counts.data(), Datatype::kLong,
                     ReduceOp::kSum);
    for (i64 i = 0; i < count; ++i)
      ASSERT_EQ(buf[size_t(i)], expect[size_t(i64(r.rank()) * count + i)]);
  });
}

// ---------------------------------------------------------------------------
// Selection table and registry sanity
// ---------------------------------------------------------------------------

TEST(CollSelect, AutoPrefersShmForSmallAndAdaptsBySize) {
  CollTuning t;  // all auto; hw_threads pinned for machine-independence
  const int hw = 64;
  EXPECT_EQ(coll::select(CollOp::kAllreduce, t, 8, 256, true, hw),
            CollAlgo::kShm);
  EXPECT_EQ(coll::select(CollOp::kAllreduce, t, 8, 256, false, hw),
            CollAlgo::kRecursiveDoubling);
  EXPECT_EQ(coll::select(CollOp::kAllreduce, t, 8, 1 << 20, false, hw),
            CollAlgo::kRabenseifner);
  EXPECT_EQ(coll::select(CollOp::kBarrier, t, 8, 0, false, hw),
            CollAlgo::kDissemination);
  EXPECT_EQ(coll::select(CollOp::kAllgather, t, 8, 1 << 20, false, hw),
            CollAlgo::kRing);
}

TEST(CollSelect, AutoAdaptsToOversubscription) {
  CollTuning t;
  // More ranks than cores: barrier-based shm stalls on scheduler rounds,
  // pipelining tree/chain algorithms win for the data-carrying rooted
  // collectives; the single-epoch shm barrier still wins.
  EXPECT_EQ(coll::select(CollOp::kAllreduce, t, 8, 256, true, 1),
            CollAlgo::kShm);
  EXPECT_EQ(coll::select(CollOp::kAllreduce, t, 8, 256, false, 1),
            CollAlgo::kBinomial);
  EXPECT_EQ(coll::select(CollOp::kBcast, t, 8, 256, true, 1),
            CollAlgo::kBinomial);
  EXPECT_EQ(coll::select(CollOp::kScan, t, 8, 256, true, 1),
            CollAlgo::kLinear);
  EXPECT_EQ(coll::select(CollOp::kBarrier, t, 8, 0, true, 1), CollAlgo::kShm);
  EXPECT_EQ(coll::select(CollOp::kAllgather, t, 8, 256, true, 1),
            CollAlgo::kShm);
}

TEST(CollSelect, ForcedShmDegradesWhenPayloadTooBig) {
  CollTuning t;
  t.allreduce = CollAlgo::kShm;
  EXPECT_EQ(coll::select(CollOp::kAllreduce, t, 8, 1 << 20, false, 64),
            CollAlgo::kRabenseifner);
  EXPECT_EQ(coll::select(CollOp::kAllreduce, t, 8, 64, true, 64),
            CollAlgo::kShm);
}

TEST(CollSelect, ForcedUnsupportedAlgorithmThrows) {
  CollTuning t;
  t.bcast = CollAlgo::kPairwise;  // bcast has no pairwise variant
  EXPECT_THROW(coll::select(CollOp::kBcast, t, 4, 64, false), MpiError);
}

TEST(CollSelect, EnvOverridesParse) {
  CollTuning base;
  CollAlgo a;
  EXPECT_TRUE(coll::algo_from_name("raben", &a));
  EXPECT_EQ(a, CollAlgo::kRabenseifner);
  EXPECT_TRUE(coll::algo_from_name("recursive_doubling", &a));
  EXPECT_EQ(a, CollAlgo::kRecursiveDoubling);
  EXPECT_FALSE(coll::algo_from_name("quantum", &a));
  for (i32 i = 0; i < coll::kNumCollOps; ++i) {
    auto op = coll::CollOp(i);
    // Every registered variant must be selectable when forced.
    for (CollAlgo v : coll::algos_for(op))
      EXPECT_EQ(coll::select(op, forced(op, v), 8, 64, true), v)
          << coll::coll_name(op);
  }
  (void)base;
}

/// Repeated mixed shm collectives on one communicator: catches epoch /
/// slot-reuse races under the lock-free barrier (run under TSan in CI).
TEST(CollShmStress, BackToBackShmCollectivesStayConsistent) {
  CollTuning t;  // auto: small payloads all take the shm path
  World world(8, NetworkProfile::zero(), t);
  world.run([](Rank& r) {
    for (int iter = 0; iter < 200; ++iter) {
      i64 v = r.rank() + iter;
      i64 sum = 0;
      r.allreduce(&v, &sum, 1, Datatype::kLong, ReduceOp::kSum);
      i64 n = r.size();
      ASSERT_EQ(sum, n * (n - 1) / 2 + n * iter);
      i64 b = r.rank() == iter % r.size() ? 77 + iter : -1;
      r.bcast(&b, 1, Datatype::kLong, iter % r.size());
      ASSERT_EQ(b, 77 + iter);
      r.barrier();
    }
  });
}

}  // namespace
}  // namespace mpiwasm::simmpi
