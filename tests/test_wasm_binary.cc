// Builder -> binary -> decoder round-trip tests plus malformed-input
// failure injection for the decoder.
#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/wat.h"

namespace mpiwasm::wasm {
namespace {

std::vector<u8> simple_module() {
  ModuleBuilder b;
  u32 imp = b.import_func("env", "MPI_Init", {{ValType::kI32, ValType::kI32},
                                              {ValType::kI32}});
  b.add_memory(2, 10, true);
  b.export_memory();
  b.add_data_string(16, "hello");
  auto& f = b.begin_func({{}, {ValType::kI32}}, "_start");
  f.i32_const(0);
  f.i32_const(0);
  f.call(imp);
  f.end();
  return b.build();
}

TEST(BuilderDecoder, RoundTripStructure) {
  auto bytes = simple_module();
  auto result = decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(result.ok()) << result.error;
  const Module& m = *result.module;
  ASSERT_EQ(m.imports.size(), 1u);
  EXPECT_EQ(m.imports[0].module, "env");
  EXPECT_EQ(m.imports[0].name, "MPI_Init");
  ASSERT_EQ(m.memories.size(), 1u);
  EXPECT_EQ(m.memories[0].min, 2u);
  EXPECT_TRUE(m.memories[0].has_max);
  EXPECT_EQ(m.memories[0].max, 10u);
  ASSERT_EQ(m.functions.size(), 1u);
  ASSERT_EQ(m.bodies.size(), 1u);
  EXPECT_NE(m.find_export("_start", ExternKind::kFunc), nullptr);
  EXPECT_NE(m.find_export("memory", ExternKind::kMemory), nullptr);
  ASSERT_EQ(m.datas.size(), 1u);
  EXPECT_EQ(m.datas[0].bytes.size(), 5u);
  EXPECT_EQ(m.num_imported_funcs(), 1u);
  EXPECT_EQ(m.total_funcs(), 2u);
}

TEST(BuilderDecoder, FuncTypeDedup) {
  ModuleBuilder b;
  FuncType t{{ValType::kI32}, {ValType::kI32}};
  EXPECT_EQ(b.add_type(t), b.add_type(t));
}

TEST(BuilderDecoder, InstrStreamRoundTrip) {
  ModuleBuilder b;
  auto& f = b.begin_func({{ValType::kI32}, {ValType::kI32}}, "f");
  f.block(ValType::kI32);
  f.local_get(0);
  f.i32_const(-42);
  f.op(Op::kI32Add);
  f.end();
  f.end();
  auto bytes = b.build();
  auto result = decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(result.ok()) << result.error;
  const FuncBody& body = result.module->bodies[0];
  InstrReader r({body.code.data(), body.code.size()});
  std::vector<Op> ops;
  std::vector<i64> imms;
  while (!r.done()) {
    InstrView v = r.next();
    ops.push_back(v.op);
    imms.push_back(v.imm_i);
  }
  ASSERT_EQ(ops.size(), 6u);
  EXPECT_EQ(ops[0], Op::kBlock);
  EXPECT_EQ(ops[1], Op::kLocalGet);
  EXPECT_EQ(ops[2], Op::kI32Const);
  EXPECT_EQ(imms[2], -42);
  EXPECT_EQ(ops[3], Op::kI32Add);
  EXPECT_EQ(ops[4], Op::kEnd);
  EXPECT_EQ(ops[5], Op::kEnd);
}

TEST(BuilderDecoder, SimdAndPrefixedOpsRoundTrip) {
  ModuleBuilder b;
  b.add_memory(1);
  auto& f = b.begin_func({{}, {ValType::kF64}}, "f");
  V128 k{};
  k.set_lane<f64, 2>(0, 1.5);
  k.set_lane<f64, 2>(1, 2.5);
  f.v128_const(k);
  f.v128_const(k);
  f.op(Op::kF64x2Add);
  f.lane_op(Op::kF64x2ExtractLane, 1);
  f.end();
  auto bytes = b.build();
  auto result = decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(result.ok()) << result.error;
  InstrReader r({result.module->bodies[0].code.data(),
                 result.module->bodies[0].code.size()});
  InstrView c1 = r.next();
  EXPECT_EQ(c1.op, Op::kV128Const);
  EXPECT_EQ((c1.imm_v128.lane<f64, 2>(1)), 2.5);
  r.next();
  EXPECT_EQ(r.next().op, Op::kF64x2Add);
  InstrView lane = r.next();
  EXPECT_EQ(lane.op, Op::kF64x2ExtractLane);
  EXPECT_EQ(lane.imm_i, 1);
}

TEST(DecoderFailure, BadMagic) {
  std::vector<u8> bytes{0x00, 0x61, 0x73, 0x6E, 1, 0, 0, 0};
  auto r = decode_module({bytes.data(), bytes.size()});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("magic"), std::string::npos);
}

TEST(DecoderFailure, BadVersion) {
  std::vector<u8> bytes{0x00, 0x61, 0x73, 0x6D, 2, 0, 0, 0};
  auto r = decode_module({bytes.data(), bytes.size()});
  EXPECT_FALSE(r.ok());
}

TEST(DecoderFailure, TruncatedModule) {
  auto bytes = simple_module();
  for (size_t cut : {size_t(9), bytes.size() / 2, bytes.size() - 1}) {
    std::vector<u8> trunc(bytes.begin(), bytes.begin() + cut);
    auto r = decode_module({trunc.data(), trunc.size()});
    EXPECT_FALSE(r.ok()) << "cut at " << cut << " should fail";
  }
}

TEST(DecoderFailure, SectionSizeOverrun) {
  // Type section claiming a huge size.
  std::vector<u8> bytes{0x00, 0x61, 0x73, 0x6D, 1, 0, 0, 0, 0x01, 0x7F};
  auto r = decode_module({bytes.data(), bytes.size()});
  EXPECT_FALSE(r.ok());
}

TEST(DecoderFailure, OutOfOrderSections) {
  // Function section (3) before type section (1).
  std::vector<u8> bytes{0x00, 0x61, 0x73, 0x6D, 1, 0, 0, 0,
                        0x03, 0x01, 0x00,   // function section, empty
                        0x01, 0x01, 0x00};  // type section, empty
  auto r = decode_module({bytes.data(), bytes.size()});
  EXPECT_FALSE(r.ok());
}

TEST(DecoderFailure, CodeCountMismatch) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "f");
  f.end();
  auto bytes = b.build();
  // Corrupt the code section count (find section id 10 and bump the count).
  for (size_t i = 8; i + 2 < bytes.size(); ++i) {
    if (bytes[i] == 10) {  // code section id at a section boundary
      bytes[i + 2] = 2;    // count: 1 -> 2
      break;
    }
  }
  auto r = decode_module({bytes.data(), bytes.size()});
  EXPECT_FALSE(r.ok());
}

TEST(DecoderFailure, UnknownOpcodeInBody) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "f");
  f.end();
  auto bytes = b.build();
  auto result = decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(result.ok());
  // Inject an unknown opcode directly into the decoded body and re-walk it.
  FuncBody body = result.module->bodies[0];
  body.code.insert(body.code.begin(), 0xFE);
  InstrReader r({body.code.data(), body.code.size()});
  EXPECT_THROW({ while (!r.done()) r.next(); }, DecodeError);
}

TEST(Wat, PrintsPaperStyleListing) {
  auto bytes = simple_module();
  auto result = decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(result.ok());
  std::string wat = to_wat(*result.module);
  EXPECT_NE(wat.find("(import \"env\" \"MPI_Init\" (func (type"), std::string::npos);
  EXPECT_NE(wat.find("(export \"_start\" (func"), std::string::npos);
  EXPECT_NE(wat.find("(memory (;0;) 2 10)"), std::string::npos);
  EXPECT_NE(wat.find("i32.const"), std::string::npos);
}

TEST(Wat, TruncatesLongBodies) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "f");
  for (int i = 0; i < 100; ++i) {
    f.i32_const(i);
    f.op(Op::kDrop);
  }
  f.end();
  auto bytes = b.build();
  auto result = decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(result.ok());
  WatOptions opts;
  opts.max_code_lines = 5;
  std::string wat = to_wat(*result.module, opts);
  EXPECT_NE(wat.find(";; ..."), std::string::npos);
}

}  // namespace
}  // namespace mpiwasm::wasm
