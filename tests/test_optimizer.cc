// Optimizer pass tests: transformations fire where expected and never
// change observable results (checked against the Baseline tier).
#include "testlib.h"

#include "runtime/lowering.h"
#include "runtime/optimizer.h"
#include "wasm/decoder.h"

namespace mpiwasm::test {
namespace {

using rt::RFunc;
using rt::RModule;
using rt::ROp;

RFunc lower_one(const std::vector<u8>& bytes, bool optimize) {
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  EXPECT_TRUE(decoded.ok()) << decoded.error;
  RFunc f = rt::lower_function(*decoded.module, 0);
  if (optimize) rt::optimize_function(f);
  return f;
}

bool contains_op(const RFunc& f, ROp op) {
  for (const auto& in : f.code)
    if (in.op == op) return true;
  return false;
}

size_t count_op(const RFunc& f, ROp op) {
  size_t n = 0;
  for (const auto& in : f.code)
    if (in.op == op) ++n;
  return n;
}

TEST(Optimizer, FoldsConstantExpressions) {
  auto bytes = build_single_func({{}, {I32}}, [](auto& f) {
    f.i32_const(6);
    f.i32_const(7);
    f.op(Op::kI32Mul);
    f.end();
  }, 0);
  RFunc f = lower_one(bytes, true);
  // Must collapse to a single Const + Return.
  EXPECT_FALSE(contains_op(f, ROp::kI32Mul));
  ASSERT_GE(f.code.size(), 1u);
  EXPECT_EQ(f.code[0].op, ROp::kConst);
  EXPECT_EQ(u32(f.code[0].imm), 42u);
}

TEST(Optimizer, FusesCompareBranchInLoops) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    u32 i = f.add_local(I32);
    u32 acc = f.add_local(I32);
    f.for_loop_i32(i, 0, 0, 1, [&] {
      f.local_get(acc);
      f.local_get(i);
      f.op(Op::kI32Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.end();
  }, 0);
  RFunc base = lower_one(bytes, false);
  RFunc opt = lower_one(bytes, true);
  EXPECT_FALSE(contains_op(base, ROp::kBrIfI32GeS));
  EXPECT_TRUE(contains_op(opt, ROp::kBrIfI32GeS))
      << opt.to_string();
  // The loop body must shrink substantially.
  EXPECT_LT(opt.code.size(), base.code.size());
}

TEST(Optimizer, EmitsAddImmForConstIncrements) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.i32_const(5);
    f.op(Op::kI32Add);
    f.i32_const(3);
    f.op(Op::kI32Shl);
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kI32AddImm)) << opt.to_string();
  EXPECT_TRUE(contains_op(opt, ROp::kI32ShlImm)) << opt.to_string();
}

TEST(Optimizer, FusesF64MulAdd) {
  auto bytes = build_single_func({{F64, F64, F64}, {F64}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kF64Mul);
    f.local_get(2);
    f.op(Op::kF64Add);
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kF64MulAdd)) << opt.to_string();
  EXPECT_FALSE(contains_op(opt, ROp::kF64Mul));
}

TEST(Optimizer, RemovesDeadPureCode) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.i32_const(9);
    f.op(Op::kI32Mul);
    f.op(Op::kDrop);  // dead computation
    f.local_get(0);
    f.end();
  }, 0);
  RFunc base = lower_one(bytes, false);
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(base, ROp::kI32Mul) ||
              contains_op(base, ROp::kI32MulImm));
  EXPECT_FALSE(contains_op(opt, ROp::kI32Mul));
  EXPECT_FALSE(contains_op(opt, ROp::kI32MulImm));
}

TEST(Optimizer, KeepsTrappingOpsEvenIfDead) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.i32_const(1);
    f.local_get(0);
    f.op(Op::kI32DivU);  // may trap: must NOT be eliminated
    f.op(Op::kDrop);
    f.i32_const(7);
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kI32DivU)) << opt.to_string();
  // And it still traps at runtime on every tier.
  for (EngineTier tier : all_tiers()) {
    auto inst = instantiate(bytes, tier);
    EXPECT_THROW(inst->invoke("run", std::vector<Value>{Value::from_i32(0)}),
                 rt::Trap);
  }
}

TEST(Optimizer, KeepsStoresAndCalls) {
  ModuleBuilder b;
  u32 imp = b.import_func("env", "sink", {{I32}, {}});
  b.add_memory(1);
  auto& f = b.begin_func({{I32}, {I32}}, "run");
  f.i32_const(0);
  f.local_get(0);
  f.mem_op(Op::kI32Store);
  f.local_get(0);
  f.call(imp);
  f.local_get(0);
  f.end();
  auto bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(decoded.ok());
  RFunc opt = rt::lower_function(*decoded.module, 0);
  rt::optimize_function(opt);
  EXPECT_TRUE(contains_op(opt, ROp::kI32Store));
  EXPECT_TRUE(contains_op(opt, ROp::kCall));
}

TEST(Optimizer, CopyPropagationRemovesLocalShuffles) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    u32 t1 = f.add_local(I32);
    u32 t2 = f.add_local(I32);
    f.local_get(0);
    f.local_set(t1);
    f.local_get(t1);
    f.local_set(t2);
    f.local_get(t2);
    f.end();
  }, 0);
  RFunc base = lower_one(bytes, false);
  RFunc opt = lower_one(bytes, true);
  EXPECT_LT(count_op(opt, ROp::kMov), count_op(base, ROp::kMov));
}

TEST(Optimizer, ReducesInstructionCountOnHotLoop) {
  auto bytes = build_single_func({{I32}, {I64}}, [](auto& f) {
    u32 i = f.add_local(I32);
    u32 acc = f.add_local(I64);
    f.for_loop_i32(i, 0, 0, 1, [&] {
      f.local_get(acc);
      f.local_get(i);
      f.op(Op::kI64ExtendI32S);
      f.local_get(i);
      f.op(Op::kI64ExtendI32S);
      f.op(Op::kI64Mul);
      f.op(Op::kI64Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.end();
  }, 0);
  RFunc base = lower_one(bytes, false);
  RFunc opt = lower_one(bytes, true);
  // At least 25% fewer executed instruction slots.
  EXPECT_LE(opt.code.size() * 4, base.code.size() * 3)
      << "base=" << base.code.size() << " opt=" << opt.code.size();
  // Semantics preserved.
  auto ib = instantiate(bytes, EngineTier::kBaseline);
  auto io = instantiate(bytes, EngineTier::kOptimizing);
  auto in = std::vector<Value>{Value::from_i32(1000)};
  EXPECT_EQ(ib->invoke("run", in).as_i64(), io->invoke("run", in).as_i64());
}

TEST(Optimizer, BranchThreadingCollapsesBrChains) {
  // if/else both branching to end generates Br-to-Br chains.
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.block(I32);
    f.block(I32);
    f.local_get(0);
    f.if_(I32);
    f.i32_const(1);
    f.else_();
    f.i32_const(2);
    f.end();
    f.br(1);  // br over the middle block -> threads through
    f.end();
    f.br(0);
    f.end();
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  // Every Br must point at a non-Br instruction (fully threaded).
  for (const auto& in : opt.code) {
    if (in.op == ROp::kBr)
      EXPECT_NE(opt.code[in.imm].op, ROp::kBr) << opt.to_string();
  }
  for (EngineTier tier : all_tiers()) {
    auto inst = instantiate(bytes, tier);
    EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(1)}).as_i32(), 1);
    EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(0)}).as_i32(), 2);
  }
}

// ---------------------------------------------------------------------------
// Superinstruction fusion (load+op, op+store, cmp+select, indexed address,
// f32 FMA) and mul->shl strength reduction.
// ---------------------------------------------------------------------------

TEST(Superinstructions, StrengthReducesMulByPowerOfTwo) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.i32_const(8);
    f.op(Op::kI32Mul);
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kI32ShlImm)) << opt.to_string();
  EXPECT_FALSE(contains_op(opt, ROp::kI32MulImm)) << opt.to_string();
  for (EngineTier tier : all_tiers()) {
    auto inst = instantiate(bytes, tier);
    EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(7)}).as_i32(),
              56);
  }
}

TEST(Superinstructions, FusesLoadAdd) {
  auto bytes = build_single_func({{}, {I32}}, [](auto& f) {
    f.i32_const(0);
    f.mem_op(Op::kI32Load);
    f.i32_const(4);
    f.mem_op(Op::kI32Load);
    f.op(Op::kI32Add);
    f.end();
  });
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kI32LoadAdd)) << opt.to_string();
}

TEST(Superinstructions, FusesAddStore) {
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.i32_const(0);
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32Add);
    f.mem_op(Op::kI32Store);
    f.i32_const(0);
    f.mem_op(Op::kI32Load);
    f.end();
  });
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kI32AddStore)) << opt.to_string();
  for (EngineTier tier : all_tiers()) {
    auto inst = instantiate(bytes, tier);
    auto in = std::vector<Value>{Value::from_i32(30), Value::from_i32(12)};
    EXPECT_EQ(inst->invoke("run", in).as_i32(), 42);
  }
}

TEST(Superinstructions, FusesCmpSelect) {
  // min(x, y) = select(x, y, x < y)
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32LtS);
    f.op(Op::kSelect);
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kSelectI32LtS)) << opt.to_string();
  EXPECT_FALSE(contains_op(opt, ROp::kSelect)) << opt.to_string();
  for (EngineTier tier : all_tiers()) {
    auto inst = instantiate(bytes, tier);
    auto lo = std::vector<Value>{Value::from_i32(-3), Value::from_i32(9)};
    auto hi = std::vector<Value>{Value::from_i32(9), Value::from_i32(-3)};
    EXPECT_EQ(inst->invoke("run", lo).as_i32(), -3) << rt::tier_name(tier);
    EXPECT_EQ(inst->invoke("run", hi).as_i32(), -3) << rt::tier_name(tier);
  }
}

TEST(Superinstructions, FusesIndexedAddress) {
  // a[base + i*4] with a register base and a scaled index.
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.op(Op::kI32Add);
    f.mem_op(Op::kI32Load);
    f.end();
  });
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kI32LoadIx)) << opt.to_string();
  EXPECT_FALSE(contains_op(opt, ROp::kI32Load)) << opt.to_string();
}

TEST(Superinstructions, FusesF32MulAdd) {
  auto bytes = build_single_func({{F32, F32, F32}, {F32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kF32Mul);
    f.local_get(2);
    f.op(Op::kF32Add);
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kF32MulAdd)) << opt.to_string();
  EXPECT_FALSE(contains_op(opt, ROp::kF32Mul)) << opt.to_string();
}

TEST(Superinstructions, DisabledByOption) {
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32LtS);
    f.op(Op::kSelect);
    f.end();
  }, 0);
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(decoded.ok());
  RFunc f = rt::lower_function(*decoded.module, 0);
  rt::OptOptions opts = rt::OptOptions::full();
  opts.fuse_super = false;
  rt::optimize_function(f, opts);
  EXPECT_FALSE(contains_op(f, ROp::kSelectI32LtS));
  EXPECT_TRUE(contains_op(f, ROp::kSelect));
}

// ---------------------------------------------------------------------------
// SIMD-aware optimizer additions (gated by OptOptions::simd).
// ---------------------------------------------------------------------------

TEST(SimdSuperinstructions, FusesV128LoadAdd) {
  auto bytes = build_single_func({{}, {}}, [](auto& f) {
    f.i32_const(0);
    f.i32_const(16);
    f.mem_op(Op::kV128Load);
    f.i32_const(32);
    f.mem_op(Op::kV128Load);
    f.op(Op::kF64x2Add);
    f.mem_op(Op::kV128Store);
    f.end();
  });
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kF64x2LoadAdd)) << opt.to_string();
}

TEST(SimdSuperinstructions, FusesV128AddStore) {
  auto bytes = build_single_func({{}, {}}, [](auto& f) {
    u32 a = f.add_local(V128T);
    u32 b = f.add_local(V128T);
    f.i32_const(16);
    f.mem_op(Op::kV128Load);
    f.local_set(a);
    f.i32_const(32);
    f.mem_op(Op::kV128Load);
    f.local_set(b);
    f.i32_const(0);
    f.local_get(a);
    f.local_get(b);
    f.op(Op::kF64x2Add);
    f.mem_op(Op::kV128Store);
    f.end();
  });
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kF64x2AddStore)) << opt.to_string();
}

TEST(SimdSuperinstructions, FusesV128IndexedAddress) {
  auto bytes = build_single_func({{I32, I32}, {F64}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.i32_const(16);
    f.op(Op::kI32Mul);
    f.op(Op::kI32Add);
    f.mem_op(Op::kV128Load);
    f.lane_op(Op::kF64x2ExtractLane, 0);
    f.end();
  });
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kV128LoadIx)) << opt.to_string();
  EXPECT_FALSE(contains_op(opt, ROp::kV128Load)) << opt.to_string();
}

TEST(SimdSuperinstructions, SimdFusionDisabledByOption) {
  auto bytes = build_single_func({{}, {}}, [](auto& f) {
    f.i32_const(0);
    f.i32_const(16);
    f.mem_op(Op::kV128Load);
    f.i32_const(32);
    f.mem_op(Op::kV128Load);
    f.op(Op::kF64x2Add);
    f.mem_op(Op::kV128Store);
    f.end();
  });
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(decoded.ok());
  RFunc f = rt::lower_function(*decoded.module, 0);
  rt::OptOptions opts = rt::OptOptions::full();
  opts.simd = false;
  rt::optimize_function(f, opts);
  // v128 ops stay un-fused; scalar superinstructions are unaffected.
  EXPECT_FALSE(contains_op(f, ROp::kF64x2LoadAdd)) << f.to_string();
  EXPECT_FALSE(contains_op(f, ROp::kF64x2AddStore)) << f.to_string();
  EXPECT_TRUE(contains_op(f, ROp::kV128Load)) << f.to_string();
  EXPECT_TRUE(contains_op(f, ROp::kF64x2Add)) << f.to_string();
}

TEST(SimdFolding, SplatOfConstantBecomesPooledV128Const) {
  auto bytes = build_single_func({{}, {F64}}, [](auto& f) {
    f.f64_const(2.5);
    f.op(Op::kF64x2Splat);
    f.lane_op(Op::kF64x2ExtractLane, 1);
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  EXPECT_FALSE(contains_op(opt, ROp::kF64x2Splat)) << opt.to_string();
  EXPECT_TRUE(contains_op(opt, ROp::kConstV128)) << opt.to_string();
}

TEST(SimdFolding, FoldsV128BinopOfTwoConstants) {
  wasm::V128 a{}, b{};
  for (int i = 0; i < 16; ++i) {
    a.bytes[i] = u8(0xF0 | i);
    b.bytes[i] = u8(0x0F + i);
  }
  auto bytes = build_single_func({{}, {I64}}, [&](auto& f) {
    f.v128_const(a);
    f.v128_const(b);
    f.op(Op::kV128And);
    f.lane_op(Op::kI64x2ExtractLane, 0);
    f.end();
  }, 0);
  RFunc opt = lower_one(bytes, true);
  EXPECT_FALSE(contains_op(opt, ROp::kV128And)) << opt.to_string();
  EXPECT_EQ(count_op(opt, ROp::kConstV128), 1u) << opt.to_string();
}

TEST(SimdBoundsHoisting, HoistsV128StoreLoop) {
  // for (i = 0; i < n; i += 16) mem[i] = splat(i): the v128 store gets a
  // raw twin behind the guard; the slow copy keeps the checked op.
  auto bytes = build_single_func({{I32}, {}}, [](auto& f) {
    u32 i = f.add_local(I32);
    f.for_loop_i32(i, 0, 0, 16, [&] {
      f.local_get(i);
      f.local_get(i);
      f.op(Op::kI8x16Splat);
      f.mem_op(Op::kV128Store);
    });
    f.end();
  });
  RFunc opt = lower_one(bytes, true);
  EXPECT_TRUE(contains_op(opt, ROp::kMemGuard)) << opt.to_string();
  EXPECT_TRUE(contains_op(opt, ROp::kV128StoreRaw)) << opt.to_string();
  EXPECT_TRUE(contains_op(opt, ROp::kV128Store)) << opt.to_string();
}

// ---------------------------------------------------------------------------
// Bounds-check hoisting: counted loops with affine accesses are versioned
// behind a kMemGuard; the fast copy runs unchecked raw ops, the slow copy
// keeps every check, and traps fire at the original point.
// ---------------------------------------------------------------------------

namespace {

std::vector<u8> store_loop_module() {
  // run(n): for (i = 0; i < n; ++i) a[i] = i;  return a[n-1]
  return build_single_func({{I32}, {I32}}, [](auto& f) {
    u32 n = 0;
    u32 i = f.add_local(I32);
    f.for_loop_i32(i, 0, n, 1, [&] {
      f.local_get(i);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.mem_op(Op::kI32Store);
    });
    f.local_get(n);
    f.i32_const(1);
    f.op(Op::kI32Sub);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.mem_op(Op::kI32Load);
    f.end();
  });
}

}  // namespace

TEST(BoundsHoisting, EmitsGuardAndRawOpsForAffineLoop) {
  RFunc opt = lower_one(store_loop_module(), true);
  EXPECT_TRUE(contains_op(opt, ROp::kMemGuard)) << opt.to_string();
  EXPECT_TRUE(contains_op(opt, ROp::kI32StoreRaw)) << opt.to_string();
  // The slow copy keeps the checked op.
  EXPECT_TRUE(contains_op(opt, ROp::kI32Store)) << opt.to_string();
}

TEST(BoundsHoisting, DisabledByOption) {
  auto bytes = store_loop_module();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  ASSERT_TRUE(decoded.ok());
  RFunc f = rt::lower_function(*decoded.module, 0);
  rt::OptOptions opts = rt::OptOptions::full();
  opts.hoist_bounds = false;
  rt::optimize_function(f, opts);
  EXPECT_FALSE(contains_op(f, ROp::kMemGuard));
  EXPECT_FALSE(contains_op(f, ROp::kI32StoreRaw));
}

TEST(BoundsHoisting, GuardedLoopComputesSameResults) {
  auto bytes = store_loop_module();
  auto ref = instantiate(bytes, EngineTier::kInterp);
  for (EngineTier tier : all_tiers()) {
    auto inst = instantiate(bytes, tier);
    for (i32 n : {1, 2, 64, 1000, 16384}) {  // 16384 i32s = exactly one page
      auto in = std::vector<Value>{Value::from_i32(n)};
      EXPECT_EQ(ref->invoke("run", in).as_i32(), inst->invoke("run", in).as_i32())
          << rt::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(BoundsHoisting, GuardFailurePreservesTrapPointAndPartialStores) {
  // One page holds 16384 i32 slots; run(16394) must perform stores
  // 0..16383, then trap kMemoryOutOfBounds on i = 16384 — under every
  // engine configuration, including the hoisted-guard fast/slow split
  // (the guard fails, the slow loop runs, the trap fires at the original
  // access).
  auto bytes = store_loop_module();
  const i32 fits = 16384;
  for (const EngineConfig& cfg : all_engine_configs()) {
    auto inst = instantiate_cfg(bytes, cfg);
    try {
      inst->invoke("run", std::vector<Value>{Value::from_i32(fits + 10)});
      FAIL() << "expected trap under " << config_label(cfg);
    } catch (const rt::Trap& t) {
      EXPECT_EQ(t.kind(), rt::TrapKind::kMemoryOutOfBounds) << config_label(cfg);
    }
    // Every in-bounds iteration must have executed before the trap.
    rt::LinearMemory& mem = inst->memory();
    EXPECT_EQ(mem.load<u32>(0), 0u) << config_label(cfg);
    EXPECT_EQ(mem.load<u32>(4ull * 100), 100u) << config_label(cfg);
    EXPECT_EQ(mem.load<u32>(4ull * (fits - 1)), u32(fits - 1))
        << config_label(cfg);
  }
}

TEST(BoundsHoisting, LoweringFusesConstOperands) {
  // The lowering-time const+binop fusion benefits the Baseline tier too.
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.i32_const(5);
    f.op(Op::kI32Add);
    f.end();
  }, 0);
  RFunc base = lower_one(bytes, false);
  EXPECT_TRUE(contains_op(base, ROp::kI32AddImm)) << base.to_string();
  EXPECT_FALSE(contains_op(base, ROp::kI32Add)) << base.to_string();
}

}  // namespace
}  // namespace mpiwasm::test
