// Differential SIMD (v128) suite.
//
// Every v128 instruction is checked against an independent scalar reference
// evaluator (plain per-lane loops written here, not the runtime's arith.h
// helpers), across every engine configuration (all four static tiers, the
// plain-optimizing ablation, tiered promotion-threshold-1/staged) and both
// dispatch modes (computed-goto and forced switch). On top of the per-op
// sweep: scalar-vs-SIMD micro-kernel twins (bit-exact for element-wise and
// integer kernels, ULP-bounded for reassociated float reductions), the
// opt_simd ablation, and OOB-trap-point equivalence for v128 accesses under
// hoisted bounds checks.
#include "testlib.h"

#include <cmath>
#include <cstring>
#include <random>

#include "runtime/exec.h"
#include "runtime/memory.h"
#include "toolchain/kernels.h"

namespace mpiwasm::test {
namespace {

using rt::EngineConfig;
using rt::Trap;
using rt::TrapKind;
using wasm::V128;

// --- independent per-lane reference helpers --------------------------------

template <typename T, int N>
T get_lane(const V128& v, int i) {
  T x;
  std::memcpy(&x, v.bytes + i * sizeof(T), sizeof(T));
  return x;
}
template <typename T, int N>
void put_lane(V128& v, int i, T x) {
  std::memcpy(v.bytes + i * sizeof(T), &x, sizeof(T));
}

template <typename T, int N, typename F>
V128 map1(const V128& a, F f) {
  V128 out{};
  for (int i = 0; i < N; ++i) put_lane<T, N>(out, i, T(f(get_lane<T, N>(a, i))));
  return out;
}
template <typename T, int N, typename F>
V128 map2(const V128& a, const V128& b, F f) {
  V128 out{};
  for (int i = 0; i < N; ++i)
    put_lane<T, N>(out, i, T(f(get_lane<T, N>(a, i), get_lane<T, N>(b, i))));
  return out;
}
template <typename T, int N, typename F>
V128 mask2(const V128& a, const V128& b, F pred) {
  using U = std::make_unsigned_t<
      std::conditional_t<std::is_floating_point_v<T>,
                         std::conditional_t<sizeof(T) == 4, u32, u64>, T>>;
  V128 out{};
  for (int i = 0; i < N; ++i)
    put_lane<U, N>(out, i,
                   pred(get_lane<T, N>(a, i), get_lane<T, N>(b, i)) ? U(~U(0))
                                                                    : U(0));
  return out;
}

// --- interesting input vectors ---------------------------------------------

std::vector<V128> test_vectors() {
  std::vector<V128> vs;
  V128 v{};
  vs.push_back(v);  // all zeros
  std::memset(v.bytes, 0xFF, 16);
  vs.push_back(v);  // all ones
  for (int i = 0; i < 16; ++i) v.bytes[i] = u8(i * 17 + 3);
  vs.push_back(v);  // counting bytes
  // Integer sign boundaries in every lane width.
  put_lane<u32, 4>(v, 0, 0x80000000u);
  put_lane<u32, 4>(v, 1, 0x7FFFFFFFu);
  put_lane<u32, 4>(v, 2, 1u);
  put_lane<u32, 4>(v, 3, 0xFFFFFFFFu);
  vs.push_back(v);
  // Float specials: NaN, -0.0, inf, denormal.
  put_lane<f64, 2>(v, 0, std::numeric_limits<f64>::quiet_NaN());
  put_lane<f64, 2>(v, 1, -0.0);
  vs.push_back(v);
  put_lane<f32, 4>(v, 0, std::numeric_limits<f32>::infinity());
  put_lane<f32, 4>(v, 1, -std::numeric_limits<f32>::infinity());
  put_lane<f32, 4>(v, 2, 1.5f);
  put_lane<f32, 4>(v, 3, -2.5e-40f);
  vs.push_back(v);
  std::mt19937_64 rng(42);
  for (int k = 0; k < 4; ++k) {
    for (int i = 0; i < 2; ++i) put_lane<u64, 2>(v, i, rng());
    vs.push_back(v);
  }
  return vs;
}

// --- module factories -------------------------------------------------------

constexpr u32 kInA = 0x100, kInB = 0x110, kInC = 0x120, kOut = 0x140;

std::vector<u8> binop_module(Op op) {
  return build_single_func({{}, {}}, [&](auto& f) {
    f.i32_const(i32(kOut));
    f.i32_const(i32(kInA));
    f.mem_op(Op::kV128Load);
    f.i32_const(i32(kInB));
    f.mem_op(Op::kV128Load);
    f.op(op);
    f.mem_op(Op::kV128Store);
    f.end();
  });
}

std::vector<u8> unop_module(Op op) {
  return build_single_func({{}, {}}, [&](auto& f) {
    f.i32_const(i32(kOut));
    f.i32_const(i32(kInA));
    f.mem_op(Op::kV128Load);
    f.op(op);
    f.mem_op(Op::kV128Store);
    f.end();
  });
}

std::vector<u8> shift_module(Op op) {
  return build_single_func({{I32}, {}}, [&](auto& f) {
    f.i32_const(i32(kOut));
    f.i32_const(i32(kInA));
    f.mem_op(Op::kV128Load);
    f.local_get(0);
    f.op(op);
    f.mem_op(Op::kV128Store);
    f.end();
  });
}

std::vector<u8> reduce_i32_module(Op op) {  // any_true / all_true family
  return build_single_func({{}, {I32}}, [&](auto& f) {
    f.i32_const(i32(kInA));
    f.mem_op(Op::kV128Load);
    f.op(op);
    f.end();
  });
}

/// Copies the inputs into linear memory, invokes "run", and reads the
/// 16-byte result back from kOut. Reusing one instance across input sets
/// also drives the tiered configs through their mid-sweep promotions.
V128 run_on(rt::Instance& inst, const V128& a, const V128& b, const V128& c,
            const std::vector<rt::Value>& args = {}) {
  u8* mem = inst.memory().base();
  std::memcpy(mem + kInA, a.bytes, 16);
  std::memcpy(mem + kInB, b.bytes, 16);
  std::memcpy(mem + kInC, c.bytes, 16);
  inst.invoke("run", args);
  V128 out{};
  std::memcpy(out.bytes, mem + kOut, 16);
  return out;
}

V128 run_v128(const std::vector<u8>& bytes, const EngineConfig& cfg,
              const V128& a, const V128& b, const V128& c,
              const std::vector<rt::Value>& args = {}) {
  auto inst = instantiate_cfg(bytes, cfg);
  return run_on(*inst, a, b, c, args);
}

/// Every configuration the differential sweep runs under: the shared
/// all_engine_configs() list plus explicit opt_simd on/off optimizing
/// configs (the shared list inherits opt_simd from MPIWASM_SIMD, so pin
/// both here to stay env-independent).
std::vector<EngineConfig> simd_configs() {
  auto cfgs = all_engine_configs();
  EngineConfig simd_on;
  simd_on.tier = EngineTier::kOptimizing;
  simd_on.opt_simd = true;
  cfgs.push_back(simd_on);
  EngineConfig simd_off = simd_on;
  simd_off.opt_simd = false;
  cfgs.push_back(simd_off);
  return cfgs;
}

/// Runs `check` under every engine config and, when the build has the
/// computed-goto executor, under the forced-switch loop as well.
void for_each_mode(const std::function<void(const EngineConfig&)>& check) {
  for (const EngineConfig& cfg : simd_configs()) {
    check(cfg);
    if (rt::threaded_dispatch_compiled()) {
      rt::set_dispatch_force_switch(true);
      check(cfg);
      rt::set_dispatch_force_switch(false);
    }
  }
}

/// Lane comparison mode: 'b' = exact bytes; 'f'/'d' = f32/f64 lanes where
/// two NaNs compare equal regardless of payload (Wasm arithmetic may return
/// any NaN, and host addss/addps operand order legitimately picks different
/// payloads than the reference loop).
bool v128_lanes_equal(const V128& got, const V128& want, char mode) {
  if (mode == 'b') return got == want;
  int lanes = mode == 'f' ? 4 : 2;
  for (int i = 0; i < lanes; ++i) {
    if (mode == 'f') {
      f32 g = get_lane<f32, 4>(got, i), w = get_lane<f32, 4>(want, i);
      if (std::isnan(g) && std::isnan(w)) continue;
      if (std::memcmp(&g, &w, 4) != 0) return false;
    } else {
      f64 g = get_lane<f64, 2>(got, i), w = get_lane<f64, 2>(want, i);
      if (std::isnan(g) && std::isnan(w)) continue;
      if (std::memcmp(&g, &w, 8) != 0) return false;
    }
  }
  return true;
}

void expect_v128_eq(const V128& got, const V128& want, const std::string& what,
                    char mode = 'b') {
  if (!v128_lanes_equal(got, want, mode)) {
    char buf[8];
    std::string g, w;
    for (int i = 0; i < 16; ++i) {
      std::snprintf(buf, sizeof buf, "%02x", got.bytes[i]);
      g += buf;
      std::snprintf(buf, sizeof buf, "%02x", want.bytes[i]);
      w += buf;
    }
    ADD_FAILURE() << what << ": got " << g << ", want " << w;
  }
}

// ---------------------------------------------------------------------------
// Per-op differential sweep
// ---------------------------------------------------------------------------

struct BinCase {
  Op op;
  V128 (*ref)(const V128&, const V128&);
  char mode = 'b';  // see v128_lanes_equal
};

#define ARITH2(T, N, expr) \
  [](const V128& a, const V128& b) { return map2<T, N>(a, b, [](T x, T y) { (void)x; (void)y; return (expr); }); }
#define CMP2(T, N, expr) \
  [](const V128& a, const V128& b) { return mask2<T, N>(a, b, [](T x, T y) { return (expr); }); }

const BinCase kBinCases[] = {
    {Op::kV128And, ARITH2(u8, 16, u8(x & y))},
    {Op::kV128AndNot, ARITH2(u8, 16, u8(x & ~y))},
    {Op::kV128Or, ARITH2(u8, 16, u8(x | y))},
    {Op::kV128Xor, ARITH2(u8, 16, u8(x ^ y))},
    {Op::kI8x16Add, ARITH2(u8, 16, u8(x + y))},
    {Op::kI8x16Sub, ARITH2(u8, 16, u8(x - y))},
    {Op::kI16x8Add, ARITH2(u16, 8, u16(x + y))},
    {Op::kI16x8Sub, ARITH2(u16, 8, u16(x - y))},
    {Op::kI16x8Mul, ARITH2(u16, 8, u16(x * y))},
    {Op::kI32x4Add, ARITH2(u32, 4, x + y)},
    {Op::kI32x4Sub, ARITH2(u32, 4, x - y)},
    {Op::kI32x4Mul, ARITH2(u32, 4, x* y)},
    {Op::kI32x4MinS, ARITH2(i32, 4, x < y ? x : y)},
    {Op::kI32x4MinU, ARITH2(u32, 4, x < y ? x : y)},
    {Op::kI32x4MaxS, ARITH2(i32, 4, x > y ? x : y)},
    {Op::kI32x4MaxU, ARITH2(u32, 4, x > y ? x : y)},
    {Op::kI64x2Add, ARITH2(u64, 2, x + y)},
    {Op::kI64x2Sub, ARITH2(u64, 2, x - y)},
    {Op::kI64x2Mul, ARITH2(u64, 2, x* y)},
    {Op::kF32x4Add, ARITH2(f32, 4, x + y), 'f'},
    {Op::kF32x4Sub, ARITH2(f32, 4, x - y), 'f'},
    {Op::kF32x4Mul, ARITH2(f32, 4, x* y), 'f'},
    {Op::kF32x4Div, ARITH2(f32, 4, x / y), 'f'},
    {Op::kF32x4Pmin, ARITH2(f32, 4, y < x ? y : x), 'f'},
    {Op::kF32x4Pmax, ARITH2(f32, 4, x < y ? y : x), 'f'},
    {Op::kF64x2Add, ARITH2(f64, 2, x + y), 'd'},
    {Op::kF64x2Sub, ARITH2(f64, 2, x - y), 'd'},
    {Op::kF64x2Mul, ARITH2(f64, 2, x* y), 'd'},
    {Op::kF64x2Div, ARITH2(f64, 2, x / y), 'd'},
    {Op::kF64x2Pmin, ARITH2(f64, 2, y < x ? y : x), 'd'},
    {Op::kF64x2Pmax, ARITH2(f64, 2, x < y ? y : x), 'd'},
    {Op::kI8x16Eq, CMP2(u8, 16, x == y)},
    {Op::kI8x16Ne, CMP2(u8, 16, x != y)},
    {Op::kI8x16LtS, CMP2(i8, 16, x < y)},
    {Op::kI8x16LtU, CMP2(u8, 16, x < y)},
    {Op::kI8x16GtS, CMP2(i8, 16, x > y)},
    {Op::kI8x16GtU, CMP2(u8, 16, x > y)},
    {Op::kI8x16LeS, CMP2(i8, 16, x <= y)},
    {Op::kI8x16LeU, CMP2(u8, 16, x <= y)},
    {Op::kI8x16GeS, CMP2(i8, 16, x >= y)},
    {Op::kI8x16GeU, CMP2(u8, 16, x >= y)},
    {Op::kI16x8Eq, CMP2(u16, 8, x == y)},
    {Op::kI16x8Ne, CMP2(u16, 8, x != y)},
    {Op::kI16x8LtS, CMP2(i16, 8, x < y)},
    {Op::kI16x8LtU, CMP2(u16, 8, x < y)},
    {Op::kI16x8GtS, CMP2(i16, 8, x > y)},
    {Op::kI16x8GtU, CMP2(u16, 8, x > y)},
    {Op::kI16x8LeS, CMP2(i16, 8, x <= y)},
    {Op::kI16x8LeU, CMP2(u16, 8, x <= y)},
    {Op::kI16x8GeS, CMP2(i16, 8, x >= y)},
    {Op::kI16x8GeU, CMP2(u16, 8, x >= y)},
    {Op::kI32x4Eq, CMP2(u32, 4, x == y)},
    {Op::kI32x4Ne, CMP2(u32, 4, x != y)},
    {Op::kI32x4LtS, CMP2(i32, 4, x < y)},
    {Op::kI32x4LtU, CMP2(u32, 4, x < y)},
    {Op::kI32x4GtS, CMP2(i32, 4, x > y)},
    {Op::kI32x4GtU, CMP2(u32, 4, x > y)},
    {Op::kI32x4LeS, CMP2(i32, 4, x <= y)},
    {Op::kI32x4LeU, CMP2(u32, 4, x <= y)},
    {Op::kI32x4GeS, CMP2(i32, 4, x >= y)},
    {Op::kI32x4GeU, CMP2(u32, 4, x >= y)},
    {Op::kF32x4Eq, CMP2(f32, 4, x == y)},
    {Op::kF32x4Ne, CMP2(f32, 4, x != y)},
    {Op::kF32x4Lt, CMP2(f32, 4, x < y)},
    {Op::kF32x4Gt, CMP2(f32, 4, x > y)},
    {Op::kF32x4Le, CMP2(f32, 4, x <= y)},
    {Op::kF32x4Ge, CMP2(f32, 4, x >= y)},
    {Op::kF64x2Eq, CMP2(f64, 2, x == y)},
    {Op::kF64x2Ne, CMP2(f64, 2, x != y)},
    {Op::kF64x2Lt, CMP2(f64, 2, x < y)},
    {Op::kF64x2Gt, CMP2(f64, 2, x > y)},
    {Op::kF64x2Le, CMP2(f64, 2, x <= y)},
    {Op::kF64x2Ge, CMP2(f64, 2, x >= y)},
};

TEST(SimdDifferential, LanewiseBinopsAndComparisons) {
  auto vecs = test_vectors();
  for (const BinCase& bc : kBinCases) {
    auto bytes = binop_module(bc.op);
    for_each_mode([&](const EngineConfig& cfg) {
      auto inst = instantiate_cfg(bytes, cfg);
      for (size_t i = 0; i + 1 < vecs.size(); ++i) {
        V128 got = run_on(*inst, vecs[i], vecs[i + 1], V128{});
        V128 want = bc.ref(vecs[i], vecs[i + 1]);
        expect_v128_eq(got, want,
                       std::string(wasm::op_name(bc.op)) + " under " +
                           config_label(cfg),
                       bc.mode);
      }
    });
  }
}

struct UnCase {
  Op op;
  V128 (*ref)(const V128&);
};

#define ARITH1(T, N, expr) \
  [](const V128& a) { return map1<T, N>(a, [](T x) { (void)x; return (expr); }); }

const UnCase kUnCases[] = {
    {Op::kV128Not, ARITH1(u8, 16, u8(~x))},
    {Op::kI8x16Neg, ARITH1(u8, 16, u8(0u - x))},
    {Op::kI8x16Abs, ARITH1(i8, 16, i8(x < 0 ? u8(0u - u8(x)) : u8(x)))},
    {Op::kI16x8Neg, ARITH1(u16, 8, u16(0u - x))},
    {Op::kI16x8Abs, ARITH1(i16, 8, i16(x < 0 ? u16(0u - u16(x)) : u16(x)))},
    {Op::kI32x4Neg, ARITH1(u32, 4, 0u - x)},
    {Op::kI32x4Abs, ARITH1(i32, 4, i32(x < 0 ? 0u - u32(x) : u32(x)))},
    {Op::kI64x2Neg, ARITH1(u64, 2, u64(0) - x)},
    {Op::kI64x2Abs, ARITH1(i64, 2, i64(x < 0 ? u64(0) - u64(x) : u64(x)))},
    {Op::kF32x4Neg, ARITH1(f32, 4, -x)},
    {Op::kF32x4Abs, ARITH1(f32, 4, std::fabs(x))},
    {Op::kF32x4Sqrt, ARITH1(f32, 4, std::sqrt(x))},
    {Op::kF64x2Neg, ARITH1(f64, 2, -x)},
    {Op::kF64x2Abs, ARITH1(f64, 2, std::fabs(x))},
    {Op::kF64x2Sqrt, ARITH1(f64, 2, std::sqrt(x))},
};

TEST(SimdDifferential, LanewiseUnops) {
  auto vecs = test_vectors();
  for (const UnCase& uc : kUnCases) {
    // sqrt of negative inputs is lane-wise NaN; restrict its sweep to
    // non-negative bit patterns by abs-ing the float lanes first.
    auto bytes = unop_module(uc.op);
    for_each_mode([&](const EngineConfig& cfg) {
      auto inst = instantiate_cfg(bytes, cfg);
      for (const V128& a0 : vecs) {
        V128 a = a0;
        if (uc.op == Op::kF32x4Sqrt)
          a = map1<f32, 4>(a, [](f32 x) { return std::fabs(x); });
        if (uc.op == Op::kF64x2Sqrt)
          a = map1<f64, 2>(a, [](f64 x) { return std::fabs(x); });
        V128 got = run_on(*inst, a, V128{}, V128{});
        expect_v128_eq(got, uc.ref(a), std::string(wasm::op_name(uc.op)) +
                                           " under " + config_label(cfg));
      }
    });
  }
}

TEST(SimdDifferential, FloatMinMaxNaNSemantics) {
  // min/max propagate NaN and order -0 < +0 (Wasm semantics). Checked via
  // lane probes rather than bit equality: the reference would need to fix
  // a canonical NaN payload.
  for (Op op : {Op::kF64x2Min, Op::kF64x2Max, Op::kF32x4Min, Op::kF32x4Max}) {
    auto bytes = binop_module(op);
    bool f64s = op == Op::kF64x2Min || op == Op::kF64x2Max;
    bool is_min = op == Op::kF64x2Min || op == Op::kF32x4Min;
    for_each_mode([&](const EngineConfig& cfg) {
      V128 a{}, b{};
      if (f64s) {
        put_lane<f64, 2>(a, 0, std::numeric_limits<f64>::quiet_NaN());
        put_lane<f64, 2>(b, 0, 1.0);
        put_lane<f64, 2>(a, 1, -0.0);
        put_lane<f64, 2>(b, 1, 0.0);
        V128 got = run_v128(bytes, cfg, a, b, V128{});
        f64 l0 = get_lane<f64, 2>(got, 0);
        f64 z = get_lane<f64, 2>(got, 1);
        EXPECT_TRUE(std::isnan(l0)) << config_label(cfg);
        EXPECT_EQ(std::signbit(z), is_min) << config_label(cfg);
      } else {
        put_lane<f32, 4>(a, 0, std::numeric_limits<f32>::quiet_NaN());
        put_lane<f32, 4>(b, 0, 1.0f);
        put_lane<f32, 4>(a, 1, -0.0f);
        put_lane<f32, 4>(b, 1, 0.0f);
        put_lane<f32, 4>(a, 2, 3.0f);
        put_lane<f32, 4>(b, 2, -7.0f);
        V128 got = run_v128(bytes, cfg, a, b, V128{});
        f32 l0 = get_lane<f32, 4>(got, 0);
        f32 l1 = get_lane<f32, 4>(got, 1);
        f32 l2 = get_lane<f32, 4>(got, 2);
        EXPECT_TRUE(std::isnan(l0)) << config_label(cfg);
        EXPECT_EQ(std::signbit(l1), is_min) << config_label(cfg);
        EXPECT_EQ(l2, is_min ? -7.0f : 3.0f) << config_label(cfg);
      }
    });
  }
}

TEST(SimdDifferential, Shifts) {
  struct ShiftCase {
    Op op;
    V128 (*ref)(const V128&, u32);
  };
  const ShiftCase cases[] = {
      {Op::kI32x4Shl,
       [](const V128& a, u32 k) {
         return map1<u32, 4>(a, [&](u32 x) { return x << (k & 31); });
       }},
      {Op::kI32x4ShrS,
       [](const V128& a, u32 k) {
         return map1<i32, 4>(a, [&](i32 x) { return x >> (k & 31); });
       }},
      {Op::kI32x4ShrU,
       [](const V128& a, u32 k) {
         return map1<u32, 4>(a, [&](u32 x) { return x >> (k & 31); });
       }},
      {Op::kI64x2Shl,
       [](const V128& a, u32 k) {
         return map1<u64, 2>(a, [&](u64 x) { return x << (k & 63); });
       }},
      {Op::kI64x2ShrS,
       [](const V128& a, u32 k) {
         return map1<i64, 2>(a, [&](i64 x) { return x >> (k & 63); });
       }},
      {Op::kI64x2ShrU,
       [](const V128& a, u32 k) {
         return map1<u64, 2>(a, [&](u64 x) { return x >> (k & 63); });
       }},
  };
  auto vecs = test_vectors();
  for (const auto& sc : cases) {
    auto bytes = shift_module(sc.op);
    for_each_mode([&](const EngineConfig& cfg) {
      auto inst = instantiate_cfg(bytes, cfg);
      for (u32 k : {0u, 1u, 3u, 31u, 32u, 33u, 63u, 64u, 65u}) {
        V128 got = run_on(*inst, vecs[2], V128{}, V128{},
                          {rt::Value::from_i32(i32(k))});
        expect_v128_eq(got, sc.ref(vecs[2], k),
                       std::string(wasm::op_name(sc.op)) + " count " +
                           std::to_string(k) + " under " + config_label(cfg));
      }
    });
  }
}

TEST(SimdDifferential, ShuffleSwizzleBitselect) {
  auto vecs = test_vectors();
  const V128& a = vecs[2];
  const V128& b = vecs[3];
  // Shuffle patterns: identity, reverse, broadcast lane 5, interleave
  // across the two inputs.
  const u8 patterns[][16] = {
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
      {31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16},
      {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
      {0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6, 22, 7, 23},
  };
  for (const auto& pat : patterns) {
    auto bytes = build_single_func({{}, {}}, [&](auto& f) {
      f.i32_const(i32(kOut));
      f.i32_const(i32(kInA));
      f.mem_op(Op::kV128Load);
      f.i32_const(i32(kInB));
      f.mem_op(Op::kV128Load);
      u8 lanes[16];
      std::memcpy(lanes, pat, 16);
      f.i8x16_shuffle(lanes);
      f.mem_op(Op::kV128Store);
      f.end();
    });
    for_each_mode([&](const EngineConfig& cfg) {
      V128 got = run_v128(bytes, cfg, a, b, V128{});
      V128 want{};
      for (int i = 0; i < 16; ++i)
        want.bytes[i] = pat[i] < 16 ? a.bytes[pat[i]] : b.bytes[pat[i] - 16];
      expect_v128_eq(got, want, "i8x16.shuffle under " + config_label(cfg));
    });
  }
  {
    auto bytes = binop_module(Op::kI8x16Swizzle);
    // Selectors: in-range, boundary 15/16, and far out of range.
    V128 sel{};
    const u8 sels[16] = {0, 15, 16, 255, 7, 8, 3, 200, 1, 2, 14, 13, 17, 31, 5, 9};
    std::memcpy(sel.bytes, sels, 16);
    for_each_mode([&](const EngineConfig& cfg) {
      V128 got = run_v128(bytes, cfg, a, sel, V128{});
      V128 want{};
      for (int i = 0; i < 16; ++i)
        want.bytes[i] = sels[i] < 16 ? a.bytes[sels[i]] : 0;
      expect_v128_eq(got, want, "i8x16.swizzle under " + config_label(cfg));
    });
  }
  {
    auto bytes = build_single_func({{}, {}}, [&](auto& f) {
      f.i32_const(i32(kOut));
      f.i32_const(i32(kInA));
      f.mem_op(Op::kV128Load);
      f.i32_const(i32(kInB));
      f.mem_op(Op::kV128Load);
      f.i32_const(i32(kInC));
      f.mem_op(Op::kV128Load);
      f.op(Op::kV128Bitselect);
      f.mem_op(Op::kV128Store);
      f.end();
    });
    for_each_mode([&](const EngineConfig& cfg) {
      V128 got = run_v128(bytes, cfg, a, b, vecs[3]);
      V128 want{};
      for (int i = 0; i < 16; ++i)
        want.bytes[i] =
            u8((a.bytes[i] & vecs[3].bytes[i]) | (b.bytes[i] & ~vecs[3].bytes[i]));
      expect_v128_eq(got, want, "v128.bitselect under " + config_label(cfg));
    });
  }
}

TEST(SimdDifferential, SplatsExtractReplace) {
  // i16x8.splat + both extract widths (s/u) + replace on every shape.
  for_each_mode([&](const EngineConfig& cfg) {
    {
      auto bytes = build_single_func({{I32}, {I32}}, [&](auto& f) {
        f.local_get(0);
        f.op(Op::kI16x8Splat);
        f.lane_op(Op::kI16x8ExtractLaneS, 7);
        f.end();
      });
      auto inst = instantiate_cfg(bytes, cfg);
      EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(0xFFFF)})
                    .as_i32(),
                -1)
          << config_label(cfg);
      auto inst2 = instantiate_cfg(
          build_single_func({{I32}, {I32}},
                            [&](auto& f) {
                              f.local_get(0);
                              f.op(Op::kI16x8Splat);
                              f.lane_op(Op::kI16x8ExtractLaneU, 3);
                              f.end();
                            }),
          cfg);
      EXPECT_EQ(inst2->invoke("run", std::vector<Value>{Value::from_i32(0xFFFF)})
                    .as_i32(),
                0xFFFF)
          << config_label(cfg);
    }
    {
      auto bytes = build_single_func({{I32}, {I32}}, [&](auto& f) {
        f.local_get(0);
        f.op(Op::kI8x16Splat);
        f.lane_op(Op::kI8x16ExtractLaneS, 11);
        f.end();
      });
      auto inst = instantiate_cfg(bytes, cfg);
      EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(0x80)})
                    .as_i32(),
                -128)
          << config_label(cfg);
    }
    {
      // replace_lane on every shape: build from zero, replace one lane.
      auto bytes = build_single_func({{F64}, {F64}}, [&](auto& f) {
        f.f64_const(0.0);
        f.op(Op::kF64x2Splat);
        f.local_get(0);
        f.lane_op(Op::kF64x2ReplaceLane, 1);
        f.lane_op(Op::kF64x2ExtractLane, 1);
        f.end();
      });
      auto inst = instantiate_cfg(bytes, cfg);
      EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_f64(6.25)})
                    .as_f64(),
                6.25)
          << config_label(cfg);
      auto bytes2 = build_single_func({{I32}, {I32}}, [&](auto& f) {
        f.i32_const(7);
        f.op(Op::kI32x4Splat);
        f.local_get(0);
        f.lane_op(Op::kI32x4ReplaceLane, 2);
        f.lane_op(Op::kI32x4ExtractLane, 2);
        f.end();
      });
      auto inst2 = instantiate_cfg(bytes2, cfg);
      EXPECT_EQ(inst2->invoke("run", std::vector<Value>{Value::from_i32(-9)})
                    .as_i32(),
                -9)
          << config_label(cfg);
      auto bytes3 = build_single_func({{I64}, {I64}}, [&](auto& f) {
        f.i64_const(1);
        f.op(Op::kI64x2Splat);
        f.local_get(0);
        f.lane_op(Op::kI64x2ReplaceLane, 0);
        f.lane_op(Op::kI64x2ExtractLane, 0);
        f.end();
      });
      auto inst3 = instantiate_cfg(bytes3, cfg);
      EXPECT_EQ(inst3
                    ->invoke("run", std::vector<Value>{Value::from_i64(
                                        i64(0x123456789ABCDEFll))})
                    .as_i64(),
                i64(0x123456789ABCDEFll))
          << config_label(cfg);
      auto bytes4 = build_single_func({{F32}, {F32}}, [&](auto& f) {
        f.f32_const(0.0f);
        f.op(Op::kF32x4Splat);
        f.local_get(0);
        f.lane_op(Op::kF32x4ReplaceLane, 3);
        f.lane_op(Op::kF32x4ExtractLane, 3);
        f.end();
      });
      auto inst4 = instantiate_cfg(bytes4, cfg);
      EXPECT_EQ(inst4->invoke("run", std::vector<Value>{Value::from_f32(-1.5f)})
                    .as_f32(),
                -1.5f)
          << config_label(cfg);
      auto bytes5 = build_single_func({{I32}, {I32}}, [&](auto& f) {
        f.i32_const(0);
        f.op(Op::kI8x16Splat);
        f.local_get(0);
        f.lane_op(Op::kI8x16ReplaceLane, 15);
        f.lane_op(Op::kI8x16ExtractLaneU, 15);
        f.end();
      });
      auto inst5 = instantiate_cfg(bytes5, cfg);
      EXPECT_EQ(inst5->invoke("run", std::vector<Value>{Value::from_i32(0xAB)})
                    .as_i32(),
                0xAB)
          << config_label(cfg);
      auto bytes6 = build_single_func({{I32}, {I32}}, [&](auto& f) {
        f.i32_const(0);
        f.op(Op::kI16x8Splat);
        f.local_get(0);
        f.lane_op(Op::kI16x8ReplaceLane, 4);
        f.lane_op(Op::kI16x8ExtractLaneU, 4);
        f.end();
      });
      auto inst6 = instantiate_cfg(bytes6, cfg);
      EXPECT_EQ(inst6->invoke("run", std::vector<Value>{Value::from_i32(0xBEEF)})
                    .as_i32(),
                0xBEEF)
          << config_label(cfg);
    }
  });
}

TEST(SimdDifferential, LoadSplats) {
  auto bytes32 = build_single_func({{}, {}}, [&](auto& f) {
    f.i32_const(i32(kOut));
    f.i32_const(i32(kInA));
    f.mem_op(Op::kV128Load32Splat);
    f.mem_op(Op::kV128Store);
    f.end();
  });
  auto bytes64 = build_single_func({{}, {}}, [&](auto& f) {
    f.i32_const(i32(kOut));
    f.i32_const(i32(kInA));
    f.mem_op(Op::kV128Load64Splat);
    f.mem_op(Op::kV128Store);
    f.end();
  });
  V128 a{};
  for (int i = 0; i < 16; ++i) a.bytes[i] = u8(0x11 * (i + 1));
  for_each_mode([&](const EngineConfig& cfg) {
    V128 got = run_v128(bytes32, cfg, a, V128{}, V128{});
    V128 want{};
    for (int i = 0; i < 4; ++i)
      put_lane<u32, 4>(want, i, get_lane<u32, 4>(a, 0));
    expect_v128_eq(got, want, "v128.load32_splat under " + config_label(cfg));
    got = run_v128(bytes64, cfg, a, V128{}, V128{});
    for (int i = 0; i < 2; ++i)
      put_lane<u64, 2>(want, i, get_lane<u64, 2>(a, 0));
    expect_v128_eq(got, want, "v128.load64_splat under " + config_label(cfg));
  });
}

TEST(SimdDifferential, AnyTrueAllTrue) {
  struct RCase {
    Op op;
    int lanes;  // lane width in bytes for the all_true family; 0 = any_true
  };
  const RCase cases[] = {
      {Op::kV128AnyTrue, 0},   {Op::kI8x16AllTrue, 1}, {Op::kI16x8AllTrue, 2},
      {Op::kI32x4AllTrue, 4},  {Op::kI64x2AllTrue, 8},
  };
  for (const RCase& rc : cases) {
    auto bytes = reduce_i32_module(rc.op);
    for_each_mode([&](const EngineConfig& cfg) {
      auto run1 = [&](const V128& a) {
        auto inst = instantiate_cfg(bytes, cfg);
        std::memcpy(inst->memory().base() + kInA, a.bytes, 16);
        return inst->invoke("run").as_i32();
      };
      V128 zero{};
      V128 ones{};
      std::memset(ones.bytes, 0xFF, 16);
      EXPECT_EQ(run1(zero), 0) << config_label(cfg);
      EXPECT_EQ(run1(ones), 1) << config_label(cfg);
      // One zero lane: any_true stays 1, all_true drops to 0.
      V128 holed = ones;
      if (rc.lanes == 0) {
        std::memset(holed.bytes, 0, 15);  // single nonzero byte
        EXPECT_EQ(run1(holed), 1) << config_label(cfg);
      } else {
        std::memset(holed.bytes + 16 - rc.lanes, 0, size_t(rc.lanes));
        EXPECT_EQ(run1(holed), 0) << config_label(cfg);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Scalar-vs-SIMD kernel twins
// ---------------------------------------------------------------------------

f64 run_kernel(const toolchain::MicroKernelParams& p, const EngineConfig& cfg,
               i32 reps) {
  auto bytes = toolchain::build_micro_kernel_module(p);
  auto inst = instantiate_cfg(bytes, cfg);
  inst->invoke("init");
  auto arg = rt::Value::from_i32(reps);
  return inst->invoke("run", {&arg, 1}).as_f64();
}

TEST(SimdKernels, ScalarAndSimdTwinsMatchReference) {
  const i32 reps = 3;
  for (toolchain::MicroKernel k :
       {toolchain::MicroKernel::kReduceF64, toolchain::MicroKernel::kReduceI32,
        toolchain::MicroKernel::kDaxpy, toolchain::MicroKernel::kStencil3,
        toolchain::MicroKernel::kDotF64, toolchain::MicroKernel::kSaxpyF32}) {
    toolchain::MicroKernelParams p;
    p.kernel = k;
    p.n = 256;
    const f64 want = toolchain::micro_kernel_reference(p, u32(reps));
    for_each_mode([&](const EngineConfig& cfg) {
      p.use_simd = false;
      f64 scalar = run_kernel(p, cfg, reps);
      // The scalar build follows the reference's operation order exactly.
      EXPECT_EQ(scalar, want)
          << toolchain::micro_kernel_name(k) << " scalar, " << config_label(cfg);
      p.use_simd = true;
      f64 simd = run_kernel(p, cfg, reps);
      if (toolchain::micro_kernel_reassociates(k)) {
        EXPECT_NEAR(simd, want, std::abs(want) * 1e-12)
            << toolchain::micro_kernel_name(k) << " simd, " << config_label(cfg);
      } else {
        // Element-wise and integer kernels are bit-exact across builds.
        EXPECT_EQ(simd, want)
            << toolchain::micro_kernel_name(k) << " simd, " << config_label(cfg);
      }
    });
  }
}

TEST(SimdKernels, HpcgSimdResidualMatchesMirroredNative) {
  // The f64x2 HPCG build must agree bit-exactly with the native twin whose
  // dot mirrors the two-lane accumulation (KernelHpcg covers scalar mode).
  toolchain::HpcgParams p;
  p.n_per_rank = 64;
  p.iterations = 4;
  p.use_simd = true;
  auto bytes = toolchain::build_hpcg_module(p);
  // Compile-only smoke across tiers (full embedder runs live in
  // test_toolchain_kernels); here assert the module validates and the
  // engine accepts it at every tier.
  for (const EngineConfig& cfg : simd_configs()) {
    EXPECT_NO_THROW(rt::compile({bytes.data(), bytes.size()}, cfg))
        << config_label(cfg);
  }
}

// ---------------------------------------------------------------------------
// OOB trap-point equivalence for v128 accesses under hoisted guards
// ---------------------------------------------------------------------------

std::vector<u8> v128_store_loop_module(u32 base) {
  // run(n): for (i = 0; i < n; i += 16) mem[base + i] = i8x16.splat(i)
  return build_single_func({{I32}, {}}, [&](auto& f) {
    u32 i = f.add_local(I32);
    f.for_loop_i32(i, 0, 0 /*limit = param*/, 16, [&] {
      f.i32_const(i32(base));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.local_get(i);
      f.op(Op::kI8x16Splat);
      f.mem_op(Op::kV128Store);
    });
    f.end();
  });
}

TEST(SimdHoist, OobV128StoreTrapsAtSamePointWithIdenticalPartialStores) {
  // One page of memory; the loop starts 256 bytes below the end and runs
  // 512 bytes, so the guard fails, the slow (checked) copy runs, and the
  // trap must fire at exactly the first out-of-bounds vector — with every
  // preceding store visible — in every configuration.
  const u32 base = 64 * 1024 - 256;
  auto bytes = v128_store_loop_module(base);
  auto run_one = [&](const EngineConfig& cfg, std::vector<u8>& tail) {
    auto inst = instantiate_cfg(bytes, cfg);
    auto n = rt::Value::from_i32(512);
    TrapKind kind = TrapKind::kHostError;
    try {
      inst->invoke("run", {&n, 1});
      ADD_FAILURE() << "expected OOB trap under " << config_label(cfg);
    } catch (const Trap& t) {
      kind = t.kind();
    }
    tail.assign(inst->memory().base() + base, inst->memory().base() + 64 * 1024);
    return kind;
  };
  std::vector<u8> want_tail;
  EngineConfig interp;
  interp.tier = EngineTier::kInterp;
  TrapKind want_kind = run_one(interp, want_tail);
  EXPECT_EQ(want_kind, TrapKind::kMemoryOutOfBounds);
  for_each_mode([&](const EngineConfig& cfg) {
    std::vector<u8> tail;
    TrapKind kind = run_one(cfg, tail);
    EXPECT_EQ(kind, want_kind) << config_label(cfg);
    EXPECT_EQ(tail, want_tail) << "partial stores differ under "
                               << config_label(cfg);
  });
}

TEST(SimdHoist, InBoundsV128LoopRunsGuardedAndUnguardedIdentically) {
  const u32 base = 4096;
  auto bytes = v128_store_loop_module(base);
  auto run_one = [&](const EngineConfig& cfg) {
    auto inst = instantiate_cfg(bytes, cfg);
    auto n = rt::Value::from_i32(1024);
    inst->invoke("run", {&n, 1});
    return std::vector<u8>(inst->memory().base() + base,
                           inst->memory().base() + base + 1024);
  };
  EngineConfig interp;
  interp.tier = EngineTier::kInterp;
  auto want = run_one(interp);
  for_each_mode([&](const EngineConfig& cfg) {
    EXPECT_EQ(run_one(cfg), want) << config_label(cfg);
  });
}

// ---------------------------------------------------------------------------
// Validator rejections
// ---------------------------------------------------------------------------

TEST(SimdValidation, RejectsOutOfRangeLaneAndShuffleIndices) {
  {
    ModuleBuilder b;
    auto& f = b.begin_func({{}, {I32}}, "run");
    f.i32_const(0);
    f.op(Op::kI32x4Splat);
    f.lane_op(Op::kI32x4ExtractLane, 4);  // lanes are 0..3
    f.end();
    auto bytes = b.build();
    auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(wasm::validate_module(*decoded.module).ok);
  }
  {
    ModuleBuilder b;
    auto& f = b.begin_func({{}, {}}, "run");
    f.i32_const(0);
    f.op(Op::kI8x16Splat);
    f.i32_const(0);
    f.op(Op::kI8x16Splat);
    u8 lanes[16] = {0};
    lanes[7] = 32;  // selectors index the 32-byte concatenation
    f.i8x16_shuffle(lanes);
    f.op(Op::kDrop);
    f.end();
    auto bytes = b.build();
    auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(wasm::validate_module(*decoded.module).ok);
  }
  {
    // Type error: bitselect on i32 operands must not validate.
    ModuleBuilder b;
    auto& f = b.begin_func({{}, {}}, "run");
    f.i32_const(1);
    f.i32_const(2);
    f.i32_const(3);
    f.op(Op::kV128Bitselect);
    f.op(Op::kDrop);
    f.end();
    auto bytes = b.build();
    auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(wasm::validate_module(*decoded.module).ok);
  }
}

}  // namespace
}  // namespace mpiwasm::test
