// Embedder integration tests: end-to-end MPI-over-Wasm execution, handle
// and address translation, Alloc_mem via exported malloc, comm management
// from the guest, the copy-mode ablation, and the Faasm-compat subset.
#include "testlib.h"

#include <set>

#include "embedder/abi.h"
#include "embedder/embedder.h"
#include "toolchain/kernels.h"
#include "toolchain/mpi_imports.h"
#include "toolchain/native_kernels.h"

namespace mpiwasm::test {
namespace {

using embed::Embedder;
using embed::EmbedderConfig;
namespace abi = embed::abi;
using toolchain::MpiImports;
using toolchain::MpiImportSet;

class EmbedderTest : public ::testing::TestWithParam<EngineTier> {};

INSTANTIATE_TEST_SUITE_P(AllTiers, EmbedderTest,
                         ::testing::ValuesIn(all_tiers()),
                         [](const auto& info) {
                           return rt::tier_name(info.param);
                         });

EmbedderConfig config_for(EngineTier tier) {
  EmbedderConfig cfg;
  cfg.engine.tier = tier;
  cfg.engine.enable_cache = false;
  return cfg;
}

TEST_P(EmbedderTest, HelloRunsOnEveryRankCount) {
  auto bytes = toolchain::build_hello_module();
  for (int ranks : {1, 2, 4, 7}) {
    std::mutex mu;
    std::string all_output;
    EmbedderConfig cfg = config_for(GetParam());
    cfg.stdout_sink = [&](int, std::string_view s) {
      std::lock_guard<std::mutex> lock(mu);
      all_output += s;
    };
    Embedder emb(cfg);
    auto result = emb.run_world({bytes.data(), bytes.size()}, ranks);
    EXPECT_EQ(result.exit_code, 0);
    for (int r = 0; r < ranks; ++r) {
      std::string expect = "hello from rank " + std::to_string(r) + " of " +
                           std::to_string(ranks) + "\n";
      EXPECT_NE(all_output.find(expect), std::string::npos)
          << "missing: " << expect;
    }
  }
}

TEST_P(EmbedderTest, AllreduceCheckPasses) {
  auto bytes = toolchain::build_allreduce_check_module();
  Embedder emb(config_for(GetParam()));
  for (int ranks : {1, 2, 3, 8}) {
    auto result = emb.run_world({bytes.data(), bytes.size()}, ranks);
    EXPECT_EQ(result.exit_code, 0) << "ranks=" << ranks;
  }
}

TEST_P(EmbedderTest, IcollCheckPasses) {
  auto bytes = toolchain::build_icoll_check_module();
  Embedder emb(config_for(GetParam()));
  for (int ranks : {1, 2, 3, 8}) {
    auto result = emb.run_world({bytes.data(), bytes.size()}, ranks);
    EXPECT_EQ(result.exit_code, 0) << "ranks=" << ranks;
  }
}

TEST_P(EmbedderTest, AllocMemUsesExportedMalloc) {
  auto bytes = toolchain::build_alloc_mem_module();
  Embedder emb(config_for(GetParam()));
  auto result = emb.run_world({bytes.data(), bytes.size()}, 2);
  EXPECT_EQ(result.exit_code, 0);
}

TEST_P(EmbedderTest, ComputeModuleExitCode) {
  auto bytes = toolchain::build_compute_module(10000);
  Embedder emb(config_for(GetParam()));
  auto result = emb.run_world({bytes.data(), bytes.size()}, 1);
  EXPECT_EQ(result.exit_code, toolchain::compute_module_expected(10000));
}

// Builds a module that round-trips a value through guest-side
// MPI_Comm_split + Allreduce on the sub-communicator.
std::vector<u8> build_comm_split_module() {
  using wasm::Op;
  wasm::ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  set.comm_mgmt = true;
  MpiImports mpi = toolchain::declare_mpi_imports(b, set);
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                {{I32}, {}});
  b.add_memory(1);
  b.export_memory();
  auto& f = b.begin_func({{}, {}}, "_start");
  u32 rank = f.add_local(I32);
  u32 sub = f.add_local(I32);
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(1024);
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(1024);
  f.mem_op(Op::kI32Load);
  f.local_set(rank);
  // split(world, color = rank % 2, key = rank) -> sub
  f.i32_const(abi::MPI_COMM_WORLD);
  f.local_get(rank);
  f.i32_const(2);
  f.op(Op::kI32RemS);
  f.local_get(rank);
  f.i32_const(1040);
  f.call(mpi.comm_split);
  f.op(Op::kDrop);
  f.i32_const(1040);
  f.mem_op(Op::kI32Load);
  f.local_set(sub);
  // allreduce(1, SUM) over sub -> group size
  f.i32_const(2048);
  f.i32_const(1);
  f.mem_op(Op::kI32Store);
  f.i32_const(2048);
  f.i32_const(2056);
  f.i32_const(1);
  f.i32_const(abi::MPI_INT);
  f.i32_const(abi::MPI_SUM);
  f.local_get(sub);
  f.call(mpi.allreduce);
  f.op(Op::kDrop);
  // exit(group size) — harness checks 2 for a 4-rank world.
  f.i32_const(2056);
  f.mem_op(Op::kI32Load);
  f.call(proc_exit);
  f.end();
  return b.build();
}

TEST_P(EmbedderTest, GuestCommSplitWorks) {
  auto bytes = build_comm_split_module();
  Embedder emb(config_for(GetParam()));
  auto result = emb.run_world({bytes.data(), bytes.size()}, 4);
  EXPECT_EQ(result.exit_code, 2);  // each parity class has 2 members
}

// Builds a module exercising the scan-family imports plus MPI_IN_PLACE:
// scan of (rank + 1), then an in-place MAX allreduce of the prefix sums.
std::vector<u8> build_scan_in_place_module() {
  using wasm::Op;
  wasm::ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  set.scan_family = true;
  MpiImports mpi = toolchain::declare_mpi_imports(b, set);
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                {{I32}, {}});
  b.add_memory(1);
  b.export_memory();
  auto& f = b.begin_func({{}, {}}, "_start");
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(1024);
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  // mem[1024] = rank + 1
  f.i32_const(1024);
  f.i32_const(1024);
  f.mem_op(Op::kI32Load);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.mem_op(Op::kI32Store);
  // Scan(1024 -> 2048, 1, INT, SUM): prefix sum (rank+1)(rank+2)/2
  f.i32_const(1024);
  f.i32_const(2048);
  f.i32_const(1);
  f.i32_const(abi::MPI_INT);
  f.i32_const(abi::MPI_SUM);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.scan);
  f.op(Op::kDrop);
  // Allreduce(IN_PLACE, 2048, 1, INT, MAX): n(n+1)/2 everywhere
  f.i32_const(abi::MPI_IN_PLACE);
  f.i32_const(2048);
  f.i32_const(1);
  f.i32_const(abi::MPI_INT);
  f.i32_const(abi::MPI_MAX);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.allreduce);
  f.op(Op::kDrop);
  f.i32_const(2048);
  f.mem_op(Op::kI32Load);
  f.call(proc_exit);
  f.end();
  return b.build();
}

TEST_P(EmbedderTest, GuestScanAndInPlaceAllreduce) {
  auto bytes = build_scan_in_place_module();
  Embedder emb(config_for(GetParam()));
  auto result = emb.run_world({bytes.data(), bytes.size()}, 4);
  EXPECT_EQ(result.exit_code, 10);  // 4 * 5 / 2
}

TEST(EmbedderModes, GuestScanInPlaceAllreduceCopyMode) {
  // The staged (zero_copy = false) path must preserve IN_PLACE semantics.
  auto bytes = build_scan_in_place_module();
  EmbedderConfig cfg;
  cfg.zero_copy = false;
  Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, 4);
  EXPECT_EQ(result.exit_code, 10);
}

TEST(EmbedderModes, FaasmCompatRejectsCommSplit) {
  auto bytes = build_comm_split_module();
  EmbedderConfig cfg;
  cfg.faasm_compat = true;
  Embedder emb(cfg);
  // Faasm supports no user-defined communicators (§6): the import does not
  // resolve and instantiation fails as a link error.
  EXPECT_THROW(emb.run_world({bytes.data(), bytes.size()}, 4), rt::LinkError);
}

TEST(EmbedderModes, FaasmCompatStillRunsP2P) {
  toolchain::ImbParams p;
  p.routine = toolchain::ImbRoutine::kPingPong;
  p.max_bytes = 1 << 10;
  p.base_iters = 1 << 12;
  auto bytes = toolchain::build_imb_module(p);
  EmbedderConfig cfg;
  cfg.faasm_compat = true;
  cfg.extra_imports = [](rt::ImportTable& t, int) {
    t.add("bench", "report", {{I32, F64, F64, F64}, {}},
          [](rt::HostContext&, const rt::Slot*, rt::Slot*) {});
  };
  Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, 2);
  EXPECT_EQ(result.exit_code, 0);
}

TEST(EmbedderModes, CopyModeMatchesZeroCopyResults) {
  // The §3.5 ablation: zero-copy off must change performance, not results.
  auto bytes = toolchain::build_allreduce_check_module();
  EmbedderConfig cfg;
  cfg.zero_copy = false;
  Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, 4);
  EXPECT_EQ(result.exit_code, 0);
}

TEST(EmbedderModes, TranslationInstrumentationCollectsSamples) {
  toolchain::DatatypePingPongParams p;
  p.max_bytes = 1 << 12;
  p.iters_per_size = 4;
  auto bytes = toolchain::build_datatype_pingpong_module(p);
  EmbedderConfig cfg;
  cfg.record_translation = true;
  cfg.extra_imports = [](rt::ImportTable& t, int) {
    t.add("bench", "report",
          {{I32, F64, F64, F64}, {}},
          [](rt::HostContext&, const rt::Slot*, rt::Slot*) {});
  };
  Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, 2);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_FALSE(result.translation_samples.empty());
  // Samples must cover all six datatypes of Figure 6.
  std::set<i32> seen;
  for (const auto& s : result.translation_samples) seen.insert(s.wasm_datatype);
  EXPECT_GE(seen.size(), 6u);
}

TEST(EmbedderModes, InvalidDatatypeHandleTraps) {
  using wasm::Op;
  wasm::ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  MpiImports mpi = toolchain::declare_mpi_imports(b, set);
  b.add_memory(1);
  b.export_memory();
  auto& f = b.begin_func({{}, {}}, "_start");
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(1024);
  f.i32_const(2048);
  f.i32_const(1);
  f.i32_const(999);  // bogus datatype handle
  f.i32_const(abi::MPI_SUM);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.allreduce);
  f.op(Op::kDrop);
  f.end();
  auto bytes = b.build();
  Embedder emb(EmbedderConfig{});
  EXPECT_THROW(emb.run_world({bytes.data(), bytes.size()}, 1), rt::Trap);
}

TEST(EmbedderModes, NativeAndWasmHpcgResidualsAgree) {
  // The strongest embedder correctness check: the full CG solve must
  // produce bit-identical residuals through the Wasm + translation path
  // and the direct native path.
  toolchain::HpcgParams p;
  p.n_per_rank = 512;
  p.iterations = 10;
  auto bytes = toolchain::build_hpcg_module(p);

  f64 wasm_residual = 0;
  EmbedderConfig cfg;
  cfg.extra_imports = [&](rt::ImportTable& t, int) {
    t.add("bench", "report",
          {{I32, F64, F64, F64}, {}},
          [&](rt::HostContext&, const rt::Slot* a, rt::Slot*) {
            wasm_residual = a[3].f64v;
          });
  };
  Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, 2);
  ASSERT_EQ(result.exit_code, 0);

  f64 native_residual = 0;
  simmpi::World world(2);
  world.run([&](simmpi::Rank& rank) {
    auto res = toolchain::native_hpcg_run(rank, p);
    if (rank.rank() == 0) native_residual = res.residual;
  });

  EXPECT_EQ(wasm_residual, native_residual)
      << "CG through the embedder must match native bit-for-bit";
}

}  // namespace
}  // namespace mpiwasm::test
