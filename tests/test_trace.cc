// mpiwasm-trace tests: ring-buffer wraparound, concurrent writers (the
// TSan leg runs this binary), Chrome-trace JSON well-formedness for a real
// traced workload, and --profile aggregate totals against a known guest
// call sequence.
//
// The trace registry is process-global; every test that flips the enable
// switches resets the recorded state first and switches everything off on
// the way out, so the groups stay independent within one binary.
#include "testlib.h"

#include <cctype>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/harness.h"
#include "embedder/abi.h"
#include "embedder/embedder.h"
#include "simmpi/coll_algos.h"
#include "simmpi/world.h"
#include "support/timing.h"
#include "support/trace.h"
#include "toolchain/kernels.h"
#include "toolchain/mpi_imports.h"

namespace mpiwasm::test {
namespace {

using embed::Embedder;
using embed::EmbedderConfig;
namespace abi = embed::abi;
using toolchain::MpiImports;
using toolchain::MpiImportSet;

// ---------------------------------------------------------------------------
// Ring wraparound.

TEST(TraceRing, WraparoundKeepsNewestAndCountsDrops) {
  trace::Ring ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);

  for (u64 i = 0; i < 20; ++i) {
    trace::Event e;
    e.ts_ns = i;
    e.name = "tick";
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);

  // The retained window is the newest 8 events, oldest-first.
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (u64 i = 0; i < events.size(); ++i) EXPECT_EQ(events[i].ts_ns, 12 + i);
}

TEST(TraceRing, UnderfilledSnapshotIsInsertionOrder) {
  trace::Ring ring(16);
  for (u64 i = 0; i < 5; ++i) {
    trace::Event e;
    e.ts_ns = 100 + i;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (u64 i = 0; i < events.size(); ++i) EXPECT_EQ(events[i].ts_ns, 100 + i);
}

#ifndef MPIWASM_TRACE_DISABLED

/// Turns everything off and clears recorded state; used on both sides of
/// each enable-switch test.
void trace_quiesce() {
  trace::enable_tracing(false);
  trace::enable_profiling(false);
  trace::reset();
}

// ---------------------------------------------------------------------------
// Concurrent writers. Each thread owns its ring, so parallel emission must
// be race-free; the TSan CI leg builds and runs this test.

TEST(TraceConcurrency, ParallelWritersLoseNothing) {
  trace_quiesce();
  trace::enable_tracing(true);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;  // < default ring capacity (1<<15)
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      trace::set_thread_label("writer", t);
      for (int i = 0; i < kPerThread; ++i)
        trace::instant("test", "tick", "i", i);
    });
  }
  for (auto& th : threads) th.join();

  // The joins give the reads a happens-before over every ring.
  EXPECT_EQ(trace::event_count(), u64(kThreads) * kPerThread);
  EXPECT_EQ(trace::dropped_count(), 0u);
  trace_quiesce();
}

// ---------------------------------------------------------------------------
// JSON well-formedness. A minimal recursive-descent JSON validator (no JSON
// library in tree) that also collects the string values of "name" keys.

struct JsonChecker {
  const std::string& text;
  size_t pos = 0;
  std::set<std::string> names;

  explicit JsonChecker(const std::string& t) : text(t) {}

  void ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
            text[pos] == '\r'))
      ++pos;
  }
  bool eat(char c) {
    ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool string_lit(std::string* out) {
    ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    std::string s;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return false;
        char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos >= text.size() || !std::isxdigit(u8(text[pos++])))
              return false;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
        s.push_back('?');
      } else {
        s.push_back(c);
      }
    }
    if (pos >= text.size()) return false;
    ++pos;  // closing quote
    if (out != nullptr) *out = std::move(s);
    return true;
  }
  bool number() {
    ws();
    size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(u8(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' ||
            text[pos] == '+'))
      ++pos;
    return pos > start;
  }
  bool literal(const char* word) {
    size_t n = std::strlen(word);
    if (text.compare(pos, n, word) != 0) return false;
    pos += n;
    return true;
  }
  bool value() {
    ws();
    if (pos >= text.size()) return false;
    switch (text[pos]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit(nullptr);
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    do {
      std::string key;
      if (!string_lit(&key)) return false;
      if (!eat(':')) return false;
      ws();
      if (key == "name" && pos < text.size() && text[pos] == '"') {
        std::string v;
        if (!string_lit(&v)) return false;
        names.insert(std::move(v));
      } else if (!value()) {
        return false;
      }
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool parse() {
    bool ok = value();
    ws();
    return ok && pos == text.size();
  }
};

TEST(TraceJson, TracedWorkloadEmitsWellFormedChromeJson) {
  trace_quiesce();
  // Enabled manually (not via EmbedderConfig::trace_path) so run_world does
  // not flush-and-reset before we can inspect the events.
  trace::enable_tracing(true);

  // Leg 1: an 8-rank allreduce guest on the tiered engine with promotion
  // thresholds low enough that tier-up (and its cache miss) fires mid-run.
  // Covers the mpi (MpiScope), coll (pick_algo), and engine layers.
  toolchain::ImbParams p;
  p.routine = toolchain::ImbRoutine::kAllReduce;
  p.min_bytes = 4096;
  p.max_bytes = 4096;
  p.max_iters = 20;
  p.min_iters = 20;
  auto bytes = toolchain::build_imb_module(p);
  bench::ReportCollector collector;
  EmbedderConfig cfg;
  cfg.engine.tier = EngineTier::kTiered;
  cfg.engine.tierup_baseline_threshold = 2;
  cfg.engine.tierup_opt_threshold = 4;
  cfg.engine.enable_cache = false;
  cfg.extra_imports = collector.hook();
  Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, 8);
  ASSERT_EQ(result.exit_code, 0);

  // Leg 2: a nonblocking allreduce large enough that every schedule exchange
  // (forced recursive doubling: full-buffer swaps) crosses the 64 KiB eager
  // limit and takes the segmented pipelined-rendezvous path.
  constexpr int kCount = 32768;  // doubles -> 256 KiB per message
  simmpi::CollTuning forced = simmpi::coll::forced_tuning(
      simmpi::coll::CollOp::kAllreduce, simmpi::CollAlgo::kRecursiveDoubling);
  forced.autotune = false;
  simmpi::World world(8, simmpi::NetworkProfile::zero(), forced);
  world.run([&](simmpi::Rank& rank) {
    trace::set_thread_label("rank", rank.world_rank());
    std::vector<f64> src(kCount, f64(rank.world_rank()));
    std::vector<f64> dst(kCount, 0.0);
    auto req = rank.iallreduce(src.data(), dst.data(), kCount,
                               simmpi::Datatype::kDouble,
                               simmpi::ReduceOp::kSum);
    rank.wait(req);
    EXPECT_DOUBLE_EQ(dst[0], 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  });

  const std::string json = trace::chrome_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.parse()) << "invalid JSON near offset " << checker.pos;

  // Every instrumented layer shows up: guest lifecycle, MPI calls,
  // collective algorithm selection, tier-up promotion, schedule steps, and
  // rendezvous segment drains — plus the per-thread timeline metadata.
  for (const char* name :
       {"guest._start", "MPI_Allreduce", "MPI_Init", "MPI_Finalize",
        "coll.select", "tier_up", "sched.step", "rndv.segment",
        "thread_name"}) {
    EXPECT_TRUE(checker.names.count(name)) << "missing event: " << name;
  }
  trace_quiesce();
}

// ---------------------------------------------------------------------------
// Profile totals. A guest issuing a known MPI call sequence must produce
// exactly-matching aggregate counts and byte totals, and the per-call time
// must stay within the credited rank wall time.

/// _start: MPI_Init, then kCalls MPI_Allreduce of kInts MPI_INTs, then
/// MPI_Finalize and exit(0).
std::vector<u8> build_profile_guest(int calls, int ints) {
  using wasm::Op;
  wasm::ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  MpiImports mpi = toolchain::declare_mpi_imports(b, set);
  u32 proc_exit =
      b.import_func("wasi_snapshot_preview1", "proc_exit", {{I32}, {}});
  b.add_memory(4);
  b.export_memory();
  auto& f = b.begin_func({{}, {}}, "_start");
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  for (int i = 0; i < calls; ++i) {
    f.i32_const(4096);           // sendbuf
    f.i32_const(65536);          // recvbuf
    f.i32_const(ints);
    f.i32_const(abi::MPI_INT);
    f.i32_const(abi::MPI_SUM);
    f.i32_const(abi::MPI_COMM_WORLD);
    f.call(mpi.allreduce);
    f.op(Op::kDrop);
  }
  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.i32_const(0);
  f.call(proc_exit);
  f.end();
  return b.build();
}

TEST(TraceProfile, TotalsMatchKnownCallSequence) {
  trace_quiesce();
  trace::enable_profiling(true);  // profile only: no trace events needed

  constexpr int kRanks = 4;
  constexpr int kCalls = 5;
  constexpr int kInts = 1024;  // 4096 bytes per allreduce
  auto bytes = build_profile_guest(kCalls, kInts);
  EmbedderConfig cfg;
  cfg.engine.enable_cache = false;
  Embedder emb(cfg);
  Stopwatch wall;
  auto result = emb.run_world({bytes.data(), bytes.size()}, kRanks);
  const u64 outer_wall_ns = u64(wall.elapsed_ns());
  ASSERT_EQ(result.exit_code, 0);

  auto stats = trace::profile_call_stats();
  ASSERT_TRUE(stats.count("MPI_Allreduce"));
  const auto& ar = stats.at("MPI_Allreduce");
  EXPECT_EQ(ar.count, u64(kRanks) * kCalls);
  EXPECT_EQ(ar.bytes, u64(kRanks) * kCalls * kInts * 4);
  EXPECT_GT(ar.total_ns, 0u);
  ASSERT_TRUE(stats.count("MPI_Init"));
  EXPECT_EQ(stats.at("MPI_Init").count, u64(kRanks));
  ASSERT_TRUE(stats.count("MPI_Finalize"));
  EXPECT_EQ(stats.at("MPI_Finalize").count, u64(kRanks));

  // Per-call time is a subset of the credited rank wall time, which in turn
  // cannot exceed ranks x the outer wall clock.
  u64 total_mpi_ns = 0;
  for (const auto& [name, cs] : stats) total_mpi_ns += cs.total_ns;
  const u64 wall_ns = trace::profile_wall_ns();
  EXPECT_GT(wall_ns, 0u);
  EXPECT_LE(total_mpi_ns, wall_ns);
  EXPECT_LE(wall_ns, u64(kRanks) * outer_wall_ns);

  // The report renders every profiled call plus the aggregate row.
  const std::string report = trace::profile_report();
  EXPECT_NE(report.find("MPI_Allreduce"), std::string::npos);
  EXPECT_NE(report.find("[all MPI]"), std::string::npos);

  // Profiling also feeds the algorithm-selection histogram.
  auto algos = trace::algo_histogram();
  u64 allreduce_decisions = 0;
  for (const auto& [key, n] : algos)
    if (key.rfind("allreduce/", 0) == 0) allreduce_decisions += n;
  EXPECT_EQ(allreduce_decisions, u64(kRanks) * kCalls);
  trace_quiesce();
}

#endif  // MPIWASM_TRACE_DISABLED

}  // namespace
}  // namespace mpiwasm::test
