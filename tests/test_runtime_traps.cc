// Trap semantics: every tier must produce the same guest-visible traps
// (paper §2.2/§3.5 — faults are contained and reported to the embedder).
#include "testlib.h"

namespace mpiwasm::test {
namespace {

using rt::Trap;
using rt::TrapKind;

class TrapTest : public ::testing::TestWithParam<EngineTier> {};

INSTANTIATE_TEST_SUITE_P(AllTiers, TrapTest, ::testing::ValuesIn(all_tiers()),
                         [](const auto& info) {
                           return rt::tier_name(info.param);
                         });

template <typename Fn>
TrapKind expect_trap(Fn&& fn) {
  try {
    fn();
  } catch (const Trap& t) {
    return t.kind();
  }
  ADD_FAILURE() << "expected a trap";
  return TrapKind::kHostError;
}

TEST_P(TrapTest, DivByZero) {
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32DivS);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run", std::vector<Value>{Value::from_i32(1),
                                                     Value::from_i32(0)});
            }),
            TrapKind::kIntegerDivByZero);
}

TEST_P(TrapTest, SignedDivOverflow) {
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32DivS);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run",
                           std::vector<Value>{Value::from_i32(INT32_MIN),
                                              Value::from_i32(-1)});
            }),
            TrapKind::kIntegerOverflow);
}

TEST_P(TrapTest, RemOverflowIsZeroNotTrap) {
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32RemS);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(INT32_MIN),
                                                   Value::from_i32(-1)})
                .as_i32(),
            0);
}

TEST_P(TrapTest, MemoryOutOfBounds) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.mem_op(Op::kI32Load);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  // One page = 64 KiB; reading at the boundary must trap.
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run", std::vector<Value>{Value::from_i32(65533)});
            }),
            TrapKind::kMemoryOutOfBounds);
  // And a in-bounds access right below succeeds.
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(65532)})
                .as_i32(),
            0);
}

TEST_P(TrapTest, MemoryOutOfBoundsWithOffset) {
  // offset + addr overflows past the page: must trap, not wrap.
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.mem_op(Op::kI32Load, /*offset=*/60000);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run", std::vector<Value>{Value::from_i32(60000)});
            }),
            TrapKind::kMemoryOutOfBounds);
}

TEST_P(TrapTest, MemoryCopyOutOfBounds) {
  auto bytes = build_single_func({{}, {}}, [](auto& f) {
    f.i32_const(65530);
    f.i32_const(0);
    f.i32_const(64);
    f.op(Op::kMemoryCopy);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(expect_trap([&] { inst->invoke("run"); }),
            TrapKind::kMemoryOutOfBounds);
}

TEST_P(TrapTest, UnreachableInstruction) {
  auto bytes = build_single_func({{}, {}}, [](auto& f) {
    f.op(Op::kUnreachable);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(expect_trap([&] { inst->invoke("run"); }), TrapKind::kUnreachable);
}

TEST_P(TrapTest, TruncNaNTraps) {
  auto bytes = build_single_func({{F64}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.op(Op::kI32TruncF64S);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run",
                           std::vector<Value>{Value::from_f64(
                               std::numeric_limits<double>::quiet_NaN())});
            }),
            TrapKind::kInvalidConversion);
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run", std::vector<Value>{Value::from_f64(3e10)});
            }),
            TrapKind::kInvalidConversion);
  EXPECT_EQ(
      inst->invoke("run", std::vector<Value>{Value::from_f64(-7.9)}).as_i32(),
      -7);
}

TEST_P(TrapTest, TruncUnsignedNegativeTraps) {
  auto bytes = build_single_func({{F64}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.op(Op::kI32TruncF64U);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run", std::vector<Value>{Value::from_f64(-2.0)});
            }),
            TrapKind::kInvalidConversion);
  // -0.9 truncates to 0: allowed.
  EXPECT_EQ(
      inst->invoke("run", std::vector<Value>{Value::from_f64(-0.9)}).as_u32(),
      0u);
}

TEST_P(TrapTest, CallIndirectNullEntry) {
  ModuleBuilder b;
  b.add_table(4);  // no elem segment: all entries null
  u32 sig = b.add_type({{}, {}});
  auto& f = b.begin_func({{I32}, {}}, "run");
  f.local_get(0);
  f.call_indirect(sig);
  f.end();
  auto inst = instantiate(b.build(), GetParam());
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run", std::vector<Value>{Value::from_i32(2)});
            }),
            TrapKind::kUndefinedTableElement);
  // Out-of-range index traps the same way.
  EXPECT_EQ(expect_trap([&] {
              inst->invoke("run", std::vector<Value>{Value::from_i32(99)});
            }),
            TrapKind::kUndefinedTableElement);
}

TEST_P(TrapTest, CallIndirectSignatureMismatch) {
  ModuleBuilder b;
  b.add_table(1);
  auto& g = b.begin_func({{}, {I64}}, "");  // () -> i64
  g.i64_const(1);
  g.end();
  b.add_elem(0, {g.index()});
  u32 sig = b.add_type({{}, {I32}});  // expects () -> i32
  auto& f = b.begin_func({{}, {I32}}, "run");
  f.i32_const(0);
  f.call_indirect(sig);
  f.end();
  auto inst = instantiate(b.build(), GetParam());
  EXPECT_EQ(expect_trap([&] { inst->invoke("run"); }),
            TrapKind::kIndirectCallTypeMismatch);
}

TEST_P(TrapTest, InfiniteRecursionExhaustsStack) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "run");
  f.call(f.index());
  f.end();
  auto inst = instantiate(b.build(), GetParam());
  EXPECT_EQ(expect_trap([&] { inst->invoke("run"); }),
            TrapKind::kCallStackExhausted);
  // The instance must remain usable after the trap unwound the arena.
  EXPECT_EQ(expect_trap([&] { inst->invoke("run"); }),
            TrapKind::kCallStackExhausted);
}

TEST_P(TrapTest, HostTrapPropagates) {
  ModuleBuilder b;
  u32 imp = b.import_func("env", "boom", {{}, {}});
  auto& f = b.begin_func({{}, {}}, "run");
  f.call(imp);
  f.end();
  rt::ImportTable imports;
  imports.add("env", "boom", {{}, {}},
              [](rt::HostContext&, const rt::Slot*, rt::Slot*) {
                throw Trap(TrapKind::kHostError, "host says no");
              });
  auto inst = instantiate(b.build(), GetParam(), imports);
  EXPECT_EQ(expect_trap([&] { inst->invoke("run"); }), TrapKind::kHostError);
}

TEST_P(TrapTest, GrowBeyondMaxFailsGracefully) {
  ModuleBuilder b;
  b.add_memory(1, 2, true);
  auto& f = b.begin_func({{}, {I32}}, "run");
  f.i32_const(100);
  f.op(Op::kMemoryGrow);
  f.end();
  auto inst = instantiate(b.build(), GetParam());
  EXPECT_EQ(inst->invoke("run").as_i32(), -1);
}

TEST_P(TrapTest, LinkErrorOnMissingImport) {
  ModuleBuilder b;
  b.import_func("env", "missing", {{}, {}});
  auto& f = b.begin_func({{}, {}}, "run");
  f.end();
  auto bytes = b.build();
  EngineConfig cfg;
  cfg.tier = GetParam();
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  rt::ImportTable empty;
  EXPECT_THROW(rt::Instance(cm, empty), rt::LinkError);
}

TEST_P(TrapTest, LinkErrorOnSignatureMismatch) {
  ModuleBuilder b;
  b.import_func("env", "f", {{I32}, {}});
  auto& f = b.begin_func({{}, {}}, "run");
  f.end();
  auto bytes = b.build();
  EngineConfig cfg;
  cfg.tier = GetParam();
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  rt::ImportTable imports;
  imports.add("env", "f", {{I64}, {}},
              [](rt::HostContext&, const rt::Slot*, rt::Slot*) {});
  EXPECT_THROW(rt::Instance(cm, imports), rt::LinkError);
}

}  // namespace
}  // namespace mpiwasm::test
