// Soak/property tests for simmpi: randomized traffic patterns that stress
// matching, protocol switching (eager vs rendezvous), and collective
// composition under the interconnect cost models.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "simmpi/world.h"

namespace mpiwasm::simmpi {
namespace {

struct StressParam {
  int ranks;
  const char* profile;
};

NetworkProfile profile_by_name(const std::string& name) {
  if (name == "omnipath") return NetworkProfile::omnipath();
  if (name == "graviton2") return NetworkProfile::graviton2();
  return NetworkProfile::zero();
}

class StressTest : public ::testing::TestWithParam<StressParam> {};

INSTANTIATE_TEST_SUITE_P(
    Worlds, StressTest,
    ::testing::Values(StressParam{2, "zero"}, StressParam{4, "zero"},
                      StressParam{4, "omnipath"}, StressParam{6, "graviton2"}),
    [](const auto& info) {
      return std::string(info.param.profile) + "_r" +
             std::to_string(info.param.ranks);
    });

TEST_P(StressTest, RandomizedPairwiseTraffic) {
  // Every rank sends a deterministic pseudo-random schedule of messages of
  // mixed sizes (straddling the eager/rendezvous boundary) to every other
  // rank; receivers validate content, source, and per-pair FIFO order.
  auto [ranks, profile] = GetParam();
  World world(ranks, profile_by_name(profile));
  constexpr int kMsgsPerPair = 12;
  world.run([ranks = ranks](Rank& r) {
    const int me = r.rank();
    const int n = r.size();
    (void)ranks;
    // Nonblocking receives from every peer first to avoid ordering
    // deadlocks; each message tagged with its sequence number.
    struct Incoming {
      std::vector<u8> buf;
      Request req;
      int src;
      int seq;
    };
    auto size_of = [](int src, int dst, int seq) {
      // Deterministic mixed sizes: 1B .. ~192KiB (crosses eager limit).
      u32 h = u32(src * 2654435761u) ^ u32(dst * 40503u) ^ u32(seq * 9973u);
      u32 exp = h % 18;  // 2^0 .. 2^17
      return size_t(1u << exp) + (h % 3);
    };
    auto fill = [](std::vector<u8>& buf, int src, int seq) {
      for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = u8(u32(src) * 131 + u32(seq) * 17 + i);
    };

    std::vector<Incoming> incoming;
    for (int src = 0; src < n; ++src) {
      if (src == me) continue;
      for (int seq = 0; seq < kMsgsPerPair; ++seq) {
        Incoming in;
        in.buf.resize(size_of(src, me, seq));
        in.src = src;
        in.seq = seq;
        incoming.push_back(std::move(in));
      }
    }
    for (auto& in : incoming) {
      in.req = r.irecv(in.buf.data(), int(in.buf.size()), Datatype::kByte,
                       in.src, in.seq);
    }
    // Blocking sends, interleaved across destinations.
    std::vector<u8> payload;
    for (int seq = 0; seq < kMsgsPerPair; ++seq) {
      for (int dst = 0; dst < n; ++dst) {
        if (dst == me) continue;
        payload.resize(size_of(me, dst, seq));
        fill(payload, me, seq);
        r.send(payload.data(), int(payload.size()), Datatype::kByte, dst, seq);
      }
    }
    for (auto& in : incoming) {
      Status st = r.wait(in.req);
      EXPECT_EQ(st.source, in.src);
      EXPECT_EQ(st.tag, in.seq);
      std::vector<u8> expect(in.buf.size());
      fill(expect, in.src, in.seq);
      EXPECT_EQ(in.buf, expect)
          << "corrupted payload from " << in.src << " seq " << in.seq;
    }
    r.barrier();
  });
}

TEST_P(StressTest, CollectiveCompositionSoak) {
  // Chains of different collectives with data dependencies; any ordering
  // or matching bug shows up as a wrong global checksum.
  auto [ranks, profile] = GetParam();
  World world(ranks, profile_by_name(profile));
  world.run([](Rank& r) {
    const int n = r.size();
    const int me = r.rank();
    std::mt19937 rng(12345);  // same stream on every rank
    i64 checksum = 0;
    for (int round = 0; round < 10; ++round) {
      int op = int(rng() % 5);
      int count = 1 + int(rng() % 64);
      std::vector<i64> in(size_t(count) * n), out(size_t(count) * n, 0);
      for (int i = 0; i < count; ++i)
        in[i] = i64(me + 1) * (round + 1) + i;
      switch (op) {
        case 0:
          r.allreduce(in.data(), out.data(), count, Datatype::kLongLong,
                      ReduceOp::kSum);
          break;
        case 1:
          r.bcast(in.data(), count, Datatype::kLongLong, round % n);
          std::copy(in.begin(), in.begin() + count, out.begin());
          break;
        case 2:
          r.allgather(in.data(), count, out.data(), count,
                      Datatype::kLongLong);
          break;
        case 3: {
          for (int d = 0; d < n; ++d)
            for (int i = 0; i < count; ++i)
              in[size_t(d) * count + i] = i64(me * 100 + d);
          r.alltoall(in.data(), count, out.data(), count,
                     Datatype::kLongLong);
          // Received values are rank-specific (src*100 + me); verify them
          // exactly, then cancel the rank-dependent term so the global
          // checksum stays symmetric.
          for (int src = 0; src < n; ++src)
            for (int i = 0; i < count; ++i)
              EXPECT_EQ(out[size_t(src) * count + i], i64(src * 100 + me));
          for (auto& v : out) v -= i64(me);
          break;
        }
        case 4:
          r.reduce(in.data(), out.data(), count, Datatype::kLongLong,
                   ReduceOp::kMax, 0);
          r.bcast(out.data(), count, Datatype::kLongLong, 0);
          break;
      }
      for (int i = 0; i < count; ++i) checksum += out[i];
      r.barrier();
    }
    // All ranks must agree on the checksum for symmetric collectives.
    i64 min_sum = 0, max_sum = 0;
    r.allreduce(&checksum, &min_sum, 1, Datatype::kLongLong, ReduceOp::kMin);
    r.allreduce(&checksum, &max_sum, 1, Datatype::kLongLong, ReduceOp::kMax);
    EXPECT_EQ(min_sum, max_sum) << "collective results diverged across ranks";
  });
}

TEST_P(StressTest, PipelinedCollectivesUnderP2pTraffic) {
  // Large nonblocking collectives (segmented pipelined rendezvous) racing
  // plain p2p traffic on the same mailboxes. Run under TSan in CI; any
  // locking mistake in the segment pump shows up here.
  auto [ranks, profile] = GetParam();
  NetworkProfile prof = profile_by_name(profile);
  prof.rendezvous_chunk = 8 * 1024;  // many segments per transfer
  World world(ranks, prof);
  world.run([](Rank& r) {
    const int n = r.size();
    const int me = r.rank();
    const int to = (me + 1) % n, from = (me - 1 + n) % n;
    constexpr int kCount = 32768;  // 256 KiB of i64 -> 32 segments
    std::vector<i64> in(kCount), out(kCount), expect(kCount);
    for (int i = 0; i < kCount; ++i) in[size_t(i)] = i64(me + 1) + i;
    for (int i = 0; i < kCount; ++i)
      expect[size_t(i)] = i64(n) * (n + 1) / 2 + i64(n) * i;
    for (int round = 0; round < 6; ++round) {
      Request coll = r.iallreduce(in.data(), out.data(), kCount,
                                  Datatype::kLong, ReduceOp::kSum);
      i32 ping = me * 10 + round, pong = -1;
      Request rr = r.irecv(&pong, 1, Datatype::kInt, from, round);
      Request sr = r.isend(&ping, 1, Datatype::kInt, to, round);
      r.wait(rr);
      r.wait(sr);
      EXPECT_EQ(pong, from * 10 + round);
      r.wait(coll);
      EXPECT_EQ(out, expect) << "round=" << round;
    }
  });
}

TEST_P(StressTest, ManyOutstandingRequests) {
  auto [ranks, profile] = GetParam();
  World world(ranks, profile_by_name(profile));
  world.run([](Rank& r) {
    const int n = r.size();
    const int me = r.rank();
    constexpr int kInFlight = 64;
    std::vector<i32> send_data(kInFlight), recv_data(kInFlight, -1);
    std::iota(send_data.begin(), send_data.end(), me * 1000);
    std::vector<Request> reqs;
    int to = (me + 1) % n;
    int from = (me - 1 + n) % n;
    for (int i = 0; i < kInFlight; ++i)
      reqs.push_back(r.irecv(&recv_data[i], 1, Datatype::kInt, from, i));
    for (int i = 0; i < kInFlight; ++i)
      reqs.push_back(r.isend(&send_data[i], 1, Datatype::kInt, to, i));
    r.waitall(reqs);
    for (int i = 0; i < kInFlight; ++i)
      EXPECT_EQ(recv_data[i], from * 1000 + i);
  });
}

TEST(StressEdge, ZeroByteMessages) {
  World world(2);
  world.run([](Rank& r) {
    if (r.rank() == 0) {
      r.send(nullptr, 0, Datatype::kByte, 1, 0);
    } else {
      Status st = r.recv(nullptr, 0, Datatype::kByte, 0, 0);
      EXPECT_EQ(st.bytes, 0u);
    }
    r.barrier();
  });
}

TEST(StressEdge, WorldIsReusableAcrossRuns) {
  World world(3);
  for (int repeat = 0; repeat < 3; ++repeat) {
    world.run([repeat](Rank& r) {
      int v = r.rank() + repeat, sum = 0;
      r.allreduce(&v, &sum, 1, Datatype::kInt, ReduceOp::kSum);
      EXPECT_EQ(sum, 0 + 1 + 2 + 3 * repeat);
    });
  }
}

}  // namespace
}  // namespace mpiwasm::simmpi
