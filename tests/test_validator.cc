// Validator tests: well-typed modules pass; a catalogue of type errors,
// index errors, and structural errors must be rejected with messages.
#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::wasm {
namespace {

ValidationResult validate_bytes(const std::vector<u8>& bytes) {
  auto decoded = decode_module({bytes.data(), bytes.size()});
  EXPECT_TRUE(decoded.ok()) << decoded.error;
  if (!decoded.ok()) return {false, "decode failed"};
  return validate_module(*decoded.module);
}

constexpr ValType I32 = ValType::kI32;
constexpr ValType I64 = ValType::kI64;
constexpr ValType F64 = ValType::kF64;

TEST(Validator, AcceptsWellTypedModule) {
  ModuleBuilder b;
  b.add_memory(1);
  auto& f = b.begin_func({{I32, I32}, {I32}}, "add");
  f.local_get(0);
  f.local_get(1);
  f.op(Op::kI32Add);
  f.end();
  EXPECT_TRUE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsBinopTypeMismatch) {
  ModuleBuilder b;
  auto& f = b.begin_func({{I32, I64}, {I32}}, "bad");
  f.local_get(0);
  f.local_get(1);
  f.op(Op::kI32Add);  // i32 + i64
  f.end();
  auto r = validate_bytes(b.build());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("type mismatch"), std::string::npos);
}

TEST(Validator, RejectsStackUnderflow) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {I32}}, "bad");
  f.op(Op::kI32Add);  // nothing on the stack
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsMissingResult) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {I32}}, "bad");
  f.end();  // no value produced
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsExtraResult) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "bad");
  f.i32_const(1);
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsWrongResultType) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {F64}}, "bad");
  f.i32_const(1);
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsBadLocalIndex) {
  ModuleBuilder b;
  auto& f = b.begin_func({{I32}, {I32}}, "bad");
  f.local_get(3);
  f.end();
  auto r = validate_bytes(b.build());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("local"), std::string::npos);
}

TEST(Validator, RejectsBadBranchDepth) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "bad");
  f.block();
  f.br(5);
  f.end();
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsBranchValueMismatch) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "bad");
  f.block(I32);
  f.f64_const(1.0);
  f.br(0);  // carries f64 into an i32 label
  f.end();
  f.op(Op::kDrop);
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsIfWithoutCondition) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "bad");
  f.if_();
  f.end();
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsIfResultWithoutElse) {
  ModuleBuilder b;
  auto& f = b.begin_func({{I32}, {I32}}, "bad");
  f.local_get(0);
  f.if_(I32);
  f.i32_const(1);
  f.end();  // if with result but no else
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, AcceptsIfElseWithResult) {
  ModuleBuilder b;
  auto& f = b.begin_func({{I32}, {I32}}, "ok");
  f.local_get(0);
  f.if_(I32);
  f.i32_const(1);
  f.else_();
  f.i32_const(2);
  f.end();
  f.end();
  EXPECT_TRUE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsCallArgMismatch) {
  ModuleBuilder b;
  u32 imp = b.import_func("env", "f", {{I32, I32}, {}});
  auto& f = b.begin_func({{}, {}}, "bad");
  f.i32_const(1);
  f.call(imp);  // missing second arg
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsCallBadIndex) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "bad");
  f.call(99);
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsMemoryOpWithoutMemory) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {I32}}, "bad");
  f.i32_const(0);
  f.mem_op(Op::kI32Load);
  f.end();
  auto r = validate_bytes(b.build());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("memory"), std::string::npos);
}

TEST(Validator, RejectsOveralignedAccess) {
  ModuleBuilder b;
  b.add_memory(1);
  auto& f = b.begin_func({{}, {I32}}, "bad");
  f.i32_const(0);
  f.mem_op(Op::kI32Load, 0, /*align_log2=*/3);  // 8-byte align on 4-byte load
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsGlobalSetOnImmutable) {
  ModuleBuilder b;
  u32 g = b.add_global(I32, false, 1);
  auto& f = b.begin_func({{}, {}}, "bad");
  f.i32_const(2);
  f.global_set(g);
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsSelectMismatchedOperands) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {}}, "bad");
  f.i32_const(1);
  f.f64_const(2.0);
  f.i32_const(0);
  f.op(Op::kSelect);
  f.op(Op::kDrop);
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsBrTableInconsistentLabels) {
  ModuleBuilder b;
  auto& f = b.begin_func({{I32}, {}}, "bad");
  f.block(I32);   // label with result
  f.block();      // label without
  f.i32_const(1);
  f.local_get(0);
  f.br_table({0}, 1);  // depth0: no result, depth1: i32 result
  f.end();
  f.op(Op::kDrop);
  f.end();
  f.op(Op::kDrop);
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, AcceptsDeadCodeAfterBranch) {
  // After br, stack-polymorphic code is legal per spec.
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {I32}}, "ok");
  f.block(I32);
  f.i32_const(1);
  f.br(0);
  f.op(Op::kI32Add);  // dead, polymorphic
  f.end();
  f.end();
  EXPECT_TRUE(validate_bytes(b.build()).ok);
}

TEST(Validator, AcceptsUnreachableThenAnything) {
  ModuleBuilder b;
  auto& f = b.begin_func({{}, {I32}}, "ok");
  f.op(Op::kUnreachable);
  f.op(Op::kF64Mul);  // polymorphic after unreachable
  f.op(Op::kDrop);
  f.i32_const(3);
  f.end();
  EXPECT_TRUE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsCallIndirectWithoutTable) {
  ModuleBuilder b;
  u32 sig = b.add_type({{}, {}});
  auto& f = b.begin_func({{}, {}}, "bad");
  f.i32_const(0);
  f.call_indirect(sig);
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsElemFuncIndexOutOfRange) {
  ModuleBuilder b;
  b.add_table(4);
  b.add_elem(0, {17});
  auto& f = b.begin_func({{}, {}}, "f");
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsStartWithSignature) {
  ModuleBuilder b;
  auto& f = b.begin_func({{I32}, {}}, "f");
  f.end();
  b.set_start(f.index());
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsSimdLaneOutOfRange) {
  ModuleBuilder b;
  b.add_memory(1);
  auto& f = b.begin_func({{}, {F64}}, "bad");
  f.v128_const(V128{});
  f.lane_op(Op::kF64x2ExtractLane, 2);  // lanes are 0..1
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, RejectsMemoryOver4GiB) {
  ModuleBuilder b;
  b.add_memory(70000);  // > 65536 pages
  auto& f = b.begin_func({{}, {}}, "f");
  f.end();
  EXPECT_FALSE(validate_bytes(b.build()).ok);
}

TEST(Validator, ErrorMessagesNameTheFunction) {
  ModuleBuilder b;
  b.import_func("env", "x", {{}, {}});
  auto& ok = b.begin_func({{}, {}}, "ok");
  ok.end();
  auto& bad = b.begin_func({{}, {}}, "bad");
  bad.i32_const(1);
  bad.end();
  auto r = validate_bytes(b.build());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("func[2]"), std::string::npos) << r.error;
}

}  // namespace
}  // namespace mpiwasm::wasm
