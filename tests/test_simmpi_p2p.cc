// simmpi point-to-point tests: blocking/nonblocking semantics, matching
// rules (tags, wildcards, FIFO), eager vs rendezvous protocols, errors.
#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/api.h"
#include "simmpi/world.h"

namespace mpiwasm::simmpi {
namespace {

TEST(SimMpiP2P, BlockingSendRecvSmall) {
  World world(2);
  world.run([](Rank& r) {
    if (r.rank() == 0) {
      int v = 12345;
      r.send(&v, 1, Datatype::kInt, 1, 0);
    } else {
      int v = 0;
      Status st = r.recv(&v, 1, Datatype::kInt, 0, 0);
      EXPECT_EQ(v, 12345);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 0);
      EXPECT_EQ(st.count(Datatype::kInt), 1);
    }
  });
}

TEST(SimMpiP2P, RendezvousLargeMessage) {
  // 1 MiB exceeds the eager limit: exercises the single-copy rendezvous.
  World world(2);
  world.run([](Rank& r) {
    const size_t n = 1 << 20;
    if (r.rank() == 0) {
      std::vector<u8> buf(n);
      for (size_t i = 0; i < n; ++i) buf[i] = u8(i * 13);
      r.send(buf.data(), int(n), Datatype::kByte, 1, 5);
    } else {
      std::vector<u8> buf(n, 0);
      r.recv(buf.data(), int(n), Datatype::kByte, 0, 5);
      for (size_t i = 0; i < n; i += 4097) EXPECT_EQ(buf[i], u8(i * 13));
    }
  });
}

TEST(SimMpiP2P, TagMatchingOutOfOrder) {
  // Receiver asks for tag 2 first even though tag 1 was sent first.
  World world(2);
  world.run([](Rank& r) {
    if (r.rank() == 0) {
      int a = 100, b = 200;
      r.send(&a, 1, Datatype::kInt, 1, 1);
      r.send(&b, 1, Datatype::kInt, 1, 2);
    } else {
      int v2 = 0, v1 = 0;
      r.recv(&v2, 1, Datatype::kInt, 0, 2);
      r.recv(&v1, 1, Datatype::kInt, 0, 1);
      EXPECT_EQ(v2, 200);
      EXPECT_EQ(v1, 100);
    }
  });
}

TEST(SimMpiP2P, FifoOrderPerTag) {
  World world(2);
  world.run([](Rank& r) {
    if (r.rank() == 0) {
      for (int i = 0; i < 20; ++i) r.send(&i, 1, Datatype::kInt, 1, 0);
    } else {
      for (int i = 0; i < 20; ++i) {
        int v = -1;
        r.recv(&v, 1, Datatype::kInt, 0, 0);
        EXPECT_EQ(v, i);  // per-(src,tag) FIFO
      }
    }
  });
}

TEST(SimMpiP2P, AnySourceAnyTag) {
  World world(3);
  world.run([](Rank& r) {
    if (r.rank() == 0) {
      int got = 0;
      for (int k = 0; k < 2; ++k) {
        int v = 0;
        Status st = r.recv(&v, 1, Datatype::kInt, kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source * 10 + st.tag);
        ++got;
      }
      EXPECT_EQ(got, 2);
    } else {
      int v = r.rank() * 10 + r.rank();
      r.send(&v, 1, Datatype::kInt, 0, r.rank());
    }
  });
}

TEST(SimMpiP2P, IsendIrecvWaitall) {
  World world(2);
  world.run([](Rank& r) {
    constexpr int kN = 8;
    if (r.rank() == 0) {
      std::vector<int> data(kN);
      std::iota(data.begin(), data.end(), 0);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i)
        reqs.push_back(r.isend(&data[i], 1, Datatype::kInt, 1, i));
      r.waitall(reqs);
    } else {
      std::vector<int> out(kN, -1);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i)
        reqs.push_back(r.irecv(&out[i], 1, Datatype::kInt, 0, i));
      r.waitall(reqs);
      for (int i = 0; i < kN; ++i) EXPECT_EQ(out[i], i);
    }
  });
}

TEST(SimMpiP2P, TestPollsToCompletion) {
  World world(2);
  world.run([](Rank& r) {
    if (r.rank() == 0) {
      int v = 7;
      // Give the receiver a head start so test() sees both states.
      r.send(&v, 1, Datatype::kInt, 1, 0);
    } else {
      int v = 0;
      Request req = r.irecv(&v, 1, Datatype::kInt, 0, 0);
      Status st;
      while (!r.test(req, &st)) {
      }
      EXPECT_EQ(v, 7);
    }
  });
}

TEST(SimMpiP2P, SendrecvExchanges) {
  World world(4);
  world.run([](Rank& r) {
    int right = (r.rank() + 1) % r.size();
    int left = (r.rank() - 1 + r.size()) % r.size();
    int mine = r.rank() * 11;
    int theirs = -1;
    r.sendrecv(&mine, 1, Datatype::kInt, right, 3, &theirs, 1, Datatype::kInt,
               left, 3);
    EXPECT_EQ(theirs, left * 11);
  });
}

TEST(SimMpiP2P, IprobeSeesPendingMessage) {
  World world(2);
  world.run([](Rank& r) {
    if (r.rank() == 0) {
      int v = 1;
      r.send(&v, 1, Datatype::kInt, 1, 9);
      r.barrier();
    } else {
      r.barrier();  // after this the message must be in the unexpected queue
      Status st;
      EXPECT_TRUE(r.iprobe(0, 9, kCommWorld, &st));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_FALSE(r.iprobe(0, 1234, kCommWorld, nullptr));
      int v = 0;
      r.recv(&v, 1, Datatype::kInt, 0, 9);
    }
  });
}

TEST(SimMpiP2P, TruncationIsAnError) {
  World world(2);
  world.run([](Rank& r) {
    if (r.rank() == 0) {
      std::vector<int> big(16, 1);
      r.send(big.data(), 16, Datatype::kInt, 1, 0);
    } else {
      int small[2];
      EXPECT_THROW(r.recv(small, 2, Datatype::kInt, 0, 0), MpiError);
    }
  });
}

TEST(SimMpiP2P, InvalidArgumentsThrow) {
  World world(2);
  world.run([](Rank& r) {
    int v = 0;
    if (r.rank() == 0) {
      EXPECT_THROW(r.send(&v, 1, Datatype::kInt, 7, 0), MpiError);
      EXPECT_THROW(r.send(&v, 1, Datatype::kInt, 1, -5), MpiError);
      EXPECT_THROW(r.send(&v, -1, Datatype::kInt, 1, 0), MpiError);
      EXPECT_THROW(r.recv(&v, 1, Datatype::kInt, 9, 0), MpiError);
    }
  });
}

TEST(SimMpiP2P, AbortUnblocksPeers) {
  World world(2);
  EXPECT_THROW(world.run([](Rank& r) {
    if (r.rank() == 0) {
      int v;
      // Would block forever; rank 1's abort must unblock it.
      try {
        r.recv(&v, 1, Datatype::kInt, 1, 0);
      } catch (const MpiAbort&) {
        throw;  // expected path
      }
    } else {
      r.abort(3);
    }
  }),
               MpiError);
}

TEST(SimMpiP2P, WtimeAdvances) {
  World world(1);
  world.run([](Rank& r) {
    f64 t0 = r.wtime();
    f64 t1 = r.wtime();
    EXPECT_GE(t1, t0);
  });
}

TEST(SimMpiP2P, CurrentContextAccessor) {
  EXPECT_FALSE(in_mpi_context());
  EXPECT_THROW(ctx(), MpiError);
  World world(2);
  world.run([](Rank& r) {
    EXPECT_TRUE(in_mpi_context());
    EXPECT_EQ(&ctx(), &r);
  });
}

TEST(SimMpiP2P, SelfSendViaNonblocking) {
  World world(1);
  world.run([](Rank& r) {
    int in = 5, out = 0;
    Request rr = r.irecv(&out, 1, Datatype::kInt, 0, 0);
    r.send(&in, 1, Datatype::kInt, 0, 0);
    r.wait(rr);
    EXPECT_EQ(out, 5);
  });
}

}  // namespace
}  // namespace mpiwasm::simmpi
