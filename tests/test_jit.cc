// Native x86-64 JIT tier: correctness, per-function interpreter fallback,
// trap-point identity with the interpreter, memory.grow base/size reload,
// and the cache v6 native-blob validation chain (feature/layout mismatch ->
// recompile -> threaded fallback).
#include "testlib.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "runtime/cache.h"
#include "runtime/jit_x64.h"

namespace mpiwasm::test {
namespace {

namespace fs = std::filesystem;
using rt::Trap;
using rt::TrapKind;

std::string fresh_cache_dir() {
  static int counter = 0;
  auto dir = fs::temp_directory_path() /
             ("mpiwasm-test-jit-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter++));
  fs::create_directories(dir);
  return dir.string();
}

EngineConfig jit_config() {
  EngineConfig cfg;
  cfg.tier = EngineTier::kJit;
  cfg.jit = true;  // independent of the MPIWASM_JIT ambient default
  return cfg;
}

/// run(a, b) = a*b + 5 — every op has a template.
std::vector<u8> arith_module() {
  return build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32Mul);
    f.i32_const(5);
    f.op(Op::kI32Add);
    f.end();
  });
}

TEST(Jit, CompilesAndRunsNativeCode) {
  auto bytes = arith_module();
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  EXPECT_EQ(cm->tier, EngineTier::kJit);
  EXPECT_EQ(cm->jit_funcs.load(), 1u);
  EXPECT_EQ(cm->jit_fallback_funcs.load(), 0u);
  ASSERT_NE(cm->jit_arena, nullptr);
  EXPECT_GT(cm->jit_arena->code_bytes(), 0u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(6),
                                                  Value::from_i32(7)})
                .as_i32(),
            47);
}

TEST(Jit, JitOffDegradesToOptimizing) {
  auto bytes = arith_module();
  EngineConfig off = jit_config();
  off.jit = false;
  auto cm = rt::compile({bytes.data(), bytes.size()}, off);
  EXPECT_EQ(cm->tier, EngineTier::kOptimizing);
  EXPECT_EQ(cm->jit_funcs.load(), 0u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(6),
                                                  Value::from_i32(7)})
                .as_i32(),
            47);
}

TEST(Jit, UncoveredOpFallsBackPerFunction) {
  // i8x16.splat has no template; the function must run through the threaded
  // interpreter and still produce the right answer, counted as a fallback.
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.op(Op::kI8x16Splat);
    f.lane_op(Op::kI8x16ExtractLaneU, 3);
    f.end();
  });
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  EXPECT_EQ(cm->jit_funcs.load(), 0u);
  EXPECT_EQ(cm->jit_fallback_funcs.load(), 1u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(0xAB)})
                .as_i32(),
            0xAB);
}

TEST(Jit, MixedModuleCompilesCoveredKeepsRest) {
  // Two functions: one covered, one not. The census must show one of each,
  // and both must execute correctly in the same instance.
  ModuleBuilder b;
  b.add_memory(1);
  auto& g = b.begin_func({{I32}, {I32}}, "splat3");
  g.local_get(0);
  g.op(Op::kI8x16Splat);
  g.lane_op(Op::kI8x16ExtractLaneU, 3);
  g.end();
  auto& f = b.begin_func({{I32, I32}, {I32}}, "run");
  f.local_get(0);
  f.local_get(1);
  f.op(Op::kI32Add);
  f.end();
  auto bytes = b.build();
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  EXPECT_EQ(cm->jit_funcs.load(), 1u);
  EXPECT_EQ(cm->jit_fallback_funcs.load(), 1u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(2),
                                                  Value::from_i32(3)})
                .as_i32(),
            5);
  EXPECT_EQ(inst.invoke("splat3", std::vector<Value>{Value::from_i32(9)})
                .as_i32(),
            9);
}

TEST(Jit, CallsBetweenNativeFunctionsWork) {
  ModuleBuilder b;
  auto& helper = b.begin_func({{I32, I32}, {I32}}, "helper");
  helper.local_get(0);
  helper.local_get(1);
  helper.op(Op::kI32Mul);
  helper.end();
  auto& f = b.begin_func({{I32}, {I32}}, "run");
  f.local_get(0);
  f.i32_const(3);
  f.call(0);  // helper(x, 3)
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.end();
  auto bytes = b.build();
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  EXPECT_EQ(cm->jit_funcs.load(), 2u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(5)})
                .as_i32(),
            16);
}

TEST(Jit, BrTableDispatches) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    u32 r = f.add_local(ValType::kI32);
    f.block();  // outer — the default target and both exits
    f.block();
    f.block();
    f.local_get(0);
    f.br_table({0, 1}, 2);
    f.end();
    f.i32_const(100);  // case 0 lands here
    f.local_set(r);
    f.br(1);
    f.end();
    f.i32_const(200);  // case 1 lands here
    f.local_set(r);
    f.br(0);
    f.end();  // default: r stays 0
    f.local_get(r);
    f.end();
  });
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  EXPECT_EQ(cm->jit_funcs.load(), 1u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(0)})
                .as_i32(), 100);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(1)})
                .as_i32(), 200);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(9)})
                .as_i32(), 0);
}

TEST(Jit, V128ArithmeticMatchesScalar) {
  // f32x4: (1,2,3,4) + (10,20,30,40), extract lane 2 -> 33.
  wasm::V128 a{}, b{};
  f32 av[4] = {1, 2, 3, 4}, bv[4] = {10, 20, 30, 40};
  std::memcpy(a.bytes, av, 16);
  std::memcpy(b.bytes, bv, 16);
  auto bytes = build_single_func({{}, {F32}}, [&](auto& f) {
    f.v128_const(a);
    f.v128_const(b);
    f.op(Op::kF32x4Add);
    f.lane_op(Op::kF32x4ExtractLane, 2);
    f.end();
  });
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  EXPECT_EQ(cm->jit_funcs.load(), 1u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("run").as_f32(), 33.0f);
}

// --- trap behaviour ---------------------------------------------------------

/// store(0)=1; store(addr)=2; store(4)=3 — an OOB `addr` must trap after the
/// first store retires and before the third executes, exactly like the
/// interpreter.
std::vector<u8> partial_store_module() {
  return build_single_func({{I32}, {}}, [](auto& f) {
    f.i32_const(0);
    f.i32_const(1);
    f.mem_op(Op::kI32Store);
    f.local_get(0);
    f.i32_const(2);
    f.mem_op(Op::kI32Store);
    f.i32_const(4);
    f.i32_const(3);
    f.mem_op(Op::kI32Store);
    f.end();
  });
}

TEST(Jit, OobTrapsAtTheSamePointAsInterp) {
  auto bytes = partial_store_module();
  for (EngineTier tier : {EngineTier::kInterp, EngineTier::kJit}) {
    EngineConfig cfg;
    cfg.tier = tier;
    cfg.jit = true;
    auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
    rt::ImportTable imports;
    rt::Instance inst(cm, imports);
    TrapKind kind = TrapKind::kHostError;
    try {
      inst.invoke("run", std::vector<Value>{Value::from_i32(1 << 20)});
      ADD_FAILURE() << "expected an OOB trap at tier "
                    << rt::tier_name(tier);
    } catch (const Trap& t) {
      kind = t.kind();
    }
    EXPECT_EQ(kind, TrapKind::kMemoryOutOfBounds);
    // Side effects before the trap retired; those after did not.
    i32 first = 0, third = 0;
    std::memcpy(&first, inst.memory().base() + 0, 4);
    std::memcpy(&third, inst.memory().base() + 4, 4);
    EXPECT_EQ(first, 1) << rt::tier_name(tier);
    EXPECT_EQ(third, 0) << rt::tier_name(tier);
  }
}

TEST(Jit, DivTrapsMatchInterp) {
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32DivS);
    f.end();
  });
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  ASSERT_EQ(cm->jit_funcs.load(), 1u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  auto trap_kind = [&](i32 a, i32 b) {
    try {
      inst.invoke("run",
                  std::vector<Value>{Value::from_i32(a), Value::from_i32(b)});
    } catch (const Trap& t) {
      return t.kind();
    }
    return TrapKind::kHostError;
  };
  EXPECT_EQ(trap_kind(1, 0), TrapKind::kIntegerDivByZero);
  EXPECT_EQ(trap_kind(INT32_MIN, -1), TrapKind::kIntegerOverflow);
  // The instance stays usable after a native-code trap unwind.
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(42),
                                                  Value::from_i32(6)})
                .as_i32(),
            7);
}

TEST(Jit, MemoryGrowReloadsBaseAndSize) {
  // grow(+1), then store/load at an address that was OOB before the grow:
  // the native code must pick up the new base and size from the helper.
  auto bytes = build_single_func({{}, {I32}}, [](auto& f) {
    u32 old_pages = f.add_local(ValType::kI32);
    f.i32_const(1);
    f.op(Op::kMemoryGrow);
    f.local_set(old_pages);
    f.local_get(old_pages);
    f.i32_const(16);  // old_pages << 16 == old byte size
    f.op(Op::kI32Shl);
    f.i32_const(777);
    f.mem_op(Op::kI32Store);
    f.local_get(old_pages);
    f.i32_const(16);
    f.op(Op::kI32Shl);
    f.mem_op(Op::kI32Load);
    f.end();
  });
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  ASSERT_EQ(cm->jit_funcs.load(), 1u);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("run").as_i32(), 777);
}

// --- cache v6 native-blob validation ----------------------------------------

/// Rewrites the single module-level cache entry in `dir` through `mutate`.
void mutate_cache_entry(const std::string& dir,
                        const std::function<void(rt::RModule&)>& mutate) {
  fs::path entry;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".rcache") entry = e.path();
  ASSERT_FALSE(entry.empty());
  std::ifstream in(entry, std::ios::binary);
  std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  in.close();
  auto rm = rt::deserialize_regcode({bytes.data(), bytes.size()});
  ASSERT_TRUE(rm.has_value());
  mutate(*rm);
  auto out_bytes = rt::serialize_regcode(*rm);
  std::ofstream out(entry, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(out_bytes.data()),
            std::streamsize(out_bytes.size()));
}

TEST(Jit, CacheRoundTripsNativeBlob) {
  auto dir = fresh_cache_dir();
  auto bytes = arith_module();
  EngineConfig cfg = jit_config();
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  auto cold = rt::compile({bytes.data(), bytes.size()}, cfg);
  ASSERT_FALSE(cold->loaded_from_cache);
  ASSERT_EQ(cold->jit_funcs.load(), 1u);

  auto warm = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_TRUE(warm->loaded_from_cache);
  EXPECT_EQ(warm->jit_funcs.load(), 1u) << "blob must install from cache";
  ASSERT_NE(warm->regcode.funcs[0].jit, nullptr);
  EXPECT_EQ(warm->regcode.funcs[0].jit->layout_hash, rt::jit_layout_hash());
  rt::ImportTable imports;
  rt::Instance inst(warm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(6),
                                                  Value::from_i32(7)})
                .as_i32(),
            47);
  fs::remove_all(dir);
}

TEST(Jit, CacheBlobWithWrongLayoutHashIsRecompiledNotInstalled) {
  auto dir = fresh_cache_dir();
  auto bytes = arith_module();
  EngineConfig cfg = jit_config();
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  rt::compile({bytes.data(), bytes.size()}, cfg);

  // Flip the layout hash AND poison the machine code: if the engine ever
  // installed this blob instead of rejecting it, `run` would return without
  // computing the result (0xC3 = ret) and the assertion below would fail.
  mutate_cache_entry(dir, [](rt::RModule& rm) {
    ASSERT_NE(rm.funcs[0].jit, nullptr);
    auto blob = std::make_shared<rt::JitBlob>(*rm.funcs[0].jit);
    blob->layout_hash ^= 0x1;
    std::fill(blob->code.begin(), blob->code.end(), u8(0xC3));
    blob->relocs.clear();
    rm.funcs[0].jit = std::move(blob);
  });

  auto warm = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_TRUE(warm->loaded_from_cache);  // RegCode part is still valid
  EXPECT_EQ(warm->jit_funcs.load(), 1u) << "stale blob must be recompiled";
  rt::ImportTable imports;
  rt::Instance inst(warm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(6),
                                                  Value::from_i32(7)})
                .as_i32(),
            47);
  fs::remove_all(dir);
}

TEST(Jit, CacheBlobWithUnknownCpuFeatureIsRecompiledNotInstalled) {
  auto dir = fresh_cache_dir();
  auto bytes = arith_module();
  EngineConfig cfg = jit_config();
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  rt::compile({bytes.data(), bytes.size()}, cfg);

  // Claim a CPU feature bit no host reports; features must be a subset of
  // the host's for the blob to install.
  mutate_cache_entry(dir, [](rt::RModule& rm) {
    ASSERT_NE(rm.funcs[0].jit, nullptr);
    auto blob = std::make_shared<rt::JitBlob>(*rm.funcs[0].jit);
    blob->cpu_features |= 0x80000000u;
    std::fill(blob->code.begin(), blob->code.end(), u8(0xC3));
    blob->relocs.clear();
    rm.funcs[0].jit = std::move(blob);
  });

  auto warm = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_TRUE(warm->loaded_from_cache);
  EXPECT_EQ(warm->jit_funcs.load(), 1u);
  rt::ImportTable imports;
  rt::Instance inst(warm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(6),
                                                  Value::from_i32(7)})
                .as_i32(),
            47);
  fs::remove_all(dir);
}

TEST(Jit, InvalidBlobOnUncompilableFunctionFallsBackToThreaded) {
  // An uncovered-op function never gets a blob; graft a stale one onto its
  // cache entry. The engine must reject it (layout mismatch), fail the
  // recompile (no template for i8x16.splat), and silently run the function
  // through the threaded interpreter.
  auto dir = fresh_cache_dir();
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.op(Op::kI8x16Splat);
    f.lane_op(Op::kI8x16ExtractLaneU, 0);
    f.end();
  });
  EngineConfig cfg = jit_config();
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  auto cold = rt::compile({bytes.data(), bytes.size()}, cfg);
  ASSERT_EQ(cold->jit_fallback_funcs.load(), 1u);

  mutate_cache_entry(dir, [](rt::RModule& rm) {
    ASSERT_EQ(rm.funcs[0].jit, nullptr);
    auto blob = std::make_shared<rt::JitBlob>();
    blob->layout_hash = rt::jit_layout_hash() ^ 0x1;
    blob->code = {0xC3};
    rm.funcs[0].jit = std::move(blob);
  });

  auto warm = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_TRUE(warm->loaded_from_cache);
  EXPECT_EQ(warm->jit_funcs.load(), 0u);
  EXPECT_EQ(warm->jit_fallback_funcs.load(), 1u);
  rt::ImportTable imports;
  rt::Instance inst(warm, imports);
  EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(77)})
                .as_i32(),
            77);
  fs::remove_all(dir);
}

TEST(Jit, TruncatedNativeSectionRejectsWholeEntry) {
  auto bytes = arith_module();
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  ASSERT_NE(cm->regcode.funcs[0].jit, nullptr);
  auto blob = rt::serialize_regcode(cm->regcode);
  // Cut inside the native section (the last bytes of the entry).
  for (size_t cut = blob.size() - 1; cut > blob.size() - 12; --cut)
    EXPECT_FALSE(rt::deserialize_regcode({blob.data(), cut}).has_value())
        << "prefix of " << cut << " bytes";
}

// --- tier-up into native code -----------------------------------------------

TEST(Jit, TieredPromotionReachesNativeCode) {
  auto bytes = arith_module();
  EngineConfig cfg;
  cfg.tier = EngineTier::kTiered;
  cfg.jit = true;
  cfg.tierup_baseline_threshold = 1;
  cfg.tierup_opt_threshold = 2;
  cfg.tierup_jit_threshold = 3;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  rt::ImportTable imports;
  rt::Instance inst(cm, imports);
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(inst.invoke("run", std::vector<Value>{Value::from_i32(k),
                                                    Value::from_i32(2)})
                  .as_i32(),
              2 * k + 5)
        << "call " << k;
  }
  auto snap = rt::tierup_snapshot(*cm);
  EXPECT_EQ(snap.promoted_jit, 1u);
  EXPECT_EQ(snap.jit_funcs, 1u);
  EXPECT_GT(snap.jit_code_bytes, 0u);
  EXPECT_GE(snap.calls_counted, 3u);
}

TEST(Jit, SnapshotCountsStaticJitModules) {
  auto bytes = arith_module();
  auto cm = rt::compile({bytes.data(), bytes.size()}, jit_config());
  auto snap = rt::tierup_snapshot(*cm);
  EXPECT_EQ(snap.funcs_total, 1u);
  EXPECT_EQ(snap.funcs_regcode, 1u);
  EXPECT_EQ(snap.jit_funcs, 1u);
  EXPECT_EQ(snap.jit_fallback_funcs, 0u);
  EXPECT_GT(snap.jit_code_bytes, 0u);
}

}  // namespace
}  // namespace mpiwasm::test
