// Core execution-engine tests: every tier must run arithmetic, control
// flow, calls, memory ops, globals, and SIMD correctly.
#include "testlib.h"

namespace mpiwasm::test {
namespace {

class RuntimeCoreTest : public ::testing::TestWithParam<EngineTier> {};

INSTANTIATE_TEST_SUITE_P(AllTiers, RuntimeCoreTest,
                         ::testing::ValuesIn(all_tiers()),
                         [](const auto& info) {
                           return rt::tier_name(info.param);
                         });

TEST_P(RuntimeCoreTest, AddTwoI32Params) {
  auto bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI32Add);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  Value r = inst->invoke("run", std::vector<Value>{Value::from_i32(40),
                                                   Value::from_i32(2)});
  EXPECT_EQ(r.as_i32(), 42);
}

TEST_P(RuntimeCoreTest, I64Arithmetic) {
  auto bytes = build_single_func({{I64, I64}, {I64}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kI64Mul);
    f.i64_const(7);
    f.op(Op::kI64Add);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  Value r = inst->invoke("run", std::vector<Value>{
                                    Value::from_i64(123456789),
                                    Value::from_i64(987654321)});
  EXPECT_EQ(r.as_i64(), 123456789LL * 987654321LL + 7);
}

TEST_P(RuntimeCoreTest, F64Math) {
  auto bytes = build_single_func({{F64}, {F64}}, [](auto& f) {
    f.local_get(0);
    f.op(Op::kF64Sqrt);
    f.local_get(0);
    f.op(Op::kF64Mul);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  Value r = inst->invoke("run", std::vector<Value>{Value::from_f64(16.0)});
  EXPECT_DOUBLE_EQ(r.as_f64(), 64.0);
}

TEST_P(RuntimeCoreTest, LoopSum) {
  // sum of 0..n-1 via the builder's structured for-loop helper.
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    u32 i = f.add_local(I32);
    u32 acc = f.add_local(I32);
    f.for_loop_i32(i, 0, 0 /*limit = param 0*/, 1, [&] {
      f.local_get(acc);
      f.local_get(i);
      f.op(Op::kI32Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  Value r = inst->invoke("run", std::vector<Value>{Value::from_i32(100)});
  EXPECT_EQ(r.as_i32(), 4950);
}

TEST_P(RuntimeCoreTest, IfElseWithResult) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.i32_const(0);
    f.op(Op::kI32GeS);
    f.if_(I32);
    f.local_get(0);
    f.else_();
    f.i32_const(0);
    f.local_get(0);
    f.op(Op::kI32Sub);
    f.end();  // if
    f.end();  // func
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(-5)}).as_i32(), 5);
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(9)}).as_i32(), 9);
}

TEST_P(RuntimeCoreTest, NestedBlocksAndBranches) {
  // Computes: if x == 0 -> 100; x == 1 -> 200; else 300, via br_table.
  auto bytes2 = build_single_func({{I32}, {I32}}, [](auto& f) {
    u32 out = f.add_local(I32);
    f.block();      // default exit    (depth 2 inside innermost)
    f.block();      // case 1          (depth 1)
    f.block();      // case 0          (depth 0)
    f.local_get(0);
    f.br_table({0, 1}, 2);
    f.end();
    f.i32_const(100);
    f.local_set(out);
    f.br(1);
    f.end();
    f.i32_const(200);
    f.local_set(out);
    f.br(0);
    f.end();
    f.local_get(out);
    f.i32_const(0);
    f.op(Op::kI32Eq);
    f.if_();
    f.i32_const(300);
    f.local_set(out);
    f.end();
    f.local_get(out);
    f.end();
  });
  auto inst = instantiate(bytes2, GetParam());
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(0)}).as_i32(), 100);
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(1)}).as_i32(), 200);
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(7)}).as_i32(), 300);
}

TEST_P(RuntimeCoreTest, RecursiveFib) {
  ModuleBuilder b;
  auto& f = b.begin_func({{I32}, {I32}}, "fib");
  f.local_get(0);
  f.i32_const(2);
  f.op(Op::kI32LtS);
  f.if_(I32);
  f.local_get(0);
  f.else_();
  f.local_get(0);
  f.i32_const(1);
  f.op(Op::kI32Sub);
  f.call(f.index());
  f.local_get(0);
  f.i32_const(2);
  f.op(Op::kI32Sub);
  f.call(f.index());
  f.op(Op::kI32Add);
  f.end();
  f.end();
  auto bytes = b.build();
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("fib", std::vector<Value>{Value::from_i32(15)}).as_i32(), 610);
}

TEST_P(RuntimeCoreTest, MemoryLoadStoreRoundTrip) {
  auto bytes = build_single_func({{I32, I64}, {I64}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.mem_op(Op::kI64Store, 8);
    f.local_get(0);
    f.mem_op(Op::kI64Load, 8);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  Value r = inst->invoke("run", std::vector<Value>{
                                    Value::from_i32(64),
                                    Value::from_i64(0x1122334455667788LL)});
  EXPECT_EQ(r.as_i64(), 0x1122334455667788LL);
}

TEST_P(RuntimeCoreTest, SubWidthLoadsSignExtend) {
  auto bytes = build_single_func({{}, {I32}}, [](auto& f) {
    f.i32_const(0);
    f.i32_const(-1);  // 0xFFFFFFFF
    f.mem_op(Op::kI32Store, 0);
    f.i32_const(0);
    f.mem_op(Op::kI32Load8S, 0);  // -1
    f.i32_const(0);
    f.mem_op(Op::kI32Load8U, 1);  // 255
    f.op(Op::kI32Add);            // 254
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run").as_i32(), 254);
}

TEST_P(RuntimeCoreTest, MemoryCopyAndFill) {
  auto bytes = build_single_func({{}, {I32}}, [](auto& f) {
    // fill [0,16) with 0xAB, copy to [100,116), read back byte 107.
    f.i32_const(0);
    f.i32_const(0xAB);
    f.i32_const(16);
    f.op(Op::kMemoryFill);
    f.i32_const(100);
    f.i32_const(0);
    f.i32_const(16);
    f.op(Op::kMemoryCopy);
    f.i32_const(107);
    f.mem_op(Op::kI32Load8U, 0);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run").as_i32(), 0xAB);
}

TEST_P(RuntimeCoreTest, MemorySizeAndGrow) {
  auto bytes = build_single_func({{}, {I32}}, [](auto& f) {
    f.i32_const(2);
    f.op(Op::kMemoryGrow);  // previous size: 1
    f.op(Op::kMemorySize);  // now 3
    f.op(Op::kI32Add);      // 1 + 3
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run").as_i32(), 4);
}

TEST_P(RuntimeCoreTest, GlobalsMutate) {
  ModuleBuilder b;
  u32 g = b.add_global(I64, true, 10);
  auto& f = b.begin_func({{}, {I64}}, "bump");
  f.global_get(g);
  f.i64_const(5);
  f.op(Op::kI64Add);
  f.global_set(g);
  f.global_get(g);
  f.end();
  auto bytes = b.build();
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("bump").as_i64(), 15);
  EXPECT_EQ(inst->invoke("bump").as_i64(), 20);
}

TEST_P(RuntimeCoreTest, CallIndirectDispatch) {
  ModuleBuilder b;
  b.add_table(2);
  auto& fa = b.begin_func({{I32}, {I32}}, "");
  fa.local_get(0);
  fa.i32_const(1);
  fa.op(Op::kI32Add);
  fa.end();
  auto& fb = b.begin_func({{I32}, {I32}}, "");
  fb.local_get(0);
  fb.i32_const(2);
  fb.op(Op::kI32Mul);
  fb.end();
  b.add_elem(0, {fa.index(), fb.index()});
  u32 sig = b.add_type({{I32}, {I32}});
  auto& f = b.begin_func({{I32, I32}, {I32}}, "dispatch");
  f.local_get(0);   // argument
  f.local_get(1);   // table index
  f.call_indirect(sig);
  f.end();
  auto bytes = b.build();
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("dispatch", std::vector<Value>{Value::from_i32(10),
                                                        Value::from_i32(0)})
                .as_i32(),
            11);
  EXPECT_EQ(inst->invoke("dispatch", std::vector<Value>{Value::from_i32(10),
                                                        Value::from_i32(1)})
                .as_i32(),
            20);
}

TEST_P(RuntimeCoreTest, SelectAndDrop) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.i32_const(111);  // dropped
    f.op(Op::kDrop);
    f.i32_const(7);
    f.i32_const(9);
    f.local_get(0);
    f.op(Op::kSelect);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(1)}).as_i32(), 7);
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(0)}).as_i32(), 9);
}

TEST_P(RuntimeCoreTest, HostFunctionImport) {
  ModuleBuilder b;
  u32 host = b.import_func("env", "triple", {{I32}, {I32}});
  auto& f = b.begin_func({{I32}, {I32}}, "run");
  f.local_get(0);
  f.call(host);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.end();
  auto bytes = b.build();

  rt::ImportTable imports;
  imports.add("env", "triple", {{I32}, {I32}},
              [](rt::HostContext&, const rt::Slot* args, rt::Slot* result) {
                result->i32v = args[0].i32v * 3;
              });
  auto inst = instantiate(bytes, GetParam(), imports);
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(5)}).as_i32(), 16);
}

TEST_P(RuntimeCoreTest, DataSegmentsInitializeMemory) {
  ModuleBuilder b;
  b.add_memory(1);
  b.export_memory();
  b.add_data_string(32, "HPC!");
  auto& f = b.begin_func({{}, {I32}}, "run");
  f.i32_const(32);
  f.mem_op(Op::kI32Load, 0);
  f.end();
  auto bytes = b.build();
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run").as_u32(), 0x21435048u);  // "HPC!" LE
}

TEST_P(RuntimeCoreTest, SimdF64x2Arithmetic) {
  auto bytes = build_single_func({{F64, F64}, {F64}}, [](auto& f) {
    f.local_get(0);
    f.op(Op::kF64x2Splat);
    f.local_get(1);
    f.op(Op::kF64x2Splat);
    f.op(Op::kF64x2Mul);
    f.local_get(0);
    f.op(Op::kF64x2Splat);
    f.op(Op::kF64x2Add);
    f.lane_op(Op::kF64x2ExtractLane, 1);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  Value r = inst->invoke("run", std::vector<Value>{Value::from_f64(3.0),
                                                   Value::from_f64(4.0)});
  EXPECT_DOUBLE_EQ(r.as_f64(), 15.0);  // 3*4 + 3
}

TEST_P(RuntimeCoreTest, SimdI32x4AndBitops) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.local_get(0);
    f.op(Op::kI32x4Splat);
    f.local_get(0);
    f.op(Op::kI32x4Splat);
    f.op(Op::kI32x4Add);       // 2x
    f.local_get(0);
    f.op(Op::kI32x4Splat);
    f.op(Op::kI32x4Mul);       // 2x^2
    f.lane_op(Op::kI32x4ExtractLane, 2);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(6)}).as_i32(), 72);
}

TEST_P(RuntimeCoreTest, SimdMemoryRoundTrip) {
  auto bytes = build_single_func({{}, {I64}}, [](auto& f) {
    wasm::V128 k{};
    k.set_lane<u64, 2>(0, 0xDEADBEEFull);
    k.set_lane<u64, 2>(1, 0xC0FFEEull);
    f.i32_const(256);
    f.v128_const(k);
    f.mem_op(Op::kV128Store);
    f.i32_const(256);
    f.mem_op(Op::kV128Load);
    f.lane_op(Op::kI64x2ExtractLane, 0);
    f.i32_const(256);
    f.mem_op(Op::kV128Load);
    f.lane_op(Op::kI64x2ExtractLane, 1);
    f.op(Op::kI64Add);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run").as_i64(), i64(0xDEADBEEFull + 0xC0FFEEull));
}

TEST_P(RuntimeCoreTest, ConversionRoundTrips) {
  auto bytes = build_single_func({{F64}, {F64}}, [](auto& f) {
    f.local_get(0);
    f.op(Op::kI64TruncF64S);
    f.op(Op::kF64ConvertI64S);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_DOUBLE_EQ(
      inst->invoke("run", std::vector<Value>{Value::from_f64(1234.75)}).as_f64(),
      1234.0);
}

TEST_P(RuntimeCoreTest, WhileLoopHelper) {
  // Collatz step count for n=27 is 111.
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    u32 n = 0;
    u32 steps = f.add_local(I32);
    f.while_i32(
        [&] {
          f.local_get(n);
          f.i32_const(1);
          f.op(Op::kI32GtS);
        },
        [&] {
          f.local_get(n);
          f.i32_const(1);
          f.op(Op::kI32And);
          f.if_();
          f.local_get(n);
          f.i32_const(3);
          f.op(Op::kI32Mul);
          f.i32_const(1);
          f.op(Op::kI32Add);
          f.local_set(n);
          f.else_();
          f.local_get(n);
          f.i32_const(1);
          f.op(Op::kI32ShrU);
          f.local_set(n);
          f.end();
          f.local_get(steps);
          f.i32_const(1);
          f.op(Op::kI32Add);
          f.local_set(steps);
        });
    f.local_get(steps);
    f.end();
  });
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(27)}).as_i32(), 111);
}

TEST_P(RuntimeCoreTest, StartFunctionRunsAtInstantiation) {
  ModuleBuilder b;
  b.add_memory(1);
  u32 g = b.add_global(I32, true, 0);
  auto& init = b.begin_func({{}, {}}, "");
  init.i32_const(77);
  init.global_set(g);
  init.end();
  b.set_start(init.index());
  auto& f = b.begin_func({{}, {I32}}, "read");
  f.global_get(g);
  f.end();
  auto bytes = b.build();
  auto inst = instantiate(bytes, GetParam());
  EXPECT_EQ(inst->invoke("read").as_i32(), 77);
}

}  // namespace
}  // namespace mpiwasm::test
