// Differential suite for the threads-proposal 0xFE atomic opcode space.
//
// One module exports a tiny wrapper per atomic opcode; every engine
// configuration (static tiers, optimizer ablation, tiered promotion
// schedules, jit on/off) must agree with a host-side std::atomic-style
// reference on result values and memory effects — including sub-word
// zero-extension and the untouched neighbouring bytes. On top of the
// single-threaded semantics: host-thread hammer tests for RMW atomicity,
// a cmpxchg retry-loop (ABA-shaped) counter, wait/notify handshakes
// including the FIFO no-wake-stealing regression, trap equivalence for
// unaligned / out-of-bounds atomics, and the validator's shared-memory
// and natural-alignment rejections.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "testlib.h"

namespace mpiwasm::test {
namespace {

using rt::Trap;
using rt::TrapKind;

// Operand kinds for the per-op wrappers. Each family of seven ops shares
// the width/result pattern {i32/4, i64/8, i32/1, i32/2, i64/1, i64/2,
// i64/4} in opcode order.
enum class Kind : u8 { kLoad, kStore, kAdd, kSub, kAnd, kOr, kXor, kXchg,
                       kCmpxchg };

struct OpCase {
  Op op;
  u32 bytes;   // access width
  bool wide;   // i64-typed operands/result
  Kind kind;
};

void push_family(std::vector<OpCase>& v, Op base, Kind kind) {
  static constexpr u32 kW[7] = {4, 8, 1, 2, 1, 2, 4};
  static constexpr bool kWide[7] = {false, true, false, false, true, true,
                                    true};
  for (u16 i = 0; i < 7; ++i)
    v.push_back({Op(u16(base) + i), kW[i], kWide[i], kind});
}

std::vector<OpCase> all_op_cases() {
  std::vector<OpCase> v;
  push_family(v, Op::kI32AtomicLoad, Kind::kLoad);
  push_family(v, Op::kI32AtomicStore, Kind::kStore);
  push_family(v, Op::kI32AtomicRmwAdd, Kind::kAdd);
  push_family(v, Op::kI32AtomicRmwSub, Kind::kSub);
  push_family(v, Op::kI32AtomicRmwAnd, Kind::kAnd);
  push_family(v, Op::kI32AtomicRmwOr, Kind::kOr);
  push_family(v, Op::kI32AtomicRmwXor, Kind::kXor);
  push_family(v, Op::kI32AtomicRmwXchg, Kind::kXchg);
  push_family(v, Op::kI32AtomicRmwCmpxchg, Kind::kCmpxchg);
  return v;
}

std::string op_export_name(Op op) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "op_%04x", unsigned(u16(op)));
  return buf;
}

/// Module with a shared memory and one exported wrapper per 0xFE op, plus
/// "cas_inc": a cmpxchg retry loop incrementing the i32 at its address
/// argument by one (the classic lock-free counter).
std::vector<u8> build_atomics_module() {
  ModuleBuilder b;
  b.add_memory(1, 1, /*has_max=*/true, /*shared=*/true);
  b.export_memory();
  for (const OpCase& c : all_op_cases()) {
    const ValType t = c.wide ? I64 : I32;
    switch (c.kind) {
      case Kind::kLoad: {
        auto& f = b.begin_func({{I32}, {t}}, op_export_name(c.op));
        f.local_get(0);
        f.mem_op(c.op);
        f.end();
        break;
      }
      case Kind::kStore: {
        auto& f = b.begin_func({{I32, t}, {}}, op_export_name(c.op));
        f.local_get(0);
        f.local_get(1);
        f.mem_op(c.op);
        f.end();
        break;
      }
      case Kind::kCmpxchg: {
        auto& f = b.begin_func({{I32, t, t}, {t}}, op_export_name(c.op));
        f.local_get(0);
        f.local_get(1);
        f.local_get(2);
        f.mem_op(c.op);
        f.end();
        break;
      }
      default: {  // two-operand RMW
        auto& f = b.begin_func({{I32, t}, {t}}, op_export_name(c.op));
        f.local_get(0);
        f.local_get(1);
        f.mem_op(c.op);
        f.end();
        break;
      }
    }
  }
  {
    auto& f = b.begin_func({{I32, I32}, {I32}},
                           op_export_name(Op::kMemoryAtomicNotify));
    f.local_get(0);
    f.local_get(1);
    f.mem_op(Op::kMemoryAtomicNotify);
    f.end();
  }
  {
    auto& f = b.begin_func({{I32, I32, I64}, {I32}},
                           op_export_name(Op::kMemoryAtomicWait32));
    f.local_get(0);
    f.local_get(1);
    f.local_get(2);
    f.mem_op(Op::kMemoryAtomicWait32);
    f.end();
  }
  {
    auto& f = b.begin_func({{I32, I64, I64}, {I32}},
                           op_export_name(Op::kMemoryAtomicWait64));
    f.local_get(0);
    f.local_get(1);
    f.local_get(2);
    f.mem_op(Op::kMemoryAtomicWait64);
    f.end();
  }
  {
    auto& f = b.begin_func({{}, {}}, op_export_name(Op::kAtomicFence));
    f.op(Op::kAtomicFence);
    f.end();
  }
  {
    auto& f = b.begin_func({{I32}, {}}, "cas_inc");
    u32 old = f.add_local(I32);
    f.loop();
    f.local_get(0);
    f.mem_op(Op::kI32AtomicLoad);
    f.local_set(old);
    f.local_get(0);
    f.local_get(old);
    f.local_get(old);
    f.i32_const(1);
    f.op(Op::kI32Add);
    f.mem_op(Op::kI32AtomicRmwCmpxchg);
    f.local_get(old);
    f.op(Op::kI32Ne);
    f.br_if(0);
    f.end();   // loop
    f.end();   // function
  }
  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  EXPECT_TRUE(decoded.ok()) << decoded.error;
  if (decoded.ok()) {
    auto vr = wasm::validate_module(*decoded.module);
    EXPECT_TRUE(vr.ok) << vr.error;
  }
  return bytes;
}

u64 width_mask(u32 bytes) {
  return bytes == 8 ? ~u64(0) : (u64(1) << (bytes * 8)) - 1;
}

u64 apply_rmw(Kind k, u64 a, u64 b, u64 m) {
  switch (k) {
    case Kind::kAdd: return (a + b) & m;
    case Kind::kSub: return (a - b) & m;
    case Kind::kAnd: return a & b & m;
    case Kind::kOr: return (a | b) & m;
    case Kind::kXor: return (a ^ b) & m;
    case Kind::kXchg: return b & m;
    default: return 0;
  }
}

Value val(bool wide, u64 v) {
  return wide ? Value::from_i64(i64(v)) : Value::from_i32(i32(u32(v)));
}

u64 ret_of(bool wide, const Value& v) {
  return wide ? u64(v.as_i64()) : u64(u32(v.as_i32()));
}

class AtomicsCfgTest : public ::testing::TestWithParam<EngineConfig> {
 protected:
  void SetUp() override {
    if (!rt::threads_enabled_from_env())
      GTEST_SKIP() << "MPIWASM_THREADS=0";
  }
};

INSTANTIATE_TEST_SUITE_P(AllConfigs, AtomicsCfgTest,
                         ::testing::ValuesIn(all_engine_configs()),
                         [](const auto& info) {
                           std::string s = config_label(info.param);
                           for (char& c : s)
                             if (!isalnum(u8(c))) c = '_';
                           return s;
                         });

constexpr u64 kPatA = 0xF1E2D3C4B5A69788ull;
constexpr u64 kPatB = 0x1122334455667788ull;
constexpr u32 kAddr = 16;

TEST_P(AtomicsCfgTest, EveryOpMatchesHostReference) {
  auto bytes = build_atomics_module();
  auto inst = instantiate_cfg(bytes, GetParam());
  for (const OpCase& c : all_op_cases()) {
    SCOPED_TRACE(op_export_name(c.op));
    const u64 m = width_mask(c.bytes);
    auto& mem = inst->memory();
    mem.store<u64>(kAddr, kPatA);
    const u64 old = kPatA & m;
    const u64 untouched = kPatA & ~m;
    switch (c.kind) {
      case Kind::kLoad: {
        Value a = Value::from_i32(i32(kAddr));
        EXPECT_EQ(ret_of(c.wide, inst->invoke(op_export_name(c.op), {&a, 1})),
                  old);
        break;
      }
      case Kind::kStore: {
        Value args[2] = {Value::from_i32(i32(kAddr)), val(c.wide, kPatB)};
        inst->invoke(op_export_name(c.op), {args, 2});
        EXPECT_EQ(mem.load<u64>(kAddr), untouched | (kPatB & m));
        break;
      }
      case Kind::kCmpxchg: {
        // Matching expected: swaps, returns the old value.
        Value hit[3] = {Value::from_i32(i32(kAddr)), val(c.wide, old),
                        val(c.wide, kPatB)};
        EXPECT_EQ(ret_of(c.wide, inst->invoke(op_export_name(c.op), {hit, 3})),
                  old);
        EXPECT_EQ(mem.load<u64>(kAddr), untouched | (kPatB & m));
        // Mismatching expected: memory unchanged, still returns the value.
        mem.store<u64>(kAddr, kPatA);
        Value miss[3] = {Value::from_i32(i32(kAddr)),
                         val(c.wide, (old ^ 1) & m), val(c.wide, kPatB)};
        EXPECT_EQ(
            ret_of(c.wide, inst->invoke(op_export_name(c.op), {miss, 3})),
            old);
        EXPECT_EQ(mem.load<u64>(kAddr), kPatA);
        break;
      }
      default: {
        Value args[2] = {Value::from_i32(i32(kAddr)), val(c.wide, kPatB)};
        EXPECT_EQ(
            ret_of(c.wide, inst->invoke(op_export_name(c.op), {args, 2})),
            old)
            << "rmw must return the pre-op (zero-extended) value";
        EXPECT_EQ(mem.load<u64>(kAddr),
                  untouched | apply_rmw(c.kind, old, kPatB & m, m));
        break;
      }
    }
  }
}

TEST_P(AtomicsCfgTest, WaitNotifyFenceSingleThread) {
  auto inst = instantiate_cfg(build_atomics_module(), GetParam());
  inst->invoke(op_export_name(Op::kAtomicFence));
  inst->memory().store<u32>(32, 7);
  inst->memory().store<u64>(40, 9);
  // notify with no waiters wakes nobody.
  {
    Value a[2] = {Value::from_i32(32), Value::from_i32(5)};
    EXPECT_EQ(
        inst->invoke(op_export_name(Op::kMemoryAtomicNotify), {a, 2}).as_i32(),
        0);
  }
  // wait with a stale expected value returns 1 ("not-equal") immediately.
  {
    Value a[3] = {Value::from_i32(32), Value::from_i32(8),
                  Value::from_i64(-1)};
    EXPECT_EQ(
        inst->invoke(op_export_name(Op::kMemoryAtomicWait32), {a, 3}).as_i32(),
        1);
  }
  {
    Value a[3] = {Value::from_i32(40), Value::from_i64(10),
                  Value::from_i64(-1)};
    EXPECT_EQ(
        inst->invoke(op_export_name(Op::kMemoryAtomicWait64), {a, 3}).as_i32(),
        1);
  }
  // wait on the current value with a 1ms budget returns 2 ("timed-out").
  {
    Value a[3] = {Value::from_i32(32), Value::from_i32(7),
                  Value::from_i64(1'000'000)};
    EXPECT_EQ(
        inst->invoke(op_export_name(Op::kMemoryAtomicWait32), {a, 3}).as_i32(),
        2);
  }
  {
    Value a[3] = {Value::from_i32(40), Value::from_i64(9),
                  Value::from_i64(1'000'000)};
    EXPECT_EQ(
        inst->invoke(op_export_name(Op::kMemoryAtomicWait64), {a, 3}).as_i32(),
        2);
  }
}

template <typename Fn>
TrapKind expect_trap(Fn&& fn) {
  try {
    fn();
  } catch (const Trap& t) {
    return t.kind();
  }
  ADD_FAILURE() << "expected a trap";
  return TrapKind::kHostError;
}

TEST_P(AtomicsCfgTest, UnalignedAndOutOfBoundsTrapsAgree) {
  auto inst = instantiate_cfg(build_atomics_module(), GetParam());
  auto call1 = [&](Op op, u32 addr) {
    Value a = Value::from_i32(i32(addr));
    inst->invoke(op_export_name(op), {&a, 1});
  };
  auto call2 = [&](Op op, u32 addr, bool wide) {
    Value a[2] = {Value::from_i32(i32(addr)), val(wide, 1)};
    inst->invoke(op_export_name(op), {a, 2});
  };
  // Atomics trap on any non-naturally-aligned address — even in-bounds.
  EXPECT_EQ(expect_trap([&] { call1(Op::kI32AtomicLoad, 2); }),
            TrapKind::kUnalignedAtomic);
  EXPECT_EQ(expect_trap([&] { call1(Op::kI64AtomicLoad, 12); }),
            TrapKind::kUnalignedAtomic);
  EXPECT_EQ(expect_trap([&] { call2(Op::kI32AtomicRmwAdd, 6, false); }),
            TrapKind::kUnalignedAtomic);
  EXPECT_EQ(expect_trap([&] { call2(Op::kI64AtomicStore, 4, true); }),
            TrapKind::kUnalignedAtomic);
  {
    Value a[3] = {Value::from_i32(2), Value::from_i32(0), Value::from_i64(0)};
    EXPECT_EQ(expect_trap([&] {
                inst->invoke(op_export_name(Op::kMemoryAtomicWait32), {a, 3});
              }),
              TrapKind::kUnalignedAtomic);
  }
  // Aligned but out of the one-page memory.
  EXPECT_EQ(expect_trap([&] { call1(Op::kI32AtomicLoad, 65536); }),
            TrapKind::kMemoryOutOfBounds);
  EXPECT_EQ(expect_trap([&] { call2(Op::kI64AtomicRmwXchg, 65536, true); }),
            TrapKind::kMemoryOutOfBounds);
  EXPECT_EQ(expect_trap([&] { call1(Op::kI32AtomicLoad, 65534); }),
            TrapKind::kMemoryOutOfBounds)
      << "4-byte access straddling the memory end";
}

// ---------------------------------------------------------------------------
// Host-thread concurrency. The interp and jit tiers bracket the dispatch
// space; the differential sweep above covers the middle tiers.
// ---------------------------------------------------------------------------

std::vector<EngineConfig> hammer_configs() {
  EngineConfig interp;
  interp.tier = EngineTier::kInterp;
  EngineConfig jit;
  jit.tier = EngineTier::kJit;
  return {interp, jit};
}

class AtomicsHammerTest : public ::testing::TestWithParam<EngineConfig> {
 protected:
  void SetUp() override {
    if (!rt::threads_enabled_from_env())
      GTEST_SKIP() << "MPIWASM_THREADS=0";
  }
};

INSTANTIATE_TEST_SUITE_P(InterpAndJit, AtomicsHammerTest,
                         ::testing::ValuesIn(hammer_configs()),
                         [](const auto& info) {
                           return std::string(rt::tier_name(info.param.tier));
                         });

TEST_P(AtomicsHammerTest, RmwAddIsAtomicAcrossHostThreads) {
  auto inst = instantiate_cfg(build_atomics_module(), GetParam());
  constexpr int kThreads = 4, kIters = 500;
  const std::string add32 = op_export_name(Op::kI32AtomicRmwAdd);
  const std::string add64 = op_export_name(Op::kI64AtomicRmwAdd);
  const std::string add8 = op_export_name(Op::kI32AtomicRmw8AddU);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Value a32[2] = {Value::from_i32(16), Value::from_i32(1)};
        inst->invoke(add32, {a32, 2});
        Value a64[2] = {Value::from_i32(24), Value::from_i64(3)};
        inst->invoke(add64, {a64, 2});
        Value a8[2] = {Value::from_i32(33), Value::from_i32(1)};
        inst->invoke(add8, {a8, 2});
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(inst->memory().load<u32>(16), u32(kThreads * kIters));
  EXPECT_EQ(inst->memory().load<u64>(24), u64(kThreads * kIters) * 3);
  // The 8-bit op wraps modulo 256 and must not spill into neighbours.
  EXPECT_EQ(inst->memory().load<u8>(33), u8(kThreads * kIters));
  EXPECT_EQ(inst->memory().load<u8>(32), 0u);
  EXPECT_EQ(inst->memory().load<u8>(34), 0u);
}

TEST_P(AtomicsHammerTest, CmpxchgRetryLoopCountsExactly) {
  auto inst = instantiate_cfg(build_atomics_module(), GetParam());
  constexpr int kThreads = 4, kIters = 300;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Value a = Value::from_i32(48);
        inst->invoke("cas_inc", {&a, 1});
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(inst->memory().load<u32>(48), u32(kThreads * kIters));
}

TEST_P(AtomicsHammerTest, WaitNotifyHandshake) {
  auto inst = instantiate_cfg(build_atomics_module(), GetParam());
  const std::string wait32 = op_export_name(Op::kMemoryAtomicWait32);
  const std::string notify = op_export_name(Op::kMemoryAtomicNotify);
  std::atomic<int> waiter_ret{-1};
  std::thread waiter([&] {
    Value a[3] = {Value::from_i32(56), Value::from_i32(0),
                  Value::from_i64(-1)};
    waiter_ret.store(inst->invoke(wait32, {a, 3}).as_i32());
  });
  // Poke until the parked waiter is actually woken.
  int woken = 0;
  while (woken == 0) {
    Value a[2] = {Value::from_i32(56), Value::from_i32(1)};
    woken = inst->invoke(notify, {a, 2}).as_i32();
    if (woken == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  waiter.join();
  EXPECT_EQ(woken, 1);
  EXPECT_EQ(waiter_ret.load(), 0);
}

// Regression for the wake-stealing bug: wake tokens used to live in a
// per-address pool, so a woken thread that immediately re-parked on the
// same address could consume a token minted for a still-sleeping peer
// (exactly what a worker-pool epoch barrier does every phase). Wakes are
// now handed to specific FIFO-queued waiters.
TEST_P(AtomicsHammerTest, ReparkingWaiterCannotStealPeersWake) {
  auto inst = instantiate_cfg(build_atomics_module(), GetParam());
  const std::string wait32 = op_export_name(Op::kMemoryAtomicWait32);
  const std::string notify = op_export_name(Op::kMemoryAtomicNotify);
  std::atomic<int> first_ret{-1}, repark_ret{-1}, peer_ret{-1};
  std::thread reparker([&] {
    Value a[3] = {Value::from_i32(64), Value::from_i32(0),
                  Value::from_i64(-1)};
    first_ret.store(inst->invoke(wait32, {a, 3}).as_i32());
    // Immediately park again: under the token model this consumed the
    // peer's wake; with FIFO delivery it can only time out.
    Value b[3] = {Value::from_i32(64), Value::from_i32(0),
                  Value::from_i64(300'000'000)};
    repark_ret.store(inst->invoke(wait32, {b, 3}).as_i32());
  });
  std::thread peer([&] {
    Value a[3] = {Value::from_i32(64), Value::from_i32(0),
                  Value::from_i64(5'000'000'000)};
    peer_ret.store(inst->invoke(wait32, {a, 3}).as_i32());
  });
  // Give both threads time to park, then mint exactly two wakes. If they
  // raced past the sleep, top up until two waiters have been woken.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  int woken = 0;
  while (woken < 2) {
    Value a[2] = {Value::from_i32(64), Value::from_i32(2)};
    woken += inst->invoke(notify, {a, 2}).as_i32();
    if (woken < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reparker.join();
  peer.join();
  EXPECT_EQ(first_ret.load(), 0);
  EXPECT_EQ(peer_ret.load(), 0) << "peer's wake was stolen by the re-parker";
  EXPECT_EQ(repark_ret.load(), 2) << "re-park must time out, not steal";
}

TEST_P(AtomicsHammerTest, NotifyOneWakesExactlyOneOfTwo) {
  auto inst = instantiate_cfg(build_atomics_module(), GetParam());
  const std::string wait32 = op_export_name(Op::kMemoryAtomicWait32);
  const std::string notify = op_export_name(Op::kMemoryAtomicNotify);
  std::atomic<int> r1{-1}, r2{-1};
  auto waiter = [&](std::atomic<int>& out) {
    Value a[3] = {Value::from_i32(72), Value::from_i32(0),
                  Value::from_i64(400'000'000)};
    out.store(inst->invoke(wait32, {a, 3}).as_i32());
  };
  std::thread t1(waiter, std::ref(r1)), t2(waiter, std::ref(r2));
  int woken = 0;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(300);
  while (woken == 0 && std::chrono::steady_clock::now() < deadline) {
    Value a[2] = {Value::from_i32(72), Value::from_i32(1)};
    woken = inst->invoke(notify, {a, 2}).as_i32();
    if (woken == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  t1.join();
  t2.join();
  EXPECT_EQ(woken, 1);
  // Exactly one waiter saw the wake; the other timed out.
  EXPECT_EQ(std::min(r1.load(), r2.load()), 0);
  EXPECT_EQ(std::max(r1.load(), r2.load()), 2);
}

// ---------------------------------------------------------------------------
// Validator and engine policy.
// ---------------------------------------------------------------------------

std::string validate_error(ModuleBuilder& b) {
  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  if (!decoded.ok()) return decoded.error;
  auto vr = wasm::validate_module(*decoded.module);
  return vr.ok ? "" : vr.error;
}

TEST(AtomicsValidation, AtomicOpNeedsSharedMemory) {
  ModuleBuilder b;
  b.add_memory(1);  // unshared
  auto& f = b.begin_func({{I32}, {I32}}, "run");
  f.local_get(0);
  f.mem_op(Op::kI32AtomicLoad);
  f.end();
  EXPECT_NE(validate_error(b).find("atomic operation requires a shared"),
            std::string::npos);
}

TEST(AtomicsValidation, AtomicAlignmentMustBeNatural) {
  ModuleBuilder b;
  b.add_memory(1, 1, true, true);
  auto& f = b.begin_func({{I32}, {I32}}, "run");
  f.local_get(0);
  f.mem_op(Op::kI32AtomicLoad, 0, /*align_log2=*/0);  // natural is 2
  f.end();
  EXPECT_NE(
      validate_error(b).find("atomic alignment must equal natural alignment"),
      std::string::npos);
}

TEST(AtomicsValidation, SharedMemoryRequiresMax) {
  // The builder refuses to emit this shape, so exercise both layers
  // directly: the decoder on raw bytes (limits flag 0x02 = shared, no
  // max), and the validator on a hand-built module.
  const u8 raw[] = {0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00,
                    0x05, 0x03, 0x01, 0x02, 0x01};
  auto decoded = wasm::decode_module({raw, sizeof raw});
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error.find("shared limits require a max"),
            std::string::npos)
      << decoded.error;

  wasm::Module m;
  wasm::Limits lim;
  lim.min = 1;
  lim.has_max = false;
  lim.shared = true;
  m.memories.push_back(lim);
  auto vr = wasm::validate_module(m);
  ASSERT_FALSE(vr.ok);
  EXPECT_NE(vr.error.find("shared memory requires a max"), std::string::npos)
      << vr.error;
}

TEST(AtomicsValidation, EngineRejectsSharedMemoryWhenThreadsOff) {
  ModuleBuilder b;
  b.add_memory(1, 1, true, true);
  auto& f = b.begin_func({{}, {I32}}, "run");
  f.i32_const(1);
  f.end();
  std::vector<u8> bytes = b.build();
  EngineConfig cfg;
  cfg.tier = EngineTier::kInterp;
  cfg.threads = false;
  std::string msg;
  try {
    rt::compile({bytes.data(), bytes.size()}, cfg);
  } catch (const std::exception& e) {
    msg = e.what();
  }
  EXPECT_NE(msg.find("threads support is disabled"), std::string::npos);
}

}  // namespace
}  // namespace mpiwasm::test
