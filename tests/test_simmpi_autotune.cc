// Online collective autotuner (coll_tune.h).
//
// The unit tests drive the Autotuner with injected fake timings, so the
// expected winner is machine-independent: exploration must rotate through
// the candidate list as a pure function of the call index (the property
// rank consistency hangs on), the lock must pick the EWMA argmin, the
// fallback must win when nothing was measured, and the persisted table must
// round-trip — but only onto a host with the same signature. The World
// tests check the wiring: convergence to a locked winner during a real run,
// the MPIWASM_COLL_AUTOTUNE=0 ablation, and warm starts from a saved table.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "simmpi/coll_algos.h"
#include "simmpi/coll_tune.h"
#include "simmpi/world.h"

namespace mpiwasm::simmpi {
namespace {

using coll::Autotuner;
using coll::CollOp;

const CollAlgo kCands[] = {CollAlgo::kLinear, CollAlgo::kBinomial,
                           CollAlgo::kRing};

std::string temp_table_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("mpiwasm-tune-test-") + tag + ".table"))
      .string();
}

TEST(Autotune, ExplorationRotatesByCallIndexOnly) {
  Autotuner t("sig");
  const u64 key = Autotuner::key(CollOp::kAllreduce, 4, 1024);
  const u64 n = std::size(kCands);
  for (u64 idx = 0; idx < u64(Autotuner::kExploreRounds) * n; ++idx) {
    bool exploring = false;
    CollAlgo a = t.choose(key, idx, kCands, CollAlgo::kLinear, &exploring);
    EXPECT_TRUE(exploring) << "idx=" << idx;
    EXPECT_EQ(a, kCands[idx % n]) << "idx=" << idx;
    // Recording a timing mid-exploration must not perturb the rotation.
    t.record(key, a, 10.0 + f64(idx));
  }
}

TEST(Autotune, LocksEwmaArgminAfterExploration) {
  Autotuner t("sig");
  const u64 key = Autotuner::key(CollOp::kBcast, 8, 4096);
  t.record(key, CollAlgo::kLinear, 90.0);
  t.record(key, CollAlgo::kBinomial, 5.0);  // injected cheapest
  t.record(key, CollAlgo::kRing, 50.0);
  bool exploring = true;
  const u64 after = u64(Autotuner::kExploreRounds) * std::size(kCands);
  CollAlgo a = t.choose(key, after, kCands, CollAlgo::kLinear, &exploring);
  EXPECT_FALSE(exploring);
  EXPECT_EQ(a, CollAlgo::kBinomial);
  EXPECT_EQ(t.winner(key), CollAlgo::kBinomial);
  EXPECT_TRUE(t.dirty());
  // Write-once: later (even cheaper) measurements cannot flip the lock.
  t.record(key, CollAlgo::kRing, 0.001);
  EXPECT_EQ(t.choose(key, after + 1, kCands, CollAlgo::kLinear, &exploring),
            CollAlgo::kBinomial);
}

TEST(Autotune, NarrowWinDoesNotDisplaceFallback) {
  // Per-call latency samples miss cross-call pipelining, so a candidate
  // must beat the static pick's EWMA by the kLockMargin hysteresis to
  // displace it; a narrow measured win locks the fallback instead.
  Autotuner t("sig");
  const u64 key = Autotuner::key(CollOp::kBcast, 8, 64);
  t.record(key, CollAlgo::kLinear, 10.0);
  t.record(key, CollAlgo::kBinomial, 10.0 * Autotuner::kLockMargin + 0.5);
  bool exploring = true;
  const u64 after = u64(Autotuner::kExploreRounds) * std::size(kCands);
  EXPECT_EQ(t.choose(key, after, kCands, CollAlgo::kLinear, &exploring),
            CollAlgo::kLinear);

  // A decisive win (below the margin) still flips the lock.
  Autotuner t2("sig");
  t2.record(key, CollAlgo::kLinear, 10.0);
  t2.record(key, CollAlgo::kBinomial, 10.0 * Autotuner::kLockMargin - 0.5);
  EXPECT_EQ(t2.choose(key, after, kCands, CollAlgo::kLinear, &exploring),
            CollAlgo::kBinomial);
}

TEST(Autotune, UnmeasuredFallbackIsNeverDisplaced) {
  // The shm fan-in is kept out of the measured candidate set (its internal
  // barrier serializes the calling loop, which per-call samples miss), so
  // when the static table picks it, the fallback has no EWMA. No amount of
  // measured-candidate evidence may displace a pick that was never tested.
  Autotuner t("sig");
  const u64 key = Autotuner::key(CollOp::kAllreduce, 8, 256);
  t.record(key, CollAlgo::kLinear, 0.001);  // spectacular, but irrelevant
  bool exploring = true;
  const u64 after = u64(Autotuner::kExploreRounds) * std::size(kCands);
  EXPECT_EQ(t.choose(key, after, kCands, CollAlgo::kShm, &exploring),
            CollAlgo::kShm);
  EXPECT_EQ(t.winner(key), CollAlgo::kShm);
}

TEST(Autotune, FallbackWinsWhenNothingMeasured) {
  // A purely nonblocking workload advances the call counter but never
  // records timings; the static table's pick must survive.
  Autotuner t("sig");
  const u64 key = Autotuner::key(CollOp::kScan, 4, 64);
  bool exploring = true;
  const u64 after = u64(Autotuner::kExploreRounds) * std::size(kCands);
  EXPECT_EQ(t.choose(key, after, kCands, CollAlgo::kRing, &exploring),
            CollAlgo::kRing);
  EXPECT_FALSE(exploring);
}

TEST(Autotune, EwmaSmoothesTowardsNewSamples) {
  Autotuner t("sig");
  const u64 key = Autotuner::key(CollOp::kReduce, 2, 32);
  t.record(key, CollAlgo::kLinear, 100.0);
  EXPECT_DOUBLE_EQ(t.ewma_us(key, CollAlgo::kLinear), 100.0);
  t.record(key, CollAlgo::kLinear, 0.0);
  EXPECT_DOUBLE_EQ(t.ewma_us(key, CollAlgo::kLinear),
                   100.0 - Autotuner::kAlpha * 100.0);
  EXPECT_LT(t.ewma_us(key, CollAlgo::kBinomial), 0.0);  // never recorded
}

TEST(Autotune, KeySeparatesOpSizeBinAndCommSize) {
  const u64 a = Autotuner::key(CollOp::kAllreduce, 4, 1024);
  EXPECT_EQ(a, Autotuner::key(CollOp::kAllreduce, 4, 2000));  // same pof2 bin
  EXPECT_NE(a, Autotuner::key(CollOp::kAllreduce, 4, 2048));
  EXPECT_NE(a, Autotuner::key(CollOp::kAllreduce, 8, 1024));
  EXPECT_NE(a, Autotuner::key(CollOp::kReduce, 4, 1024));
}

TEST(Autotune, PersistRoundTripAndSignatureMismatch) {
  const std::string path = temp_table_path("roundtrip");
  const u64 key = Autotuner::key(CollOp::kAllgather, 4, 8192);
  {
    Autotuner t("hw=4 profile=zero ranks=4");
    t.record(key, CollAlgo::kRing, 1.0);
    t.record(key, CollAlgo::kLinear, 99.0);
    bool exploring = false;
    t.choose(key, u64(Autotuner::kExploreRounds) * std::size(kCands), kCands,
             CollAlgo::kLinear, &exploring);
    ASSERT_EQ(t.winner(key), CollAlgo::kRing);
    ASSERT_TRUE(t.save(path));
  }
  {
    Autotuner t("hw=4 profile=zero ranks=4");
    ASSERT_TRUE(t.load(path));
    // Preloaded winners are immutable and apply from call 0.
    bool exploring = true;
    EXPECT_EQ(t.choose(key, 0, kCands, CollAlgo::kLinear, &exploring),
              CollAlgo::kRing);
    EXPECT_FALSE(exploring);
    EXPECT_FALSE(t.dirty());  // nothing new learned
  }
  {
    Autotuner t("hw=8 profile=zero ranks=4");  // different machine
    EXPECT_FALSE(t.load(path));
    EXPECT_EQ(t.winner(key), CollAlgo::kAuto);
  }
  {
    Autotuner t("hw=4 profile=zero ranks=4");
    EXPECT_FALSE(t.load(path + ".missing"));
  }
  std::remove(path.c_str());
}

TEST(Autotune, EnvVarDisablesAutotuning) {
  ASSERT_EQ(setenv("MPIWASM_COLL_AUTOTUNE", "0", 1), 0);
  CollTuning off = CollTuning::from_env();
  ASSERT_EQ(setenv("MPIWASM_COLL_AUTOTUNE", "1", 1), 0);
  CollTuning on = CollTuning::from_env();
  ASSERT_EQ(unsetenv("MPIWASM_COLL_AUTOTUNE"), 0);
  CollTuning dflt = CollTuning::from_env();
  EXPECT_FALSE(off.autotune);
  EXPECT_TRUE(on.autotune);
  EXPECT_TRUE(dflt.autotune);

  World world(2, NetworkProfile::zero(), off);
  EXPECT_EQ(world.tuner(), nullptr);
  world.run([](Rank& r) {  // still fully functional, statically selected
    i64 v = r.rank(), sum = -1;
    r.allreduce(&v, &sum, 1, Datatype::kLong, ReduceOp::kSum);
    ASSERT_EQ(sum, 1);
  });
}

TEST(Autotune, ExplicitAlgoOverrideBypassesTuner) {
  // MPIWASM_COLL_<NAME>-style forcing must win over the autotuner: the
  // forced op never advances past kAuto in the tuner's table.
  CollTuning t = coll::forced_tuning(CollOp::kAllreduce, CollAlgo::kRing);
  ASSERT_TRUE(t.autotune);
  World world(4, NetworkProfile::zero(), t);
  ASSERT_NE(world.tuner(), nullptr);
  world.run([](Rank& r) {
    std::vector<i64> v(256, r.rank()), out(256);
    for (int it = 0; it < 40; ++it)
      r.allreduce(v.data(), out.data(), 256, Datatype::kLong, ReduceOp::kSum);
  });
  const u64 key = Autotuner::key(CollOp::kAllreduce, 4, 256 * 8);
  EXPECT_EQ(world.tuner()->winner(key), CollAlgo::kAuto);
}

TEST(Autotune, WorldConvergesToLockedWinner) {
  CollTuning t;  // kAuto everywhere, autotune on, no persistence
  World world(4, NetworkProfile::zero(), t);
  ASSERT_NE(world.tuner(), nullptr);
  const int count = 512;
  const u64 key = Autotuner::key(CollOp::kAllreduce, 4, count * 8);
  // More calls than the exploration budget of any candidate list.
  world.run([&](Rank& r) {
    std::vector<i64> in(count), expect(count), out(count);
    for (int i = 0; i < count; ++i) in[size_t(i)] = (r.rank() + 1) * (i + 1);
    for (int i = 0; i < count; ++i)
      expect[size_t(i)] = 10 * (i + 1);  // sum of (rank+1) over 4 ranks
    for (int it = 0; it < 40; ++it) {
      r.allreduce(in.data(), out.data(), count, Datatype::kLong,
                  ReduceOp::kSum);
      ASSERT_EQ(out, expect) << "it=" << it;  // correct during exploration
    }
  });
  CollAlgo w = world.tuner()->winner(key);
  EXPECT_NE(w, CollAlgo::kAuto);  // converged
  bool found = false;
  for (CollAlgo a : coll::algos_for(CollOp::kAllreduce))
    found = found || a == w;
  EXPECT_TRUE(found) << "winner not in candidate list";
}

TEST(Autotune, WorldPersistsAndWarmStarts) {
  const std::string path = temp_table_path("world");
  std::remove(path.c_str());
  CollTuning t;
  t.autotune_file = path;
  const int count = 128;
  const u64 key = Autotuner::key(CollOp::kAllreduce, 4, count * 8);
  CollAlgo cold_winner;
  {
    World world(4, NetworkProfile::zero(), t);
    world.run([&](Rank& r) {
      std::vector<i64> v(count, 1), out(count);
      for (int it = 0; it < 40; ++it)
        r.allreduce(v.data(), out.data(), count, Datatype::kLong,
                    ReduceOp::kSum);
    });
    cold_winner = world.tuner()->winner(key);
    ASSERT_NE(cold_winner, CollAlgo::kAuto);
  }  // dtor saves the table
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    World world(4, NetworkProfile::zero(), t);
    // Warm start: the winner is preloaded before any collective ran.
    EXPECT_EQ(world.tuner()->winner(key), cold_winner);
    world.run([&](Rank& r) {
      std::vector<i64> v(count, 1), out(count);
      r.allreduce(v.data(), out.data(), count, Datatype::kLong,
                  ReduceOp::kSum);
      ASSERT_EQ(out[0], 4);
    });
    EXPECT_EQ(world.tuner()->winner(key), cold_winner);
  }
  {
    // A different rank layout gets a different signature: the stale table
    // must be ignored, not misapplied.
    World world(2, NetworkProfile::zero(), t);
    EXPECT_EQ(world.tuner()->winner(key), CollAlgo::kAuto);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpiwasm::simmpi
