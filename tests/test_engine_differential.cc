// Differential property tests: for a corpus of generated programs and
// pseudo-random inputs, all three execution tiers must agree bit-exactly.
// This is the core correctness argument for the compiled tiers — any
// lowering or optimization bug shows up as a tier divergence.
#include "testlib.h"

namespace mpiwasm::test {
namespace {

struct Program {
  std::string name;
  std::vector<u8> bytes;
  std::vector<std::vector<Value>> inputs;
};

Program make_arith_mix() {
  // Mixes i32/i64 arithmetic, shifts, rotates, comparisons.
  Program p;
  p.name = "arith_mix";
  p.bytes = build_single_func({{I32, I32}, {I64}}, [](auto& f) {
    u32 a = 0, b = 1;
    f.local_get(a);
    f.local_get(b);
    f.op(Op::kI32Rotl);
    f.local_get(a);
    f.local_get(b);
    f.op(Op::kI32Xor);
    f.op(Op::kI32Sub);
    f.op(Op::kI64ExtendI32S);
    f.local_get(a);
    f.op(Op::kI64ExtendI32U);
    f.i64_const(2654435761);
    f.op(Op::kI64Mul);
    f.op(Op::kI64Add);
    f.local_get(b);
    f.op(Op::kI64ExtendI32S);
    f.i64_const(13);
    f.op(Op::kI64Rotr);
    f.op(Op::kI64Xor);
    f.end();
  });
  for (i32 x : {0, 1, -1, 12345, -98765, INT32_MAX, INT32_MIN})
    for (i32 y : {0, 3, 31, 33, -7})
      p.inputs.push_back({Value::from_i32(x), Value::from_i32(y)});
  return p;
}

Program make_float_kernel() {
  // A float-heavy kernel with min/max/copysign/nearest edge semantics.
  Program p;
  p.name = "float_kernel";
  p.bytes = build_single_func({{F64, F64}, {F64}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kF64Min);
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kF64Max);
    f.op(Op::kF64Mul);
    f.local_get(0);
    f.op(Op::kF64Nearest);
    f.op(Op::kF64Add);
    f.local_get(1);
    f.op(Op::kF64Copysign);
    f.end();
  });
  for (f64 x : {0.0, -0.0, 1.5, -2.5, 1e300, -3.7})
    for (f64 y : {0.5, -0.5, 2.5, 1e-300})
      p.inputs.push_back({Value::from_f64(x), Value::from_f64(y)});
  return p;
}

Program make_loop_memory() {
  // Writes a[i] = i*i for i in 0..n, then sums with stride 3.
  Program p;
  p.name = "loop_memory";
  p.bytes = build_single_func({{I32}, {I64}}, [](auto& f) {
    u32 n = 0;
    u32 i = f.add_local(I32);
    u32 acc = f.add_local(I64);
    f.for_loop_i32(i, 0, n, 1, [&] {
      f.local_get(i);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.local_get(i);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kI32Store);
    });
    f.for_loop_i32(i, 0, n, 3, [&] {
      f.local_get(acc);
      f.local_get(i);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kI32Load);
      f.op(Op::kI64ExtendI32U);
      f.op(Op::kI64Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.end();
  });
  for (i32 n : {0, 1, 2, 17, 100, 1000})
    p.inputs.push_back({Value::from_i32(n)});
  return p;
}

Program make_branchy() {
  // Dense control flow: br_table + nested ifs + early returns.
  Program p;
  p.name = "branchy";
  p.bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    u32 out = f.add_local(I32);
    f.block();
    f.block();
    f.block();
    f.block();
    f.local_get(0);
    f.i32_const(4);
    f.op(Op::kI32RemU);
    f.br_table({0, 1, 2}, 3);
    f.end();
    f.local_get(1);
    f.i32_const(10);
    f.op(Op::kI32Add);
    f.local_set(out);
    f.br(2);
    f.end();
    f.local_get(1);
    f.i32_const(3);
    f.op(Op::kI32GtS);
    f.if_();
    f.i32_const(777);
    f.ret();
    f.end();
    f.i32_const(20);
    f.local_set(out);
    f.br(1);
    f.end();
    f.local_get(1);
    f.i32_const(0);
    f.op(Op::kI32Sub);
    f.local_set(out);
    f.br(0);
    f.end();
    f.local_get(out);
    f.i32_const(0);
    f.op(Op::kI32Eq);
    f.if_();
    f.i32_const(-1);
    f.local_set(out);
    f.end();
    f.local_get(out);
    f.end();
  });
  for (i32 x : {0, 1, 2, 3, 4, 5, 6, 7})
    for (i32 y : {0, 2, 4, 9, -3})
      p.inputs.push_back({Value::from_i32(x), Value::from_i32(y)});
  return p;
}

Program make_simd_dot() {
  // v128 dot-product-ish kernel over memory.
  Program p;
  p.name = "simd_dot";
  p.bytes = build_single_func({{I32}, {F64}}, [](auto& f) {
    u32 n = 0;
    u32 i = f.add_local(I32);
    u32 acc = f.add_local(V128T);
    // init: a[i] = i + 0.5 ; b[i] = 2i at bytes 0.. and 32768..
    f.for_loop_i32(i, 0, n, 1, [&] {
      f.local_get(i);
      f.i32_const(8);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.op(Op::kF64ConvertI32S);
      f.f64_const(0.5);
      f.op(Op::kF64Add);
      f.mem_op(Op::kF64Store);
      f.local_get(i);
      f.i32_const(8);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.i32_const(2);
      f.op(Op::kI32Mul);
      f.op(Op::kF64ConvertI32S);
      f.mem_op(Op::kF64Store, 32768);
    });
    // acc (f64x2) += a[i..i+2) * b[i..i+2), i += 2
    f.for_loop_i32(i, 0, n, 2, [&] {
      f.local_get(acc);
      f.local_get(i);
      f.i32_const(8);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kV128Load);
      f.local_get(i);
      f.i32_const(8);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kV128Load, 32768);
      f.op(Op::kF64x2Mul);
      f.op(Op::kF64x2Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.lane_op(Op::kF64x2ExtractLane, 0);
    f.local_get(acc);
    f.lane_op(Op::kF64x2ExtractLane, 1);
    f.op(Op::kF64Add);
    f.end();
  });
  for (i32 n : {0, 2, 8, 64, 256})
    p.inputs.push_back({Value::from_i32(n)});
  return p;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

std::vector<Program>& corpus() {
  static std::vector<Program> c = {make_arith_mix(), make_float_kernel(),
                                   make_loop_memory(), make_branchy(),
                                   make_simd_dot()};
  return c;
}

INSTANTIATE_TEST_SUITE_P(Corpus, DifferentialTest,
                         ::testing::Range(0, 5), [](const auto& info) {
                           return corpus()[info.param].name;
                         });

TEST_P(DifferentialTest, AllTiersAgreeBitExactly) {
  const Program& p = corpus()[GetParam()];
  std::vector<std::shared_ptr<rt::Instance>> instances;
  for (EngineTier tier : all_tiers())
    instances.push_back(instantiate(p.bytes, tier));
  for (size_t k = 0; k < p.inputs.size(); ++k) {
    std::vector<u64> results;
    for (auto& inst : instances) {
      Value v = inst->invoke("run", p.inputs[k]);
      results.push_back(v.slot.u64v);
    }
    for (size_t t = 1; t < results.size(); ++t) {
      EXPECT_EQ(results[0], results[t])
          << p.name << " input#" << k << ": interp vs "
          << rt::tier_name(all_tiers()[t]);
    }
  }
}

TEST(DifferentialTraps, TierAgreeOnTrapKind) {
  // A trapping program must trap identically everywhere.
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.i32_const(100);
    f.local_get(0);
    f.op(Op::kI32DivU);
    f.end();
  });
  for (EngineTier tier : all_tiers()) {
    auto inst = instantiate(bytes, tier);
    EXPECT_EQ(inst->invoke("run", std::vector<Value>{Value::from_i32(5)}).as_i32(),
              20);
    try {
      inst->invoke("run", std::vector<Value>{Value::from_i32(0)});
      FAIL() << "expected trap on " << rt::tier_name(tier);
    } catch (const rt::Trap& t) {
      EXPECT_EQ(t.kind(), rt::TrapKind::kIntegerDivByZero);
    }
  }
}

}  // namespace
}  // namespace mpiwasm::test
