// Differential property tests: for a corpus of generated programs and
// pseudo-random inputs, every execution configuration must agree
// bit-exactly — the four static tiers *and* tiered mode with threshold 1,
// which forces a lazy promotion mid-run. This is the core correctness
// argument for the compiled tiers and for tier-up publication — any
// lowering, optimization, or promotion bug shows up as a divergence.
#include "testlib.h"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <sstream>

#include "benchlib/harness.h"
#include "embedder/embedder.h"
#include "runtime/exec.h"
#include "toolchain/kernels.h"

namespace mpiwasm::test {
namespace {

struct Program {
  std::string name;
  std::vector<u8> bytes;
  std::vector<std::vector<Value>> inputs;
};

Program make_arith_mix() {
  // Mixes i32/i64 arithmetic, shifts, rotates, comparisons.
  Program p;
  p.name = "arith_mix";
  p.bytes = build_single_func({{I32, I32}, {I64}}, [](auto& f) {
    u32 a = 0, b = 1;
    f.local_get(a);
    f.local_get(b);
    f.op(Op::kI32Rotl);
    f.local_get(a);
    f.local_get(b);
    f.op(Op::kI32Xor);
    f.op(Op::kI32Sub);
    f.op(Op::kI64ExtendI32S);
    f.local_get(a);
    f.op(Op::kI64ExtendI32U);
    f.i64_const(2654435761);
    f.op(Op::kI64Mul);
    f.op(Op::kI64Add);
    f.local_get(b);
    f.op(Op::kI64ExtendI32S);
    f.i64_const(13);
    f.op(Op::kI64Rotr);
    f.op(Op::kI64Xor);
    f.end();
  });
  for (i32 x : {0, 1, -1, 12345, -98765, INT32_MAX, INT32_MIN})
    for (i32 y : {0, 3, 31, 33, -7})
      p.inputs.push_back({Value::from_i32(x), Value::from_i32(y)});
  return p;
}

Program make_float_kernel() {
  // A float-heavy kernel with min/max/copysign/nearest edge semantics.
  Program p;
  p.name = "float_kernel";
  p.bytes = build_single_func({{F64, F64}, {F64}}, [](auto& f) {
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kF64Min);
    f.local_get(0);
    f.local_get(1);
    f.op(Op::kF64Max);
    f.op(Op::kF64Mul);
    f.local_get(0);
    f.op(Op::kF64Nearest);
    f.op(Op::kF64Add);
    f.local_get(1);
    f.op(Op::kF64Copysign);
    f.end();
  });
  for (f64 x : {0.0, -0.0, 1.5, -2.5, 1e300, -3.7})
    for (f64 y : {0.5, -0.5, 2.5, 1e-300})
      p.inputs.push_back({Value::from_f64(x), Value::from_f64(y)});
  return p;
}

Program make_loop_memory() {
  // Writes a[i] = i*i for i in 0..n, then sums with stride 3.
  Program p;
  p.name = "loop_memory";
  p.bytes = build_single_func({{I32}, {I64}}, [](auto& f) {
    u32 n = 0;
    u32 i = f.add_local(I32);
    u32 acc = f.add_local(I64);
    f.for_loop_i32(i, 0, n, 1, [&] {
      f.local_get(i);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.local_get(i);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kI32Store);
    });
    f.for_loop_i32(i, 0, n, 3, [&] {
      f.local_get(acc);
      f.local_get(i);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kI32Load);
      f.op(Op::kI64ExtendI32U);
      f.op(Op::kI64Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.end();
  });
  for (i32 n : {0, 1, 2, 17, 100, 1000})
    p.inputs.push_back({Value::from_i32(n)});
  return p;
}

Program make_branchy() {
  // Dense control flow: br_table + nested ifs + early returns.
  Program p;
  p.name = "branchy";
  p.bytes = build_single_func({{I32, I32}, {I32}}, [](auto& f) {
    u32 out = f.add_local(I32);
    f.block();
    f.block();
    f.block();
    f.block();
    f.local_get(0);
    f.i32_const(4);
    f.op(Op::kI32RemU);
    f.br_table({0, 1, 2}, 3);
    f.end();
    f.local_get(1);
    f.i32_const(10);
    f.op(Op::kI32Add);
    f.local_set(out);
    f.br(2);
    f.end();
    f.local_get(1);
    f.i32_const(3);
    f.op(Op::kI32GtS);
    f.if_();
    f.i32_const(777);
    f.ret();
    f.end();
    f.i32_const(20);
    f.local_set(out);
    f.br(1);
    f.end();
    f.local_get(1);
    f.i32_const(0);
    f.op(Op::kI32Sub);
    f.local_set(out);
    f.br(0);
    f.end();
    f.local_get(out);
    f.i32_const(0);
    f.op(Op::kI32Eq);
    f.if_();
    f.i32_const(-1);
    f.local_set(out);
    f.end();
    f.local_get(out);
    f.end();
  });
  for (i32 x : {0, 1, 2, 3, 4, 5, 6, 7})
    for (i32 y : {0, 2, 4, 9, -3})
      p.inputs.push_back({Value::from_i32(x), Value::from_i32(y)});
  return p;
}

Program make_simd_dot() {
  // v128 dot-product-ish kernel over memory.
  Program p;
  p.name = "simd_dot";
  p.bytes = build_single_func({{I32}, {F64}}, [](auto& f) {
    u32 n = 0;
    u32 i = f.add_local(I32);
    u32 acc = f.add_local(V128T);
    // init: a[i] = i + 0.5 ; b[i] = 2i at bytes 0.. and 32768..
    f.for_loop_i32(i, 0, n, 1, [&] {
      f.local_get(i);
      f.i32_const(8);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.op(Op::kF64ConvertI32S);
      f.f64_const(0.5);
      f.op(Op::kF64Add);
      f.mem_op(Op::kF64Store);
      f.local_get(i);
      f.i32_const(8);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.i32_const(2);
      f.op(Op::kI32Mul);
      f.op(Op::kF64ConvertI32S);
      f.mem_op(Op::kF64Store, 32768);
    });
    // acc (f64x2) += a[i..i+2) * b[i..i+2), i += 2
    f.for_loop_i32(i, 0, n, 2, [&] {
      f.local_get(acc);
      f.local_get(i);
      f.i32_const(8);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kV128Load);
      f.local_get(i);
      f.i32_const(8);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kV128Load, 32768);
      f.op(Op::kF64x2Mul);
      f.op(Op::kF64x2Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.lane_op(Op::kF64x2ExtractLane, 0);
    f.local_get(acc);
    f.lane_op(Op::kF64x2ExtractLane, 1);
    f.op(Op::kF64Add);
    f.end();
  });
  for (i32 n : {0, 2, 8, 64, 256})
    p.inputs.push_back({Value::from_i32(n)});
  return p;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

std::vector<Program>& corpus() {
  static std::vector<Program> c = {make_arith_mix(), make_float_kernel(),
                                   make_loop_memory(), make_branchy(),
                                   make_simd_dot()};
  return c;
}

INSTANTIATE_TEST_SUITE_P(Corpus, DifferentialTest,
                         ::testing::Range(0, 5), [](const auto& info) {
                           return corpus()[info.param].name;
                         });

TEST_P(DifferentialTest, AllConfigsAgreeBitExactly) {
  const Program& p = corpus()[GetParam()];
  const auto cfgs = all_engine_configs();
  std::vector<std::shared_ptr<rt::Instance>> instances;
  for (const EngineConfig& cfg : cfgs)
    instances.push_back(instantiate_cfg(p.bytes, cfg));
  for (size_t k = 0; k < p.inputs.size(); ++k) {
    std::vector<u64> results;
    for (auto& inst : instances) {
      Value v = inst->invoke("run", p.inputs[k]);
      results.push_back(v.slot.u64v);
    }
    for (size_t t = 1; t < results.size(); ++t) {
      EXPECT_EQ(results[0], results[t])
          << p.name << " input#" << k << ": interp vs " << config_label(cfgs[t]);
    }
  }
}

TEST(DifferentialTraps, AllConfigsAgreeOnTrapKind) {
  // A trapping program must trap identically everywhere — including in a
  // function promoted between the successful and the trapping call.
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    f.i32_const(100);
    f.local_get(0);
    f.op(Op::kI32DivU);
    f.end();
  });
  for (const EngineConfig& cfg : all_engine_configs()) {
    auto inst = instantiate_cfg(bytes, cfg);
    // Several good calls first so a tiered config promotes mid-sequence.
    for (int k = 0; k < 5; ++k) {
      EXPECT_EQ(
          inst->invoke("run", std::vector<Value>{Value::from_i32(5)}).as_i32(),
          20)
          << config_label(cfg);
    }
    try {
      inst->invoke("run", std::vector<Value>{Value::from_i32(0)});
      FAIL() << "expected trap on " << config_label(cfg);
    } catch (const rt::Trap& t) {
      EXPECT_EQ(t.kind(), rt::TrapKind::kIntegerDivByZero);
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch differential: the direct-threaded and portable switch executors
// run the same regcode and must agree bit-exactly on the whole corpus.
// ---------------------------------------------------------------------------

TEST(DifferentialDispatch, SwitchAndThreadedExecutorsAgree) {
  if (!rt::threaded_dispatch_compiled())
    GTEST_SKIP() << "switch-dispatch build";
  struct ForceGuard {
    ~ForceGuard() { rt::set_dispatch_force_switch(false); }
  } guard;
  for (const Program& p : corpus()) {
    auto threaded = instantiate(p.bytes, EngineTier::kOptimizing);
    auto switched = instantiate(p.bytes, EngineTier::kOptimizing);
    for (size_t k = 0; k < p.inputs.size(); ++k) {
      rt::set_dispatch_force_switch(false);
      u64 vt = threaded->invoke("run", p.inputs[k]).slot.u64v;
      rt::set_dispatch_force_switch(true);
      u64 vs = switched->invoke("run", p.inputs[k]).slot.u64v;
      rt::set_dispatch_force_switch(false);
      EXPECT_EQ(vt, vs) << p.name << " input#" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Hoisted-guard trap differential: a loop whose guard fails at runtime must
// fall back to the checked loop and trap at exactly the original access —
// same trap kind AND the same prefix of observable stores — under every
// engine configuration (including tiered promotions of the hoisted body).
// ---------------------------------------------------------------------------

TEST(DifferentialTraps, OobUnderHoistedGuardsMatchesInterp) {
  auto bytes = build_single_func({{I32}, {I32}}, [](auto& f) {
    u32 n = 0;
    u32 i = f.add_local(I32);
    f.for_loop_i32(i, 0, n, 1, [&] {
      f.local_get(i);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.i32_const(3);
      f.op(Op::kI32Mul);
      f.mem_op(Op::kI32Store);
    });
    f.i32_const(0);
    f.mem_op(Op::kI32Load);
    f.end();
  });
  const i32 oob_n = 16384 + 7;  // one page holds 16384 i32 slots
  // Reference prefix from the interpreter.
  auto ref = instantiate(bytes, EngineTier::kInterp);
  EXPECT_THROW(ref->invoke("run", std::vector<Value>{Value::from_i32(oob_n)}),
               rt::Trap);
  for (const EngineConfig& cfg : all_engine_configs()) {
    auto inst = instantiate_cfg(bytes, cfg);
    // Warm calls first so tiered configs promote to the hoisted body.
    for (int w = 0; w < 5; ++w) {
      inst->invoke("run", std::vector<Value>{Value::from_i32(64)});
    }
    try {
      inst->invoke("run", std::vector<Value>{Value::from_i32(oob_n)});
      FAIL() << "expected trap under " << config_label(cfg);
    } catch (const rt::Trap& t) {
      EXPECT_EQ(t.kind(), rt::TrapKind::kMemoryOutOfBounds) << config_label(cfg);
    }
    for (u64 off : {0ull, 4ull * 777, 4ull * 16383}) {
      EXPECT_EQ(ref->memory().load<u32>(off), inst->memory().load<u32>(off))
          << config_label(cfg) << " at byte " << off;
    }
  }
}

// ---------------------------------------------------------------------------
// Toolchain-kernel differential: every generated benchmark kernel runs
// through the embedder under all static tiers (the optimizing tier with
// superinstruction fusion + bounds-check hoisting force-enabled, plus a
// plain ablation with both off) and tiered(threshold=1), and must produce
// identical correctness-relevant outputs (exit codes, report row counts,
// checksums/residuals/verification flags — not timings).
// ---------------------------------------------------------------------------

struct KernelRun {
  int exit_code = 0;
  std::string stdout_text;
  std::vector<bench::ReportRow> rows;
};

/// Rank threads interleave nondeterministically; compare stdout as a
/// sorted line multiset.
std::string normalized_stdout(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) out += l + "\n";
  return out;
}

KernelRun run_kernel_cfg(const std::vector<u8>& bytes, int ranks,
                         const EngineConfig& engine,
                         embed::EmbedderConfig cfg = {}) {
  bench::ReportCollector collector;
  cfg.engine = engine;
  cfg.extra_imports = collector.hook();
  KernelRun out;
  std::mutex mu;
  cfg.stdout_sink = [&](int, std::string_view s) {
    std::lock_guard<std::mutex> lock(mu);
    out.stdout_text.append(s);
  };
  embed::Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, ranks);
  out.exit_code = result.exit_code;
  out.rows = collector.rows();
  return out;
}

/// Runs `bytes` under every engine config and checks the deterministic
/// projection of each run against the interp reference.
void expect_kernel_agreement(
    const std::string& kernel, const std::vector<u8>& bytes, int ranks,
    const std::function<std::vector<f64>(const KernelRun&)>& project,
    embed::EmbedderConfig cfg = {}) {
  const auto cfgs = all_engine_configs();
  KernelRun ref;
  std::vector<f64> ref_proj;
  for (size_t i = 0; i < cfgs.size(); ++i) {
    KernelRun run = run_kernel_cfg(bytes, ranks, cfgs[i], cfg);
    if (i == 0) {
      ref = std::move(run);
      ref_proj = project(ref);
      continue;
    }
    const std::string label = kernel + ": interp vs " + config_label(cfgs[i]);
    EXPECT_EQ(ref.exit_code, run.exit_code) << label;
    EXPECT_EQ(normalized_stdout(ref.stdout_text),
              normalized_stdout(run.stdout_text))
        << label;
    EXPECT_EQ(ref.rows.size(), run.rows.size()) << label;
    std::vector<f64> proj = project(run);
    ASSERT_EQ(ref_proj.size(), proj.size()) << label;
    for (size_t k = 0; k < proj.size(); ++k) {
      EXPECT_EQ(ref_proj[k], proj[k]) << label << " field#" << k;
    }
  }
}

std::vector<f64> no_fields(const KernelRun&) { return {}; }

TEST(KernelDifferential, MicroKernels) {
  using namespace toolchain;
  expect_kernel_agreement("hello", build_hello_module(), 2, no_fields);
  expect_kernel_agreement("compute", build_compute_module(2000), 1, no_fields);
  expect_kernel_agreement("allreduce_check", build_allreduce_check_module(), 4,
                          no_fields);
  expect_kernel_agreement("alloc_mem", build_alloc_mem_module(), 1, no_fields);
}

TEST(KernelDifferential, ThreadsCheck) {
  // Guest probe: MPI_Init_thread must report MPI_THREAD_MULTIPLE, wasi
  // thread-spawn must work, and the 0xFE atomics (rmw contention, fence,
  // wait/notify, cmpxchg) must behave — under every engine config.
  if (!rt::threads_enabled_from_env()) GTEST_SKIP() << "MPIWASM_THREADS=0";
  expect_kernel_agreement("threads_check",
                          toolchain::build_threads_check_module(), 2,
                          no_fields);
}

TEST(KernelDifferential, Hpcg) {
  toolchain::HpcgParams p;
  p.n_per_rank = 128;
  p.iterations = 5;
  expect_kernel_agreement("hpcg", toolchain::build_hpcg_module(p), 2,
                          [](const KernelRun& r) {
                            std::vector<f64> v;
                            for (const auto& row : r.rows)
                              v.push_back(row.c);  // residual
                            return v;
                          });
}

TEST(KernelDifferential, IntegerSort) {
  toolchain::IsParams p;
  p.keys_per_rank = 1 << 9;
  p.repetitions = 2;
  expect_kernel_agreement("is", toolchain::build_is_module(p), 2,
                          [](const KernelRun& r) {
                            std::vector<f64> v;
                            for (const auto& row : r.rows)
                              v.push_back(row.b);  // verification flag
                            return v;
                          });
}

TEST(KernelDifferential, DataTraffic) {
  toolchain::DtParams p;
  p.doubles_per_msg = 1 << 7;
  p.repetitions = 2;
  expect_kernel_agreement("dt", toolchain::build_dt_module(p), 3,
                          [](const KernelRun& r) {
                            std::vector<f64> v;
                            for (const auto& row : r.rows)
                              v.push_back(row.b);  // checksum
                            return v;
                          });
}

TEST(KernelDifferential, ImbPingPong) {
  toolchain::ImbParams p;
  p.max_bytes = 1 << 8;
  p.base_iters = 1 << 10;
  p.max_iters = 4;
  // Timings differ run to run; row count + exit code are the contract.
  expect_kernel_agreement("imb_pingpong", toolchain::build_imb_module(p), 2,
                          no_fields);
}

TEST(KernelDifferential, DatatypeProbe) {
  toolchain::DatatypePingPongParams p;
  p.max_bytes = 1 << 9;
  p.iters_per_size = 2;
  expect_kernel_agreement("datatype_probe",
                          toolchain::build_datatype_pingpong_module(p), 2,
                          no_fields);
}

TEST(KernelDifferential, IorThroughSandbox) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() /
             ("mpiwasm-difftest-ior-" + std::to_string(::getpid()));
  toolchain::IorParams p;
  p.block_bytes = 1 << 12;
  p.blocks = 2;
  p.repetitions = 1;
  auto bytes = toolchain::build_ior_module(p);
  for (const EngineConfig& engine : all_engine_configs()) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    embed::EmbedderConfig cfg;
    cfg.preopens = {{dir.string(), "data", false}};
    KernelRun run = run_kernel_cfg(bytes, 2, engine, cfg);
    EXPECT_EQ(run.exit_code, 0) << config_label(engine);
    ASSERT_EQ(run.rows.size(), 1u) << config_label(engine);
    EXPECT_GT(run.rows[0].a, 0.0) << config_label(engine);
    EXPECT_GT(run.rows[0].b, 0.0) << config_label(engine);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mpiwasm::test
