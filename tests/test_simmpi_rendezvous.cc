// Segmented pipelined rendezvous (world.cc pump_pipelines).
//
// Schedule-issued sends above the eager threshold stream straight from the
// sender buffer in rendezvous_chunk segments, each segment visible once its
// wire-cost deadline elapsed. The segmentation must be invisible to MPI
// semantics: every chunk size (including the degenerate 0 = unsegmented and
// pathological 1-byte chunks) must deliver bit-identical payloads, out-of-
// order completion of outstanding pipelines must work, and an abort raised
// mid-drain must unblock the peer stuck waiting on the tail segments.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "simmpi/coll_algos.h"
#include "simmpi/world.h"

namespace mpiwasm::simmpi {
namespace {

using coll::CollOp;

i64 gen(int rank, i64 i) { return ((rank + 1) * 31 + i * 7) % 13 + 1; }

NetworkProfile with_chunk(NetworkProfile p, size_t chunk) {
  p.rendezvous_chunk = chunk;
  // Schedule sends only pipeline above the eager boundary; drop it so the
  // small payloads below actually exercise the segment pump.
  p.eager_limit = 512;
  return p;
}

TEST(SegmentedRendezvous, DifferentialAcrossChunkSizes) {
  struct Case {
    size_t chunk;
    std::vector<size_t> sizes;  // payload bytes
  };
  // Tiny chunks pair with small payloads (a 1-byte chunk charges the
  // profile's per-message latency once per byte); realistic chunks go up
  // to 4 MiB.
  const Case cases[] = {
      {0, {1, 17, 4096, 65537, size_t(4) << 20}},  // 0 = unsegmented
      {1, {1, 17, 1024, 8192}},
      {7, {1, 17, 1024, 8192}},
      {4096, {1, 4096, 65537, size_t(1) << 20}},
      {64 * 1024, {1, 65537, size_t(4) << 20}},
      {size_t(1) << 20, {65537, size_t(4) << 20}},
  };
  for (const NetworkProfile& base :
       {NetworkProfile::zero(), NetworkProfile::omnipath()}) {
    for (const Case& tc : cases) {
      World world(2, with_chunk(base, tc.chunk),
                  coll::forced_tuning(CollOp::kBcast, CollAlgo::kLinear));
      for (size_t bytes : tc.sizes) {
        world.run([&, bytes](Rank& r) {
          std::vector<u8> buf(bytes);
          for (size_t i = 0; i < bytes; ++i)
            buf[i] = r.rank() == 0 ? u8(gen(0, i64(i))) : u8(0xee);
          // Linear ibcast from rank 0 is a single schedule-issued (and
          // hence pipelined, above the eager threshold) p2p transfer.
          Request req =
              r.ibcast(buf.data(), int(bytes), Datatype::kByte, 0);
          r.wait(req);
          for (size_t i = 0; i < bytes; ++i)
            ASSERT_EQ(buf[i], u8(gen(0, i64(i))))
                << "chunk=" << tc.chunk << " bytes=" << bytes << " i=" << i
                << " profile=" << base.name;
        });
      }
    }
  }
}

TEST(SegmentedRendezvous, OutstandingPipelinesCompleteOutOfOrder) {
  // Four concurrent 256 KiB pipelines per direction, drained in reverse
  // initiation order; segments of distinct transfers interleave in the
  // receiver's mailbox.
  World world(2, with_chunk(NetworkProfile::omnipath(), 16 * 1024),
              coll::forced_tuning(CollOp::kBcast, CollAlgo::kLinear));
  world.run([](Rank& r) {
    constexpr size_t kBytes = 256 * 1024;
    constexpr int kStreams = 4;
    std::vector<std::vector<u8>> bufs(kStreams);
    std::vector<Request> reqs(kStreams);
    for (int s = 0; s < kStreams; ++s) {
      bufs[size_t(s)].resize(kBytes);
      for (size_t i = 0; i < kBytes; ++i)
        bufs[size_t(s)][i] =
            r.rank() == 0 ? u8(gen(s, i64(i))) : u8(0xcd);
      reqs[size_t(s)] =
          r.ibcast(bufs[size_t(s)].data(), int(kBytes), Datatype::kByte, 0);
    }
    for (int s = kStreams - 1; s >= 0; --s) {
      r.wait(reqs[size_t(s)]);
      for (size_t i = 0; i < kBytes; i += 197)
        ASSERT_EQ(bufs[size_t(s)][i], u8(gen(s, i64(i))))
            << "stream=" << s << " i=" << i;
    }
  });
}

TEST(SegmentedRendezvous, AbortMidPipelineUnblocksSender) {
  // The receiver drains part of a pipeline and aborts; the sender blocked
  // on the tail segments must observe MpiAbort, not hang. 64 B segments
  // make the transfer latency-bound (~33 ms of simulated wire time for
  // 2 MiB), so the abort reliably lands mid-drain.
  World world(2, with_chunk(NetworkProfile::omnipath(), 64),
              coll::forced_tuning(CollOp::kBcast, CollAlgo::kLinear));
  EXPECT_THROW(
      world.run([](Rank& r) {
        constexpr size_t kBytes = size_t(2) << 20;
        std::vector<u8> buf(kBytes, r.rank() == 0 ? u8(0x5a) : u8(0));
        if (r.rank() == 0) {
          Request req =
              r.ibcast(buf.data(), int(kBytes), Datatype::kByte, 0);
          r.wait(req);  // unblocked only by the abort
          ADD_FAILURE() << "wait returned despite peer abort";
        } else {
          Request req =
              r.ibcast(buf.data(), int(kBytes), Datatype::kByte, 0);
          // Let a few segments drain, then pull the plug mid-transfer.
          Status st;
          r.test(req, &st);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          r.test(req, &st);
          r.abort(7);
        }
      }),
      MpiError);
}

TEST(SegmentedRendezvous, ChunkKnobDoesNotLeakIntoBlockingPath) {
  // Blocking sends spin the wire at injection; segmentation only applies
  // to schedule-issued transfers. A blocking exchange must stay correct
  // under every chunk setting.
  for (size_t chunk : {size_t(0), size_t(1), size_t(512)}) {
    World world(2, with_chunk(NetworkProfile::zero(), chunk));
    world.run([](Rank& r) {
      std::vector<i64> buf(20000);
      if (r.rank() == 0) {
        for (size_t i = 0; i < buf.size(); ++i) buf[i] = gen(0, i64(i));
        r.send(buf.data(), int(buf.size()), Datatype::kLong, 1, 0);
      } else {
        r.recv(buf.data(), int(buf.size()), Datatype::kLong, 0, 0);
        for (size_t i = 0; i < buf.size(); ++i)
          ASSERT_EQ(buf[i], gen(0, i64(i)));
      }
    });
  }
}

}  // namespace
}  // namespace mpiwasm::simmpi
