// Shared helpers for the test suite: small module factories and tier sweeps.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "runtime/engine.h"
#include "runtime/instance.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace mpiwasm::test {

using rt::EngineConfig;
using rt::EngineTier;
using rt::Value;
using wasm::FuncType;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;

constexpr ValType I32 = ValType::kI32;
constexpr ValType I64 = ValType::kI64;
constexpr ValType F32 = ValType::kF32;
constexpr ValType F64 = ValType::kF64;
constexpr ValType V128T = ValType::kV128;

inline std::vector<EngineTier> all_tiers() {
  return {EngineTier::kInterp, EngineTier::kBaseline, EngineTier::kLightOpt,
          EngineTier::kOptimizing, EngineTier::kJit};
}

/// Every engine configuration a module should behave identically under:
/// the four static tiers (the optimizing tier runs with superinstruction
/// fusion and bounds-check hoisting enabled — their defaults), an
/// optimizing ablation with both disabled (isolates the fused/hoisted code
/// paths against the plain pipeline), plus tiered mode with threshold 1,
/// which forces a lazy promotion on the very first call of every function
/// (maximum mid-run tier churn; promotions also compile fused+hoisted
/// bodies).
inline std::vector<EngineConfig> all_engine_configs() {
  std::vector<EngineConfig> cfgs;
  for (EngineTier tier : all_tiers()) {
    EngineConfig c;
    c.tier = tier;
    cfgs.push_back(c);
  }
  EngineConfig plain_opt;
  plain_opt.tier = EngineTier::kOptimizing;
  plain_opt.opt_superinstructions = false;
  plain_opt.opt_hoist_bounds = false;
  cfgs.push_back(plain_opt);
  EngineConfig tiered;
  tiered.tier = EngineTier::kTiered;
  tiered.tierup_baseline_threshold = 1;
  tiered.tierup_opt_threshold = 1;
  cfgs.push_back(tiered);
  // A staged variant: interp first, baseline on call 2, optimizing on
  // call 4 — promotions land mid-sweep in multi-input tests.
  EngineConfig staged;
  staged.tier = EngineTier::kTiered;
  staged.tierup_baseline_threshold = 2;
  staged.tierup_opt_threshold = 4;
  cfgs.push_back(staged);
  // The jit tier with native codegen forced OFF (degrades to optimizing —
  // pins the MPIWASM_JIT=0 escape hatch), and tiered mode promoting all the
  // way to native code mid-run. The plain kJit entry comes from all_tiers().
  EngineConfig jit_off;
  jit_off.tier = EngineTier::kJit;
  jit_off.jit = false;
  cfgs.push_back(jit_off);
  EngineConfig tiered_jit;
  tiered_jit.tier = EngineTier::kTiered;
  tiered_jit.tierup_baseline_threshold = 1;
  tiered_jit.tierup_opt_threshold = 2;
  tiered_jit.tierup_jit_threshold = 3;  // jit knob keeps its env default
  cfgs.push_back(tiered_jit);
  return cfgs;
}

/// Human-readable label for a config (tier name + thresholds for tiered).
inline std::string config_label(const EngineConfig& cfg) {
  std::string s = rt::tier_name(cfg.tier);
  if (cfg.tier == EngineTier::kTiered) {
    s += "(" + std::to_string(cfg.tierup_baseline_threshold) + "," +
         std::to_string(cfg.tierup_opt_threshold);
    if (cfg.jit) s += "," + std::to_string(cfg.tierup_jit_threshold);
    s += ")";
  }
  if (cfg.tier == EngineTier::kJit && !cfg.jit) s += "(off)";
  if (!cfg.opt_superinstructions || !cfg.opt_hoist_bounds) s += "(plain)";
  return s;
}

/// Compiles `bytes` under `cfg` and returns a fresh instance.
inline std::shared_ptr<rt::Instance> instantiate_cfg(
    const std::vector<u8>& bytes, const EngineConfig& cfg,
    const rt::ImportTable& imports = {}) {
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  return std::make_shared<rt::Instance>(cm, imports);
}

/// Compiles `bytes` at `tier` (no cache) and returns a fresh instance.
inline std::shared_ptr<rt::Instance> instantiate(
    const std::vector<u8>& bytes, EngineTier tier,
    const rt::ImportTable& imports = {}) {
  EngineConfig cfg;
  cfg.tier = tier;
  cfg.enable_cache = false;
  return instantiate_cfg(bytes, cfg, imports);
}

/// Builds a single-export module around `emit` and asserts it validates.
inline std::vector<u8> build_single_func(
    const FuncType& type, const std::function<void(wasm::FunctionBuilder&)>& emit,
    u32 memory_pages = 1) {
  ModuleBuilder b;
  if (memory_pages > 0) {
    b.add_memory(memory_pages);
    b.export_memory();
  }
  auto& f = b.begin_func(type, "run");
  emit(f);
  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  EXPECT_TRUE(decoded.ok()) << decoded.error;
  if (decoded.ok()) {
    auto vr = wasm::validate_module(*decoded.module);
    EXPECT_TRUE(vr.ok) << vr.error;
  }
  return bytes;
}

}  // namespace mpiwasm::test
