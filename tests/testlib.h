// Shared helpers for the test suite: small module factories and tier sweeps.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "runtime/engine.h"
#include "runtime/instance.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace mpiwasm::test {

using rt::EngineConfig;
using rt::EngineTier;
using rt::Value;
using wasm::FuncType;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;

constexpr ValType I32 = ValType::kI32;
constexpr ValType I64 = ValType::kI64;
constexpr ValType F32 = ValType::kF32;
constexpr ValType F64 = ValType::kF64;
constexpr ValType V128T = ValType::kV128;

inline std::vector<EngineTier> all_tiers() {
  return {EngineTier::kInterp, EngineTier::kBaseline, EngineTier::kLightOpt,
          EngineTier::kOptimizing};
}

/// Compiles `bytes` at `tier` (no cache) and returns a fresh instance.
inline std::shared_ptr<rt::Instance> instantiate(
    const std::vector<u8>& bytes, EngineTier tier,
    const rt::ImportTable& imports = {}) {
  EngineConfig cfg;
  cfg.tier = tier;
  cfg.enable_cache = false;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  return std::make_shared<rt::Instance>(cm, imports);
}

/// Builds a single-export module around `emit` and asserts it validates.
inline std::vector<u8> build_single_func(
    const FuncType& type, const std::function<void(wasm::FunctionBuilder&)>& emit,
    u32 memory_pages = 1) {
  ModuleBuilder b;
  if (memory_pages > 0) {
    b.add_memory(memory_pages);
    b.export_memory();
  }
  auto& f = b.begin_func(type, "run");
  emit(f);
  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  EXPECT_TRUE(decoded.ok()) << decoded.error;
  if (decoded.ok()) {
    auto vr = wasm::validate_module(*decoded.module);
    EXPECT_TRUE(vr.ok) << vr.error;
  }
  return bytes;
}

}  // namespace mpiwasm::test
