// Communicator management: dup, split (colors/keys/undefined), isolation
// of traffic between communicators.
#include <gtest/gtest.h>

#include "simmpi/world.h"

namespace mpiwasm::simmpi {
namespace {

TEST(SimMpiComm, DupBehavesLikeParent) {
  World world(4);
  world.run([](Rank& r) {
    Comm dup = r.comm_dup(kCommWorld);
    EXPECT_NE(dup, kCommWorld);
    EXPECT_EQ(r.rank(dup), r.rank());
    EXPECT_EQ(r.size(dup), r.size());
    int v = r.rank() == 0 ? 77 : 0;
    r.bcast(&v, 1, Datatype::kInt, 0, dup);
    EXPECT_EQ(v, 77);
    r.comm_free(dup);
  });
}

TEST(SimMpiComm, TrafficIsIsolatedByCommunicator) {
  World world(2);
  world.run([](Rank& r) {
    Comm dup = r.comm_dup(kCommWorld);
    if (r.rank() == 0) {
      int a = 1, b = 2;
      r.send(&a, 1, Datatype::kInt, 1, 0, kCommWorld);
      r.send(&b, 1, Datatype::kInt, 1, 0, dup);
    } else {
      // Receive from the dup comm FIRST: must match the dup-send even
      // though the world-send arrived earlier.
      int vd = 0, vw = 0;
      r.recv(&vd, 1, Datatype::kInt, 0, 0, dup);
      r.recv(&vw, 1, Datatype::kInt, 0, 0, kCommWorld);
      EXPECT_EQ(vd, 2);
      EXPECT_EQ(vw, 1);
    }
    r.comm_free(dup);
  });
}

TEST(SimMpiComm, SplitEvenOdd) {
  World world(6);
  world.run([](Rank& r) {
    int color = r.rank() % 2;
    Comm sub = r.comm_split(kCommWorld, color, r.rank());
    ASSERT_NE(sub, kCommNull);
    EXPECT_EQ(r.size(sub), 3);
    EXPECT_EQ(r.rank(sub), r.rank() / 2);
    // Sum of world ranks within each parity class.
    int mine = r.rank(), sum = 0;
    r.allreduce(&mine, &sum, 1, Datatype::kInt, ReduceOp::kSum, sub);
    EXPECT_EQ(sum, color == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
    r.comm_free(sub);
  });
}

TEST(SimMpiComm, SplitKeyReordersRanks) {
  World world(4);
  world.run([](Rank& r) {
    // Same color for all; key = -world_rank reverses the order.
    Comm sub = r.comm_split(kCommWorld, 0, -r.rank());
    EXPECT_EQ(r.rank(sub), r.size() - 1 - r.rank());
    r.comm_free(sub);
  });
}

TEST(SimMpiComm, SplitUndefinedExcludes) {
  World world(4);
  world.run([](Rank& r) {
    int color = r.rank() == 0 ? kUndefined : 1;
    Comm sub = r.comm_split(kCommWorld, color, 0);
    if (r.rank() == 0) {
      EXPECT_EQ(sub, kCommNull);
    } else {
      ASSERT_NE(sub, kCommNull);
      EXPECT_EQ(r.size(sub), 3);
      r.comm_free(sub);
    }
  });
}

TEST(SimMpiComm, NestedSplits) {
  World world(8);
  world.run([](Rank& r) {
    Comm half = r.comm_split(kCommWorld, r.rank() / 4, r.rank());
    ASSERT_EQ(r.size(half), 4);
    Comm quarter = r.comm_split(half, r.rank(half) / 2, r.rank(half));
    ASSERT_EQ(r.size(quarter), 2);
    int mine = 1, total = 0;
    r.allreduce(&mine, &total, 1, Datatype::kInt, ReduceOp::kSum, quarter);
    EXPECT_EQ(total, 2);
    r.comm_free(quarter);
    r.comm_free(half);
  });
}

TEST(SimMpiComm, InvalidHandleThrows) {
  World world(2);
  world.run([](Rank& r) {
    EXPECT_THROW(r.rank(999), MpiError);
    EXPECT_THROW(r.barrier(999), MpiError);
    EXPECT_THROW(r.comm_free(kCommWorld), MpiError);
    EXPECT_THROW(r.comm_free(12345), MpiError);
  });
}

TEST(SimMpiComm, FreedCommIsInvalid) {
  World world(2);
  world.run([](Rank& r) {
    Comm dup = r.comm_dup(kCommWorld);
    r.comm_free(dup);
    EXPECT_THROW(r.rank(dup), MpiError);
  });
}

}  // namespace
}  // namespace mpiwasm::simmpi
