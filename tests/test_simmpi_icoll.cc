// Differential + stress suite for the nonblocking collectives (coll_sched).
//
// Every nonblocking collective is validated against its blocking twin under
// every registry algorithm, across message sizes from 1 B to 1 MiB (hitting
// both the eager and rendezvous transports), power-of-two and non-pof2 rank
// counts, MPI_IN_PLACE, multiple outstanding requests, and out-of-order
// completion. Inputs are exact in every datatype (small integers), so a
// blocking and a scheduled run of the same algorithm must agree bit-for-bit.
// The suite also pins the progress-engine semantics production codes rely
// on: blocking MPI calls must advance outstanding schedules (no deadlock
// when a rank blocks in recv while a peer waits on a collective).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "simmpi/coll_algos.h"
#include "simmpi/world.h"
#include "support/timing.h"

namespace mpiwasm::simmpi {
namespace {

using coll::CollOp;

/// Deterministic exact-in-every-type element for (rank, index).
i64 gen(int rank, i64 i) { return ((rank + 1) * 31 + i * 7) % 13 + 1; }

// Element counts of i64 (8 B .. 1 MiB); 131072 crosses the rendezvous
// threshold for the full-vector algorithms.
const i64 kCounts[] = {1, 3, 257, 2048, 65536, 131072};

TEST(IcollDifferential, IallreduceEveryAlgorithmMatchesBlocking) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kAllreduce)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kAllreduce, algo));
      for (i64 count : kCounts) {
        world.run([&, count](Rank& r) {
          std::vector<i64> in(static_cast<size_t>(count));
          for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
          std::vector<i64> expect(static_cast<size_t>(count), -1), out(static_cast<size_t>(count), -2);
          r.allreduce(in.data(), expect.data(), int(count), Datatype::kLong,
                      ReduceOp::kSum);
          Request req = r.iallreduce(in.data(), out.data(), int(count),
                                     Datatype::kLong, ReduceOp::kSum);
          r.wait(req);
          ASSERT_EQ(out, expect)
              << "ranks=" << ranks << " count=" << count
              << " algo=" << coll::algo_name(algo);
        });
      }
    }
  }
}

TEST(IcollDifferential, IbcastEveryAlgorithmEveryRoot) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kBcast)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kBcast, algo));
      for (i64 count : {i64(1), i64(257), i64(65536)}) {
        for (int root = 0; root < ranks; ++root) {
          world.run([&, count, root](Rank& r) {
            std::vector<i64> expect(static_cast<size_t>(count)), buf(static_cast<size_t>(count));
            for (i64 i = 0; i < count; ++i) {
              expect[size_t(i)] = gen(root, i);
              buf[size_t(i)] = r.rank() == root ? gen(root, i) : -1;
            }
            Request req = r.ibcast(buf.data(), int(count), Datatype::kLong,
                                   root);
            r.wait(req);
            ASSERT_EQ(buf, expect)
                << "ranks=" << ranks << " root=" << root
                << " algo=" << coll::algo_name(algo);
          });
        }
      }
    }
  }
}

TEST(IcollDifferential, IreduceEveryAlgorithmEveryRoot) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kReduce)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kReduce, algo));
      for (i64 count : {i64(3), i64(2048), i64(131072)}) {
        for (int root = 0; root < ranks; ++root) {
          world.run([&, count, root](Rank& r) {
            std::vector<i64> in(static_cast<size_t>(count));
            for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
            bool is_root = r.rank() == root;
            std::vector<i64> expect(is_root ? static_cast<size_t>(count) : 0);
            std::vector<i64> out(is_root ? static_cast<size_t>(count) : 0);
            r.reduce(in.data(), is_root ? expect.data() : nullptr, int(count),
                     Datatype::kLong, ReduceOp::kSum, root);
            Request req =
                r.ireduce(in.data(), is_root ? out.data() : nullptr,
                          int(count), Datatype::kLong, ReduceOp::kSum, root);
            r.wait(req);
            if (is_root) {
              ASSERT_EQ(out, expect)
                  << "ranks=" << ranks << " root=" << root
                  << " algo=" << coll::algo_name(algo);
            }
          });
        }
      }
    }
  }
}

TEST(IcollDifferential, IallgatherEveryAlgorithm) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kAllgather)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kAllgather, algo));
      for (i64 count : {i64(1), i64(257), i64(16384)}) {
        world.run([&, count](Rank& r) {
          int n = r.size();
          std::vector<i64> in(static_cast<size_t>(count));
          for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
          std::vector<i64> expect(static_cast<size_t>(count) * size_t(n), -1);
          std::vector<i64> out(static_cast<size_t>(count) * size_t(n), -2);
          r.allgather(in.data(), int(count), expect.data(), int(count),
                      Datatype::kLong);
          Request req = r.iallgather(in.data(), int(count), out.data(),
                                     int(count), Datatype::kLong);
          r.wait(req);
          ASSERT_EQ(out, expect) << "ranks=" << ranks << " count=" << count
                                 << " algo=" << coll::algo_name(algo);
        });
      }
    }
  }
}

TEST(IcollDifferential, IalltoallEveryAlgorithm) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kAlltoall)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kAlltoall, algo));
      for (i64 count : {i64(1), i64(513), i64(16384)}) {
        world.run([&, count](Rank& r) {
          int n = r.size();
          std::vector<i64> in(static_cast<size_t>(count) * size_t(n));
          for (size_t i = 0; i < in.size(); ++i)
            in[i] = gen(r.rank(), i64(i));
          std::vector<i64> expect(in.size(), -1), out(in.size(), -2);
          r.alltoall(in.data(), int(count), expect.data(), int(count),
                     Datatype::kLong);
          Request req = r.ialltoall(in.data(), int(count), out.data(),
                                    int(count), Datatype::kLong);
          r.wait(req);
          ASSERT_EQ(out, expect) << "ranks=" << ranks << " count=" << count
                                 << " algo=" << coll::algo_name(algo);
        });
      }
    }
  }
}

TEST(IcollDifferential, IbarrierEveryAlgorithmCompletes) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kBarrier)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kBarrier, algo));
      world.run([&](Rank& r) {
        for (int iter = 0; iter < 8; ++iter) {
          Request req = r.ibarrier();
          r.wait(req);
        }
      });
    }
  }
}

TEST(IcollDifferential, IreduceScatterEveryAlgorithm) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kReduceScatter)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kReduceScatter, algo));
      for (i64 base : {i64(1), i64(257), i64(8192)}) {
        world.run([&, base](Rank& r) {
          int n = r.size();
          // Non-uniform counts exercise the offset bookkeeping.
          std::vector<int> counts(static_cast<size_t>(n));
          i64 total = 0;
          for (int i = 0; i < n; ++i) {
            counts[size_t(i)] = int(base) + i;
            total += counts[size_t(i)];
          }
          std::vector<i64> in(static_cast<size_t>(total));
          for (i64 i = 0; i < total; ++i) in[size_t(i)] = gen(r.rank(), i);
          size_t mine = size_t(counts[size_t(r.rank())]);
          std::vector<i64> expect(mine, -1), out(mine, -2);
          r.reduce_scatter(in.data(), expect.data(), counts.data(),
                           Datatype::kLong, ReduceOp::kSum);
          Request req =
              r.ireduce_scatter(in.data(), out.data(), counts.data(),
                                Datatype::kLong, ReduceOp::kSum);
          r.wait(req);
          ASSERT_EQ(out, expect) << "ranks=" << ranks << " base=" << base
                                 << " algo=" << coll::algo_name(algo);
        });
      }
    }
  }
}

TEST(IcollDifferential, IscanEveryAlgorithm) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kScan)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kScan, algo));
      for (i64 count : {i64(1), i64(257), i64(65536)}) {
        world.run([&, count](Rank& r) {
          std::vector<i64> in(static_cast<size_t>(count));
          for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
          std::vector<i64> expect(static_cast<size_t>(count), -1);
          std::vector<i64> out(static_cast<size_t>(count), -2);
          r.scan(in.data(), expect.data(), int(count), Datatype::kLong,
                 ReduceOp::kSum);
          Request req = r.iscan(in.data(), out.data(), int(count),
                                Datatype::kLong, ReduceOp::kSum);
          r.wait(req);
          ASSERT_EQ(out, expect) << "ranks=" << ranks << " count=" << count
                                 << " algo=" << coll::algo_name(algo);
        });
      }
    }
  }
}

TEST(IcollDifferential, IexscanEveryAlgorithm) {
  for (int ranks : {2, 3, 5, 8}) {
    for (CollAlgo algo : coll::algos_for(CollOp::kExscan)) {
      World world(ranks, NetworkProfile::zero(),
                  coll::forced_tuning(CollOp::kExscan, algo));
      for (i64 count : {i64(1), i64(257), i64(65536)}) {
        world.run([&, count](Rank& r) {
          std::vector<i64> in(static_cast<size_t>(count));
          for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
          std::vector<i64> expect(static_cast<size_t>(count), -1);
          std::vector<i64> out(static_cast<size_t>(count), -1);
          r.exscan(in.data(), expect.data(), int(count), Datatype::kLong,
                   ReduceOp::kSum);
          Request req = r.iexscan(in.data(), out.data(), int(count),
                                  Datatype::kLong, ReduceOp::kSum);
          r.wait(req);
          if (r.rank() > 0) {  // rank 0's recvbuf is undefined
            ASSERT_EQ(out, expect)
                << "ranks=" << ranks << " count=" << count
                << " algo=" << coll::algo_name(algo);
          }
        });
      }
    }
  }
}

TEST(IcollInPlace, IreduceScatterIscanIexscan) {
  for (int ranks : {3, 4}) {
    World world(ranks, NetworkProfile::zero());
    world.run([&](Rank& r) {
      int n = r.size();
      const i64 count = 1000;
      std::vector<int> counts(static_cast<size_t>(n), int(count));
      std::vector<i64> in(static_cast<size_t>(count) * size_t(n));
      for (size_t i = 0; i < in.size(); ++i) in[i] = gen(r.rank(), i64(i));

      std::vector<i64> expect(static_cast<size_t>(count));
      r.reduce_scatter(in.data(), expect.data(), counts.data(),
                       Datatype::kLong, ReduceOp::kSum);
      std::vector<i64> buf = in;  // in-place: full vector in recvbuf
      Request req = r.ireduce_scatter(kInPlace, buf.data(), counts.data(),
                                      Datatype::kLong, ReduceOp::kSum);
      r.wait(req);
      ASSERT_TRUE(std::equal(expect.begin(), expect.end(), buf.begin()));

      std::vector<i64> sexp(static_cast<size_t>(count));
      r.scan(in.data(), sexp.data(), int(count), Datatype::kLong,
             ReduceOp::kSum);
      std::vector<i64> sbuf(in.begin(), in.begin() + count);
      req = r.iscan(kInPlace, sbuf.data(), int(count), Datatype::kLong,
                    ReduceOp::kSum);
      r.wait(req);
      ASSERT_TRUE(std::equal(sexp.begin(), sexp.end(), sbuf.begin()));

      std::vector<i64> eexp(static_cast<size_t>(count), -7);
      r.exscan(in.data(), eexp.data(), int(count), Datatype::kLong,
               ReduceOp::kSum);
      std::vector<i64> ebuf(in.begin(), in.begin() + count);
      req = r.iexscan(kInPlace, ebuf.data(), int(count), Datatype::kLong,
                      ReduceOp::kSum);
      r.wait(req);
      if (r.rank() > 0)
        ASSERT_TRUE(std::equal(eexp.begin(), eexp.end(), ebuf.begin()));
    });
  }
}

TEST(IcollInPlace, IallreduceIreduceIallgather) {
  const i64 count = 777;
  for (int ranks : {3, 4, 8}) {
    World world(ranks);
    world.run([&](Rank& r) {
      int n = r.size();
      // iallreduce IN_PLACE
      std::vector<i64> in(static_cast<size_t>(count)), expect(static_cast<size_t>(count));
      for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
      r.allreduce(in.data(), expect.data(), int(count), Datatype::kLong,
                  ReduceOp::kSum);
      std::vector<i64> buf = in;
      Request req = r.iallreduce(kInPlace, buf.data(), int(count),
                                 Datatype::kLong, ReduceOp::kSum);
      r.wait(req);
      ASSERT_EQ(buf, expect);
      // ireduce IN_PLACE at root 0
      buf = in;
      req = r.rank() == 0
                ? r.ireduce(kInPlace, buf.data(), int(count), Datatype::kLong,
                            ReduceOp::kSum, 0)
                : r.ireduce(buf.data(), nullptr, int(count), Datatype::kLong,
                            ReduceOp::kSum, 0);
      r.wait(req);
      if (r.rank() == 0) {
        ASSERT_EQ(buf, expect);
      }
      // iallgather IN_PLACE
      std::vector<i64> all(static_cast<size_t>(count) * size_t(n), -1);
      std::vector<i64> all_expect(all.size(), -2);
      r.allgather(in.data(), int(count), all_expect.data(), int(count),
                  Datatype::kLong);
      std::memcpy(all.data() + size_t(r.rank()) * static_cast<size_t>(count), in.data(),
                  static_cast<size_t>(count) * sizeof(i64));
      req = r.iallgather(kInPlace, 0, all.data(), int(count), Datatype::kLong);
      r.wait(req);
      ASSERT_EQ(all, all_expect);
    });
  }
}

TEST(IcollOutstanding, MultipleOutstandingCompleteOutOfOrder) {
  const i64 count = 4096;
  const int kOps = 4;
  for (int ranks : {3, 8}) {
    World world(ranks);
    world.run([&](Rank& r) {
      std::vector<std::vector<i64>> in(kOps), out(kOps), expect(kOps);
      std::vector<Request> reqs(kOps);
      for (int k = 0; k < kOps; ++k) {
        in[size_t(k)].resize(static_cast<size_t>(count));
        out[size_t(k)].assign(static_cast<size_t>(count), -1);
        expect[size_t(k)].assign(static_cast<size_t>(count), -2);
        for (i64 i = 0; i < count; ++i)
          in[size_t(k)][size_t(i)] = gen(r.rank(), i + k);
        r.allreduce(in[size_t(k)].data(), expect[size_t(k)].data(),
                    int(count), Datatype::kLong, ReduceOp::kSum);
      }
      for (int k = 0; k < kOps; ++k)
        reqs[size_t(k)] =
            r.iallreduce(in[size_t(k)].data(), out[size_t(k)].data(),
                         int(count), Datatype::kLong, ReduceOp::kSum);
      // Wait in reverse initiation order: later schedules complete while
      // earlier ones are still outstanding.
      for (int k = kOps - 1; k >= 0; --k) r.wait(reqs[size_t(k)]);
      for (int k = 0; k < kOps; ++k) ASSERT_EQ(out[size_t(k)], expect[size_t(k)]);
    });
  }
}

TEST(IcollOutstanding, MixedKindsAcrossCollectives) {
  const i64 count = 1024;
  World world(5);
  world.run([&](Rank& r) {
    std::vector<i64> a(static_cast<size_t>(count)), asum(static_cast<size_t>(count)), aexp(static_cast<size_t>(count));
    std::vector<i64> b(static_cast<size_t>(count));
    for (i64 i = 0; i < count; ++i) {
      a[size_t(i)] = gen(r.rank(), i);
      b[size_t(i)] = r.rank() == 2 ? gen(2, i) * 3 : -1;
    }
    r.allreduce(a.data(), aexp.data(), int(count), Datatype::kLong,
                ReduceOp::kMax);
    Request rb = r.ibcast(b.data(), int(count), Datatype::kLong, 2);
    Request ra = r.iallreduce(a.data(), asum.data(), int(count),
                              Datatype::kLong, ReduceOp::kMax);
    Request bar = r.ibarrier();
    // Completion order deliberately differs from initiation order.
    r.wait(ra);
    r.wait(bar);
    r.wait(rb);
    ASSERT_EQ(asum, aexp);
    for (i64 i = 0; i < count; ++i) ASSERT_EQ(b[size_t(i)], gen(2, i) * 3);
  });
}

TEST(IcollOutstanding, WaitallOverMixedP2pAndCollectiveRequests) {
  const i64 count = 2048;
  World world(4);
  world.run([&](Rank& r) {
    int n = r.size();
    int right = (r.rank() + 1) % n, left = (r.rank() - 1 + n) % n;
    std::vector<i64> in(static_cast<size_t>(count)), out(static_cast<size_t>(count), -1),
        expect(static_cast<size_t>(count));
    for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
    r.allreduce(in.data(), expect.data(), int(count), Datatype::kLong,
                ReduceOp::kSum);
    i64 token = r.rank(), got = -1;
    std::vector<Request> reqs;
    reqs.push_back(r.irecv(&got, 1, Datatype::kLong, left, 7));
    reqs.push_back(r.iallreduce(in.data(), out.data(), int(count),
                                Datatype::kLong, ReduceOp::kSum));
    reqs.push_back(r.isend(&token, 1, Datatype::kLong, right, 7));
    r.waitall(reqs);
    ASSERT_EQ(got, i64(left));
    ASSERT_EQ(out, expect);
  });
}

TEST(IcollRequestApi, WaitanyDrainsMixedRequests) {
  const i64 count = 512;
  World world(4);
  world.run([&](Rank& r) {
    std::vector<i64> a(static_cast<size_t>(count)), asum(static_cast<size_t>(count), -1),
        aexp(static_cast<size_t>(count));
    for (i64 i = 0; i < count; ++i) a[size_t(i)] = gen(r.rank(), i);
    r.allreduce(a.data(), aexp.data(), int(count), Datatype::kLong,
                ReduceOp::kSum);
    std::vector<Request> reqs;
    reqs.push_back(Request{});  // inactive slot must be skipped
    reqs.push_back(r.iallreduce(a.data(), asum.data(), int(count),
                                Datatype::kLong, ReduceOp::kSum));
    reqs.push_back(r.ibarrier());
    int completed = 0;
    while (true) {
      int idx = r.waitany(reqs);
      if (idx < 0) break;
      EXPECT_TRUE(idx == 1 || idx == 2);
      EXPECT_FALSE(reqs[size_t(idx)].valid());
      ++completed;
    }
    EXPECT_EQ(completed, 2);
    ASSERT_EQ(asum, aexp);
  });
}

TEST(IcollRequestApi, TestallDeallocatesAllOrNothing) {
  const i64 count = 512;
  World world(3);
  world.run([&](Rank& r) {
    std::vector<i64> a(static_cast<size_t>(count)), out(static_cast<size_t>(count), -1);
    for (i64 i = 0; i < count; ++i) a[size_t(i)] = gen(r.rank(), i);
    std::vector<Request> reqs;
    reqs.push_back(r.iallreduce(a.data(), out.data(), int(count),
                                Datatype::kLong, ReduceOp::kSum));
    reqs.push_back(r.ibarrier());
    // Poll to completion; incomplete polls must leave every request valid.
    while (!r.testall(reqs)) {
      for (const Request& q : reqs) EXPECT_TRUE(q.valid());
      std::this_thread::yield();
    }
    for (const Request& q : reqs) EXPECT_FALSE(q.valid());
    // All-inactive testall is trivially true.
    EXPECT_TRUE(r.testall(reqs));
  });
}

// A rank blocked in a plain recv must keep progressing its outstanding
// schedules: rank 1 only sends after its own collective completed, which
// needs rank 0's share of the collective to advance while rank 0 blocks.
TEST(IcollProgress, BlockingRecvProgressesOutstandingSchedules) {
  const i64 count = 131072;  // rendezvous-sized: needs multiple rounds
  World world(4, NetworkProfile::zero(),
              coll::forced_tuning(CollOp::kAllreduce, CollAlgo::kRing));
  world.run([&](Rank& r) {
    std::vector<i64> in(static_cast<size_t>(count)), out(static_cast<size_t>(count), -1),
        expect(static_cast<size_t>(count));
    for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
    r.allreduce(in.data(), expect.data(), int(count), Datatype::kLong,
                ReduceOp::kSum);
    Request req = r.iallreduce(in.data(), out.data(), int(count),
                               Datatype::kLong, ReduceOp::kSum);
    i64 token = 42;
    if (r.rank() == 0) {
      i64 got = 0;
      r.recv(&got, 1, Datatype::kLong, 1, 9);  // blocks until 1 finishes
      EXPECT_EQ(got, token);
      r.wait(req);
    } else {
      r.wait(req);
      if (r.rank() == 1) r.send(&token, 1, Datatype::kLong, 0, 9);
    }
    ASSERT_EQ(out, expect);
  });
}

TEST(IcollProgress, ComputeTestOverlapLoopCompletes) {
  const i64 count = 65536;
  World world(8);
  world.run([&](Rank& r) {
    std::vector<i64> in(static_cast<size_t>(count)), out(static_cast<size_t>(count), -1),
        expect(static_cast<size_t>(count));
    for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
    r.allreduce(in.data(), expect.data(), int(count), Datatype::kLong,
                ReduceOp::kSum);
    Request req = r.iallreduce(in.data(), out.data(), int(count),
                               Datatype::kLong, ReduceOp::kSum);
    // The canonical overlap pattern: compute chunks with a progress poll
    // between them, then wait.
    volatile i64 sink = 0;
    while (!r.test(req, nullptr)) {
      for (int i = 0; i < 1000; ++i) sink = sink + i;
      r.progress();
    }
    ASSERT_EQ(out, expect);
  });
}

// A poll loop over pure-p2p requests must still serve this rank's share
// of outstanding collectives: rank 1 sends only after its collective
// completed, which needs rank 0's schedule to advance while rank 0 polls
// nothing but the receive.
TEST(IcollProgress, P2pOnlyPollLoopServesOutstandingSchedules) {
  const i64 count = 131072;  // multi-round rendezvous-sized schedule
  World world(2, NetworkProfile::zero(),
              coll::forced_tuning(CollOp::kAllreduce, CollAlgo::kRing));
  world.run([&](Rank& r) {
    std::vector<i64> in(static_cast<size_t>(count)),
        out(static_cast<size_t>(count), -1), expect(static_cast<size_t>(count));
    for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
    r.allreduce(in.data(), expect.data(), int(count), Datatype::kLong,
                ReduceOp::kSum);
    Request coll = r.iallreduce(in.data(), out.data(), int(count),
                                Datatype::kLong, ReduceOp::kSum);
    i64 token = 7;
    if (r.rank() == 0) {
      i64 got = 0;
      std::vector<Request> only_p2p;
      only_p2p.push_back(r.irecv(&got, 1, Datatype::kLong, 1, 5));
      EXPECT_EQ(r.waitany(only_p2p), 0);
      EXPECT_EQ(got, token);
    } else {
      r.wait(coll);
      r.send(&token, 1, Datatype::kLong, 0, 5);
    }
    r.wait(coll);
    ASSERT_EQ(out, expect);
  });
}

// MPI_Comm_free must let a pending collective on that communicator
// complete (the schedule holds a pointer into the CommData being freed).
TEST(IcollComms, CommFreeDrainsOutstandingSchedules) {
  const i64 count = 8192;
  World world(4);
  world.run([&](Rank& r) {
    Comm dup = r.comm_dup(kCommWorld);
    std::vector<i64> in(static_cast<size_t>(count)),
        out(static_cast<size_t>(count), -1), expect(static_cast<size_t>(count));
    for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
    r.allreduce(in.data(), expect.data(), int(count), Datatype::kLong,
                ReduceOp::kSum, dup);
    Request req = r.iallreduce(in.data(), out.data(), int(count),
                               Datatype::kLong, ReduceOp::kSum, dup);
    r.comm_free(dup);  // must drain, not dangle
    r.wait(req);
    ASSERT_EQ(out, expect);
  });
}

TEST(IcollComms, SplitAndDupCommunicatorsInterleaved) {
  const i64 count = 1024;
  World world(6);
  world.run([&](Rank& r) {
    Comm dup = r.comm_dup(kCommWorld);
    Comm half = r.comm_split(kCommWorld, r.rank() % 2, r.rank());
    std::vector<i64> in(static_cast<size_t>(count)), a(static_cast<size_t>(count), -1),
        b(static_cast<size_t>(count), -1), aexp(static_cast<size_t>(count)), bexp(static_cast<size_t>(count));
    for (i64 i = 0; i < count; ++i) in[size_t(i)] = gen(r.rank(), i);
    r.allreduce(in.data(), aexp.data(), int(count), Datatype::kLong,
                ReduceOp::kSum, dup);
    r.allreduce(in.data(), bexp.data(), int(count), Datatype::kLong,
                ReduceOp::kSum, half);
    // Outstanding schedules on two communicators at once.
    Request ra = r.iallreduce(in.data(), a.data(), int(count),
                              Datatype::kLong, ReduceOp::kSum, dup);
    Request rb = r.iallreduce(in.data(), b.data(), int(count),
                              Datatype::kLong, ReduceOp::kSum, half);
    r.wait(rb);
    r.wait(ra);
    ASSERT_EQ(a, aexp);
    ASSERT_EQ(b, bexp);
    r.comm_free(half);
    r.comm_free(dup);
  });
}

TEST(IcollStress, BackToBackMixedCollectivesStayConsistent) {
  const int kIters = 40;
  World world(8);
  world.run([&](Rank& r) {
    for (int it = 0; it < kIters; ++it) {
      i64 v = gen(r.rank(), it), sum = -1, expect = 0;
      for (int k = 0; k < r.size(); ++k) expect += gen(k, it);
      Request ra = r.iallreduce(&v, &sum, 1, Datatype::kLong, ReduceOp::kSum);
      Request rb = r.ibarrier();
      r.wait(ra);
      r.wait(rb);
      ASSERT_EQ(sum, expect) << "iter " << it;
    }
  });
}

TEST(IcollEnv, WtickIsSane) {
  World world(1);
  world.run([&](Rank& r) {
    EXPECT_GT(r.wtick(), 0.0);
    EXPECT_LT(r.wtick(), 1.0);
  });
}

TEST(IcollCostModel, ChargesWireTimeAsDeadline) {
  // On a profile with real latency, a nonblocking collective initiated and
  // immediately waited must still charge at least one wire cost.
  NetworkProfile p;
  p.name = "test";
  p.latency_ns = 200'000;  // 0.2 ms per message
  World world(2, p);
  world.run([&](Rank& r) {
    i64 v = 1, s = 0;
    u64 t0 = now_ns();
    Request req = r.iallreduce(&v, &s, 1, Datatype::kLong, ReduceOp::kSum);
    r.wait(req);
    u64 elapsed = now_ns() - t0;
    EXPECT_GE(elapsed, u64(200'000)) << "wire deadline not charged";
    EXPECT_EQ(s, 2);
  });
}

}  // namespace
}  // namespace mpiwasm::simmpi
