// Unit tests for the support library: LEB128, SHA-256, statistics.
#include <gtest/gtest.h>

#include "support/byte_buffer.h"
#include "support/sha256.h"
#include "support/stats.h"
#include "support/timing.h"

namespace mpiwasm {
namespace {

TEST(Leb128, UnsignedRoundTrip) {
  for (u32 v : std::vector<u32>{0, 1, 127, 128, 300, 16383, 16384,
                                0x7FFFFFFF, 0xFFFFFFFF}) {
    ByteWriter w;
    w.write_leb_u32(v);
    ByteReader r({w.bytes().data(), w.bytes().size()});
    EXPECT_EQ(r.read_leb_u32(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Leb128, SignedRoundTrip) {
  for (i32 v : std::vector<i32>{0, 1, -1, 63, 64, -64, -65, 127, -128,
                                0x7FFFFFFF, i32(0x80000000)}) {
    ByteWriter w;
    w.write_leb_i32(v);
    ByteReader r({w.bytes().data(), w.bytes().size()});
    EXPECT_EQ(r.read_leb_i32(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Leb128, Signed64RoundTrip) {
  for (i64 v : std::vector<i64>{0, -1, 1LL << 40, -(1LL << 40),
                                INT64_MAX, INT64_MIN}) {
    ByteWriter w;
    w.write_leb_i64(v);
    ByteReader r({w.bytes().data(), w.bytes().size()});
    EXPECT_EQ(r.read_leb_i64(), v);
  }
}

TEST(Leb128, RejectsOverlongU32) {
  // 6-byte continuation chain overflows the 5-byte u32 limit.
  std::vector<u8> bytes{0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  ByteReader r({bytes.data(), bytes.size()});
  EXPECT_THROW(r.read_leb_u32(), DecodeError);
}

TEST(Leb128, RejectsU32HighBitsSet) {
  // 5th byte carries bits >= 2^32.
  std::vector<u8> bytes{0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  ByteReader r({bytes.data(), bytes.size()});
  EXPECT_THROW(r.read_leb_u32(), DecodeError);
}

TEST(ByteReader, BoundsChecked) {
  std::vector<u8> bytes{1, 2, 3};
  ByteReader r({bytes.data(), bytes.size()});
  r.skip(2);
  EXPECT_EQ(r.read_u8(), 3);
  EXPECT_THROW(r.read_u8(), DecodeError);
  EXPECT_THROW(r.read_u32_le(), DecodeError);
}

TEST(ByteWriter, Patching) {
  ByteWriter w;
  size_t at = w.reserve_leb_u32();
  w.write_u8(0xAA);
  w.patch_leb_u32_fixed5(at, 1234567);
  ByteReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_EQ(r.read_leb_u32(), 1234567u);
  EXPECT_EQ(r.read_u8(), 0xAA);
}

TEST(Sha256, KnownVectors) {
  // Empty string.
  EXPECT_EQ(sha256({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  // "abc".
  const char* abc = "abc";
  EXPECT_EQ(sha256({reinterpret_cast<const u8*>(abc), 3}).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::vector<u8> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = u8(i * 7);
  Sha256 h;
  h.update({data.data(), 13});
  h.update({data.data() + 13, 400});
  h.update({data.data() + 413, data.size() - 413});
  EXPECT_EQ(h.finish().hex(), sha256({data.data(), data.size()}).hex());
}

TEST(Sha256, MultiBlockBoundary) {
  // Exactly 64 bytes forces a full-block + padding-only-block path.
  std::vector<u8> data(64, 0x61);  // "aaaa..."
  EXPECT_EQ(sha256({data.data(), data.size()}).hex(),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Stats, RunningStat) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({2.0, 0.0}), 0.0);  // non-positive -> 0
}

TEST(Stats, GmSlowdownMatchesPaperConvention) {
  // Wasm 5% slower at every size: ratios native/wasm = 1/1.05.
  std::vector<double> ratios(10, 1.0 / 1.05);
  EXPECT_NEAR(gm_slowdown_from_time_ratios(ratios), 0.0476, 1e-3);
}

TEST(Stats, GmSpeedup) {
  std::vector<double> base{4.0, 4.0}, subj{1.0, 4.0};
  EXPECT_DOUBLE_EQ(gm_speedup(base, subj), 2.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
}

TEST(Timing, SpinForApproximatesTarget) {
  Stopwatch sw;
  spin_for_ns(200'000);  // 200us
  EXPECT_GE(sw.elapsed_ns(), 200'000u);
}

}  // namespace
}  // namespace mpiwasm
