// Toolchain kernel tests: every generated benchmark module validates,
// runs at small scale through the embedder, and agrees with its native
// twin on correctness-relevant outputs (checksums, verification flags).
#include "testlib.h"

#include <filesystem>

#include "benchlib/harness.h"
#include "embedder/embedder.h"
#include "toolchain/kernels.h"
#include "toolchain/native_kernels.h"

namespace mpiwasm::test {
namespace {

namespace fs = std::filesystem;
using bench::ReportCollector;
using embed::Embedder;
using embed::EmbedderConfig;
using namespace toolchain;

std::vector<bench::ReportRow> run_kernel(const std::vector<u8>& bytes,
                                         int ranks,
                                         EmbedderConfig cfg = {}) {
  ReportCollector collector;
  cfg.extra_imports = collector.hook();
  Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, ranks);
  EXPECT_EQ(result.exit_code, 0);
  return collector.rows();
}

TEST(KernelImb, EveryRoutineBuildsAndRuns) {
  for (ImbRoutine r :
       {ImbRoutine::kPingPong, ImbRoutine::kSendRecv, ImbRoutine::kBcast,
        ImbRoutine::kAllReduce, ImbRoutine::kAllGather, ImbRoutine::kAlltoall,
        ImbRoutine::kReduce, ImbRoutine::kGather, ImbRoutine::kScatter}) {
    ImbParams p;
    p.routine = r;
    p.max_bytes = 1 << 10;
    p.base_iters = 1 << 11;
    p.max_iters = 8;
    auto bytes = build_imb_module(p);
    auto rows = run_kernel(bytes, 2);
    // One report per message size (1..1024 = 11 sizes), from rank 0 only.
    EXPECT_EQ(rows.size(), 11u) << imb_routine_name(r);
    for (const auto& row : rows) {
      EXPECT_GT(row.b, 0.0) << "t_avg_us must be positive";
    }
  }
}

TEST(KernelImb, ItersScaleDownWithSize) {
  ImbParams p;
  EXPECT_GT(imb_iters_for(p, 1), imb_iters_for(p, 1 << 20));
  EXPECT_GE(imb_iters_for(p, 1 << 22), p.min_iters);
  EXPECT_LE(imb_iters_for(p, 1), p.max_iters);
}

TEST(KernelHpcg, WasmMatchesNativeResidualAcrossRankCounts) {
  // Both kernel builds: the scalar loops, and the f64x2 SIMD twin whose
  // native counterpart mirrors the two-lane dot accumulation — residuals
  // must stay bit-exact either way.
  for (bool simd : {false, true}) {
    HpcgParams p;
    p.n_per_rank = 256;
    p.iterations = 8;
    p.use_simd = simd;
    auto bytes = build_hpcg_module(p);
    for (int ranks : {1, 2, 4}) {
      auto rows = run_kernel(bytes, ranks);
      ASSERT_EQ(rows.size(), 1u);
      f64 wasm_residual = rows[0].c;

      f64 native_residual = -1;
      simmpi::World world(ranks);
      world.run([&](simmpi::Rank& r) {
        auto res = native_hpcg_run(r, p);
        if (r.rank() == 0) native_residual = res.residual;
      });
      EXPECT_EQ(wasm_residual, native_residual)
          << "ranks=" << ranks << " simd=" << simd;
    }
  }
}

TEST(KernelIs, VerifiesAndMatchesNativeAcrossRankCounts) {
  IsParams p;
  p.keys_per_rank = 1 << 10;
  p.repetitions = 2;
  auto bytes = build_is_module(p);
  for (int ranks : {1, 2, 4, 5}) {
    auto rows = run_kernel(bytes, ranks);
    ASSERT_EQ(rows.size(), 1u) << "ranks=" << ranks;
    EXPECT_EQ(rows[0].b, 1.0) << "IS verification failed at ranks=" << ranks;

    simmpi::World world(ranks);
    world.run([&](simmpi::Rank& r) {
      auto res = native_is_run(r, p);
      if (r.rank() == 0) EXPECT_TRUE(res.ok);
    });
  }
}

TEST(KernelDt, ChecksumsMatchNativeForAllTopologies) {
  for (DtTopology topo :
       {DtTopology::kBlackHole, DtTopology::kWhiteHole, DtTopology::kShuffle}) {
    DtParams p;
    p.topology = topo;
    p.doubles_per_msg = 1 << 8;
    p.repetitions = 3;
    p.use_simd = false;
    auto scalar = build_dt_module(p);
    p.use_simd = true;
    auto simd = build_dt_module(p);

    auto rows_scalar = run_kernel(scalar, 4);
    auto rows_simd = run_kernel(simd, 4);
    ASSERT_EQ(rows_scalar.size(), 1u);
    ASSERT_EQ(rows_simd.size(), 1u);

    f64 native_checksum = 0;
    simmpi::World world(4);
    world.run([&](simmpi::Rank& r) {
      auto res = native_dt_run(r, p);
      if (r.rank() == 0) native_checksum = res.checksum;
    });

    // Same combine arithmetic => identical checksums in all three builds.
    EXPECT_EQ(rows_scalar[0].b, native_checksum)
        << dt_topology_name(topo) << " scalar";
    EXPECT_EQ(rows_simd[0].b, native_checksum)
        << dt_topology_name(topo) << " simd";
  }
}

TEST(KernelIor, WritesAndReadsThroughSandbox) {
  auto dir = fs::temp_directory_path() /
             ("mpiwasm-ior-test-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  IorParams p;
  p.block_bytes = 1 << 14;
  p.blocks = 4;
  p.repetitions = 2;
  auto bytes = build_ior_module(p);

  EmbedderConfig cfg;
  cfg.preopens = {{dir.string(), "data", false}};
  auto rows = run_kernel(bytes, 2, cfg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].a, 0.0) << "write bandwidth";
  EXPECT_GT(rows[0].b, 0.0) << "read bandwidth";
  // Files must exist with the right size (blocks * block_bytes).
  for (char c : {'A', 'B'}) {
    fs::path file = dir / (std::string("r") + c + ".dat");
    ASSERT_TRUE(fs::exists(file)) << file;
    EXPECT_EQ(fs::file_size(file), u64(p.blocks) * p.block_bytes);
  }
  fs::remove_all(dir);
}

TEST(KernelIor, FailsLoudlyWithoutPreopen) {
  IorParams p;
  p.block_bytes = 1 << 12;
  p.blocks = 1;
  p.repetitions = 1;
  auto bytes = build_ior_module(p);
  ReportCollector collector;
  EmbedderConfig cfg;
  cfg.extra_imports = collector.hook();
  Embedder emb(cfg);
  auto result = emb.run_world({bytes.data(), bytes.size()}, 1);
  EXPECT_EQ(result.exit_code, 90);  // kernel's path_open failure exit
}

TEST(KernelDatatypeProbe, CoversAllDatatypesAndSizes) {
  DatatypePingPongParams p;
  p.max_bytes = 1 << 9;  // 8 and 64 and 512
  p.iters_per_size = 2;
  auto bytes = build_datatype_pingpong_module(p);
  auto rows = run_kernel(bytes, 2);
  // sizes {8, 64, 512} x 6 datatypes = 18 completion reports.
  EXPECT_EQ(rows.size(), 18u);
}

TEST(KernelTiers, HpcgIdenticalAcrossTiers) {
  HpcgParams p;
  p.n_per_rank = 128;
  p.iterations = 5;
  auto bytes = build_hpcg_module(p);
  std::vector<f64> residuals;
  for (EngineTier tier : all_tiers()) {
    EmbedderConfig cfg;
    cfg.engine.tier = tier;
    auto rows = run_kernel(bytes, 2, cfg);
    ASSERT_EQ(rows.size(), 1u);
    residuals.push_back(rows[0].c);
  }
  EXPECT_EQ(residuals[0], residuals[1]);
  EXPECT_EQ(residuals[0], residuals[2]);
}

}  // namespace
}  // namespace mpiwasm::test
