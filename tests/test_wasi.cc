// WASI layer tests: argument/environ marshalling, fd I/O, and above all
// the §3.4 sandbox guarantees (virtual directory tree, read-only mounts,
// path-escape rejection, no host-path leakage).
#include "testlib.h"

#include <filesystem>
#include <fstream>

#include "wasi/wasi.h"

namespace mpiwasm::test {
namespace {

namespace fs = std::filesystem;
using wasi::Preopen;
using wasi::VirtualFs;

std::string make_temp_dir(const std::string& tag) {
  auto dir = fs::temp_directory_path() /
             ("mpiwasm-wasi-" + tag + "-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// --- VirtualFs sandbox unit tests ------------------------------------------

TEST(VirtualFs, ResolvesInsidePreopen) {
  auto dir = make_temp_dir("resolve");
  VirtualFs vfs({{dir, "data", false}});
  auto p = vfs.resolve(VirtualFs::kFirstPreopenFd, "a/b.txt");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, dir + "/a/b.txt");
  fs::remove_all(dir);
}

TEST(VirtualFs, RejectsAbsolutePaths) {
  auto dir = make_temp_dir("abs");
  VirtualFs vfs({{dir, "data", false}});
  EXPECT_FALSE(vfs.resolve(VirtualFs::kFirstPreopenFd, "/etc/passwd").has_value());
  fs::remove_all(dir);
}

TEST(VirtualFs, RejectsDotDotEscape) {
  auto dir = make_temp_dir("escape");
  VirtualFs vfs({{dir, "data", false}});
  EXPECT_FALSE(vfs.resolve(VirtualFs::kFirstPreopenFd, "../secret").has_value());
  EXPECT_FALSE(
      vfs.resolve(VirtualFs::kFirstPreopenFd, "a/../../secret").has_value());
  // Interior .. that stays inside the root is fine.
  auto ok = vfs.resolve(VirtualFs::kFirstPreopenFd, "a/../b.txt");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, dir + "/b.txt");
  fs::remove_all(dir);
}

TEST(VirtualFs, PreopenNameHidesHostPath) {
  auto dir = make_temp_dir("hide");
  VirtualFs vfs({{dir, "results", false}});
  auto name = vfs.preopen_name(VirtualFs::kFirstPreopenFd);
  ASSERT_TRUE(name.has_value());
  // The module sees "/results", never the host path (paper §3.4: the full
  // absolute path would leak e.g. a username).
  EXPECT_EQ(*name, "/results");
  EXPECT_EQ(name->find(dir), std::string::npos);
  fs::remove_all(dir);
}

TEST(VirtualFs, ReadOnlyMountRefusesWrites) {
  auto dir = make_temp_dir("ro");
  {
    std::ofstream f(dir + "/x.txt");
    f << "content";
  }
  VirtualFs vfs({{dir, "data", true}});
  wasi::OpenFlags wr;
  wr.write = true;
  wr.create = true;
  auto res = vfs.open(VirtualFs::kFirstPreopenFd, "new.txt", wr);
  EXPECT_EQ(res.err, wasi::kNotcapable);
  wasi::OpenFlags rd;
  rd.read = true;
  auto res2 = vfs.open(VirtualFs::kFirstPreopenFd, "x.txt", rd);
  EXPECT_EQ(res2.err, wasi::kSuccess);
  // Write through a read-mounted file fd must fail too.
  u8 b = 0;
  EXPECT_EQ(vfs.write(res2.fd, &b, 1).err, wasi::kNotcapable);
  vfs.close(res2.fd);
  fs::remove_all(dir);
}

TEST(VirtualFs, FileIoRoundTrip) {
  auto dir = make_temp_dir("io");
  VirtualFs vfs({{dir, "data", false}});
  wasi::OpenFlags wr;
  wr.write = true;
  wr.create = true;
  auto res = vfs.open(VirtualFs::kFirstPreopenFd, "f.bin", wr);
  ASSERT_EQ(res.err, wasi::kSuccess);
  std::vector<u8> payload{1, 2, 3, 4, 5};
  EXPECT_EQ(vfs.write(res.fd, payload.data(), payload.size()).bytes, 5u);
  EXPECT_EQ(vfs.close(res.fd), wasi::kSuccess);

  wasi::OpenFlags rd;
  rd.read = true;
  auto res2 = vfs.open(VirtualFs::kFirstPreopenFd, "f.bin", rd);
  ASSERT_EQ(res2.err, wasi::kSuccess);
  std::vector<u8> got(5);
  EXPECT_EQ(vfs.read(res2.fd, got.data(), 5).bytes, 5u);
  EXPECT_EQ(got, payload);
  // Seek back and re-read a suffix.
  auto sk = vfs.seek(res2.fd, 3, 0);
  EXPECT_EQ(sk.err, wasi::kSuccess);
  EXPECT_EQ(sk.pos, 3u);
  EXPECT_EQ(vfs.read(res2.fd, got.data(), 2).bytes, 2u);
  EXPECT_EQ(got[0], 4);
  vfs.close(res2.fd);
  fs::remove_all(dir);
}

TEST(VirtualFs, BadFdErrors) {
  VirtualFs vfs({});
  u8 b = 0;
  EXPECT_EQ(vfs.read(99, &b, 1).err, wasi::kBadf);
  EXPECT_EQ(vfs.write(99, &b, 1).err, wasi::kBadf);
  EXPECT_EQ(vfs.close(99), wasi::kBadf);
  EXPECT_EQ(vfs.seek(99, 0, 0).err, wasi::kBadf);
  wasi::OpenFlags rd;
  rd.read = true;
  EXPECT_EQ(vfs.open(7, "x", rd).err, wasi::kBadf);
}

// --- End-to-end WASI through the runtime ------------------------------------

struct WasiModuleRun {
  std::string stdout_text;
  i32 exit_code = 0;
};

WasiModuleRun run_wasi_module(const std::vector<u8>& bytes,
                              wasi::WasiConfig cfg, EngineTier tier,
                              std::vector<Value> args = {}) {
  WasiModuleRun out;
  cfg.stdout_sink = [&](std::string_view s) { out.stdout_text += s; };
  wasi::WasiEnv env(std::move(cfg));
  rt::ImportTable imports;
  env.register_imports(imports);
  auto inst = [&] {
    EngineConfig ec;
    ec.tier = tier;
    auto cm = rt::compile({bytes.data(), bytes.size()}, ec);
    return std::make_shared<rt::Instance>(cm, imports);
  }();
  try {
    inst->invoke("_start", args);
  } catch (const rt::ProcExit& e) {
    out.exit_code = e.code();
  }
  return out;
}

TEST(WasiEndToEnd, FdWriteToStdout) {
  ModuleBuilder b;
  u32 fd_write = b.import_func(
      "wasi_snapshot_preview1", "fd_write",
      {{I32, I32, I32, I32}, {I32}});
  b.add_memory(1);
  b.export_memory();
  b.add_data_string(64, "wasm says hi\n");
  auto& f = b.begin_func({{}, {}}, "_start");
  f.i32_const(32);
  f.i32_const(64);
  f.mem_op(Op::kI32Store);
  f.i32_const(36);
  f.i32_const(13);
  f.mem_op(Op::kI32Store);
  f.i32_const(1);
  f.i32_const(32);
  f.i32_const(1);
  f.i32_const(48);
  f.call(fd_write);
  f.op(Op::kDrop);
  f.end();
  auto run = run_wasi_module(b.build(), {}, EngineTier::kOptimizing);
  EXPECT_EQ(run.stdout_text, "wasm says hi\n");
}

TEST(WasiEndToEnd, ArgsRoundTrip) {
  // Module reads argc via args_sizes_get and exits with it.
  ModuleBuilder b;
  u32 sizes = b.import_func("wasi_snapshot_preview1", "args_sizes_get",
                            {{I32, I32}, {I32}});
  u32 proc_exit =
      b.import_func("wasi_snapshot_preview1", "proc_exit", {{I32}, {}});
  b.add_memory(1);
  b.export_memory();
  auto& f = b.begin_func({{}, {}}, "_start");
  f.i32_const(16);
  f.i32_const(20);
  f.call(sizes);
  f.op(Op::kDrop);
  f.i32_const(16);
  f.mem_op(Op::kI32Load);
  f.call(proc_exit);
  f.end();
  wasi::WasiConfig cfg;
  cfg.args = {"prog", "alpha", "beta"};
  auto run = run_wasi_module(b.build(), cfg, EngineTier::kBaseline);
  EXPECT_EQ(run.exit_code, 3);
}

TEST(WasiEndToEnd, ClockIsMonotonic) {
  ModuleBuilder b;
  u32 clock = b.import_func("wasi_snapshot_preview1", "clock_time_get",
                            {{I32, ValType::kI64, I32}, {I32}});
  b.add_memory(1);
  b.export_memory();
  auto& f = b.begin_func({{}, {I32}}, "probe");
  f.i32_const(1);  // monotonic
  f.i64_const(0);
  f.i32_const(16);
  f.call(clock);
  f.op(Op::kDrop);
  f.i32_const(16);
  f.mem_op(Op::kI64Load);
  f.i32_const(1);
  f.i64_const(0);
  f.i32_const(24);
  f.call(clock);
  f.op(Op::kDrop);
  f.i32_const(24);
  f.mem_op(Op::kI64Load);
  f.op(Op::kI64LeU);  // t0 <= t1
  f.end();
  auto bytes = b.build();
  wasi::WasiEnv env{wasi::WasiConfig{}};
  rt::ImportTable imports;
  env.register_imports(imports);
  EngineConfig ec;
  auto cm = rt::compile({bytes.data(), bytes.size()}, ec);
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("probe").as_i32(), 1);
}

TEST(WasiEndToEnd, RandomGetIsDeterministicWithSeed) {
  ModuleBuilder b;
  u32 rnd = b.import_func("wasi_snapshot_preview1", "random_get",
                          {{I32, I32}, {I32}});
  b.add_memory(1);
  b.export_memory();
  auto& f = b.begin_func({{}, {ValType::kI64}}, "draw");
  f.i32_const(16);
  f.i32_const(8);
  f.call(rnd);
  f.op(Op::kDrop);
  f.i32_const(16);
  f.mem_op(Op::kI64Load);
  f.end();
  auto bytes = b.build();

  auto draw = [&](u64 seed) {
    wasi::WasiConfig cfg;
    cfg.random_seed = seed;
    wasi::WasiEnv env(std::move(cfg));
    rt::ImportTable imports;
    env.register_imports(imports);
    EngineConfig ec;
    auto cm = rt::compile({bytes.data(), bytes.size()}, ec);
    rt::Instance inst(cm, imports);
    return inst.invoke("draw").as_i64();
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));
}

TEST(WasiEndToEnd, ProcExitCodePropagates) {
  ModuleBuilder b;
  u32 proc_exit =
      b.import_func("wasi_snapshot_preview1", "proc_exit", {{I32}, {}});
  auto& f = b.begin_func({{}, {}}, "_start");
  f.i32_const(42);
  f.call(proc_exit);
  f.end();
  auto run = run_wasi_module(b.build(), {}, EngineTier::kInterp);
  EXPECT_EQ(run.exit_code, 42);
}

}  // namespace
}  // namespace mpiwasm::test
