// Guest-concurrency battery: the threaded kernel twins (worker-pool epoch
// barrier over 0xFE atomics + wasi thread-spawn) must be bit-exact against
// the host references at every thread count and tier, and simmpi must
// survive MPI_THREAD_MULTIPLE-style concurrent callers on one rank.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "embedder/threads_host.h"
#include "simmpi/world.h"
#include "testlib.h"
#include "toolchain/kernels.h"

namespace mpiwasm::test {
namespace {

using toolchain::MicroKernel;

/// init → run(reps) → shutdown → join, with the guest workers joined
/// before the instance is destroyed.
f64 run_threaded(const std::vector<u8>& bytes, const EngineConfig& cfg,
                 i32 reps) {
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  embed::GuestThreads guests;  // no MPI rank: pure-engine module
  rt::ImportTable imports;
  guests.register_imports(imports);
  rt::Instance inst(cm, imports);
  EXPECT_EQ(inst.invoke("init").as_i32(), 0) << "guest thread spawn failed";
  Value arg = Value::from_i32(reps);
  f64 result = inst.invoke("run", {&arg, 1}).as_f64();
  inst.invoke("shutdown");
  guests.join_all();
  return result;
}

std::vector<EngineConfig> interp_and_jit() {
  EngineConfig interp;
  interp.tier = EngineTier::kInterp;
  EngineConfig jit;
  jit.tier = EngineTier::kJit;
  return {interp, jit};
}

class ThreadedKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!rt::threads_enabled_from_env())
      GTEST_SKIP() << "MPIWASM_THREADS=0";
  }
};

TEST_F(ThreadedKernelTest, MicroKernelsBitExactAcrossThreadCounts) {
  for (MicroKernel k : {MicroKernel::kDaxpy, MicroKernel::kStencil3}) {
    toolchain::MicroKernelParams mp;
    mp.kernel = k;
    mp.n = 1024;
    const i32 reps = 3;
    const f64 ref = toolchain::micro_kernel_reference(mp, u32(reps));
    toolchain::ThreadedKernelParams tp;
    tp.kernel = k;
    tp.n = mp.n;
    for (const EngineConfig& cfg : interp_and_jit()) {
      for (u32 nt : {1u, 2u, 4u}) {
        tp.nthreads = nt;
        EXPECT_EQ(run_threaded(toolchain::build_threaded_micro_kernel_module(
                                   tp),
                               cfg, reps),
                  ref)
            << toolchain::micro_kernel_name(k) << " nthreads=" << nt
            << " tier=" << config_label(cfg);
      }
    }
  }
}

TEST_F(ThreadedKernelTest, DaxpyAgreesUnderEveryEngineConfig) {
  toolchain::MicroKernelParams mp;
  mp.kernel = MicroKernel::kDaxpy;
  mp.n = 512;
  const i32 reps = 2;
  const f64 ref = toolchain::micro_kernel_reference(mp, u32(reps));
  toolchain::ThreadedKernelParams tp;
  tp.kernel = MicroKernel::kDaxpy;
  tp.n = mp.n;
  tp.nthreads = 2;
  auto bytes = toolchain::build_threaded_micro_kernel_module(tp);
  for (const EngineConfig& cfg : all_engine_configs()) {
    EXPECT_EQ(run_threaded(bytes, cfg, reps), ref)
        << "config " << config_label(cfg);
  }
}

TEST_F(ThreadedKernelTest, CgResidualIsThreadCountInvariant) {
  toolchain::ThreadedCgParams p;
  p.n = 512;
  const i32 iters = 6;
  const f64 ref = toolchain::threaded_cg_reference(p, u32(iters));
  for (const EngineConfig& cfg : interp_and_jit()) {
    for (u32 nt : {1u, 2u, 4u}) {
      p.nthreads = nt;
      EXPECT_EQ(run_threaded(toolchain::build_threaded_cg_module(p), cfg,
                             iters),
                ref)
          << "cg nthreads=" << nt << " tier=" << config_label(cfg)
          << " (residual must be bit-identical: fixed dot-partial blocks)";
    }
  }
}

// ---------------------------------------------------------------------------
// simmpi under MPI_THREAD_MULTIPLE-style concurrency: multiple host
// threads drive p2p and collectives on the SAME rank. Regression for the
// request/mailbox wakeup races fixed alongside the threads work.
// ---------------------------------------------------------------------------

using simmpi::Comm;
using simmpi::Datatype;
using simmpi::Rank;
using simmpi::ReduceOp;
using simmpi::World;

TEST(SimMpiThreaded, ConcurrentSameRankPingPong) {
  World world(2);
  world.set_threaded();
  world.run([](Rank& r) {
    constexpr int kThreads = 3, kMsgs = 20;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&r, t] {
        for (int i = 0; i < kMsgs; ++i) {
          const int tag = t * 1000 + i;
          if (r.rank() == 0) {
            int v = tag;
            r.send(&v, 1, Datatype::kInt, 1, tag);
            int back = -1;
            r.recv(&back, 1, Datatype::kInt, 1, tag);
            EXPECT_EQ(back, tag + 7);
          } else {
            int v = -1;
            r.recv(&v, 1, Datatype::kInt, 0, tag);
            EXPECT_EQ(v, tag);
            v += 7;
            r.send(&v, 1, Datatype::kInt, 0, tag);
          }
        }
      });
    }
    for (auto& t : ts) t.join();
  });
}

TEST(SimMpiThreaded, ConcurrentNonblockingSameRank) {
  World world(2);
  world.set_threaded();
  world.run([](Rank& r) {
    constexpr int kThreads = 2, kMsgs = 15;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&r, t] {
        for (int i = 0; i < kMsgs; ++i) {
          const int tag = 5000 + t * 100 + i;
          int out = tag, in = -1;
          const int peer = 1 - r.rank();
          simmpi::Request sreq =
              r.isend(&out, 1, Datatype::kInt, peer, tag);
          simmpi::Request rreq = r.irecv(&in, 1, Datatype::kInt, peer, tag);
          r.wait(rreq);
          r.wait(sreq);
          EXPECT_EQ(in, tag);
        }
      });
    }
    for (auto& t : ts) t.join();
  });
}

TEST(SimMpiThreaded, ConcurrentCollectivesOnDistinctComms) {
  World world(2);
  world.set_threaded();
  world.run([](Rank& r) {
    // comm_dup is collective, so the dups happen on the rank thread in a
    // fixed order; the concurrency is the per-comm collective traffic.
    Comm c1 = r.comm_dup(simmpi::kCommWorld);
    Comm c2 = r.comm_dup(simmpi::kCommWorld);
    std::thread t1([&] {
      for (int i = 0; i < 10; ++i) {
        int v = r.rank() + 1, s = 0;
        r.allreduce(&v, &s, 1, Datatype::kInt, ReduceOp::kSum, c1);
        EXPECT_EQ(s, 3);
      }
    });
    std::thread t2([&] {
      for (int i = 0; i < 10; ++i) {
        int v = (r.rank() + 1) * 10, m = 0;
        r.allreduce(&v, &m, 1, Datatype::kInt, ReduceOp::kMax, c2);
        EXPECT_EQ(m, 20);
      }
    });
    t1.join();
    t2.join();
    r.comm_free(c1);
    r.comm_free(c2);
  });
}

}  // namespace
}  // namespace mpiwasm::test
