// FileSystemCache tests: serialization round-trip, hit/miss behaviour,
// hash-keyed invalidation, corrupt-entry recovery (paper §3.3 semantics).
#include "testlib.h"

#include <filesystem>
#include <fstream>

#include "runtime/cache.h"

namespace mpiwasm::test {
namespace {

namespace fs = std::filesystem;
using rt::FileSystemCache;

std::string fresh_cache_dir() {
  static int counter = 0;
  auto dir = fs::temp_directory_path() /
             ("mpiwasm-test-cache-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter++));
  fs::create_directories(dir);
  return dir.string();
}

std::vector<u8> make_module(i32 magic) {
  return build_single_func({{}, {I32}}, [&](auto& f) {
    f.i32_const(magic);
    f.end();
  }, 0);
}

TEST(Cache, SerializationRoundTrip) {
  auto bytes = make_module(1234);
  EngineConfig cfg;
  cfg.tier = EngineTier::kOptimizing;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  auto blob = rt::serialize_regcode(cm->regcode);
  auto rm = rt::deserialize_regcode({blob.data(), blob.size()});
  ASSERT_TRUE(rm.has_value());
  ASSERT_EQ(rm->funcs.size(), cm->regcode.funcs.size());
  for (size_t i = 0; i < rm->funcs.size(); ++i) {
    const auto& a = rm->funcs[i];
    const auto& b = cm->regcode.funcs[i];
    ASSERT_EQ(a.code.size(), b.code.size());
    for (size_t j = 0; j < a.code.size(); ++j) {
      EXPECT_EQ(u16(a.code[j].op), u16(b.code[j].op));
      EXPECT_EQ(a.code[j].imm, b.code[j].imm);
    }
  }
}

TEST(Cache, DeserializeRejectsGarbage) {
  std::vector<u8> garbage{1, 2, 3, 4, 5};
  EXPECT_FALSE(rt::deserialize_regcode({garbage.data(), garbage.size()}).has_value());
  std::vector<u8> empty;
  EXPECT_FALSE(rt::deserialize_regcode({empty.data(), empty.size()}).has_value());
}

TEST(Cache, SecondCompileHitsCache) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(42);
  EngineConfig cfg;
  cfg.tier = EngineTier::kOptimizing;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;

  auto cold = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(cold->loaded_from_cache);
  auto warm = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_TRUE(warm->loaded_from_cache);

  // Cached module still executes correctly.
  rt::ImportTable imports;
  rt::Instance inst(warm, imports);
  EXPECT_EQ(inst.invoke("run").as_i32(), 42);
  fs::remove_all(dir);
}

TEST(Cache, DifferentModulesGetDifferentEntries) {
  auto dir = fresh_cache_dir();
  EngineConfig cfg;
  cfg.tier = EngineTier::kBaseline;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;

  auto a = make_module(1);
  auto b = make_module(2);
  auto ca = rt::compile({a.data(), a.size()}, cfg);
  auto cb = rt::compile({b.data(), b.size()}, cfg);
  EXPECT_FALSE(cb->loaded_from_cache) << "different bytes must not hit";
  EXPECT_NE(ca->hash.hex(), cb->hash.hex());
  fs::remove_all(dir);
}

TEST(Cache, TiersAreCachedSeparately) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(7);
  EngineConfig cfg;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;

  cfg.tier = EngineTier::kBaseline;
  rt::compile({bytes.data(), bytes.size()}, cfg);
  cfg.tier = EngineTier::kOptimizing;
  auto opt = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(opt->loaded_from_cache)
      << "baseline cache entry must not satisfy optimizing tier";
  fs::remove_all(dir);
}

TEST(Cache, CorruptEntryIsIgnoredAndRemoved) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(9);
  EngineConfig cfg;
  cfg.tier = EngineTier::kOptimizing;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  rt::compile({bytes.data(), bytes.size()}, cfg);

  // Corrupt every cache entry.
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "corruption";
  }
  auto again = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(again->loaded_from_cache);
  rt::ImportTable imports;
  rt::Instance inst(again, imports);
  EXPECT_EQ(inst.invoke("run").as_i32(), 9);
  fs::remove_all(dir);
}

TEST(Cache, ClearRemovesEntries) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(11);
  EngineConfig cfg;
  cfg.tier = EngineTier::kBaseline;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  rt::compile({bytes.data(), bytes.size()}, cfg);
  FileSystemCache cache(dir);
  cache.clear();
  auto again = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(again->loaded_from_cache);
  fs::remove_all(dir);
}

TEST(Cache, InterpTierSkipsCache) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(5);
  EngineConfig cfg;
  cfg.tier = EngineTier::kInterp;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(cm->loaded_from_cache);
  // No .rcache files written for the interpreter tier.
  size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".rcache") ++entries;
  EXPECT_EQ(entries, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mpiwasm::test
