// FileSystemCache tests: serialization round-trip, hit/miss behaviour,
// hash-keyed invalidation, corrupt-entry recovery (paper §3.3 semantics).
#include "testlib.h"

#include <filesystem>
#include <fstream>

#include "runtime/cache.h"

namespace mpiwasm::test {
namespace {

namespace fs = std::filesystem;
using rt::FileSystemCache;

std::string fresh_cache_dir() {
  static int counter = 0;
  auto dir = fs::temp_directory_path() /
             ("mpiwasm-test-cache-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter++));
  fs::create_directories(dir);
  return dir.string();
}

std::vector<u8> make_module(i32 magic) {
  return build_single_func({{}, {I32}}, [&](auto& f) {
    f.i32_const(magic);
    f.end();
  }, 0);
}

TEST(Cache, SerializationRoundTrip) {
  auto bytes = make_module(1234);
  EngineConfig cfg;
  cfg.tier = EngineTier::kOptimizing;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  auto blob = rt::serialize_regcode(cm->regcode);
  auto rm = rt::deserialize_regcode({blob.data(), blob.size()});
  ASSERT_TRUE(rm.has_value());
  ASSERT_EQ(rm->funcs.size(), cm->regcode.funcs.size());
  for (size_t i = 0; i < rm->funcs.size(); ++i) {
    const auto& a = rm->funcs[i];
    const auto& b = cm->regcode.funcs[i];
    ASSERT_EQ(a.code.size(), b.code.size());
    for (size_t j = 0; j < a.code.size(); ++j) {
      EXPECT_EQ(u16(a.code[j].op), u16(b.code[j].op));
      EXPECT_EQ(a.code[j].imm, b.code[j].imm);
    }
  }
}

TEST(Cache, DeserializeRejectsGarbage) {
  std::vector<u8> garbage{1, 2, 3, 4, 5};
  EXPECT_FALSE(rt::deserialize_regcode({garbage.data(), garbage.size()}).has_value());
  std::vector<u8> empty;
  EXPECT_FALSE(rt::deserialize_regcode({empty.data(), empty.size()}).has_value());
}

TEST(Cache, EmptyModuleRoundTrips) {
  rt::RModule rm;  // module with zero defined functions
  auto blob = rt::serialize_regcode(rm);
  auto back = rt::deserialize_regcode({blob.data(), blob.size()});
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->funcs.empty());
}

TEST(Cache, EmptyPoolsRoundTrip) {
  // A function with code but empty v128/br pools keeps its exact shape.
  rt::RFunc f;
  f.num_params = 1;
  f.num_locals = 2;
  f.num_regs = 5;
  f.has_result = true;
  f.code.push_back({rt::ROp::kConst, 0, 0, 0, 0, 7});
  f.code.push_back({rt::ROp::kReturn, 0, 0, 0, 0, 0});
  ASSERT_TRUE(f.v128_pool.empty());
  ASSERT_TRUE(f.br_pool.empty());
  auto blob = rt::serialize_rfunc(f);
  auto back = rt::deserialize_rfunc({blob.data(), blob.size()});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_params, f.num_params);
  EXPECT_EQ(back->num_locals, f.num_locals);
  EXPECT_EQ(back->num_regs, f.num_regs);
  EXPECT_EQ(back->has_result, f.has_result);
  ASSERT_EQ(back->code.size(), f.code.size());
  for (size_t i = 0; i < f.code.size(); ++i) {
    EXPECT_EQ(u16(back->code[i].op), u16(f.code[i].op));
    EXPECT_EQ(back->code[i].imm, f.code[i].imm);
  }
  EXPECT_TRUE(back->v128_pool.empty());
  EXPECT_TRUE(back->br_pool.empty());
}

TEST(Cache, TruncatedBlobIsRejected) {
  auto bytes = make_module(77);
  EngineConfig cfg;
  cfg.tier = EngineTier::kOptimizing;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  auto blob = rt::serialize_regcode(cm->regcode);
  // Every strict prefix must be rejected, never crash or mis-parse.
  for (size_t cut : {size_t(0), size_t(3), size_t(7), size_t(8),
                     blob.size() / 2, blob.size() - 1}) {
    EXPECT_FALSE(rt::deserialize_regcode({blob.data(), cut}).has_value())
        << "prefix of " << cut << " bytes";
  }
  // Trailing junk is also rejected (entry must parse exactly).
  auto extended = blob;
  extended.push_back(0);
  EXPECT_FALSE(
      rt::deserialize_regcode({extended.data(), extended.size()}).has_value());
}

TEST(Cache, HugeFunctionCountIsRejectedNotAllocated) {
  // A corrupt count must be a clean miss, not a multi-GB resize.
  rt::RModule empty_rm;
  auto blob = rt::serialize_regcode(empty_rm);
  blob.resize(8);  // keep magic + version only
  for (int k = 0; k < 5; ++k) blob.push_back(0xFF);  // LEB ~ 2^32
  blob.back() = 0x0F;
  EXPECT_FALSE(rt::deserialize_regcode({blob.data(), blob.size()}).has_value());
}

TEST(Cache, ZeroByteEntryIsTreatedAsCorruptAndRemoved) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(21);
  EngineConfig cfg;
  cfg.tier = EngineTier::kBaseline;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  rt::compile({bytes.data(), bytes.size()}, cfg);

  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
  }
  auto again = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(again->loaded_from_cache);
  size_t leftover = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".rcache" && fs::file_size(e.path()) == 0)
      ++leftover;
  EXPECT_EQ(leftover, 0u) << "zero-byte entries must be removed";
  fs::remove_all(dir);
}

TEST(Cache, WrongVersionIsRejected) {
  rt::RModule rm;
  auto blob = rt::serialize_regcode(rm);
  blob[4] ^= 0xFF;  // flip a version byte after the magic
  EXPECT_FALSE(rt::deserialize_regcode({blob.data(), blob.size()}).has_value());
}

TEST(Cache, OptimizingAblationFlagsKeySeparately) {
  // A cache warmed with the full optimizing pipeline must not serve its
  // fused/hoisted code to a run that disabled those passes.
  auto dir = fresh_cache_dir();
  auto bytes = make_module(9);
  EngineConfig full;
  full.tier = EngineTier::kOptimizing;
  full.enable_cache = true;
  full.cache_dir = dir;
  auto cm1 = rt::compile({bytes.data(), bytes.size()}, full);
  ASSERT_FALSE(cm1->loaded_from_cache);

  EngineConfig plain = full;
  plain.opt_superinstructions = false;
  plain.opt_hoist_bounds = false;
  auto cm2 = rt::compile({bytes.data(), bytes.size()}, plain);
  EXPECT_FALSE(cm2->loaded_from_cache);  // different key, not a hit
  auto cm3 = rt::compile({bytes.data(), bytes.size()}, plain);
  EXPECT_TRUE(cm3->loaded_from_cache);  // same ablation config hits its own
  auto cm4 = rt::compile({bytes.data(), bytes.size()}, full);
  EXPECT_TRUE(cm4->loaded_from_cache);
  fs::remove_all(dir);
}

TEST(Cache, StaleVersionEntriesAreRejectedCleanlyAndRecompiled) {
  // Every cache format bump renumbers the ROp space (v4: superinstructions
  // / raw ops / kMemGuard; v5: the full SIMD opcode space) or extends the
  // record layout (v6: the optional native-code section). A pre-upgrade
  // v3/v4/v5 entry must be treated as a clean miss — no crash, no
  // misdecoded code, just a silent recompile that overwrites the stale
  // entry.
  for (char stale_version : {char(3), char(4), char(5)}) {
    auto dir = fresh_cache_dir();
    auto bytes = make_module(77);
    EngineConfig cfg;
    cfg.tier = EngineTier::kOptimizing;
    cfg.enable_cache = true;
    cfg.cache_dir = dir;

    // Seed the cache, then rewrite the entry with the stale header.
    auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
    ASSERT_FALSE(cm->loaded_from_cache);
    fs::path entry;
    for (const auto& e : fs::directory_iterator(dir))
      if (e.path().extension() == ".rcache") entry = e.path();
    ASSERT_FALSE(entry.empty());
    {
      std::fstream io(entry, std::ios::binary | std::ios::in | std::ios::out);
      io.seekp(4);  // version field follows the 4-byte magic, little-endian
      const char ver[4] = {stale_version, 0, 0, 0};
      io.write(ver, 4);
    }

    auto cm2 = rt::compile({bytes.data(), bytes.size()}, cfg);
    EXPECT_FALSE(cm2->loaded_from_cache);  // stale entry rejected, recompiled
    EXPECT_EQ(cm2->regcode.funcs.size(), cm->regcode.funcs.size());
    // The recompile stored a fresh current-version entry; a third compile
    // hits it.
    auto cm3 = rt::compile({bytes.data(), bytes.size()}, cfg);
    EXPECT_TRUE(cm3->loaded_from_cache);
    rt::ImportTable imports;
    rt::Instance inst(cm3, imports);
    EXPECT_EQ(inst.invoke("run").as_i32(), 77);
    fs::remove_all(dir);
  }
}

TEST(Cache, PerFunctionEntriesRoundTripAndKeySeparately) {
  auto dir = fresh_cache_dir();
  FileSystemCache cache(dir);
  auto bytes = make_module(31);
  EngineConfig cfg;
  cfg.tier = EngineTier::kOptimizing;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  const rt::RFunc& f = cm->regcode.funcs[0];

  cache.store_func(cm->hash, 0, "baseline", f);
  EXPECT_TRUE(cache.load_func(cm->hash, 0, "baseline").has_value());
  // Different function index and tier are separate keys.
  EXPECT_FALSE(cache.load_func(cm->hash, 1, "baseline").has_value());
  EXPECT_FALSE(cache.load_func(cm->hash, 0, "optimizing").has_value());
  // The per-function entry does not satisfy a whole-module lookup.
  EXPECT_FALSE(cache.load(cm->hash, "baseline").has_value());

  auto loaded = cache.load_func(cm->hash, 0, "baseline");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->code.size(), f.code.size());
  for (size_t i = 0; i < f.code.size(); ++i)
    EXPECT_EQ(u16(loaded->code[i].op), u16(f.code[i].op));
  fs::remove_all(dir);
}

TEST(Cache, CorruptPerFunctionEntryIsIgnoredAndRemoved) {
  auto dir = fresh_cache_dir();
  FileSystemCache cache(dir);
  auto bytes = make_module(13);
  EngineConfig cfg;
  cfg.tier = EngineTier::kBaseline;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  cache.store_func(cm->hash, 0, "baseline", cm->regcode.funcs[0]);

  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "truncated-garbage";
    ++entries;
  }
  ASSERT_EQ(entries, 1u);
  EXPECT_FALSE(cache.load_func(cm->hash, 0, "baseline").has_value());
  // The corrupt file was removed from disk.
  entries = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".rcache") ++entries;
  EXPECT_EQ(entries, 0u);
  fs::remove_all(dir);
}

TEST(Cache, TieredPromotionsWarmStartFromCache) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(55);
  EngineConfig cfg;
  cfg.tier = EngineTier::kTiered;
  cfg.tierup_baseline_threshold = 1;
  cfg.tierup_opt_threshold = 2;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;

  auto run_twice_and_snapshot = [&] {
    auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
    rt::ImportTable imports;
    rt::Instance inst(cm, imports);
    EXPECT_EQ(inst.invoke("run").as_i32(), 55);  // promotes to baseline
    EXPECT_EQ(inst.invoke("run").as_i32(), 55);  // promotes to optimizing
    return rt::tierup_snapshot(*cm);
  };

  auto cold = run_twice_and_snapshot();
  EXPECT_EQ(cold.promoted_baseline, 1u);
  EXPECT_EQ(cold.promoted_optimizing, 1u);
  EXPECT_EQ(cold.func_cache_hits, 0u);

  auto warm = run_twice_and_snapshot();
  EXPECT_EQ(warm.promoted_baseline, 1u);
  EXPECT_EQ(warm.promoted_optimizing, 1u);
  EXPECT_EQ(warm.func_cache_hits, 2u)
      << "second execution must warm-start both promotions from cache";
  fs::remove_all(dir);
}

TEST(Cache, SecondCompileHitsCache) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(42);
  EngineConfig cfg;
  cfg.tier = EngineTier::kOptimizing;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;

  auto cold = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(cold->loaded_from_cache);
  auto warm = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_TRUE(warm->loaded_from_cache);

  // Cached module still executes correctly.
  rt::ImportTable imports;
  rt::Instance inst(warm, imports);
  EXPECT_EQ(inst.invoke("run").as_i32(), 42);
  fs::remove_all(dir);
}

TEST(Cache, DifferentModulesGetDifferentEntries) {
  auto dir = fresh_cache_dir();
  EngineConfig cfg;
  cfg.tier = EngineTier::kBaseline;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;

  auto a = make_module(1);
  auto b = make_module(2);
  auto ca = rt::compile({a.data(), a.size()}, cfg);
  auto cb = rt::compile({b.data(), b.size()}, cfg);
  EXPECT_FALSE(cb->loaded_from_cache) << "different bytes must not hit";
  EXPECT_NE(ca->hash.hex(), cb->hash.hex());
  fs::remove_all(dir);
}

TEST(Cache, TiersAreCachedSeparately) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(7);
  EngineConfig cfg;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;

  cfg.tier = EngineTier::kBaseline;
  rt::compile({bytes.data(), bytes.size()}, cfg);
  cfg.tier = EngineTier::kOptimizing;
  auto opt = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(opt->loaded_from_cache)
      << "baseline cache entry must not satisfy optimizing tier";
  fs::remove_all(dir);
}

TEST(Cache, CorruptEntryIsIgnoredAndRemoved) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(9);
  EngineConfig cfg;
  cfg.tier = EngineTier::kOptimizing;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  rt::compile({bytes.data(), bytes.size()}, cfg);

  // Corrupt every cache entry.
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "corruption";
  }
  auto again = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(again->loaded_from_cache);
  rt::ImportTable imports;
  rt::Instance inst(again, imports);
  EXPECT_EQ(inst.invoke("run").as_i32(), 9);
  fs::remove_all(dir);
}

TEST(Cache, ClearRemovesEntries) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(11);
  EngineConfig cfg;
  cfg.tier = EngineTier::kBaseline;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  rt::compile({bytes.data(), bytes.size()}, cfg);
  FileSystemCache cache(dir);
  cache.clear();
  auto again = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(again->loaded_from_cache);
  fs::remove_all(dir);
}

TEST(Cache, InterpTierSkipsCache) {
  auto dir = fresh_cache_dir();
  auto bytes = make_module(5);
  EngineConfig cfg;
  cfg.tier = EngineTier::kInterp;
  cfg.enable_cache = true;
  cfg.cache_dir = dir;
  auto cm = rt::compile({bytes.data(), bytes.size()}, cfg);
  EXPECT_FALSE(cm->loaded_from_cache);
  // No .rcache files written for the interpreter tier.
  size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".rcache") ++entries;
  EXPECT_EQ(entries, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mpiwasm::test
