// Direct unit tests for LinearMemory (the §3.5 substrate: stable base,
// bounds semantics, grow) and the embedder's Env/SharedHandleState
// translation tables (§3.6/§3.7).
#include "testlib.h"

#include "embedder/abi.h"
#include "embedder/env.h"
#include "runtime/memory.h"
#include "simmpi/world.h"

namespace mpiwasm::test {
namespace {

namespace abi = embed::abi;
using rt::LinearMemory;

TEST(LinearMemory, BaseIsStableAcrossGrow) {
  // The embedder records the base address once (§3.5 / Fig. 2); growth
  // must never move it.
  LinearMemory mem(1, 64);
  const u8* base = mem.base();
  EXPECT_EQ(mem.pages(), 1u);
  EXPECT_EQ(mem.grow(3), 1);
  EXPECT_EQ(mem.grow(10), 4);
  EXPECT_EQ(mem.pages(), 14u);
  EXPECT_EQ(mem.base(), base);
}

TEST(LinearMemory, GrowRespectsMax) {
  LinearMemory mem(2, 4);
  EXPECT_EQ(mem.grow(2), 2);
  EXPECT_EQ(mem.grow(1), -1);  // beyond max: fail, do not trap
  EXPECT_EQ(mem.pages(), 4u);
}

TEST(LinearMemory, BoundsFollowLogicalSizeNotReservation) {
  LinearMemory mem(1, 16);
  // Offset beyond page 1 is reserved virtually but must still trap until
  // grown — sandbox semantics are defined by the logical size.
  EXPECT_THROW(mem.load<u32>(wasm::kPageSize), rt::Trap);
  mem.grow(1);
  EXPECT_EQ(mem.load<u32>(wasm::kPageSize), 0u);  // fresh pages are zero
}

TEST(LinearMemory, EdgeAccesses) {
  LinearMemory mem(1, 4);
  const u64 last = wasm::kPageSize - 1;
  mem.store<u8>(last, 0xAB);
  EXPECT_EQ(mem.load<u8>(last), 0xAB);
  EXPECT_THROW(mem.store<u16>(last, 1), rt::Trap);
  EXPECT_THROW(mem.load<u64>(wasm::kPageSize - 7), rt::Trap);
  EXPECT_NO_THROW(mem.load<u64>(wasm::kPageSize - 8));
}

TEST(LinearMemory, SpanIsChecked) {
  LinearMemory mem(1, 4);
  auto s = mem.span(100, 16);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(s.data(), mem.base() + 100);
  EXPECT_THROW(mem.span(wasm::kPageSize - 4, 8), rt::Trap);
}

TEST(LinearMemory, MoveTransfersOwnership) {
  LinearMemory a(1, 4);
  a.store<u32>(0, 42);
  LinearMemory b(std::move(a));
  EXPECT_EQ(b.load<u32>(0), 42u);
  EXPECT_EQ(a.base(), nullptr);
  LinearMemory c(1, 2);
  c = std::move(b);
  EXPECT_EQ(c.load<u32>(0), 42u);
}

TEST(SharedHandleState, StaticTablesMatchAbi) {
  embed::SharedHandleState st;
  EXPECT_EQ(st.lookup_datatype(abi::MPI_BYTE), simmpi::Datatype::kByte);
  EXPECT_EQ(st.lookup_datatype(abi::MPI_DOUBLE), simmpi::Datatype::kDouble);
  EXPECT_EQ(st.lookup_op(abi::MPI_SUM), simmpi::ReduceOp::kSum);
  EXPECT_EQ(st.lookup_op(abi::MPI_BOR), simmpi::ReduceOp::kBor);
  EXPECT_EQ(st.lookup_comm(abi::MPI_COMM_WORLD), simmpi::kCommWorld);
}

TEST(SharedHandleState, InvalidHandlesTrap) {
  embed::SharedHandleState st;
  EXPECT_THROW(st.lookup_datatype(999), rt::Trap);
  EXPECT_THROW(st.lookup_op(-3), rt::Trap);
  EXPECT_THROW(st.lookup_comm(12345), rt::Trap);
}

TEST(SharedHandleState, InternedCommsResolve) {
  embed::SharedHandleState st;
  i32 handle = st.intern_comm(7);
  EXPECT_EQ(handle, 7);
  EXPECT_EQ(st.lookup_comm(handle), 7);
}

TEST(Env, RequestTableLifecycle) {
  simmpi::World world(1);
  world.run([&](simmpi::Rank& rank) {
    auto shared = std::make_shared<embed::SharedHandleState>();
    embed::Env env(&rank, shared, true, false);
    i32 h1 = env.add_request({});
    i32 h2 = env.add_request({});
    EXPECT_NE(h1, h2);
    EXPECT_NE(env.find_request(h1), nullptr);
    env.drop_request(h1);
    EXPECT_EQ(env.find_request(h1), nullptr);
    EXPECT_NE(env.find_request(h2), nullptr);
    EXPECT_EQ(env.find_request(999), nullptr);
  });
}

TEST(Env, TranslationSamplesOnlyWhenEnabled) {
  simmpi::World world(1);
  world.run([&](simmpi::Rank& rank) {
    auto shared = std::make_shared<embed::SharedHandleState>();
    embed::Env off(&rank, shared, true, false);
    off.translate_datatype(abi::MPI_INT, 128);
    EXPECT_TRUE(off.samples().empty());
    embed::Env on(&rank, shared, true, true);
    on.translate_datatype(abi::MPI_INT, 128);
    on.translate_datatype(abi::MPI_DOUBLE, 4096);
    ASSERT_EQ(on.samples().size(), 2u);
    EXPECT_EQ(on.samples()[0].wasm_datatype, abi::MPI_INT);
    EXPECT_EQ(on.samples()[1].msg_bytes, 4096u);
  });
}

TEST(NetworkProfile, CostModel) {
  auto p = simmpi::NetworkProfile::omnipath();
  EXPECT_EQ(p.message_cost_ns(0), p.latency_ns);
  // 12.5 bytes/ns: 1 MiB should cost latency + ~83886ns.
  u64 mib_cost = p.message_cost_ns(1 << 20);
  EXPECT_NEAR(f64(mib_cost - p.latency_ns), f64(1 << 20) / 12.5, 2.0);
  auto g = simmpi::NetworkProfile::grpc_messaging();
  EXPECT_TRUE(g.force_copy);
  EXPECT_GT(g.message_cost_ns(1 << 20), p.message_cost_ns(1 << 20));
  auto z = simmpi::NetworkProfile::zero();
  EXPECT_EQ(z.message_cost_ns(1 << 20), 0u);
}

TEST(Datatypes, SizesAndNames) {
  using simmpi::Datatype;
  EXPECT_EQ(simmpi::datatype_size(Datatype::kByte), 1u);
  EXPECT_EQ(simmpi::datatype_size(Datatype::kInt), 4u);
  EXPECT_EQ(simmpi::datatype_size(Datatype::kDouble), 8u);
  EXPECT_EQ(simmpi::datatype_size(Datatype::kLongLong), 8u);
  EXPECT_STREQ(simmpi::datatype_name(Datatype::kFloat), "MPI_FLOAT");
}

}  // namespace
}  // namespace mpiwasm::test
