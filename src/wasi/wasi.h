// WASI snapshot-preview1 host implementation (subset).
//
// Implements the system interface the paper's toolchain relies on (§2.3,
// Listing 1): args/environ, clocks, random, fd and path I/O, proc_exit.
// File access is mediated by VirtualFs (§3.4); stdout/stderr can be routed
// to per-rank sinks so multi-rank runs keep ordered, attributable output.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/instance.h"
#include "wasi/vfs.h"

namespace mpiwasm::wasi {

struct WasiConfig {
  std::vector<std::string> args;  // argv; args[0] conventionally module name
  std::vector<std::pair<std::string, std::string>> env;
  std::vector<Preopen> preopens;  // the embedder's -d flag entries
  /// Sinks for guest stdout/stderr; default writes to the process streams.
  std::function<void(std::string_view)> stdout_sink;
  std::function<void(std::string_view)> stderr_sink;
  /// Deterministic random_get stream seed (0 = non-deterministic).
  u64 random_seed = 0;
};

/// Per-instance WASI state. Register into an ImportTable before
/// instantiation; one WasiEnv per module instance (per MPI rank).
class WasiEnv {
 public:
  explicit WasiEnv(WasiConfig config);

  /// Registers every implemented function under "wasi_snapshot_preview1".
  void register_imports(rt::ImportTable& imports);

  VirtualFs& fs() { return fs_; }
  /// Exit code recorded by proc_exit (if the guest called it).
  i32 exit_code() const { return exit_code_; }

 private:
  friend struct WasiBindings;
  WasiConfig config_;
  VirtualFs fs_;
  u64 rng_state_;
  i32 exit_code_ = 0;
};

}  // namespace mpiwasm::wasi
