#include "wasi/wasi.h"

#include <cstdio>
#include <cstring>

#include "support/timing.h"

namespace mpiwasm::wasi {

namespace {

using rt::HostContext;
using rt::LinearMemory;
using rt::Slot;
using wasm::FuncType;
using wasm::ValType;

constexpr ValType I32 = ValType::kI32;
constexpr ValType I64 = ValType::kI64;

/// xorshift64* for deterministic random_get streams.
u64 next_rand(u64& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1Dull;
}

}  // namespace

WasiEnv::WasiEnv(WasiConfig config)
    : config_(std::move(config)), fs_(config_.preopens) {
  rng_state_ = config_.random_seed != 0 ? config_.random_seed : now_ns() | 1;
  if (!config_.stdout_sink)
    config_.stdout_sink = [](std::string_view s) {
      std::fwrite(s.data(), 1, s.size(), stdout);
    };
  if (!config_.stderr_sink)
    config_.stderr_sink = [](std::string_view s) {
      std::fwrite(s.data(), 1, s.size(), stderr);
    };
}

/// All host bindings in one place; each lambda captures the WasiEnv*.
struct WasiBindings {
  static void register_all(WasiEnv* env, rt::ImportTable& t) {
    const std::string ns = "wasi_snapshot_preview1";

    t.add(ns, "args_sizes_get", FuncType{{I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            LinearMemory& mem = ctx.memory();
            u32 total = 0;
            for (const auto& s : env->config_.args) total += u32(s.size()) + 1;
            mem.store<u32>(a[0].u32v, u32(env->config_.args.size()));
            mem.store<u32>(a[1].u32v, total);
            r->i32v = kSuccess;
          });

    t.add(ns, "args_get", FuncType{{I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            LinearMemory& mem = ctx.memory();
            u32 argv = a[0].u32v, buf = a[1].u32v;
            for (size_t i = 0; i < env->config_.args.size(); ++i) {
              const std::string& s = env->config_.args[i];
              mem.store<u32>(argv + 4 * i, buf);
              auto dst = mem.span(buf, s.size() + 1);
              std::memcpy(dst.data(), s.c_str(), s.size() + 1);
              buf += u32(s.size()) + 1;
            }
            r->i32v = kSuccess;
          });

    t.add(ns, "environ_sizes_get", FuncType{{I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            LinearMemory& mem = ctx.memory();
            u32 total = 0;
            for (const auto& [k, v] : env->config_.env)
              total += u32(k.size() + v.size()) + 2;
            mem.store<u32>(a[0].u32v, u32(env->config_.env.size()));
            mem.store<u32>(a[1].u32v, total);
            r->i32v = kSuccess;
          });

    t.add(ns, "environ_get", FuncType{{I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            LinearMemory& mem = ctx.memory();
            u32 envp = a[0].u32v, buf = a[1].u32v;
            for (size_t i = 0; i < env->config_.env.size(); ++i) {
              std::string kv =
                  env->config_.env[i].first + "=" + env->config_.env[i].second;
              mem.store<u32>(envp + 4 * i, buf);
              auto dst = mem.span(buf, kv.size() + 1);
              std::memcpy(dst.data(), kv.c_str(), kv.size() + 1);
              buf += u32(kv.size()) + 1;
            }
            r->i32v = kSuccess;
          });

    t.add(ns, "clock_time_get", FuncType{{I32, I64, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            // clock ids: 0 = realtime, 1 = monotonic; both served from the
            // monotonic clock (sufficient for benchmark timing).
            ctx.memory().store<u64>(a[2].u32v, now_ns());
            r->i32v = kSuccess;
          });

    t.add(ns, "random_get", FuncType{{I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            auto dst = ctx.memory().span(a[0].u32v, a[1].u32v);
            for (size_t i = 0; i < dst.size(); i += 8) {
              u64 x = next_rand(env->rng_state_);
              std::memcpy(dst.data() + i, &x, std::min<size_t>(8, dst.size() - i));
            }
            r->i32v = kSuccess;
          });

    t.add(ns, "proc_exit", FuncType{{I32}, {}},
          [env](HostContext&, const Slot* a, Slot*) {
            env->exit_code_ = a[0].i32v;
            throw rt::ProcExit(a[0].i32v);
          });

    t.add(ns, "fd_prestat_get", FuncType{{I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            auto name = env->fs_.preopen_name(a[0].i32v);
            if (!name.has_value()) {
              r->i32v = kBadf;
              return;
            }
            // prestat: tag u8(0 = dir) + padding, then name length.
            LinearMemory& mem = ctx.memory();
            mem.store<u32>(a[1].u32v, 0);
            mem.store<u32>(a[1].u32v + 4, u32(name->size()));
            r->i32v = kSuccess;
          });

    t.add(ns, "fd_prestat_dir_name", FuncType{{I32, I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            auto name = env->fs_.preopen_name(a[0].i32v);
            if (!name.has_value()) {
              r->i32v = kBadf;
              return;
            }
            size_t n = std::min<size_t>(a[2].u32v, name->size());
            auto dst = ctx.memory().span(a[1].u32v, n);
            std::memcpy(dst.data(), name->data(), n);
            r->i32v = kSuccess;
          });

    t.add(ns, "fd_fdstat_get", FuncType{{I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            i32 fd = a[0].i32v;
            LinearMemory& mem = ctx.memory();
            u8 filetype;
            if (fd >= 0 && fd <= 2) filetype = 2;  // character device
            else if (env->fs_.preopen_name(fd).has_value()) filetype = 3;  // dir
            else if (env->fs_.is_open_file(fd)) filetype = 4;  // regular file
            else {
              r->i32v = kBadf;
              return;
            }
            // fdstat: filetype u8, flags u16, rights u64 x2 (all granted).
            mem.store<u8>(a[1].u32v, filetype);
            mem.store<u8>(a[1].u32v + 1, 0);
            mem.store<u16>(a[1].u32v + 2, 0);
            mem.store<u64>(a[1].u32v + 8, ~0ull);
            mem.store<u64>(a[1].u32v + 16, ~0ull);
            r->i32v = kSuccess;
          });

    t.add(ns, "fd_write", FuncType{{I32, I32, I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            LinearMemory& mem = ctx.memory();
            i32 fd = a[0].i32v;
            u32 iovs = a[1].u32v, iovs_len = a[2].u32v;
            size_t written = 0;
            for (u32 i = 0; i < iovs_len; ++i) {
              u32 buf = mem.load<u32>(iovs + 8 * i);
              u32 len = mem.load<u32>(iovs + 8 * i + 4);
              auto src = mem.span(buf, len);
              if (fd == 1) {
                env->config_.stdout_sink(
                    {reinterpret_cast<const char*>(src.data()), src.size()});
                written += len;
              } else if (fd == 2) {
                env->config_.stderr_sink(
                    {reinterpret_cast<const char*>(src.data()), src.size()});
                written += len;
              } else {
                auto res = env->fs_.write(fd, src.data(), src.size());
                if (res.err != kSuccess) {
                  r->i32v = res.err;
                  return;
                }
                written += res.bytes;
                if (res.bytes < src.size()) break;
              }
            }
            mem.store<u32>(a[3].u32v, u32(written));
            r->i32v = kSuccess;
          });

    t.add(ns, "fd_read", FuncType{{I32, I32, I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            LinearMemory& mem = ctx.memory();
            i32 fd = a[0].i32v;
            if (fd <= 2) {  // no interactive stdin in HPC batch context
              mem.store<u32>(a[3].u32v, 0);
              r->i32v = kSuccess;
              return;
            }
            u32 iovs = a[1].u32v, iovs_len = a[2].u32v;
            size_t total = 0;
            for (u32 i = 0; i < iovs_len; ++i) {
              u32 buf = mem.load<u32>(iovs + 8 * i);
              u32 len = mem.load<u32>(iovs + 8 * i + 4);
              auto dst = mem.span(buf, len);
              auto res = env->fs_.read(fd, dst.data(), dst.size());
              if (res.err != kSuccess) {
                r->i32v = res.err;
                return;
              }
              total += res.bytes;
              if (res.bytes < dst.size()) break;  // EOF
            }
            mem.store<u32>(a[3].u32v, u32(total));
            r->i32v = kSuccess;
          });

    t.add(ns, "fd_seek", FuncType{{I32, I64, I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            auto res = env->fs_.seek(a[0].i32v, a[1].i64v, u8(a[2].u32v));
            if (res.err != kSuccess) {
              r->i32v = res.err;
              return;
            }
            ctx.memory().store<u64>(a[3].u32v, res.pos);
            r->i32v = kSuccess;
          });

    t.add(ns, "fd_close", FuncType{{I32}, {I32}},
          [env](HostContext&, const Slot* a, Slot* r) {
            r->i32v = env->fs_.close(a[0].i32v);
          });

    // path_open(dirfd, dirflags, path, path_len, oflags, rights_base,
    //           rights_inheriting, fdflags, opened_fd_out) -> errno
    t.add(ns, "path_open",
          FuncType{{I32, I32, I32, I32, I32, I64, I64, I32, I32}, {I32}},
          [env](HostContext& ctx, const Slot* a, Slot* r) {
            LinearMemory& mem = ctx.memory();
            auto path_bytes = mem.span(a[2].u32v, a[3].u32v);
            std::string path(reinterpret_cast<const char*>(path_bytes.data()),
                             path_bytes.size());
            u32 oflags = a[4].u32v;
            u64 rights = a[5].u64v;
            OpenFlags flags;
            // WASI rights: fd_read = 1<<1, fd_write = 1<<6.
            flags.read = (rights & (1ull << 1)) != 0 || rights == 0;
            flags.write = (rights & (1ull << 6)) != 0;
            flags.create = (oflags & 1) != 0;   // O_CREAT
            flags.trunc = (oflags & 8) != 0;    // O_TRUNC
            flags.append = (a[7].u32v & 1) != 0;
            auto res = env->fs_.open(a[0].i32v, path, flags);
            if (res.err != kSuccess) {
              r->i32v = res.err;
              return;
            }
            mem.store<u32>(a[8].u32v, u32(res.fd));
            r->i32v = kSuccess;
          });
  }
};

void WasiEnv::register_imports(rt::ImportTable& imports) {
  WasiBindings::register_all(this, imports);
}

}  // namespace mpiwasm::wasi
