#include "wasi/vfs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>

namespace mpiwasm::wasi {

namespace {

/// Normalizes a guest-relative path into components, rejecting escapes.
/// Returns false if the path is absolute, empty, or traverses above root.
bool normalize(const std::string& path, std::vector<std::string>& out) {
  if (path.empty() || path[0] == '/') return false;
  size_t i = 0;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    std::string comp = path.substr(i, j - i);
    i = j + 1;
    if (comp.empty() || comp == ".") continue;
    if (comp == "..") {
      if (out.empty()) return false;  // would escape the preopen root
      out.pop_back();
      continue;
    }
    out.push_back(std::move(comp));
  }
  return !out.empty();
}

}  // namespace

VirtualFs::VirtualFs(std::vector<Preopen> preopens)
    : preopens_(std::move(preopens)) {
  first_file_fd_ = kFirstPreopenFd + i32(preopens_.size());
}

VirtualFs::~VirtualFs() {
  for (auto& f : files_) {
    if (f.has_value() && f->host_fd >= 0) ::close(f->host_fd);
  }
}

std::optional<std::string> VirtualFs::preopen_name(i32 fd) const {
  i32 idx = fd - kFirstPreopenFd;
  if (idx < 0 || idx >= i32(preopens_.size())) return std::nullopt;
  return "/" + preopens_[idx].guest_name;
}

std::optional<std::string> VirtualFs::resolve(i32 dirfd,
                                              const std::string& path) const {
  i32 idx = dirfd - kFirstPreopenFd;
  if (idx < 0 || idx >= i32(preopens_.size())) return std::nullopt;
  std::vector<std::string> comps;
  if (!normalize(path, comps)) return std::nullopt;
  std::string host = preopens_[idx].host_dir;
  for (const auto& c : comps) host += "/" + c;
  return host;
}

VirtualFs::OpenResult VirtualFs::open(i32 dirfd, const std::string& path,
                                      OpenFlags flags) {
  i32 idx = dirfd - kFirstPreopenFd;
  if (idx < 0 || idx >= i32(preopens_.size())) return {-1, kBadf};
  const Preopen& pre = preopens_[idx];
  if (pre.read_only && (flags.write || flags.create || flags.trunc))
    return {-1, kNotcapable};  // application-level policy, stricter than OS
  auto host = resolve(dirfd, path);
  if (!host.has_value()) return {-1, kNoent};

  int oflags = 0;
  if (flags.read && flags.write) oflags = O_RDWR;
  else if (flags.write) oflags = O_WRONLY;
  else oflags = O_RDONLY;
  if (flags.create) oflags |= O_CREAT;
  if (flags.trunc) oflags |= O_TRUNC;
  if (flags.append) oflags |= O_APPEND;

  int host_fd = ::open(host->c_str(), oflags, 0644);
  if (host_fd < 0) {
    switch (errno) {
      case ENOENT: return {-1, kNoent};
      case EACCES: return {-1, kAcces};
      case EISDIR: return {-1, kIsdir};
      case ENOTDIR: return {-1, kNotdir};
      default: return {-1, kIo};
    }
  }
  // Reuse a free slot or append.
  for (size_t s = 0; s < files_.size(); ++s) {
    if (!files_[s].has_value()) {
      files_[s] = OpenFile{host_fd, flags.write};
      return {first_file_fd_ + i32(s), kSuccess};
    }
  }
  files_.push_back(OpenFile{host_fd, flags.write});
  return {first_file_fd_ + i32(files_.size()) - 1, kSuccess};
}

bool VirtualFs::is_open_file(i32 fd) const {
  i32 idx = fd - first_file_fd_;
  return idx >= 0 && idx < i32(files_.size()) && files_[idx].has_value();
}

Errno VirtualFs::close(i32 fd) {
  i32 idx = fd - first_file_fd_;
  if (idx < 0 || idx >= i32(files_.size()) || !files_[idx].has_value())
    return kBadf;
  ::close(files_[idx]->host_fd);
  files_[idx].reset();
  return kSuccess;
}

VirtualFs::IoResult VirtualFs::read(i32 fd, u8* buf, size_t len) {
  i32 idx = fd - first_file_fd_;
  if (idx < 0 || idx >= i32(files_.size()) || !files_[idx].has_value())
    return {0, kBadf};
  ssize_t n = ::read(files_[idx]->host_fd, buf, len);
  if (n < 0) return {0, kIo};
  return {size_t(n), kSuccess};
}

VirtualFs::IoResult VirtualFs::write(i32 fd, const u8* buf, size_t len) {
  i32 idx = fd - first_file_fd_;
  if (idx < 0 || idx >= i32(files_.size()) || !files_[idx].has_value())
    return {0, kBadf};
  if (!files_[idx]->writable) return {0, kNotcapable};
  ssize_t n = ::write(files_[idx]->host_fd, buf, len);
  if (n < 0) return {0, kIo};
  return {size_t(n), kSuccess};
}

VirtualFs::SeekResult VirtualFs::seek(i32 fd, i64 offset, u8 whence) {
  i32 idx = fd - first_file_fd_;
  if (idx < 0 || idx >= i32(files_.size()) || !files_[idx].has_value())
    return {0, kBadf};
  int w = whence == 0 ? SEEK_SET : whence == 1 ? SEEK_CUR : SEEK_END;
  off_t pos = ::lseek(files_[idx]->host_fd, offset, w);
  if (pos < 0) return {0, kInval};
  return {u64(pos), kSuccess};
}

}  // namespace mpiwasm::wasi
