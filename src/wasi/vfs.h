// VirtualFs: the userspace filesystem isolation layer of MPIWasm (§3.4).
//
// Preopened host directories are mounted as direct children of the virtual
// root ("/data", "/scratch", ...), so the module never sees host paths —
// the paper calls out that exposing "/home/<username>/..." would leak
// information. Every open goes through in-process permission handling that
// is separate from (and can be stricter than) the OS permissions: a
// preopen may be mounted read-only even if the user could write to it.
// Path resolution rejects absolute host paths and any ".." traversal that
// would escape the preopen root.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/common.h"

namespace mpiwasm::wasi {

/// WASI errno values (subset used by this implementation).
enum Errno : u16 {
  kSuccess = 0,
  kAcces = 2,
  kBadf = 8,
  kExist = 20,
  kInval = 28,
  kIo = 29,
  kIsdir = 31,
  kNoent = 44,
  kNotdir = 54,
  kPerm = 63,
  kNotcapable = 76,
};

struct Preopen {
  std::string host_dir;    // existing host directory
  std::string guest_name;  // mounted as "/<guest_name>"
  bool read_only = false;
};

/// Open-file rights derived from the owning preopen.
struct OpenFlags {
  bool read = false;
  bool write = false;
  bool create = false;
  bool trunc = false;
  bool append = false;
};

class VirtualFs {
 public:
  explicit VirtualFs(std::vector<Preopen> preopens);
  ~VirtualFs();
  VirtualFs(const VirtualFs&) = delete;
  VirtualFs& operator=(const VirtualFs&) = delete;

  static constexpr i32 kFirstPreopenFd = 3;  // after stdio

  i32 num_preopens() const { return i32(preopens_.size()); }
  /// Virtual name ("/data") of preopen fd, or nullopt if not a preopen fd.
  std::optional<std::string> preopen_name(i32 fd) const;

  /// Opens `path` relative to preopen `dirfd`. Returns the new guest fd or
  /// an Errno. Enforces the preopen's read-only right and path containment.
  struct OpenResult {
    i32 fd = -1;
    Errno err = kSuccess;
  };
  OpenResult open(i32 dirfd, const std::string& path, OpenFlags flags);

  Errno close(i32 fd);
  /// Returns bytes read/written or an Errno.
  struct IoResult {
    size_t bytes = 0;
    Errno err = kSuccess;
  };
  IoResult read(i32 fd, u8* buf, size_t len);
  IoResult write(i32 fd, const u8* buf, size_t len);
  struct SeekResult {
    u64 pos = 0;
    Errno err = kSuccess;
  };
  SeekResult seek(i32 fd, i64 offset, u8 whence);

  bool is_open_file(i32 fd) const;

  /// Resolves a guest path against a preopen; exposed for sandbox tests.
  /// Returns the host path or nullopt when the path escapes the sandbox.
  std::optional<std::string> resolve(i32 dirfd, const std::string& path) const;

 private:
  struct OpenFile {
    int host_fd = -1;
    bool writable = false;
  };
  std::vector<Preopen> preopens_;
  std::vector<std::optional<OpenFile>> files_;  // indexed by fd - first_file_fd
  i32 first_file_fd_ = 0;
};

}  // namespace mpiwasm::wasi
