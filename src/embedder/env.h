// Env: MPIWasm's per-world translation state (paper §3.7).
//
// The paper's Env stores "the global state required by these translations":
// information about the module's memory (its base pointer, §3.5) and the
// datatype/communicator/op structures the embedder creates on behalf of
// the module (§3.6). Lookups take a read lock on a shared_mutex — the
// measured ~85-105ns translation overhead of Figure 6, and the source of
// the Allreduce-frequency scaling effect of §4.5, both live here.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "embedder/abi.h"
#include "runtime/memory.h"
#include "simmpi/world.h"

namespace mpiwasm::embed {

/// One Figure-6 sample: translating `wasm_datatype` for a message of
/// `msg_bytes` took `ns` nanoseconds.
struct TranslationSample {
  i32 wasm_datatype = 0;
  u64 msg_bytes = 0;
  u64 ns = 0;
};

/// World-shared translation tables. All ranks of a run consult the same
/// tables under a reader-writer lock, exactly the design whose read-lock
/// acquisition cost the paper measures (§4.6).
class SharedHandleState {
 public:
  SharedHandleState();

  /// Datatype handle -> host datatype (throws Trap(kHostError) on bad id).
  simmpi::Datatype lookup_datatype(i32 handle) const;
  /// Reduce-op handle -> host op.
  simmpi::ReduceOp lookup_op(i32 handle) const;
  /// Communicator handle -> host communicator id.
  simmpi::Comm lookup_comm(i32 handle) const;
  /// Registers a newly created host communicator; returns its module handle.
  i32 intern_comm(simmpi::Comm host_comm);

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<i32, simmpi::Datatype> datatypes_;
  std::unordered_map<i32, simmpi::ReduceOp> ops_;
  std::unordered_map<i32, simmpi::Comm> comms_;
};

/// Per-rank embedder state handed to every env.MPI_* host function via
/// Instance::user_data.
class Env {
 public:
  Env(simmpi::Rank* rank, std::shared_ptr<SharedHandleState> shared,
      bool zero_copy, bool record_translation);

  simmpi::Rank& rank() { return *rank_; }
  bool zero_copy() const { return zero_copy_; }

  // --- Address translation (§3.5) -----------------------------------------
  /// Zero-copy: 32-bit module pointer -> host pointer after a bounds check.
  /// This is the entire translation — base + offset — which is what lets
  /// the host MPI library read/write module memory directly.
  u8* translate(rt::LinearMemory& mem, u32 ptr, u64 len) {
    mem.check(ptr, len);
    return mem.base() + ptr;
  }

  // --- Handle translation (§3.6), instrumented for Figure 6 ----------------
  simmpi::Datatype translate_datatype(i32 handle, u64 msg_bytes_hint);
  simmpi::ReduceOp translate_op(i32 handle);
  simmpi::Comm translate_comm(i32 handle);
  i32 intern_comm(simmpi::Comm host_comm) { return shared_->intern_comm(host_comm); }

  // --- Request table (rank-local; requests are not shared across ranks,
  // but the guest threads of one rank share it under MPI_THREAD_MULTIPLE,
  // so the table structure is mutex-guarded. A returned pointer stays valid
  // across unrelated add/drop calls — std::map node stability — and MPI
  // forbids two threads completing the same request.) ----------------------
  i32 add_request(simmpi::Request req);
  simmpi::Request* find_request(i32 handle);
  void drop_request(i32 handle);

  // --- MPI_Init bookkeeping (atomic: any guest thread may query) -----------
  std::atomic<bool> initialized{false};
  std::atomic<bool> finalized{false};
  /// Thread level granted by MPI_Init_thread (abi::MPI_THREAD_*); plain
  /// MPI_Init leaves it at SINGLE.
  std::atomic<i32> thread_level{0};

  // --- Figure 6 instrumentation ---------------------------------------------
  const std::vector<TranslationSample>& samples() const { return samples_; }

  /// Staging buffers for the copy-based ablation mode (zero_copy = false).
  /// Two independent slots so one host call can stage a send view and a
  /// receive view at the same time (Sendrecv, the collectives) without the
  /// views clobbering each other. Thread-local: staging never outlives one
  /// host call, and concurrent guest threads of the same rank must not
  /// clobber each other's in-flight views.
  std::vector<u8>& staging(int slot);

 private:
  simmpi::Rank* rank_;
  std::shared_ptr<SharedHandleState> shared_;
  bool zero_copy_;
  bool record_translation_;
  std::mutex req_mu_;  // guards requests_/next_request_/samples_
  std::map<i32, simmpi::Request> requests_;
  i32 next_request_ = 1;
  std::vector<TranslationSample> samples_;
};

}  // namespace mpiwasm::embed
