// MPIWasm embedder driver: compiles a module once, then instantiates and
// runs it on N rank threads (the in-process analogue of
// `mpirun -np N ./mpiwasm app.wasm`, paper Listing 4 — each MPI rank gets
// its own embedder instance with its own Wasm module instance, §4.3).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "embedder/env.h"
#include "runtime/engine.h"
#include "simmpi/world.h"
#include "wasi/wasi.h"

namespace mpiwasm::embed {

struct EmbedderConfig {
  rt::EngineConfig engine;                 // tier + compilation cache (§3.3)
  simmpi::NetworkProfile net_profile = simmpi::NetworkProfile::zero();
  /// Collective algorithm tuning for the simulated world (coll_algos.h);
  /// picks up MPIWASM_COLL_* env overrides by default.
  simmpi::CollTuning coll = simmpi::CollTuning::from_env();
  std::vector<std::string> args = {"app.wasm"};
  std::vector<wasi::Preopen> preopens;     // the -d flag entries (§3.4)
  bool zero_copy = true;                   // §3.5 (false = ablation mode)
  bool record_translation = false;         // Figure 6 instrumentation
  /// Faasm-like baseline (§6 / Figure 7): MPI re-implemented over a
  /// distributed messaging substrate — copies instead of zero-copy, gRPC
  /// profile costs, and no user-defined communicators.
  bool faasm_compat = false;
  /// Per-rank stdout capture; default discards into process stdout.
  std::function<void(int rank, std::string_view)> stdout_sink;
  /// Extra host imports (e.g. the bench harness's "bench.report"). Called
  /// once per rank before instantiation; mirrors Wasmer's ergonomic
  /// dynamic extension of the embedder's functionality (§3.1).
  std::function<void(rt::ImportTable&, int rank)> extra_imports;
  /// When non-empty, runtime tracing is enabled and a Chrome trace-event
  /// JSON (Perfetto-loadable) is written here after the world finishes.
  /// Defaults from MPIWASM_TRACE when unset (see Embedder ctor).
  std::string trace_path;
  /// mpiP-style per-call MPI profile, rendered into RunResult::profile_text
  /// at finalize.
  bool profile = false;
};

struct RunResult {
  int exit_code = 0;
  f64 compile_ms = 0;
  f64 wall_seconds = 0;
  bool loaded_from_cache = false;
  /// Per-tier execution stats, taken after the world finishes: tier-up
  /// counters for kTiered runs, the native-code census (functions compiled,
  /// interpreter fallbacks, machine-code bytes) for kJit and tiered-to-jit
  /// runs; zeros for the purely interpreted/threaded tiers.
  rt::TierUpSnapshot tierup;
  /// Merged Figure-6 samples from all ranks (record_translation only).
  std::vector<TranslationSample> translation_samples;
  /// The rendered mpiP-style report (EmbedderConfig::profile only).
  std::string profile_text;
};

class Embedder {
 public:
  explicit Embedder(EmbedderConfig config);

  const EmbedderConfig& config() const { return config_; }

  /// Decode + validate + compile (cache-aware). Throws rt::CompileError.
  std::shared_ptr<const rt::CompiledModule> compile(
      std::span<const u8> wasm_bytes);

  /// Runs `_start` of the compiled module on `ranks` MPI ranks.
  RunResult run_world(std::shared_ptr<const rt::CompiledModule> cm, int ranks);
  RunResult run_world(std::span<const u8> wasm_bytes, int ranks);

 private:
  EmbedderConfig config_;
};

}  // namespace mpiwasm::embed
