#include "embedder/embedder.h"

#include <cstdlib>
#include <mutex>

#include "embedder/mpi_host.h"
#include "embedder/threads_host.h"
#include "runtime/cache.h"
#include "support/log.h"
#include "support/timing.h"
#include "support/trace.h"

namespace mpiwasm::embed {

Embedder::Embedder(EmbedderConfig config) : config_(std::move(config)) {
  if (config_.faasm_compat) {
    // Faasm routes MPI through its gRPC-based Faabric messaging layer and
    // stages buffers through its state store — model both (§6).
    config_.net_profile = simmpi::NetworkProfile::grpc_messaging();
    config_.zero_copy = false;
  }
  // Tracing switches on at construction, not at run_world, so compile-time
  // events (module cache hit/miss, ahead-of-time jit compiles) are captured.
  if (config_.trace_path.empty()) {
    if (const char* v = std::getenv("MPIWASM_TRACE")) config_.trace_path = v;
  }
  if (!config_.trace_path.empty()) trace::enable_tracing(true);
  if (config_.profile) trace::enable_profiling(true);
}

std::shared_ptr<const rt::CompiledModule> Embedder::compile(
    std::span<const u8> wasm_bytes) {
  return rt::compile(wasm_bytes, config_.engine);
}

RunResult Embedder::run_world(std::span<const u8> wasm_bytes, int ranks) {
  return run_world(compile(wasm_bytes), ranks);
}

RunResult Embedder::run_world(std::shared_ptr<const rt::CompiledModule> cm,
                              int ranks) {
  RunResult result;
  result.compile_ms = cm->compile_ms;
  result.loaded_from_cache = cm->loaded_from_cache;

  auto shared_state = std::make_shared<SharedHandleState>();
  // The learned collective table persists next to the JIT code cache so a
  // warm run starts on the previously measured winners.
  simmpi::CollTuning coll = config_.coll;
  if (coll.autotune && coll.autotune_file.empty())
    coll.autotune_file = rt::autotune_table_path(config_.engine.cache_dir);
  simmpi::World world(ranks, config_.net_profile, coll);

  std::mutex result_mu;
  Stopwatch wall;

  world.run([&](simmpi::Rank& rank) {
    if (trace::active()) trace::set_thread_label("rank", rank.world_rank());
    Stopwatch rank_wall;
    // Per-rank embedder instance state (paper §4.3: "each MPI rank
    // corresponds to one instance of the embedder with its own module").
    Env env(&rank, shared_state, config_.zero_copy,
            config_.record_translation);

    wasi::WasiConfig wcfg;
    wcfg.args = config_.args;
    wcfg.env = {{"MPIWASM_RANK", std::to_string(rank.world_rank())},
                {"MPIWASM_SIZE", std::to_string(world.size())}};
    wcfg.preopens = config_.preopens;
    wcfg.random_seed = u64(rank.world_rank()) * 0x9E3779B97F4A7C15ull + 1;
    if (config_.stdout_sink) {
      int r = rank.world_rank();
      wcfg.stdout_sink = [this, r](std::string_view s) {
        config_.stdout_sink(r, s);
      };
    }
    wasi::WasiEnv wasi_env(std::move(wcfg));

    rt::ImportTable imports;
    wasi_env.register_imports(imports);
    register_mpi_host_functions(imports, config_.faasm_compat);
    // wasi-threads: guest threads of this rank run in the same Instance and
    // the same simmpi Rank context; the registry joins them before the
    // Instance goes away.
    GuestThreads guest_threads(&rank);
    guest_threads.register_imports(imports);
    if (config_.extra_imports) config_.extra_imports(imports, rank.world_rank());

    rt::Instance instance(cm, imports, &env);

    int exit_code = 0;
    try {
      trace::Scope span("guest", "guest._start");
      instance.invoke("_start");
    } catch (const rt::ProcExit& e) {
      exit_code = e.code();
    } catch (...) {
      // _start trapped. Guest threads must be parked before `instance` is
      // destroyed; abort first so ones blocked in MPI calls unblock.
      rank.world().request_abort(-1);
      try {
        guest_threads.join_all();
      } catch (...) {
        // The _start trap is the primary error.
      }
      throw;
    }
    // Join spawned guest threads before the Instance (and Env) they execute
    // in leave scope; a guest thread's trap resurfaces here as the rank's
    // failure.
    guest_threads.join_all();
    // The rank's wall time is the denominator for the profile's "% of
    // aggregate rank wall" column.
    if (trace::active()) trace::profile_add_wall(rank_wall.elapsed_ns());

    std::lock_guard<std::mutex> lock(result_mu);
    if (exit_code != 0 && result.exit_code == 0) result.exit_code = exit_code;
    if (config_.record_translation) {
      result.translation_samples.insert(result.translation_samples.end(),
                                        env.samples().begin(),
                                        env.samples().end());
    }
  });

  result.wall_seconds = wall.elapsed_s();
  // Cheap for every tier; carries the native-code census for kJit modules
  // and the promotion counters for kTiered ones (zeros elsewhere).
  result.tierup = rt::tierup_snapshot(*cm);

  // Flush observability output now that every rank thread has joined (the
  // join gives the flush a happens-before over all per-thread rings). Only
  // config-driven sessions flush-and-reset here; callers that flipped the
  // trace switches themselves manage their own lifecycle.
  if (!config_.trace_path.empty() || config_.profile) {
    if (!config_.trace_path.empty())
      trace::write_chrome_json(config_.trace_path);
    if (config_.profile) result.profile_text = trace::profile_report();
    trace::reset();
  }
  return result;
}

}  // namespace mpiwasm::embed
