// The Wasm-side MPI ABI: the constants our custom `mpi.h` exposes to
// modules (paper §3.2, Listing 2) and that MPIWasm's translation layer
// decodes (§3.6).
//
// The paper's key observation: MPI mandates no ABI, so the embedder defines
// its own portable one — every opaque MPI type becomes a 32-bit integer ID
// from the module's perspective, translated to host-library handles inside
// the embedder. This header is the single source of truth shared by the
// embedder (decoder side) and the kernel toolchain (encoder side).
#pragma once

#include "support/common.h"

namespace mpiwasm::embed::abi {

// Return codes.
constexpr i32 MPI_SUCCESS = 0;
constexpr i32 MPI_ERR_OTHER = 1;

// Communicators.
constexpr i32 MPI_COMM_WORLD = 0;
constexpr i32 MPI_COMM_NULL = -1;

// Wildcards.
constexpr i32 MPI_ANY_SOURCE = -1;
constexpr i32 MPI_ANY_TAG = -1;

// Datatypes (values align with simmpi::Datatype).
constexpr i32 MPI_BYTE = 0;
constexpr i32 MPI_CHAR = 1;
constexpr i32 MPI_INT = 2;
constexpr i32 MPI_FLOAT = 3;
constexpr i32 MPI_DOUBLE = 4;
constexpr i32 MPI_LONG = 5;
constexpr i32 MPI_UNSIGNED = 6;
constexpr i32 MPI_LONG_LONG = 7;

// Reduction ops (values align with simmpi::ReduceOp).
constexpr i32 MPI_SUM = 0;
constexpr i32 MPI_PROD = 1;
constexpr i32 MPI_MAX = 2;
constexpr i32 MPI_MIN = 3;
constexpr i32 MPI_LAND = 4;
constexpr i32 MPI_LOR = 5;
constexpr i32 MPI_BAND = 6;
constexpr i32 MPI_BOR = 7;

// In-place collectives: a module-pointer sentinel (0xFFFFFFFF can never be
// the base of a real buffer) passed as sendbuf — or recvbuf for
// MPI_Scatter — exactly like the real MPI's pointer-constant MPI_IN_PLACE.
constexpr i32 MPI_IN_PLACE = -1;

// Requests.
constexpr i32 MPI_REQUEST_NULL = 0;

// Thread support levels (MPI_Init_thread / MPI_Query_thread). The embedder
// always grants MPI_THREAD_MULTIPLE: every rank's guest threads funnel into
// one internally synchronized simmpi Rank.
constexpr i32 MPI_THREAD_SINGLE = 0;
constexpr i32 MPI_THREAD_FUNNELED = 1;
constexpr i32 MPI_THREAD_SERIALIZED = 2;
constexpr i32 MPI_THREAD_MULTIPLE = 3;

// MPI_Status layout in module memory: 4 x i32
//   { MPI_SOURCE, MPI_TAG, MPI_ERROR, internal_count_bytes }
constexpr u32 kStatusSizeBytes = 16;
constexpr i32 MPI_STATUS_IGNORE = 0;  // null pointer

// comm_split sentinel.
constexpr i32 MPI_UNDEFINED = -9999;

}  // namespace mpiwasm::embed::abi
