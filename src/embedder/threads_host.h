// Host side of the wasi-threads proposal: the "wasi" "thread-spawn" import
// plus the per-rank registry of spawned guest threads.
//
// The guest imports `(wasi::thread-spawn (param i32) (result i32))` and
// exports `wasi_thread_start(tid, arg)`. Spawning instantiates NO new
// module here: the threads proposal's shared linear memory means every
// guest thread enters the SAME Instance (per-thread frame arenas make that
// safe), mirroring how wasi-libc's pthread shim uses the API. Spawned
// threads inherit their parent's simmpi rank binding, so MPI calls from any
// guest thread funnel into the same Rank (MPI_THREAD_MULTIPLE).
#pragma once

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/instance.h"
#include "simmpi/world.h"

namespace mpiwasm::embed {

/// Per-rank guest-thread registry. register_imports installs the
/// thread-spawn import; join_all (idempotent; the destructor also runs it)
/// joins every spawned thread and rethrows the first guest-thread error.
/// `rank` may be null for pure-engine modules (no MPI): spawned threads
/// then run with no simmpi binding and abort propagation is skipped.
class GuestThreads {
 public:
  explicit GuestThreads(simmpi::Rank* rank = nullptr) : rank_(rank) {}
  ~GuestThreads();
  GuestThreads(const GuestThreads&) = delete;
  GuestThreads& operator=(const GuestThreads&) = delete;

  void register_imports(rt::ImportTable& imports);

  /// Joins every spawned guest thread (including threads spawned while
  /// joining) and rethrows the first exception a guest thread died with.
  /// Must run before the Instance the threads execute in is destroyed.
  void join_all();

 private:
  simmpi::Rank* rank_;
  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::exception_ptr first_error_;
};

}  // namespace mpiwasm::embed
