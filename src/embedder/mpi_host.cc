#include "embedder/mpi_host.h"

#include <cstring>
#include <thread>

#include "simmpi/api.h"
#include "support/timing.h"
#include "support/trace.h"

namespace mpiwasm::embed {

namespace {

using rt::HostContext;
using rt::LinearMemory;
using rt::Slot;
using simmpi::Datatype;
using simmpi::Status;
using wasm::FuncType;
using wasm::ValType;

constexpr ValType I32 = ValType::kI32;
constexpr ValType F64V = ValType::kF64;

Env& env_of(HostContext& ctx) {
  auto* env = static_cast<Env*>(ctx.user_data());
  if (env == nullptr)
    throw rt::Trap(rt::TrapKind::kHostError, "MPI host call without Env");
  return *env;
}

/// Converts host-side MPI failures into guest-visible traps: the default
/// MPI error handler is MPI_ERRORS_ARE_FATAL, and a fatal error inside a
/// sandboxed module surfaces as a trap delivered to the embedder (§2.2).
template <typename Fn>
void guarded(Fn&& fn) {
  try {
    fn();
  } catch (const simmpi::MpiError& e) {
    throw rt::Trap(rt::TrapKind::kHostError, std::string("MPI error: ") + e.what());
  }
}

void write_status(LinearMemory& mem, u32 status_ptr, const Status& st) {
  if (status_ptr == u32(abi::MPI_STATUS_IGNORE)) return;
  mem.store<i32>(status_ptr + 0, st.source);
  mem.store<i32>(status_ptr + 4, st.tag);
  mem.store<i32>(status_ptr + 8, abi::MPI_SUCCESS);
  mem.store<i32>(status_ptr + 12, i32(st.bytes));
}

/// Resolves a guest buffer for sending. In zero-copy mode this is exactly
/// `memory.base() + ptr` (§3.5) — guest collectives hand this span of
/// linear memory straight to the algorithm layer; the ablation mode stages
/// through a copy, which is what bench_ablation_zerocopy quantifies.
const u8* send_view(Env& env, LinearMemory& mem, u32 ptr, u64 bytes) {
  u8* host = env.translate(mem, ptr, bytes);
  if (env.zero_copy()) return host;
  auto& staging = env.staging(0);
  staging.assign(host, host + bytes);
  return staging.data();
}

/// Send-side view that decodes the MPI_IN_PLACE sentinel instead of
/// translating it as an address.
const void* coll_send_view(Env& env, LinearMemory& mem, u32 ptr, u64 bytes) {
  if (ptr == u32(abi::MPI_IN_PLACE)) return simmpi::kInPlace;
  return send_view(env, mem, ptr, bytes);
}

struct RecvView {
  u8* host = nullptr;     // where the MPI library writes
  u8* guest = nullptr;    // final destination in module memory
  u64 bytes = 0;
  bool staged = false;
  void commit() const {
    if (staged) std::memcpy(guest, host, bytes);
  }
};

/// `preload` copies the guest contents into the staged buffer first, for
/// calls whose receive buffer is also an input (bcast payload at the root,
/// every MPI_IN_PLACE collective) or may be left partially untouched.
RecvView recv_view(Env& env, LinearMemory& mem, u32 ptr, u64 bytes,
                   bool preload = false) {
  RecvView v;
  v.guest = env.translate(mem, ptr, bytes);
  v.bytes = bytes;
  if (env.zero_copy()) {
    v.host = v.guest;
  } else {
    auto& staging = env.staging(1);
    staging.resize(bytes);
    v.host = staging.data();
    v.staged = true;
    if (preload) std::memcpy(v.host, v.guest, bytes);
  }
  return v;
}

u64 msg_bytes(Env& env, i32 dt_handle, i32 count) {
  // Size query does not go through the instrumented path; it mirrors the
  // wasm-side sizeof knowledge in mpi.h.
  u64 bytes;
  switch (dt_handle) {
    case abi::MPI_BYTE: case abi::MPI_CHAR: bytes = u64(count); break;
    case abi::MPI_INT: case abi::MPI_FLOAT: case abi::MPI_UNSIGNED:
      bytes = u64(count) * 4;
      break;
    default:
      bytes = u64(count) * 8;
  }
  // Credits the payload to the enclosing MpiScope, so every handler that
  // sizes a transfer profiles its bytes without per-handler bookkeeping.
  if (MW_TRACE_ACTIVE()) trace::note_bytes(bytes);
  (void)env;
  return bytes;
}

}  // namespace

void register_mpi_host_functions(rt::ImportTable& t, bool faasm_compat) {
  const std::string ns = "env";

  // Every handler registers through this wrapper so the import name doubles
  // as the trace/profile label (string literals: static storage, as the
  // tracer requires). With tracing and profiling both off the wrapper is one
  // relaxed load plus a call through the captured handler.
  auto add = [&t, &ns](const char* name, FuncType ft, rt::HostFn fn) {
    t.add(ns, name, std::move(ft),
          [name, fn = std::move(fn)](HostContext& ctx, const Slot* a,
                                     Slot* r) {
            if (!MW_TRACE_ACTIVE()) {
              fn(ctx, a, r);
              return;
            }
            trace::MpiScope span(name);
            fn(ctx, a, r);
          });
  };

  add("MPI_Init", FuncType{{I32, I32}, {I32}},
        [](HostContext& ctx, const Slot*, Slot* r) {
          env_of(ctx).initialized = true;
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Init_thread", FuncType{{I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          env.initialized = true;
          // The embedder supports full MPI_THREAD_MULTIPLE (the simmpi Rank
          // is internally synchronized), so `provided` is always MULTIPLE
          // regardless of `required` — MPI permits provided > required.
          env.thread_level = abi::MPI_THREAD_MULTIPLE;
          ctx.memory().store<i32>(a[3].u32v, abi::MPI_THREAD_MULTIPLE);
          // A module asking for more than FUNNELED intends concurrent MPI
          // calls: switch the world's blocking waits to bounded quanta.
          if (a[2].i32v > abi::MPI_THREAD_FUNNELED)
            env.rank().world().set_threaded();
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Query_thread", FuncType{{I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          ctx.memory().store<i32>(a[0].u32v, env.thread_level.load());
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Initialized", FuncType{{I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          ctx.memory().store<i32>(a[0].u32v, env_of(ctx).initialized ? 1 : 0);
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Finalize", FuncType{{}, {I32}},
        [](HostContext& ctx, const Slot*, Slot* r) {
          env_of(ctx).finalized = true;
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Comm_rank", FuncType{{I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            simmpi::Comm comm = env.translate_comm(a[0].i32v);
            ctx.memory().store<i32>(a[1].u32v, env.rank().rank(comm));
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Comm_size", FuncType{{I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            simmpi::Comm comm = env.translate_comm(a[0].i32v);
            ctx.memory().store<i32>(a[1].u32v, env.rank().size(comm));
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Wtime", FuncType{{}, {F64V}},
        [](HostContext& ctx, const Slot*, Slot* r) {
          r->f64v = env_of(ctx).rank().wtime();
        });

  add("MPI_Wtick", FuncType{{}, {F64V}},
        [](HostContext& ctx, const Slot*, Slot* r) {
          r->f64v = env_of(ctx).rank().wtick();
        });

  add("MPI_Abort", FuncType{{I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          env_of(ctx).rank().abort(a[1].i32v);
          r->i32v = abi::MPI_SUCCESS;  // unreachable
        });

  add("MPI_Type_size", FuncType{{I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            Datatype dt = env.translate_datatype(a[0].i32v, 0);
            ctx.memory().store<i32>(a[1].u32v, i32(simmpi::datatype_size(dt)));
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Get_count", FuncType{{I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            LinearMemory& mem = ctx.memory();
            i32 bytes = mem.load<i32>(a[0].u32v + 12);
            Datatype dt = env.translate_datatype(a[1].i32v, 0);
            mem.store<i32>(a[2].u32v, i32(u32(bytes) / simmpi::datatype_size(dt)));
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  // --- Point-to-point -------------------------------------------------------

  add("MPI_Send", FuncType{{I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[2].i32v, a[1].i32v);
            if (MW_TRACE_ACTIVE()) {
              trace::note_arg("peer", a[3].i32v);
              trace::note_arg("tag", a[4].i32v);
            }
            Datatype dt = env.translate_datatype(a[2].i32v, bytes);
            simmpi::Comm comm = env.translate_comm(a[5].i32v);
            const u8* buf = send_view(env, ctx.memory(), a[0].u32v, bytes);
            env.rank().send(buf, a[1].i32v, dt, a[3].i32v, a[4].i32v, comm);
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Recv", FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[2].i32v, a[1].i32v);
            if (MW_TRACE_ACTIVE()) {
              trace::note_arg("peer", a[3].i32v);
              trace::note_arg("tag", a[4].i32v);
            }
            Datatype dt = env.translate_datatype(a[2].i32v, bytes);
            simmpi::Comm comm = env.translate_comm(a[5].i32v);
            RecvView v = recv_view(env, ctx.memory(), a[0].u32v, bytes);
            Status st =
                env.rank().recv(v.host, a[1].i32v, dt, a[3].i32v, a[4].i32v, comm);
            v.commit();
            write_status(ctx.memory(), a[6].u32v, st);
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Isend", FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[2].i32v, a[1].i32v);
            if (MW_TRACE_ACTIVE()) {
              trace::note_arg("peer", a[3].i32v);
              trace::note_arg("tag", a[4].i32v);
            }
            Datatype dt = env.translate_datatype(a[2].i32v, bytes);
            simmpi::Comm comm = env.translate_comm(a[5].i32v);
            // Nonblocking sends must reference stable memory: linear memory
            // base is stable (mmap reservation), so zero-copy is safe here.
            u8* buf = env.translate(ctx.memory(), a[0].u32v, bytes);
            simmpi::Request req =
                env.rank().isend(buf, a[1].i32v, dt, a[3].i32v, a[4].i32v, comm);
            ctx.memory().store<i32>(a[6].u32v, env.add_request(std::move(req)));
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Irecv", FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[2].i32v, a[1].i32v);
            if (MW_TRACE_ACTIVE()) {
              trace::note_arg("peer", a[3].i32v);
              trace::note_arg("tag", a[4].i32v);
            }
            Datatype dt = env.translate_datatype(a[2].i32v, bytes);
            simmpi::Comm comm = env.translate_comm(a[5].i32v);
            u8* buf = env.translate(ctx.memory(), a[0].u32v, bytes);
            simmpi::Request req =
                env.rank().irecv(buf, a[1].i32v, dt, a[3].i32v, a[4].i32v, comm);
            ctx.memory().store<i32>(a[6].u32v, env.add_request(std::move(req)));
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Wait", FuncType{{I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            LinearMemory& mem = ctx.memory();
            i32 handle = mem.load<i32>(a[0].u32v);
            if (handle != abi::MPI_REQUEST_NULL) {
              simmpi::Request* req = env.find_request(handle);
              if (req == nullptr)
                throw simmpi::MpiError("MPI_Wait: invalid request handle");
              Status st = env.rank().wait(*req);
              env.drop_request(handle);
              write_status(mem, a[1].u32v, st);
              mem.store<i32>(a[0].u32v, abi::MPI_REQUEST_NULL);
            }
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Waitall", FuncType{{I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            LinearMemory& mem = ctx.memory();
            i32 count = a[0].i32v;
            for (i32 i = 0; i < count; ++i) {
              u32 req_ptr = a[1].u32v + u32(i) * 4;
              i32 handle = mem.load<i32>(req_ptr);
              if (handle == abi::MPI_REQUEST_NULL) continue;
              simmpi::Request* req = env.find_request(handle);
              if (req == nullptr)
                throw simmpi::MpiError("MPI_Waitall: invalid request handle");
              Status st = env.rank().wait(*req);
              env.drop_request(handle);
              if (a[2].u32v != u32(abi::MPI_STATUS_IGNORE))
                write_status(mem, a[2].u32v + u32(i) * abi::kStatusSizeBytes, st);
              mem.store<i32>(req_ptr, abi::MPI_REQUEST_NULL);
            }
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Test", FuncType{{I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            LinearMemory& mem = ctx.memory();
            i32 handle = mem.load<i32>(a[0].u32v);
            if (handle == abi::MPI_REQUEST_NULL) {
              mem.store<i32>(a[1].u32v, 1);
              return;
            }
            simmpi::Request* req = env.find_request(handle);
            if (req == nullptr)
              throw simmpi::MpiError("MPI_Test: invalid request handle");
            Status st;
            bool done = env.rank().test(*req, &st);
            mem.store<i32>(a[1].u32v, done ? 1 : 0);
            if (done) {
              env.drop_request(handle);
              write_status(mem, a[2].u32v, st);
              mem.store<i32>(a[0].u32v, abi::MPI_REQUEST_NULL);
            }
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Waitany", FuncType{{I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            LinearMemory& mem = ctx.memory();
            const i32 count = a[0].i32v;
            // Polling loop: test() drives the nonblocking-collective
            // progress engine, so collective requests advance while we spin.
            const u64 deadline =
                now_ns() +
                u64(std::chrono::nanoseconds(simmpi::kDeadlockTimeout).count());
            while (true) {
              bool any_active = false;
              for (i32 i = 0; i < count; ++i) {
                u32 req_ptr = a[1].u32v + u32(i) * 4;
                i32 handle = mem.load<i32>(req_ptr);
                if (handle == abi::MPI_REQUEST_NULL) continue;
                simmpi::Request* req = env.find_request(handle);
                if (req == nullptr)
                  throw simmpi::MpiError("MPI_Waitany: invalid request handle");
                any_active = true;
                Status st;
                if (env.rank().test(*req, &st)) {
                  env.drop_request(handle);
                  mem.store<i32>(req_ptr, abi::MPI_REQUEST_NULL);
                  mem.store<i32>(a[2].u32v, i);
                  write_status(mem, a[3].u32v, st);
                  return;
                }
              }
              if (!any_active) {
                mem.store<i32>(a[2].u32v, abi::MPI_UNDEFINED);
                return;
              }
              if (env.rank().world().aborting()) throw simmpi::MpiAbort(-1);
              if (now_ns() > deadline)
                throw simmpi::MpiError("MPI_Waitany timed out (deadlock?)");
              std::this_thread::yield();
            }
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Testall", FuncType{{I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            LinearMemory& mem = ctx.memory();
            const i32 count = a[0].i32v;
            // First a nondestructive pass: MPI_Testall deallocates either
            // every request or none.
            bool all_done = true;
            for (i32 i = 0; i < count; ++i) {
              i32 handle = mem.load<i32>(a[1].u32v + u32(i) * 4);
              if (handle == abi::MPI_REQUEST_NULL) continue;
              simmpi::Request* req = env.find_request(handle);
              if (req == nullptr)
                throw simmpi::MpiError("MPI_Testall: invalid request handle");
              if (!env.rank().request_get_status(*req, nullptr)) {
                all_done = false;
                break;
              }
            }
            mem.store<i32>(a[2].u32v, all_done ? 1 : 0);
            if (!all_done) return;
            for (i32 i = 0; i < count; ++i) {
              u32 req_ptr = a[1].u32v + u32(i) * 4;
              i32 handle = mem.load<i32>(req_ptr);
              Status st;
              if (handle != abi::MPI_REQUEST_NULL) {
                simmpi::Request* req = env.find_request(handle);
                env.rank().test(*req, &st);  // completes immediately
                env.drop_request(handle);
                mem.store<i32>(req_ptr, abi::MPI_REQUEST_NULL);
              }
              if (a[3].u32v != u32(abi::MPI_STATUS_IGNORE))
                write_status(mem, a[3].u32v + u32(i) * abi::kStatusSizeBytes,
                             st);
            }
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Sendrecv",
        FuncType{{I32, I32, I32, I32, I32, I32, I32, I32, I32, I32, I32, I32},
                 {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 sbytes = msg_bytes(env, a[2].i32v, a[1].i32v);
            u64 rbytes = msg_bytes(env, a[7].i32v, a[6].i32v);
            Datatype sdt = env.translate_datatype(a[2].i32v, sbytes);
            Datatype rdt = env.translate_datatype(a[7].i32v, rbytes);
            simmpi::Comm comm = env.translate_comm(a[10].i32v);
            LinearMemory& mem = ctx.memory();
            const u8* sbuf = send_view(env, mem, a[0].u32v, sbytes);
            RecvView v = recv_view(env, mem, a[5].u32v, rbytes);
            Status st = env.rank().sendrecv(sbuf, a[1].i32v, sdt, a[3].i32v,
                                            a[4].i32v, v.host, a[6].i32v, rdt,
                                            a[8].i32v, a[9].i32v, comm);
            v.commit();
            write_status(mem, a[11].u32v, st);
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  // --- Collectives -----------------------------------------------------------

  add("MPI_Barrier", FuncType{{I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] { env.rank().barrier(env.translate_comm(a[0].i32v)); });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Bcast", FuncType{{I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[2].i32v, a[1].i32v);
            Datatype dt = env.translate_datatype(a[2].i32v, bytes);
            simmpi::Comm comm = env.translate_comm(a[4].i32v);
            // preload: the buffer is the payload at the root.
            RecvView v = recv_view(env, ctx.memory(), a[0].u32v, bytes,
                                   /*preload=*/true);
            env.rank().bcast(v.host, a[1].i32v, dt, a[3].i32v, comm);
            v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Reduce", FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[3].i32v, a[2].i32v);
            Datatype dt = env.translate_datatype(a[3].i32v, bytes);
            simmpi::ReduceOp op = env.translate_op(a[4].i32v);
            simmpi::Comm comm = env.translate_comm(a[6].i32v);
            LinearMemory& mem = ctx.memory();
            bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
            const void* sbuf = coll_send_view(env, mem, a[0].u32v, bytes);
            bool is_root = env.rank().rank(comm) == a[5].i32v;
            RecvView v;
            if (is_root)
              v = recv_view(env, mem, a[1].u32v, bytes, /*preload=*/in_place);
            env.rank().reduce(sbuf, is_root ? v.host : nullptr, a[2].i32v, dt,
                              op, a[5].i32v, comm);
            if (is_root) v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Allreduce", FuncType{{I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[3].i32v, a[2].i32v);
            Datatype dt = env.translate_datatype(a[3].i32v, bytes);
            simmpi::ReduceOp op = env.translate_op(a[4].i32v);
            simmpi::Comm comm = env.translate_comm(a[5].i32v);
            LinearMemory& mem = ctx.memory();
            bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
            const void* sbuf = coll_send_view(env, mem, a[0].u32v, bytes);
            RecvView v =
                recv_view(env, mem, a[1].u32v, bytes, /*preload=*/in_place);
            env.rank().allreduce(sbuf, v.host, a[2].i32v, dt, op, comm);
            v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Gather",
        FuncType{{I32, I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
            // In-place gather ignores the root's send triple; size and type
            // then come from the receive side.
            i32 dt_handle = in_place ? a[5].i32v : a[2].i32v;
            u64 sbytes = msg_bytes(env, dt_handle, a[1].i32v);
            Datatype dt = env.translate_datatype(dt_handle, sbytes);
            env.translate_datatype(a[5].i32v, sbytes);  // recv type handle
            simmpi::Comm comm = env.translate_comm(a[7].i32v);
            LinearMemory& mem = ctx.memory();
            const void* sbuf =
                in_place ? simmpi::kInPlace
                         : coll_send_view(env, mem, a[0].u32v, sbytes);
            bool is_root = env.rank().rank(comm) == a[6].i32v;
            u64 total = msg_bytes(env, a[5].i32v, a[4].i32v) *
                        u64(env.rank().size(comm));
            RecvView v;
            if (is_root)
              v = recv_view(env, mem, a[3].u32v, total, /*preload=*/in_place);
            env.rank().gather(sbuf, a[1].i32v, is_root ? v.host : nullptr,
                              a[4].i32v, dt, a[6].i32v, comm);
            if (is_root) v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Scatter",
        FuncType{{I32, I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            bool in_place = a[3].u32v == u32(abi::MPI_IN_PLACE);
            i32 dt_handle = in_place ? a[2].i32v : a[5].i32v;
            u64 rbytes = msg_bytes(env, dt_handle, a[4].i32v);
            Datatype dt = env.translate_datatype(dt_handle, rbytes);
            env.translate_datatype(a[2].i32v, rbytes);
            simmpi::Comm comm = env.translate_comm(a[7].i32v);
            LinearMemory& mem = ctx.memory();
            bool is_root = env.rank().rank(comm) == a[6].i32v;
            u64 total = msg_bytes(env, a[2].i32v, a[1].i32v) *
                        u64(env.rank().size(comm));
            const void* sbuf =
                is_root ? coll_send_view(env, mem, a[0].u32v, total) : nullptr;
            RecvView v;
            void* rbuf = const_cast<void*>(simmpi::kInPlace);
            if (!in_place) {
              v = recv_view(env, mem, a[3].u32v, rbytes);
              rbuf = v.host;
            }
            env.rank().scatter(sbuf, a[1].i32v, rbuf, a[4].i32v, dt, a[6].i32v,
                               comm);
            if (!in_place) v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Allgather",
        FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
            i32 dt_handle = in_place ? a[5].i32v : a[2].i32v;
            u64 sbytes = msg_bytes(env, dt_handle, a[1].i32v);
            Datatype dt = env.translate_datatype(dt_handle, sbytes);
            env.translate_datatype(a[5].i32v, sbytes);
            simmpi::Comm comm = env.translate_comm(a[6].i32v);
            LinearMemory& mem = ctx.memory();
            const void* sbuf =
                in_place ? simmpi::kInPlace
                         : coll_send_view(env, mem, a[0].u32v, sbytes);
            u64 total = msg_bytes(env, a[5].i32v, a[4].i32v) *
                        u64(env.rank().size(comm));
            RecvView v =
                recv_view(env, mem, a[3].u32v, total, /*preload=*/in_place);
            env.rank().allgather(sbuf, a[1].i32v, v.host, a[4].i32v, dt, comm);
            v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Alltoall",
        FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 sblock = msg_bytes(env, a[2].i32v, a[1].i32v);
            Datatype dt = env.translate_datatype(a[2].i32v, sblock);
            env.translate_datatype(a[5].i32v, sblock);
            simmpi::Comm comm = env.translate_comm(a[6].i32v);
            LinearMemory& mem = ctx.memory();
            int n = env.rank().size(comm);
            const u8* sbuf = send_view(env, mem, a[0].u32v, sblock * u64(n));
            u64 rblock = msg_bytes(env, a[5].i32v, a[4].i32v);
            RecvView v = recv_view(env, mem, a[3].u32v, rblock * u64(n));
            env.rank().alltoall(sbuf, a[1].i32v, v.host, a[4].i32v, dt, comm);
            v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Alltoallv",
        FuncType{{I32, I32, I32, I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            Datatype dt = env.translate_datatype(a[3].i32v, 0);
            env.translate_datatype(a[7].i32v, 0);
            simmpi::Comm comm = env.translate_comm(a[8].i32v);
            LinearMemory& mem = ctx.memory();
            int n = env.rank().size(comm);
            size_t esz = simmpi::datatype_size(dt);
            // Counts/displacements live in module memory as i32 arrays;
            // copy them out (they may be unaligned in linear memory).
            auto load_i32s = [&](u32 ptr) {
              std::vector<i32> v(static_cast<size_t>(n));
              for (int i = 0; i < n; ++i) v[i] = mem.load<i32>(ptr + u32(i) * 4);
              return v;
            };
            std::vector<i32> scounts = load_i32s(a[1].u32v);
            std::vector<i32> sdispls = load_i32s(a[2].u32v);
            std::vector<i32> rcounts = load_i32s(a[5].u32v);
            std::vector<i32> rdispls = load_i32s(a[6].u32v);
            // Validate extents before handing pointers to the host library.
            u64 smax = 0, rmax = 0;
            for (int i = 0; i < n; ++i) {
              smax = std::max(smax, u64(sdispls[i]) + u64(scounts[i]));
              rmax = std::max(rmax, u64(rdispls[i]) + u64(rcounts[i]));
            }
            const u8* sbuf = send_view(env, mem, a[0].u32v, smax * esz);
            RecvView v = recv_view(env, mem, a[4].u32v, rmax * esz,
                                   /*preload=*/true);  // sparse displs
            env.rank().alltoallv(sbuf, scounts.data(), sdispls.data(), v.host,
                                 rcounts.data(), rdispls.data(), dt, comm);
            v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Reduce_scatter", FuncType{{I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            Datatype dt = env.translate_datatype(a[3].i32v, 0);
            simmpi::ReduceOp op = env.translate_op(a[4].i32v);
            simmpi::Comm comm = env.translate_comm(a[5].i32v);
            LinearMemory& mem = ctx.memory();
            int n = env.rank().size(comm);
            int me = env.rank().rank(comm);
            std::vector<i32> counts(static_cast<size_t>(n));
            u64 total = 0;
            for (int i = 0; i < n; ++i) {
              counts[i] = mem.load<i32>(a[2].u32v + u32(i) * 4);
              total += u64(counts[i]);
            }
            u64 esize = simmpi::datatype_size(dt);
            bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
            // In-place input is the full vector in recvbuf; otherwise the
            // receive buffer only holds this rank's block.
            u64 rbytes = (in_place ? total : u64(counts[me])) * esize;
            const void* sbuf =
                in_place ? simmpi::kInPlace
                         : coll_send_view(env, mem, a[0].u32v, total * esize);
            RecvView v =
                recv_view(env, mem, a[1].u32v, rbytes, /*preload=*/in_place);
            env.rank().reduce_scatter(sbuf, v.host, counts.data(), dt, op,
                                      comm);
            v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Scan", FuncType{{I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[3].i32v, a[2].i32v);
            Datatype dt = env.translate_datatype(a[3].i32v, bytes);
            simmpi::ReduceOp op = env.translate_op(a[4].i32v);
            simmpi::Comm comm = env.translate_comm(a[5].i32v);
            LinearMemory& mem = ctx.memory();
            bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
            const void* sbuf = coll_send_view(env, mem, a[0].u32v, bytes);
            RecvView v =
                recv_view(env, mem, a[1].u32v, bytes, /*preload=*/in_place);
            env.rank().scan(sbuf, v.host, a[2].i32v, dt, op, comm);
            v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Exscan", FuncType{{I32, I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            u64 bytes = msg_bytes(env, a[3].i32v, a[2].i32v);
            Datatype dt = env.translate_datatype(a[3].i32v, bytes);
            simmpi::ReduceOp op = env.translate_op(a[4].i32v);
            simmpi::Comm comm = env.translate_comm(a[5].i32v);
            LinearMemory& mem = ctx.memory();
            bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
            const void* sbuf = coll_send_view(env, mem, a[0].u32v, bytes);
            // preload so rank 0's untouched recvbuf round-trips unchanged
            // through the staged commit.
            RecvView v =
                recv_view(env, mem, a[1].u32v, bytes, /*preload=*/true);
            env.rank().exscan(sbuf, v.host, a[2].i32v, dt, op, comm);
            v.commit();
          });
          r->i32v = abi::MPI_SUCCESS;
        });

  // --- Nonblocking collectives (schedule-based; not in faasm_compat mode).
  // Like MPI_Isend, these must reference stable memory until completion, so
  // they always hand the translated linear-memory pointer straight to the
  // host library (the mmap-reserved base never moves) — the copy-ablation
  // staging path cannot express a deferred completion. -----------------------

  if (!faasm_compat) {
    add("MPI_Ibarrier", FuncType{{I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              simmpi::Comm comm = env.translate_comm(a[0].i32v);
              simmpi::Request req = env.rank().ibarrier(comm);
              ctx.memory().store<i32>(a[1].u32v,
                                      env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Ibcast", FuncType{{I32, I32, I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              u64 bytes = msg_bytes(env, a[2].i32v, a[1].i32v);
              Datatype dt = env.translate_datatype(a[2].i32v, bytes);
              simmpi::Comm comm = env.translate_comm(a[4].i32v);
              u8* buf = env.translate(ctx.memory(), a[0].u32v, bytes);
              simmpi::Request req =
                  env.rank().ibcast(buf, a[1].i32v, dt, a[3].i32v, comm);
              ctx.memory().store<i32>(a[5].u32v,
                                      env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Ireduce",
          FuncType{{I32, I32, I32, I32, I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              u64 bytes = msg_bytes(env, a[3].i32v, a[2].i32v);
              Datatype dt = env.translate_datatype(a[3].i32v, bytes);
              simmpi::ReduceOp op = env.translate_op(a[4].i32v);
              simmpi::Comm comm = env.translate_comm(a[6].i32v);
              LinearMemory& mem = ctx.memory();
              const void* sbuf =
                  a[0].u32v == u32(abi::MPI_IN_PLACE)
                      ? simmpi::kInPlace
                      : env.translate(mem, a[0].u32v, bytes);
              bool is_root = env.rank().rank(comm) == a[5].i32v;
              u8* rbuf =
                  is_root ? env.translate(mem, a[1].u32v, bytes) : nullptr;
              simmpi::Request req = env.rank().ireduce(
                  sbuf, rbuf, a[2].i32v, dt, op, a[5].i32v, comm);
              mem.store<i32>(a[7].u32v, env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Iallreduce",
          FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              u64 bytes = msg_bytes(env, a[3].i32v, a[2].i32v);
              Datatype dt = env.translate_datatype(a[3].i32v, bytes);
              simmpi::ReduceOp op = env.translate_op(a[4].i32v);
              simmpi::Comm comm = env.translate_comm(a[5].i32v);
              LinearMemory& mem = ctx.memory();
              const void* sbuf =
                  a[0].u32v == u32(abi::MPI_IN_PLACE)
                      ? simmpi::kInPlace
                      : env.translate(mem, a[0].u32v, bytes);
              u8* rbuf = env.translate(mem, a[1].u32v, bytes);
              simmpi::Request req =
                  env.rank().iallreduce(sbuf, rbuf, a[2].i32v, dt, op, comm);
              mem.store<i32>(a[6].u32v, env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Iallgather",
          FuncType{{I32, I32, I32, I32, I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
              i32 dt_handle = in_place ? a[5].i32v : a[2].i32v;
              u64 sbytes = msg_bytes(env, dt_handle, a[1].i32v);
              Datatype dt = env.translate_datatype(dt_handle, sbytes);
              env.translate_datatype(a[5].i32v, sbytes);
              simmpi::Comm comm = env.translate_comm(a[6].i32v);
              LinearMemory& mem = ctx.memory();
              u64 total = msg_bytes(env, a[5].i32v, a[4].i32v) *
                          u64(env.rank().size(comm));
              const void* sbuf =
                  in_place ? simmpi::kInPlace
                           : env.translate(mem, a[0].u32v, sbytes);
              u8* rbuf = env.translate(mem, a[3].u32v, total);
              simmpi::Request req = env.rank().iallgather(
                  sbuf, a[1].i32v, rbuf, a[4].i32v, dt, comm);
              mem.store<i32>(a[7].u32v, env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Ialltoall",
          FuncType{{I32, I32, I32, I32, I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              u64 sblock = msg_bytes(env, a[2].i32v, a[1].i32v);
              Datatype dt = env.translate_datatype(a[2].i32v, sblock);
              env.translate_datatype(a[5].i32v, sblock);
              simmpi::Comm comm = env.translate_comm(a[6].i32v);
              LinearMemory& mem = ctx.memory();
              int n = env.rank().size(comm);
              u64 rblock = msg_bytes(env, a[5].i32v, a[4].i32v);
              const u8* sbuf =
                  env.translate(mem, a[0].u32v, sblock * u64(n));
              u8* rbuf = env.translate(mem, a[3].u32v, rblock * u64(n));
              simmpi::Request req = env.rank().ialltoall(
                  sbuf, a[1].i32v, rbuf, a[4].i32v, dt, comm);
              mem.store<i32>(a[7].u32v, env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Ireduce_scatter",
          FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              Datatype dt = env.translate_datatype(a[3].i32v, 0);
              simmpi::ReduceOp op = env.translate_op(a[4].i32v);
              simmpi::Comm comm = env.translate_comm(a[5].i32v);
              LinearMemory& mem = ctx.memory();
              int n = env.rank().size(comm);
              int me = env.rank().rank(comm);
              std::vector<i32> counts(static_cast<size_t>(n));
              u64 total = 0;
              for (int i = 0; i < n; ++i) {
                counts[i] = mem.load<i32>(a[2].u32v + u32(i) * 4);
                total += u64(counts[i]);
              }
              u64 esize = simmpi::datatype_size(dt);
              bool in_place = a[0].u32v == u32(abi::MPI_IN_PLACE);
              u64 rbytes = (in_place ? total : u64(counts[me])) * esize;
              const void* sbuf =
                  in_place ? simmpi::kInPlace
                           : env.translate(mem, a[0].u32v, total * esize);
              u8* rbuf = env.translate(mem, a[1].u32v, rbytes);
              // counts is only read while the schedule is built, which
              // happens before ireduce_scatter returns.
              simmpi::Request req = env.rank().ireduce_scatter(
                  sbuf, rbuf, counts.data(), dt, op, comm);
              mem.store<i32>(a[6].u32v, env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Iscan",
          FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              u64 bytes = msg_bytes(env, a[3].i32v, a[2].i32v);
              Datatype dt = env.translate_datatype(a[3].i32v, bytes);
              simmpi::ReduceOp op = env.translate_op(a[4].i32v);
              simmpi::Comm comm = env.translate_comm(a[5].i32v);
              LinearMemory& mem = ctx.memory();
              const void* sbuf =
                  a[0].u32v == u32(abi::MPI_IN_PLACE)
                      ? simmpi::kInPlace
                      : env.translate(mem, a[0].u32v, bytes);
              u8* rbuf = env.translate(mem, a[1].u32v, bytes);
              simmpi::Request req =
                  env.rank().iscan(sbuf, rbuf, a[2].i32v, dt, op, comm);
              mem.store<i32>(a[6].u32v, env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Iexscan",
          FuncType{{I32, I32, I32, I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              u64 bytes = msg_bytes(env, a[3].i32v, a[2].i32v);
              Datatype dt = env.translate_datatype(a[3].i32v, bytes);
              simmpi::ReduceOp op = env.translate_op(a[4].i32v);
              simmpi::Comm comm = env.translate_comm(a[5].i32v);
              LinearMemory& mem = ctx.memory();
              const void* sbuf =
                  a[0].u32v == u32(abi::MPI_IN_PLACE)
                      ? simmpi::kInPlace
                      : env.translate(mem, a[0].u32v, bytes);
              u8* rbuf = env.translate(mem, a[1].u32v, bytes);
              simmpi::Request req =
                  env.rank().iexscan(sbuf, rbuf, a[2].i32v, dt, op, comm);
              mem.store<i32>(a[6].u32v, env.add_request(std::move(req)));
            });
            r->i32v = abi::MPI_SUCCESS;
          });
  }

  // --- Communicator management (not available in faasm_compat mode; Faasm
  // supports no user-defined communicators, §6) ------------------------------

  if (!faasm_compat) {
    add("MPI_Comm_dup", FuncType{{I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              simmpi::Comm parent = env.translate_comm(a[0].i32v);
              simmpi::Comm dup = env.rank().comm_dup(parent);
              ctx.memory().store<i32>(a[1].u32v, env.intern_comm(dup));
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Comm_split", FuncType{{I32, I32, I32, I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              simmpi::Comm parent = env.translate_comm(a[0].i32v);
              int color = a[1].i32v == abi::MPI_UNDEFINED ? simmpi::kUndefined
                                                          : a[1].i32v;
              simmpi::Comm nc = env.rank().comm_split(parent, color, a[2].i32v);
              i32 handle = nc == simmpi::kCommNull ? abi::MPI_COMM_NULL
                                                   : env.intern_comm(nc);
              ctx.memory().store<i32>(a[3].u32v, handle);
            });
            r->i32v = abi::MPI_SUCCESS;
          });

    add("MPI_Comm_free", FuncType{{I32}, {I32}},
          [](HostContext& ctx, const Slot* a, Slot* r) {
            Env& env = env_of(ctx);
            guarded([&] {
              LinearMemory& mem = ctx.memory();
              i32 handle = mem.load<i32>(a[0].u32v);
              env.rank().comm_free(env.translate_comm(handle));
              mem.store<i32>(a[0].u32v, abi::MPI_COMM_NULL);
            });
            r->i32v = abi::MPI_SUCCESS;
          });
  }

  // --- Memory management (§3.7): MPI_Alloc_mem must return a module-space
  // pointer, so it is implemented via the module's own exported malloc. ----

  add("MPI_Alloc_mem", FuncType{{I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          auto malloc_idx = ctx.instance().exported_func("malloc");
          if (!malloc_idx.has_value()) {
            r->i32v = abi::MPI_ERR_OTHER;  // module does not export malloc
            return;
          }
          rt::Value size = rt::Value::from_i32(a[0].i32v);
          rt::Value p = ctx.instance().invoke_index(*malloc_idx, {&size, 1});
          ctx.memory().store<u32>(a[2].u32v, p.as_u32());
          r->i32v = p.as_u32() != 0 ? abi::MPI_SUCCESS : abi::MPI_ERR_OTHER;
        });

  add("MPI_Free_mem", FuncType{{I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          auto free_idx = ctx.instance().exported_func("free");
          if (!free_idx.has_value()) {
            r->i32v = abi::MPI_ERR_OTHER;
            return;
          }
          rt::Value ptr = rt::Value::from_u32(a[0].u32v);
          ctx.instance().invoke_index(*free_idx, {&ptr, 1});
          r->i32v = abi::MPI_SUCCESS;
        });

  add("MPI_Iprobe", FuncType{{I32, I32, I32, I32, I32}, {I32}},
        [](HostContext& ctx, const Slot* a, Slot* r) {
          Env& env = env_of(ctx);
          guarded([&] {
            simmpi::Comm comm = env.translate_comm(a[2].i32v);
            Status st;
            bool ready = env.rank().iprobe(a[0].i32v, a[1].i32v, comm, &st);
            LinearMemory& mem = ctx.memory();
            mem.store<i32>(a[3].u32v, ready ? 1 : 0);
            if (ready) write_status(mem, a[4].u32v, st);
          });
          r->i32v = abi::MPI_SUCCESS;
        });
}

}  // namespace mpiwasm::embed
