#include "embedder/env.h"

#include "runtime/value.h"
#include "support/timing.h"

namespace mpiwasm::embed {

namespace {
[[noreturn]] void bad_handle(const char* what, i32 handle) {
  throw rt::Trap(rt::TrapKind::kHostError,
                 std::string("invalid MPI ") + what + " handle " +
                     std::to_string(handle));
}
}  // namespace

SharedHandleState::SharedHandleState() {
  // Static content mirrors the custom mpi.h (abi.h); the indirection is
  // deliberately kept even though values happen to align — the module ABI
  // and the host library are allowed to diverge (§3.6).
  datatypes_ = {
      {abi::MPI_BYTE, simmpi::Datatype::kByte},
      {abi::MPI_CHAR, simmpi::Datatype::kChar},
      {abi::MPI_INT, simmpi::Datatype::kInt},
      {abi::MPI_FLOAT, simmpi::Datatype::kFloat},
      {abi::MPI_DOUBLE, simmpi::Datatype::kDouble},
      {abi::MPI_LONG, simmpi::Datatype::kLong},
      {abi::MPI_UNSIGNED, simmpi::Datatype::kUnsigned},
      {abi::MPI_LONG_LONG, simmpi::Datatype::kLongLong},
  };
  ops_ = {
      {abi::MPI_SUM, simmpi::ReduceOp::kSum},
      {abi::MPI_PROD, simmpi::ReduceOp::kProd},
      {abi::MPI_MAX, simmpi::ReduceOp::kMax},
      {abi::MPI_MIN, simmpi::ReduceOp::kMin},
      {abi::MPI_LAND, simmpi::ReduceOp::kLand},
      {abi::MPI_LOR, simmpi::ReduceOp::kLor},
      {abi::MPI_BAND, simmpi::ReduceOp::kBand},
      {abi::MPI_BOR, simmpi::ReduceOp::kBor},
  };
  comms_ = {{abi::MPI_COMM_WORLD, simmpi::kCommWorld}};
}

simmpi::Datatype SharedHandleState::lookup_datatype(i32 handle) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = datatypes_.find(handle);
  if (it == datatypes_.end()) bad_handle("datatype", handle);
  return it->second;
}

simmpi::ReduceOp SharedHandleState::lookup_op(i32 handle) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ops_.find(handle);
  if (it == ops_.end()) bad_handle("op", handle);
  return it->second;
}

simmpi::Comm SharedHandleState::lookup_comm(i32 handle) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = comms_.find(handle);
  if (it == comms_.end()) bad_handle("communicator", handle);
  return it->second;
}

i32 SharedHandleState::intern_comm(simmpi::Comm host_comm) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Module handle == host id; the table still mediates every lookup.
  comms_[host_comm] = host_comm;
  return host_comm;
}

Env::Env(simmpi::Rank* rank, std::shared_ptr<SharedHandleState> shared,
         bool zero_copy, bool record_translation)
    : rank_(rank),
      shared_(std::move(shared)),
      zero_copy_(zero_copy),
      record_translation_(record_translation) {}

simmpi::Datatype Env::translate_datatype(i32 handle, u64 msg_bytes_hint) {
  if (record_translation_) {
    u64 t0 = now_ns();
    simmpi::Datatype dt = shared_->lookup_datatype(handle);
    u64 t1 = now_ns();
    std::lock_guard<std::mutex> lock(req_mu_);
    samples_.push_back({handle, msg_bytes_hint, t1 - t0});
    return dt;
  }
  return shared_->lookup_datatype(handle);
}

simmpi::ReduceOp Env::translate_op(i32 handle) {
  return shared_->lookup_op(handle);
}

simmpi::Comm Env::translate_comm(i32 handle) {
  return shared_->lookup_comm(handle);
}

i32 Env::add_request(simmpi::Request req) {
  std::lock_guard<std::mutex> lock(req_mu_);
  i32 h = next_request_++;
  requests_[h] = std::move(req);
  return h;
}

simmpi::Request* Env::find_request(i32 handle) {
  std::lock_guard<std::mutex> lock(req_mu_);
  auto it = requests_.find(handle);
  return it == requests_.end() ? nullptr : &it->second;
}

void Env::drop_request(i32 handle) {
  std::lock_guard<std::mutex> lock(req_mu_);
  requests_.erase(handle);
}

std::vector<u8>& Env::staging(int slot) {
  static thread_local std::vector<u8> bufs[2];
  return bufs[size_t(slot) & 1];
}

}  // namespace mpiwasm::embed
