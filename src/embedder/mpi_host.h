// Registration of the env.MPI_* host functions MPIWasm provides to modules
// (paper §3.7, Listing 3). Each function combines the address translation
// of §3.5 with the handle translation of §3.6 and defers to the host MPI
// library (simmpi).
#pragma once

#include "embedder/env.h"
#include "runtime/instance.h"

namespace mpiwasm::embed {

/// Registers the MPI-2.2 subset under the "env" namespace. The Env for the
/// executing rank is recovered from Instance::user_data at call time.
/// `faasm_compat` restricts the surface to the MPI-1-ish subset Faasm
/// supports (no user communicators; §6) for the Figure-7 baseline.
void register_mpi_host_functions(rt::ImportTable& imports,
                                 bool faasm_compat = false);

}  // namespace mpiwasm::embed
