#include "embedder/threads_host.h"

#include <atomic>

#include "support/trace.h"

namespace mpiwasm::embed {

namespace {

/// Process-wide thread-id allocator. wasi-threads only requires ids to be
/// positive and unique among live threads; monotonically increasing from 1
/// satisfies both and keeps ids meaningful in trace output.
std::atomic<i32> g_next_tid{1};

}  // namespace

GuestThreads::~GuestThreads() {
  try {
    join_all();
  } catch (...) {
    // Destructor path: the rank body already failed; that error wins.
  }
}

void GuestThreads::join_all() {
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch.swap(threads_);
    }
    if (batch.empty()) break;
    for (auto& t : batch) t.join();  // a joining thread may spawn more
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::swap(err, first_error_);
  }
  if (err) std::rethrow_exception(err);
}

void GuestThreads::register_imports(rt::ImportTable& imports) {
  using wasm::ValType;
  imports.add(
      "wasi", "thread-spawn",
      wasm::FuncType{{ValType::kI32}, {ValType::kI32}},
      [this](rt::HostContext& ctx, const rt::Slot* a, rt::Slot* r) {
        rt::Instance& inst = ctx.instance();
        if (!inst.exported_func("wasi_thread_start").has_value()) {
          r->i32v = -1;  // wasi-threads: negative return = spawn failure
          return;
        }
        const i32 tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
        const i32 arg = a[0].i32v;
        // Any spawn makes concurrent MPI callers possible on this rank:
        // switch the world's blocking waits to bounded quanta.
        if (rank_ != nullptr) rank_->world().set_threaded();
        std::lock_guard<std::mutex> lock(mu_);
        threads_.emplace_back([this, &inst, tid, arg] {
          // The guest thread makes MPI calls in its parent rank's context.
          if (rank_ != nullptr) simmpi::World::bind_current(rank_);
          if (trace::active()) trace::set_thread_label("gthread", tid);
          try {
            rt::Value args[2] = {rt::Value::from_i32(tid),
                                 rt::Value::from_i32(arg)};
            inst.invoke("wasi_thread_start", {args, 2});
          } catch (...) {
            {
              std::lock_guard<std::mutex> elock(mu_);
              if (!first_error_) first_error_ = std::current_exception();
            }
            // Unblock peers (and this rank's main thread) that may be
            // waiting on this thread's share of MPI traffic.
            if (rank_ != nullptr) rank_->world().request_abort(-1);
          }
          if (rank_ != nullptr) simmpi::World::bind_current(nullptr);
        });
        r->i32v = tid;
      });
}

}  // namespace mpiwasm::embed
