// Minimal leveled logger. Quiet by default so benchmark output stays clean;
// MPIWASM_LOG=debug|info|warn|error raises/lowers verbosity at runtime.
#pragma once

#include <sstream>
#include <string>

namespace mpiwasm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

#define MW_LOG(level, expr)                                       \
  do {                                                            \
    if ((level) >= ::mpiwasm::log_threshold()) {                  \
      std::ostringstream mw_log_os_;                              \
      mw_log_os_ << expr;                                         \
      ::mpiwasm::log_message((level), mw_log_os_.str());          \
    }                                                             \
  } while (0)

#define MW_DEBUG(expr) MW_LOG(::mpiwasm::LogLevel::kDebug, expr)
#define MW_INFO(expr) MW_LOG(::mpiwasm::LogLevel::kInfo, expr)
#define MW_WARN(expr) MW_LOG(::mpiwasm::LogLevel::kWarn, expr)
#define MW_ERROR(expr) MW_LOG(::mpiwasm::LogLevel::kError, expr)

}  // namespace mpiwasm
