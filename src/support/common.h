// Common aliases and small utilities shared across all MPIWasm-CPP modules.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mpiwasm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

// The paper's embedder assumes little-endian byte order in both the module
// and the host address space (MPIWasm §3.8); we inherit the limitation.
static_assert(std::endian::native == std::endian::little,
              "MPIWasm-CPP supports little-endian hosts only (paper §3.8)");

/// Thrown for internal invariant violations (never for guest-visible traps).
class InternalError : public std::runtime_error {
 public:
  explicit InternalError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fatal(const std::string& msg) {
  throw InternalError(msg);
}

#define MW_CHECK(cond, msg)                                      \
  do {                                                           \
    if (!(cond)) ::mpiwasm::fatal(std::string("check failed: ") + (msg)); \
  } while (0)

}  // namespace mpiwasm
