// mpiwasm-trace: low-overhead runtime tracing and per-rank MPI profiling.
//
// Per-thread lock-free ring buffers of timestamped events. Each rank (and
// each progress thread) writes only to its own ring, so emission takes no
// locks; the registry of rings is mutex-guarded only at thread registration.
// When neither tracing nor profiling is enabled the macros reduce to one
// relaxed atomic load; building with -DMPIWASM_TRACE=OFF (which defines
// MPIWASM_TRACE_DISABLED) compiles them out entirely.
//
// Flush targets:
//   * chrome_json() / write_chrome_json() — Chrome trace-event JSON that
//     loads in Perfetto / chrome://tracing.
//   * profile_report() — an mpiP-style aggregated text report: per-MPI-call
//     counts, bytes, total/mean time, % of aggregate rank wall time, and a
//     per-collective algorithm histogram.
//
// Event strings (name/cat/arg keys/string arg values) must have static
// storage duration: events store the pointers, never copies.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "support/common.h"

namespace mpiwasm::trace {

// ---------------------------------------------------------------------------
// Event record (fixed-size POD; strings are static-storage pointers).

enum class Ph : u8 {
  kComplete,  // "X": ts + dur
  kInstant,   // "i": ts only
};

struct Event {
  u64 ts_ns = 0;
  u64 dur_ns = 0;
  const char* name = nullptr;
  const char* cat = nullptr;
  Ph ph = Ph::kInstant;
  // Up to three integer args plus one string arg, all optional.
  const char* k[3] = {nullptr, nullptr, nullptr};
  i64 v[3] = {0, 0, 0};
  const char* ks = nullptr;
  const char* vs = nullptr;
};

// Fixed-capacity single-writer ring. Overwrites the oldest events once full
// and counts how many were dropped. Exposed in the header for unit tests.
class Ring {
 public:
  explicit Ring(u64 capacity_pow2);

  void push(const Event& e) { buf_[head_++ & mask_] = e; }

  u64 size() const { return head_ < buf_.size() ? head_ : buf_.size(); }
  u64 dropped() const { return head_ < buf_.size() ? 0 : head_ - buf_.size(); }
  u64 capacity() const { return buf_.size(); }

  /// Events oldest-first (only the retained window).
  std::vector<Event> snapshot() const;

 private:
  std::vector<Event> buf_;
  u64 mask_;
  u64 head_ = 0;
};

// ---------------------------------------------------------------------------
// Global enable switches. `active()` is the inline fast-path check used by
// the emission macros/helpers below.

#ifndef MPIWASM_TRACE_DISABLED

namespace detail {
extern std::atomic<bool> g_trace_on;
extern std::atomic<bool> g_prof_on;
}  // namespace detail

inline bool tracing_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}
inline bool profiling_enabled() {
  return detail::g_prof_on.load(std::memory_order_relaxed);
}
inline bool active() { return tracing_enabled() || profiling_enabled(); }

#else  // MPIWASM_TRACE_DISABLED

inline bool tracing_enabled() { return false; }
inline bool profiling_enabled() { return false; }
inline bool active() { return false; }

#endif

void enable_tracing(bool on);
void enable_profiling(bool on);

/// Ring capacity (events per thread) for threads registered after the call.
/// Rounded up to a power of two. Default 1<<15.
void set_ring_capacity(u64 events);

/// Labels the calling thread's timeline, e.g. set_thread_label("rank", 3)
/// -> "rank 3". No-op when inactive. index < 0 omits the number.
void set_thread_label(const char* prefix, int index);

/// Credits `ns` of wall time to the calling thread's profile (used to compute
/// "% of aggregate rank wall" in the report).
void profile_add_wall(u64 ns);

// ---------------------------------------------------------------------------
// Emission. All helpers are cheap no-ops when !active().

void instant(const char* cat, const char* name);
void instant(const char* cat, const char* name, const char* k0, i64 v0);
void instant(const char* cat, const char* name, const char* k0, i64 v0,
             const char* k1, i64 v1);
void instant(const char* cat, const char* name, const char* k0, i64 v0,
             const char* k1, i64 v1, const char* ks, const char* vs);
void instant(const char* cat, const char* name, const char* ks,
             const char* vs);

/// Records one collective-algorithm decision in the per-thread histogram
/// (and, when tracing, callers additionally emit a "coll.select" instant).
void note_algo(const char* coll, const char* algo);

namespace detail {
struct ScopeData {
  u64 start_ns = 0;
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* k[3] = {nullptr, nullptr, nullptr};
  i64 v[3] = {0, 0, 0};
  const char* ks = nullptr;
  const char* vs = nullptr;
  u64 bytes = 0;
  bool armed = false;
};
void scope_open(ScopeData& d, const char* cat, const char* name);
void scope_close(ScopeData& d, bool profile_call);
ScopeData* current_scope();
}  // namespace detail

/// RAII complete-event span. `MpiScope` additionally folds the span into the
/// per-call profile aggregates (count / bytes / total time).
class Scope {
 public:
  Scope(const char* cat, const char* name) {
    if (active()) detail::scope_open(d_, cat, name);
  }
  ~Scope() {
    if (d_.armed) detail::scope_close(d_, /*profile_call=*/false);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  detail::ScopeData d_;
};

class MpiScope {
 public:
  explicit MpiScope(const char* name) {
    if (active()) detail::scope_open(d_, "mpi", name);
  }
  ~MpiScope() {
    if (d_.armed) detail::scope_close(d_, /*profile_call=*/true);
  }
  MpiScope(const MpiScope&) = delete;
  MpiScope& operator=(const MpiScope&) = delete;

 private:
  detail::ScopeData d_;
};

/// Attach an integer arg / a static string arg / a byte count to the
/// innermost open MpiScope or Scope on this thread. No-op when none is open.
void note_arg(const char* key, i64 value);
void note_str(const char* key, const char* value);
void note_bytes(u64 bytes);

// ---------------------------------------------------------------------------
// Flush / inspection.

/// Chrome trace-event JSON ({"traceEvents":[...]}) over all registered
/// threads, oldest-first per thread.
std::string chrome_json();

/// Writes chrome_json() to `path`. Returns false (and logs) on I/O error.
bool write_chrome_json(const std::string& path);

/// mpiP-style text report (empty string when nothing was profiled).
std::string profile_report();

struct CallStats {
  u64 count = 0;
  u64 bytes = 0;
  u64 total_ns = 0;
};

/// Aggregated per-call-name profile across threads (for tests/tools).
std::map<std::string, CallStats> profile_call_stats();

/// Aggregated per-"coll/algo" decision histogram across threads.
std::map<std::string, u64> algo_histogram();

/// Sum of wall time credited via profile_add_wall across threads.
u64 profile_wall_ns();

/// Total events currently retained / dropped across threads.
u64 event_count();
u64 dropped_count();

/// Clears all recorded events, profiles, and labels. Thread registrations
/// stay alive (thread_local pointers into the registry must not dangle), and
/// the enable switches are left untouched.
void reset();

}  // namespace mpiwasm::trace

// ---------------------------------------------------------------------------
// Zero-cost emission macros: the argument expressions are not evaluated when
// tracing/profiling is off (or compiled out).

#ifndef MPIWASM_TRACE_DISABLED
#define MW_TRACE_ACTIVE() (::mpiwasm::trace::active())
#else
#define MW_TRACE_ACTIVE() (false)
#endif

#define MW_TRACE_INSTANT(...)                          \
  do {                                                 \
    if (MW_TRACE_ACTIVE()) {                           \
      ::mpiwasm::trace::instant(__VA_ARGS__);          \
    }                                                  \
  } while (0)

#define MW_TRACE_NOTE_ALGO(coll, algo)                 \
  do {                                                 \
    if (MW_TRACE_ACTIVE()) {                           \
      ::mpiwasm::trace::note_algo((coll), (algo));     \
    }                                                  \
  } while (0)
