// Timing utilities: monotonic stopwatch and a calibrated spin-wait used by
// the simmpi interconnect cost model (DESIGN.md §5). We spin instead of
// sleeping because sleep granularity on a shared box is far coarser than
// the sub-microsecond latencies being modeled.
#pragma once

#include <chrono>

#include "support/common.h"

namespace mpiwasm {

/// Monotonic nanosecond timestamp.
u64 now_ns();

/// Monotonic second-resolution double, used to back MPI_Wtime.
f64 now_seconds();

class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  u64 elapsed_ns() const { return now_ns() - start_; }
  f64 elapsed_us() const { return f64(elapsed_ns()) / 1e3; }
  f64 elapsed_ms() const { return f64(elapsed_ns()) / 1e6; }
  f64 elapsed_s() const { return f64(elapsed_ns()) / 1e9; }

 private:
  u64 start_;
};

/// Busy-waits for approximately `ns` nanoseconds. Yields periodically for
/// long waits so rank threads make progress on few-core hosts.
void spin_for_ns(u64 ns);

}  // namespace mpiwasm
