#include "support/stats.h"

#include <algorithm>
#include <cmath>

namespace mpiwasm {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / double(xs.size()));
}

double gm_slowdown_from_time_ratios(const std::vector<double>& ratios) {
  // ratios are native_time / wasm_time; GM < 1 means wasm is slower.
  double gm = geomean(ratios);
  if (gm == 0.0) return 0.0;
  return 1.0 - gm;  // e.g. gm=0.95 -> 0.05x slowdown, matching §4.5.
}

double gm_speedup(const std::vector<double>& baseline_times,
                  const std::vector<double>& subject_times) {
  std::vector<double> ratios;
  size_t n = std::min(baseline_times.size(), subject_times.size());
  ratios.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (subject_times[i] > 0.0) ratios.push_back(baseline_times[i] / subject_times[i]);
  }
  return geomean(ratios);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double idx = p / 100.0 * double(xs.size() - 1);
  size_t lo = size_t(idx);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - double(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace mpiwasm
