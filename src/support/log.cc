#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mpiwasm {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("MPIWASM_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int> g_threshold{int(initial_level())};
std::mutex g_io_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

LogLevel log_threshold() { return LogLevel(g_threshold.load(std::memory_order_relaxed)); }
void set_log_threshold(LogLevel level) { g_threshold.store(int(level), std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[mpiwasm %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace mpiwasm
