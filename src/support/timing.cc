#include "support/timing.h"

#include <thread>

namespace mpiwasm {

u64 now_ns() {
  return u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count());
}

f64 now_seconds() { return f64(now_ns()) / 1e9; }

void spin_for_ns(u64 ns) {
  if (ns == 0) return;
  const u64 deadline = now_ns() + ns;
  // Yield for any wait beyond ~1us: on oversubscribed hosts (rank threads
  // > cores) pure spinning serializes the whole world — concurrent
  // simulated work must timeshare so its wall-clock windows overlap. The
  // threshold must sit below one compute/poll chunk of the overlap
  // benchmarks, or chunked compute pays a serialization penalty the
  // single-spin blocking baseline does not. Sub-microsecond spins (wire
  // latency modeling) stay pure for precision.
  const bool yielding = ns > 1'000;
  while (now_ns() < deadline) {
    if (yielding) std::this_thread::yield();
  }
}

}  // namespace mpiwasm
