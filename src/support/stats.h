// Statistics helpers for the benchmark harnesses.
//
// The paper reports geometric-mean (GM) slowdowns/speedups across message
// sizes ("GM average slowdown of 0.05x", §4.5) following the benchmarking
// guidance of Hoefler & Belli (SC'15): we reproduce the same reduction.
#pragma once

#include <cstddef>
#include <vector>

#include "support/common.h"

namespace mpiwasm {

/// Online min/max/mean/stddev accumulator.
class RunningStat {
 public:
  void add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive samples. Returns 0 for empty input.
double geomean(const std::vector<double>& xs);

/// Paper-style GM slowdown: GM of (native_time / wasm_time) minus one,
/// negated so that "0.05x slowdown" means wasm is 5% slower on GM average.
/// ratios[i] must be native_metric / wasm_metric with time-like metrics
/// (lower is better).
double gm_slowdown_from_time_ratios(const std::vector<double>& ratios);

/// GM speedup: GM of (baseline_time / subject_time); >1 means subject wins.
double gm_speedup(const std::vector<double>& baseline_times,
                  const std::vector<double>& subject_times);

double percentile(std::vector<double> xs, double p);

}  // namespace mpiwasm
