#include "support/byte_buffer.h"

namespace mpiwasm {

void ByteReader::seek(size_t pos) {
  if (pos > data_.size()) throw DecodeError("seek past end");
  pos_ = pos;
}

void ByteReader::skip(size_t n) {
  if (n > remaining()) throw DecodeError("skip past end");
  pos_ += n;
}

u8 ByteReader::read_u8() {
  if (pos_ >= data_.size()) throw DecodeError("unexpected end of input");
  return data_[pos_++];
}

u8 ByteReader::peek_u8() const {
  if (pos_ >= data_.size()) throw DecodeError("unexpected end of input");
  return data_[pos_];
}

u32 ByteReader::read_u32_le() {
  if (remaining() < 4) throw DecodeError("unexpected end of input (u32)");
  u32 v;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

u64 ByteReader::read_u64_le() {
  if (remaining() < 8) throw DecodeError("unexpected end of input (u64)");
  u64 v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

f32 ByteReader::read_f32_le() { return std::bit_cast<f32>(read_u32_le()); }
f64 ByteReader::read_f64_le() { return std::bit_cast<f64>(read_u64_le()); }

u32 ByteReader::read_leb_u32() {
  u32 result = 0;
  int shift = 0;
  for (int i = 0; i < 5; ++i) {
    u8 byte = read_u8();
    result |= u32(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (i == 4 && (byte & 0xf0) != 0) throw DecodeError("LEB u32 overflow");
      return result;
    }
    shift += 7;
  }
  throw DecodeError("LEB u32 too long");
}

u64 ByteReader::read_leb_u64() {
  u64 result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    u8 byte = read_u8();
    result |= u64(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (i == 9 && (byte & 0x7e) != 0) throw DecodeError("LEB u64 overflow");
      return result;
    }
    shift += 7;
  }
  throw DecodeError("LEB u64 too long");
}

i32 ByteReader::read_leb_i32() {
  i32 result = 0;
  int shift = 0;
  u8 byte;
  for (int i = 0; i < 5; ++i) {
    byte = read_u8();
    result |= i32(byte & 0x7f) << shift;
    shift += 7;
    if ((byte & 0x80) == 0) {
      if (shift < 32 && (byte & 0x40)) result |= i32(~0u << shift);
      return result;
    }
  }
  throw DecodeError("LEB i32 too long");
}

i64 ByteReader::read_leb_i64() {
  i64 result = 0;
  int shift = 0;
  u8 byte;
  for (int i = 0; i < 10; ++i) {
    byte = read_u8();
    result |= i64(byte & 0x7f) << shift;
    shift += 7;
    if ((byte & 0x80) == 0) {
      if (shift < 64 && (byte & 0x40)) result |= i64(~0ull << shift);
      return result;
    }
  }
  throw DecodeError("LEB i64 too long");
}

std::span<const u8> ByteReader::read_bytes(size_t n) {
  if (n > remaining()) throw DecodeError("unexpected end of input (bytes)");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::read_name() {
  u32 len = read_leb_u32();
  auto b = read_bytes(len);
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void ByteWriter::write_u32_le(u32 v) {
  size_t at = buf_.size();
  buf_.resize(at + 4);
  std::memcpy(buf_.data() + at, &v, 4);
}

void ByteWriter::write_u64_le(u64 v) {
  size_t at = buf_.size();
  buf_.resize(at + 8);
  std::memcpy(buf_.data() + at, &v, 8);
}

void ByteWriter::write_f32_le(f32 v) { write_u32_le(std::bit_cast<u32>(v)); }
void ByteWriter::write_f64_le(f64 v) { write_u64_le(std::bit_cast<u64>(v)); }

void ByteWriter::write_leb_u32(u32 v) {
  do {
    u8 byte = v & 0x7f;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    buf_.push_back(byte);
  } while (v != 0);
}

void ByteWriter::write_leb_u64(u64 v) {
  do {
    u8 byte = v & 0x7f;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    buf_.push_back(byte);
  } while (v != 0);
}

void ByteWriter::write_leb_i32(i32 v) {
  bool more = true;
  while (more) {
    u8 byte = v & 0x7f;
    v >>= 7;  // arithmetic shift
    if ((v == 0 && !(byte & 0x40)) || (v == -1 && (byte & 0x40))) {
      more = false;
    } else {
      byte |= 0x80;
    }
    buf_.push_back(byte);
  }
}

void ByteWriter::write_leb_i64(i64 v) {
  bool more = true;
  while (more) {
    u8 byte = v & 0x7f;
    v >>= 7;
    if ((v == 0 && !(byte & 0x40)) || (v == -1 && (byte & 0x40))) {
      more = false;
    } else {
      byte |= 0x80;
    }
    buf_.push_back(byte);
  }
}

void ByteWriter::write_bytes(std::span<const u8> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::write_name(const std::string& s) {
  write_leb_u32(u32(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

size_t ByteWriter::reserve_leb_u32() {
  size_t at = buf_.size();
  for (int i = 0; i < 5; ++i) buf_.push_back(0x80);
  buf_.back() = 0x00;
  return at;
}

void ByteWriter::patch_leb_u32_fixed5(size_t at, u32 v) {
  MW_CHECK(at + 5 <= buf_.size(), "patch out of range");
  for (int i = 0; i < 4; ++i) {
    buf_[at + i] = u8((v & 0x7f) | 0x80);
    v >>= 7;
  }
  buf_[at + 4] = u8(v & 0x7f);
}

}  // namespace mpiwasm
