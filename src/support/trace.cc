#include "support/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "support/log.h"
#include "support/timing.h"

namespace mpiwasm::trace {

#ifndef MPIWASM_TRACE_DISABLED

namespace detail {
std::atomic<bool> g_trace_on{false};
std::atomic<bool> g_prof_on{false};
}  // namespace detail

#endif

namespace {

u64 round_up_pow2(u64 v) {
  u64 p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::atomic<u64> g_ring_capacity{u64(1) << 15};

// Per-thread state. Owned by the registry (so it outlives the thread and can
// be flushed after join); the thread_local below is a non-owning pointer.
// Each thread writes only its own state, with one exception: reset() and the
// flush functions read/clear all states — callers must ensure writer threads
// are quiescent (ranks joined) at that point, which the embedder guarantees
// by flushing after World::run returns.
struct ThreadState {
  explicit ThreadState(u64 cap, u64 id) : ring(cap), tid(id) {}

  Ring ring;
  u64 tid;
  std::string label;
  std::map<std::string, CallStats> calls;
  std::map<std::string, u64> algos;
  u64 wall_ns = 0;
  detail::ScopeData* open_scope = nullptr;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadState>> threads;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives exiting threads
  return *r;
}

thread_local ThreadState* t_state = nullptr;

ThreadState* state() {
  if (t_state) return t_state;
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  u64 cap = g_ring_capacity.load(std::memory_order_relaxed);
  reg.threads.push_back(
      std::make_unique<ThreadState>(cap, reg.threads.size()));
  t_state = reg.threads.back().get();
  return t_state;
}

void json_escape(std::string& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_args(std::string& out, const Event& e) {
  bool first = true;
  out += ",\"args\":{";
  for (int i = 0; i < 3; ++i) {
    if (!e.k[i]) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, e.k[i]);
    out += "\":";
    out += std::to_string(e.v[i]);
  }
  if (e.ks && e.vs) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, e.ks);
    out += "\":\"";
    json_escape(out, e.vs);
    out += '"';
  }
  out += '}';
}

void append_event(std::string& out, const Event& e, u64 tid) {
  char head[160];
  double ts_us = double(e.ts_ns) / 1e3;
  if (e.ph == Ph::kComplete) {
    std::snprintf(head, sizeof(head),
                  "{\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,"
                  "\"tid\":%" PRIu64,
                  ts_us, double(e.dur_ns) / 1e3, tid);
  } else {
    std::snprintf(head, sizeof(head),
                  "{\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,"
                  "\"tid\":%" PRIu64,
                  ts_us, tid);
  }
  out += head;
  out += ",\"name\":\"";
  json_escape(out, e.name ? e.name : "?");
  out += "\",\"cat\":\"";
  json_escape(out, e.cat ? e.cat : "?");
  out += '"';
  if (e.k[0] || (e.ks && e.vs)) append_args(out, e);
  out += '}';
}

Event make_event(Ph ph, const char* cat, const char* name) {
  Event e;
  e.ts_ns = now_ns();
  e.cat = cat;
  e.name = name;
  e.ph = ph;
  return e;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ring

Ring::Ring(u64 capacity_pow2) {
  u64 cap = round_up_pow2(std::max<u64>(capacity_pow2, 2));
  buf_.resize(cap);
  mask_ = cap - 1;
}

std::vector<Event> Ring::snapshot() const {
  std::vector<Event> out;
  u64 n = size();
  out.reserve(n);
  u64 first = head_ - n;  // oldest retained sequence number
  for (u64 i = 0; i < n; ++i) out.push_back(buf_[(first + i) & mask_]);
  return out;
}

// ---------------------------------------------------------------------------
// Switches and configuration

void enable_tracing(bool on) {
#ifndef MPIWASM_TRACE_DISABLED
  detail::g_trace_on.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void enable_profiling(bool on) {
#ifndef MPIWASM_TRACE_DISABLED
  detail::g_prof_on.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void set_ring_capacity(u64 events) {
  g_ring_capacity.store(round_up_pow2(std::max<u64>(events, 2)),
                        std::memory_order_relaxed);
}

void set_thread_label(const char* prefix, int index) {
  if (!active()) return;
  ThreadState* s = state();
  if (index >= 0) {
    s->label = std::string(prefix) + " " + std::to_string(index);
  } else {
    s->label = prefix;
  }
}

void profile_add_wall(u64 ns) {
  if (!active()) return;
  state()->wall_ns += ns;
}

// ---------------------------------------------------------------------------
// Emission

void instant(const char* cat, const char* name) {
  if (!tracing_enabled()) return;
  state()->ring.push(make_event(Ph::kInstant, cat, name));
}

void instant(const char* cat, const char* name, const char* k0, i64 v0) {
  if (!tracing_enabled()) return;
  Event e = make_event(Ph::kInstant, cat, name);
  e.k[0] = k0;
  e.v[0] = v0;
  state()->ring.push(e);
}

void instant(const char* cat, const char* name, const char* k0, i64 v0,
             const char* k1, i64 v1) {
  if (!tracing_enabled()) return;
  Event e = make_event(Ph::kInstant, cat, name);
  e.k[0] = k0;
  e.v[0] = v0;
  e.k[1] = k1;
  e.v[1] = v1;
  state()->ring.push(e);
}

void instant(const char* cat, const char* name, const char* k0, i64 v0,
             const char* k1, i64 v1, const char* ks, const char* vs) {
  if (!tracing_enabled()) return;
  Event e = make_event(Ph::kInstant, cat, name);
  e.k[0] = k0;
  e.v[0] = v0;
  e.k[1] = k1;
  e.v[1] = v1;
  e.ks = ks;
  e.vs = vs;
  state()->ring.push(e);
}

void instant(const char* cat, const char* name, const char* ks,
             const char* vs) {
  if (!tracing_enabled()) return;
  Event e = make_event(Ph::kInstant, cat, name);
  e.ks = ks;
  e.vs = vs;
  state()->ring.push(e);
}

void note_algo(const char* coll, const char* algo) {
  if (!active()) return;
  ThreadState* s = state();
  s->algos[std::string(coll) + "/" + algo] += 1;
}

namespace detail {

void scope_open(ScopeData& d, const char* cat, const char* name) {
  ThreadState* s = state();
  d.start_ns = now_ns();
  d.cat = cat;
  d.name = name;
  d.armed = true;
  s->open_scope = &d;
}

void scope_close(ScopeData& d, bool profile_call) {
  ThreadState* s = state();
  u64 end = now_ns();
  u64 dur = end - d.start_ns;
  if (s->open_scope == &d) s->open_scope = nullptr;
  if (tracing_enabled()) {
    Event e;
    e.ts_ns = d.start_ns;
    e.dur_ns = dur;
    e.cat = d.cat;
    e.name = d.name;
    e.ph = Ph::kComplete;
    for (int i = 0; i < 3; ++i) {
      e.k[i] = d.k[i];
      e.v[i] = d.v[i];
    }
    e.ks = d.ks;
    e.vs = d.vs;
    s->ring.push(e);
  }
  if (profile_call && profiling_enabled()) {
    CallStats& cs = s->calls[d.name];
    cs.count += 1;
    cs.bytes += d.bytes;
    cs.total_ns += dur;
  }
}

ScopeData* current_scope() {
  return t_state ? t_state->open_scope : nullptr;
}

}  // namespace detail

void note_arg(const char* key, i64 value) {
  if (!active()) return;
  detail::ScopeData* d = detail::current_scope();
  if (!d) return;
  for (int i = 0; i < 3; ++i) {
    if (!d->k[i]) {
      d->k[i] = key;
      d->v[i] = value;
      return;
    }
  }
}

void note_str(const char* key, const char* value) {
  if (!active()) return;
  detail::ScopeData* d = detail::current_scope();
  if (!d) return;
  d->ks = key;
  d->vs = value;
}

void note_bytes(u64 bytes) {
  if (!active()) return;
  detail::ScopeData* d = detail::current_scope();
  if (!d) return;
  d->bytes += bytes;
  for (int i = 0; i < 3; ++i) {
    if (d->k[i] && std::string_view(d->k[i]) == "bytes") {
      d->v[i] += i64(bytes);
      return;
    }
  }
  for (int i = 0; i < 3; ++i) {
    if (!d->k[i]) {
      d->k[i] = "bytes";
      d->v[i] = i64(bytes);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Flush

std::string chrome_json() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& t : reg.threads) {
    if (!t->label.empty()) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(t->tid) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      json_escape(out, t->label.c_str());
      out += "\"}}";
    }
    for (const Event& e : t->ring.snapshot()) {
      if (!first) out += ',';
      first = false;
      append_event(out, e, t->tid);
    }
    if (u64 d = t->ring.dropped()) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(t->tid) +
             ",\"name\":\"mpiwasm_dropped_events\",\"args\":{\"count\":" +
             std::to_string(d) + "}}";
    }
  }
  out += "]}";
  return out;
}

bool write_chrome_json(const std::string& path) {
  std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    MW_WARN("trace: cannot open " << path << " for writing");
    return false;
  }
  size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (wrote != json.size()) {
    MW_WARN("trace: short write to " << path);
    return false;
  }
  return true;
}

std::map<std::string, CallStats> profile_call_stats() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::map<std::string, CallStats> out;
  for (const auto& t : reg.threads) {
    for (const auto& [name, cs] : t->calls) {
      CallStats& o = out[name];
      o.count += cs.count;
      o.bytes += cs.bytes;
      o.total_ns += cs.total_ns;
    }
  }
  return out;
}

std::map<std::string, u64> algo_histogram() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::map<std::string, u64> out;
  for (const auto& t : reg.threads) {
    for (const auto& [key, n] : t->algos) out[key] += n;
  }
  return out;
}

u64 profile_wall_ns() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  u64 total = 0;
  for (const auto& t : reg.threads) total += t->wall_ns;
  return total;
}

u64 event_count() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  u64 total = 0;
  for (const auto& t : reg.threads) total += t->ring.size();
  return total;
}

u64 dropped_count() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  u64 total = 0;
  for (const auto& t : reg.threads) total += t->ring.dropped();
  return total;
}

std::string profile_report() {
  auto calls = profile_call_stats();
  auto algos = algo_histogram();
  u64 wall = profile_wall_ns();
  if (calls.empty() && algos.empty()) return "";

  // Sort call rows by total time, descending (the mpiP "Aggregate Time" view).
  std::vector<std::pair<std::string, CallStats>> rows(calls.begin(),
                                                      calls.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });

  std::ostringstream os;
  os << "--- mpiwasm profile "
        "----------------------------------------------------------\n";
  os << "aggregate rank wall time: " << std::fixed;
  os.precision(3);
  os << double(wall) / 1e6 << " ms\n\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-22s %10s %14s %12s %10s %7s\n", "call",
                "count", "bytes", "total_ms", "mean_us", "%wall");
  os << line;
  u64 total_mpi_ns = 0;
  for (const auto& [name, cs] : rows) {
    double pct = wall ? 100.0 * double(cs.total_ns) / double(wall) : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-22s %10" PRIu64 " %14" PRIu64 " %12.3f %10.3f %7.2f\n",
                  name.c_str(), cs.count, cs.bytes, double(cs.total_ns) / 1e6,
                  cs.count ? double(cs.total_ns) / 1e3 / double(cs.count) : 0.0,
                  pct);
    os << line;
    total_mpi_ns += cs.total_ns;
  }
  double tot_pct = wall ? 100.0 * double(total_mpi_ns) / double(wall) : 0.0;
  std::snprintf(line, sizeof(line),
                "%-22s %10s %14s %12.3f %10s %7.2f\n", "[all MPI]", "", "",
                double(total_mpi_ns) / 1e6, "", tot_pct);
  os << line;

  if (!algos.empty()) {
    os << "\ncollective algorithm selections:\n";
    for (const auto& [key, n] : algos) {
      std::snprintf(line, sizeof(line), "  %-32s %10" PRIu64 "\n", key.c_str(),
                    n);
      os << line;
    }
  }
  os << "---------------------------------------------------------------------"
        "---------\n";
  return os.str();
}

void reset() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& t : reg.threads) {
    t->ring = Ring(t->ring.capacity());
    t->calls.clear();
    t->algos.clear();
    t->label.clear();
    t->wall_ns = 0;
    t->open_scope = nullptr;
  }
}

}  // namespace mpiwasm::trace
