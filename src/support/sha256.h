// Minimal from-scratch SHA-256.
//
// MPIWasm keys its compiled-code FileSystemCache with a BLAKE-3 hash of the
// Wasm module bytes (paper §3.3). We substitute SHA-256: any collision-
// resistant content hash yields identical caching semantics (DESIGN.md §2).
#pragma once

#include <array>
#include <span>
#include <string>

#include "support/common.h"

namespace mpiwasm {

struct Sha256Digest {
  std::array<u8, 32> bytes{};
  bool operator==(const Sha256Digest&) const = default;
  /// Lowercase hex rendering, used as the cache file name.
  std::string hex() const;
};

/// One-shot SHA-256 of `data`.
Sha256Digest sha256(std::span<const u8> data);

/// Incremental hasher for streaming inputs (cache serializer).
class Sha256 {
 public:
  Sha256();
  void update(std::span<const u8> data);
  Sha256Digest finish();

 private:
  void process_block(const u8* block);
  std::array<u32, 8> state_;
  std::array<u8, 64> buf_{};
  size_t buf_len_ = 0;
  u64 total_len_ = 0;
};

}  // namespace mpiwasm
