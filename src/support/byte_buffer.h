// Bounds-checked byte reading/writing used by the Wasm binary decoder,
// the module builder, and the compiled-code cache serializer.
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "support/common.h"

namespace mpiwasm {

/// Error raised when a reader runs past the end of its input or decodes a
/// malformed variable-length integer. Decoding errors are recoverable; the
/// Wasm decoder converts them into Status values at the module boundary.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential reader over a non-owning byte span.
class ByteReader {
 public:
  ByteReader() = default;
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  size_t pos() const { return pos_; }
  size_t size() const { return data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ >= data_.size(); }

  void seek(size_t pos);
  void skip(size_t n);

  u8 read_u8();
  u8 peek_u8() const;
  u32 read_u32_le();
  u64 read_u64_le();
  f32 read_f32_le();
  f64 read_f64_le();

  /// LEB128 readers (unsigned/signed, 32/64-bit), per the Wasm spec.
  u32 read_leb_u32();
  u64 read_leb_u64();
  i32 read_leb_i32();
  i64 read_leb_i64();

  std::span<const u8> read_bytes(size_t n);
  std::string read_name();  // LEB length-prefixed UTF-8 name

 private:
  std::span<const u8> data_;
  size_t pos_ = 0;
};

/// Append-only byte writer; the inverse of ByteReader.
class ByteWriter {
 public:
  const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

  void write_u8(u8 v) { buf_.push_back(v); }
  void write_u32_le(u32 v);
  void write_u64_le(u64 v);
  void write_f32_le(f32 v);
  void write_f64_le(f64 v);
  void write_leb_u32(u32 v);
  void write_leb_u64(u64 v);
  void write_leb_i32(i32 v);
  void write_leb_i64(i64 v);
  void write_bytes(std::span<const u8> b);
  void write_name(const std::string& s);

  /// Patches a previously reserved fixed-width 32-bit LEB at `at`.
  void patch_leb_u32_fixed5(size_t at, u32 v);
  /// Reserves 5 bytes for a later patch_leb_u32_fixed5 and returns offset.
  size_t reserve_leb_u32();

 private:
  std::vector<u8> buf_;
};

}  // namespace mpiwasm
