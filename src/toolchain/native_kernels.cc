#include "toolchain/native_kernels.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

namespace mpiwasm::toolchain {

using simmpi::Datatype;
using simmpi::Rank;
using simmpi::ReduceOp;

std::vector<ImbRow> native_imb_run(Rank& rank, const ImbParams& p) {
  const int me = rank.rank();
  const int n = rank.size();
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  const bool scaled = p.routine == ImbRoutine::kAllGather ||
                      p.routine == ImbRoutine::kAlltoall ||
                      p.routine == ImbRoutine::kGather ||
                      p.routine == ImbRoutine::kScatter;
  std::vector<u8> a(size_t(p.max_bytes) * (scaled ? n : 1));
  std::vector<u8> b(size_t(p.max_bytes) * (scaled ? n : 1));
  std::vector<ImbRow> rows;

  for (u32 s = p.min_bytes; s <= p.max_bytes; s *= 2) {
    const u32 iters = imb_iters_for(p, s);
    const int dcount = int(std::max<u32>(s / 8, 1));
    rank.barrier();
    f64 t0 = rank.wtime();
    for (u32 it = 0; it < iters; ++it) {
      switch (p.routine) {
        case ImbRoutine::kPingPong:
          if (me == 0) {
            rank.send(a.data(), int(s), Datatype::kByte, 1, 0);
            rank.recv(b.data(), int(s), Datatype::kByte, 1, 0);
          } else if (me == 1) {
            rank.recv(b.data(), int(s), Datatype::kByte, 0, 0);
            rank.send(a.data(), int(s), Datatype::kByte, 0, 0);
          }
          break;
        case ImbRoutine::kSendRecv:
          rank.sendrecv(a.data(), int(s), Datatype::kByte, right, 0, b.data(),
                        int(s), Datatype::kByte, left, 0);
          break;
        case ImbRoutine::kBcast:
          rank.bcast(a.data(), int(s), Datatype::kByte, 0);
          break;
        case ImbRoutine::kAllReduce:
          rank.allreduce(a.data(), b.data(), dcount, Datatype::kDouble,
                         ReduceOp::kSum);
          break;
        case ImbRoutine::kReduce:
          rank.reduce(a.data(), b.data(), dcount, Datatype::kDouble,
                      ReduceOp::kSum, 0);
          break;
        case ImbRoutine::kAllGather:
          rank.allgather(a.data(), int(s), b.data(), int(s), Datatype::kByte);
          break;
        case ImbRoutine::kAlltoall:
          rank.alltoall(a.data(), int(s), b.data(), int(s), Datatype::kByte);
          break;
        case ImbRoutine::kGather:
          rank.gather(a.data(), int(s), b.data(), int(s), Datatype::kByte, 0);
          break;
        case ImbRoutine::kScatter:
          rank.scatter(a.data(), int(s), b.data(), int(s), Datatype::kByte, 0);
          break;
        case ImbRoutine::kBarrier:
          rank.barrier();
          break;
      }
    }
    f64 t1 = rank.wtime();
    if (me == 0) {
      f64 t_avg = (t1 - t0) / f64(iters) * 1e6;
      if (p.routine == ImbRoutine::kPingPong) t_avg /= 2.0;
      rows.push_back({s, t_avg, iters});
    }
  }
  return rows;
}

OverlapResult native_overlap_run(Rank& rank, const OverlapParams& p) {
  const int me = rank.rank();
  const int nr = rank.size();
  const u32 n = p.n_per_rank;
  std::vector<f64> u(n + 2, 0.0), v(n + 2, 0.0);
  for (u32 i = 1; i <= n; ++i) u[i] = f64((u32(me) * 31 + i) % 7);
  f64 res_local = 0.0, res_global = 0.0;
  auto halo = [&](std::vector<f64>& w) {
    if (me > 0)
      rank.sendrecv(&w[1], 1, Datatype::kDouble, me - 1, 2, &w[0], 1,
                    Datatype::kDouble, me - 1, 1);
    if (me < nr - 1)
      rank.sendrecv(&w[n], 1, Datatype::kDouble, me + 1, 1, &w[n + 1], 1,
                    Datatype::kDouble, me + 1, 2);
  };
  rank.barrier();
  f64 t0 = rank.wtime();
  for (u32 it = 0; it < p.iterations; ++it) {
    halo(u);
    simmpi::Request req;
    if (p.nonblocking)
      req = rank.iallreduce(&res_local, &res_global, 1, Datatype::kDouble,
                            ReduceOp::kSum);
    else
      rank.allreduce(&res_local, &res_global, 1, Datatype::kDouble,
                     ReduceOp::kSum);
    f64 acc = 0.0;
    for (u32 i = 1; i <= n; ++i) {
      v[i] = 0.5 * (u[i - 1] + u[i + 1]);
      f64 d = v[i] - u[i];
      acc += d * d;
    }
    if (p.nonblocking) rank.wait(req);
    res_local = acc;
    u.swap(v);
  }
  rank.barrier();
  f64 t1 = rank.wtime();
  return {t1 - t0, res_global};
}

HpcgResult native_hpcg_run(Rank& rank, const HpcgParams& p) {
  const int me = rank.rank();
  const int n_ranks = rank.size();
  const u32 n = p.n_per_rank;
  std::vector<f64> x(n + 2, 0.0), r(n + 2, 0.0), pv(n + 2, 0.0), ap(n + 2, 0.0);
  for (u32 i = 1; i <= n; ++i) r[i] = pv[i] = 1.0;

  auto dot = [&](const std::vector<f64>& u, const std::vector<f64>& v) {
    f64 local = 0;
    if (p.use_simd) {
      // Mirror the Wasm f64x2 dot exactly: two lane accumulators over the
      // pairs (1,2),(3,4),..., summed lane0 + lane1 at the end, so the
      // residual comparison stays bit-exact in SIMD mode too. A scalar
      // tail covers odd n (the Wasm build rejects odd n, but the native
      // kernel must not silently drop the last element when run alone).
      f64 l0 = 0, l1 = 0;
      u32 i = 1;
      for (; i + 1 <= n; i += 2) {
        l0 += u[i] * v[i];
        l1 += u[i + 1] * v[i + 1];
      }
      if (i <= n) l0 += u[i] * v[i];
      local = l0 + l1;
    } else {
      for (u32 i = 1; i <= n; ++i) local += u[i] * v[i];
    }
    f64 global = 0;
    rank.allreduce(&local, &global, 1, Datatype::kDouble, ReduceOp::kSum);
    return global;
  };
  auto halo = [&](std::vector<f64>& v) {
    if (me > 0)
      rank.sendrecv(&v[1], 1, Datatype::kDouble, me - 1, 2, &v[0], 1,
                    Datatype::kDouble, me - 1, 1);
    if (me < n_ranks - 1)
      rank.sendrecv(&v[n], 1, Datatype::kDouble, me + 1, 1, &v[n + 1], 1,
                    Datatype::kDouble, me + 1, 2);
  };

  f64 rr = dot(r, r);
  rank.barrier();
  f64 t0 = rank.wtime();
  for (u32 it = 0; it < p.iterations; ++it) {
    halo(pv);
    for (u32 i = 1; i <= n; ++i) ap[i] = 2.0 * pv[i] - pv[i - 1] - pv[i + 1];
    f64 alpha = rr / dot(pv, ap);
    for (u32 i = 1; i <= n; ++i) {
      x[i] += alpha * pv[i];
      r[i] -= alpha * ap[i];
    }
    f64 rr_new = dot(r, r);
    f64 beta = rr_new / rr;
    rr = rr_new;
    for (u32 i = 1; i <= n; ++i) pv[i] = r[i] + beta * pv[i];
  }
  f64 t1 = rank.wtime();

  HpcgResult out;
  out.residual = rr;
  const f64 flops = f64(p.iterations) * 14.0 * f64(n) * f64(n_ranks);
  const f64 bytes = f64(p.iterations) * 144.0 * f64(n) * f64(n_ranks);
  out.gflops = flops / (t1 - t0) / 1e9;
  out.gbps = bytes / (t1 - t0) / 1e9;
  return out;
}

IsResult native_is_run(Rank& rank, const IsParams& p) {
  const int me = rank.rank();
  const int n = rank.size();
  const u32 K = p.keys_per_rank;
  const u32 range = 1u << p.key_log2_max;
  const u32 width = (range + u32(n) - 1) / u32(n);

  std::vector<i32> keys(K), sendbuf(K);
  std::vector<i32> scnt(n), sdis(n), rcnt(n), rdis(n), pos(n);
  std::vector<i32> recv(size_t(K) * n);
  std::vector<i32> hist(width);
  bool ok = true;

  rank.barrier();
  f64 t0 = rank.wtime();
  for (u32 rep = 0; rep < p.repetitions; ++rep) {
    u32 x = u32(me) * 0x9E3779B1u + rep + 12345;
    for (u32 i = 0; i < K; ++i) {
      x = x * 1664525u + 1013904223u;
      keys[i] = i32((x >> 8) & (range - 1));
    }
    std::fill(scnt.begin(), scnt.end(), 0);
    for (u32 i = 0; i < K; ++i) ++scnt[u32(keys[i]) / width];
    i32 acc = 0;
    for (int b = 0; b < n; ++b) {
      sdis[b] = pos[b] = acc;
      acc += scnt[b];
    }
    for (u32 i = 0; i < K; ++i) {
      u32 b = u32(keys[i]) / width;
      sendbuf[size_t(pos[b]++)] = keys[i];
    }
    rank.alltoall(scnt.data(), 1, rcnt.data(), 1, Datatype::kInt);
    acc = 0;
    for (int b = 0; b < n; ++b) {
      rdis[b] = acc;
      acc += rcnt[b];
    }
    const i32 total = acc;
    rank.alltoallv(sendbuf.data(), scnt.data(), sdis.data(), recv.data(),
                   rcnt.data(), rdis.data(), Datatype::kInt);
    std::fill(hist.begin(), hist.end(), 0);
    i32 sum = 0;
    for (i32 i = 0; i < total; ++i) {
      i32 k = recv[size_t(i)];
      sum += k;
      ++hist[u32(k) - u32(me) * width];
    }
    i32 emitted = 0;
    for (u32 v = 0; v < width; ++v) {
      for (i32 c = 0; c < hist[v]; ++c)
        recv[size_t(emitted++)] = i32(u32(me) * width + v);
    }
    if (emitted != total) ok = false;
    i32 sum_all = 0;
    rank.allreduce(&sum, &sum_all, 1, Datatype::kInt, ReduceOp::kSum);
  }
  f64 t1 = rank.wtime();

  IsResult out;
  out.mops = f64(K) * f64(n) * f64(p.repetitions) / (t1 - t0) / 1e6;
  out.ok = ok;
  return out;
}

DtResult native_dt_run(Rank& rank, const DtParams& p) {
  const int me = rank.rank();
  const int n = rank.size();
  const u32 D = p.doubles_per_msg;
  std::vector<f64> src(D), rcv(D), acc_buf(D, 0.0);
  for (u32 i = 0; i < D; ++i) src[i] = f64(me) + f64(i) * 1e-6;

  auto combine = [&] {
    // Same arithmetic as the Wasm kernel — including association order, so
    // checksums agree bit-for-bit. Auto-vectorizable here, which is exactly
    // the native advantage the paper attributes to AVX-512 (§4.5).
    for (u32 i = 0; i < D; ++i)
      acc_buf[i] = acc_buf[i] + rcv[i] * 0.5 + rcv[i] * rcv[i] * 1e-9;
  };

  rank.barrier();
  f64 t0 = rank.wtime();
  for (u32 rep = 0; rep < p.repetitions; ++rep) {
    switch (p.topology) {
      case DtTopology::kBlackHole:
        if (me == 0) {
          for (int s = 1; s < n; ++s) {
            rank.recv(rcv.data(), int(D), Datatype::kDouble, s, 7);
            combine();
          }
        } else {
          rank.send(src.data(), int(D), Datatype::kDouble, 0, 7);
        }
        break;
      case DtTopology::kWhiteHole:
        if (me == 0) {
          for (int s = 1; s < n; ++s)
            rank.send(src.data(), int(D), Datatype::kDouble, s, 7);
        } else {
          rank.recv(rcv.data(), int(D), Datatype::kDouble, 0, 7);
          combine();
        }
        break;
      case DtTopology::kShuffle:
        for (int stage = 1; stage < n; stage <<= 1) {
          int partner = me ^ stage;
          if (partner < n) {
            rank.sendrecv(src.data(), int(D), Datatype::kDouble, partner, 7,
                          rcv.data(), int(D), Datatype::kDouble, partner, 7);
            combine();
          }
        }
        break;
    }
  }
  f64 t1 = rank.wtime();

  f64 local_sum = std::accumulate(acc_buf.begin(), acc_buf.end(), 0.0);
  f64 checksum = 0;
  rank.allreduce(&local_sum, &checksum, 1, Datatype::kDouble, ReduceOp::kSum);

  DtResult out;
  f64 edges = p.topology == DtTopology::kShuffle ? f64(n) : f64(n - 1);
  out.mbps = f64(p.repetitions) * edges * f64(D) * 8.0 / (t1 - t0) / 1e6;
  out.checksum = checksum;
  return out;
}

IorResult native_ior_run(Rank& rank, const IorParams& p,
                         const std::string& dir) {
  const int me = rank.rank();
  const int n = rank.size();
  std::vector<u8> block(p.block_bytes);
  for (u32 i = 0; i < p.block_bytes; i += 4) {
    i32 v = i32(i) ^ me;
    std::memcpy(block.data() + i, &v, std::min<size_t>(4, p.block_bytes - i));
  }
  const std::string path = dir + "/r" + std::string(1, char('A' + me)) + ".dat";

  f64 tw = 0, tr = 0;
  for (u32 rep = 0; rep < p.repetitions; ++rep) {
    rank.barrier();
    f64 t0 = rank.wtime();
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    MW_CHECK(fd >= 0, "native ior: open for write failed");
    for (u32 b = 0; b < p.blocks; ++b) {
      ssize_t w = ::write(fd, block.data(), block.size());
      MW_CHECK(w == ssize_t(block.size()), "native ior: short write");
    }
    ::close(fd);
    tw += rank.wtime() - t0;

    rank.barrier();
    t0 = rank.wtime();
    fd = ::open(path.c_str(), O_RDONLY);
    MW_CHECK(fd >= 0, "native ior: open for read failed");
    for (u32 b = 0; b < p.blocks; ++b) {
      ssize_t rres = ::read(fd, block.data(), block.size());
      MW_CHECK(rres == ssize_t(block.size()), "native ior: short read");
    }
    ::close(fd);
    tr += rank.wtime() - t0;
  }

  f64 elapsed[2] = {tw, tr}, max_elapsed[2] = {0, 0};
  rank.allreduce(elapsed, max_elapsed, 2, Datatype::kDouble, ReduceOp::kMax);

  IorResult out;
  const f64 mib = f64(p.blocks) * f64(p.block_bytes) * f64(p.repetitions) *
                  f64(n) / (1024.0 * 1024.0);
  out.write_mibs = mib / max_elapsed[0];
  out.read_mibs = mib / max_elapsed[1];
  return out;
}

}  // namespace mpiwasm::toolchain
