// Threaded kernels (wasi-threads + 0xFE atomics): the shared-memory twins
// of the element-wise micro kernels, a worker-pool CG solve, and the
// guest-concurrency probe for the differential suite.
//
// All three modules share one coordination scheme — a worker-pool epoch
// barrier built purely from guest atomics:
//   epoch  (i32)  main bumps it once per parallel phase and notifies
//   done   (i32)  workers increment it when their chunk is finished; the
//                 last one notifies the main thread parked on it
//   stop   (i32)  raised by shutdown() so workers return from
//                 wasi_thread_start and the host's join completes
// Workers initialize their local epoch cursor to 0 as a *literal*, not an
// initial atomic load: a load could observe an already-bumped epoch and
// silently skip the first phase, deadlocking the main thread's done-count
// wait. Phases are handed out faster than workers can possibly skip ahead
// because main waits for done == nthreads before every bump.
#include "toolchain/kernels.h"

#include <cmath>
#include <vector>

#include "embedder/abi.h"
#include "toolchain/mpi_imports.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::toolchain {

using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;
namespace abi = embed::abi;

namespace {

constexpr ValType I32 = ValType::kI32;
constexpr ValType I64 = ValType::kI64;
constexpr ValType F64 = ValType::kF64;

// Control block (all naturally aligned; page 0 is guest scratch space).
constexpr u32 kEpoch = 2048;
constexpr u32 kDone = 2052;
constexpr u32 kStop = 2056;
constexpr u32 kNThreads = 2060;
constexpr u32 kOpWord = 2064;     // CG phase selector
constexpr u32 kAlpha = 2072;      // f64 scalars broadcast by main
constexpr u32 kBeta = 2080;
constexpr u32 kPartials = 2176;   // kCgDotBlocks f64 dot partials

constexpr i32 kNotifyAll = 0x7FFFFFFF;

constexpr u32 kArrayBase = 1 << 16;

u32 align16(u32 v) { return (v + 15) & ~15u; }

std::vector<u8> finish(ModuleBuilder& b, const char* what) {
  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  MW_CHECK(decoded.ok(),
           std::string(what) + " failed to decode: " + decoded.error);
  auto vr = wasm::validate_module(*decoded.module);
  MW_CHECK(vr.ok, std::string(what) + " failed to validate: " + vr.error);
  return bytes;
}

/// addr = base + i  (i is a byte-offset local).
void tk_addr(FunctionBuilder& f, u32 base, u32 i_local) {
  f.i32_const(i32(base));
  f.local_get(i_local);
  f.op(Op::kI32Add);
}

/// Main-thread side of one parallel phase: reset done, bump epoch, wake
/// the pool. The done reset is sequenced before the bump, so a worker that
/// observes the new epoch (acquire via the seq-cst load in its spin loop)
/// also observes done == 0.
void emit_phase_release(FunctionBuilder& f) {
  f.i32_const(i32(kDone));
  f.i32_const(0);
  f.mem_op(Op::kI32AtomicStore);
  f.i32_const(i32(kEpoch));
  f.i32_const(1);
  f.mem_op(Op::kI32AtomicRmwAdd);
  f.op(Op::kDrop);
  f.i32_const(i32(kEpoch));
  f.i32_const(kNotifyAll);
  f.mem_op(Op::kMemoryAtomicNotify);
  f.op(Op::kDrop);
}

/// Main-thread park until done == nthreads. Reading the final increment
/// synchronizes with the whole RMW release sequence, so every worker's
/// writes from this phase are visible afterwards.
void emit_phase_wait(FunctionBuilder& f, u32 nt_local, u32 scratch_i32) {
  f.block();
  f.loop();
  f.i32_const(i32(kDone));
  f.mem_op(Op::kI32AtomicLoad);
  f.local_tee(scratch_i32);
  f.local_get(nt_local);
  f.op(Op::kI32Eq);
  f.br_if(1);
  f.i32_const(i32(kDone));
  f.local_get(scratch_i32);
  f.i64_const(-1);
  f.mem_op(Op::kMemoryAtomicWait32);
  f.op(Op::kDrop);
  f.br(0);
  f.end();
  f.end();
}

/// Worker main loop around `body` (one invocation per epoch). `cur` must
/// be a zero-initialized i32 local; `e`/`nt` are i32 scratch locals.
/// The worker parks on the epoch word, runs `body` once per bump, then
/// joins the done count (the last arrival wakes the main thread). A raised
/// stop flag makes it return from wasi_thread_start instead.
void emit_worker_loop(FunctionBuilder& f, u32 cur, u32 e, u32 nt_local,
                      const std::function<void()>& body) {
  f.block();  // $exit
  f.loop();   // $phases
  // Park until epoch != cur.
  f.block();  // $changed
  f.loop();   // $spin
  f.i32_const(i32(kEpoch));
  f.mem_op(Op::kI32AtomicLoad);
  f.local_tee(e);
  f.local_get(cur);
  f.op(Op::kI32Ne);
  f.br_if(1);
  f.i32_const(i32(kEpoch));
  f.local_get(cur);
  f.i64_const(-1);
  f.mem_op(Op::kMemoryAtomicWait32);
  f.op(Op::kDrop);
  f.br(0);
  f.end();  // $spin
  f.end();  // $changed
  f.local_get(e);
  f.local_set(cur);
  // shutdown() raises stop before bumping the epoch, so this load is
  // ordered after the worker's acquiring epoch read.
  f.i32_const(i32(kStop));
  f.mem_op(Op::kI32AtomicLoad);
  f.br_if(1);  // -> $exit
  body();
  // done++ — the last arrival wakes main.
  f.i32_const(i32(kDone));
  f.i32_const(1);
  f.mem_op(Op::kI32AtomicRmwAdd);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.local_get(nt_local);
  f.op(Op::kI32Eq);
  f.if_();
  f.i32_const(i32(kDone));
  f.i32_const(kNotifyAll);
  f.mem_op(Op::kMemoryAtomicNotify);
  f.op(Op::kDrop);
  f.end();
  f.br(0);  // $phases
  f.end();  // $phases loop
  f.end();  // $exit
}

/// `for (i = start_b; i < end_b; i += step)` with *local* bounds (the
/// builder's for_loop_i32 sugar only takes a constant start).
void emit_range_loop(FunctionBuilder& f, u32 i, u32 start_b, u32 end_b,
                     i32 step, const std::function<void()>& body) {
  f.local_get(start_b);
  f.local_set(i);
  f.block();
  f.loop();
  f.local_get(i);
  f.local_get(end_b);
  f.op(Op::kI32GeU);
  f.br_if(1);
  body();
  f.local_get(i);
  f.i32_const(step);
  f.op(Op::kI32Add);
  f.local_set(i);
  f.br(0);
  f.end();
  f.end();
}

/// Publishes the thread count and spawns `nthreads` workers (arg = worker
/// index); leaves the init() result (0 ok / 1 spawn failure) on the stack.
void emit_spawn_workers(FunctionBuilder& f, u32 spawn_import, u32 nthreads,
                        u32 w, u32 lim, u32 fail) {
  f.i32_const(i32(kNThreads));
  f.i32_const(i32(nthreads));
  f.mem_op(Op::kI32AtomicStore);
  f.i32_const(i32(nthreads));
  f.local_set(lim);
  f.for_loop_i32(w, 0, lim, 1, [&] {
    f.local_get(w);
    f.call(spawn_import);
    f.i32_const(0);
    f.op(Op::kI32LtS);
    f.if_();
    f.i32_const(1);
    f.local_set(fail);
    f.end();
  });
  f.local_get(fail);
}

/// shutdown(): raise stop, then bump + notify the epoch so parked workers
/// wake, observe the flag, and return from wasi_thread_start.
void emit_shutdown_func(ModuleBuilder& b) {
  auto& f = b.begin_func({{}, {}}, "shutdown");
  f.i32_const(i32(kStop));
  f.i32_const(1);
  f.mem_op(Op::kI32AtomicStore);
  f.i32_const(i32(kEpoch));
  f.i32_const(1);
  f.mem_op(Op::kI32AtomicRmwAdd);
  f.op(Op::kDrop);
  f.i32_const(i32(kEpoch));
  f.i32_const(kNotifyAll);
  f.mem_op(Op::kMemoryAtomicNotify);
  f.op(Op::kDrop);
  f.end();
}

}  // namespace

std::vector<u8> build_threaded_micro_kernel_module(
    const ThreadedKernelParams& p) {
  MW_CHECK(p.kernel == MicroKernel::kDaxpy ||
               p.kernel == MicroKernel::kStencil3,
           "threaded micro kernels cover the element-wise f64 kernels only");
  MW_CHECK(p.n >= 64 && p.n % 16 == 0,
           "threaded kernel size must be a multiple of 16 and >= 64");
  MW_CHECK(p.nthreads >= 1 && p.nthreads <= 64,
           "threaded kernel nthreads must be in 1..64");
  const u32 n = p.n;
  const bool stencil = p.kernel == MicroKernel::kStencil3;
  // Same layout as the single-threaded build (mk_layout, elem = 8).
  const u32 x0 = kArrayBase;
  const u32 y0 = x0 + align16(n * 8);
  const u32 out0 = y0 + align16(n * 8);
  const u32 pages = (out0 + n * 8) / wasm::kPageSize + 2;

  ModuleBuilder b;
  u32 spawn = b.import_func("wasi", "thread-spawn", FuncType{{I32}, {I32}});
  b.add_memory(pages, pages, /*has_max=*/true, /*shared=*/true);
  b.export_memory();

  // --- init() -> i32: inputs (identical to the single-threaded build's
  // f64 pattern), thread-count word, worker spawns ------------------------
  {
    auto& f = b.begin_func({{}, {I32}}, "init");
    u32 i = f.add_local(I32);
    u32 lim = f.add_local(I32);
    u32 fail = f.add_local(I32);
    f.i32_const(i32(n));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 1, [&] {
      // x[i] = f64(i % 97)*0.5 + 1 ; y[i] = f64(i % 89)*0.25 + 2
      for (int arr = 0; arr < 2; ++arr) {
        f.local_get(i);
        f.i32_const(3);
        f.op(Op::kI32Shl);
        f.i32_const(i32(arr == 0 ? x0 : y0));
        f.op(Op::kI32Add);
        f.local_get(i);
        f.i32_const(arr == 0 ? 97 : 89);
        f.op(Op::kI32RemS);
        f.op(Op::kF64ConvertI32S);
        f.f64_const(arr == 0 ? 0.5 : 0.25);
        f.op(Op::kF64Mul);
        f.f64_const(arr == 0 ? 1.0 : 2.0);
        f.op(Op::kF64Add);
        f.mem_op(Op::kF64Store);
      }
    });
    emit_spawn_workers(f, spawn, p.nthreads, i, lim, fail);
    f.end();
  }

  // --- wasi_thread_start(tid, arg): worker over a fixed element chunk ----
  {
    auto& f = b.begin_func({{I32, I32}, {}}, "wasi_thread_start");
    const u32 w = 1;  // arg = worker index
    u32 cur = f.add_local(I32);
    u32 e = f.add_local(I32);
    u32 nt = f.add_local(I32);
    u32 start_b = f.add_local(I32);
    u32 end_b = f.add_local(I32);
    u32 i = f.add_local(I32);
    u32 t = f.add_local(I32);

    f.i32_const(i32(kNThreads));
    f.mem_op(Op::kI32AtomicLoad);
    f.local_set(nt);
    // chunk = ceil(n / nt); my elements = [w*chunk, min((w+1)*chunk, n)).
    f.i32_const(i32(n));
    f.local_get(nt);
    f.op(Op::kI32Add);
    f.i32_const(1);
    f.op(Op::kI32Sub);
    f.local_get(nt);
    f.op(Op::kI32DivU);
    f.local_set(t);  // chunk
    f.local_get(w);
    f.local_get(t);
    f.op(Op::kI32Mul);
    f.local_set(start_b);  // start element for now
    f.local_get(start_b);
    f.local_get(t);
    f.op(Op::kI32Add);
    f.local_set(end_b);  // end element for now
    // end = min(end, n)
    f.local_get(end_b);
    f.i32_const(i32(n));
    f.local_get(end_b);
    f.i32_const(i32(n));
    f.op(Op::kI32LtU);
    f.op(Op::kSelect);
    f.local_set(end_b);
    if (stencil) {
      // The stencil touches the interior [1, n-1) only; x is read-only so
      // chunk boundaries need no halo handling.
      f.local_get(start_b);
      f.i32_const(1);
      f.local_get(start_b);
      f.i32_const(1);
      f.op(Op::kI32GtU);
      f.op(Op::kSelect);
      f.local_set(start_b);
      f.local_get(end_b);
      f.i32_const(i32(n - 1));
      f.local_get(end_b);
      f.i32_const(i32(n - 1));
      f.op(Op::kI32LtU);
      f.op(Op::kSelect);
      f.local_set(end_b);
    }
    // Elements -> byte offsets.
    for (u32 local : {start_b, end_b}) {
      f.local_get(local);
      f.i32_const(3);
      f.op(Op::kI32Shl);
      f.local_set(local);
    }

    emit_worker_loop(f, cur, e, nt, [&] {
      if (!stencil) {
        // y[i] = 2.5*x[i] + y[i] (operation order matches the scalar build)
        emit_range_loop(f, i, start_b, end_b, 8, [&] {
          tk_addr(f, y0, i);
          f.f64_const(2.5);
          tk_addr(f, x0, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          tk_addr(f, y0, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Add);
          f.mem_op(Op::kF64Store);
        });
      } else {
        // out[i] = 0.25*x[i-1] + 0.5*x[i] + 0.25*x[i+1]
        emit_range_loop(f, i, start_b, end_b, 8, [&] {
          tk_addr(f, out0, i);
          tk_addr(f, x0 - 8, i);
          f.mem_op(Op::kF64Load);
          f.f64_const(0.25);
          f.op(Op::kF64Mul);
          tk_addr(f, x0, i);
          f.mem_op(Op::kF64Load);
          f.f64_const(0.5);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Add);
          tk_addr(f, x0 + 8, i);
          f.mem_op(Op::kF64Load);
          f.f64_const(0.25);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Add);
          f.mem_op(Op::kF64Store);
        });
      }
    });
    f.end();
  }

  // --- run(reps) -> f64: one barrier per rep + sequential checksum -------
  {
    auto& f = b.begin_func({{I32}, {F64}}, "run");
    const u32 reps = 0;
    u32 rep = f.add_local(I32);
    u32 d = f.add_local(I32);
    u32 nt = f.add_local(I32);
    u32 i = f.add_local(I32);
    u32 lim = f.add_local(I32);
    u32 acc = f.add_local(F64);
    f.i32_const(i32(kNThreads));
    f.mem_op(Op::kI32AtomicLoad);
    f.local_set(nt);
    f.for_loop_i32(rep, 0, reps, 1, [&] {
      emit_phase_release(f);
      emit_phase_wait(f, nt, d);
    });
    // Checksum: the same sequential scalar pass as the single-threaded
    // build (emit_scalar_sum), so results compare bit-exactly.
    const u32 sum_base = stencil ? out0 : y0;
    f.f64_const(0.0);
    f.local_set(acc);
    f.i32_const(i32(n * 8));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 8, [&] {
      f.local_get(acc);
      tk_addr(f, sum_base, i);
      f.mem_op(Op::kF64Load);
      f.op(Op::kF64Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.end();
  }

  emit_shutdown_func(b);
  return finish(b, "threaded micro kernel module");
}

// ---------------------------------------------------------------------------
// Threaded CG
// ---------------------------------------------------------------------------

std::vector<u8> build_threaded_cg_module(const ThreadedCgParams& p) {
  MW_CHECK(p.n >= kCgDotBlocks * 4 && p.n % kCgDotBlocks == 0,
           "threaded CG size must be a multiple of kCgDotBlocks");
  MW_CHECK(p.nthreads >= 1 && p.nthreads <= kCgDotBlocks,
           "threaded CG nthreads must be in 1..kCgDotBlocks");
  const u32 n = p.n;
  const u32 nb = n / kCgDotBlocks;  // elements per dot block
  // p is padded with one zero element on each side so the Laplacian needs
  // no boundary branches: p[i] lives at pb + 8*(i+1).
  const u32 pb = kArrayBase;
  const u32 ap0 = pb + align16(8 * (n + 2));
  const u32 r0 = ap0 + align16(8 * n);
  const u32 xx0 = r0 + align16(8 * n);
  const u32 b0 = xx0 + align16(8 * n);
  const u32 pages = (b0 + 8 * n) / wasm::kPageSize + 2;

  ModuleBuilder b;
  u32 spawn = b.import_func("wasi", "thread-spawn", FuncType{{I32}, {I32}});
  b.add_memory(pages, pages, /*has_max=*/true, /*shared=*/true);
  b.export_memory();

  // --- init() -> i32 ------------------------------------------------------
  {
    auto& f = b.begin_func({{}, {I32}}, "init");
    u32 i = f.add_local(I32);
    u32 lim = f.add_local(I32);
    u32 fail = f.add_local(I32);
    u32 v = f.add_local(F64);
    f.i32_const(i32(n));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 1, [&] {
      // v = f64(i % 23)*0.5 + 1 ; b[i] = r[i] = p[i] = v (x, Ap stay 0)
      f.local_get(i);
      f.i32_const(23);
      f.op(Op::kI32RemS);
      f.op(Op::kF64ConvertI32S);
      f.f64_const(0.5);
      f.op(Op::kF64Mul);
      f.f64_const(1.0);
      f.op(Op::kF64Add);
      f.local_set(v);
      for (u32 base : {b0, r0}) {
        f.local_get(i);
        f.i32_const(3);
        f.op(Op::kI32Shl);
        f.i32_const(i32(base));
        f.op(Op::kI32Add);
        f.local_get(v);
        f.mem_op(Op::kF64Store);
      }
      f.local_get(i);
      f.i32_const(3);
      f.op(Op::kI32Shl);
      f.i32_const(i32(pb + 8));
      f.op(Op::kI32Add);
      f.local_get(v);
      f.mem_op(Op::kF64Store);
    });
    emit_spawn_workers(f, spawn, p.nthreads, i, lim, fail);
    f.end();
  }

  // --- wasi_thread_start(tid, arg): the three CG phases ------------------
  {
    auto& f = b.begin_func({{I32, I32}, {}}, "wasi_thread_start");
    const u32 w = 1;
    u32 cur = f.add_local(I32);
    u32 e = f.add_local(I32);
    u32 nt = f.add_local(I32);
    u32 blk_lo = f.add_local(I32);
    u32 blk_hi = f.add_local(I32);
    u32 blk = f.add_local(I32);
    u32 i = f.add_local(I32);
    u32 start_b = f.add_local(I32);
    u32 end_b = f.add_local(I32);
    u32 acc = f.add_local(F64);
    u32 t = f.add_local(F64);
    u32 scal = f.add_local(F64);

    f.i32_const(i32(kNThreads));
    f.mem_op(Op::kI32AtomicLoad);
    f.local_set(nt);
    // Fixed block ownership: worker w owns blocks [w*P/nt, (w+1)*P/nt).
    // The partial for a given block is identical no matter which worker
    // computes it, so the residual is nthreads-invariant.
    f.local_get(w);
    f.i32_const(i32(kCgDotBlocks));
    f.op(Op::kI32Mul);
    f.local_get(nt);
    f.op(Op::kI32DivU);
    f.local_set(blk_lo);
    f.local_get(w);
    f.i32_const(1);
    f.op(Op::kI32Add);
    f.i32_const(i32(kCgDotBlocks));
    f.op(Op::kI32Mul);
    f.local_get(nt);
    f.op(Op::kI32DivU);
    f.local_set(blk_hi);

    // Byte range of one block: [blk*nb*8, (blk+1)*nb*8).
    auto block_bounds = [&] {
      f.local_get(blk);
      f.i32_const(i32(nb * 8));
      f.op(Op::kI32Mul);
      f.local_set(start_b);
      f.local_get(start_b);
      f.i32_const(i32(nb * 8));
      f.op(Op::kI32Add);
      f.local_set(end_b);
    };
    auto store_partial = [&] {
      f.i32_const(i32(kPartials));
      f.local_get(blk);
      f.i32_const(3);
      f.op(Op::kI32Shl);
      f.op(Op::kI32Add);
      f.local_get(acc);
      f.mem_op(Op::kF64Store);
    };
    // `for (blk = blk_lo; blk < blk_hi; ++blk)` around `body`.
    auto for_my_blocks = [&](const std::function<void()>& body) {
      f.local_get(blk_lo);
      f.local_set(blk);
      f.block();
      f.loop();
      f.local_get(blk);
      f.local_get(blk_hi);
      f.op(Op::kI32GeU);
      f.br_if(1);
      body();
      f.local_get(blk);
      f.i32_const(1);
      f.op(Op::kI32Add);
      f.local_set(blk);
      f.br(0);
      f.end();
      f.end();
    };

    emit_worker_loop(f, cur, e, nt, [&] {
      f.i32_const(i32(kOpWord));
      f.mem_op(Op::kI32AtomicLoad);
      f.local_tee(i);  // reuse i as the op scratch before the loops
      f.op(Op::kI32Eqz);
      f.if_();
      // --- phase 0: Ap = A*p ; partial[blk] = dot(p, Ap) over blk -------
      for_my_blocks([&] {
        block_bounds();
        f.f64_const(0.0);
        f.local_set(acc);
        emit_range_loop(f, i, start_b, end_b, 8, [&] {
          // t = 2*p[i] - p[i-1] - p[i+1]
          f.f64_const(2.0);
          tk_addr(f, pb + 8, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          tk_addr(f, pb, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Sub);
          tk_addr(f, pb + 16, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Sub);
          f.local_set(t);
          tk_addr(f, ap0, i);
          f.local_get(t);
          f.mem_op(Op::kF64Store);
          // acc += p[i] * t
          f.local_get(acc);
          tk_addr(f, pb + 8, i);
          f.mem_op(Op::kF64Load);
          f.local_get(t);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Add);
          f.local_set(acc);
        });
        store_partial();
      });
      f.else_();
      f.local_get(i);
      f.i32_const(1);
      f.op(Op::kI32Eq);
      f.if_();
      // --- phase 1: x += alpha p ; r -= alpha Ap ; partial = dot(r, r) --
      f.i32_const(i32(kAlpha));
      f.mem_op(Op::kF64Load);
      f.local_set(scal);
      for_my_blocks([&] {
        block_bounds();
        f.f64_const(0.0);
        f.local_set(acc);
        emit_range_loop(f, i, start_b, end_b, 8, [&] {
          tk_addr(f, xx0, i);
          tk_addr(f, xx0, i);
          f.mem_op(Op::kF64Load);
          f.local_get(scal);
          tk_addr(f, pb + 8, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Add);
          f.mem_op(Op::kF64Store);
          tk_addr(f, r0, i);
          tk_addr(f, r0, i);
          f.mem_op(Op::kF64Load);
          f.local_get(scal);
          tk_addr(f, ap0, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Sub);
          f.mem_op(Op::kF64Store);
          f.local_get(acc);
          tk_addr(f, r0, i);
          f.mem_op(Op::kF64Load);
          tk_addr(f, r0, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Add);
          f.local_set(acc);
        });
        store_partial();
      });
      f.else_();
      // --- phase 2: p = r + beta p --------------------------------------
      f.i32_const(i32(kBeta));
      f.mem_op(Op::kF64Load);
      f.local_set(scal);
      for_my_blocks([&] {
        block_bounds();
        emit_range_loop(f, i, start_b, end_b, 8, [&] {
          tk_addr(f, pb + 8, i);
          tk_addr(f, r0, i);
          f.mem_op(Op::kF64Load);
          f.local_get(scal);
          tk_addr(f, pb + 8, i);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Add);
          f.mem_op(Op::kF64Store);
        });
      });
      f.end();
      f.end();
    });
    f.end();
  }

  // --- run(iters) -> f64: orchestrate phases, return the residual --------
  {
    auto& f = b.begin_func({{I32}, {F64}}, "run");
    const u32 iters = 0;
    u32 it = f.add_local(I32);
    u32 d = f.add_local(I32);
    u32 nt = f.add_local(I32);
    u32 i = f.add_local(I32);
    u32 lim = f.add_local(I32);
    u32 rr = f.add_local(F64);
    u32 acc = f.add_local(F64);
    f.i32_const(i32(kNThreads));
    f.mem_op(Op::kI32AtomicLoad);
    f.local_set(nt);

    // rr = dot(r, r), sequentially (init state: r = b).
    f.f64_const(0.0);
    f.local_set(acc);
    f.i32_const(i32(n * 8));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 8, [&] {
      f.local_get(acc);
      tk_addr(f, r0, i);
      f.mem_op(Op::kF64Load);
      tk_addr(f, r0, i);
      f.mem_op(Op::kF64Load);
      f.op(Op::kF64Mul);
      f.op(Op::kF64Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.local_set(rr);

    auto run_phase = [&](i32 op) {
      f.i32_const(i32(kOpWord));
      f.i32_const(op);
      f.mem_op(Op::kI32AtomicStore);
      emit_phase_release(f);
      emit_phase_wait(f, nt, d);
    };
    // acc = sum of the kCgDotBlocks partials, in block order.
    auto combine_partials = [&] {
      f.f64_const(0.0);
      f.local_set(acc);
      f.i32_const(i32(kCgDotBlocks * 8));
      f.local_set(lim);
      f.for_loop_i32(i, 0, lim, 8, [&] {
        f.local_get(acc);
        tk_addr(f, kPartials, i);
        f.mem_op(Op::kF64Load);
        f.op(Op::kF64Add);
        f.local_set(acc);
      });
    };

    f.for_loop_i32(it, 0, iters, 1, [&] {
      run_phase(0);
      combine_partials();  // acc = pAp
      // alpha = rr / pAp
      f.i32_const(i32(kAlpha));
      f.local_get(rr);
      f.local_get(acc);
      f.op(Op::kF64Div);
      f.mem_op(Op::kF64Store);
      run_phase(1);
      combine_partials();  // acc = rr_new
      // beta = rr_new / rr ; rr = rr_new
      f.i32_const(i32(kBeta));
      f.local_get(acc);
      f.local_get(rr);
      f.op(Op::kF64Div);
      f.mem_op(Op::kF64Store);
      f.local_get(acc);
      f.local_set(rr);
      run_phase(2);
    });
    f.local_get(rr);
    f.op(Op::kF64Sqrt);
    f.end();
  }

  emit_shutdown_func(b);
  return finish(b, "threaded CG module");
}

f64 threaded_cg_reference(const ThreadedCgParams& params, u32 iterations) {
  const u32 n = params.n;
  const u32 nb = n / kCgDotBlocks;
  std::vector<f64> p(n + 2, 0.0), ap(n, 0.0), r(n), x(n, 0.0);
  for (u32 i = 0; i < n; ++i) {
    f64 v = f64(i32(i % 23)) * 0.5 + 1.0;
    r[i] = v;
    p[i + 1] = v;
  }
  f64 rr = 0.0;
  for (u32 i = 0; i < n; ++i) rr += r[i] * r[i];
  f64 partial[kCgDotBlocks];
  for (u32 it = 0; it < iterations; ++it) {
    for (u32 blk = 0; blk < kCgDotBlocks; ++blk) {
      f64 acc = 0.0;
      for (u32 i = blk * nb; i < (blk + 1) * nb; ++i) {
        f64 t = 2.0 * p[i + 1] - p[i] - p[i + 2];
        ap[i] = t;
        acc += p[i + 1] * t;
      }
      partial[blk] = acc;
    }
    f64 pap = 0.0;
    for (u32 blk = 0; blk < kCgDotBlocks; ++blk) pap += partial[blk];
    f64 alpha = rr / pap;
    for (u32 blk = 0; blk < kCgDotBlocks; ++blk) {
      f64 acc = 0.0;
      for (u32 i = blk * nb; i < (blk + 1) * nb; ++i) {
        x[i] = x[i] + alpha * p[i + 1];
        r[i] = r[i] - alpha * ap[i];
        acc += r[i] * r[i];
      }
      partial[blk] = acc;
    }
    f64 rrn = 0.0;
    for (u32 blk = 0; blk < kCgDotBlocks; ++blk) rrn += partial[blk];
    f64 beta = rrn / rr;
    rr = rrn;
    for (u32 i = 0; i < n; ++i) p[i + 1] = r[i] + beta * p[i + 1];
  }
  return std::sqrt(rr);
}

// ---------------------------------------------------------------------------
// threads_check: guest-concurrency probe (embedder _start module)
// ---------------------------------------------------------------------------

std::vector<u8> build_threads_check_module() {
  constexpr u32 kCounter = 2128;   // hammered by both workers
  constexpr u32 kWorkers = 2;
  constexpr i32 kIncrements = 1000;
  constexpr u32 kProvidedPtr = 2132;
  constexpr u32 kCmpWord = 2136;

  ModuleBuilder b;
  MpiImports mpi = declare_mpi_imports(b, {});
  u32 init_thread = b.import_func("env", "MPI_Init_thread",
                                  FuncType{{I32, I32, I32, I32}, {I32}});
  u32 query_thread =
      b.import_func("env", "MPI_Query_thread", FuncType{{I32}, {I32}});
  u32 spawn = b.import_func("wasi", "thread-spawn", FuncType{{I32}, {I32}});
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                FuncType{{I32}, {}});
  b.add_memory(2, 2, /*has_max=*/true, /*shared=*/true);
  b.export_memory();

  // Worker: hammer the counter with RMW adds, then join the done count.
  {
    auto& f = b.begin_func({{I32, I32}, {}}, "wasi_thread_start");
    u32 k = f.add_local(I32);
    u32 lim = f.add_local(I32);
    f.i32_const(kIncrements);
    f.local_set(lim);
    f.for_loop_i32(k, 0, lim, 1, [&] {
      f.i32_const(i32(kCounter));
      f.i32_const(1);
      f.mem_op(Op::kI32AtomicRmwAdd);
      f.op(Op::kDrop);
    });
    f.op(Op::kAtomicFence);
    f.i32_const(i32(kDone));
    f.i32_const(1);
    f.mem_op(Op::kI32AtomicRmwAdd);
    f.op(Op::kDrop);
    f.i32_const(i32(kDone));
    f.i32_const(kNotifyAll);
    f.mem_op(Op::kMemoryAtomicNotify);
    f.op(Op::kDrop);
    f.end();
  }

  auto& f = b.begin_func({{}, {}}, "_start");
  u32 fails = f.add_local(I32);
  u32 w = f.add_local(I32);
  u32 lim = f.add_local(I32);
  u32 d = f.add_local(I32);

  auto fail_unless = [&](const std::function<void()>& pred) {
    pred();  // leaves an i32 "ok" on the stack
    f.op(Op::kI32Eqz);
    f.if_();
    f.local_get(fails);
    f.i32_const(1);
    f.op(Op::kI32Add);
    f.local_set(fails);
    f.end();
  };

  // MPI_Init_thread must grant MPI_THREAD_MULTIPLE; Query must agree.
  f.i32_const(0);
  f.i32_const(0);
  f.i32_const(abi::MPI_THREAD_MULTIPLE);
  f.i32_const(i32(kProvidedPtr));
  f.call(init_thread);
  f.op(Op::kDrop);
  fail_unless([&] {
    f.i32_const(i32(kProvidedPtr));
    f.mem_op(Op::kI32Load);
    f.i32_const(abi::MPI_THREAD_MULTIPLE);
    f.op(Op::kI32Eq);
  });
  f.i32_const(i32(kProvidedPtr));
  f.call(query_thread);
  f.op(Op::kDrop);
  fail_unless([&] {
    f.i32_const(i32(kProvidedPtr));
    f.mem_op(Op::kI32Load);
    f.i32_const(abi::MPI_THREAD_MULTIPLE);
    f.op(Op::kI32Eq);
  });

  // wait32 on a word whose value differs from `expected` returns 1
  // ("not-equal") without blocking; an expected match with a finite
  // timeout and no notifier returns 2 ("timed-out").
  f.i32_const(i32(kCmpWord));
  f.i32_const(5);
  f.mem_op(Op::kI32AtomicStore);
  fail_unless([&] {
    f.i32_const(i32(kCmpWord));
    f.i32_const(4);  // wrong expected
    f.i64_const(-1);
    f.mem_op(Op::kMemoryAtomicWait32);
    f.i32_const(1);
    f.op(Op::kI32Eq);
  });
  fail_unless([&] {
    f.i32_const(i32(kCmpWord));
    f.i32_const(5);
    f.i64_const(1000000);  // 1 ms
    f.mem_op(Op::kMemoryAtomicWait32);
    f.i32_const(2);
    f.op(Op::kI32Eq);
  });
  // cmpxchg round trip: (5 -> 9) succeeds returning 5; word reads 9.
  fail_unless([&] {
    f.i32_const(i32(kCmpWord));
    f.i32_const(5);
    f.i32_const(9);
    f.mem_op(Op::kI32AtomicRmwCmpxchg);
    f.i32_const(5);
    f.op(Op::kI32Eq);
  });
  fail_unless([&] {
    f.i32_const(i32(kCmpWord));
    f.mem_op(Op::kI32AtomicLoad);
    f.i32_const(9);
    f.op(Op::kI32Eq);
  });

  // Spawn the workers and park on the done word until both arrive.
  f.i32_const(i32(kWorkers));
  f.local_set(lim);
  f.for_loop_i32(w, 0, lim, 1, [&] {
    f.local_get(w);
    f.call(spawn);
    f.i32_const(0);
    f.op(Op::kI32LtS);
    f.if_();
    f.local_get(fails);
    f.i32_const(1);
    f.op(Op::kI32Add);
    f.local_set(fails);
    f.end();
  });
  f.block();
  f.loop();
  f.i32_const(i32(kDone));
  f.mem_op(Op::kI32AtomicLoad);
  f.local_tee(d);
  f.i32_const(i32(kWorkers));
  f.op(Op::kI32Eq);
  f.br_if(1);
  f.i32_const(i32(kDone));
  f.local_get(d);
  f.i64_const(-1);
  f.mem_op(Op::kMemoryAtomicWait32);
  f.op(Op::kDrop);
  f.br(0);
  f.end();
  f.end();
  fail_unless([&] {
    f.i32_const(i32(kCounter));
    f.mem_op(Op::kI32AtomicLoad);
    f.i32_const(kIncrements * i32(kWorkers));
    f.op(Op::kI32Eq);
  });

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.local_get(fails);
  f.if_();
  f.i32_const(1);
  f.call(proc_exit);
  f.end();
  f.end();
  return finish(b, "threads check module");
}

}  // namespace mpiwasm::toolchain
