#include "toolchain/mpi_imports.h"

namespace mpiwasm::toolchain {

using wasm::FuncType;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;

namespace {
constexpr ValType I32 = ValType::kI32;
constexpr ValType F64 = ValType::kF64;
std::vector<ValType> i32s(size_t n) { return std::vector<ValType>(n, I32); }
}  // namespace

MpiImports declare_mpi_imports(ModuleBuilder& b, const MpiImportSet& set) {
  MpiImports m;
  m.init = b.import_func("env", "MPI_Init", {i32s(2), {I32}});
  m.finalize = b.import_func("env", "MPI_Finalize", {{}, {I32}});
  m.comm_rank = b.import_func("env", "MPI_Comm_rank", {i32s(2), {I32}});
  m.comm_size = b.import_func("env", "MPI_Comm_size", {i32s(2), {I32}});
  m.wtime = b.import_func("env", "MPI_Wtime", {{}, {F64}});
  m.wtick = b.import_func("env", "MPI_Wtick", {{}, {F64}});
  if (set.p2p) {
    m.send = b.import_func("env", "MPI_Send", {i32s(6), {I32}});
    m.recv = b.import_func("env", "MPI_Recv", {i32s(7), {I32}});
  }
  if (set.nonblocking) {
    m.isend = b.import_func("env", "MPI_Isend", {i32s(7), {I32}});
    m.irecv = b.import_func("env", "MPI_Irecv", {i32s(7), {I32}});
    m.wait = b.import_func("env", "MPI_Wait", {i32s(2), {I32}});
    m.waitall = b.import_func("env", "MPI_Waitall", {i32s(3), {I32}});
    m.waitany = b.import_func("env", "MPI_Waitany", {i32s(4), {I32}});
    m.testall = b.import_func("env", "MPI_Testall", {i32s(4), {I32}});
  }
  if (set.sendrecv)
    m.sendrecv = b.import_func("env", "MPI_Sendrecv", {i32s(12), {I32}});
  if (set.collectives) {
    m.barrier = b.import_func("env", "MPI_Barrier", {i32s(1), {I32}});
    m.bcast = b.import_func("env", "MPI_Bcast", {i32s(5), {I32}});
    m.reduce = b.import_func("env", "MPI_Reduce", {i32s(7), {I32}});
    m.allreduce = b.import_func("env", "MPI_Allreduce", {i32s(6), {I32}});
  }
  if (set.gather_scatter) {
    m.gather = b.import_func("env", "MPI_Gather", {i32s(8), {I32}});
    m.scatter = b.import_func("env", "MPI_Scatter", {i32s(8), {I32}});
  }
  if (set.alltoall) {
    m.allgather = b.import_func("env", "MPI_Allgather", {i32s(7), {I32}});
    m.alltoall = b.import_func("env", "MPI_Alltoall", {i32s(7), {I32}});
    m.alltoallv = b.import_func("env", "MPI_Alltoallv", {i32s(9), {I32}});
  }
  if (set.scan_family) {
    m.reduce_scatter =
        b.import_func("env", "MPI_Reduce_scatter", {i32s(6), {I32}});
    m.scan = b.import_func("env", "MPI_Scan", {i32s(6), {I32}});
    m.exscan = b.import_func("env", "MPI_Exscan", {i32s(6), {I32}});
  }
  if (set.icoll) {
    m.ibarrier = b.import_func("env", "MPI_Ibarrier", {i32s(2), {I32}});
    m.ibcast = b.import_func("env", "MPI_Ibcast", {i32s(6), {I32}});
    m.ireduce = b.import_func("env", "MPI_Ireduce", {i32s(8), {I32}});
    m.iallreduce = b.import_func("env", "MPI_Iallreduce", {i32s(7), {I32}});
    m.iallgather = b.import_func("env", "MPI_Iallgather", {i32s(8), {I32}});
    m.ialltoall = b.import_func("env", "MPI_Ialltoall", {i32s(8), {I32}});
    m.ireduce_scatter =
        b.import_func("env", "MPI_Ireduce_scatter", {i32s(7), {I32}});
    m.iscan = b.import_func("env", "MPI_Iscan", {i32s(7), {I32}});
    m.iexscan = b.import_func("env", "MPI_Iexscan", {i32s(7), {I32}});
    m.wait = m.wait != MpiImports::kNone
                 ? m.wait
                 : b.import_func("env", "MPI_Wait", {i32s(2), {I32}});
  }
  if (set.comm_mgmt) {
    m.comm_dup = b.import_func("env", "MPI_Comm_dup", {i32s(2), {I32}});
    m.comm_split = b.import_func("env", "MPI_Comm_split", {i32s(4), {I32}});
    m.comm_free = b.import_func("env", "MPI_Comm_free", {i32s(1), {I32}});
  }
  if (set.mem_mgmt) {
    m.alloc_mem = b.import_func("env", "MPI_Alloc_mem", {i32s(3), {I32}});
    m.free_mem = b.import_func("env", "MPI_Free_mem", {i32s(1), {I32}});
  }
  return m;
}

u32 declare_report_import(ModuleBuilder& b) {
  return b.import_func("bench", "report", {{I32, F64, F64, F64}, {}});
}

void add_bump_allocator(ModuleBuilder& b, u32 heap_base) {
  // global $heap_top (mut i32) = heap_base
  u32 heap_top = b.add_global(I32, true, i64(heap_base));
  // malloc(size) -> ptr : 16-byte aligned bump; no free (HPC batch model).
  auto& m = b.begin_func({{I32}, {I32}}, "malloc");
  u32 ptr = m.add_local(I32);
  m.global_get(heap_top);
  m.local_set(ptr);
  m.global_get(heap_top);
  m.local_get(0);
  m.op(Op::kI32Add);
  m.i32_const(15);
  m.op(Op::kI32Add);
  m.i32_const(~15);
  m.op(Op::kI32And);
  m.global_set(heap_top);
  m.local_get(ptr);
  m.end();
  // free(ptr): bump allocators don't reclaim; intentionally a no-op.
  auto& f = b.begin_func({{I32}, {}}, "free");
  f.end();
}

}  // namespace mpiwasm::toolchain
