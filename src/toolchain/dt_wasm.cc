// NPB DT (data traffic) equivalent in Wasm: f64 payloads flow through a
// graph topology (BlackHole / WhiteHole / Shuffle) and every receiver runs
// an element-wise combine kernel. The combine is the vectorizable hot loop
// whose SIMD build demonstrates the paper's -msimd128 effect (§4.5:
// "WASM w SIMD" is ~1.36x faster than "WASM w/o SIMD" on DT).
#include "toolchain/kernels.h"

#include "embedder/abi.h"
#include "toolchain/mpi_imports.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::toolchain {

using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;
namespace abi = embed::abi;

namespace {
constexpr u32 kRankPtr = 1024;
constexpr u32 kSizePtr = 1032;
constexpr u32 kScratchIn = 1040;
constexpr u32 kScratchOut = 1048;
}  // namespace

const char* dt_topology_name(DtTopology t) {
  switch (t) {
    case DtTopology::kBlackHole: return "bh";
    case DtTopology::kWhiteHole: return "wh";
    case DtTopology::kShuffle: return "sh";
  }
  return "?";
}

std::vector<u8> build_dt_module(const DtParams& p) {
  MW_CHECK(p.doubles_per_msg % 2 == 0, "DT payload must be even for f64x2");
  const u32 D = p.doubles_per_msg;
  const u32 SRC = 1 << 16;
  const u32 RCV = SRC + D * 8;
  const u32 ACC = RCV + D * 8;
  const u32 heap = ACC + D * 8 + 4096;

  ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  set.p2p = true;
  set.sendrecv = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 report = declare_report_import(b);
  b.add_memory((heap >> 16) + 2);
  b.export_memory();
  add_bump_allocator(b, heap);

  auto& f = b.begin_func({{}, {}}, "_start");
  const u32 rank = f.add_local(ValType::kI32);
  const u32 size = f.add_local(ValType::kI32);
  const u32 i = f.add_local(ValType::kI32);
  const u32 lim = f.add_local(ValType::kI32);
  const u32 src = f.add_local(ValType::kI32);
  const u32 stage = f.add_local(ValType::kI32);
  const u32 partner = f.add_local(ValType::kI32);
  const u32 rep = f.add_local(ValType::kI32);
  const u32 rep_lim = f.add_local(ValType::kI32);
  const u32 t0 = f.add_local(ValType::kF64);
  const u32 t1 = f.add_local(ValType::kF64);
  const u32 checksum = f.add_local(ValType::kF64);

  // Element-wise combine: ACC[i] += RCV[i]*0.5 + RCV[i]*RCV[i]*1e-9.
  auto emit_combine = [&] {
    if (p.use_simd) {
      f.i32_const(i32(D * 8));
      f.local_set(lim);
      f.for_loop_i32(i, 0, lim, 16, [&] {
        f.i32_const(i32(ACC));
        f.local_get(i);
        f.op(Op::kI32Add);
        // acc + rcv*0.5 + rcv*rcv*1e-9 (two lanes at a time)
        f.i32_const(i32(ACC));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.mem_op(Op::kV128Load);
        f.i32_const(i32(RCV));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.mem_op(Op::kV128Load);
        f.f64_const(0.5);
        f.op(Op::kF64x2Splat);
        f.op(Op::kF64x2Mul);
        f.op(Op::kF64x2Add);
        f.i32_const(i32(RCV));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.mem_op(Op::kV128Load);
        f.i32_const(i32(RCV));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.mem_op(Op::kV128Load);
        f.op(Op::kF64x2Mul);
        f.f64_const(1e-9);
        f.op(Op::kF64x2Splat);
        f.op(Op::kF64x2Mul);
        f.op(Op::kF64x2Add);
        f.mem_op(Op::kV128Store);
      });
    } else {
      f.i32_const(i32(D * 8));
      f.local_set(lim);
      f.for_loop_i32(i, 0, lim, 8, [&] {
        f.i32_const(i32(ACC));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.i32_const(i32(ACC));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.mem_op(Op::kF64Load);
        f.i32_const(i32(RCV));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.mem_op(Op::kF64Load);
        f.f64_const(0.5);
        f.op(Op::kF64Mul);
        f.op(Op::kF64Add);
        f.i32_const(i32(RCV));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.mem_op(Op::kF64Load);
        f.i32_const(i32(RCV));
        f.local_get(i);
        f.op(Op::kI32Add);
        f.mem_op(Op::kF64Load);
        f.op(Op::kF64Mul);
        f.f64_const(1e-9);
        f.op(Op::kF64Mul);
        f.op(Op::kF64Add);
        f.mem_op(Op::kF64Store);
      });
    }
  };

  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kRankPtr));
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(i32(kRankPtr));
  f.mem_op(Op::kI32Load);
  f.local_set(rank);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kSizePtr));
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(i32(kSizePtr));
  f.mem_op(Op::kI32Load);
  f.local_set(size);

  // SRC[i] = rank + i * 1e-6
  f.i32_const(i32(D * 8));
  f.local_set(lim);
  f.for_loop_i32(i, 0, lim, 8, [&] {
    f.i32_const(i32(SRC));
    f.local_get(i);
    f.op(Op::kI32Add);
    f.local_get(rank);
    f.op(Op::kF64ConvertI32S);
    f.local_get(i);
    f.op(Op::kF64ConvertI32S);
    f.f64_const(1e-6 / 8.0);
    f.op(Op::kF64Mul);
    f.op(Op::kF64Add);
    f.mem_op(Op::kF64Store);
  });

  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.barrier);
  f.op(Op::kDrop);
  f.call(mpi.wtime);
  f.local_set(t0);

  f.i32_const(i32(p.repetitions));
  f.local_set(rep_lim);
  f.for_loop_i32(rep, 0, rep_lim, 1, [&] {
    switch (p.topology) {
      case DtTopology::kBlackHole:
        // Everyone streams into rank 0, which combines every payload.
        f.local_get(rank);
        f.op(Op::kI32Eqz);
        f.if_();
        {
          // rank 0: receive from 1..size-1 in order, combine each.
          f.i32_const(1);
          f.local_set(src);
          f.block();
          f.loop();
          f.local_get(src);
          f.local_get(size);
          f.op(Op::kI32GeS);
          f.br_if(1);
          f.i32_const(i32(RCV));
          f.i32_const(i32(D));
          f.i32_const(abi::MPI_DOUBLE);
          f.local_get(src);
          f.i32_const(7);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.i32_const(abi::MPI_STATUS_IGNORE);
          f.call(mpi.recv);
          f.op(Op::kDrop);
          emit_combine();
          f.local_get(src);
          f.i32_const(1);
          f.op(Op::kI32Add);
          f.local_set(src);
          f.br(0);
          f.end();
          f.end();
        }
        f.else_();
        {
          f.i32_const(i32(SRC));
          f.i32_const(i32(D));
          f.i32_const(abi::MPI_DOUBLE);
          f.i32_const(0);
          f.i32_const(7);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.call(mpi.send);
          f.op(Op::kDrop);
        }
        f.end();
        break;
      case DtTopology::kWhiteHole:
        // Rank 0 streams to everyone; receivers combine.
        f.local_get(rank);
        f.op(Op::kI32Eqz);
        f.if_();
        {
          f.i32_const(1);
          f.local_set(src);
          f.block();
          f.loop();
          f.local_get(src);
          f.local_get(size);
          f.op(Op::kI32GeS);
          f.br_if(1);
          f.i32_const(i32(SRC));
          f.i32_const(i32(D));
          f.i32_const(abi::MPI_DOUBLE);
          f.local_get(src);
          f.i32_const(7);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.call(mpi.send);
          f.op(Op::kDrop);
          f.local_get(src);
          f.i32_const(1);
          f.op(Op::kI32Add);
          f.local_set(src);
          f.br(0);
          f.end();
          f.end();
        }
        f.else_();
        {
          f.i32_const(i32(RCV));
          f.i32_const(i32(D));
          f.i32_const(abi::MPI_DOUBLE);
          f.i32_const(0);
          f.i32_const(7);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.i32_const(abi::MPI_STATUS_IGNORE);
          f.call(mpi.recv);
          f.op(Op::kDrop);
          emit_combine();
        }
        f.end();
        break;
      case DtTopology::kShuffle:
        // Butterfly: stage k exchanges with rank ^ 2^k (power-of-two sizes;
        // trailing ranks sit out a stage when the partner is out of range).
        f.i32_const(1);
        f.local_set(stage);
        f.block();
        f.loop();
        f.local_get(stage);
        f.local_get(size);
        f.op(Op::kI32GeS);
        f.br_if(1);
        f.local_get(rank);
        f.local_get(stage);
        f.op(Op::kI32Xor);
        f.local_set(partner);
        f.local_get(partner);
        f.local_get(size);
        f.op(Op::kI32LtS);
        f.if_();
        {
          f.i32_const(i32(SRC));
          f.i32_const(i32(D));
          f.i32_const(abi::MPI_DOUBLE);
          f.local_get(partner);
          f.i32_const(7);
          f.i32_const(i32(RCV));
          f.i32_const(i32(D));
          f.i32_const(abi::MPI_DOUBLE);
          f.local_get(partner);
          f.i32_const(7);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.i32_const(abi::MPI_STATUS_IGNORE);
          f.call(mpi.sendrecv);
          f.op(Op::kDrop);
          emit_combine();
        }
        f.end();
        f.local_get(stage);
        f.i32_const(1);
        f.op(Op::kI32Shl);
        f.local_set(stage);
        f.br(0);
        f.end();
        f.end();
        break;
    }
  });

  f.call(mpi.wtime);
  f.local_set(t1);

  // checksum = allreduce(sum(ACC)) keeps results comparable across builds.
  f.f64_const(0);
  f.local_set(checksum);
  f.i32_const(i32(D * 8));
  f.local_set(lim);
  f.for_loop_i32(i, 0, lim, 8, [&] {
    f.local_get(checksum);
    f.i32_const(i32(ACC));
    f.local_get(i);
    f.op(Op::kI32Add);
    f.mem_op(Op::kF64Load);
    f.op(Op::kF64Add);
    f.local_set(checksum);
  });
  f.i32_const(i32(kScratchIn));
  f.local_get(checksum);
  f.mem_op(Op::kF64Store);
  f.i32_const(i32(kScratchIn));
  f.i32_const(i32(kScratchOut));
  f.i32_const(1);
  f.i32_const(abi::MPI_DOUBLE);
  f.i32_const(abi::MPI_SUM);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.allreduce);
  f.op(Op::kDrop);

  // Throughput model matches NPB DT: bytes moved per repetition depends on
  // the topology (edges * payload).
  f.local_get(rank);
  f.op(Op::kI32Eqz);
  f.if_();
  {
    f.i32_const(p.report_id);
    // MB/s = reps * edges * D * 8 / elapsed / 1e6; edges = size-1 for
    // bh/wh, size*log2(size) for sh — computed with runtime size.
    f.f64_const(f64(p.repetitions) * f64(D) * 8.0 / 1e6);
    if (p.topology == DtTopology::kShuffle) {
      // edges ~= size * ceil(log2(size)); approximate with size * stages.
      f.local_get(size);
      f.op(Op::kF64ConvertI32S);
      f.op(Op::kF64Mul);
    } else {
      f.local_get(size);
      f.i32_const(1);
      f.op(Op::kI32Sub);
      f.op(Op::kF64ConvertI32S);
      f.op(Op::kF64Mul);
    }
    f.local_get(t1);
    f.local_get(t0);
    f.op(Op::kF64Sub);
    f.op(Op::kF64Div);
    f.i32_const(i32(kScratchOut));
    f.mem_op(Op::kF64Load);
    f.f64_const(f64(p.repetitions));
    f.call(report);
  }
  f.end();

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();

  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  MW_CHECK(decoded.ok(), "dt module failed to decode: " + decoded.error);
  auto vr = wasm::validate_module(*decoded.module);
  MW_CHECK(vr.ok, "dt module failed to validate: " + vr.error);
  return bytes;
}

}  // namespace mpiwasm::toolchain
