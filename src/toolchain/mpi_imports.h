// MPI import declarations for Wasm kernels — the encoder side of the
// custom mpi.h (paper §3.2, Listings 2/3). Each helper declares the import
// with exactly the signature the embedder provides in the "env" namespace;
// a mismatch is caught at link (instantiation) time.
#pragma once

#include "wasm/builder.h"

namespace mpiwasm::toolchain {

/// Function indices of the MPI imports a kernel requested.
struct MpiImports {
  static constexpr u32 kNone = UINT32_MAX;
  u32 init = kNone, finalize = kNone, comm_rank = kNone, comm_size = kNone;
  u32 wtime = kNone, wtick = kNone, barrier = kNone;
  u32 send = kNone, recv = kNone, isend = kNone, irecv = kNone;
  u32 wait = kNone, waitall = kNone, waitany = kNone, testall = kNone;
  u32 sendrecv = kNone;
  u32 bcast = kNone, reduce = kNone, allreduce = kNone;
  u32 gather = kNone, scatter = kNone, allgather = kNone, alltoall = kNone;
  u32 alltoallv = kNone;
  u32 reduce_scatter = kNone, scan = kNone, exscan = kNone;
  u32 ibarrier = kNone, ibcast = kNone, ireduce = kNone, iallreduce = kNone;
  u32 iallgather = kNone, ialltoall = kNone;
  u32 ireduce_scatter = kNone, iscan = kNone, iexscan = kNone;
  u32 comm_dup = kNone, comm_split = kNone, comm_free = kNone;
  u32 alloc_mem = kNone, free_mem = kNone;
};

/// Selects which imports to declare.
struct MpiImportSet {
  bool p2p = false;         // Send/Recv
  bool nonblocking = false; // Isend/Irecv/Wait/Waitall/Waitany/Testall
  bool sendrecv = false;
  bool collectives = false; // Barrier/Bcast/Reduce/Allreduce
  bool gather_scatter = false;
  bool alltoall = false;    // Allgather/Alltoall/Alltoallv
  bool scan_family = false; // Reduce_scatter/Scan/Exscan
  bool icoll = false;       // Ibarrier/Ibcast/Ireduce/Iallreduce/
                            // Iallgather/Ialltoall (requests via Wait*)
  bool comm_mgmt = false;
  bool mem_mgmt = false;
};

/// Declares the core (Init/Finalize/rank/size/Wtime) plus selected imports.
/// Must be called before any begin_func on the builder.
MpiImports declare_mpi_imports(wasm::ModuleBuilder& b, const MpiImportSet& set);

/// Declares the bench-harness reporting import
///   bench.report(id: i32, a: f64, b: f64, c: f64)
u32 declare_report_import(wasm::ModuleBuilder& b);

/// Adds a bump allocator exported as malloc/free (enables MPI_Alloc_mem,
/// §3.7). `heap_base` is the first byte the allocator may hand out.
void add_bump_allocator(wasm::ModuleBuilder& b, u32 heap_base);

}  // namespace mpiwasm::toolchain
