// Intel-MPI-Benchmarks-equivalent kernels authored in Wasm (paper §4.2).
//
// One module per routine. Each module sweeps message sizes (powers of two,
// unrolled at build time), times `iters` repetitions between MPI_Wtime
// calls, and reports per-size average iteration time in microseconds via
// bench.report — the same t_avg_us metric the paper's Figures 3/4 plot.
#include "toolchain/kernels.h"

#include <algorithm>

#include "embedder/abi.h"
#include "toolchain/mpi_imports.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::toolchain {

using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;
namespace abi = embed::abi;

namespace {

// Scratch layout (below the first buffer).
constexpr u32 kRankPtr = 1024;
constexpr u32 kSizePtr = 1032;
constexpr u32 kBufA = 1 << 16;

u32 align_up(u64 v, u64 a) { return u32((v + a - 1) / a * a); }

}  // namespace

const char* imb_routine_name(ImbRoutine r) {
  switch (r) {
    case ImbRoutine::kPingPong: return "PingPong";
    case ImbRoutine::kSendRecv: return "Sendrecv";
    case ImbRoutine::kBcast: return "Bcast";
    case ImbRoutine::kAllReduce: return "Allreduce";
    case ImbRoutine::kAllGather: return "Allgather";
    case ImbRoutine::kAlltoall: return "Alltoall";
    case ImbRoutine::kReduce: return "Reduce";
    case ImbRoutine::kGather: return "Gather";
    case ImbRoutine::kScatter: return "Scatter";
    case ImbRoutine::kBarrier: return "Barrier";
  }
  return "?";
}

u32 imb_iters_for(const ImbParams& p, u32 bytes) {
  u32 iters = p.base_iters / std::max<u32>(bytes, 1);
  return std::clamp(iters, p.min_iters, p.max_iters);
}

std::vector<u8> build_imb_module(const ImbParams& p) {
  const u32 max_ranks = 64;  // buffer sizing assumption, checked at runtime
  ModuleBuilder b;

  MpiImportSet set;
  set.collectives = true;  // barrier around every size
  switch (p.routine) {
    case ImbRoutine::kPingPong: set.p2p = true; break;
    case ImbRoutine::kSendRecv: set.sendrecv = true; break;
    case ImbRoutine::kBcast:
    case ImbRoutine::kAllReduce:
    case ImbRoutine::kReduce:
    case ImbRoutine::kBarrier:
      break;  // covered by collectives
    case ImbRoutine::kAllGather:
    case ImbRoutine::kAlltoall:
      set.alltoall = true;
      break;
    case ImbRoutine::kGather:
    case ImbRoutine::kScatter:
      set.gather_scatter = true;
      break;
  }
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 report = declare_report_import(b);

  // Buffer capacities: rooted/all collectives need size-scaled buffers.
  const bool scaled_a = p.routine == ImbRoutine::kAlltoall ||
                        p.routine == ImbRoutine::kScatter;
  const bool scaled_b = p.routine == ImbRoutine::kAllGather ||
                        p.routine == ImbRoutine::kAlltoall ||
                        p.routine == ImbRoutine::kGather;
  const u64 cap_a = u64(p.max_bytes) * (scaled_a ? max_ranks : 1);
  const u64 cap_b = u64(p.max_bytes) * (scaled_b ? max_ranks : 1);
  const u32 buf_b = align_up(kBufA + cap_a, 4096);
  const u32 heap = align_up(buf_b + cap_b, 4096);
  const u32 pages = (heap >> 16) + 2;
  b.add_memory(pages);
  b.export_memory();
  add_bump_allocator(b, heap);

  auto& f = b.begin_func({{}, {}}, "_start");
  const u32 rank = f.add_local(ValType::kI32);
  const u32 size = f.add_local(ValType::kI32);
  const u32 left = f.add_local(ValType::kI32);
  const u32 right = f.add_local(ValType::kI32);
  const u32 i = f.add_local(ValType::kI32);
  const u32 iters = f.add_local(ValType::kI32);
  const u32 t0 = f.add_local(ValType::kF64);
  const u32 t1 = f.add_local(ValType::kF64);

  // MPI_Init(NULL, NULL); rank/size via scratch slots.
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(kRankPtr);
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(kRankPtr);
  f.mem_op(Op::kI32Load);
  f.local_set(rank);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(kSizePtr);
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(kSizePtr);
  f.mem_op(Op::kI32Load);
  f.local_set(size);
  // Ring neighbours (SendRecv).
  f.local_get(rank);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.local_get(size);
  f.op(Op::kI32RemS);
  f.local_set(right);
  f.local_get(rank);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.local_get(size);
  f.op(Op::kI32Add);
  f.i32_const(2);
  f.op(Op::kI32Sub);
  f.local_get(size);
  f.op(Op::kI32RemS);
  f.local_set(left);  // (rank - 1 + size) % size

  // Emits one inner-loop iteration of the routine for message size s.
  auto emit_iteration = [&](u32 s) {
    const i32 dcount = i32(std::max<u32>(s / 8, 1));
    switch (p.routine) {
      case ImbRoutine::kPingPong:
        // rank 0: send then recv; rank 1: recv then send; others idle.
        f.local_get(rank);
        f.op(Op::kI32Eqz);
        f.if_();
        {
          f.i32_const(i32(kBufA));
          f.i32_const(i32(s));
          f.i32_const(abi::MPI_BYTE);
          f.i32_const(1);
          f.i32_const(0);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.call(mpi.send);
          f.op(Op::kDrop);
          f.i32_const(i32(buf_b));
          f.i32_const(i32(s));
          f.i32_const(abi::MPI_BYTE);
          f.i32_const(1);
          f.i32_const(0);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.i32_const(abi::MPI_STATUS_IGNORE);
          f.call(mpi.recv);
          f.op(Op::kDrop);
        }
        f.else_();
        {
          f.local_get(rank);
          f.i32_const(1);
          f.op(Op::kI32Eq);
          f.if_();
          f.i32_const(i32(buf_b));
          f.i32_const(i32(s));
          f.i32_const(abi::MPI_BYTE);
          f.i32_const(0);
          f.i32_const(0);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.i32_const(abi::MPI_STATUS_IGNORE);
          f.call(mpi.recv);
          f.op(Op::kDrop);
          f.i32_const(i32(kBufA));
          f.i32_const(i32(s));
          f.i32_const(abi::MPI_BYTE);
          f.i32_const(0);
          f.i32_const(0);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.call(mpi.send);
          f.op(Op::kDrop);
          f.end();
        }
        f.end();
        break;
      case ImbRoutine::kSendRecv:
        f.i32_const(i32(kBufA));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.local_get(right);
        f.i32_const(0);
        f.i32_const(i32(buf_b));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.local_get(left);
        f.i32_const(0);
        f.i32_const(abi::MPI_COMM_WORLD);
        f.i32_const(abi::MPI_STATUS_IGNORE);
        f.call(mpi.sendrecv);
        f.op(Op::kDrop);
        break;
      case ImbRoutine::kBcast:
        f.i32_const(i32(kBufA));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(0);
        f.i32_const(abi::MPI_COMM_WORLD);
        f.call(mpi.bcast);
        f.op(Op::kDrop);
        break;
      case ImbRoutine::kAllReduce:
        f.i32_const(i32(kBufA));
        f.i32_const(i32(buf_b));
        f.i32_const(dcount);
        f.i32_const(abi::MPI_DOUBLE);
        f.i32_const(abi::MPI_SUM);
        f.i32_const(abi::MPI_COMM_WORLD);
        f.call(mpi.allreduce);
        f.op(Op::kDrop);
        break;
      case ImbRoutine::kReduce:
        f.i32_const(i32(kBufA));
        f.i32_const(i32(buf_b));
        f.i32_const(dcount);
        f.i32_const(abi::MPI_DOUBLE);
        f.i32_const(abi::MPI_SUM);
        f.i32_const(0);
        f.i32_const(abi::MPI_COMM_WORLD);
        f.call(mpi.reduce);
        f.op(Op::kDrop);
        break;
      case ImbRoutine::kAllGather:
        f.i32_const(i32(kBufA));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(i32(buf_b));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(abi::MPI_COMM_WORLD);
        f.call(mpi.allgather);
        f.op(Op::kDrop);
        break;
      case ImbRoutine::kAlltoall:
        f.i32_const(i32(kBufA));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(i32(buf_b));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(abi::MPI_COMM_WORLD);
        f.call(mpi.alltoall);
        f.op(Op::kDrop);
        break;
      case ImbRoutine::kGather:
        f.i32_const(i32(kBufA));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(i32(buf_b));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(0);
        f.i32_const(abi::MPI_COMM_WORLD);
        f.call(mpi.gather);
        f.op(Op::kDrop);
        break;
      case ImbRoutine::kScatter:
        f.i32_const(i32(kBufA));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(i32(buf_b));
        f.i32_const(i32(s));
        f.i32_const(abi::MPI_BYTE);
        f.i32_const(0);
        f.i32_const(abi::MPI_COMM_WORLD);
        f.call(mpi.scatter);
        f.op(Op::kDrop);
        break;
      case ImbRoutine::kBarrier:
        f.i32_const(abi::MPI_COMM_WORLD);
        f.call(mpi.barrier);
        f.op(Op::kDrop);
        break;
    }
  };

  // Unrolled sweep over message sizes.
  for (u32 s = p.min_bytes; s <= p.max_bytes; s *= 2) {
    const u32 n_iters = imb_iters_for(p, s);
    // Synchronize ranks, then time the repetition loop.
    f.i32_const(abi::MPI_COMM_WORLD);
    f.call(mpi.barrier);
    f.op(Op::kDrop);
    f.i32_const(i32(n_iters));
    f.local_set(iters);
    f.call(mpi.wtime);
    f.local_set(t0);
    f.for_loop_i32(i, 0, iters, 1, [&] { emit_iteration(s); });
    f.call(mpi.wtime);
    f.local_set(t1);
    // rank 0 reports t_avg in usec (PingPong reports half round-trip).
    f.local_get(rank);
    f.op(Op::kI32Eqz);
    f.if_();
    {
      f.i32_const(p.report_id);
      f.f64_const(f64(s));
      f.local_get(t1);
      f.local_get(t0);
      f.op(Op::kF64Sub);
      f.f64_const(1e6 / f64(n_iters) /
                  (p.routine == ImbRoutine::kPingPong ? 2.0 : 1.0));
      f.op(Op::kF64Mul);
      f.f64_const(f64(n_iters));
      f.call(report);
    }
    f.end();
  }

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();

  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  MW_CHECK(decoded.ok(), "imb module failed to decode: " + decoded.error);
  auto vr = wasm::validate_module(*decoded.module);
  MW_CHECK(vr.ok, "imb module failed to validate: " + vr.error);
  return bytes;
}

}  // namespace mpiwasm::toolchain
