// Native twins of every Wasm kernel: the same algorithms implemented
// directly against simmpi (the "compiled with clang -O3, run with mpirun"
// side of the paper's comparisons). Kept structurally 1:1 with the Wasm
// builders so that native-vs-Wasm deltas measure the embedder, not
// algorithmic drift.
#pragma once

#include <string>
#include <vector>

#include "simmpi/world.h"
#include "toolchain/kernels.h"

namespace mpiwasm::toolchain {

struct ImbRow {
  u32 bytes = 0;
  f64 t_avg_us = 0;
  u32 iters = 0;
};

/// Runs the IMB routine; rank 0 returns one row per message size, other
/// ranks return an empty vector.
std::vector<ImbRow> native_imb_run(simmpi::Rank& rank, const ImbParams& p);

struct HpcgResult {
  f64 gflops = 0;
  f64 gbps = 0;
  f64 residual = 0;
};
HpcgResult native_hpcg_run(simmpi::Rank& rank, const HpcgParams& p);

struct IsResult {
  f64 mops = 0;
  bool ok = false;
};
IsResult native_is_run(simmpi::Rank& rank, const IsParams& p);

struct DtResult {
  f64 mbps = 0;
  f64 checksum = 0;
};
DtResult native_dt_run(simmpi::Rank& rank, const DtParams& p);

struct OverlapResult {
  f64 seconds = 0;
  f64 residual = 0;
};
/// Native twin of build_overlap_module (identical sweep & combine order, so
/// blocking/nonblocking and native/Wasm residuals agree bit-for-bit).
OverlapResult native_overlap_run(simmpi::Rank& rank, const OverlapParams& p);

struct IorResult {
  f64 write_mibs = 0;
  f64 read_mibs = 0;
};
/// `dir` is the host directory files are written into (the native analogue
/// of the Wasm kernel's preopen).
IorResult native_ior_run(simmpi::Rank& rank, const IorParams& p,
                         const std::string& dir);

/// Expected exit code of build_compute_module (shared with tests).
i32 compute_module_expected(u32 inner_iters);

}  // namespace mpiwasm::toolchain
