// Small self-contained kernels: smoke-test modules for the embedder, the
// quickstart example, and the Figure-6 datatype-translation probe.
#include "toolchain/kernels.h"

#include "embedder/abi.h"
#include "toolchain/mpi_imports.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::toolchain {

using wasm::FuncType;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;
namespace abi = embed::abi;

namespace {
constexpr ValType I32 = ValType::kI32;
constexpr u32 kRankPtr = 1024;
constexpr u32 kSizePtr = 1032;

std::vector<u8> finish(ModuleBuilder& b, const char* what) {
  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  MW_CHECK(decoded.ok(), std::string(what) + " failed to decode: " + decoded.error);
  auto vr = wasm::validate_module(*decoded.module);
  MW_CHECK(vr.ok, std::string(what) + " failed to validate: " + vr.error);
  return bytes;
}

}  // namespace

std::vector<u8> build_hello_module() {
  ModuleBuilder b;
  MpiImports mpi = declare_mpi_imports(b, {});
  u32 fd_write = b.import_func("wasi_snapshot_preview1", "fd_write",
                               FuncType{{I32, I32, I32, I32}, {I32}});
  b.add_memory(1);
  b.export_memory();
  const u32 kMsg = 4096;
  const u32 kIov = 4080;
  const u32 kNPtr = 4072;
  b.add_data_string(kMsg, "hello from rank X of Y\n");

  auto& f = b.begin_func({{}, {}}, "_start");
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  // Patch rank/size digits (single-digit worlds; fine for a demo).
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kRankPtr));
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(i32(kMsg + 16));
  f.i32_const('0');
  f.i32_const(i32(kRankPtr));
  f.mem_op(Op::kI32Load);
  f.op(Op::kI32Add);
  f.mem_op(Op::kI32Store8);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kSizePtr));
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(i32(kMsg + 21));
  f.i32_const('0');
  f.i32_const(i32(kSizePtr));
  f.mem_op(Op::kI32Load);
  f.op(Op::kI32Add);
  f.mem_op(Op::kI32Store8);
  // fd_write(stdout, iov, 1, &nwritten)
  f.i32_const(i32(kIov));
  f.i32_const(i32(kMsg));
  f.mem_op(Op::kI32Store);
  f.i32_const(i32(kIov + 4));
  f.i32_const(23);
  f.mem_op(Op::kI32Store);
  f.i32_const(1);
  f.i32_const(i32(kIov));
  f.i32_const(1);
  f.i32_const(i32(kNPtr));
  f.call(fd_write);
  f.op(Op::kDrop);
  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();
  return finish(b, "hello module");
}

std::vector<u8> build_compile_stress_module(u32 copies) {
  ModuleBuilder b;
  b.add_memory(4);
  b.export_memory();
  for (u32 c = 0; c < copies; ++c) {
    // Each clone mixes loops, memory traffic, float math, and branches so
    // every optimizer pass has real work to do.
    auto& f = b.begin_func({{I32}, {ValType::kF64}},
                           c == 0 ? "run" : "");
    u32 i = f.add_local(I32);
    u32 acc = f.add_local(ValType::kF64);
    f.for_loop_i32(i, 0, 0, 1, [&] {
      f.local_get(i);
      f.i32_const(i32(c * 7 + 3));
      f.op(Op::kI32Mul);
      f.i32_const(0xFFF8);
      f.op(Op::kI32And);
      f.local_get(i);
      f.op(Op::kF64ConvertI32S);
      f.f64_const(1.0 + c * 0.01);
      f.op(Op::kF64Mul);
      f.mem_op(Op::kF64Store);
      f.local_get(acc);
      f.local_get(i);
      f.i32_const(3);
      f.op(Op::kI32And);
      f.op(Op::kI32Eqz);
      f.if_(ValType::kF64);
      f.local_get(i);
      f.op(Op::kF64ConvertI32S);
      f.f64_const(0.5);
      f.op(Op::kF64Mul);
      f.else_();
      f.local_get(i);
      f.op(Op::kF64ConvertI32S);
      f.f64_const(2.0);
      f.op(Op::kF64Add);
      f.end();
      f.op(Op::kF64Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.end();
  }
  return finish(b, "compile stress module");
}

std::vector<u8> build_compute_module(u32 inner_iters) {
  ModuleBuilder b;
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                FuncType{{I32}, {}});
  b.add_memory(1);
  b.export_memory();
  auto& f = b.begin_func({{}, {}}, "_start");
  u32 i = f.add_local(I32);
  u32 lim = f.add_local(I32);
  u32 acc = f.add_local(I32);
  f.i32_const(i32(inner_iters));
  f.local_set(lim);
  f.for_loop_i32(i, 0, lim, 1, [&] {
    // acc = (acc * 31 + i) ^ (acc >> 3)
    f.local_get(acc);
    f.i32_const(31);
    f.op(Op::kI32Mul);
    f.local_get(i);
    f.op(Op::kI32Add);
    f.local_get(acc);
    f.i32_const(3);
    f.op(Op::kI32ShrU);
    f.op(Op::kI32Xor);
    f.local_set(acc);
  });
  f.local_get(acc);
  f.i32_const(0x7F);
  f.op(Op::kI32And);
  f.call(proc_exit);
  f.end();
  return finish(b, "compute module");
}

/// Host-side twin of build_compute_module, for exit-code assertions.
i32 compute_module_expected(u32 inner_iters) {
  i32 acc = 0;
  for (u32 i = 0; i < inner_iters; ++i)
    acc = i32((acc * 31 + i32(i)) ^ (u32(acc) >> 3));
  return acc & 0x7F;
}

std::vector<u8> build_allreduce_check_module() {
  ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                FuncType{{I32}, {}});
  b.add_memory(1);
  b.export_memory();
  const u32 kIn = 2048, kOut = 2056;

  auto& f = b.begin_func({{}, {}}, "_start");
  u32 rank = f.add_local(I32);
  u32 size = f.add_local(I32);
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kRankPtr));
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(i32(kRankPtr));
  f.mem_op(Op::kI32Load);
  f.local_set(rank);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kSizePtr));
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(i32(kSizePtr));
  f.mem_op(Op::kI32Load);
  f.local_set(size);
  // in = rank + 1 ; allreduce SUM
  f.i32_const(i32(kIn));
  f.local_get(rank);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.mem_op(Op::kI32Store);
  f.i32_const(i32(kIn));
  f.i32_const(i32(kOut));
  f.i32_const(1);
  f.i32_const(abi::MPI_INT);
  f.i32_const(abi::MPI_SUM);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.allreduce);
  f.op(Op::kDrop);
  f.call(mpi.finalize);
  f.op(Op::kDrop);
  // exit(sum == n(n+1)/2 ? 0 : 1)
  f.i32_const(i32(kOut));
  f.mem_op(Op::kI32Load);
  f.local_get(size);
  f.local_get(size);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.op(Op::kI32Mul);
  f.i32_const(2);
  f.op(Op::kI32DivS);
  f.op(Op::kI32Eq);
  f.if_(I32);
  f.i32_const(0);
  f.else_();
  f.i32_const(1);
  f.end();
  f.call(proc_exit);
  f.end();
  return finish(b, "allreduce check module");
}

std::vector<u8> build_alloc_mem_module() {
  ModuleBuilder b;
  MpiImportSet set;
  set.mem_mgmt = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                FuncType{{I32}, {}});
  b.add_memory(4);
  b.export_memory();
  add_bump_allocator(b, 1 << 16);
  const u32 kPtrPtr = 2048;

  auto& f = b.begin_func({{}, {}}, "_start");
  u32 p = f.add_local(I32);
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  // MPI_Alloc_mem(1024, info=0, &p) -> must yield a valid module pointer.
  f.i32_const(1024);
  f.i32_const(0);
  f.i32_const(i32(kPtrPtr));
  f.call(mpi.alloc_mem);
  f.if_(I32);  // nonzero return = failure
  f.i32_const(2);
  f.else_();
  f.i32_const(0);
  f.end();
  f.op(Op::kDrop);
  f.i32_const(i32(kPtrPtr));
  f.mem_op(Op::kI32Load);
  f.local_set(p);
  // Write/read through the allocated block.
  f.local_get(p);
  f.i32_const(i32(0xABCD1234u));
  f.mem_op(Op::kI32Store);
  f.local_get(p);
  f.i32_const(512);
  f.op(Op::kI32Add);
  f.i32_const(i32(0x5A5A5A5Au));
  f.mem_op(Op::kI32Store);
  f.local_get(p);
  f.call(mpi.free_mem);
  f.op(Op::kDrop);
  f.call(mpi.finalize);
  f.op(Op::kDrop);
  // exit(readback ok && p != 0 && p aligned ? 0 : 1)
  f.local_get(p);
  f.op(Op::kI32Eqz);
  f.if_();
  f.i32_const(1);
  f.call(proc_exit);
  f.end();
  f.local_get(p);
  f.mem_op(Op::kI32Load);
  f.i32_const(i32(0xABCD1234u));
  f.op(Op::kI32Ne);
  f.if_();
  f.i32_const(1);
  f.call(proc_exit);
  f.end();
  f.i32_const(0);
  f.call(proc_exit);
  f.end();
  return finish(b, "alloc_mem module");
}

std::vector<u8> build_datatype_pingpong_module(const DatatypePingPongParams& p) {
  ModuleBuilder b;
  MpiImportSet set;
  set.p2p = true;
  set.collectives = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 report = declare_report_import(b);
  const u32 kBufA = 1 << 16;
  const u32 buf_b = kBufA + p.max_bytes + 4096;
  const u32 heap = buf_b + p.max_bytes + 4096;
  b.add_memory((heap >> 16) + 2);
  b.export_memory();
  add_bump_allocator(b, heap);

  struct Dt {
    i32 handle;
    u32 elem;
  };
  const Dt dts[] = {{abi::MPI_BYTE, 1},  {abi::MPI_CHAR, 1},
                    {abi::MPI_INT, 4},   {abi::MPI_FLOAT, 4},
                    {abi::MPI_DOUBLE, 8}, {abi::MPI_LONG, 8}};

  auto& f = b.begin_func({{}, {}}, "_start");
  u32 rank = f.add_local(I32);
  u32 i = f.add_local(I32);
  u32 iters = f.add_local(I32);

  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kRankPtr));
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(i32(kRankPtr));
  f.mem_op(Op::kI32Load);
  f.local_set(rank);

  // Sweep: message sizes x datatypes (paper Figure 6's x-axis/series).
  for (u32 bytes = 8; bytes <= p.max_bytes; bytes *= 8) {
    for (const Dt& dt : dts) {
      const i32 count = i32(bytes / dt.elem);
      f.i32_const(abi::MPI_COMM_WORLD);
      f.call(mpi.barrier);
      f.op(Op::kDrop);
      f.i32_const(i32(p.iters_per_size));
      f.local_set(iters);
      f.for_loop_i32(i, 0, iters, 1, [&] {
        f.local_get(rank);
        f.op(Op::kI32Eqz);
        f.if_();
        {
          f.i32_const(i32(kBufA));
          f.i32_const(count);
          f.i32_const(dt.handle);
          f.i32_const(1);
          f.i32_const(0);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.call(mpi.send);
          f.op(Op::kDrop);
          f.i32_const(i32(buf_b));
          f.i32_const(count);
          f.i32_const(dt.handle);
          f.i32_const(1);
          f.i32_const(0);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.i32_const(abi::MPI_STATUS_IGNORE);
          f.call(mpi.recv);
          f.op(Op::kDrop);
        }
        f.else_();
        {
          f.local_get(rank);
          f.i32_const(1);
          f.op(Op::kI32Eq);
          f.if_();
          f.i32_const(i32(buf_b));
          f.i32_const(count);
          f.i32_const(dt.handle);
          f.i32_const(0);
          f.i32_const(0);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.i32_const(abi::MPI_STATUS_IGNORE);
          f.call(mpi.recv);
          f.op(Op::kDrop);
          f.i32_const(i32(kBufA));
          f.i32_const(count);
          f.i32_const(dt.handle);
          f.i32_const(0);
          f.i32_const(0);
          f.i32_const(abi::MPI_COMM_WORLD);
          f.call(mpi.send);
          f.op(Op::kDrop);
          f.end();
        }
        f.end();
      });
      // Report completion of this (datatype, size) cell.
      f.local_get(rank);
      f.op(Op::kI32Eqz);
      f.if_();
      f.i32_const(p.report_id);
      f.f64_const(f64(bytes));
      f.f64_const(f64(dt.handle));
      f.f64_const(f64(p.iters_per_size));
      f.call(report);
      f.end();
    }
  }

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();
  return finish(b, "datatype pingpong module");
}

// ---------------------------------------------------------------------------
// Vectorizable micro kernels (bench_simd): each kernel is authored twice —
// a scalar inner loop and a v128 twin — over identical memory layouts and
// an identical (scalar) checksum pass, so element-wise kernels compare
// bit-exactly across the two builds and reductions compare to a ULP bound.
// ---------------------------------------------------------------------------

const char* micro_kernel_name(MicroKernel k) {
  switch (k) {
    case MicroKernel::kReduceF64: return "reduce_f64";
    case MicroKernel::kReduceI32: return "reduce_i32";
    case MicroKernel::kDaxpy: return "daxpy_f64";
    case MicroKernel::kStencil3: return "stencil3_f64";
    case MicroKernel::kDotF64: return "dot_f64";
    case MicroKernel::kSaxpyF32: return "saxpy_f32";
  }
  return "?";
}

bool micro_kernel_reassociates(MicroKernel k) {
  return k == MicroKernel::kReduceF64 || k == MicroKernel::kDotF64;
}

namespace {

constexpr u32 kMkX0 = 1 << 16;  // first input array

struct MkLayout {
  u32 elem;  // element size in bytes
  u32 x0, y0, out0;
  u32 pages;
};

MkLayout mk_layout(const MicroKernelParams& p) {
  MkLayout l;
  l.elem = (p.kernel == MicroKernel::kReduceI32 ||
            p.kernel == MicroKernel::kSaxpyF32)
               ? 4
               : 8;
  l.x0 = kMkX0;
  l.y0 = l.x0 + ((p.n * l.elem + 15) & ~15u);
  l.out0 = l.y0 + ((p.n * l.elem + 15) & ~15u);
  l.pages = (l.out0 + p.n * l.elem) / wasm::kPageSize + 2;
  return l;
}

using wasm::FunctionBuilder;

/// addr = base + i  (i is a byte-offset local; lowering fuses the constant
/// into a single add-immediate, which the hoist pass recognizes as affine).
void mk_addr(FunctionBuilder& f, u32 base, u32 i_local) {
  f.i32_const(i32(base));
  f.local_get(i_local);
  f.op(Op::kI32Add);
}

}  // namespace

std::vector<u8> build_micro_kernel_module(const MicroKernelParams& p) {
  MW_CHECK(p.n >= 8 && p.n % 4 == 0,
           "micro kernel size must be a multiple of 4 and >= 8");
  const MkLayout l = mk_layout(p);
  const u32 n = p.n;
  using VT = ValType;

  ModuleBuilder b;
  b.add_memory(l.pages);
  b.export_memory();

  // --- init(): deterministic input patterns -------------------------------
  {
    auto& f = b.begin_func({{}, {}}, "init");
    u32 i = f.add_local(VT::kI32);
    u32 lim = f.add_local(VT::kI32);
    f.i32_const(i32(n));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 1, [&] {
      switch (p.kernel) {
        case MicroKernel::kReduceI32: {
          // x[i] = i*1664525 + 1013904223 (wrapping LCG step)
          f.local_get(i);
          f.i32_const(2);
          f.op(Op::kI32Shl);
          f.i32_const(i32(l.x0));
          f.op(Op::kI32Add);
          f.local_get(i);
          f.i32_const(1664525);
          f.op(Op::kI32Mul);
          f.i32_const(1013904223);
          f.op(Op::kI32Add);
          f.mem_op(Op::kI32Store);
          break;
        }
        case MicroKernel::kSaxpyF32: {
          // x[i] = f32(i % 97)*0.5 + 1 ; y[i] = f32(i % 89)*0.25 + 2
          for (int arr = 0; arr < 2; ++arr) {
            f.local_get(i);
            f.i32_const(2);
            f.op(Op::kI32Shl);
            f.i32_const(i32(arr == 0 ? l.x0 : l.y0));
            f.op(Op::kI32Add);
            f.local_get(i);
            f.i32_const(arr == 0 ? 97 : 89);
            f.op(Op::kI32RemS);
            f.op(Op::kF32ConvertI32S);
            f.f32_const(arr == 0 ? 0.5f : 0.25f);
            f.op(Op::kF32Mul);
            f.f32_const(arr == 0 ? 1.0f : 2.0f);
            f.op(Op::kF32Add);
            f.mem_op(Op::kF32Store);
          }
          break;
        }
        default: {
          // f64 kernels: x[i] = f64(i % 97)*0.5 + 1 ; y[i] = f64(i % 89)*0.25 + 2
          for (int arr = 0; arr < 2; ++arr) {
            f.local_get(i);
            f.i32_const(3);
            f.op(Op::kI32Shl);
            f.i32_const(i32(arr == 0 ? l.x0 : l.y0));
            f.op(Op::kI32Add);
            f.local_get(i);
            f.i32_const(arr == 0 ? 97 : 89);
            f.op(Op::kI32RemS);
            f.op(Op::kF64ConvertI32S);
            f.f64_const(arr == 0 ? 0.5 : 0.25);
            f.op(Op::kF64Mul);
            f.f64_const(arr == 0 ? 1.0 : 2.0);
            f.op(Op::kF64Add);
            f.mem_op(Op::kF64Store);
          }
          break;
        }
      }
    });
    f.end();
  }

  // --- run(reps) -> f64 checksum ------------------------------------------
  auto& f = b.begin_func({{VT::kI32}, {VT::kF64}}, "run");
  const u32 reps = 0;  // param
  const u32 i = f.add_local(VT::kI32);
  const u32 lim = f.add_local(VT::kI32);
  const u32 rep = f.add_local(VT::kI32);
  const u32 cks = f.add_local(VT::kF64);
  const u32 acc = f.add_local(VT::kF64);
  const u32 acci = f.add_local(VT::kI32);
  const u32 av = p.use_simd ? f.add_local(VT::kV128) : 0;

  // Scalar checksum pass shared verbatim by both builds: element-wise
  // kernels therefore compare bit-exactly scalar-vs-SIMD.
  auto emit_scalar_sum = [&](u32 base, bool is_f32) {
    f.f64_const(0.0);
    f.local_set(acc);
    f.i32_const(i32(n * l.elem));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, i32(l.elem), [&] {
      f.local_get(acc);
      mk_addr(f, base, i);
      if (is_f32) {
        f.mem_op(Op::kF32Load);
        f.op(Op::kF64PromoteF32);
      } else {
        f.mem_op(Op::kF64Load);
      }
      f.op(Op::kF64Add);
      f.local_set(acc);
    });
  };

  f.for_loop_i32(rep, 0, reps, 1, [&] {
    switch (p.kernel) {
      case MicroKernel::kReduceF64: {
        if (p.use_simd) {
          f.f64_const(0.0);
          f.op(Op::kF64x2Splat);
          f.local_set(av);
          f.i32_const(i32(n * 8));
          f.local_set(lim);
          f.for_loop_i32(i, 0, lim, 16, [&] {
            f.local_get(av);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kV128Load);
            f.op(Op::kF64x2Add);
            f.local_set(av);
          });
          f.local_get(cks);
          f.local_get(av);
          f.lane_op(Op::kF64x2ExtractLane, 0);
          f.local_get(av);
          f.lane_op(Op::kF64x2ExtractLane, 1);
          f.op(Op::kF64Add);
          f.op(Op::kF64Add);
          f.local_set(cks);
        } else {
          f.f64_const(0.0);
          f.local_set(acc);
          f.i32_const(i32(n * 8));
          f.local_set(lim);
          f.for_loop_i32(i, 0, lim, 8, [&] {
            f.local_get(acc);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kF64Load);
            f.op(Op::kF64Add);
            f.local_set(acc);
          });
          f.local_get(cks);
          f.local_get(acc);
          f.op(Op::kF64Add);
          f.local_set(cks);
        }
        break;
      }
      case MicroKernel::kReduceI32: {
        if (p.use_simd) {
          f.i32_const(0);
          f.op(Op::kI32x4Splat);
          f.local_set(av);
          f.i32_const(i32(n * 4));
          f.local_set(lim);
          f.for_loop_i32(i, 0, lim, 16, [&] {
            f.local_get(av);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kV128Load);
            f.op(Op::kI32x4Add);
            f.local_set(av);
          });
          f.i32_const(0);
          f.local_set(acci);
          for (u8 lane = 0; lane < 4; ++lane) {
            f.local_get(acci);
            f.local_get(av);
            f.lane_op(Op::kI32x4ExtractLane, lane);
            f.op(Op::kI32Add);
            f.local_set(acci);
          }
        } else {
          f.i32_const(0);
          f.local_set(acci);
          f.i32_const(i32(n * 4));
          f.local_set(lim);
          f.for_loop_i32(i, 0, lim, 4, [&] {
            f.local_get(acci);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kI32Load);
            f.op(Op::kI32Add);
            f.local_set(acci);
          });
        }
        f.local_get(cks);
        f.local_get(acci);
        f.op(Op::kF64ConvertI32S);
        f.op(Op::kF64Add);
        f.local_set(cks);
        break;
      }
      case MicroKernel::kDaxpy: {
        f.i32_const(i32(n * 8));
        f.local_set(lim);
        if (p.use_simd) {
          f.f64_const(2.5);
          f.op(Op::kF64x2Splat);
          f.local_set(av);
          f.for_loop_i32(i, 0, lim, 16, [&] {
            mk_addr(f, l.y0, i);      // store address
            f.local_get(av);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kV128Load);
            f.op(Op::kF64x2Mul);
            mk_addr(f, l.y0, i);
            f.mem_op(Op::kV128Load);
            f.op(Op::kF64x2Add);
            f.mem_op(Op::kV128Store);
          });
        } else {
          f.for_loop_i32(i, 0, lim, 8, [&] {
            mk_addr(f, l.y0, i);
            f.f64_const(2.5);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kF64Load);
            f.op(Op::kF64Mul);
            mk_addr(f, l.y0, i);
            f.mem_op(Op::kF64Load);
            f.op(Op::kF64Add);
            f.mem_op(Op::kF64Store);
          });
        }
        break;
      }
      case MicroKernel::kStencil3: {
        // out[i] = 0.25*x[i-1] + 0.5*x[i] + 0.25*x[i+1], i in [1, n-1).
        // n % 4 == 0 makes the interior even-sized, so the SIMD pairs tile
        // it exactly and both builds touch the same elements.
        f.i32_const(i32((n - 1) * 8));
        f.local_set(lim);
        if (p.use_simd) {
          f.for_loop_i32(i, 8, lim, 16, [&] {
            mk_addr(f, l.out0, i);
            mk_addr(f, l.x0 - 8, i);   // x[i-1]
            f.mem_op(Op::kV128Load);
            f.f64_const(0.25);
            f.op(Op::kF64x2Splat);
            f.op(Op::kF64x2Mul);
            mk_addr(f, l.x0, i);       // x[i]
            f.mem_op(Op::kV128Load);
            f.f64_const(0.5);
            f.op(Op::kF64x2Splat);
            f.op(Op::kF64x2Mul);
            f.op(Op::kF64x2Add);
            mk_addr(f, l.x0 + 8, i);   // x[i+1]
            f.mem_op(Op::kV128Load);
            f.f64_const(0.25);
            f.op(Op::kF64x2Splat);
            f.op(Op::kF64x2Mul);
            f.op(Op::kF64x2Add);
            f.mem_op(Op::kV128Store);
          });
        } else {
          f.for_loop_i32(i, 8, lim, 8, [&] {
            mk_addr(f, l.out0, i);
            mk_addr(f, l.x0 - 8, i);
            f.mem_op(Op::kF64Load);
            f.f64_const(0.25);
            f.op(Op::kF64Mul);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kF64Load);
            f.f64_const(0.5);
            f.op(Op::kF64Mul);
            f.op(Op::kF64Add);
            mk_addr(f, l.x0 + 8, i);
            f.mem_op(Op::kF64Load);
            f.f64_const(0.25);
            f.op(Op::kF64Mul);
            f.op(Op::kF64Add);
            f.mem_op(Op::kF64Store);
          });
        }
        break;
      }
      case MicroKernel::kDotF64: {
        f.i32_const(i32(n * 8));
        f.local_set(lim);
        if (p.use_simd) {
          f.f64_const(0.0);
          f.op(Op::kF64x2Splat);
          f.local_set(av);
          f.for_loop_i32(i, 0, lim, 16, [&] {
            f.local_get(av);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kV128Load);
            mk_addr(f, l.y0, i);
            f.mem_op(Op::kV128Load);
            f.op(Op::kF64x2Mul);
            f.op(Op::kF64x2Add);
            f.local_set(av);
          });
          f.local_get(cks);
          f.local_get(av);
          f.lane_op(Op::kF64x2ExtractLane, 0);
          f.local_get(av);
          f.lane_op(Op::kF64x2ExtractLane, 1);
          f.op(Op::kF64Add);
          f.op(Op::kF64Add);
          f.local_set(cks);
        } else {
          f.f64_const(0.0);
          f.local_set(acc);
          f.for_loop_i32(i, 0, lim, 8, [&] {
            f.local_get(acc);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kF64Load);
            mk_addr(f, l.y0, i);
            f.mem_op(Op::kF64Load);
            f.op(Op::kF64Mul);
            f.op(Op::kF64Add);
            f.local_set(acc);
          });
          f.local_get(cks);
          f.local_get(acc);
          f.op(Op::kF64Add);
          f.local_set(cks);
        }
        break;
      }
      case MicroKernel::kSaxpyF32: {
        f.i32_const(i32(n * 4));
        f.local_set(lim);
        if (p.use_simd) {
          f.f32_const(2.5f);
          f.op(Op::kF32x4Splat);
          f.local_set(av);
          f.for_loop_i32(i, 0, lim, 16, [&] {
            mk_addr(f, l.y0, i);
            f.local_get(av);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kV128Load);
            f.op(Op::kF32x4Mul);
            mk_addr(f, l.y0, i);
            f.mem_op(Op::kV128Load);
            f.op(Op::kF32x4Add);
            f.mem_op(Op::kV128Store);
          });
        } else {
          f.for_loop_i32(i, 0, lim, 4, [&] {
            mk_addr(f, l.y0, i);
            f.f32_const(2.5f);
            mk_addr(f, l.x0, i);
            f.mem_op(Op::kF32Load);
            f.op(Op::kF32Mul);
            mk_addr(f, l.y0, i);
            f.mem_op(Op::kF32Load);
            f.op(Op::kF32Add);
            f.mem_op(Op::kF32Store);
          });
        }
        break;
      }
    }
  });

  // Checksum for the element-wise kernels: a scalar pass over the output.
  switch (p.kernel) {
    case MicroKernel::kDaxpy:
      emit_scalar_sum(l.y0, false);
      f.local_get(acc);
      f.local_set(cks);
      break;
    case MicroKernel::kStencil3:
      emit_scalar_sum(l.out0, false);
      f.local_get(acc);
      f.local_set(cks);
      break;
    case MicroKernel::kSaxpyF32:
      emit_scalar_sum(l.y0, true);
      f.local_get(acc);
      f.local_set(cks);
      break;
    default:
      break;  // reductions accumulated into cks per rep already
  }
  f.local_get(cks);
  f.end();
  return finish(b, "micro kernel module");
}

f64 micro_kernel_reference(const MicroKernelParams& p, u32 reps) {
  const u32 n = p.n;
  f64 cks = 0;
  switch (p.kernel) {
    case MicroKernel::kReduceF64: {
      for (u32 r = 0; r < reps; ++r) {
        f64 acc = 0;
        for (u32 k = 0; k < n; ++k) acc += f64(i32(k % 97)) * 0.5 + 1.0;
        cks += acc;
      }
      return cks;
    }
    case MicroKernel::kReduceI32: {
      for (u32 r = 0; r < reps; ++r) {
        i32 acc = 0;
        for (u32 k = 0; k < n; ++k)
          acc = i32(u32(acc) + (u32(k) * 1664525u + 1013904223u));
        cks += f64(acc);
      }
      return cks;
    }
    case MicroKernel::kDaxpy: {
      std::vector<f64> x(n), y(n);
      for (u32 k = 0; k < n; ++k) {
        x[k] = f64(i32(k % 97)) * 0.5 + 1.0;
        y[k] = f64(i32(k % 89)) * 0.25 + 2.0;
      }
      for (u32 r = 0; r < reps; ++r)
        for (u32 k = 0; k < n; ++k) y[k] = 2.5 * x[k] + y[k];
      for (u32 k = 0; k < n; ++k) cks += y[k];
      return cks;
    }
    case MicroKernel::kStencil3: {
      std::vector<f64> x(n), out(n, 0.0);
      for (u32 k = 0; k < n; ++k) x[k] = f64(i32(k % 97)) * 0.5 + 1.0;
      for (u32 k = 1; k + 1 < n; ++k)
        out[k] = 0.25 * x[k - 1] + 0.5 * x[k] + 0.25 * x[k + 1];
      for (u32 k = 0; k < n; ++k) cks += out[k];
      return cks;
    }
    case MicroKernel::kDotF64: {
      std::vector<f64> x(n), y(n);
      for (u32 k = 0; k < n; ++k) {
        x[k] = f64(i32(k % 97)) * 0.5 + 1.0;
        y[k] = f64(i32(k % 89)) * 0.25 + 2.0;
      }
      for (u32 r = 0; r < reps; ++r) {
        f64 acc = 0;
        for (u32 k = 0; k < n; ++k) acc += x[k] * y[k];
        cks += acc;
      }
      return cks;
    }
    case MicroKernel::kSaxpyF32: {
      std::vector<f32> x(n), y(n);
      for (u32 k = 0; k < n; ++k) {
        x[k] = f32(i32(k % 97)) * 0.5f + 1.0f;
        y[k] = f32(i32(k % 89)) * 0.25f + 2.0f;
      }
      for (u32 r = 0; r < reps; ++r)
        for (u32 k = 0; k < n; ++k) y[k] = 2.5f * x[k] + y[k];
      for (u32 k = 0; k < n; ++k) cks += f64(y[k]);
      return cks;
    }
  }
  return cks;
}

std::vector<u8> build_icoll_check_module() {
  ModuleBuilder b;
  MpiImportSet set;
  set.nonblocking = true;  // Waitany/Testall (+ Wait)
  set.icoll = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                FuncType{{I32}, {}});
  b.add_memory(1);
  b.export_memory();
  const u32 kIn = 2048, kOut = 2056;    // Iallreduce operands
  const u32 kReqs = 2080;               // 2 request handles
  const u32 kIndex = 2096, kFlag = 2100;
  const u32 kBval = 2104;               // Ibcast payload

  auto& f = b.begin_func({{}, {}}, "_start");
  u32 rank = f.add_local(I32);
  u32 size = f.add_local(I32);
  u32 ok = f.add_local(I32);
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kRankPtr));
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(i32(kRankPtr));
  f.mem_op(Op::kI32Load);
  f.local_set(rank);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kSizePtr));
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(i32(kSizePtr));
  f.mem_op(Op::kI32Load);
  f.local_set(size);
  f.i32_const(1);
  f.local_set(ok);

  // in = rank + 1; Iallreduce SUM -> reqs[0]; Ibarrier -> reqs[1].
  f.i32_const(i32(kIn));
  f.local_get(rank);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.mem_op(Op::kI32Store);
  f.i32_const(i32(kIn));
  f.i32_const(i32(kOut));
  f.i32_const(1);
  f.i32_const(abi::MPI_INT);
  f.i32_const(abi::MPI_SUM);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kReqs));
  f.call(mpi.iallreduce);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kReqs + 4));
  f.call(mpi.ibarrier);
  f.op(Op::kDrop);

  // Two Waitany calls drain both; a third must yield MPI_UNDEFINED.
  for (int call = 0; call < 3; ++call) {
    f.i32_const(2);
    f.i32_const(i32(kReqs));
    f.i32_const(i32(kIndex));
    f.i32_const(abi::MPI_STATUS_IGNORE);
    f.call(mpi.waitany);
    f.op(Op::kDrop);
  }
  f.i32_const(i32(kIndex));
  f.mem_op(Op::kI32Load);
  f.i32_const(abi::MPI_UNDEFINED);
  f.op(Op::kI32Ne);
  f.if_();
  f.i32_const(0);
  f.local_set(ok);
  f.end();

  // Testall over the drained (null) handles must set flag = 1.
  f.i32_const(2);
  f.i32_const(i32(kReqs));
  f.i32_const(i32(kFlag));
  f.i32_const(abi::MPI_STATUS_IGNORE);
  f.call(mpi.testall);
  f.op(Op::kDrop);
  f.i32_const(i32(kFlag));
  f.mem_op(Op::kI32Load);
  f.op(Op::kI32Eqz);
  f.if_();
  f.i32_const(0);
  f.local_set(ok);
  f.end();

  // sum == n (n + 1) / 2?
  f.i32_const(i32(kOut));
  f.mem_op(Op::kI32Load);
  f.local_get(size);
  f.local_get(size);
  f.i32_const(1);
  f.op(Op::kI32Add);
  f.op(Op::kI32Mul);
  f.i32_const(2);
  f.op(Op::kI32DivS);
  f.op(Op::kI32Ne);
  f.if_();
  f.i32_const(0);
  f.local_set(ok);
  f.end();

  // Ibcast(123) from root 0, completed with MPI_Wait.
  f.i32_const(i32(kBval));
  f.local_get(rank);
  f.op(Op::kI32Eqz);
  f.if_(I32);
  f.i32_const(123);
  f.else_();
  f.i32_const(0);
  f.end();
  f.mem_op(Op::kI32Store);
  f.i32_const(i32(kBval));
  f.i32_const(1);
  f.i32_const(abi::MPI_INT);
  f.i32_const(0);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kReqs));
  f.call(mpi.ibcast);
  f.op(Op::kDrop);
  f.i32_const(i32(kReqs));
  f.i32_const(abi::MPI_STATUS_IGNORE);
  f.call(mpi.wait);
  f.op(Op::kDrop);
  f.i32_const(i32(kBval));
  f.mem_op(Op::kI32Load);
  f.i32_const(123);
  f.op(Op::kI32Ne);
  f.if_();
  f.i32_const(0);
  f.local_set(ok);
  f.end();

  // MPI_Wtick must be positive and below one second.
  f.call(mpi.wtick);
  f.f64_const(0.0);
  f.op(Op::kF64Le);
  f.if_();
  f.i32_const(0);
  f.local_set(ok);
  f.end();
  f.call(mpi.wtick);
  f.f64_const(1.0);
  f.op(Op::kF64Ge);
  f.if_();
  f.i32_const(0);
  f.local_set(ok);
  f.end();

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.local_get(ok);
  f.op(Op::kI32Eqz);  // exit(ok ? 0 : 1)
  f.call(proc_exit);
  f.end();
  return finish(b, "icoll check module");
}

std::vector<u8> build_icoll_pipeline_module() {
  ModuleBuilder b;
  MpiImportSet set;
  set.nonblocking = true;  // Wait
  set.icoll = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                FuncType{{I32}, {}});
  // 2 MiB operands: every schedule exchange sits far above the 64 KiB
  // eager limit, so the rendezvous pipeline segments it whichever
  // algorithm selection wins.
  constexpr u32 kCount = 524288;  // i32 elements -> 2 MiB per buffer
  constexpr u32 kIn = 65536;
  constexpr u32 kOut = kIn + kCount * 4;
  constexpr u32 kReq = 2048;
  b.add_memory((kOut + kCount * 4) / 65536 + 1);
  b.export_memory();

  auto& f = b.begin_func({{}, {}}, "_start");
  u32 size = f.add_local(I32);
  u32 i = f.add_local(I32);
  u32 limit = f.add_local(I32);
  u32 ok = f.add_local(I32);
  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kSizePtr));
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(i32(kSizePtr));
  f.mem_op(Op::kI32Load);
  f.local_set(size);
  f.i32_const(1);
  f.local_set(ok);

  // in[i] = 1 for all i; SUM allreduce -> out[i] == size everywhere.
  f.i32_const(i32(kCount));
  f.local_set(limit);
  f.for_loop_i32(i, 0, limit, 1, [&] {
    f.i32_const(i32(kIn));
    f.local_get(i);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.op(Op::kI32Add);
    f.i32_const(1);
    f.mem_op(Op::kI32Store);
  });

  f.i32_const(i32(kIn));
  f.i32_const(i32(kOut));
  f.i32_const(i32(kCount));
  f.i32_const(abi::MPI_INT);
  f.i32_const(abi::MPI_SUM);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kReq));
  f.call(mpi.iallreduce);
  f.op(Op::kDrop);
  f.i32_const(i32(kReq));
  f.i32_const(abi::MPI_STATUS_IGNORE);
  f.call(mpi.wait);
  f.op(Op::kDrop);

  // First and last element both reduced to the world size.
  for (u32 at : {kOut, kOut + (kCount - 1) * 4}) {
    f.i32_const(i32(at));
    f.mem_op(Op::kI32Load);
    f.local_get(size);
    f.op(Op::kI32Ne);
    f.if_();
    f.i32_const(0);
    f.local_set(ok);
    f.end();
  }

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.local_get(ok);
  f.op(Op::kI32Eqz);  // exit(ok ? 0 : 1)
  f.call(proc_exit);
  f.end();
  return finish(b, "icoll pipeline module");
}

}  // namespace mpiwasm::toolchain
