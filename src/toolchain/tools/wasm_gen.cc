// wasm-gen: emits every benchmark kernel as a .wasm file on disk — the
// "compile once on your local system, distribute the binary" half of the
// paper's Figure 1 workflow.
//
// Usage: wasm-gen <output-dir>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "toolchain/kernels.h"

namespace fs = std::filesystem;
using namespace mpiwasm;
using namespace mpiwasm::toolchain;

namespace {

void emit(const fs::path& dir, const std::string& name,
          const std::vector<u8>& bytes) {
  fs::path out = dir / name;
  std::ofstream f(out, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          std::streamsize(bytes.size()));
  std::printf("  %-28s %8zu bytes\n", name.c_str(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  fs::path dir(argv[1]);
  fs::create_directories(dir);
  std::printf("emitting kernels to %s\n", dir.string().c_str());

  for (ImbRoutine r :
       {ImbRoutine::kPingPong, ImbRoutine::kSendRecv, ImbRoutine::kBcast,
        ImbRoutine::kAllReduce, ImbRoutine::kAllGather, ImbRoutine::kAlltoall,
        ImbRoutine::kReduce, ImbRoutine::kGather, ImbRoutine::kScatter}) {
    ImbParams p;
    p.routine = r;
    emit(dir, std::string("imb_") + imb_routine_name(r) + ".wasm",
         build_imb_module(p));
  }
  {
    ImbParams p;
    p.routine = ImbRoutine::kBarrier;
    p.min_bytes = p.max_bytes = 1;  // latency panel: single pseudo-size
    emit(dir, "imb_Barrier.wasm", build_imb_module(p));
  }
  {
    HpcgParams p;
    emit(dir, "xhpcg.wasm", build_hpcg_module(p));
    p.use_simd = true;
    emit(dir, "xhpcg_simd.wasm", build_hpcg_module(p));
  }
  for (MicroKernel k :
       {MicroKernel::kReduceF64, MicroKernel::kReduceI32, MicroKernel::kDaxpy,
        MicroKernel::kStencil3, MicroKernel::kDotF64, MicroKernel::kSaxpyF32}) {
    MicroKernelParams p;
    p.kernel = k;
    p.use_simd = false;
    emit(dir, std::string("micro_") + micro_kernel_name(k) + "_scalar.wasm",
         build_micro_kernel_module(p));
    p.use_simd = true;
    emit(dir, std::string("micro_") + micro_kernel_name(k) + "_simd.wasm",
         build_micro_kernel_module(p));
  }
  emit(dir, "is.wasm", build_is_module({}));
  for (DtTopology t :
       {DtTopology::kBlackHole, DtTopology::kWhiteHole, DtTopology::kShuffle}) {
    DtParams p;
    p.topology = t;
    p.use_simd = false;
    emit(dir, std::string("dt_") + dt_topology_name(t) + "_scalar.wasm",
         build_dt_module(p));
    p.use_simd = true;
    emit(dir, std::string("dt_") + dt_topology_name(t) + "_simd.wasm",
         build_dt_module(p));
  }
  emit(dir, "ior.wasm", build_ior_module({}));
  emit(dir, "hello.wasm", build_hello_module());
  emit(dir, "alloc_mem.wasm", build_alloc_mem_module());
  emit(dir, "allreduce_check.wasm", build_allreduce_check_module());
  emit(dir, "icoll_check.wasm", build_icoll_check_module());
  emit(dir, "icoll_pipeline.wasm", build_icoll_pipeline_module());
  {
    OverlapParams p;
    emit(dir, "overlap_heat.wasm", build_overlap_module(p));
    p.nonblocking = false;
    emit(dir, "overlap_heat_blocking.wasm", build_overlap_module(p));
  }
  return 0;
}
