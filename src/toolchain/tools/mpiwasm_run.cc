// mpiwasm-run: the command-line embedder — the in-process equivalent of
// the paper's `mpirun -np N ./mpiWasm app.wasm` (Listing 4).
//
// Synopsis: mpiwasm-run [flags] module.wasm [args...]
// The flag set below (kFlags) is the single source of truth; --help (and
// any parse error) prints the generated usage text.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "embedder/embedder.h"

using namespace mpiwasm;

namespace {

/// One row per accepted flag: `arg` is the value placeholder shown in the
/// usage text (nullptr = boolean flag). Both the parser and usage() iterate
/// this table, so the two can never drift apart again.
struct FlagSpec {
  const char* name;
  const char* arg;  // nullptr for flags that take no value
  const char* help;
};

constexpr FlagSpec kFlags[] = {
    {"--np", "N", "number of MPI ranks (default 1)"},
    {"--tier", "interp|baseline|lightopt|optimizing|tiered|jit",
     "execution tier (default optimizing)"},
    {"--jit", "on|off", "force native codegen on/off (overrides MPIWASM_JIT)"},
    {"--tierup-threshold", "N", "calls before interp -> baseline (tiered)"},
    {"--tierup-opt-threshold", "N", "calls before -> optimizing (tiered)"},
    {"--tierup-jit-threshold", "N", "calls before -> jit (tiered)"},
    {"--cache", nullptr, "enable the on-disk compilation cache"},
    {"--stats", nullptr, "print engine/tier-up counters to stderr"},
    {"--stats-json", "FILE", "write engine/tier-up counters as JSON"},
    {"--trace", "FILE",
     "write a Chrome trace-event JSON (Perfetto-loadable); also via "
     "MPIWASM_TRACE"},
    {"--profile", nullptr, "print an mpiP-style per-call MPI profile"},
    {"--faasm", nullptr, "Faasm-compat baseline (gRPC costs, no zero-copy)"},
    {"--netprofile", "omnipath|graviton2|zero",
     "simulated interconnect cost model (default zero)"},
    {"--dir", "host[:guest[:ro]]", "preopen a directory for the guest"},
    {"--help", nullptr, "show this help"},
};

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [flags] module.wasm [args...]\n\nflags:\n",
               argv0);
  for (const FlagSpec& f : kFlags) {
    std::string left = f.name;
    if (f.arg != nullptr) left += std::string(" ") + f.arg;
    std::fprintf(stderr, "  %-28s %s\n", left.c_str(), f.help);
  }
}

/// Strict positive-integer parse for the tier-up threshold flags;
/// rejects garbage, negatives, and zero instead of silently clamping.
bool parse_threshold(const char* s, mpiwasm::u64& out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || s[0] == '-' || v == 0)
    return false;
  out = v;
  return true;
}

/// Pulls flag values out of argv supporting both `--flag value` and
/// `--flag=value` spellings.
struct ArgCursor {
  int argc;
  char** argv;
  int i = 1;

  // Current token split at the first '=' (flag part / inline value part).
  std::string flag;
  const char* inline_val = nullptr;

  bool next() {
    if (++i > argc) return false;
    return split();
  }
  bool split() {
    if (i >= argc) return false;
    const char* s = argv[i];
    const char* eq = std::strchr(s, '=');
    if (s[0] == '-' && s[1] == '-' && eq != nullptr) {
      flag.assign(s, size_t(eq - s));
      inline_val = eq + 1;
    } else {
      flag = s;
      inline_val = nullptr;
    }
    return true;
  }
  /// The flag's value: inline (`--f=v`) or the next token (`--f v`).
  const char* value() {
    if (inline_val != nullptr) return inline_val;
    if (i + 1 < argc) return argv[++i];
    return nullptr;
  }
};

void write_stats_json(const std::string& path, const char* tier, int ranks,
                      const embed::RunResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[mpiwasm] cannot write %s\n", path.c_str());
    return;
  }
  const auto& t = r.tierup;
  std::fprintf(f,
               "{\n"
               "  \"tool\": \"mpiwasm-run\",\n"
               "  \"schema\": 1,\n"
               "  \"tier\": \"%s\",\n"
               "  \"ranks\": %d,\n"
               "  \"exit_code\": %d,\n"
               "  \"compile_ms\": %.3f,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"loaded_from_cache\": %s,\n"
               "  \"tierup\": {\n"
               "    \"funcs_total\": %llu,\n"
               "    \"funcs_predecoded\": %llu,\n"
               "    \"funcs_regcode\": %llu,\n"
               "    \"promoted_baseline\": %llu,\n"
               "    \"promoted_optimizing\": %llu,\n"
               "    \"promoted_jit\": %llu,\n"
               "    \"func_cache_hits\": %llu,\n"
               "    \"tierup_compile_ms\": %.3f,\n"
               "    \"calls_counted\": %llu,\n"
               "    \"jit_funcs\": %llu,\n"
               "    \"jit_fallback_funcs\": %llu,\n"
               "    \"jit_code_bytes\": %llu\n"
               "  }\n"
               "}\n",
               tier, ranks, r.exit_code, r.compile_ms, r.wall_seconds,
               r.loaded_from_cache ? "true" : "false",
               (unsigned long long)t.funcs_total,
               (unsigned long long)t.funcs_predecoded,
               (unsigned long long)t.funcs_regcode,
               (unsigned long long)t.promoted_baseline,
               (unsigned long long)t.promoted_optimizing,
               (unsigned long long)t.promoted_jit,
               (unsigned long long)t.func_cache_hits, t.tierup_compile_ms,
               (unsigned long long)t.calls_counted,
               (unsigned long long)t.jit_funcs,
               (unsigned long long)t.jit_fallback_funcs,
               (unsigned long long)t.jit_code_bytes);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  embed::EmbedderConfig cfg;
  cfg.engine.tier = rt::EngineTier::kOptimizing;
  int ranks = 1;
  bool print_stats = false;
  std::string stats_json_path;
  std::string module_path;

  ArgCursor cur{argc, argv};
  cur.split();
  for (; cur.i < argc; cur.next()) {
    const std::string& arg = cur.flag;
    if (arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--np") {
      const char* v = cur.value();
      if (v == nullptr) { usage(argv[0]); return 2; }
      ranks = std::atoi(v);
    } else if (arg == "--tier") {
      const char* v = cur.value();
      std::string t = v != nullptr ? v : "";
      if (t == "interp") cfg.engine.tier = rt::EngineTier::kInterp;
      else if (t == "baseline") cfg.engine.tier = rt::EngineTier::kBaseline;
      else if (t == "lightopt") cfg.engine.tier = rt::EngineTier::kLightOpt;
      else if (t == "optimizing") cfg.engine.tier = rt::EngineTier::kOptimizing;
      else if (t == "tiered") cfg.engine.tier = rt::EngineTier::kTiered;
      else if (t == "jit") cfg.engine.tier = rt::EngineTier::kJit;
      else { usage(argv[0]); return 2; }
    } else if (arg == "--jit") {
      // Overrides the MPIWASM_JIT environment default either way.
      const char* v = cur.value();
      std::string s = v != nullptr ? v : "";
      if (s == "on") cfg.engine.jit = true;
      else if (s == "off") cfg.engine.jit = false;
      else { usage(argv[0]); return 2; }
    } else if (arg == "--tierup-threshold") {
      const char* v = cur.value();
      if (v == nullptr ||
          !parse_threshold(v, cfg.engine.tierup_baseline_threshold)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--tierup-opt-threshold") {
      const char* v = cur.value();
      if (v == nullptr || !parse_threshold(v, cfg.engine.tierup_opt_threshold)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--tierup-jit-threshold") {
      const char* v = cur.value();
      if (v == nullptr || !parse_threshold(v, cfg.engine.tierup_jit_threshold)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--stats-json") {
      const char* v = cur.value();
      if (v == nullptr) { usage(argv[0]); return 2; }
      stats_json_path = v;
    } else if (arg == "--trace") {
      const char* v = cur.value();
      if (v == nullptr) { usage(argv[0]); return 2; }
      cfg.trace_path = v;
    } else if (arg == "--profile") {
      cfg.profile = true;
    } else if (arg == "--cache") {
      cfg.engine.enable_cache = true;
    } else if (arg == "--faasm") {
      cfg.faasm_compat = true;
    } else if (arg == "--netprofile") {
      const char* v = cur.value();
      std::string p = v != nullptr ? v : "";
      if (p == "omnipath") cfg.net_profile = simmpi::NetworkProfile::omnipath();
      else if (p == "graviton2")
        cfg.net_profile = simmpi::NetworkProfile::graviton2();
      else cfg.net_profile = simmpi::NetworkProfile::zero();
    } else if (arg == "--dir") {
      // host[:guest[:ro]] — the paper's -d isolation flag (§3.4).
      const char* v = cur.value();
      if (v == nullptr) { usage(argv[0]); return 2; }
      std::string spec = v;
      wasi::Preopen pre;
      size_t c1 = spec.find(':');
      pre.host_dir = spec.substr(0, c1);
      pre.guest_name = "data";
      if (c1 != std::string::npos) {
        size_t c2 = spec.find(':', c1 + 1);
        pre.guest_name = spec.substr(c1 + 1, c2 - c1 - 1);
        pre.read_only = c2 != std::string::npos && spec.substr(c2 + 1) == "ro";
      }
      cfg.preopens.push_back(pre);
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
      return 2;
    } else {
      module_path = arg;
      break;
    }
  }
  if (module_path.empty() || ranks < 1) {
    usage(argv[0]);
    return 2;
  }
  cfg.args = {module_path};
  for (int k = cur.i + 1; k < argc; ++k) cfg.args.push_back(argv[k]);

  std::ifstream in(module_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", module_path.c_str());
    return 1;
  }
  std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());

  // Benchmark kernels report through bench.report; print rows as they come.
  cfg.extra_imports = [](rt::ImportTable& t, int rank) {
    (void)rank;
    t.add("bench", "report",
          {{wasm::ValType::kI32, wasm::ValType::kF64, wasm::ValType::kF64,
            wasm::ValType::kF64},
           {}},
          [](rt::HostContext&, const rt::Slot* a, rt::Slot*) {
            std::printf("[report id=%d] %16.4f %16.4f %16.4f\n", a[0].i32v,
                        a[1].f64v, a[2].f64v, a[3].f64v);
          });
  };

  try {
    embed::Embedder embedder(cfg);
    auto cm = embedder.compile({bytes.data(), bytes.size()});
    std::fprintf(stderr, "[mpiwasm] compiled %s: tier=%s %.2fms%s\n",
                 module_path.c_str(), rt::tier_name(cm->tier), cm->compile_ms,
                 cm->loaded_from_cache ? " (cache hit)" : "");
    embed::RunResult result = embedder.run_world(cm, ranks);
    std::fprintf(stderr, "[mpiwasm] %d ranks finished in %.3fs, exit=%d\n",
                 ranks, result.wall_seconds, result.exit_code);
    if (cm->tier == rt::EngineTier::kTiered) {
      const auto& t = result.tierup;
      std::fprintf(stderr,
                   "[mpiwasm] tier-up: %llu funcs (%llu compiled), "
                   "%llu -> baseline, %llu -> optimizing, %llu -> jit, "
                   "%llu cache hits, %.2fms compiling\n",
                   (unsigned long long)t.funcs_total,
                   (unsigned long long)t.funcs_regcode,
                   (unsigned long long)t.promoted_baseline,
                   (unsigned long long)t.promoted_optimizing,
                   (unsigned long long)t.promoted_jit,
                   (unsigned long long)t.func_cache_hits, t.tierup_compile_ms);
    }
    if (print_stats) {
      const auto& t = result.tierup;
      std::fprintf(stderr,
                   "[mpiwasm] stats: tier=%s funcs=%llu regcode=%llu "
                   "calls_counted=%llu\n",
                   rt::tier_name(cm->tier), (unsigned long long)t.funcs_total,
                   (unsigned long long)t.funcs_regcode,
                   (unsigned long long)t.calls_counted);
      std::fprintf(stderr,
                   "[mpiwasm] stats: tier-up events: %llu -> baseline, "
                   "%llu -> optimizing, %llu -> jit (%llu cache hits, "
                   "%.2fms compiling)\n",
                   (unsigned long long)t.promoted_baseline,
                   (unsigned long long)t.promoted_optimizing,
                   (unsigned long long)t.promoted_jit,
                   (unsigned long long)t.func_cache_hits, t.tierup_compile_ms);
      std::fprintf(stderr,
                   "[mpiwasm] stats: jit: %llu native funcs, %llu interpreter "
                   "fallbacks, %llu code bytes\n",
                   (unsigned long long)t.jit_funcs,
                   (unsigned long long)t.jit_fallback_funcs,
                   (unsigned long long)t.jit_code_bytes);
    }
    if (!stats_json_path.empty())
      write_stats_json(stats_json_path, rt::tier_name(cm->tier), ranks, result);
    if (cfg.profile && !result.profile_text.empty())
      std::fputs(result.profile_text.c_str(), stderr);
    return result.exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[mpiwasm] error: %s\n", e.what());
    return 1;
  }
}
