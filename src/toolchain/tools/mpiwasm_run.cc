// mpiwasm-run: the command-line embedder — the in-process equivalent of
// the paper's `mpirun -np N ./mpiWasm app.wasm` (Listing 4).
//
// Usage:
//   mpiwasm-run --np N [--tier interp|baseline|lightopt|optimizing|tiered|jit]
//               [--jit on|off] [--tierup-threshold N]
//               [--tierup-opt-threshold N] [--tierup-jit-threshold N]
//               [--cache] [--stats]
//               [--dir host_dir[:guest_name[:ro]]] module.wasm [args...]
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "embedder/embedder.h"

using namespace mpiwasm;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --np N [--tier interp|baseline|lightopt|"
               "optimizing|tiered|jit]\n"
               "       [--jit on|off] [--tierup-threshold N]\n"
               "       [--tierup-opt-threshold N] [--tierup-jit-threshold N]\n"
               "       [--cache] [--stats] [--faasm]\n"
               "       [--profile omnipath|graviton2|zero]\n"
               "       [--dir host[:guest[:ro]]] module.wasm [args...]\n",
               argv0);
}

/// Strict positive-integer parse for the tier-up threshold flags;
/// rejects garbage, negatives, and zero instead of silently clamping.
bool parse_threshold(const char* s, mpiwasm::u64& out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || s[0] == '-' || v == 0)
    return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  embed::EmbedderConfig cfg;
  cfg.engine.tier = rt::EngineTier::kOptimizing;
  int ranks = 1;
  bool print_stats = false;
  std::string module_path;

  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--np" && i + 1 < argc) {
      ranks = std::atoi(argv[++i]);
    } else if (arg == "--tier" && i + 1 < argc) {
      std::string t = argv[++i];
      if (t == "interp") cfg.engine.tier = rt::EngineTier::kInterp;
      else if (t == "baseline") cfg.engine.tier = rt::EngineTier::kBaseline;
      else if (t == "lightopt") cfg.engine.tier = rt::EngineTier::kLightOpt;
      else if (t == "optimizing") cfg.engine.tier = rt::EngineTier::kOptimizing;
      else if (t == "tiered") cfg.engine.tier = rt::EngineTier::kTiered;
      else if (t == "jit") cfg.engine.tier = rt::EngineTier::kJit;
      else { usage(argv[0]); return 2; }
    } else if (arg == "--jit" && i + 1 < argc) {
      // Overrides the MPIWASM_JIT environment default either way.
      std::string v = argv[++i];
      if (v == "on") cfg.engine.jit = true;
      else if (v == "off") cfg.engine.jit = false;
      else { usage(argv[0]); return 2; }
    } else if (arg == "--tierup-threshold" && i + 1 < argc) {
      if (!parse_threshold(argv[++i], cfg.engine.tierup_baseline_threshold)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--tierup-opt-threshold" && i + 1 < argc) {
      if (!parse_threshold(argv[++i], cfg.engine.tierup_opt_threshold)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--tierup-jit-threshold" && i + 1 < argc) {
      if (!parse_threshold(argv[++i], cfg.engine.tierup_jit_threshold)) {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--cache") {
      cfg.engine.enable_cache = true;
    } else if (arg == "--faasm") {
      cfg.faasm_compat = true;
    } else if (arg == "--profile" && i + 1 < argc) {
      std::string p = argv[++i];
      if (p == "omnipath") cfg.profile = simmpi::NetworkProfile::omnipath();
      else if (p == "graviton2") cfg.profile = simmpi::NetworkProfile::graviton2();
      else cfg.profile = simmpi::NetworkProfile::zero();
    } else if (arg == "--dir" && i + 1 < argc) {
      // host[:guest[:ro]] — the paper's -d isolation flag (§3.4).
      std::string spec = argv[++i];
      wasi::Preopen pre;
      size_t c1 = spec.find(':');
      pre.host_dir = spec.substr(0, c1);
      pre.guest_name = "data";
      if (c1 != std::string::npos) {
        size_t c2 = spec.find(':', c1 + 1);
        pre.guest_name = spec.substr(c1 + 1, c2 - c1 - 1);
        pre.read_only = c2 != std::string::npos && spec.substr(c2 + 1) == "ro";
      }
      cfg.preopens.push_back(pre);
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
      return 2;
    } else {
      module_path = arg;
      break;
    }
  }
  if (module_path.empty() || ranks < 1) {
    usage(argv[0]);
    return 2;
  }
  cfg.args = {module_path};
  for (int k = i + 1; k < argc; ++k) cfg.args.push_back(argv[k]);

  std::ifstream in(module_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", module_path.c_str());
    return 1;
  }
  std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());

  // Benchmark kernels report through bench.report; print rows as they come.
  cfg.extra_imports = [](rt::ImportTable& t, int rank) {
    (void)rank;
    t.add("bench", "report",
          {{wasm::ValType::kI32, wasm::ValType::kF64, wasm::ValType::kF64,
            wasm::ValType::kF64},
           {}},
          [](rt::HostContext&, const rt::Slot* a, rt::Slot*) {
            std::printf("[report id=%d] %16.4f %16.4f %16.4f\n", a[0].i32v,
                        a[1].f64v, a[2].f64v, a[3].f64v);
          });
  };

  try {
    embed::Embedder embedder(cfg);
    auto cm = embedder.compile({bytes.data(), bytes.size()});
    std::fprintf(stderr, "[mpiwasm] compiled %s: tier=%s %.2fms%s\n",
                 module_path.c_str(), rt::tier_name(cm->tier), cm->compile_ms,
                 cm->loaded_from_cache ? " (cache hit)" : "");
    embed::RunResult result = embedder.run_world(cm, ranks);
    std::fprintf(stderr, "[mpiwasm] %d ranks finished in %.3fs, exit=%d\n",
                 ranks, result.wall_seconds, result.exit_code);
    if (cm->tier == rt::EngineTier::kTiered) {
      const auto& t = result.tierup;
      std::fprintf(stderr,
                   "[mpiwasm] tier-up: %llu funcs (%llu compiled), "
                   "%llu -> baseline, %llu -> optimizing, %llu -> jit, "
                   "%llu cache hits, %.2fms compiling\n",
                   (unsigned long long)t.funcs_total,
                   (unsigned long long)t.funcs_regcode,
                   (unsigned long long)t.promoted_baseline,
                   (unsigned long long)t.promoted_optimizing,
                   (unsigned long long)t.promoted_jit,
                   (unsigned long long)t.func_cache_hits, t.tierup_compile_ms);
    }
    if (print_stats) {
      const auto& t = result.tierup;
      std::fprintf(stderr,
                   "[mpiwasm] stats: tier=%s funcs=%llu regcode=%llu "
                   "calls_counted=%llu\n",
                   rt::tier_name(cm->tier), (unsigned long long)t.funcs_total,
                   (unsigned long long)t.funcs_regcode,
                   (unsigned long long)t.calls_counted);
      std::fprintf(stderr,
                   "[mpiwasm] stats: tier-up events: %llu -> baseline, "
                   "%llu -> optimizing, %llu -> jit (%llu cache hits, "
                   "%.2fms compiling)\n",
                   (unsigned long long)t.promoted_baseline,
                   (unsigned long long)t.promoted_optimizing,
                   (unsigned long long)t.promoted_jit,
                   (unsigned long long)t.func_cache_hits, t.tierup_compile_ms);
      std::fprintf(stderr,
                   "[mpiwasm] stats: jit: %llu native funcs, %llu interpreter "
                   "fallbacks, %llu code bytes\n",
                   (unsigned long long)t.jit_funcs,
                   (unsigned long long)t.jit_fallback_funcs,
                   (unsigned long long)t.jit_code_bytes);
    }
    return result.exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[mpiwasm] error: %s\n", e.what());
    return 1;
  }
}
