// wat-dump: decodes a .wasm binary and prints it in WebAssembly text
// format (paper Listing 1 style).
//
// Usage: wat-dump <module.wasm> [--no-code]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "wasm/decoder.h"
#include "wasm/wat.h"

using namespace mpiwasm;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <module.wasm> [--no-code]\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  if (!decoded.ok()) {
    std::fprintf(stderr, "decode error: %s\n", decoded.error.c_str());
    return 1;
  }
  wasm::WatOptions opts;
  if (argc > 2 && std::strcmp(argv[2], "--no-code") == 0) opts.print_code = false;
  std::fputs(wasm::to_wat(*decoded.module, opts).c_str(), stdout);
  return 0;
}
