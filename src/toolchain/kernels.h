// The kernel toolchain: every benchmark from the paper's evaluation (§4.2)
// authored as a Wasm module against the ModuleBuilder — our WASI-SDK
// substitute (DESIGN.md §2). Each builder returns validated .wasm bytes
// that import env.MPI_* (and WASI where needed) and report results through
// the bench.report host import.
#pragma once

#include <string>
#include <vector>

#include "support/common.h"

namespace mpiwasm::toolchain {

// ---------------------------------------------------------------------------
// Intel MPI Benchmarks (IMB) — Figures 3 and 4.
// ---------------------------------------------------------------------------

enum class ImbRoutine : i32 {
  kPingPong = 0,
  kSendRecv = 1,
  kBcast = 2,
  kAllReduce = 3,
  kAllGather = 4,
  kAlltoall = 5,
  kReduce = 6,
  kGather = 7,
  kScatter = 8,
  /// Barrier latency panel: message size is meaningless; sweeps run a
  /// single pseudo-size row (bytes = 1).
  kBarrier = 9,
};

const char* imb_routine_name(ImbRoutine r);

struct ImbParams {
  ImbRoutine routine = ImbRoutine::kPingPong;
  u32 min_bytes = 1;
  u32 max_bytes = 1 << 22;   // 4 MiB, like the paper's sweeps
  u32 base_iters = 1 << 20;  // per-size iterations ~= base_iters / bytes
  u32 max_iters = 400;
  u32 min_iters = 4;
  /// Report id passed back through bench.report as the first argument.
  i32 report_id = 0;
};

/// Per-size iteration count used by both the Wasm and native twins.
u32 imb_iters_for(const ImbParams& p, u32 bytes);

std::vector<u8> build_imb_module(const ImbParams& p);

// ---------------------------------------------------------------------------
// HPCG — Table 1, Figure 4f, Figure 5c.
// ---------------------------------------------------------------------------

struct HpcgParams {
  u32 n_per_rank = 1 << 15;  // local 1-D subdomain size (even when use_simd)
  u32 iterations = 25;       // fixed CG iterations (deterministic timing)
  /// -msimd128 analogue: f64x2 inner loops (dot products + vector updates).
  /// The native twin mirrors the SIMD dot's two-lane accumulation order, so
  /// wasm/native residuals stay bit-exact in both modes.
  bool use_simd = false;
  i32 report_id = 100;
};

/// Distributed conjugate gradient on the 1-D Laplacian [-1, 2, -1] with
/// halo exchange between neighbouring ranks and Allreduce dot products.
/// Reports (gflops, gbps, residual) through bench.report.
std::vector<u8> build_hpcg_module(const HpcgParams& p);

// ---------------------------------------------------------------------------
// NPB IS (integer sort) — Figure 5a.
// ---------------------------------------------------------------------------

struct IsParams {
  u32 keys_per_rank = 1 << 15;
  u32 key_log2_max = 19;  // keys in [0, 2^19)
  u32 repetitions = 10;
  i32 report_id = 200;
};

/// Bucketed parallel integer sort: local histogram, Alltoall of counts,
/// Alltoallv of keys, local counting sort, distributed verification.
/// Reports (mops_total, checksum_ok, reps).
std::vector<u8> build_is_module(const IsParams& p);

// ---------------------------------------------------------------------------
// NPB DT (data traffic) — Figure 5a.
// ---------------------------------------------------------------------------

enum class DtTopology : i32 { kBlackHole = 0, kWhiteHole = 1, kShuffle = 2 };
const char* dt_topology_name(DtTopology t);

struct DtParams {
  DtTopology topology = DtTopology::kBlackHole;
  u32 doubles_per_msg = 1 << 15;  // payload per edge
  u32 repetitions = 20;
  bool use_simd = false;          // -msimd128 analogue (§4.3/§4.5)
  i32 report_id = 300;
};

/// Sends f64 payloads through the topology; every receiver runs the
/// element-wise combine kernel (vectorizable; the SIMD build uses f64x2).
/// Reports (mbytes_per_s, checksum, reps).
std::vector<u8> build_dt_module(const DtParams& p);

// ---------------------------------------------------------------------------
// IOR — Figure 5b.
// ---------------------------------------------------------------------------

struct IorParams {
  u32 block_bytes = 1 << 20;
  u32 blocks = 8;
  u32 repetitions = 3;
  i32 report_id = 400;
};

/// POSIX-backend IOR equivalent through WASI: each rank writes/reads its
/// own file under the first preopen. Reports write and read MiB/s.
std::vector<u8> build_ior_module(const IorParams& p);

// ---------------------------------------------------------------------------
// Datatype-translation probe — Figure 6.
// ---------------------------------------------------------------------------

struct DatatypePingPongParams {
  u32 max_bytes = 1 << 22;
  u32 iters_per_size = 16;
  i32 report_id = 500;
};

/// PingPong iterating over MPI_BYTE/CHAR/INT/FLOAT/DOUBLE/LONG so the
/// embedder's instrumented Send path sees every datatype at every size
/// (paper §4.6).
std::vector<u8> build_datatype_pingpong_module(const DatatypePingPongParams& p);

// ---------------------------------------------------------------------------
// Compute/communication overlap probe — bench_icoll.
// ---------------------------------------------------------------------------

struct OverlapParams {
  u32 n_per_rank = 1 << 14;  // local 1-D heat-diffusion cells
  u32 iterations = 40;
  /// false = blocking Allreduce before the sweep (the baseline the overlap
  /// efficiency is measured against).
  bool nonblocking = true;
  i32 report_id = 600;
};

/// Heat-diffusion (1-D Jacobi) with neighbour halo exchange and a global
/// residual reduction per iteration. The nonblocking variant initiates
/// MPI_Iallreduce on the previous sweep's residual, runs the stencil sweep,
/// then completes the request with MPI_Wait — folding the whole sweep into
/// the collective's wait window. Reports (seconds, residual, iterations)
/// through bench.report.
std::vector<u8> build_overlap_module(const OverlapParams& p);

// ---------------------------------------------------------------------------
// Vectorizable micro kernels — bench_simd / §4.5's -msimd128 effect.
// ---------------------------------------------------------------------------

/// The kernel set whose inner loops vectorize trivially (ROADMAP item
/// "Wasm SIMD (v128)"): each builds as a scalar module and a v128 twin so
/// bench_simd and the differential tests can compare them directly.
enum class MicroKernel : i32 {
  kReduceF64 = 0,   // sum x[i]              (f64; SIMD reassociates)
  kReduceI32 = 1,   // wrapping sum x[i]     (i32; exact in any order)
  kDaxpy = 2,       // y[i] = a*x[i] + y[i]  (f64; element-wise, bit-exact)
  kStencil3 = 3,    // 3-point stencil       (f64; element-wise, bit-exact)
  kDotF64 = 4,      // sum x[i]*y[i]         (f64; SIMD reassociates)
  kSaxpyF32 = 5,    // y[i] = a*x[i] + y[i]  (f32; element-wise, bit-exact)
};

const char* micro_kernel_name(MicroKernel k);

/// True for kernels whose SIMD build reassociates a floating-point
/// reduction: their scalar/SIMD checksums agree only to a ULP bound, not
/// bit-exactly (element-wise kernels and integer reductions are exact).
bool micro_kernel_reassociates(MicroKernel k);

struct MicroKernelParams {
  MicroKernel kernel = MicroKernel::kDaxpy;
  u32 n = 1 << 14;        // elements; must be a multiple of 4 and >= 8
  bool use_simd = false;  // emit the v128 inner loop instead of the scalar one
};

/// Builds a pure-engine module (no MPI/WASI imports) exporting
///   init()            — fills the input arrays deterministically
///   run(reps) -> f64  — executes the kernel `reps` times and returns the
///                       checksum (a scalar pass shared verbatim by both
///                       builds, so element-wise kernels compare bit-exactly)
std::vector<u8> build_micro_kernel_module(const MicroKernelParams& p);

/// Host-side twin of the *scalar* build's checksum (same operation order).
f64 micro_kernel_reference(const MicroKernelParams& p, u32 reps);

// ---------------------------------------------------------------------------
// Threaded kernels — wasi-threads + 0xFE atomics (bench_threads).
// ---------------------------------------------------------------------------

struct ThreadedKernelParams {
  /// Only the element-wise f64 kernels (kDaxpy, kStencil3) have threaded
  /// twins: their results are bit-exact for any partition of the index
  /// space, so the threaded build's checksum equals micro_kernel_reference.
  MicroKernel kernel = MicroKernel::kDaxpy;
  u32 n = 1 << 14;   // elements; multiple of 16 and >= 64
  u32 nthreads = 4;  // worker threads spawned by init(); 1..64
};

/// Shared-memory module (threads proposal) exporting
///   init() -> i32     — fills inputs and spawns `nthreads` workers via the
///                       "wasi" "thread-spawn" import; 0 on success
///   run(reps) -> f64  — per rep, drives the worker pool through one epoch
///                       barrier over the element-wise kernel; returns the
///                       same sequential scalar checksum as the
///                       single-threaded build (bit-exact)
///   shutdown()        — raises the stop flag and wakes the workers so the
///                       host's join completes
/// All coordination is 0xFE atomics: seq-cst RMWs on the epoch/done words
/// plus memory.atomic.wait32 / notify instead of host-visible locks.
std::vector<u8> build_threaded_micro_kernel_module(
    const ThreadedKernelParams& p);

/// Dot products in the threaded CG reduce into this many fixed partial
/// blocks, combined sequentially by the main thread — so the residual is
/// bit-identical for every nthreads in 1..kCgDotBlocks.
constexpr u32 kCgDotBlocks = 16;

struct ThreadedCgParams {
  u32 n = 1 << 12;   // elements; multiple of kCgDotBlocks
  u32 nthreads = 4;  // 1..kCgDotBlocks
};

/// Threaded conjugate gradient on the 1-D Laplacian [-1, 2, -1]: the
/// shared-memory analogue of build_hpcg_module's per-rank solve (pure
/// engine, no MPI). Exports init() -> i32, run(iters) -> f64 (the final
/// residual), and shutdown(). Worker threads own fixed element blocks;
/// scalars (alpha/beta) are computed and broadcast by the main thread.
std::vector<u8> build_threaded_cg_module(const ThreadedCgParams& p);

/// Host-side twin of the threaded CG with the identical operation order
/// (block-partial dots combined sequentially): residuals match bit-exactly
/// for every thread count.
f64 threaded_cg_reference(const ThreadedCgParams& p, u32 iterations);

/// Guest-concurrency probe for the engine differential suite: calls
/// MPI_Init_thread (expects MPI_THREAD_MULTIPLE), spawns two guest threads
/// that hammer a shared counter with atomic RMWs and park/wake through
/// wait32/notify, checks wait return codes (ok / not-equal / timed-out) and
/// a cmpxchg round-trip, then exits 0 iff every check passed.
std::vector<u8> build_threads_check_module();

// ---------------------------------------------------------------------------
// Micro kernels (tests, quickstart, Table 1 single-core runs).
// ---------------------------------------------------------------------------

/// Prints "hello from rank R of N" via fd_write and exits 0.
std::vector<u8> build_hello_module();
/// Compile-time workload: `copies` structurally distinct compute functions
/// (Table 1's compile-duration column needs an application-sized module;
/// the real HPCG application compiles to ~722 KiB of Wasm, our CG kernel
/// to ~1 KiB).
std::vector<u8> build_compile_stress_module(u32 copies);
/// Computes a fixed arithmetic workload; returns via proc_exit code.
std::vector<u8> build_compute_module(u32 inner_iters);
/// Allreduce correctness probe: exit code 0 iff sum over ranks matches.
std::vector<u8> build_allreduce_check_module();
/// Nonblocking-collective probe: Iallreduce + Ibarrier drained via
/// MPI_Waitany/MPI_Testall, then an Ibcast completed with MPI_Wait.
/// Exit code 0 iff every result and request-state check passes.
std::vector<u8> build_icoll_check_module();
/// Segmented-rendezvous probe: one 2 MiB Iallreduce completed with
/// MPI_Wait, so every schedule exchange crosses the eager limit and the
/// pipelined-rendezvous path runs (the `--trace` demo workload for
/// `rndv.segment` / `sched.step` events). Exit code 0 iff the reduction
/// is correct at both buffer ends.
std::vector<u8> build_icoll_pipeline_module();
/// MPI_Alloc_mem/Free_mem round-trip probe (exercises exported malloc).
std::vector<u8> build_alloc_mem_module();

}  // namespace mpiwasm::toolchain
