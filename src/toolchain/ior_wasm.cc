// IOR-equivalent file I/O kernel through WASI (POSIX backend; §4.2).
//
// Each rank writes and reads back its own file under the first preopened
// directory, timing both phases. All filesystem traffic flows through the
// embedder's userspace permission handling and virtual directory tree
// (§3.4) — the overhead Figure 5b shows to be negligible.
#include "toolchain/kernels.h"

#include "embedder/abi.h"
#include "toolchain/mpi_imports.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::toolchain {

using wasm::FuncType;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;
namespace abi = embed::abi;

namespace {
constexpr ValType I32 = ValType::kI32;
constexpr ValType I64 = ValType::kI64;
constexpr u32 kRankPtr = 1024;
constexpr u32 kSizePtr = 1032;
constexpr u32 kScratchIn = 1040;   // f64 x2 (elapsed write/read)
constexpr u32 kScratchOut = 1056;  // f64 x2
constexpr u32 kPath = 1100;        // "rA.dat" template
constexpr u32 kFdPtr = 1120;
constexpr u32 kIov = 1128;         // (ptr, len)
constexpr u32 kNPtr = 1136;
constexpr u32 kBuf = 1 << 16;
}  // namespace

std::vector<u8> build_ior_module(const IorParams& p) {
  const u32 heap = kBuf + p.block_bytes + 4096;

  ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 report = declare_report_import(b);
  // WASI file imports (the module's POSIX layer, Listing 1).
  u32 path_open = b.import_func(
      "wasi_snapshot_preview1", "path_open",
      FuncType{{I32, I32, I32, I32, I32, I64, I64, I32, I32}, {I32}});
  u32 fd_write = b.import_func("wasi_snapshot_preview1", "fd_write",
                               FuncType{{I32, I32, I32, I32}, {I32}});
  u32 fd_read = b.import_func("wasi_snapshot_preview1", "fd_read",
                              FuncType{{I32, I32, I32, I32}, {I32}});
  u32 fd_close = b.import_func("wasi_snapshot_preview1", "fd_close",
                               FuncType{{I32}, {I32}});
  u32 proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit",
                                FuncType{{I32}, {}});

  b.add_memory((heap >> 16) + 2);
  b.export_memory();
  b.add_data_string(kPath, "rA.dat");
  add_bump_allocator(b, heap);

  auto& f = b.begin_func({{}, {}}, "_start");
  const u32 rank = f.add_local(I32);
  const u32 size = f.add_local(I32);
  const u32 i = f.add_local(I32);
  const u32 lim = f.add_local(I32);
  const u32 blk = f.add_local(I32);
  const u32 blk_lim = f.add_local(I32);
  const u32 rep = f.add_local(I32);
  const u32 rep_lim = f.add_local(I32);
  const u32 fd = f.add_local(I32);
  const u32 t0 = f.add_local(ValType::kF64);
  const u32 tw = f.add_local(ValType::kF64);  // accumulated write seconds
  const u32 tr = f.add_local(ValType::kF64);  // accumulated read seconds
  const u32 err = f.add_local(I32);

  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kRankPtr));
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(i32(kRankPtr));
  f.mem_op(Op::kI32Load);
  f.local_set(rank);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kSizePtr));
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(i32(kSizePtr));
  f.mem_op(Op::kI32Load);
  f.local_set(size);

  // Patch the per-rank filename: path[1] = 'A' + rank.
  f.i32_const(i32(kPath + 1));
  f.i32_const('A');
  f.local_get(rank);
  f.op(Op::kI32Add);
  f.mem_op(Op::kI32Store8);

  // Fill the block with a rank-tagged pattern.
  f.i32_const(i32(p.block_bytes));
  f.local_set(lim);
  f.for_loop_i32(i, 0, lim, 4, [&] {
    f.i32_const(i32(kBuf));
    f.local_get(i);
    f.op(Op::kI32Add);
    f.local_get(i);
    f.local_get(rank);
    f.op(Op::kI32Xor);
    f.mem_op(Op::kI32Store);
  });

  // iovec is constant across calls.
  f.i32_const(i32(kIov));
  f.i32_const(i32(kBuf));
  f.mem_op(Op::kI32Store);
  f.i32_const(i32(kIov + 4));
  f.i32_const(i32(p.block_bytes));
  f.mem_op(Op::kI32Store);

  // Opens the rank file; oflags/rights per phase. Traps via proc_exit(9x)
  // on failure so misconfiguration is loud.
  auto emit_open = [&](bool writing) {
    f.i32_const(3);  // first preopen
    f.i32_const(0);  // dirflags
    f.i32_const(i32(kPath));
    f.i32_const(6);  // path length
    f.i32_const(writing ? 9 : 0);  // O_CREAT|O_TRUNC : none
    f.i64_const(writing ? (1 << 6) : (1 << 1));  // rights: fd_write : fd_read
    f.i64_const(0);
    f.i32_const(0);
    f.i32_const(i32(kFdPtr));
    f.call(path_open);
    f.local_set(err);
    f.local_get(err);
    f.if_();
    f.i32_const(90);
    f.call(proc_exit);
    f.end();
    f.i32_const(i32(kFdPtr));
    f.mem_op(Op::kI32Load);
    f.local_set(fd);
  };

  f.i32_const(i32(p.repetitions));
  f.local_set(rep_lim);
  f.i32_const(i32(p.blocks));
  f.local_set(blk_lim);

  f.for_loop_i32(rep, 0, rep_lim, 1, [&] {
    // --- Write phase --------------------------------------------------------
    f.i32_const(abi::MPI_COMM_WORLD);
    f.call(mpi.barrier);
    f.op(Op::kDrop);
    f.call(mpi.wtime);
    f.local_set(t0);
    emit_open(true);
    f.for_loop_i32(blk, 0, blk_lim, 1, [&] {
      f.local_get(fd);
      f.i32_const(i32(kIov));
      f.i32_const(1);
      f.i32_const(i32(kNPtr));
      f.call(fd_write);
      f.op(Op::kDrop);
    });
    f.local_get(fd);
    f.call(fd_close);
    f.op(Op::kDrop);
    f.local_get(tw);
    f.call(mpi.wtime);
    f.local_get(t0);
    f.op(Op::kF64Sub);
    f.op(Op::kF64Add);
    f.local_set(tw);

    // --- Read phase ---------------------------------------------------------
    f.i32_const(abi::MPI_COMM_WORLD);
    f.call(mpi.barrier);
    f.op(Op::kDrop);
    f.call(mpi.wtime);
    f.local_set(t0);
    emit_open(false);
    f.for_loop_i32(blk, 0, blk_lim, 1, [&] {
      f.local_get(fd);
      f.i32_const(i32(kIov));
      f.i32_const(1);
      f.i32_const(i32(kNPtr));
      f.call(fd_read);
      f.op(Op::kDrop);
    });
    f.local_get(fd);
    f.call(fd_close);
    f.op(Op::kDrop);
    f.local_get(tr);
    f.call(mpi.wtime);
    f.local_get(t0);
    f.op(Op::kF64Sub);
    f.op(Op::kF64Add);
    f.local_set(tr);
  });

  // Aggregate IOR-style: total bytes / max-across-ranks elapsed.
  f.i32_const(i32(kScratchIn));
  f.local_get(tw);
  f.mem_op(Op::kF64Store);
  f.i32_const(i32(kScratchIn + 8));
  f.local_get(tr);
  f.mem_op(Op::kF64Store);
  f.i32_const(i32(kScratchIn));
  f.i32_const(i32(kScratchOut));
  f.i32_const(2);
  f.i32_const(abi::MPI_DOUBLE);
  f.i32_const(abi::MPI_MAX);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.allreduce);
  f.op(Op::kDrop);

  f.local_get(rank);
  f.op(Op::kI32Eqz);
  f.if_();
  {
    const f64 mib = f64(p.blocks) * f64(p.block_bytes) * f64(p.repetitions) /
                    (1024.0 * 1024.0);
    f.i32_const(p.report_id);
    // write MiB/s (aggregate)
    f.f64_const(mib);
    f.local_get(size);
    f.op(Op::kF64ConvertI32S);
    f.op(Op::kF64Mul);
    f.i32_const(i32(kScratchOut));
    f.mem_op(Op::kF64Load);
    f.op(Op::kF64Div);
    // read MiB/s (aggregate)
    f.f64_const(mib);
    f.local_get(size);
    f.op(Op::kF64ConvertI32S);
    f.op(Op::kF64Mul);
    f.i32_const(i32(kScratchOut + 8));
    f.mem_op(Op::kF64Load);
    f.op(Op::kF64Div);
    f.f64_const(f64(p.block_bytes));
    f.call(report);
  }
  f.end();

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();

  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  MW_CHECK(decoded.ok(), "ior module failed to decode: " + decoded.error);
  auto vr = wasm::validate_module(*decoded.module);
  MW_CHECK(vr.ok, "ior module failed to validate: " + vr.error);
  return bytes;
}

}  // namespace mpiwasm::toolchain
