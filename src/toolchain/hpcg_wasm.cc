// HPCG-equivalent kernel in Wasm: distributed conjugate gradient on the
// 1-D Laplacian with halo exchange and Allreduce dot products (§4.2).
//
// The communication pattern is the one the paper's §4.5 analysis leans on:
// every CG iteration issues two MPI_Allreduce calls on a single double, so
// the per-call translation overhead in the embedder grows linearly with
// iteration count and rank count — the mechanism behind the 14% GFLOP/s
// gap at 6144 ranks.
#include "toolchain/kernels.h"

#include "embedder/abi.h"
#include "toolchain/mpi_imports.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::toolchain {

using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;
namespace abi = embed::abi;

namespace {

constexpr u32 kRankPtr = 1024;
constexpr u32 kSizePtr = 1032;
constexpr u32 kScratchIn = 1040;   // f64 allreduce input
constexpr u32 kScratchOut = 1048;  // f64 allreduce output
constexpr u32 kArrayBase = 1 << 16;

}  // namespace

std::vector<u8> build_hpcg_module(const HpcgParams& p) {
  const u32 n = p.n_per_rank;
  const bool simd = p.use_simd;
  MW_CHECK(!simd || n % 2 == 0, "hpcg SIMD build needs an even n_per_rank");
  const u64 stride = u64(n + 2) * 8;  // ghost cells at [0] and [n+1]
  const u32 X0 = kArrayBase;
  const u32 R0 = u32(X0 + stride);
  const u32 P0 = u32(R0 + stride);
  const u32 A0 = u32(P0 + stride);  // Ap
  const u32 heap = u32(A0 + stride + 4096);

  ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  set.sendrecv = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 report = declare_report_import(b);
  b.add_memory((heap >> 16) + 2);
  b.export_memory();
  add_bump_allocator(b, heap);

  u32 g_rank = b.add_global(ValType::kI32, true, 0);
  u32 g_size = b.add_global(ValType::kI32, true, 1);

  // --- dot(a_base, b_base) -> f64 : local dot product over [1, n] --------
  // SIMD build: an f64x2 accumulator over element pairs (1,2),(3,4),...;
  // the final sum is lane0 + lane1 (the native twin mirrors this order).
  auto& dot = b.begin_func({{ValType::kI32, ValType::kI32}, {ValType::kF64}});
  {
    u32 off = dot.add_local(ValType::kI32);
    u32 lim = dot.add_local(ValType::kI32);
    u32 acc = dot.add_local(ValType::kF64);
    dot.i32_const(i32(8 * (n + 1)));
    dot.local_set(lim);
    if (simd) {
      u32 av = dot.add_local(ValType::kV128);
      dot.f64_const(0.0);
      dot.op(Op::kF64x2Splat);
      dot.local_set(av);
      dot.for_loop_i32(off, 8, lim, 16, [&] {
        dot.local_get(av);
        dot.local_get(0);
        dot.local_get(off);
        dot.op(Op::kI32Add);
        dot.mem_op(Op::kV128Load);
        dot.local_get(1);
        dot.local_get(off);
        dot.op(Op::kI32Add);
        dot.mem_op(Op::kV128Load);
        dot.op(Op::kF64x2Mul);
        dot.op(Op::kF64x2Add);
        dot.local_set(av);
      });
      dot.local_get(av);
      dot.lane_op(Op::kF64x2ExtractLane, 0);
      dot.local_get(av);
      dot.lane_op(Op::kF64x2ExtractLane, 1);
      dot.op(Op::kF64Add);
    } else {
      dot.for_loop_i32(off, 8, lim, 8, [&] {
        dot.local_get(acc);
        dot.local_get(0);
        dot.local_get(off);
        dot.op(Op::kI32Add);
        dot.mem_op(Op::kF64Load);
        dot.local_get(1);
        dot.local_get(off);
        dot.op(Op::kI32Add);
        dot.mem_op(Op::kF64Load);
        dot.op(Op::kF64Mul);
        dot.op(Op::kF64Add);
        dot.local_set(acc);
      });
      dot.local_get(acc);
    }
    dot.end();
  }

  // --- halo(base) : exchange ghost cells with neighbours ------------------
  auto& halo = b.begin_func({{ValType::kI32}, {}});
  {
    // if (rank > 0) Sendrecv(base+8 -> left, tag 2; base+0 <- left, tag 1)
    halo.global_get(g_rank);
    halo.i32_const(0);
    halo.op(Op::kI32GtS);
    halo.if_();
    {
      halo.local_get(0);
      halo.i32_const(8);
      halo.op(Op::kI32Add);       // sendbuf = &v[1]
      halo.i32_const(1);          // count
      halo.i32_const(abi::MPI_DOUBLE);
      halo.global_get(g_rank);
      halo.i32_const(1);
      halo.op(Op::kI32Sub);       // dest = rank - 1
      halo.i32_const(2);          // sendtag: leftward data
      halo.local_get(0);          // recvbuf = &v[0]
      halo.i32_const(1);
      halo.i32_const(abi::MPI_DOUBLE);
      halo.global_get(g_rank);
      halo.i32_const(1);
      halo.op(Op::kI32Sub);       // source = rank - 1
      halo.i32_const(1);          // recvtag: rightward data
      halo.i32_const(abi::MPI_COMM_WORLD);
      halo.i32_const(abi::MPI_STATUS_IGNORE);
      halo.call(mpi.sendrecv);
      halo.op(Op::kDrop);
    }
    halo.end();
    // if (rank < size-1) Sendrecv(base+8n -> right, tag 1; base+8(n+1) <- right, tag 2)
    halo.global_get(g_rank);
    halo.global_get(g_size);
    halo.i32_const(1);
    halo.op(Op::kI32Sub);
    halo.op(Op::kI32LtS);
    halo.if_();
    {
      halo.local_get(0);
      halo.i32_const(i32(8 * n));
      halo.op(Op::kI32Add);       // sendbuf = &v[n]
      halo.i32_const(1);
      halo.i32_const(abi::MPI_DOUBLE);
      halo.global_get(g_rank);
      halo.i32_const(1);
      halo.op(Op::kI32Add);       // dest = rank + 1
      halo.i32_const(1);          // sendtag: rightward data
      halo.local_get(0);
      halo.i32_const(i32(8 * (n + 1)));
      halo.op(Op::kI32Add);       // recvbuf = &v[n+1]
      halo.i32_const(1);
      halo.i32_const(abi::MPI_DOUBLE);
      halo.global_get(g_rank);
      halo.i32_const(1);
      halo.op(Op::kI32Add);       // source = rank + 1
      halo.i32_const(2);          // recvtag: leftward data
      halo.i32_const(abi::MPI_COMM_WORLD);
      halo.i32_const(abi::MPI_STATUS_IGNORE);
      halo.call(mpi.sendrecv);
      halo.op(Op::kDrop);
    }
    halo.end();
    halo.end();
  }

  // --- allreduce_sum(x: f64) -> f64 ----------------------------------------
  auto& ar = b.begin_func({{ValType::kF64}, {ValType::kF64}});
  {
    ar.i32_const(i32(kScratchIn));
    ar.local_get(0);
    ar.mem_op(Op::kF64Store);
    ar.i32_const(i32(kScratchIn));
    ar.i32_const(i32(kScratchOut));
    ar.i32_const(1);
    ar.i32_const(abi::MPI_DOUBLE);
    ar.i32_const(abi::MPI_SUM);
    ar.i32_const(abi::MPI_COMM_WORLD);
    ar.call(mpi.allreduce);
    ar.op(Op::kDrop);
    ar.i32_const(i32(kScratchOut));
    ar.mem_op(Op::kF64Load);
    ar.end();
  }

  // --- _start ---------------------------------------------------------------
  auto& f = b.begin_func({{}, {}}, "_start");
  {
    const u32 off = f.add_local(ValType::kI32);
    const u32 lim = f.add_local(ValType::kI32);
    const u32 it = f.add_local(ValType::kI32);
    const u32 iter_lim = f.add_local(ValType::kI32);
    const u32 rr = f.add_local(ValType::kF64);
    const u32 rr_new = f.add_local(ValType::kF64);
    const u32 alpha = f.add_local(ValType::kF64);
    const u32 beta = f.add_local(ValType::kF64);
    const u32 t0 = f.add_local(ValType::kF64);
    const u32 t1 = f.add_local(ValType::kF64);
    const u32 va = simd ? f.add_local(ValType::kV128) : 0;  // alpha/beta splat

    f.i32_const(0);
    f.i32_const(0);
    f.call(mpi.init);
    f.op(Op::kDrop);
    f.i32_const(abi::MPI_COMM_WORLD);
    f.i32_const(i32(kRankPtr));
    f.call(mpi.comm_rank);
    f.op(Op::kDrop);
    f.i32_const(i32(kRankPtr));
    f.mem_op(Op::kI32Load);
    f.global_set(g_rank);
    f.i32_const(abi::MPI_COMM_WORLD);
    f.i32_const(i32(kSizePtr));
    f.call(mpi.comm_size);
    f.op(Op::kDrop);
    f.i32_const(i32(kSizePtr));
    f.mem_op(Op::kI32Load);
    f.global_set(g_size);

    // Init: x = 0 (memory starts zeroed); r = p = b where b[i] = 1.
    f.i32_const(i32(8 * (n + 1)));
    f.local_set(lim);
    f.for_loop_i32(off, 8, lim, 8, [&] {
      f.i32_const(i32(R0));
      f.local_get(off);
      f.op(Op::kI32Add);
      f.f64_const(1.0);
      f.mem_op(Op::kF64Store);
      f.i32_const(i32(P0));
      f.local_get(off);
      f.op(Op::kI32Add);
      f.f64_const(1.0);
      f.mem_op(Op::kF64Store);
    });

    // rr = allreduce(dot(r, r))
    f.i32_const(i32(R0));
    f.i32_const(i32(R0));
    f.call(dot.index());
    f.call(ar.index());
    f.local_set(rr);

    f.i32_const(abi::MPI_COMM_WORLD);
    f.call(mpi.barrier);
    f.op(Op::kDrop);
    f.call(mpi.wtime);
    f.local_set(t0);

    f.i32_const(i32(p.iterations));
    f.local_set(iter_lim);
    f.for_loop_i32(it, 0, iter_lim, 1, [&] {
      // halo(p); Ap = A p   (Ap[i] = 2 p[i] - p[i-1] - p[i+1])
      f.i32_const(i32(P0));
      f.call(halo.index());
      f.i32_const(i32(8 * (n + 1)));
      f.local_set(lim);
      if (simd) {
        f.for_loop_i32(off, 8, lim, 16, [&] {
          f.i32_const(i32(A0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.i32_const(i32(P0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.f64_const(2.0);
          f.op(Op::kF64x2Splat);
          f.op(Op::kF64x2Mul);
          f.i32_const(i32(P0 - 8));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.op(Op::kF64x2Sub);
          f.i32_const(i32(P0 + 8));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.op(Op::kF64x2Sub);
          f.mem_op(Op::kV128Store);
        });
      } else {
        f.for_loop_i32(off, 8, lim, 8, [&] {
          f.i32_const(i32(A0));
          f.local_get(off);
          f.op(Op::kI32Add);
          // 2*p[i]
          f.i32_const(i32(P0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.f64_const(2.0);
          f.op(Op::kF64Mul);
          // - p[i-1]
          f.i32_const(i32(P0 - 8));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Sub);
          // - p[i+1]
          f.i32_const(i32(P0 + 8));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Sub);
          f.mem_op(Op::kF64Store);
        });
      }
      // alpha = rr / allreduce(dot(p, Ap))
      f.local_get(rr);
      f.i32_const(i32(P0));
      f.i32_const(i32(A0));
      f.call(dot.index());
      f.call(ar.index());
      f.op(Op::kF64Div);
      f.local_set(alpha);
      // x += alpha p ; r -= alpha Ap
      if (simd) {
        f.local_get(alpha);
        f.op(Op::kF64x2Splat);
        f.local_set(va);
        f.for_loop_i32(off, 8, lim, 16, [&] {
          f.i32_const(i32(X0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.i32_const(i32(X0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.local_get(va);
          f.i32_const(i32(P0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.op(Op::kF64x2Mul);
          f.op(Op::kF64x2Add);
          f.mem_op(Op::kV128Store);
          f.i32_const(i32(R0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.i32_const(i32(R0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.local_get(va);
          f.i32_const(i32(A0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.op(Op::kF64x2Mul);
          f.op(Op::kF64x2Sub);
          f.mem_op(Op::kV128Store);
        });
      } else {
        f.for_loop_i32(off, 8, lim, 8, [&] {
          f.i32_const(i32(X0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.i32_const(i32(X0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.local_get(alpha);
          f.i32_const(i32(P0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Add);
          f.mem_op(Op::kF64Store);
          f.i32_const(i32(R0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.i32_const(i32(R0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.local_get(alpha);
          f.i32_const(i32(A0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Sub);
          f.mem_op(Op::kF64Store);
        });
      }
      // rr_new = allreduce(dot(r, r)); beta = rr_new / rr; rr = rr_new
      f.i32_const(i32(R0));
      f.i32_const(i32(R0));
      f.call(dot.index());
      f.call(ar.index());
      f.local_set(rr_new);
      f.local_get(rr_new);
      f.local_get(rr);
      f.op(Op::kF64Div);
      f.local_set(beta);
      f.local_get(rr_new);
      f.local_set(rr);
      // p = r + beta p
      if (simd) {
        f.local_get(beta);
        f.op(Op::kF64x2Splat);
        f.local_set(va);
        f.for_loop_i32(off, 8, lim, 16, [&] {
          f.i32_const(i32(P0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.i32_const(i32(R0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.local_get(va);
          f.i32_const(i32(P0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kV128Load);
          f.op(Op::kF64x2Mul);
          f.op(Op::kF64x2Add);
          f.mem_op(Op::kV128Store);
        });
      } else {
        f.for_loop_i32(off, 8, lim, 8, [&] {
          f.i32_const(i32(P0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.i32_const(i32(R0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.local_get(beta);
          f.i32_const(i32(P0));
          f.local_get(off);
          f.op(Op::kI32Add);
          f.mem_op(Op::kF64Load);
          f.op(Op::kF64Mul);
          f.op(Op::kF64Add);
          f.mem_op(Op::kF64Store);
        });
      }
    });

    f.call(mpi.wtime);
    f.local_set(t1);

    // FLOP model: matvec 4n, dots 2*2n each (incl. the final one), axpy
    // pair 4n, p-update 2n => ~14n flops per iteration per rank.
    const f64 flops_per_rank = f64(p.iterations) * 14.0 * f64(n);
    const f64 bytes_per_rank = f64(p.iterations) * 144.0 * f64(n);
    f.global_get(g_rank);
    f.op(Op::kI32Eqz);
    f.if_();
    {
      f.i32_const(p.report_id);
      // gflops = flops_per_rank * size / elapsed / 1e9
      f.f64_const(flops_per_rank / 1e9);
      f.global_get(g_size);
      f.op(Op::kF64ConvertI32S);
      f.op(Op::kF64Mul);
      f.local_get(t1);
      f.local_get(t0);
      f.op(Op::kF64Sub);
      f.op(Op::kF64Div);
      // gbps
      f.f64_const(bytes_per_rank / 1e9);
      f.global_get(g_size);
      f.op(Op::kF64ConvertI32S);
      f.op(Op::kF64Mul);
      f.local_get(t1);
      f.local_get(t0);
      f.op(Op::kF64Sub);
      f.op(Op::kF64Div);
      // residual (for correctness cross-checks vs native twin)
      f.local_get(rr);
      f.call(report);
    }
    f.end();

    f.call(mpi.finalize);
    f.op(Op::kDrop);
    f.end();
  }

  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  MW_CHECK(decoded.ok(), "hpcg module failed to decode: " + decoded.error);
  auto vr = wasm::validate_module(*decoded.module);
  MW_CHECK(vr.ok, "hpcg module failed to validate: " + vr.error);
  return bytes;
}

}  // namespace mpiwasm::toolchain
