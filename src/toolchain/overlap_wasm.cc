// Compute/communication overlap kernel in Wasm (bench_icoll): 1-D Jacobi
// heat diffusion with neighbour halo exchange and a per-iteration global
// residual reduction. Built in two variants from one emitter: the blocking
// baseline calls MPI_Allreduce before the stencil sweep; the overlap
// variant initiates MPI_Iallreduce, sweeps, then calls MPI_Wait — the
// guest-visible version of the fold-compute-into-the-wait-window pattern
// the nonblocking-collective subsystem exists for. Kept structurally 1:1
// with native_overlap_run so residuals agree bit-for-bit.
#include "toolchain/kernels.h"

#include "embedder/abi.h"
#include "toolchain/mpi_imports.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::toolchain {

using wasm::FuncType;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;
namespace abi = embed::abi;

namespace {
constexpr u32 kRankPtr = 1024;
constexpr u32 kSizePtr = 1032;
constexpr u32 kResL = 1040;   // f64 residual, local (reduction input)
constexpr u32 kResG = 1048;   // f64 residual, global (reduction output)
constexpr u32 kReqPtr = 1056; // request handle
constexpr u32 kArrayBase = 1 << 16;
}  // namespace

std::vector<u8> build_overlap_module(const OverlapParams& p) {
  const u32 n = p.n_per_rank;
  const u64 stride = u64(n + 2) * 8;  // ghost cells at [0] and [n+1]
  const u32 U0 = kArrayBase;
  const u32 V0 = u32(U0 + stride);
  const u32 heap = u32(V0 + stride + 4096);

  ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;  // Barrier + the blocking Allreduce baseline
  set.sendrecv = true;
  set.icoll = true;        // Iallreduce + Wait
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 report = declare_report_import(b);
  b.add_memory((heap >> 16) + 2);
  b.export_memory();
  add_bump_allocator(b, heap);

  u32 g_rank = b.add_global(ValType::kI32, true, 0);
  u32 g_size = b.add_global(ValType::kI32, true, 1);

  // --- halo(base): exchange ghost cells with both neighbours --------------
  auto& halo = b.begin_func({{ValType::kI32}, {}});
  {
    halo.global_get(g_rank);
    halo.i32_const(0);
    halo.op(Op::kI32GtS);
    halo.if_();
    {
      halo.local_get(0);
      halo.i32_const(8);
      halo.op(Op::kI32Add);  // sendbuf = &u[1]
      halo.i32_const(1);
      halo.i32_const(abi::MPI_DOUBLE);
      halo.global_get(g_rank);
      halo.i32_const(1);
      halo.op(Op::kI32Sub);
      halo.i32_const(2);
      halo.local_get(0);     // recvbuf = &u[0]
      halo.i32_const(1);
      halo.i32_const(abi::MPI_DOUBLE);
      halo.global_get(g_rank);
      halo.i32_const(1);
      halo.op(Op::kI32Sub);
      halo.i32_const(1);
      halo.i32_const(abi::MPI_COMM_WORLD);
      halo.i32_const(abi::MPI_STATUS_IGNORE);
      halo.call(mpi.sendrecv);
      halo.op(Op::kDrop);
    }
    halo.end();
    halo.global_get(g_rank);
    halo.global_get(g_size);
    halo.i32_const(1);
    halo.op(Op::kI32Sub);
    halo.op(Op::kI32LtS);
    halo.if_();
    {
      halo.local_get(0);
      halo.i32_const(i32(8 * n));
      halo.op(Op::kI32Add);  // sendbuf = &u[n]
      halo.i32_const(1);
      halo.i32_const(abi::MPI_DOUBLE);
      halo.global_get(g_rank);
      halo.i32_const(1);
      halo.op(Op::kI32Add);
      halo.i32_const(1);
      halo.local_get(0);
      halo.i32_const(i32(8 * (n + 1)));
      halo.op(Op::kI32Add);  // recvbuf = &u[n+1]
      halo.i32_const(1);
      halo.i32_const(abi::MPI_DOUBLE);
      halo.global_get(g_rank);
      halo.i32_const(1);
      halo.op(Op::kI32Add);
      halo.i32_const(2);
      halo.i32_const(abi::MPI_COMM_WORLD);
      halo.i32_const(abi::MPI_STATUS_IGNORE);
      halo.call(mpi.sendrecv);
      halo.op(Op::kDrop);
    }
    halo.end();
    halo.end();
  }
  const u32 halo_fn = halo.index();

  // --- sweep(ubase, vbase) -> f64: v[i] = (u[i-1]+u[i+1])/2, returns the
  //     accumulated squared update over [1, n] ------------------------------
  auto& sweep = b.begin_func({{ValType::kI32, ValType::kI32}, {ValType::kF64}});
  {
    u32 off = sweep.add_local(ValType::kI32);  // 8 * (i - 1)
    u32 lim = sweep.add_local(ValType::kI32);
    u32 acc = sweep.add_local(ValType::kF64);
    u32 nu = sweep.add_local(ValType::kF64);
    u32 d = sweep.add_local(ValType::kF64);
    sweep.i32_const(i32(8 * n));
    sweep.local_set(lim);
    sweep.for_loop_i32(off, 0, lim, 8, [&] {
      // nu = 0.5 * (u[i-1] + u[i+1]) — memarg offsets 0 and 16 off the
      // base address of u[i-1].
      sweep.local_get(0);
      sweep.local_get(off);
      sweep.op(Op::kI32Add);
      sweep.mem_op(Op::kF64Load);
      sweep.local_get(0);
      sweep.local_get(off);
      sweep.op(Op::kI32Add);
      sweep.mem_op(Op::kF64Load, 16);
      sweep.op(Op::kF64Add);
      sweep.f64_const(0.5);
      sweep.op(Op::kF64Mul);
      sweep.local_set(nu);
      // v[i] = nu
      sweep.local_get(1);
      sweep.local_get(off);
      sweep.op(Op::kI32Add);
      sweep.local_get(nu);
      sweep.mem_op(Op::kF64Store, 8);
      // d = nu - u[i]; acc += d * d
      sweep.local_get(nu);
      sweep.local_get(0);
      sweep.local_get(off);
      sweep.op(Op::kI32Add);
      sweep.mem_op(Op::kF64Load, 8);
      sweep.op(Op::kF64Sub);
      sweep.local_set(d);
      sweep.local_get(acc);
      sweep.local_get(d);
      sweep.local_get(d);
      sweep.op(Op::kF64Mul);
      sweep.op(Op::kF64Add);
      sweep.local_set(acc);
    });
    sweep.local_get(acc);
    sweep.end();
  }
  const u32 sweep_fn = sweep.index();

  // --- _start --------------------------------------------------------------
  auto& f = b.begin_func({{}, {}}, "_start");
  u32 it = f.add_local(ValType::kI32);
  u32 iters = f.add_local(ValType::kI32);
  u32 ubase = f.add_local(ValType::kI32);
  u32 vbase = f.add_local(ValType::kI32);
  u32 tbase = f.add_local(ValType::kI32);
  u32 off = f.add_local(ValType::kI32);
  u32 lim = f.add_local(ValType::kI32);
  u32 t0 = f.add_local(ValType::kF64);
  u32 t1 = f.add_local(ValType::kF64);
  u32 res = f.add_local(ValType::kF64);

  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kRankPtr));
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(i32(kRankPtr));
  f.mem_op(Op::kI32Load);
  f.global_set(g_rank);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kSizePtr));
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(i32(kSizePtr));
  f.mem_op(Op::kI32Load);
  f.global_set(g_size);

  // u[i] = (rank * 31 + i) % 7 over [1, n] (exact in f64).
  f.i32_const(i32(8 * (n + 1)));
  f.local_set(lim);
  f.for_loop_i32(off, 8, lim, 8, [&] {
    f.i32_const(i32(U0));
    f.local_get(off);
    f.op(Op::kI32Add);
    f.global_get(g_rank);
    f.i32_const(31);
    f.op(Op::kI32Mul);
    f.local_get(off);
    f.i32_const(3);
    f.op(Op::kI32ShrU);  // element index i = off / 8
    f.op(Op::kI32Add);
    f.i32_const(7);
    f.op(Op::kI32RemU);
    f.op(Op::kF64ConvertI32U);
    f.mem_op(Op::kF64Store);
  });

  f.i32_const(i32(U0));
  f.local_set(ubase);
  f.i32_const(i32(V0));
  f.local_set(vbase);
  f.i32_const(i32(p.iterations));
  f.local_set(iters);

  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.barrier);
  f.op(Op::kDrop);
  f.call(mpi.wtime);
  f.local_set(t0);

  f.for_loop_i32(it, 0, iters, 1, [&] {
    f.local_get(ubase);
    f.call(halo_fn);
    if (p.nonblocking) {
      f.i32_const(i32(kResL));
      f.i32_const(i32(kResG));
      f.i32_const(1);
      f.i32_const(abi::MPI_DOUBLE);
      f.i32_const(abi::MPI_SUM);
      f.i32_const(abi::MPI_COMM_WORLD);
      f.i32_const(i32(kReqPtr));
      f.call(mpi.iallreduce);
      f.op(Op::kDrop);
    } else {
      f.i32_const(i32(kResL));
      f.i32_const(i32(kResG));
      f.i32_const(1);
      f.i32_const(abi::MPI_DOUBLE);
      f.i32_const(abi::MPI_SUM);
      f.i32_const(abi::MPI_COMM_WORLD);
      f.call(mpi.allreduce);
      f.op(Op::kDrop);
    }
    // The stencil sweep — in the nonblocking build it runs inside the
    // collective's initiation-to-wait window. The result stays in a local
    // until after MPI_Wait: kResL is the live Iallreduce send buffer, and
    // the native twin likewise assigns res_local only after its wait.
    f.local_get(ubase);
    f.local_get(vbase);
    f.call(sweep_fn);
    f.local_set(res);
    if (p.nonblocking) {
      f.i32_const(i32(kReqPtr));
      f.i32_const(abi::MPI_STATUS_IGNORE);
      f.call(mpi.wait);
      f.op(Op::kDrop);
    }
    f.i32_const(i32(kResL));
    f.local_get(res);
    f.mem_op(Op::kF64Store);
    // swap(u, v)
    f.local_get(ubase);
    f.local_set(tbase);
    f.local_get(vbase);
    f.local_set(ubase);
    f.local_get(tbase);
    f.local_set(vbase);
  });

  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.barrier);
  f.op(Op::kDrop);
  f.call(mpi.wtime);
  f.local_set(t1);

  // rank 0 reports (seconds, residual, iterations).
  f.global_get(g_rank);
  f.op(Op::kI32Eqz);
  f.if_();
  {
    f.i32_const(p.report_id);
    f.local_get(t1);
    f.local_get(t0);
    f.op(Op::kF64Sub);
    f.i32_const(i32(kResG));
    f.mem_op(Op::kF64Load);
    f.f64_const(f64(p.iterations));
    f.call(report);
  }
  f.end();

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();

  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  MW_CHECK(decoded.ok(), "overlap module failed to decode: " + decoded.error);
  auto vr = wasm::validate_module(*decoded.module);
  MW_CHECK(vr.ok, "overlap module failed to validate: " + vr.error);
  return bytes;
}

}  // namespace mpiwasm::toolchain
