// NPB IS (integer sort) equivalent in Wasm: bucketed parallel sort with
// Alltoall/Alltoallv key exchange and distributed verification (§4.2).
#include "toolchain/kernels.h"

#include "embedder/abi.h"
#include "toolchain/mpi_imports.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::toolchain {

using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;
namespace abi = embed::abi;

namespace {
constexpr u32 kRankPtr = 1024;
constexpr u32 kSizePtr = 1032;
constexpr u32 kMaxRanks = 64;
// Count/displacement arrays (kMaxRanks i32 each).
constexpr u32 kSCnt = 2048;
constexpr u32 kSDis = kSCnt + 4 * kMaxRanks;
constexpr u32 kRCnt = kSDis + 4 * kMaxRanks;
constexpr u32 kRDis = kRCnt + 4 * kMaxRanks;
constexpr u32 kPos = kRDis + 4 * kMaxRanks;  // scratch offsets for scatter
constexpr u32 kA2AIn = kPos + 4 * kMaxRanks;   // i32 allreduce scratch
constexpr u32 kA2AOut = kA2AIn + 16;
}  // namespace

std::vector<u8> build_is_module(const IsParams& p) {
  const u32 K = p.keys_per_rank;
  const u32 range = 1u << p.key_log2_max;

  // Layout: keys | sendbuf | recvbuf | histogram
  const u32 KEYS = 1 << 16;
  const u32 SB = KEYS + K * 4;
  const u32 RECV = SB + K * 4;
  const u32 recv_cap = K * kMaxRanks * 4;  // worst case: everything lands here
  const u32 HIST = RECV + recv_cap;
  const u32 hist_cap = range * 4;  // local bucket width <= range
  const u32 heap = HIST + hist_cap + 4096;

  ModuleBuilder b;
  MpiImportSet set;
  set.collectives = true;
  set.alltoall = true;
  MpiImports mpi = declare_mpi_imports(b, set);
  u32 report = declare_report_import(b);
  b.add_memory((heap >> 16) + 2);
  b.export_memory();
  add_bump_allocator(b, heap);

  auto& f = b.begin_func({{}, {}}, "_start");
  const u32 rank = f.add_local(ValType::kI32);
  const u32 size = f.add_local(ValType::kI32);
  const u32 width = f.add_local(ValType::kI32);   // bucket width
  const u32 i = f.add_local(ValType::kI32);
  const u32 lim = f.add_local(ValType::kI32);
  const u32 x = f.add_local(ValType::kI32);       // LCG state
  const u32 key = f.add_local(ValType::kI32);
  const u32 bucket = f.add_local(ValType::kI32);
  const u32 total_recv = f.add_local(ValType::kI32);
  const u32 sum_local = f.add_local(ValType::kI32);
  const u32 ok = f.add_local(ValType::kI32);
  const u32 rep = f.add_local(ValType::kI32);
  const u32 rep_lim = f.add_local(ValType::kI32);
  const u32 t0 = f.add_local(ValType::kF64);
  const u32 t1 = f.add_local(ValType::kF64);
  const u32 prev = f.add_local(ValType::kI32);
  const u32 acc = f.add_local(ValType::kI32);

  f.i32_const(0);
  f.i32_const(0);
  f.call(mpi.init);
  f.op(Op::kDrop);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kRankPtr));
  f.call(mpi.comm_rank);
  f.op(Op::kDrop);
  f.i32_const(i32(kRankPtr));
  f.mem_op(Op::kI32Load);
  f.local_set(rank);
  f.i32_const(abi::MPI_COMM_WORLD);
  f.i32_const(i32(kSizePtr));
  f.call(mpi.comm_size);
  f.op(Op::kDrop);
  f.i32_const(i32(kSizePtr));
  f.mem_op(Op::kI32Load);
  f.local_set(size);
  // width = (range + size - 1) / size
  f.i32_const(i32(range));
  f.local_get(size);
  f.op(Op::kI32Add);
  f.i32_const(1);
  f.op(Op::kI32Sub);
  f.local_get(size);
  f.op(Op::kI32DivU);
  f.local_set(width);

  f.i32_const(1);
  f.local_set(ok);

  f.i32_const(abi::MPI_COMM_WORLD);
  f.call(mpi.barrier);
  f.op(Op::kDrop);
  f.call(mpi.wtime);
  f.local_set(t0);

  f.i32_const(i32(p.repetitions));
  f.local_set(rep_lim);
  f.for_loop_i32(rep, 0, rep_lim, 1, [&] {
    // --- Key generation (LCG seeded by rank and repetition) ---------------
    f.local_get(rank);
    f.i32_const(i32(0x9E3779B1u));  // Fibonacci hashing constant
    f.op(Op::kI32Mul);
    f.local_get(rep);
    f.op(Op::kI32Add);
    f.i32_const(12345);
    f.op(Op::kI32Add);
    f.local_set(x);
    f.i32_const(0);
    f.local_set(sum_local);
    f.i32_const(i32(K * 4));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 4, [&] {
      f.local_get(x);
      f.i32_const(1664525);
      f.op(Op::kI32Mul);
      f.i32_const(1013904223);
      f.op(Op::kI32Add);
      f.local_set(x);
      f.local_get(x);
      f.i32_const(8);
      f.op(Op::kI32ShrU);
      f.i32_const(i32(range - 1));
      f.op(Op::kI32And);
      f.local_set(key);
      f.i32_const(i32(KEYS));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.local_get(key);
      f.mem_op(Op::kI32Store);
      f.local_get(sum_local);
      f.local_get(key);
      f.op(Op::kI32Add);
      f.local_set(sum_local);
    });

    // --- Histogram by destination bucket ----------------------------------
    f.i32_const(i32(kSCnt));
    f.i32_const(0);
    f.i32_const(i32(4 * kMaxRanks));
    f.op(Op::kMemoryFill);
    f.for_loop_i32(i, 0, lim, 4, [&] {
      f.i32_const(i32(KEYS));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.local_get(width);
      f.op(Op::kI32DivU);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.local_set(bucket);  // byte offset of counts[b]
      f.i32_const(i32(kSCnt));
      f.local_get(bucket);
      f.op(Op::kI32Add);
      f.i32_const(i32(kSCnt));
      f.local_get(bucket);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.i32_const(1);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Store);
    });

    // --- Send displacements (exclusive prefix sum) + scatter positions ----
    f.i32_const(0);
    f.local_set(acc);
    f.i32_const(i32(4 * kMaxRanks));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 4, [&] {
      f.i32_const(i32(kSDis));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.local_get(acc);
      f.mem_op(Op::kI32Store);
      f.i32_const(i32(kPos));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.local_get(acc);
      f.mem_op(Op::kI32Store);
      f.local_get(acc);
      f.i32_const(i32(kSCnt));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.op(Op::kI32Add);
      f.local_set(acc);
    });

    // --- Scatter keys into bucket-ordered send buffer ----------------------
    f.i32_const(i32(K * 4));
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 4, [&] {
      f.i32_const(i32(KEYS));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.local_set(key);
      f.local_get(key);
      f.local_get(width);
      f.op(Op::kI32DivU);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.local_set(bucket);
      // SB[pos[b]] = key ; pos[b]++
      f.i32_const(i32(SB));
      f.i32_const(i32(kPos));
      f.local_get(bucket);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.op(Op::kI32Add);
      f.local_get(key);
      f.mem_op(Op::kI32Store);
      f.i32_const(i32(kPos));
      f.local_get(bucket);
      f.op(Op::kI32Add);
      f.i32_const(i32(kPos));
      f.local_get(bucket);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.i32_const(1);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Store);
    });

    // --- Exchange counts, then keys ----------------------------------------
    f.i32_const(i32(kSCnt));
    f.i32_const(1);
    f.i32_const(abi::MPI_INT);
    f.i32_const(i32(kRCnt));
    f.i32_const(1);
    f.i32_const(abi::MPI_INT);
    f.i32_const(abi::MPI_COMM_WORLD);
    f.call(mpi.alltoall);
    f.op(Op::kDrop);

    // rdispls prefix sum over the actual `size` entries; total_recv.
    f.i32_const(0);
    f.local_set(acc);
    f.local_get(size);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 4, [&] {
      f.i32_const(i32(kRDis));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.local_get(acc);
      f.mem_op(Op::kI32Store);
      f.local_get(acc);
      f.i32_const(i32(kRCnt));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.op(Op::kI32Add);
      f.local_set(acc);
    });
    f.local_get(acc);
    f.local_set(total_recv);

    f.i32_const(i32(SB));
    f.i32_const(i32(kSCnt));
    f.i32_const(i32(kSDis));
    f.i32_const(abi::MPI_INT);
    f.i32_const(i32(RECV));
    f.i32_const(i32(kRCnt));
    f.i32_const(i32(kRDis));
    f.i32_const(abi::MPI_INT);
    f.i32_const(abi::MPI_COMM_WORLD);
    f.call(mpi.alltoallv);
    f.op(Op::kDrop);

    // --- Local counting sort over [rank*width, (rank+1)*width) -------------
    f.local_get(width);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.local_set(lim);
    f.i32_const(i32(HIST));
    f.i32_const(0);
    f.local_get(lim);
    f.op(Op::kMemoryFill);
    f.local_get(total_recv);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.local_set(lim);
    f.i32_const(0);
    f.local_set(sum_local);  // checksum of received keys
    f.for_loop_i32(i, 0, lim, 4, [&] {
      f.i32_const(i32(RECV));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.local_set(key);
      f.local_get(sum_local);
      f.local_get(key);
      f.op(Op::kI32Add);
      f.local_set(sum_local);
      // HIST[key - rank*width]++
      f.local_get(key);
      f.local_get(rank);
      f.local_get(width);
      f.op(Op::kI32Mul);
      f.op(Op::kI32Sub);
      f.i32_const(4);
      f.op(Op::kI32Mul);
      f.local_set(bucket);
      f.i32_const(i32(HIST));
      f.local_get(bucket);
      f.op(Op::kI32Add);
      f.i32_const(i32(HIST));
      f.local_get(bucket);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.i32_const(1);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Store);
    });
    // Emit sorted keys back into RECV (ascending scan of the histogram).
    f.i32_const(0);
    f.local_set(prev);  // write offset (bytes)
    f.local_get(width);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.local_set(lim);
    f.for_loop_i32(i, 0, lim, 4, [&] {
      // for c in 0..HIST[i]: RECV[prev++] = rank*width + i/4
      f.block();
      f.loop();
      f.i32_const(i32(HIST));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.op(Op::kI32Eqz);
      f.br_if(1);
      f.i32_const(i32(RECV));
      f.local_get(prev);
      f.op(Op::kI32Add);
      f.local_get(rank);
      f.local_get(width);
      f.op(Op::kI32Mul);
      f.local_get(i);
      f.i32_const(2);
      f.op(Op::kI32ShrU);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Store);
      f.local_get(prev);
      f.i32_const(4);
      f.op(Op::kI32Add);
      f.local_set(prev);
      f.i32_const(i32(HIST));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.i32_const(i32(HIST));
      f.local_get(i);
      f.op(Op::kI32Add);
      f.mem_op(Op::kI32Load);
      f.i32_const(1);
      f.op(Op::kI32Sub);
      f.mem_op(Op::kI32Store);
      f.br(0);
      f.end();
      f.end();
    });

    // --- Verification -------------------------------------------------------
    // (1) every rank got what was sent: allreduce(sum sent) == allreduce(sum recv)
    //     checked via a single combined allreduce of (sent - recv) deltas.
    // (2) write offset == total_recv * 4.
    f.local_get(prev);
    f.local_get(total_recv);
    f.i32_const(4);
    f.op(Op::kI32Mul);
    f.op(Op::kI32Ne);
    f.if_();
    f.i32_const(0);
    f.local_set(ok);
    f.end();
    // Keys were regenerated identically before scatter, so sum over all
    // sent keys equals sum over all received keys globally.
    f.i32_const(i32(kA2AIn));
    f.local_get(sum_local);
    f.mem_op(Op::kI32Store);
    f.i32_const(i32(kA2AIn));
    f.i32_const(i32(kA2AOut));
    f.i32_const(1);
    f.i32_const(abi::MPI_INT);
    f.i32_const(abi::MPI_SUM);
    f.i32_const(abi::MPI_COMM_WORLD);
    f.call(mpi.allreduce);
    f.op(Op::kDrop);
  });

  f.call(mpi.wtime);
  f.local_set(t1);

  // Mop/s = keys_total * reps / elapsed / 1e6, reported by rank 0.
  f.local_get(rank);
  f.op(Op::kI32Eqz);
  f.if_();
  {
    f.i32_const(p.report_id);
    f.f64_const(f64(K) * f64(p.repetitions) / 1e6);
    f.local_get(size);
    f.op(Op::kF64ConvertI32S);
    f.op(Op::kF64Mul);
    f.local_get(t1);
    f.local_get(t0);
    f.op(Op::kF64Sub);
    f.op(Op::kF64Div);
    f.local_get(ok);
    f.op(Op::kF64ConvertI32S);
    f.f64_const(f64(p.repetitions));
    f.call(report);
  }
  f.end();

  f.call(mpi.finalize);
  f.op(Op::kDrop);
  f.end();

  std::vector<u8> bytes = b.build();
  auto decoded = wasm::decode_module({bytes.data(), bytes.size()});
  MW_CHECK(decoded.ok(), "is module failed to decode: " + decoded.error);
  auto vr = wasm::validate_module(*decoded.module);
  MW_CHECK(vr.ok, "is module failed to validate: " + vr.error);
  return bytes;
}

}  // namespace mpiwasm::toolchain
