// Benchmark harness utilities: collecting bench.report rows from Wasm
// kernels, paper-style table printing, and GM slowdown reductions.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "embedder/embedder.h"
#include "support/stats.h"

namespace mpiwasm::bench {

struct ReportRow {
  i32 id = 0;
  f64 a = 0, b = 0, c = 0;
};

/// Thread-safe sink for the bench.report host import.
class ReportCollector {
 public:
  /// Hook for EmbedderConfig::extra_imports.
  std::function<void(rt::ImportTable&, int)> hook();
  std::vector<ReportRow> rows() const;
  void clear();
  /// Rows with a given id, in arrival order.
  std::vector<ReportRow> rows_with_id(i32 id) const;

 private:
  mutable std::mutex mu_;
  std::vector<ReportRow> rows_;
};

/// One (native, wasm) pair per message size.
struct ComparisonRow {
  f64 x = 0;           // message bytes (or rank count)
  f64 native = 0;      // native metric
  f64 wasm = 0;        // wasm metric
};

void print_banner(const std::string& title);
void print_subhead(const std::string& text);

/// Prints paper-Figure-3 style rows: bytes, native us, wasm us, ratio;
/// footer holds the GM slowdown per §4.5's convention.
void print_comparison_table(const std::string& metric,
                            const std::vector<ComparisonRow>& rows,
                            bool lower_is_better);

/// GM slowdown (paper convention) from time-like comparison rows.
f64 gm_slowdown(const std::vector<ComparisonRow>& rows, bool lower_is_better);

/// CSV dump next to stdout tables for plotting.
void write_csv(const std::string& path, const std::string& header,
               const std::vector<ComparisonRow>& rows);

}  // namespace mpiwasm::bench
