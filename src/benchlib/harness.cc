#include "benchlib/harness.h"

#include <cstdio>
#include <fstream>

namespace mpiwasm::bench {

std::function<void(rt::ImportTable&, int)> ReportCollector::hook() {
  return [this](rt::ImportTable& t, int rank) {
    (void)rank;
    t.add("bench", "report",
          {{wasm::ValType::kI32, wasm::ValType::kF64, wasm::ValType::kF64,
            wasm::ValType::kF64},
           {}},
          [this](rt::HostContext&, const rt::Slot* a, rt::Slot*) {
            std::lock_guard<std::mutex> lock(mu_);
            rows_.push_back({a[0].i32v, a[1].f64v, a[2].f64v, a[3].f64v});
          });
  };
}

std::vector<ReportRow> ReportCollector::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

void ReportCollector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
}

std::vector<ReportRow> ReportCollector::rows_with_id(i32 id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReportRow> out;
  for (const auto& r : rows_)
    if (r.id == id) out.push_back(r);
  return out;
}

void print_banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_subhead(const std::string& text) {
  std::printf("\n--- %s ---\n", text.c_str());
}

f64 gm_slowdown(const std::vector<ComparisonRow>& rows, bool lower_is_better) {
  std::vector<f64> ratios;
  ratios.reserve(rows.size());
  for (const auto& r : rows) {
    if (r.native <= 0 || r.wasm <= 0) continue;
    // Normalize to "native_time / wasm_time" semantics.
    ratios.push_back(lower_is_better ? r.native / r.wasm : r.wasm / r.native);
  }
  return gm_slowdown_from_time_ratios(ratios);
}

void print_comparison_table(const std::string& metric,
                            const std::vector<ComparisonRow>& rows,
                            bool lower_is_better) {
  std::printf("%12s %16s %16s %10s\n", "x", ("native " + metric).c_str(),
              ("wasm " + metric).c_str(), "ratio");
  for (const auto& r : rows) {
    f64 ratio = r.native > 0 && r.wasm > 0
                    ? (lower_is_better ? r.wasm / r.native : r.native / r.wasm)
                    : 0.0;
    std::printf("%12.0f %16.3f %16.3f %9.3fx\n", r.x, r.native, r.wasm, ratio);
  }
  f64 slowdown = gm_slowdown(rows, lower_is_better);
  if (slowdown >= 0)
    std::printf("  => GM average slowdown with MPIWasm: %.3fx\n", slowdown);
  else
    std::printf("  => GM average speedup with MPIWasm: %.3fx\n", -slowdown);
}

void write_csv(const std::string& path, const std::string& header,
               const std::vector<ComparisonRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << header << "\n";
  for (const auto& r : rows)
    out << r.x << "," << r.native << "," << r.wasm << "\n";
}

}  // namespace mpiwasm::bench
