#include "wasm/decoder.h"

#include <cstring>

namespace mpiwasm::wasm {
namespace {

ValType decode_val_type(u8 b) {
  switch (b) {
    case 0x7F: return ValType::kI32;
    case 0x7E: return ValType::kI64;
    case 0x7D: return ValType::kF32;
    case 0x7C: return ValType::kF64;
    case 0x7B: return ValType::kV128;
    case 0x70: return ValType::kFuncRef;
    default: throw DecodeError("invalid value type byte");
  }
}

Limits decode_limits(ByteReader& r) {
  Limits lim;
  u8 flags = r.read_u8();
  // Threads proposal: flag 0x03 marks a shared memory (max required);
  // 0x02 (shared without max) is invalid by construction.
  if (flags == 2) throw DecodeError("shared limits require a max");
  if (flags > 3) throw DecodeError("invalid limits flags");
  lim.shared = flags == 3;
  lim.min = r.read_leb_u32();
  if (flags == 1 || flags == 3) {
    lim.has_max = true;
    lim.max = r.read_leb_u32();
    if (lim.max < lim.min) throw DecodeError("limits max < min");
  }
  return lim;
}

ConstExpr decode_const_expr(ByteReader& r) {
  ConstExpr e;
  u8 op = r.read_u8();
  switch (op) {
    case u8(Op::kI32Const):
      e.kind = ConstExpr::Kind::kI32;
      e.i = r.read_leb_i32();
      break;
    case u8(Op::kI64Const):
      e.kind = ConstExpr::Kind::kI64;
      e.i = r.read_leb_i64();
      break;
    case u8(Op::kF32Const):
      e.kind = ConstExpr::Kind::kF32;
      e.f = r.read_f32_le();
      break;
    case u8(Op::kF64Const):
      e.kind = ConstExpr::Kind::kF64;
      e.f = r.read_f64_le();
      break;
    case u8(Op::kGlobalGet):
      e.kind = ConstExpr::Kind::kGlobalGet;
      e.global_index = r.read_leb_u32();
      break;
    default:
      throw DecodeError("unsupported const expression opcode");
  }
  if (r.read_u8() != u8(Op::kEnd)) throw DecodeError("const expr missing end");
  return e;
}

void decode_type_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  m.types.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    if (r.read_u8() != 0x60) throw DecodeError("expected func type (0x60)");
    FuncType ft;
    u32 np = r.read_leb_u32();
    for (u32 p = 0; p < np; ++p) ft.params.push_back(decode_val_type(r.read_u8()));
    u32 nr = r.read_leb_u32();
    for (u32 q = 0; q < nr; ++q) ft.results.push_back(decode_val_type(r.read_u8()));
    m.types.push_back(std::move(ft));
  }
}

void decode_import_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  for (u32 i = 0; i < count; ++i) {
    Import imp;
    imp.module = r.read_name();
    imp.name = r.read_name();
    u8 kind = r.read_u8();
    switch (kind) {
      case 0:
        imp.kind = ExternKind::kFunc;
        imp.type_index = r.read_leb_u32();
        break;
      case 1: {
        imp.kind = ExternKind::kTable;
        if (r.read_u8() != 0x70) throw DecodeError("table elem type must be funcref");
        imp.limits = decode_limits(r);
        if (imp.limits.shared) throw DecodeError("tables cannot be shared");
        break;
      }
      case 2:
        imp.kind = ExternKind::kMemory;
        imp.limits = decode_limits(r);
        break;
      case 3:
        imp.kind = ExternKind::kGlobal;
        imp.global_type = decode_val_type(r.read_u8());
        imp.global_mutable = r.read_u8() != 0;
        break;
      default:
        throw DecodeError("invalid import kind");
    }
    m.imports.push_back(std::move(imp));
  }
}

void decode_function_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  m.functions.reserve(count);
  for (u32 i = 0; i < count; ++i) m.functions.push_back(r.read_leb_u32());
}

void decode_table_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  for (u32 i = 0; i < count; ++i) {
    if (r.read_u8() != 0x70) throw DecodeError("table elem type must be funcref");
    m.tables.push_back(decode_limits(r));
    if (m.tables.back().shared) throw DecodeError("tables cannot be shared");
  }
  if (m.tables.size() > 1) throw DecodeError("at most one table supported");
}

void decode_memory_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  for (u32 i = 0; i < count; ++i) m.memories.push_back(decode_limits(r));
  if (m.memories.size() > 1) throw DecodeError("at most one memory supported");
}

void decode_global_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  for (u32 i = 0; i < count; ++i) {
    GlobalDef g;
    g.type = decode_val_type(r.read_u8());
    u8 mut = r.read_u8();
    if (mut > 1) throw DecodeError("invalid global mutability");
    g.mutable_ = mut == 1;
    g.init = decode_const_expr(r);
    m.globals.push_back(g);
  }
}

void decode_export_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  for (u32 i = 0; i < count; ++i) {
    Export e;
    e.name = r.read_name();
    u8 kind = r.read_u8();
    if (kind > 3) throw DecodeError("invalid export kind");
    e.kind = ExternKind(kind);
    e.index = r.read_leb_u32();
    m.exports.push_back(std::move(e));
  }
}

void decode_element_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  for (u32 i = 0; i < count; ++i) {
    ElemSegment seg;
    u32 flags = r.read_leb_u32();
    if (flags != 0) throw DecodeError("only active funcref element segments supported");
    seg.table_index = 0;
    seg.offset = decode_const_expr(r);
    u32 n = r.read_leb_u32();
    seg.func_indices.reserve(n);
    for (u32 j = 0; j < n; ++j) seg.func_indices.push_back(r.read_leb_u32());
    m.elems.push_back(std::move(seg));
  }
}

void decode_code_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  if (count != m.functions.size())
    throw DecodeError("code section count mismatch with function section");
  m.bodies.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    u32 body_size = r.read_leb_u32();
    size_t body_end = r.pos() + body_size;
    if (body_end > r.size()) throw DecodeError("code body exceeds section");
    FuncBody body;
    u32 local_groups = r.read_leb_u32();
    for (u32 g = 0; g < local_groups; ++g) {
      u32 n = r.read_leb_u32();
      ValType t = decode_val_type(r.read_u8());
      if (body.locals.size() + n > 50000) throw DecodeError("too many locals");
      for (u32 k = 0; k < n; ++k) body.locals.push_back(t);
    }
    if (r.pos() > body_end) throw DecodeError("locals overrun body");
    size_t code_len = body_end - r.pos();
    auto code = r.read_bytes(code_len);
    body.code.assign(code.begin(), code.end());
    if (body.code.empty() || body.code.back() != u8(Op::kEnd))
      throw DecodeError("function body must end with end opcode");
    m.bodies.push_back(std::move(body));
  }
}

void decode_data_section(ByteReader& r, Module& m) {
  u32 count = r.read_leb_u32();
  for (u32 i = 0; i < count; ++i) {
    DataSegment seg;
    u32 flags = r.read_leb_u32();
    if (flags != 0) throw DecodeError("only active data segments supported");
    seg.memory_index = 0;
    seg.offset = decode_const_expr(r);
    u32 n = r.read_leb_u32();
    auto bytes = r.read_bytes(n);
    seg.bytes.assign(bytes.begin(), bytes.end());
    m.datas.push_back(std::move(seg));
  }
}

}  // namespace

DecodeResult decode_module(std::span<const u8> bytes) {
  DecodeResult result;
  try {
    ByteReader r(bytes);
    if (r.read_u32_le() != kWasmMagic) throw DecodeError("bad magic");
    if (r.read_u32_le() != kWasmVersion) throw DecodeError("unsupported version");
    Module m;
    int last_section = -1;
    while (!r.done()) {
      u8 id = r.read_u8();
      u32 size = r.read_leb_u32();
      size_t end = r.pos() + size;
      if (end > r.size()) throw DecodeError("section exceeds module size");
      if (id != u8(SectionId::kCustom)) {
        if (int(id) <= last_section)
          throw DecodeError("sections out of order or duplicated");
        last_section = int(id);
      }
      ByteReader section(bytes.subspan(r.pos(), size));
      switch (SectionId(id)) {
        case SectionId::kCustom: break;  // names etc.: skipped
        case SectionId::kType: decode_type_section(section, m); break;
        case SectionId::kImport: decode_import_section(section, m); break;
        case SectionId::kFunction: decode_function_section(section, m); break;
        case SectionId::kTable: decode_table_section(section, m); break;
        case SectionId::kMemory: decode_memory_section(section, m); break;
        case SectionId::kGlobal: decode_global_section(section, m); break;
        case SectionId::kExport: decode_export_section(section, m); break;
        case SectionId::kStart: m.start = section.read_leb_u32(); break;
        case SectionId::kElement: decode_element_section(section, m); break;
        case SectionId::kCode: decode_code_section(section, m); break;
        case SectionId::kData: decode_data_section(section, m); break;
        default: throw DecodeError("unknown section id");
      }
      if (id != u8(SectionId::kCustom) && !section.done())
        throw DecodeError("trailing bytes in section");
      r.seek(end);
    }
    if (m.bodies.size() != m.functions.size())
      throw DecodeError("function/code section mismatch");
    result.module = std::move(m);
  } catch (const DecodeError& e) {
    result.error = e.what();
  }
  return result;
}

InstrView InstrReader::next() {
  InstrView v;
  v.pc = r_.pos();
  u8 first = r_.read_u8();
  u16 code = first;
  if (first == 0xFC || first == 0xFD || first == 0xFE) {
    u32 sub = r_.read_leb_u32();
    if (sub > 0xFF) throw DecodeError("prefixed opcode out of range");
    code = u16((first << 8) | sub);
  }
  if (!op_is_known(code)) throw DecodeError("unknown opcode");
  v.op = Op(code);

  switch (op_imm_kind(v.op)) {
    case ImmKind::kNone:
      break;
    case ImmKind::kBlockType: {
      u8 bt = r_.peek_u8();
      if (bt == kBlockTypeEmpty || bt == 0x7F || bt == 0x7E || bt == 0x7D ||
          bt == 0x7C || bt == 0x7B) {
        v.block_type = r_.read_u8();
      } else {
        throw DecodeError("type-indexed block types not supported");
      }
      break;
    }
    case ImmKind::kLabel:
    case ImmKind::kFuncIdx:
    case ImmKind::kLocalIdx:
    case ImmKind::kGlobalIdx:
      v.imm_i = r_.read_leb_u32();
      break;
    case ImmKind::kBrTable: {
      u32 n = r_.read_leb_u32();
      if (n > 1u << 20) throw DecodeError("br_table too large");
      v.br_targets.reserve(n);
      for (u32 i = 0; i < n; ++i) v.br_targets.push_back(r_.read_leb_u32());
      v.br_default = r_.read_leb_u32();
      break;
    }
    case ImmKind::kCallIndirect:
      v.indirect_type_index = r_.read_leb_u32();
      if (r_.read_u8() != 0) throw DecodeError("call_indirect table index must be 0");
      break;
    case ImmKind::kMemArg:
      v.mem_align = r_.read_leb_u32();
      v.mem_offset = r_.read_leb_u32();
      break;
    case ImmKind::kMemArgLane:
      throw DecodeError("SIMD load/store lane not supported");
    case ImmKind::kMemIdx:
      if (r_.read_u8() != 0) throw DecodeError("memory index must be 0");
      break;
    case ImmKind::kMemCopy:
      if (r_.read_u8() != 0 || r_.read_u8() != 0)
        throw DecodeError("memory.copy indices must be 0");
      break;
    case ImmKind::kI32Const:
      v.imm_i = r_.read_leb_i32();
      break;
    case ImmKind::kI64Const:
      v.imm_i = r_.read_leb_i64();
      break;
    case ImmKind::kF32Const:
      v.imm_f32 = r_.read_f32_le();
      break;
    case ImmKind::kF64Const:
      v.imm_f64 = r_.read_f64_le();
      break;
    case ImmKind::kV128Const:
    case ImmKind::kShuffle16: {
      // 16 literal bytes: a v128 constant or a shuffle's lane selectors
      // (the validator range-checks the selectors).
      auto b = r_.read_bytes(16);
      std::memcpy(v.imm_v128.bytes, b.data(), 16);
      break;
    }
    case ImmKind::kLaneIdx:
      v.imm_i = r_.read_u8();
      break;
    case ImmKind::kAtomicFence:
      if (r_.read_u8() != 0)
        throw DecodeError("atomic.fence ordering byte must be 0");
      break;
  }
  v.next_pc = r_.pos();
  return v;
}

}  // namespace mpiwasm::wasm
