#include "wasm/validator.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

#include "wasm/decoder.h"

namespace mpiwasm::wasm {
namespace {

class ValidationError : public std::runtime_error {
 public:
  explicit ValidationError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void verr(const std::string& msg) { throw ValidationError(msg); }

// nullopt = "Unknown" type from unreachable polymorphism.
using StackType = std::optional<ValType>;

struct ControlFrame {
  Op opcode = Op::kBlock;
  std::optional<ValType> result;  // at most one result per block
  size_t height = 0;
  bool unreachable = false;
};

/// Function-body validator implementing the spec algorithm.
class FuncValidator {
 public:
  FuncValidator(const Module& m, u32 func_index)
      : m_(m),
        type_(m.func_type(m.num_imported_funcs() + func_index)),
        body_(m.bodies.at(func_index)) {
    locals_ = type_.params;
    locals_.insert(locals_.end(), body_.locals.begin(), body_.locals.end());
    num_globals_ = m.num_imported_globals() + u32(m.globals.size());
    has_memory_ = !m.memories.empty() ||
                  std::any_of(m.imports.begin(), m.imports.end(), [](const Import& i) {
                    return i.kind == ExternKind::kMemory;
                  });
    has_table_ = !m.tables.empty() ||
                 std::any_of(m.imports.begin(), m.imports.end(), [](const Import& i) {
                   return i.kind == ExternKind::kTable;
                 });
    has_shared_memory_ =
        (!m.memories.empty() && m.memories[0].shared) ||
        std::any_of(m.imports.begin(), m.imports.end(), [](const Import& i) {
          return i.kind == ExternKind::kMemory && i.limits.shared;
        });
  }

  void run() {
    if (type_.results.size() > 1) verr("multi-value function results unsupported");
    push_frame(Op::kBlock, result_type());
    InstrReader reader({body_.code.data(), body_.code.size()});
    while (!reader.done()) {
      InstrView in = reader.next();
      if (ctrl_.empty()) verr("instructions after function end");
      step(in);
    }
    if (!ctrl_.empty()) verr("function body missing end");
    if (result_type().has_value()) {
      if (stack_.size() != 1) verr("function must leave exactly its result on the stack");
    } else if (!stack_.empty()) {
      verr("function with no result must leave empty stack");
    }
  }

 private:
  std::optional<ValType> result_type() const {
    return type_.results.empty() ? std::nullopt
                                 : std::make_optional(type_.results[0]);
  }

  void push_val(StackType t) { stack_.push_back(t); }
  void push_val(ValType t) { stack_.push_back(t); }

  StackType pop_val() {
    ControlFrame& f = ctrl_.back();
    if (stack_.size() == f.height) {
      if (f.unreachable) return std::nullopt;
      verr("value stack underflow");
    }
    StackType t = stack_.back();
    stack_.pop_back();
    return t;
  }

  StackType pop_val(ValType expect) {
    StackType t = pop_val();
    if (t.has_value() && *t != expect) {
      std::ostringstream os;
      os << "type mismatch: expected " << val_type_name(expect) << ", got "
         << val_type_name(*t);
      verr(os.str());
    }
    return t.has_value() ? t : StackType(expect);
  }

  void push_frame(Op opcode, std::optional<ValType> result) {
    ctrl_.push_back({opcode, result, stack_.size(), false});
  }

  ControlFrame pop_frame() {
    if (ctrl_.empty()) verr("control stack underflow");
    ControlFrame f = ctrl_.back();
    if (f.result.has_value()) pop_val(*f.result);
    if (stack_.size() != f.height) verr("block left extra values on the stack");
    ctrl_.pop_back();
    return f;
  }

  void set_unreachable() {
    ControlFrame& f = ctrl_.back();
    stack_.resize(f.height);
    f.unreachable = true;
  }

  /// Types a branch to relative label `depth` must provide.
  std::optional<ValType> label_result(u32 depth) {
    if (depth >= ctrl_.size()) verr("branch label out of range");
    const ControlFrame& f = ctrl_[ctrl_.size() - 1 - depth];
    // Branching to a loop re-enters its beginning: no values expected.
    if (f.opcode == Op::kLoop) return std::nullopt;
    return f.result;
  }

  std::optional<ValType> block_result(u8 block_type) {
    if (block_type == kBlockTypeEmpty) return std::nullopt;
    return ValType(block_type);
  }

  void require_memory() {
    if (!has_memory_) verr("instruction requires a memory");
  }

  void check_align(u32 align, u32 natural_bytes) {
    u32 natural_log2 = 0;
    while ((1u << natural_log2) < natural_bytes) ++natural_log2;
    if (align > natural_log2) verr("alignment exceeds natural alignment");
  }

  void load(ValType result, u32 bytes, const InstrView& in) {
    require_memory();
    check_align(in.mem_align, bytes);
    pop_val(ValType::kI32);
    push_val(result);
  }

  void store(ValType operand, u32 bytes, const InstrView& in) {
    require_memory();
    check_align(in.mem_align, bytes);
    pop_val(operand);
    pop_val(ValType::kI32);
  }

  /// Atomic accesses need a *shared* memory and exactly natural alignment
  /// (the threads proposal forbids under-aligned hints on atomics).
  void check_atomic(u32 align, u32 bytes) {
    if (!has_shared_memory_) verr("atomic operation requires a shared memory");
    u32 natural_log2 = 0;
    while ((1u << natural_log2) < bytes) ++natural_log2;
    if (align != natural_log2)
      verr("atomic alignment must equal natural alignment");
  }

  void atomic_load(ValType result, u32 bytes, const InstrView& in) {
    check_atomic(in.mem_align, bytes);
    pop_val(ValType::kI32);
    push_val(result);
  }

  void atomic_store(ValType operand, u32 bytes, const InstrView& in) {
    check_atomic(in.mem_align, bytes);
    pop_val(operand);
    pop_val(ValType::kI32);
  }

  void atomic_rmw(ValType t, u32 bytes, const InstrView& in) {
    check_atomic(in.mem_align, bytes);
    pop_val(t);
    pop_val(ValType::kI32);
    push_val(t);
  }

  void atomic_cmpxchg(ValType t, u32 bytes, const InstrView& in) {
    check_atomic(in.mem_align, bytes);
    pop_val(t);  // replacement
    pop_val(t);  // expected
    pop_val(ValType::kI32);
    push_val(t);
  }

  void binop(ValType t) {
    pop_val(t);
    pop_val(t);
    push_val(t);
  }

  void unop(ValType t) {
    pop_val(t);
    push_val(t);
  }

  void cmp(ValType t) {
    pop_val(t);
    pop_val(t);
    push_val(ValType::kI32);
  }

  void convert(ValType from, ValType to) {
    pop_val(from);
    push_val(to);
  }

  void step(const InstrView& in);

  const Module& m_;
  const FuncType& type_;
  const FuncBody& body_;
  std::vector<ValType> locals_;
  u32 num_globals_ = 0;
  bool has_memory_ = false;
  bool has_table_ = false;
  bool has_shared_memory_ = false;
  std::vector<StackType> stack_;
  std::vector<ControlFrame> ctrl_;
};

void FuncValidator::step(const InstrView& in) {
  switch (in.op) {
    case Op::kUnreachable:
      set_unreachable();
      break;
    case Op::kNop:
      break;
    case Op::kBlock:
    case Op::kLoop:
      push_frame(in.op, block_result(in.block_type));
      break;
    case Op::kIf:
      pop_val(ValType::kI32);
      push_frame(Op::kIf, block_result(in.block_type));
      break;
    case Op::kElse: {
      if (ctrl_.empty() || ctrl_.back().opcode != Op::kIf)
        verr("else without matching if");
      ControlFrame f = pop_frame();
      push_frame(Op::kElse, f.result);
      break;
    }
    case Op::kEnd: {
      ControlFrame f = pop_frame();
      if (f.opcode == Op::kIf && f.result.has_value())
        verr("if with result requires an else branch");
      if (f.result.has_value()) push_val(*f.result);
      break;
    }
    case Op::kBr: {
      auto r = label_result(in.idx());
      if (r.has_value()) pop_val(*r);
      set_unreachable();
      break;
    }
    case Op::kBrIf: {
      pop_val(ValType::kI32);
      auto r = label_result(in.idx());
      if (r.has_value()) {
        pop_val(*r);
        push_val(*r);
      }
      break;
    }
    case Op::kBrTable: {
      pop_val(ValType::kI32);
      auto expect = label_result(in.br_default);
      for (u32 t : in.br_targets) {
        auto r = label_result(t);
        if (r != expect) verr("br_table targets have mismatched result types");
      }
      if (expect.has_value()) pop_val(*expect);
      set_unreachable();
      break;
    }
    case Op::kReturn: {
      if (result_type().has_value()) pop_val(*result_type());
      set_unreachable();
      break;
    }
    case Op::kCall: {
      u32 fi = in.idx();
      if (fi >= m_.total_funcs()) verr("call to out-of-range function index");
      const FuncType& ft = m_.func_type(fi);
      for (auto it = ft.params.rbegin(); it != ft.params.rend(); ++it) pop_val(*it);
      for (ValType r : ft.results) push_val(r);
      break;
    }
    case Op::kCallIndirect: {
      if (!has_table_) verr("call_indirect requires a table");
      if (in.indirect_type_index >= m_.types.size())
        verr("call_indirect type index out of range");
      pop_val(ValType::kI32);
      const FuncType& ft = m_.types[in.indirect_type_index];
      if (ft.results.size() > 1) verr("multi-value results unsupported");
      for (auto it = ft.params.rbegin(); it != ft.params.rend(); ++it) pop_val(*it);
      for (ValType r : ft.results) push_val(r);
      break;
    }
    case Op::kDrop:
      pop_val();
      break;
    case Op::kSelect: {
      pop_val(ValType::kI32);
      StackType a = pop_val();
      StackType b = pop_val();
      if (a.has_value() && b.has_value() && *a != *b)
        verr("select operands must have the same type");
      StackType out = a.has_value() ? a : b;
      if (out.has_value() && !is_num_type(*out)) verr("select requires numeric types");
      push_val(out);
      break;
    }
    case Op::kLocalGet:
      if (in.idx() >= locals_.size()) verr("local.get index out of range");
      push_val(locals_[in.idx()]);
      break;
    case Op::kLocalSet:
      if (in.idx() >= locals_.size()) verr("local.set index out of range");
      pop_val(locals_[in.idx()]);
      break;
    case Op::kLocalTee:
      if (in.idx() >= locals_.size()) verr("local.tee index out of range");
      pop_val(locals_[in.idx()]);
      push_val(locals_[in.idx()]);
      break;
    case Op::kGlobalGet: {
      u32 gi = in.idx();
      if (gi >= num_globals_) verr("global.get index out of range");
      u32 imported = m_.num_imported_globals();
      ValType t;
      if (gi < imported) {
        u32 seen = 0;
        t = ValType::kI32;
        for (const auto& imp : m_.imports) {
          if (imp.kind != ExternKind::kGlobal) continue;
          if (seen == gi) { t = imp.global_type; break; }
          ++seen;
        }
      } else {
        t = m_.globals[gi - imported].type;
      }
      push_val(t);
      break;
    }
    case Op::kGlobalSet: {
      u32 gi = in.idx();
      if (gi >= num_globals_) verr("global.set index out of range");
      u32 imported = m_.num_imported_globals();
      if (gi < imported) verr("global.set on imported global unsupported");
      const GlobalDef& g = m_.globals[gi - imported];
      if (!g.mutable_) verr("global.set on immutable global");
      pop_val(g.type);
      break;
    }
    case Op::kI32Load: load(ValType::kI32, 4, in); break;
    case Op::kI64Load: load(ValType::kI64, 8, in); break;
    case Op::kF32Load: load(ValType::kF32, 4, in); break;
    case Op::kF64Load: load(ValType::kF64, 8, in); break;
    case Op::kI32Load8S: case Op::kI32Load8U: load(ValType::kI32, 1, in); break;
    case Op::kI32Load16S: case Op::kI32Load16U: load(ValType::kI32, 2, in); break;
    case Op::kI64Load8S: case Op::kI64Load8U: load(ValType::kI64, 1, in); break;
    case Op::kI64Load16S: case Op::kI64Load16U: load(ValType::kI64, 2, in); break;
    case Op::kI64Load32S: case Op::kI64Load32U: load(ValType::kI64, 4, in); break;
    case Op::kI32Store: store(ValType::kI32, 4, in); break;
    case Op::kI64Store: store(ValType::kI64, 8, in); break;
    case Op::kF32Store: store(ValType::kF32, 4, in); break;
    case Op::kF64Store: store(ValType::kF64, 8, in); break;
    case Op::kI32Store8: store(ValType::kI32, 1, in); break;
    case Op::kI32Store16: store(ValType::kI32, 2, in); break;
    case Op::kI64Store8: store(ValType::kI64, 1, in); break;
    case Op::kI64Store16: store(ValType::kI64, 2, in); break;
    case Op::kI64Store32: store(ValType::kI64, 4, in); break;
    case Op::kMemorySize:
      require_memory();
      push_val(ValType::kI32);
      break;
    case Op::kMemoryGrow:
      require_memory();
      pop_val(ValType::kI32);
      push_val(ValType::kI32);
      break;
    case Op::kMemoryCopy:
    case Op::kMemoryFill:
      require_memory();
      pop_val(ValType::kI32);
      pop_val(ValType::kI32);
      pop_val(ValType::kI32);
      break;
    case Op::kI32Const: push_val(ValType::kI32); break;
    case Op::kI64Const: push_val(ValType::kI64); break;
    case Op::kF32Const: push_val(ValType::kF32); break;
    case Op::kF64Const: push_val(ValType::kF64); break;
    case Op::kI32Eqz: convert(ValType::kI32, ValType::kI32); break;
    case Op::kI64Eqz: convert(ValType::kI64, ValType::kI32); break;
    case Op::kI32Eq: case Op::kI32Ne: case Op::kI32LtS: case Op::kI32LtU:
    case Op::kI32GtS: case Op::kI32GtU: case Op::kI32LeS: case Op::kI32LeU:
    case Op::kI32GeS: case Op::kI32GeU:
      cmp(ValType::kI32);
      break;
    case Op::kI64Eq: case Op::kI64Ne: case Op::kI64LtS: case Op::kI64LtU:
    case Op::kI64GtS: case Op::kI64GtU: case Op::kI64LeS: case Op::kI64LeU:
    case Op::kI64GeS: case Op::kI64GeU:
      cmp(ValType::kI64);
      break;
    case Op::kF32Eq: case Op::kF32Ne: case Op::kF32Lt: case Op::kF32Gt:
    case Op::kF32Le: case Op::kF32Ge:
      cmp(ValType::kF32);
      break;
    case Op::kF64Eq: case Op::kF64Ne: case Op::kF64Lt: case Op::kF64Gt:
    case Op::kF64Le: case Op::kF64Ge:
      cmp(ValType::kF64);
      break;
    case Op::kI32Clz: case Op::kI32Ctz: case Op::kI32Popcnt:
    case Op::kI32Extend8S: case Op::kI32Extend16S:
      unop(ValType::kI32);
      break;
    case Op::kI32Add: case Op::kI32Sub: case Op::kI32Mul: case Op::kI32DivS:
    case Op::kI32DivU: case Op::kI32RemS: case Op::kI32RemU: case Op::kI32And:
    case Op::kI32Or: case Op::kI32Xor: case Op::kI32Shl: case Op::kI32ShrS:
    case Op::kI32ShrU: case Op::kI32Rotl: case Op::kI32Rotr:
      binop(ValType::kI32);
      break;
    case Op::kI64Clz: case Op::kI64Ctz: case Op::kI64Popcnt:
    case Op::kI64Extend8S: case Op::kI64Extend16S: case Op::kI64Extend32S:
      unop(ValType::kI64);
      break;
    case Op::kI64Add: case Op::kI64Sub: case Op::kI64Mul: case Op::kI64DivS:
    case Op::kI64DivU: case Op::kI64RemS: case Op::kI64RemU: case Op::kI64And:
    case Op::kI64Or: case Op::kI64Xor: case Op::kI64Shl: case Op::kI64ShrS:
    case Op::kI64ShrU: case Op::kI64Rotl: case Op::kI64Rotr:
      binop(ValType::kI64);
      break;
    case Op::kF32Abs: case Op::kF32Neg: case Op::kF32Ceil: case Op::kF32Floor:
    case Op::kF32Trunc: case Op::kF32Nearest: case Op::kF32Sqrt:
      unop(ValType::kF32);
      break;
    case Op::kF32Add: case Op::kF32Sub: case Op::kF32Mul: case Op::kF32Div:
    case Op::kF32Min: case Op::kF32Max: case Op::kF32Copysign:
      binop(ValType::kF32);
      break;
    case Op::kF64Abs: case Op::kF64Neg: case Op::kF64Ceil: case Op::kF64Floor:
    case Op::kF64Trunc: case Op::kF64Nearest: case Op::kF64Sqrt:
      unop(ValType::kF64);
      break;
    case Op::kF64Add: case Op::kF64Sub: case Op::kF64Mul: case Op::kF64Div:
    case Op::kF64Min: case Op::kF64Max: case Op::kF64Copysign:
      binop(ValType::kF64);
      break;
    case Op::kI32WrapI64: convert(ValType::kI64, ValType::kI32); break;
    case Op::kI32TruncF32S: case Op::kI32TruncF32U:
      convert(ValType::kF32, ValType::kI32);
      break;
    case Op::kI32TruncF64S: case Op::kI32TruncF64U:
      convert(ValType::kF64, ValType::kI32);
      break;
    case Op::kI64ExtendI32S: case Op::kI64ExtendI32U:
      convert(ValType::kI32, ValType::kI64);
      break;
    case Op::kI64TruncF32S: case Op::kI64TruncF32U:
      convert(ValType::kF32, ValType::kI64);
      break;
    case Op::kI64TruncF64S: case Op::kI64TruncF64U:
      convert(ValType::kF64, ValType::kI64);
      break;
    case Op::kF32ConvertI32S: case Op::kF32ConvertI32U:
      convert(ValType::kI32, ValType::kF32);
      break;
    case Op::kF32ConvertI64S: case Op::kF32ConvertI64U:
      convert(ValType::kI64, ValType::kF32);
      break;
    case Op::kF32DemoteF64: convert(ValType::kF64, ValType::kF32); break;
    case Op::kF64ConvertI32S: case Op::kF64ConvertI32U:
      convert(ValType::kI32, ValType::kF64);
      break;
    case Op::kF64ConvertI64S: case Op::kF64ConvertI64U:
      convert(ValType::kI64, ValType::kF64);
      break;
    case Op::kF64PromoteF32: convert(ValType::kF32, ValType::kF64); break;
    case Op::kI32ReinterpretF32: convert(ValType::kF32, ValType::kI32); break;
    case Op::kI64ReinterpretF64: convert(ValType::kF64, ValType::kI64); break;
    case Op::kF32ReinterpretI32: convert(ValType::kI32, ValType::kF32); break;
    case Op::kF64ReinterpretI64: convert(ValType::kI64, ValType::kF64); break;
    // SIMD: loads/stores (natural alignment 16, or the splat width).
    case Op::kV128Load: load(ValType::kV128, 16, in); break;
    case Op::kV128Load32Splat: load(ValType::kV128, 4, in); break;
    case Op::kV128Load64Splat: load(ValType::kV128, 8, in); break;
    case Op::kV128Store: store(ValType::kV128, 16, in); break;
    case Op::kV128Const: push_val(ValType::kV128); break;
    // Shuffle: every lane selector indexes the 32-byte concatenation.
    case Op::kI8x16Shuffle:
      for (int k = 0; k < 16; ++k)
        if (in.imm_v128.bytes[k] >= 32) verr("shuffle lane index out of range");
      binop(ValType::kV128);
      break;
    case Op::kI8x16Splat: case Op::kI16x8Splat: case Op::kI32x4Splat:
      convert(ValType::kI32, ValType::kV128);
      break;
    case Op::kI64x2Splat: convert(ValType::kI64, ValType::kV128); break;
    case Op::kF32x4Splat: convert(ValType::kF32, ValType::kV128); break;
    case Op::kF64x2Splat: convert(ValType::kF64, ValType::kV128); break;
    case Op::kI8x16ExtractLaneS: case Op::kI8x16ExtractLaneU:
      if (in.imm_i >= 16) verr("lane index out of range");
      convert(ValType::kV128, ValType::kI32);
      break;
    case Op::kI16x8ExtractLaneS: case Op::kI16x8ExtractLaneU:
      if (in.imm_i >= 8) verr("lane index out of range");
      convert(ValType::kV128, ValType::kI32);
      break;
    case Op::kI32x4ExtractLane:
      if (in.imm_i >= 4) verr("lane index out of range");
      convert(ValType::kV128, ValType::kI32);
      break;
    case Op::kI64x2ExtractLane:
      if (in.imm_i >= 2) verr("lane index out of range");
      convert(ValType::kV128, ValType::kI64);
      break;
    case Op::kF32x4ExtractLane:
      if (in.imm_i >= 4) verr("lane index out of range");
      convert(ValType::kV128, ValType::kF32);
      break;
    case Op::kF64x2ExtractLane:
      if (in.imm_i >= 2) verr("lane index out of range");
      convert(ValType::kV128, ValType::kF64);
      break;
    // Replace lane: (v128, scalar) -> v128 with a lane immediate.
    case Op::kI8x16ReplaceLane: case Op::kI16x8ReplaceLane:
    case Op::kI32x4ReplaceLane: {
      u32 lanes = in.op == Op::kI8x16ReplaceLane   ? 16
                  : in.op == Op::kI16x8ReplaceLane ? 8
                                                   : 4;
      if (in.imm_i >= lanes) verr("lane index out of range");
      pop_val(ValType::kI32);
      pop_val(ValType::kV128);
      push_val(ValType::kV128);
      break;
    }
    case Op::kI64x2ReplaceLane:
      if (in.imm_i >= 2) verr("lane index out of range");
      pop_val(ValType::kI64);
      pop_val(ValType::kV128);
      push_val(ValType::kV128);
      break;
    case Op::kF32x4ReplaceLane:
      if (in.imm_i >= 4) verr("lane index out of range");
      pop_val(ValType::kF32);
      pop_val(ValType::kV128);
      push_val(ValType::kV128);
      break;
    case Op::kF64x2ReplaceLane:
      if (in.imm_i >= 2) verr("lane index out of range");
      pop_val(ValType::kF64);
      pop_val(ValType::kV128);
      push_val(ValType::kV128);
      break;
    case Op::kV128Not:
    case Op::kI8x16Abs: case Op::kI8x16Neg:
    case Op::kI16x8Abs: case Op::kI16x8Neg:
    case Op::kI32x4Abs: case Op::kI32x4Neg:
    case Op::kI64x2Abs: case Op::kI64x2Neg:
    case Op::kF32x4Abs: case Op::kF32x4Neg: case Op::kF32x4Sqrt:
    case Op::kF64x2Abs: case Op::kF64x2Neg: case Op::kF64x2Sqrt:
      unop(ValType::kV128);
      break;
    case Op::kV128AnyTrue:
    case Op::kI8x16AllTrue: case Op::kI16x8AllTrue:
    case Op::kI32x4AllTrue: case Op::kI64x2AllTrue:
      convert(ValType::kV128, ValType::kI32);
      break;
    // Shifts: (v128, i32 count) -> v128.
    case Op::kI32x4Shl: case Op::kI32x4ShrS: case Op::kI32x4ShrU:
    case Op::kI64x2Shl: case Op::kI64x2ShrS: case Op::kI64x2ShrU:
      pop_val(ValType::kI32);
      pop_val(ValType::kV128);
      push_val(ValType::kV128);
      break;
    case Op::kV128Bitselect:
      pop_val(ValType::kV128);
      pop_val(ValType::kV128);
      pop_val(ValType::kV128);
      push_val(ValType::kV128);
      break;
    // Lane-wise binops (comparisons produce v128 masks, not i32).
    case Op::kI8x16Swizzle:
    case Op::kI8x16Eq: case Op::kI8x16Ne: case Op::kI8x16LtS: case Op::kI8x16LtU:
    case Op::kI8x16GtS: case Op::kI8x16GtU: case Op::kI8x16LeS: case Op::kI8x16LeU:
    case Op::kI8x16GeS: case Op::kI8x16GeU:
    case Op::kI16x8Eq: case Op::kI16x8Ne: case Op::kI16x8LtS: case Op::kI16x8LtU:
    case Op::kI16x8GtS: case Op::kI16x8GtU: case Op::kI16x8LeS: case Op::kI16x8LeU:
    case Op::kI16x8GeS: case Op::kI16x8GeU:
    case Op::kI32x4Eq: case Op::kI32x4Ne: case Op::kI32x4LtS: case Op::kI32x4LtU:
    case Op::kI32x4GtS: case Op::kI32x4GtU: case Op::kI32x4LeS: case Op::kI32x4LeU:
    case Op::kI32x4GeS: case Op::kI32x4GeU:
    case Op::kF32x4Eq: case Op::kF32x4Ne: case Op::kF32x4Lt: case Op::kF32x4Gt:
    case Op::kF32x4Le: case Op::kF32x4Ge:
    case Op::kF64x2Eq: case Op::kF64x2Ne: case Op::kF64x2Lt: case Op::kF64x2Gt:
    case Op::kF64x2Le: case Op::kF64x2Ge:
    case Op::kV128And: case Op::kV128AndNot: case Op::kV128Or: case Op::kV128Xor:
    case Op::kI8x16Add: case Op::kI8x16Sub:
    case Op::kI16x8Add: case Op::kI16x8Sub: case Op::kI16x8Mul:
    case Op::kI32x4Add: case Op::kI32x4Sub: case Op::kI32x4Mul:
    case Op::kI32x4MinS: case Op::kI32x4MinU: case Op::kI32x4MaxS:
    case Op::kI32x4MaxU:
    case Op::kI64x2Add: case Op::kI64x2Sub: case Op::kI64x2Mul:
    case Op::kF32x4Add: case Op::kF32x4Sub: case Op::kF32x4Mul: case Op::kF32x4Div:
    case Op::kF32x4Min: case Op::kF32x4Max: case Op::kF32x4Pmin: case Op::kF32x4Pmax:
    case Op::kF64x2Add: case Op::kF64x2Sub: case Op::kF64x2Mul: case Op::kF64x2Div:
    case Op::kF64x2Min: case Op::kF64x2Max: case Op::kF64x2Pmin: case Op::kF64x2Pmax:
      binop(ValType::kV128);
      break;
    // 0xFE atomics (threads proposal).
    case Op::kMemoryAtomicNotify:
      // (addr: i32, count: i32) -> woken: i32
      check_atomic(in.mem_align, 4);
      pop_val(ValType::kI32);
      pop_val(ValType::kI32);
      push_val(ValType::kI32);
      break;
    case Op::kMemoryAtomicWait32:
      // (addr: i32, expected: i32, timeout_ns: i64) -> i32 (0/1/2)
      check_atomic(in.mem_align, 4);
      pop_val(ValType::kI64);
      pop_val(ValType::kI32);
      pop_val(ValType::kI32);
      push_val(ValType::kI32);
      break;
    case Op::kMemoryAtomicWait64:
      check_atomic(in.mem_align, 8);
      pop_val(ValType::kI64);
      pop_val(ValType::kI64);
      pop_val(ValType::kI32);
      push_val(ValType::kI32);
      break;
    case Op::kAtomicFence:
      break;
    case Op::kI32AtomicLoad: atomic_load(ValType::kI32, 4, in); break;
    case Op::kI64AtomicLoad: atomic_load(ValType::kI64, 8, in); break;
    case Op::kI32AtomicLoad8U: atomic_load(ValType::kI32, 1, in); break;
    case Op::kI32AtomicLoad16U: atomic_load(ValType::kI32, 2, in); break;
    case Op::kI64AtomicLoad8U: atomic_load(ValType::kI64, 1, in); break;
    case Op::kI64AtomicLoad16U: atomic_load(ValType::kI64, 2, in); break;
    case Op::kI64AtomicLoad32U: atomic_load(ValType::kI64, 4, in); break;
    case Op::kI32AtomicStore: atomic_store(ValType::kI32, 4, in); break;
    case Op::kI64AtomicStore: atomic_store(ValType::kI64, 8, in); break;
    case Op::kI32AtomicStore8: atomic_store(ValType::kI32, 1, in); break;
    case Op::kI32AtomicStore16: atomic_store(ValType::kI32, 2, in); break;
    case Op::kI64AtomicStore8: atomic_store(ValType::kI64, 1, in); break;
    case Op::kI64AtomicStore16: atomic_store(ValType::kI64, 2, in); break;
    case Op::kI64AtomicStore32: atomic_store(ValType::kI64, 4, in); break;
    case Op::kI32AtomicRmwAdd: case Op::kI32AtomicRmwSub:
    case Op::kI32AtomicRmwAnd: case Op::kI32AtomicRmwOr:
    case Op::kI32AtomicRmwXor: case Op::kI32AtomicRmwXchg:
      atomic_rmw(ValType::kI32, 4, in);
      break;
    case Op::kI64AtomicRmwAdd: case Op::kI64AtomicRmwSub:
    case Op::kI64AtomicRmwAnd: case Op::kI64AtomicRmwOr:
    case Op::kI64AtomicRmwXor: case Op::kI64AtomicRmwXchg:
      atomic_rmw(ValType::kI64, 8, in);
      break;
    case Op::kI32AtomicRmw8AddU: case Op::kI32AtomicRmw8SubU:
    case Op::kI32AtomicRmw8AndU: case Op::kI32AtomicRmw8OrU:
    case Op::kI32AtomicRmw8XorU: case Op::kI32AtomicRmw8XchgU:
      atomic_rmw(ValType::kI32, 1, in);
      break;
    case Op::kI32AtomicRmw16AddU: case Op::kI32AtomicRmw16SubU:
    case Op::kI32AtomicRmw16AndU: case Op::kI32AtomicRmw16OrU:
    case Op::kI32AtomicRmw16XorU: case Op::kI32AtomicRmw16XchgU:
      atomic_rmw(ValType::kI32, 2, in);
      break;
    case Op::kI64AtomicRmw8AddU: case Op::kI64AtomicRmw8SubU:
    case Op::kI64AtomicRmw8AndU: case Op::kI64AtomicRmw8OrU:
    case Op::kI64AtomicRmw8XorU: case Op::kI64AtomicRmw8XchgU:
      atomic_rmw(ValType::kI64, 1, in);
      break;
    case Op::kI64AtomicRmw16AddU: case Op::kI64AtomicRmw16SubU:
    case Op::kI64AtomicRmw16AndU: case Op::kI64AtomicRmw16OrU:
    case Op::kI64AtomicRmw16XorU: case Op::kI64AtomicRmw16XchgU:
      atomic_rmw(ValType::kI64, 2, in);
      break;
    case Op::kI64AtomicRmw32AddU: case Op::kI64AtomicRmw32SubU:
    case Op::kI64AtomicRmw32AndU: case Op::kI64AtomicRmw32OrU:
    case Op::kI64AtomicRmw32XorU: case Op::kI64AtomicRmw32XchgU:
      atomic_rmw(ValType::kI64, 4, in);
      break;
    case Op::kI32AtomicRmwCmpxchg: atomic_cmpxchg(ValType::kI32, 4, in); break;
    case Op::kI64AtomicRmwCmpxchg: atomic_cmpxchg(ValType::kI64, 8, in); break;
    case Op::kI32AtomicRmw8CmpxchgU: atomic_cmpxchg(ValType::kI32, 1, in); break;
    case Op::kI32AtomicRmw16CmpxchgU: atomic_cmpxchg(ValType::kI32, 2, in); break;
    case Op::kI64AtomicRmw8CmpxchgU: atomic_cmpxchg(ValType::kI64, 1, in); break;
    case Op::kI64AtomicRmw16CmpxchgU: atomic_cmpxchg(ValType::kI64, 2, in); break;
    case Op::kI64AtomicRmw32CmpxchgU: atomic_cmpxchg(ValType::kI64, 4, in); break;
  }
}

void check_const_expr(const Module& m, const ConstExpr& e, ValType expect,
                      const char* what) {
  ValType actual;
  switch (e.kind) {
    case ConstExpr::Kind::kI32: actual = ValType::kI32; break;
    case ConstExpr::Kind::kI64: actual = ValType::kI64; break;
    case ConstExpr::Kind::kF32: actual = ValType::kF32; break;
    case ConstExpr::Kind::kF64: actual = ValType::kF64; break;
    case ConstExpr::Kind::kGlobalGet: {
      if (e.global_index >= m.num_imported_globals())
        verr(std::string(what) + ": global.get init must reference imported global");
      u32 seen = 0;
      actual = ValType::kI32;
      for (const auto& imp : m.imports) {
        if (imp.kind != ExternKind::kGlobal) continue;
        if (seen == e.global_index) {
          if (imp.global_mutable)
            verr(std::string(what) + ": init from mutable global");
          actual = imp.global_type;
          break;
        }
        ++seen;
      }
      break;
    }
    default: verr(std::string(what) + ": bad const expr");
  }
  if (actual != expect) verr(std::string(what) + ": const expr type mismatch");
}

void validate_module_shell(const Module& m) {
  for (const auto& t : m.types) {
    if (t.results.size() > 1) verr("multi-value function types unsupported");
    for (ValType p : t.params)
      if (!is_num_type(p)) verr("function params must be numeric");
  }
  for (const auto& imp : m.imports) {
    if (imp.kind == ExternKind::kFunc && imp.type_index >= m.types.size())
      verr("import type index out of range");
  }
  for (u32 ti : m.functions)
    if (ti >= m.types.size()) verr("function type index out of range");
  for (const auto& mem : m.memories) {
    if (mem.min > kMaxPages || (mem.has_max && mem.max > kMaxPages))
      verr("memory limits exceed 4GiB (65536 pages)");
    if (mem.shared && !mem.has_max) verr("shared memory requires a max");
  }
  u32 nglobals = m.num_imported_globals() + u32(m.globals.size());
  for (const auto& g : m.globals)
    check_const_expr(m, g.init, g.type, "global init");
  (void)nglobals;
  u32 nfuncs = m.total_funcs();
  bool has_table = !m.tables.empty() ||
                   std::any_of(m.imports.begin(), m.imports.end(), [](const Import& i) {
                     return i.kind == ExternKind::kTable;
                   });
  bool has_memory = !m.memories.empty() ||
                    std::any_of(m.imports.begin(), m.imports.end(), [](const Import& i) {
                      return i.kind == ExternKind::kMemory;
                    });
  for (const auto& e : m.exports) {
    switch (e.kind) {
      case ExternKind::kFunc:
        if (e.index >= nfuncs) verr("export func index out of range");
        break;
      case ExternKind::kMemory:
        if (!has_memory || e.index != 0) verr("export memory index out of range");
        break;
      case ExternKind::kTable:
        if (!has_table || e.index != 0) verr("export table index out of range");
        break;
      case ExternKind::kGlobal:
        if (e.index >= m.num_imported_globals() + m.globals.size())
          verr("export global index out of range");
        break;
    }
  }
  for (const auto& seg : m.elems) {
    if (!has_table) verr("element segment without table");
    check_const_expr(m, seg.offset, ValType::kI32, "elem offset");
    for (u32 fi : seg.func_indices)
      if (fi >= nfuncs) verr("element function index out of range");
  }
  for (const auto& seg : m.datas) {
    if (!has_memory) verr("data segment without memory");
    check_const_expr(m, seg.offset, ValType::kI32, "data offset");
  }
  if (m.start.has_value()) {
    if (*m.start >= nfuncs) verr("start function index out of range");
    const FuncType& ft = m.func_type(*m.start);
    if (!ft.params.empty() || !ft.results.empty())
      verr("start function must have type () -> ()");
  }
}

}  // namespace

ValidationResult validate_module(const Module& m) {
  ValidationResult result;
  try {
    validate_module_shell(m);
    for (u32 i = 0; i < m.bodies.size(); ++i) {
      try {
        FuncValidator v(m, i);
        v.run();
      } catch (const ValidationError& e) {
        std::ostringstream os;
        os << "func[" << (m.num_imported_funcs() + i) << "]: " << e.what();
        verr(os.str());
      } catch (const DecodeError& e) {
        std::ostringstream os;
        os << "func[" << (m.num_imported_funcs() + i) << "]: " << e.what();
        verr(os.str());
      }
    }
    result.ok = true;
  } catch (const ValidationError& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace mpiwasm::wasm
