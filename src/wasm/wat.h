// WebAssembly text format (WAT) printer.
//
// Produces human-readable module listings in the style of the paper's
// Listing 1/3 (types, imports, function bodies, exports). Used by the
// `wat-dump` tool and by tests that assert on module structure.
#pragma once

#include <string>

#include "wasm/module.h"

namespace mpiwasm::wasm {

struct WatOptions {
  bool print_code = true;   // include function bodies
  size_t max_code_lines = 0;  // 0 = unlimited
};

std::string to_wat(const Module& m, const WatOptions& opts = {});

}  // namespace mpiwasm::wasm
