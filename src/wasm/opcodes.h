// WebAssembly opcode definitions.
//
// Internal representation: a 16-bit code. Single-byte opcodes keep their
// spec byte value; 0xFC-prefixed (bulk memory) and 0xFD-prefixed (SIMD)
// opcodes are encoded as (prefix << 8) | sub-opcode.
#pragma once

#include <cstdint>

#include "support/common.h"

namespace mpiwasm::wasm {

enum class Op : u16 {
  // Control.
  kUnreachable = 0x00,
  kNop = 0x01,
  kBlock = 0x02,
  kLoop = 0x03,
  kIf = 0x04,
  kElse = 0x05,
  kEnd = 0x0B,
  kBr = 0x0C,
  kBrIf = 0x0D,
  kBrTable = 0x0E,
  kReturn = 0x0F,
  kCall = 0x10,
  kCallIndirect = 0x11,
  // Parametric.
  kDrop = 0x1A,
  kSelect = 0x1B,
  // Variables.
  kLocalGet = 0x20,
  kLocalSet = 0x21,
  kLocalTee = 0x22,
  kGlobalGet = 0x23,
  kGlobalSet = 0x24,
  // Memory loads.
  kI32Load = 0x28,
  kI64Load = 0x29,
  kF32Load = 0x2A,
  kF64Load = 0x2B,
  kI32Load8S = 0x2C,
  kI32Load8U = 0x2D,
  kI32Load16S = 0x2E,
  kI32Load16U = 0x2F,
  kI64Load8S = 0x30,
  kI64Load8U = 0x31,
  kI64Load16S = 0x32,
  kI64Load16U = 0x33,
  kI64Load32S = 0x34,
  kI64Load32U = 0x35,
  // Memory stores.
  kI32Store = 0x36,
  kI64Store = 0x37,
  kF32Store = 0x38,
  kF64Store = 0x39,
  kI32Store8 = 0x3A,
  kI32Store16 = 0x3B,
  kI64Store8 = 0x3C,
  kI64Store16 = 0x3D,
  kI64Store32 = 0x3E,
  kMemorySize = 0x3F,
  kMemoryGrow = 0x40,
  // Constants.
  kI32Const = 0x41,
  kI64Const = 0x42,
  kF32Const = 0x43,
  kF64Const = 0x44,
  // i32 comparisons.
  kI32Eqz = 0x45,
  kI32Eq = 0x46,
  kI32Ne = 0x47,
  kI32LtS = 0x48,
  kI32LtU = 0x49,
  kI32GtS = 0x4A,
  kI32GtU = 0x4B,
  kI32LeS = 0x4C,
  kI32LeU = 0x4D,
  kI32GeS = 0x4E,
  kI32GeU = 0x4F,
  // i64 comparisons.
  kI64Eqz = 0x50,
  kI64Eq = 0x51,
  kI64Ne = 0x52,
  kI64LtS = 0x53,
  kI64LtU = 0x54,
  kI64GtS = 0x55,
  kI64GtU = 0x56,
  kI64LeS = 0x57,
  kI64LeU = 0x58,
  kI64GeS = 0x59,
  kI64GeU = 0x5A,
  // f32/f64 comparisons.
  kF32Eq = 0x5B,
  kF32Ne = 0x5C,
  kF32Lt = 0x5D,
  kF32Gt = 0x5E,
  kF32Le = 0x5F,
  kF32Ge = 0x60,
  kF64Eq = 0x61,
  kF64Ne = 0x62,
  kF64Lt = 0x63,
  kF64Gt = 0x64,
  kF64Le = 0x65,
  kF64Ge = 0x66,
  // i32 arithmetic.
  kI32Clz = 0x67,
  kI32Ctz = 0x68,
  kI32Popcnt = 0x69,
  kI32Add = 0x6A,
  kI32Sub = 0x6B,
  kI32Mul = 0x6C,
  kI32DivS = 0x6D,
  kI32DivU = 0x6E,
  kI32RemS = 0x6F,
  kI32RemU = 0x70,
  kI32And = 0x71,
  kI32Or = 0x72,
  kI32Xor = 0x73,
  kI32Shl = 0x74,
  kI32ShrS = 0x75,
  kI32ShrU = 0x76,
  kI32Rotl = 0x77,
  kI32Rotr = 0x78,
  // i64 arithmetic.
  kI64Clz = 0x79,
  kI64Ctz = 0x7A,
  kI64Popcnt = 0x7B,
  kI64Add = 0x7C,
  kI64Sub = 0x7D,
  kI64Mul = 0x7E,
  kI64DivS = 0x7F,
  kI64DivU = 0x80,
  kI64RemS = 0x81,
  kI64RemU = 0x82,
  kI64And = 0x83,
  kI64Or = 0x84,
  kI64Xor = 0x85,
  kI64Shl = 0x86,
  kI64ShrS = 0x87,
  kI64ShrU = 0x88,
  kI64Rotl = 0x89,
  kI64Rotr = 0x8A,
  // f32 arithmetic.
  kF32Abs = 0x8B,
  kF32Neg = 0x8C,
  kF32Ceil = 0x8D,
  kF32Floor = 0x8E,
  kF32Trunc = 0x8F,
  kF32Nearest = 0x90,
  kF32Sqrt = 0x91,
  kF32Add = 0x92,
  kF32Sub = 0x93,
  kF32Mul = 0x94,
  kF32Div = 0x95,
  kF32Min = 0x96,
  kF32Max = 0x97,
  kF32Copysign = 0x98,
  // f64 arithmetic.
  kF64Abs = 0x99,
  kF64Neg = 0x9A,
  kF64Ceil = 0x9B,
  kF64Floor = 0x9C,
  kF64Trunc = 0x9D,
  kF64Nearest = 0x9E,
  kF64Sqrt = 0x9F,
  kF64Add = 0xA0,
  kF64Sub = 0xA1,
  kF64Mul = 0xA2,
  kF64Div = 0xA3,
  kF64Min = 0xA4,
  kF64Max = 0xA5,
  kF64Copysign = 0xA6,
  // Conversions.
  kI32WrapI64 = 0xA7,
  kI32TruncF32S = 0xA8,
  kI32TruncF32U = 0xA9,
  kI32TruncF64S = 0xAA,
  kI32TruncF64U = 0xAB,
  kI64ExtendI32S = 0xAC,
  kI64ExtendI32U = 0xAD,
  kI64TruncF32S = 0xAE,
  kI64TruncF32U = 0xAF,
  kI64TruncF64S = 0xB0,
  kI64TruncF64U = 0xB1,
  kF32ConvertI32S = 0xB2,
  kF32ConvertI32U = 0xB3,
  kF32ConvertI64S = 0xB4,
  kF32ConvertI64U = 0xB5,
  kF32DemoteF64 = 0xB6,
  kF64ConvertI32S = 0xB7,
  kF64ConvertI32U = 0xB8,
  kF64ConvertI64S = 0xB9,
  kF64ConvertI64U = 0xBA,
  kF64PromoteF32 = 0xBB,
  kI32ReinterpretF32 = 0xBC,
  kI64ReinterpretF64 = 0xBD,
  kF32ReinterpretI32 = 0xBE,
  kF64ReinterpretI64 = 0xBF,
  // Sign extension ops.
  kI32Extend8S = 0xC0,
  kI32Extend16S = 0xC1,
  kI64Extend8S = 0xC2,
  kI64Extend16S = 0xC3,
  kI64Extend32S = 0xC4,
  // 0xFC-prefixed bulk memory.
  kMemoryCopy = 0xFC0A,
  kMemoryFill = 0xFC0B,
  // 0xFD-prefixed SIMD (subset used by the toolchain; lane numbering
  // matches the finalized fixed-width SIMD proposal).
  kV128Load = 0xFD00,
  kV128Store = 0xFD0B,
  kV128Const = 0xFD0C,
  kI8x16Splat = 0xFD0F,
  kI32x4Splat = 0xFD11,
  kI64x2Splat = 0xFD12,
  kF32x4Splat = 0xFD13,
  kF64x2Splat = 0xFD14,
  kI32x4ExtractLane = 0xFD1B,
  kI64x2ExtractLane = 0xFD1D,
  kF32x4ExtractLane = 0xFD1F,
  kF64x2ExtractLane = 0xFD21,
  kI8x16Eq = 0xFD23,
  kV128Not = 0xFD4D,
  kV128And = 0xFD4E,
  kV128Or = 0xFD50,
  kV128Xor = 0xFD51,
  kV128AnyTrue = 0xFD53,
  kI32x4Add = 0xFDAE,
  kI32x4Sub = 0xFDB1,
  kI32x4Mul = 0xFDB5,
  kI64x2Add = 0xFDCE,
  kI64x2Sub = 0xFDD1,
  kF32x4Add = 0xFDE4,
  kF32x4Sub = 0xFDE5,
  kF32x4Mul = 0xFDE6,
  kF32x4Div = 0xFDE7,
  kF64x2Add = 0xFDF0,
  kF64x2Sub = 0xFDF1,
  kF64x2Mul = 0xFDF2,
  kF64x2Div = 0xFDF3,
};

/// Immediate operand shapes an opcode carries in the binary encoding.
enum class ImmKind : u8 {
  kNone,
  kBlockType,    // block/loop/if
  kLabel,        // br/br_if
  kBrTable,      // vector of labels + default
  kFuncIdx,      // call
  kCallIndirect, // type idx + table idx
  kLocalIdx,
  kGlobalIdx,
  kMemArg,       // align + offset
  kMemArgLane,   // unused (reserved for SIMD load/store lane)
  kMemIdx,       // memory.size/grow (single 0x00 byte)
  kMemCopy,      // two 0x00 bytes
  kI32Const,
  kI64Const,
  kF32Const,
  kF64Const,
  kV128Const,    // 16 literal bytes
  kLaneIdx,      // SIMD extract lane
};

/// Whether `op` is a recognized opcode; unknown opcodes fail decoding.
bool op_is_known(u16 code);
ImmKind op_imm_kind(Op op);
const char* op_name(Op op);

}  // namespace mpiwasm::wasm
