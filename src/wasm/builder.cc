#include "wasm/builder.h"

#include <algorithm>

namespace mpiwasm::wasm {
namespace {

u32 natural_align_log2(Op o) {
  switch (o) {
    case Op::kI32Load8S: case Op::kI32Load8U: case Op::kI64Load8S:
    case Op::kI64Load8U: case Op::kI32Store8: case Op::kI64Store8:
      return 0;
    case Op::kI32Load16S: case Op::kI32Load16U: case Op::kI64Load16S:
    case Op::kI64Load16U: case Op::kI32Store16: case Op::kI64Store16:
      return 1;
    case Op::kI32Load: case Op::kF32Load: case Op::kI64Load32S:
    case Op::kI64Load32U: case Op::kI32Store: case Op::kF32Store:
    case Op::kI64Store32: case Op::kV128Load32Splat:
      return 2;
    case Op::kI64Load: case Op::kF64Load: case Op::kI64Store:
    case Op::kF64Store: case Op::kV128Load64Splat:
      return 3;
    case Op::kV128Load: case Op::kV128Store:
      return 4;
    default:
      if (op_is_atomic(o)) {
        // Atomic memargs must carry exactly the natural alignment; the
        // width is encoded in the opcode's low byte layout, so derive it
        // from the mnemonic class via atomic_access_bytes.
        return atomic_align_log2(o);
      }
      fatal("mem_op on non-memory opcode");
  }
}

void emit_opcode(ByteWriter& w, Op o) {
  u16 code = u16(o);
  if (code > 0xFF) {
    w.write_u8(u8(code >> 8));
    w.write_leb_u32(code & 0xFF);
  } else {
    w.write_u8(u8(code));
  }
}

}  // namespace

FunctionBuilder::FunctionBuilder(ModuleBuilder* parent, u32 func_index,
                                 u32 num_params)
    : parent_(parent), func_index_(func_index), num_params_(num_params) {}

u32 FunctionBuilder::add_local(ValType t) {
  locals_.push_back(t);
  return num_params_ + u32(locals_.size()) - 1;
}

void FunctionBuilder::op(Op o) {
  MW_CHECK(!finished_, "emitting into a finished function");
  emit_opcode(code_, o);
  // Reserved index immediates required by the binary format.
  switch (op_imm_kind(o)) {
    case ImmKind::kMemIdx:
    case ImmKind::kAtomicFence:  // reserved ordering byte
      code_.write_u8(0);
      break;
    case ImmKind::kMemCopy:
      code_.write_u8(0);
      code_.write_u8(0);
      break;
    default:
      break;
  }
  if (o == Op::kEnd) {
    --open_blocks_;
    if (open_blocks_ == 0) {
      finished_ = true;
      parent_->finish_func(*this);
    }
  }
}

void FunctionBuilder::i32_const(i32 v) {
  emit_opcode(code_, Op::kI32Const);
  code_.write_leb_i32(v);
}
void FunctionBuilder::i64_const(i64 v) {
  emit_opcode(code_, Op::kI64Const);
  code_.write_leb_i64(v);
}
void FunctionBuilder::f32_const(f32 v) {
  emit_opcode(code_, Op::kF32Const);
  code_.write_f32_le(v);
}
void FunctionBuilder::f64_const(f64 v) {
  emit_opcode(code_, Op::kF64Const);
  code_.write_f64_le(v);
}
void FunctionBuilder::v128_const(const V128& v) {
  emit_opcode(code_, Op::kV128Const);
  code_.write_bytes({v.bytes, 16});
}

void FunctionBuilder::local_get(u32 idx) {
  emit_opcode(code_, Op::kLocalGet);
  code_.write_leb_u32(idx);
}
void FunctionBuilder::local_set(u32 idx) {
  emit_opcode(code_, Op::kLocalSet);
  code_.write_leb_u32(idx);
}
void FunctionBuilder::local_tee(u32 idx) {
  emit_opcode(code_, Op::kLocalTee);
  code_.write_leb_u32(idx);
}
void FunctionBuilder::global_get(u32 idx) {
  emit_opcode(code_, Op::kGlobalGet);
  code_.write_leb_u32(idx);
}
void FunctionBuilder::global_set(u32 idx) {
  emit_opcode(code_, Op::kGlobalSet);
  code_.write_leb_u32(idx);
}

void FunctionBuilder::call(u32 func_index) {
  emit_opcode(code_, Op::kCall);
  code_.write_leb_u32(func_index);
}
void FunctionBuilder::call_indirect(u32 type_index) {
  emit_opcode(code_, Op::kCallIndirect);
  code_.write_leb_u32(type_index);
  code_.write_u8(0);
}

void FunctionBuilder::mem_op(Op o, u32 offset, i32 align_log2) {
  u32 align = align_log2 >= 0 ? u32(align_log2) : natural_align_log2(o);
  emit_opcode(code_, o);
  code_.write_leb_u32(align);
  code_.write_leb_u32(offset);
}

void FunctionBuilder::block(u8 block_type) {
  emit_opcode(code_, Op::kBlock);
  code_.write_u8(block_type);
  ++open_blocks_;
}
void FunctionBuilder::block(ValType result) { block(u8(result)); }
void FunctionBuilder::loop(u8 block_type) {
  emit_opcode(code_, Op::kLoop);
  code_.write_u8(block_type);
  ++open_blocks_;
}
void FunctionBuilder::if_(u8 block_type) {
  emit_opcode(code_, Op::kIf);
  code_.write_u8(block_type);
  ++open_blocks_;
}
void FunctionBuilder::if_(ValType result) { if_(u8(result)); }
void FunctionBuilder::else_() { emit_opcode(code_, Op::kElse); }

void FunctionBuilder::end() { op(Op::kEnd); }

void FunctionBuilder::br(u32 depth) {
  emit_opcode(code_, Op::kBr);
  code_.write_leb_u32(depth);
}
void FunctionBuilder::br_if(u32 depth) {
  emit_opcode(code_, Op::kBrIf);
  code_.write_leb_u32(depth);
}
void FunctionBuilder::br_table(const std::vector<u32>& targets, u32 dflt) {
  emit_opcode(code_, Op::kBrTable);
  code_.write_leb_u32(u32(targets.size()));
  for (u32 t : targets) code_.write_leb_u32(t);
  code_.write_leb_u32(dflt);
}

void FunctionBuilder::lane_op(Op o, u8 lane) {
  emit_opcode(code_, o);
  code_.write_u8(lane);
}

void FunctionBuilder::i8x16_shuffle(const u8 (&lanes)[16]) {
  emit_opcode(code_, Op::kI8x16Shuffle);
  code_.write_bytes({lanes, 16});
}

void FunctionBuilder::for_loop_i32(u32 counter_local, i32 start,
                                   u32 limit_local, i32 step,
                                   const std::function<void()>& body) {
  // counter = start;
  i32_const(start);
  local_set(counter_local);
  block();  // break target (depth 1 inside loop body)
  loop();   // continue target (depth 0 inside loop body)
  // if (counter >= limit) break;
  local_get(counter_local);
  local_get(limit_local);
  op(Op::kI32GeS);
  br_if(1);
  body();
  // counter += step; continue;
  local_get(counter_local);
  i32_const(step);
  op(Op::kI32Add);
  local_set(counter_local);
  br(0);
  end();  // loop
  end();  // block
}

void FunctionBuilder::while_i32(const std::function<void()>& cond,
                                const std::function<void()>& body) {
  block();
  loop();
  cond();
  op(Op::kI32Eqz);
  br_if(1);
  body();
  br(0);
  end();
  end();
}

ModuleBuilder::ModuleBuilder() = default;
ModuleBuilder::~ModuleBuilder() = default;

u32 ModuleBuilder::add_type(const FuncType& t) {
  for (u32 i = 0; i < types_.size(); ++i)
    if (types_[i] == t) return i;
  types_.push_back(t);
  return u32(types_.size()) - 1;
}

u32 ModuleBuilder::import_func(const std::string& module,
                               const std::string& name, const FuncType& type) {
  MW_CHECK(funcs_.empty() && open_funcs_.empty(),
           "all imports must precede function definitions");
  imports_.push_back({module, name, add_type(type)});
  return u32(imports_.size()) - 1;
}

void ModuleBuilder::add_memory(u32 min_pages, u32 max_pages, bool has_max,
                               bool shared) {
  MW_CHECK(!has_memory_, "at most one memory");
  MW_CHECK(!shared || has_max, "shared memory requires a max");
  has_memory_ = true;
  memory_limits_.min = min_pages;
  memory_limits_.has_max = has_max;
  memory_limits_.max = max_pages;
  memory_limits_.shared = shared;
}

void ModuleBuilder::export_memory(const std::string& name) {
  MW_CHECK(has_memory_, "export_memory without memory");
  memory_exported_ = true;
  memory_export_name_ = name;
}

u32 ModuleBuilder::add_global(ValType type, bool mutable_, i64 init_i,
                              f64 init_f) {
  globals_.push_back({type, mutable_, init_i, init_f});
  return u32(globals_.size()) - 1;
}

void ModuleBuilder::export_global(const std::string& name, u32 index) {
  exports_.push_back({name, ExternKind::kGlobal, index});
}

void ModuleBuilder::add_table(u32 min_entries) {
  MW_CHECK(!has_table_, "at most one table");
  has_table_ = true;
  table_min_ = min_entries;
}

void ModuleBuilder::add_elem(u32 offset, const std::vector<u32>& funcs) {
  MW_CHECK(has_table_, "add_elem without table");
  elems_.push_back({offset, funcs});
}

void ModuleBuilder::add_data(u32 offset, std::span<const u8> bytes) {
  datas_.push_back({offset, {bytes.begin(), bytes.end()}});
}

void ModuleBuilder::add_data_string(u32 offset, const std::string& s) {
  add_data(offset, {reinterpret_cast<const u8*>(s.data()), s.size()});
}

FunctionBuilder& ModuleBuilder::begin_func(const FuncType& type,
                                           const std::string& export_name) {
  u32 type_index = add_type(type);
  // funcs_ already contains one (possibly still-empty) slot per previously
  // begun function, so its size alone determines the next index.
  u32 func_index = u32(imports_.size() + funcs_.size());
  auto fb = std::unique_ptr<FunctionBuilder>(
      new FunctionBuilder(this, func_index, u32(type.params.size())));
  // Reserve the definition slot now so indices stay stable even when
  // several functions are under construction.
  func_type_indices_.push_back(type_index);
  funcs_.push_back({type_index, {}, {}});
  if (!export_name.empty()) export_func(export_name, func_index);
  open_funcs_.push_back(std::move(fb));
  return *open_funcs_.back();
}

void ModuleBuilder::finish_func(FunctionBuilder& fb) {
  u32 slot = fb.index() - u32(imports_.size());
  MW_CHECK(slot < funcs_.size(), "finish_func: bad index");
  funcs_[slot].locals = fb.locals_;
  funcs_[slot].code = fb.code_.take();
}

void ModuleBuilder::export_func(const std::string& name, u32 func_index) {
  exports_.push_back({name, ExternKind::kFunc, func_index});
}

void ModuleBuilder::set_start(u32 func_index) { start_ = func_index; }

namespace {
void write_section(ByteWriter& out, SectionId id, const ByteWriter& content) {
  out.write_u8(u8(id));
  out.write_leb_u32(u32(content.bytes().size()));
  out.write_bytes({content.bytes().data(), content.bytes().size()});
}

void write_limits(ByteWriter& w, const Limits& lim) {
  w.write_u8(u8((lim.has_max ? 1 : 0) | (lim.shared ? 2 : 0)));
  w.write_leb_u32(lim.min);
  if (lim.has_max) w.write_leb_u32(lim.max);
}
}  // namespace

std::vector<u8> ModuleBuilder::build() const {
  for (const auto& f : open_funcs_)
    MW_CHECK(f->finished_, "build() with unfinished function");

  ByteWriter out;
  out.write_u32_le(kWasmMagic);
  out.write_u32_le(kWasmVersion);

  if (!types_.empty()) {
    ByteWriter s;
    s.write_leb_u32(u32(types_.size()));
    for (const auto& t : types_) {
      s.write_u8(0x60);
      s.write_leb_u32(u32(t.params.size()));
      for (ValType p : t.params) s.write_u8(u8(p));
      s.write_leb_u32(u32(t.results.size()));
      for (ValType r : t.results) s.write_u8(u8(r));
    }
    write_section(out, SectionId::kType, s);
  }

  if (!imports_.empty()) {
    ByteWriter s;
    s.write_leb_u32(u32(imports_.size()));
    for (const auto& imp : imports_) {
      s.write_name(imp.module);
      s.write_name(imp.name);
      s.write_u8(0);  // func
      s.write_leb_u32(imp.type_index);
    }
    write_section(out, SectionId::kImport, s);
  }

  if (!funcs_.empty()) {
    ByteWriter s;
    s.write_leb_u32(u32(funcs_.size()));
    for (const auto& f : funcs_) s.write_leb_u32(f.type_index);
    write_section(out, SectionId::kFunction, s);
  }

  if (has_table_) {
    ByteWriter s;
    s.write_leb_u32(1);
    s.write_u8(0x70);
    write_limits(s, Limits{table_min_, false, 0});
    write_section(out, SectionId::kTable, s);
  }

  if (has_memory_) {
    ByteWriter s;
    s.write_leb_u32(1);
    write_limits(s, memory_limits_);
    write_section(out, SectionId::kMemory, s);
  }

  if (!globals_.empty()) {
    ByteWriter s;
    s.write_leb_u32(u32(globals_.size()));
    for (const auto& g : globals_) {
      s.write_u8(u8(g.type));
      s.write_u8(g.mutable_ ? 1 : 0);
      switch (g.type) {
        case ValType::kI32:
          s.write_u8(u8(Op::kI32Const));
          s.write_leb_i32(i32(g.init_i));
          break;
        case ValType::kI64:
          s.write_u8(u8(Op::kI64Const));
          s.write_leb_i64(g.init_i);
          break;
        case ValType::kF32:
          s.write_u8(u8(Op::kF32Const));
          s.write_f32_le(f32(g.init_f));
          break;
        case ValType::kF64:
          s.write_u8(u8(Op::kF64Const));
          s.write_f64_le(g.init_f);
          break;
        default:
          fatal("unsupported global type in builder");
      }
      s.write_u8(u8(Op::kEnd));
    }
    write_section(out, SectionId::kGlobal, s);
  }

  {
    std::vector<Export> all = exports_;
    if (memory_exported_)
      all.push_back({memory_export_name_, ExternKind::kMemory, 0});
    if (!all.empty()) {
      ByteWriter s;
      s.write_leb_u32(u32(all.size()));
      for (const auto& e : all) {
        s.write_name(e.name);
        s.write_u8(u8(e.kind));
        s.write_leb_u32(e.index);
      }
      write_section(out, SectionId::kExport, s);
    }
  }

  if (start_.has_value()) {
    ByteWriter s;
    s.write_leb_u32(*start_);
    write_section(out, SectionId::kStart, s);
  }

  if (!elems_.empty()) {
    ByteWriter s;
    s.write_leb_u32(u32(elems_.size()));
    for (const auto& e : elems_) {
      s.write_leb_u32(0);  // active, table 0
      s.write_u8(u8(Op::kI32Const));
      s.write_leb_i32(i32(e.offset));
      s.write_u8(u8(Op::kEnd));
      s.write_leb_u32(u32(e.funcs.size()));
      for (u32 fi : e.funcs) s.write_leb_u32(fi);
    }
    write_section(out, SectionId::kElement, s);
  }

  if (!funcs_.empty()) {
    ByteWriter s;
    s.write_leb_u32(u32(funcs_.size()));
    for (const auto& f : funcs_) {
      ByteWriter body;
      // Compress locals into (count, type) runs.
      std::vector<std::pair<u32, ValType>> runs;
      for (ValType t : f.locals) {
        if (!runs.empty() && runs.back().second == t)
          ++runs.back().first;
        else
          runs.push_back({1, t});
      }
      body.write_leb_u32(u32(runs.size()));
      for (auto [n, t] : runs) {
        body.write_leb_u32(n);
        body.write_u8(u8(t));
      }
      body.write_bytes({f.code.data(), f.code.size()});
      s.write_leb_u32(u32(body.bytes().size()));
      s.write_bytes({body.bytes().data(), body.bytes().size()});
    }
    write_section(out, SectionId::kCode, s);
  }

  if (!datas_.empty()) {
    ByteWriter s;
    s.write_leb_u32(u32(datas_.size()));
    for (const auto& d : datas_) {
      s.write_leb_u32(0);  // active, memory 0
      s.write_u8(u8(Op::kI32Const));
      s.write_leb_i32(i32(d.offset));
      s.write_u8(u8(Op::kEnd));
      s.write_leb_u32(u32(d.bytes.size()));
      s.write_bytes({d.bytes.data(), d.bytes.size()});
    }
    write_section(out, SectionId::kData, s);
  }

  return out.take();
}

}  // namespace mpiwasm::wasm
