// Core WebAssembly type definitions (value types, function types, limits)
// following the Wasm 1.0 spec plus the 128-bit SIMD value type.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "support/common.h"

namespace mpiwasm::wasm {

/// Wasm value types. Binary encodings per spec: i32=0x7F i64=0x7E f32=0x7D
/// f64=0x7C v128=0x7B funcref=0x70.
enum class ValType : u8 {
  kI32 = 0x7F,
  kI64 = 0x7E,
  kF32 = 0x7D,
  kF64 = 0x7C,
  kV128 = 0x7B,
  kFuncRef = 0x70,
};

const char* val_type_name(ValType t);
bool is_num_type(ValType t);

/// Binary encoding of an empty block result type in block/loop/if.
constexpr u8 kBlockTypeEmpty = 0x40;

/// 128-bit SIMD value, viewable as any lane shape. Kept trivially default-
/// constructible so it can live inside the runtime's untyped Slot union;
/// value-initialize (`V128 v{};`) where zeroing matters.
struct V128 {
  alignas(16) u8 bytes[16];

  template <typename T, int N>
  T lane(int i) const {
    static_assert(sizeof(T) * N == 16);
    T v;
    std::memcpy(&v, bytes + i * sizeof(T), sizeof(T));
    return v;
  }
  template <typename T, int N>
  void set_lane(int i, T v) {
    static_assert(sizeof(T) * N == 16);
    std::memcpy(bytes + i * sizeof(T), &v, sizeof(T));
  }
  template <typename T>
  static V128 splat(T v) {
    V128 out;
    for (size_t i = 0; i < 16 / sizeof(T); ++i)
      std::memcpy(out.bytes + i * sizeof(T), &v, sizeof(T));
    return out;
  }
  bool operator==(const V128& o) const {
    return std::memcmp(bytes, o.bytes, 16) == 0;
  }
};

/// A function signature. Wasm MVP allows multiple results in the type
/// section, but our validator restricts function results to <= 1 (all
/// toolchain output satisfies this, matching the paper's C/C++ focus).
struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;
  bool operator==(const FuncType&) const = default;
  std::string to_string() const;
};

/// Memory/table limits (unit: 64KiB pages for memories, entries for tables).
/// `shared` is the threads-proposal flag (limits byte 0x03): a shared memory
/// must declare a max so its reservation never relocates under growth.
struct Limits {
  u32 min = 0;
  bool has_max = false;
  u32 max = 0;
  bool shared = false;
  bool operator==(const Limits&) const = default;
};

constexpr u32 kPageSize = 64 * 1024;
/// 32-bit address space cap: 65536 pages = 4GiB (paper §3.8 limitation).
constexpr u32 kMaxPages = 65536;

}  // namespace mpiwasm::wasm
