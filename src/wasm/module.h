// In-memory model of a decoded WebAssembly module (Wasm 1.0 structure,
// restricted to one table / one memory as in the MVP).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/common.h"
#include "wasm/types.h"

namespace mpiwasm::wasm {

enum class ExternKind : u8 { kFunc = 0, kTable = 1, kMemory = 2, kGlobal = 3 };

struct Import {
  std::string module;
  std::string name;
  ExternKind kind = ExternKind::kFunc;
  u32 type_index = 0;   // kFunc
  Limits limits;        // kTable/kMemory
  ValType global_type = ValType::kI32;  // kGlobal
  bool global_mutable = false;
};

struct Export {
  std::string name;
  ExternKind kind = ExternKind::kFunc;
  u32 index = 0;
};

/// A constant initializer expression; only `t.const` and `global.get` forms
/// are supported, per the MVP.
struct ConstExpr {
  enum class Kind : u8 { kI32, kI64, kF32, kF64, kGlobalGet } kind = Kind::kI32;
  i64 i = 0;
  f64 f = 0;
  u32 global_index = 0;
};

struct GlobalDef {
  ValType type = ValType::kI32;
  bool mutable_ = false;
  ConstExpr init;
};

struct FuncBody {
  // Locals in declaration order, expanded (one entry per local).
  std::vector<ValType> locals;
  // Raw instruction bytes (without the locals prelude), ending with End.
  std::vector<u8> code;
};

struct ElemSegment {
  u32 table_index = 0;
  ConstExpr offset;
  std::vector<u32> func_indices;
};

struct DataSegment {
  u32 memory_index = 0;
  ConstExpr offset;
  std::vector<u8> bytes;
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;
  // Type indices of locally defined functions (function index space =
  // imported funcs first, then these).
  std::vector<u32> functions;
  std::vector<Limits> tables;
  std::vector<Limits> memories;
  std::vector<GlobalDef> globals;
  std::vector<Export> exports;
  std::optional<u32> start;
  std::vector<ElemSegment> elems;
  std::vector<DataSegment> datas;
  std::vector<FuncBody> bodies;  // parallel to `functions`

  u32 num_imported_funcs() const;
  u32 num_imported_globals() const;
  u32 total_funcs() const { return num_imported_funcs() + u32(functions.size()); }
  /// Type of function `index` in the combined index space.
  const FuncType& func_type(u32 index) const;
  /// Export lookup; returns nullptr if absent.
  const Export* find_export(const std::string& name, ExternKind kind) const;
};

constexpr u32 kWasmMagic = 0x6d736100;  // "\0asm"
constexpr u32 kWasmVersion = 1;

enum class SectionId : u8 {
  kCustom = 0,
  kType = 1,
  kImport = 2,
  kFunction = 3,
  kTable = 4,
  kMemory = 5,
  kGlobal = 6,
  kExport = 7,
  kStart = 8,
  kElement = 9,
  kCode = 10,
  kData = 11,
};

}  // namespace mpiwasm::wasm
