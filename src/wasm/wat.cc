#include "wasm/wat.h"

#include <sstream>

#include "wasm/decoder.h"

namespace mpiwasm::wasm {
namespace {

void print_func_type(std::ostringstream& os, const FuncType& t) {
  if (!t.params.empty()) {
    os << " (param";
    for (ValType p : t.params) os << " " << val_type_name(p);
    os << ")";
  }
  if (!t.results.empty()) {
    os << " (result";
    for (ValType r : t.results) os << " " << val_type_name(r);
    os << ")";
  }
}

const char* kind_name(ExternKind k) {
  switch (k) {
    case ExternKind::kFunc: return "func";
    case ExternKind::kTable: return "table";
    case ExternKind::kMemory: return "memory";
    case ExternKind::kGlobal: return "global";
  }
  return "?";
}

void print_body(std::ostringstream& os, const Module& m, const FuncBody& body,
                const WatOptions& opts) {
  size_t lines = 0;
  int indent = 2;
  InstrReader reader({body.code.data(), body.code.size()});
  while (!reader.done()) {
    InstrView in = reader.next();
    if (in.op == Op::kEnd || in.op == Op::kElse) indent = std::max(1, indent - 1);
    if (opts.max_code_lines != 0 && lines >= opts.max_code_lines) {
      for (int i = 0; i < indent; ++i) os << "  ";
      os << ";; ...\n";
      return;
    }
    for (int i = 0; i < indent; ++i) os << "  ";
    os << op_name(in.op);
    switch (op_imm_kind(in.op)) {
      case ImmKind::kBlockType:
        if (in.block_type != kBlockTypeEmpty)
          os << " (result " << val_type_name(ValType(in.block_type)) << ")";
        break;
      case ImmKind::kLabel:
      case ImmKind::kLocalIdx:
      case ImmKind::kGlobalIdx:
      case ImmKind::kLaneIdx:
        os << " " << in.imm_i;
        break;
      case ImmKind::kFuncIdx:
        os << " " << in.imm_i;
        break;
      case ImmKind::kBrTable:
        for (u32 t : in.br_targets) os << " " << t;
        os << " " << in.br_default;
        break;
      case ImmKind::kCallIndirect:
        os << " (type " << in.indirect_type_index << ")";
        break;
      case ImmKind::kMemArg:
        if (in.mem_offset != 0) os << " offset=" << in.mem_offset;
        break;
      case ImmKind::kI32Const:
        os << " " << i32(in.imm_i);
        break;
      case ImmKind::kI64Const:
        os << " " << in.imm_i;
        break;
      case ImmKind::kF32Const:
        os << " " << in.imm_f32;
        break;
      case ImmKind::kF64Const:
        os << " " << in.imm_f64;
        break;
      case ImmKind::kV128Const: {
        os << " i64x2";
        os << " 0x" << std::hex << in.imm_v128.lane<u64, 2>(0) << " 0x"
           << in.imm_v128.lane<u64, 2>(1) << std::dec;
        break;
      }
      case ImmKind::kShuffle16:
        for (int k = 0; k < 16; ++k) os << " " << u32(in.imm_v128.bytes[k]);
        break;
      default:
        break;
    }
    os << "\n";
    ++lines;
    if (in.op == Op::kBlock || in.op == Op::kLoop || in.op == Op::kIf ||
        in.op == Op::kElse)
      ++indent;
  }
  (void)m;
}

}  // namespace

std::string to_wat(const Module& m, const WatOptions& opts) {
  std::ostringstream os;
  os << "(module\n";
  for (size_t i = 0; i < m.types.size(); ++i) {
    os << "  (type (;" << i << ";) (func";
    print_func_type(os, m.types[i]);
    os << "))\n";
  }
  for (const auto& imp : m.imports) {
    os << "  (import \"" << imp.module << "\" \"" << imp.name << "\" ("
       << kind_name(imp.kind);
    if (imp.kind == ExternKind::kFunc) os << " (type " << imp.type_index << ")";
    os << "))\n";
  }
  if (!m.memories.empty()) {
    os << "  (memory (;0;) " << m.memories[0].min;
    if (m.memories[0].has_max) os << " " << m.memories[0].max;
    os << ")\n";
  }
  if (!m.tables.empty())
    os << "  (table (;0;) " << m.tables[0].min << " funcref)\n";
  for (size_t i = 0; i < m.globals.size(); ++i) {
    const auto& g = m.globals[i];
    os << "  (global (;" << (m.num_imported_globals() + i) << ";) ";
    if (g.mutable_) os << "(mut " << val_type_name(g.type) << ")";
    else os << val_type_name(g.type);
    os << ")\n";
  }
  u32 imported = m.num_imported_funcs();
  for (size_t i = 0; i < m.functions.size(); ++i) {
    u32 fi = imported + u32(i);
    os << "  (func (;" << fi << ";) (type " << m.functions[i] << ")";
    print_func_type(os, m.types[m.functions[i]]);
    const FuncBody& body = m.bodies[i];
    if (!body.locals.empty()) {
      os << " (local";
      for (ValType t : body.locals) os << " " << val_type_name(t);
      os << ")";
    }
    os << "\n";
    if (opts.print_code) print_body(os, m, body, opts);
    os << "  )\n";
  }
  for (const auto& e : m.exports) {
    os << "  (export \"" << e.name << "\" (" << kind_name(e.kind) << " "
       << e.index << "))\n";
  }
  if (m.start.has_value()) os << "  (start " << *m.start << ")\n";
  for (const auto& d : m.datas) {
    os << "  (data (;0;) (i32.const " << d.offset.i << ") \""
       << d.bytes.size() << " bytes\")\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace mpiwasm::wasm
