#include "wasm/module.h"

#include <sstream>

namespace mpiwasm::wasm {

const char* val_type_name(ValType t) {
  switch (t) {
    case ValType::kI32: return "i32";
    case ValType::kI64: return "i64";
    case ValType::kF32: return "f32";
    case ValType::kF64: return "f64";
    case ValType::kV128: return "v128";
    case ValType::kFuncRef: return "funcref";
  }
  return "<bad>";
}

bool is_num_type(ValType t) {
  return t == ValType::kI32 || t == ValType::kI64 || t == ValType::kF32 ||
         t == ValType::kF64 || t == ValType::kV128;
}

std::string FuncType::to_string() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i) os << " ";
    os << val_type_name(params[i]);
  }
  os << ") -> (";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) os << " ";
    os << val_type_name(results[i]);
  }
  os << ")";
  return os.str();
}

u32 Module::num_imported_funcs() const {
  u32 n = 0;
  for (const auto& imp : imports)
    if (imp.kind == ExternKind::kFunc) ++n;
  return n;
}

u32 Module::num_imported_globals() const {
  u32 n = 0;
  for (const auto& imp : imports)
    if (imp.kind == ExternKind::kGlobal) ++n;
  return n;
}

const FuncType& Module::func_type(u32 index) const {
  u32 imported = num_imported_funcs();
  if (index < imported) {
    u32 seen = 0;
    for (const auto& imp : imports) {
      if (imp.kind != ExternKind::kFunc) continue;
      if (seen == index) return types.at(imp.type_index);
      ++seen;
    }
  }
  return types.at(functions.at(index - imported));
}

const Export* Module::find_export(const std::string& name,
                                  ExternKind kind) const {
  for (const auto& e : exports) {
    if (e.kind == kind && e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace mpiwasm::wasm
