// WebAssembly module validator.
//
// Implements the spec's abstract-interpretation typing algorithm (value
// stack + control stack with unreachable polymorphism) over the opcode
// subset in opcodes.h. All modules pass through here before compilation;
// the engines assume validated input (paper §2.1: static typing is what
// lets the stack semantics be translated to registers).
//
// Restrictions (checked here, matching the toolchain's output):
//   - block types: empty or a single result value (no type-indexed blocks)
//   - function results: at most one value
//   - at most one table and one memory
#pragma once

#include <string>

#include "wasm/module.h"

namespace mpiwasm::wasm {

struct ValidationResult {
  bool ok = false;
  std::string error;  // "func[3]: type mismatch ..." style
};

ValidationResult validate_module(const Module& m);

}  // namespace mpiwasm::wasm
