// WebAssembly binary format decoder (Wasm 1.0 + bulk-memory + SIMD subset).
//
// `decode_module` is the module-level entry point used by the embedder and
// tools; `InstrReader` is the shared instruction stream walker used by the
// validator, the compilers, and the WAT printer.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/byte_buffer.h"
#include "wasm/module.h"
#include "wasm/opcodes.h"

namespace mpiwasm::wasm {

struct DecodeResult {
  std::optional<Module> module;
  std::string error;
  bool ok() const { return module.has_value(); }
};

/// Decodes a full binary module. Never throws; malformed input yields an
/// error string (tested by the failure-injection suite).
DecodeResult decode_module(std::span<const u8> bytes);

/// One decoded instruction with its immediates.
struct InstrView {
  Op op = Op::kNop;
  size_t pc = 0;       // byte offset of the opcode
  size_t next_pc = 0;  // byte offset just past the instruction

  i64 imm_i = 0;       // int consts / label / func / local / global / lane
  f32 imm_f32 = 0;
  f64 imm_f64 = 0;
  V128 imm_v128{};
  u32 mem_align = 0;
  u32 mem_offset = 0;
  u32 indirect_type_index = 0;
  u8 block_type = kBlockTypeEmpty;  // kBlockTypeEmpty or a ValType byte
  std::vector<u32> br_targets;      // br_table targets
  u32 br_default = 0;

  u32 idx() const { return u32(imm_i); }
};

/// Sequential decoder over a function body's instruction bytes.
/// Throws DecodeError on malformed input.
class InstrReader {
 public:
  explicit InstrReader(std::span<const u8> code) : r_(code) {}
  bool done() const { return r_.done(); }
  size_t pos() const { return r_.pos(); }
  InstrView next();

 private:
  ByteReader r_;
};

}  // namespace mpiwasm::wasm
