// Programmatic Wasm module construction: an assembler-level API that emits
// spec-conformant binary modules.
//
// This is the foundation of our WASI-SDK substitute (DESIGN.md §2): the
// paper compiles C/C++ MPI applications with a customized WASI-SDK; we
// author the same benchmark kernels directly against this builder and emit
// real .wasm binaries, which then flow through the decoder/validator/
// engines exactly as externally produced modules would.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/byte_buffer.h"
#include "wasm/module.h"
#include "wasm/opcodes.h"

namespace mpiwasm::wasm {

class ModuleBuilder;

/// Emits one function body. Obtained from ModuleBuilder::begin_func; the
/// function is finalized when `end_func` (or the final `end()` matching the
/// implicit function block) has been emitted.
class FunctionBuilder {
 public:
  u32 index() const { return func_index_; }

  /// Adds a local variable (beyond params); returns its local index.
  u32 add_local(ValType t);
  u32 num_params() const { return num_params_; }

  // --- Raw instruction emission -----------------------------------------
  void op(Op o);
  void i32_const(i32 v);
  void i64_const(i64 v);
  void f32_const(f32 v);
  void f64_const(f64 v);
  void v128_const(const V128& v);
  void local_get(u32 idx);
  void local_set(u32 idx);
  void local_tee(u32 idx);
  void global_get(u32 idx);
  void global_set(u32 idx);
  void call(u32 func_index);
  void call_indirect(u32 type_index);
  /// Loads/stores: `o` must be a memory opcode; align defaults to natural.
  void mem_op(Op o, u32 offset = 0, i32 align_log2 = -1);
  void block(u8 block_type = kBlockTypeEmpty);
  void block(ValType result);
  void loop(u8 block_type = kBlockTypeEmpty);
  void if_(u8 block_type = kBlockTypeEmpty);
  void if_(ValType result);
  void else_();
  void end();
  void br(u32 depth);
  void br_if(u32 depth);
  void br_table(const std::vector<u32>& targets, u32 default_target);
  void ret() { op(Op::kReturn); }
  void lane_op(Op o, u8 lane);
  /// i8x16.shuffle with its 16 lane-selector bytes (each must be < 32).
  void i8x16_shuffle(const u8 (&lanes)[16]);

  // --- Structured sugar used heavily by the kernel toolchain -------------
  /// Emits `for (local = start; local < limit_local; local += step)` around
  /// `body`. The loop counter must be an i32 local; `limit` is a local too.
  void for_loop_i32(u32 counter_local, i32 start, u32 limit_local, i32 step,
                    const std::function<void()>& body);
  /// while (local_get(cond_local) != 0) { body }
  void while_i32(const std::function<void()>& cond,
                 const std::function<void()>& body);

 private:
  friend class ModuleBuilder;
  FunctionBuilder(ModuleBuilder* parent, u32 func_index, u32 num_params);

  ModuleBuilder* parent_;
  u32 func_index_;
  u32 num_params_;
  std::vector<ValType> locals_;
  ByteWriter code_;
  int open_blocks_ = 1;  // implicit function block
  bool finished_ = false;
};

/// Builds a complete module. Usage:
///   ModuleBuilder b;
///   u32 imp = b.import_func("env", "MPI_Init", {{I32,I32},{I32}});
///   auto& f = b.begin_func({{}, {}}, "_start");
///   ... emit ... f.end();  // closes the function
///   std::vector<u8> bytes = b.build();
class ModuleBuilder {
 public:
  ModuleBuilder();
  ~ModuleBuilder();
  ModuleBuilder(const ModuleBuilder&) = delete;
  ModuleBuilder& operator=(const ModuleBuilder&) = delete;

  /// Adds (or reuses) a function type; returns type index.
  u32 add_type(const FuncType& t);

  /// Declares an imported function. All imports must be declared before the
  /// first begin_func so the function index space is final.
  u32 import_func(const std::string& module, const std::string& name,
                  const FuncType& type);

  /// Declares the module's linear memory (at most one). A shared memory
  /// (threads proposal) requires a max.
  void add_memory(u32 min_pages, u32 max_pages = 0, bool has_max = false,
                  bool shared = false);
  void export_memory(const std::string& name = "memory");

  u32 add_global(ValType type, bool mutable_, i64 init_i = 0, f64 init_f = 0);
  void export_global(const std::string& name, u32 index);

  void add_table(u32 min_entries);
  void add_elem(u32 offset, const std::vector<u32>& func_indices);

  void add_data(u32 offset, std::span<const u8> bytes);
  void add_data_string(u32 offset, const std::string& s);

  /// Starts a new function; returns a builder whose lifetime is owned here.
  FunctionBuilder& begin_func(const FuncType& type,
                              const std::string& export_name = "");
  void export_func(const std::string& name, u32 func_index);
  void set_start(u32 func_index);

  u32 num_imported_funcs() const { return u32(imports_.size()); }

  /// Serializes the module to the Wasm binary format.
  std::vector<u8> build() const;

 private:
  friend class FunctionBuilder;

  struct ImportedFunc {
    std::string module, name;
    u32 type_index;
  };
  struct DefinedFunc {
    u32 type_index;
    std::vector<ValType> locals;
    std::vector<u8> code;
  };
  struct GlobalInit {
    ValType type;
    bool mutable_;
    i64 init_i;
    f64 init_f;
  };
  struct Data {
    u32 offset;
    std::vector<u8> bytes;
  };
  struct Elem {
    u32 offset;
    std::vector<u32> funcs;
  };

  void finish_func(FunctionBuilder& fb);

  std::vector<FuncType> types_;
  std::vector<ImportedFunc> imports_;
  std::vector<DefinedFunc> funcs_;
  std::vector<u32> func_type_indices_;
  bool has_memory_ = false;
  Limits memory_limits_;
  bool memory_exported_ = false;
  std::string memory_export_name_;
  std::vector<GlobalInit> globals_;
  std::vector<Export> exports_;
  bool has_table_ = false;
  u32 table_min_ = 0;
  std::vector<Elem> elems_;
  std::vector<Data> datas_;
  std::optional<u32> start_;
  std::vector<std::unique_ptr<FunctionBuilder>> open_funcs_;
};

}  // namespace mpiwasm::wasm
