// Optimizing ("LLVM"-analogue) tier: dataflow passes over Baseline RegCode.
//
// Passes, per function, iterated to a small fixpoint:
//   1. block-local copy propagation
//   2. block-local constant folding + immediate fusion (AddImm/ShlImm/...)
//   3. compare-and-branch fusion (BrIfI32LtS etc.) and f64 multiply-add
//   4. liveness-based dead code elimination (global dataflow)
//   5. branch threading + Nop compaction with target remapping
//
// This is what buys the Optimizing tier its runtime edge in Table 1: the
// dispatch-loop executor's cost is proportional to executed instructions,
// and these passes remove 30-60% of them in hot loops.
#pragma once

#include "runtime/regcode.h"

namespace mpiwasm::rt {

struct OptStats {
  u64 instrs_before = 0;
  u64 instrs_after = 0;
  u32 rounds = 0;
};

/// Pass configuration. The LightOpt tier (Cranelift analogue) runs one
/// round without instruction fusion; the full Optimizing tier (LLVM
/// analogue) iterates to a fixpoint with fusion enabled.
struct OptOptions {
  u32 max_rounds = 4;
  bool fuse = true;  // compare/branch, imm, and mul-add fusion
  static OptOptions light() { return {1, false}; }
  static OptOptions full() { return {4, true}; }
};

OptStats optimize_function(RFunc& f, const OptOptions& opts = OptOptions::full());
OptStats optimize_module(RModule& m, const OptOptions& opts = OptOptions::full());

}  // namespace mpiwasm::rt
