// Optimizing ("LLVM"-analogue) tier: dataflow passes over Baseline RegCode.
//
// Passes, per function, iterated to a small fixpoint:
//   1. block-local copy propagation
//   2. block-local constant folding + immediate fusion (AddImm/ShlImm/...)
//      + mul-by-power-of-two strength reduction
//   3. compare-and-branch fusion (BrIfI32LtS etc.) and f32/f64 multiply-add
//   4. superinstruction fusion: load+op, op+store, cmp+select, and
//      indexed-address (base + (index << scale) + imm) forms
//   5. liveness-based dead code elimination (global dataflow)
//   6. branch threading + Nop compaction with target remapping
// then, once, after the fixpoint:
//   7. bounds-check hoisting: counted loops with provably affine access
//      patterns are versioned behind a single kMemGuard; the fast copy runs
//      unchecked k*Raw memory ops, the slow copy keeps the original
//      per-access checks so out-of-bounds traps still fire at exactly the
//      original point.
//
// This is what buys the Optimizing tier its runtime edge in Table 1: the
// dispatch-loop executor's cost is proportional to executed instructions,
// and these passes remove 30-60% of them in hot loops — and, with hoisting,
// the per-access bounds checks Jangda et al. single out.
#pragma once

#include "runtime/regcode.h"

namespace mpiwasm::rt {

struct OptStats {
  u64 instrs_before = 0;
  u64 instrs_after = 0;
  u32 rounds = 0;
  u32 fused_super = 0;     // superinstructions formed (load+op, select, ...)
  u32 guards_hoisted = 0;  // loops versioned behind a kMemGuard
};

/// Pass configuration. The LightOpt tier (Cranelift analogue) runs one
/// round without instruction fusion; the full Optimizing tier (LLVM
/// analogue) iterates to a fixpoint with fusion, superinstructions, and
/// bounds-check hoisting enabled.
struct OptOptions {
  u32 max_rounds = 4;
  bool fuse = true;          // compare/branch, imm, and mul-add fusion
  bool fuse_super = true;    // load+op, op+store, cmp+select, indexed addr
  bool hoist_bounds = true;  // loop versioning behind kMemGuard + raw ops
  /// SIMD-specific work: v128 splat/binop constant folding, the v128
  /// load+op / op+store superinstruction rows, and v128 indexed addressing
  /// (kV128LoadIx/StoreIx). Plain v128 execution is unaffected — this only
  /// gates the optimizer's SIMD-aware rewrites (MPIWASM_SIMD ablation).
  bool simd = true;
  static OptOptions light() { return {1, false, false, false, true}; }
  static OptOptions full() { return {4, true, true, true, true}; }
};

OptStats optimize_function(RFunc& f, const OptOptions& opts = OptOptions::full());
OptStats optimize_module(RModule& m, const OptOptions& opts = OptOptions::full());

}  // namespace mpiwasm::rt
