// Runtime value representation and guest-visible traps.
#pragma once

#include <string>
#include <type_traits>
#include <utility>

#include "support/common.h"
#include "wasm/types.h"

namespace mpiwasm::rt {

using wasm::V128;
using wasm::ValType;

/// Untyped 16-byte register slot. The validator guarantees type-correct
/// access, so execution frames store raw slots (paper §2.1: static typing
/// allows translating stack semantics to a register machine).
struct alignas(16) Slot {
  union {
    u32 u32v;
    i32 i32v;
    u64 u64v;
    i64 i64v;
    f32 f32v;
    f64 f64v;
    V128 v128v;
  };
};
static_assert(sizeof(Slot) == 16);
static_assert(std::is_trivially_copyable_v<Slot>);

/// A typed value crossing the embedder/module boundary.
struct Value {
  ValType type = ValType::kI32;
  Slot slot{};

  static Value from_i32(i32 v) { Value x; x.type = ValType::kI32; x.slot.i32v = v; return x; }
  static Value from_u32(u32 v) { Value x; x.type = ValType::kI32; x.slot.u32v = v; return x; }
  static Value from_i64(i64 v) { Value x; x.type = ValType::kI64; x.slot.i64v = v; return x; }
  static Value from_f32(f32 v) { Value x; x.type = ValType::kF32; x.slot.f32v = v; return x; }
  static Value from_f64(f64 v) { Value x; x.type = ValType::kF64; x.slot.f64v = v; return x; }
  static Value from_v128(const V128& v) { Value x; x.type = ValType::kV128; x.slot.v128v = v; return x; }

  i32 as_i32() const { return slot.i32v; }
  u32 as_u32() const { return slot.u32v; }
  i64 as_i64() const { return slot.i64v; }
  f32 as_f32() const { return slot.f32v; }
  f64 as_f64() const { return slot.f64v; }
};

enum class TrapKind : u8 {
  kUnreachable,
  kMemoryOutOfBounds,
  kIntegerDivByZero,
  kIntegerOverflow,
  kInvalidConversion,   // float->int of NaN / out of range
  kIndirectCallTypeMismatch,
  kUndefinedTableElement,
  kCallStackExhausted,
  kHostError,           // raised by host functions (WASI / MPI layer)
  kUnalignedAtomic,     // atomic access at a non-naturally-aligned address
};

const char* trap_kind_name(TrapKind k);

/// Guest trap: unwinds the Wasm stack out to the embedder (paper §2.2: the
/// embedder handles faults; the module cannot corrupt embedder state).
class Trap : public std::runtime_error {
 public:
  Trap(TrapKind kind, std::string message)
      : std::runtime_error(std::string(trap_kind_name(kind)) + ": " + message),
        kind_(kind) {}
  TrapKind kind() const { return kind_; }

 private:
  TrapKind kind_;
};

/// Raised by the WASI proc_exit host call; carries the guest exit code.
class ProcExit : public std::exception {
 public:
  explicit ProcExit(i32 code) : code_(code) {}
  i32 code() const { return code_; }
  const char* what() const noexcept override { return "proc_exit"; }

 private:
  i32 code_;
};

}  // namespace mpiwasm::rt
