// Interpreter tier: predecoded-bytecode stack machine.
//
// "Compilation" is a single predecode pass that strips LEB decoding out of
// the hot loop and resolves structured control flow (block/loop/if/else/
// end and all br forms) to absolute instruction targets with stack-height
// repair info. Execution keeps Wasm's operand stack explicit — the honest
// low-compile-cost / high-run-cost end of the Table 1 trade-off.
#pragma once

#include <vector>

#include "wasm/decoder.h"
#include "wasm/module.h"

namespace mpiwasm::rt {

/// Branch metadata attached to control instructions after predecode.
struct PreBr {
  u32 target = 0;    // absolute instruction index to jump to
  u32 height = 0;    // operand-stack height at the target label
  u8 results = 0;    // values carried across the branch (0 or 1)
  u32 table = UINT32_MAX;  // br_table: index into PreFunc::tables
};

struct PreFunc {
  u32 num_params = 0;
  u32 num_locals = 0;  // params + declared locals
  bool has_result = false;
  u32 max_stack = 0;   // operand slots needed (excludes locals)
  std::vector<wasm::InstrView> code;
  std::vector<PreBr> br;                 // parallel to code
  std::vector<std::vector<PreBr>> tables;  // br_table target lists (default last)
};

struct PreModule {
  std::vector<PreFunc> funcs;
};

/// Predecodes defined function `defined_index` of a validated module.
PreFunc predecode_function(const wasm::Module& m, u32 defined_index);
PreModule predecode_module(const wasm::Module& m);

class Instance;
struct Slot;

/// Executes a predecoded function. `frame` holds locals followed by the
/// operand stack area (num_locals + max_stack slots).
void interp_exec(Instance& inst, const PreFunc& f, Slot* frame);

}  // namespace mpiwasm::rt
