#include "runtime/regcode.h"

#include <sstream>

namespace mpiwasm::rt {

const char* rop_name(ROp op) {
  switch (op) {
    case ROp::kNop: return "nop";
    case ROp::kMov: return "mov";
    case ROp::kConst: return "const";
    case ROp::kConstV128: return "const.v128";
    case ROp::kSelect: return "select";
    case ROp::kGlobalGet: return "global.get";
    case ROp::kGlobalSet: return "global.set";
    case ROp::kBr: return "br";
    case ROp::kBrIf: return "br_if";
    case ROp::kBrIfNot: return "br_if_not";
    case ROp::kBrTable: return "br_table";
    case ROp::kReturn: return "return";
    case ROp::kReturnVoid: return "return.void";
    case ROp::kCall: return "call";
    case ROp::kCallIndirect: return "call_indirect";
    case ROp::kUnreachable: return "unreachable";
    case ROp::kMemorySize: return "memory.size";
    case ROp::kMemoryGrow: return "memory.grow";
    case ROp::kMemoryCopy: return "memory.copy";
    case ROp::kMemoryFill: return "memory.fill";
    case ROp::kI32AddImm: return "i32.add_imm";
    case ROp::kI64AddImm: return "i64.add_imm";
    case ROp::kI32ShlImm: return "i32.shl_imm";
    case ROp::kI32ShrUImm: return "i32.shr_u_imm";
    case ROp::kI32AndImm: return "i32.and_imm";
    case ROp::kI32MulImm: return "i32.mul_imm";
    case ROp::kBrIfI32Eq: return "br_if.i32.eq";
    case ROp::kBrIfI32Ne: return "br_if.i32.ne";
    case ROp::kBrIfI32LtS: return "br_if.i32.lt_s";
    case ROp::kBrIfI32LtU: return "br_if.i32.lt_u";
    case ROp::kBrIfI32GtS: return "br_if.i32.gt_s";
    case ROp::kBrIfI32GtU: return "br_if.i32.gt_u";
    case ROp::kBrIfI32LeS: return "br_if.i32.le_s";
    case ROp::kBrIfI32LeU: return "br_if.i32.le_u";
    case ROp::kBrIfI32GeS: return "br_if.i32.ge_s";
    case ROp::kBrIfI32GeU: return "br_if.i32.ge_u";
    case ROp::kF64MulAdd: return "f64.mul_add";
    default: return nullptr;
  }
}

std::string RFunc::to_string() const {
  std::ostringstream os;
  os << "func params=" << num_params << " locals=" << num_locals
     << " regs=" << num_regs << " result=" << (has_result ? 1 : 0) << "\n";
  for (size_t i = 0; i < code.size(); ++i) {
    const RInstr& in = code[i];
    os << "  [" << i << "] ";
    if (const char* n = rop_name(in.op)) os << n;
    else os << "rop#" << u16(in.op);
    os << " a=" << in.a << " b=" << in.b << " c=" << in.c;
    if (in.d != 0) os << " d=" << in.d;
    os << " imm=" << i64(in.imm) << "\n";
  }
  return os.str();
}

}  // namespace mpiwasm::rt
