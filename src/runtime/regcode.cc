#include "runtime/regcode.h"

#include <sstream>

namespace mpiwasm::rt {

const char* rop_name(ROp op) {
  switch (op) {
    case ROp::kNop: return "nop";
    case ROp::kMov: return "mov";
    case ROp::kConst: return "const";
    case ROp::kConstV128: return "const.v128";
    case ROp::kSelect: return "select";
    case ROp::kGlobalGet: return "global.get";
    case ROp::kGlobalSet: return "global.set";
    case ROp::kBr: return "br";
    case ROp::kBrIf: return "br_if";
    case ROp::kBrIfNot: return "br_if_not";
    case ROp::kBrTable: return "br_table";
    case ROp::kReturn: return "return";
    case ROp::kReturnVoid: return "return.void";
    case ROp::kCall: return "call";
    case ROp::kCallIndirect: return "call_indirect";
    case ROp::kUnreachable: return "unreachable";
    case ROp::kMemorySize: return "memory.size";
    case ROp::kMemoryGrow: return "memory.grow";
    case ROp::kMemoryCopy: return "memory.copy";
    case ROp::kMemoryFill: return "memory.fill";
    case ROp::kI32AddImm: return "i32.add_imm";
    case ROp::kI64AddImm: return "i64.add_imm";
    case ROp::kI32ShlImm: return "i32.shl_imm";
    case ROp::kI32ShrUImm: return "i32.shr_u_imm";
    case ROp::kI32AndImm: return "i32.and_imm";
    case ROp::kI32MulImm: return "i32.mul_imm";
    case ROp::kBrIfI32Eq: return "br_if.i32.eq";
    case ROp::kBrIfI32Ne: return "br_if.i32.ne";
    case ROp::kBrIfI32LtS: return "br_if.i32.lt_s";
    case ROp::kBrIfI32LtU: return "br_if.i32.lt_u";
    case ROp::kBrIfI32GtS: return "br_if.i32.gt_s";
    case ROp::kBrIfI32GtU: return "br_if.i32.gt_u";
    case ROp::kBrIfI32LeS: return "br_if.i32.le_s";
    case ROp::kBrIfI32LeU: return "br_if.i32.le_u";
    case ROp::kBrIfI32GeS: return "br_if.i32.ge_s";
    case ROp::kBrIfI32GeU: return "br_if.i32.ge_u";
    case ROp::kF64MulAdd: return "f64.mul_add";
    case ROp::kF32MulAdd: return "f32.mul_add";
    case ROp::kSelectI32Eq: return "select.i32.eq";
    case ROp::kSelectI32Ne: return "select.i32.ne";
    case ROp::kSelectI32LtS: return "select.i32.lt_s";
    case ROp::kSelectI32LtU: return "select.i32.lt_u";
    case ROp::kSelectI32GtS: return "select.i32.gt_s";
    case ROp::kSelectI32GtU: return "select.i32.gt_u";
    case ROp::kSelectF64Lt: return "select.f64.lt";
    case ROp::kSelectF64Gt: return "select.f64.gt";
    case ROp::kI32LoadAdd: return "i32.load_add";
    case ROp::kI64LoadAdd: return "i64.load_add";
    case ROp::kF32LoadAdd: return "f32.load_add";
    case ROp::kF64LoadAdd: return "f64.load_add";
    case ROp::kF32LoadMul: return "f32.load_mul";
    case ROp::kF64LoadMul: return "f64.load_mul";
    case ROp::kI32x4LoadAdd: return "i32x4.load_add";
    case ROp::kF32x4LoadAdd: return "f32x4.load_add";
    case ROp::kF32x4LoadMul: return "f32x4.load_mul";
    case ROp::kF64x2LoadAdd: return "f64x2.load_add";
    case ROp::kF64x2LoadMul: return "f64x2.load_mul";
    case ROp::kI32AddStore: return "i32.add_store";
    case ROp::kF32AddStore: return "f32.add_store";
    case ROp::kF64AddStore: return "f64.add_store";
    case ROp::kF64MulStore: return "f64.mul_store";
    case ROp::kI32x4AddStore: return "i32x4.add_store";
    case ROp::kF32x4AddStore: return "f32x4.add_store";
    case ROp::kF64x2AddStore: return "f64x2.add_store";
    case ROp::kF64x2MulStore: return "f64x2.mul_store";
    case ROp::kI32LoadIx: return "i32.load_ix";
    case ROp::kI64LoadIx: return "i64.load_ix";
    case ROp::kF32LoadIx: return "f32.load_ix";
    case ROp::kF64LoadIx: return "f64.load_ix";
    case ROp::kV128LoadIx: return "v128.load_ix";
    case ROp::kI32StoreIx: return "i32.store_ix";
    case ROp::kI64StoreIx: return "i64.store_ix";
    case ROp::kF32StoreIx: return "f32.store_ix";
    case ROp::kF64StoreIx: return "f64.store_ix";
    case ROp::kV128StoreIx: return "v128.store_ix";
    case ROp::kMemGuard: return "mem.guard";
    case ROp::kI32LoadRaw: return "i32.load_raw";
    case ROp::kI64LoadRaw: return "i64.load_raw";
    case ROp::kF32LoadRaw: return "f32.load_raw";
    case ROp::kF64LoadRaw: return "f64.load_raw";
    case ROp::kV128LoadRaw: return "v128.load_raw";
    case ROp::kI32StoreRaw: return "i32.store_raw";
    case ROp::kI64StoreRaw: return "i64.store_raw";
    case ROp::kF32StoreRaw: return "f32.store_raw";
    case ROp::kF64StoreRaw: return "f64.store_raw";
    case ROp::kV128StoreRaw: return "v128.store_raw";
    case ROp::kI32LoadIxRaw: return "i32.load_ix_raw";
    case ROp::kI64LoadIxRaw: return "i64.load_ix_raw";
    case ROp::kF32LoadIxRaw: return "f32.load_ix_raw";
    case ROp::kF64LoadIxRaw: return "f64.load_ix_raw";
    case ROp::kV128LoadIxRaw: return "v128.load_ix_raw";
    case ROp::kI32StoreIxRaw: return "i32.store_ix_raw";
    case ROp::kI64StoreIxRaw: return "i64.store_ix_raw";
    case ROp::kF32StoreIxRaw: return "f32.store_ix_raw";
    case ROp::kF64StoreIxRaw: return "f64.store_ix_raw";
    case ROp::kV128StoreIxRaw: return "v128.store_ix_raw";
    default: return nullptr;
  }
}

std::string RFunc::to_string() const {
  std::ostringstream os;
  os << "func params=" << num_params << " locals=" << num_locals
     << " regs=" << num_regs << " result=" << (has_result ? 1 : 0) << "\n";
  for (size_t i = 0; i < code.size(); ++i) {
    const RInstr& in = code[i];
    os << "  [" << i << "] ";
    if (const char* n = rop_name(in.op)) os << n;
    else os << "rop#" << u16(in.op);
    os << " a=" << in.a << " b=" << in.b << " c=" << in.c;
    if (in.d != 0) os << " d=" << in.d;
    os << " imm=" << i64(in.imm) << "\n";
  }
  return os.str();
}

}  // namespace mpiwasm::rt
