#include "runtime/jit_arena.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "runtime/jit_support.h"
#include "support/log.h"

namespace mpiwasm::rt {

namespace {
constexpr size_t kChunkBytes = 256 * 1024;
}

/// One dual-mapped (or RWX-fallback) region; code is bump-allocated.
struct JitArena::Chunk {
  u8* rw = nullptr;   // write view
  u8* rx = nullptr;   // exec view (== rw in RWX fallback)
  size_t size = 0;
  size_t top = 0;
  int fd = -1;

  ~Chunk() {
    if (rw != nullptr && rw != MAP_FAILED) munmap(rw, size);
    if (rx != nullptr && rx != MAP_FAILED && rx != rw) munmap(rx, size);
    if (fd >= 0) close(fd);
  }
};

JitArena::JitArena() = default;
JitArena::~JitArena() = default;

JitArena::Chunk* JitArena::grow_chunk(size_t min_bytes) {
  size_t size = kChunkBytes;
  while (size < min_bytes) size *= 2;

  auto chunk = std::make_unique<Chunk>();
  chunk->size = size;
#ifdef __linux__
  chunk->fd = memfd_create("mpiwasm-jit", 0);
#endif
  if (chunk->fd >= 0 && ftruncate(chunk->fd, off_t(size)) == 0) {
    chunk->rw = static_cast<u8*>(mmap(nullptr, size, PROT_READ | PROT_WRITE,
                                      MAP_SHARED, chunk->fd, 0));
    chunk->rx = static_cast<u8*>(mmap(nullptr, size, PROT_READ | PROT_EXEC,
                                      MAP_SHARED, chunk->fd, 0));
    if (chunk->rw != MAP_FAILED && chunk->rx != MAP_FAILED) {
      chunks_.push_back(std::move(chunk));
      return chunks_.back().get();
    }
  }
  // Fallback: single anonymous RWX mapping (no dual-view W^X, but keeps the
  // JIT functional where memfd or the double map is denied).
  if (chunk->fd >= 0) {
    close(chunk->fd);
    chunk->fd = -1;
  }
  chunk->rw = static_cast<u8*>(mmap(nullptr, size,
                                    PROT_READ | PROT_WRITE | PROT_EXEC,
                                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
  if (chunk->rw == MAP_FAILED) {
    MW_DEBUG("jit arena: mmap failed; JIT disabled for this module");
    return nullptr;
  }
  chunk->rx = chunk->rw;
  chunks_.push_back(std::move(chunk));
  return chunks_.back().get();
}

bool JitArena::available() const {
  // The arena allocates lazily; availability is only definitively false
  // after a failed grow, which install() reports by returning null.
  return true;
}

void (*JitArena::install(const JitBlob& blob))(void*) {
  if (blob.code.empty()) return nullptr;
  const size_t need = (blob.code.size() + 15) & ~size_t(15);

  Chunk* c = chunks_.empty() ? nullptr : chunks_.back().get();
  if (c == nullptr || c->top + need > c->size) c = grow_chunk(need);
  if (c == nullptr) return nullptr;

  u8* dst_rw = c->rw + c->top;
  u8* dst_rx = c->rx + c->top;
  std::memcpy(dst_rw, blob.code.data(), blob.code.size());

  // Patch helper addresses for this process (cache-loaded blobs carry the
  // emitting process's addresses, which are meaningless here).
  for (const JitReloc& rel : blob.relocs) {
    if (u64(rel.offset) + 8 > blob.code.size() ||
        rel.helper >= u32(JitHelperId::kCount))
      return nullptr;
    u64 addr = u64(reinterpret_cast<uintptr_t>(jit_helper_address(rel.helper)));
    std::memcpy(dst_rw + rel.offset, &addr, 8);
  }
  c->top += need;
  code_bytes_ += blob.code.size();
  return reinterpret_cast<void (*)(void*)>(dst_rx);
}

}  // namespace mpiwasm::rt
