#include "runtime/engine.h"

#include <cstdlib>

#include "runtime/cache.h"
#include "runtime/exec.h"
#include "runtime/instance.h"
#include "runtime/jit_x64.h"
#include "runtime/lowering.h"
#include "runtime/optimizer.h"
#include "support/log.h"
#include "support/timing.h"
#include "support/trace.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::rt {

const char* tier_name(EngineTier tier) {
  switch (tier) {
    case EngineTier::kInterp: return "interp";
    case EngineTier::kBaseline: return "baseline";
    case EngineTier::kLightOpt: return "lightopt";
    case EngineTier::kOptimizing: return "optimizing";
    case EngineTier::kTiered: return "tiered";
    case EngineTier::kJit: return "jit";
  }
  return "?";
}

bool simd_enabled_from_env() {
  static const bool enabled = [] {
    const char* v = std::getenv("MPIWASM_SIMD");
    if (v == nullptr) return true;
    std::string s(v);
    return !(s == "0" || s == "false" || s == "off");
  }();
  return enabled;
}

bool threads_enabled_from_env() {
  static const bool enabled = [] {
    const char* v = std::getenv("MPIWASM_THREADS");
    if (v == nullptr) return true;
    std::string s(v);
    return !(s == "0" || s == "false" || s == "off");
  }();
  return enabled;
}

namespace {

/// Cache tag for a compiled artifact. The optimizing tier's ablation flags
/// change the generated code, so they are part of the key — a warm cache
/// must never serve fused/hoisted code to a run that disabled those passes
/// (or vice versa). Default flags keep the plain tier name.
std::string cache_tag(EngineTier tier, bool superinstructions,
                      bool hoist_bounds, bool simd) {
  std::string tag = tier_name(tier);
  if (tier == EngineTier::kOptimizing || tier == EngineTier::kJit) {
    if (!superinstructions) tag += "-nosuper";
    if (!hoist_bounds) tag += "-nohoist";
    if (!simd) tag += "-nosimd";
  }
  if (!threads_enabled_from_env()) tag += "-nothreads";
  return tag;
}

/// Gives `rf` a native entry point: reuses a cache-loaded blob when its CPU
/// features are a subset of the host's and its layout hash matches this
/// build, recompiles otherwise, and installs into the module's arena.
/// On any failure the blob is dropped and the function stays on the
/// threaded interpreter (returns false). Caller must hold whatever lock
/// serializes arena installs for `cm`.
bool attach_jit_entry(const CompiledModule& cm, RFunc& rf) {
  const u32 host = jit_cpu_features();
  if (rf.jit != nullptr && ((rf.jit->cpu_features & ~host) != 0 ||
                            rf.jit->layout_hash != jit_layout_hash())) {
    MW_DEBUG("jit: cached blob rejected (feature/layout mismatch)");
    rf.jit = nullptr;  // stale blob: recompile below
  }
  if (rf.jit == nullptr) rf.jit = jit_compile_function(rf);
  if (rf.jit == nullptr) {
    cm.jit_fallback_funcs.fetch_add(1, std::memory_order_relaxed);
    MW_TRACE_INSTANT("engine", "jit.fallback");
    return false;
  }
  if (cm.jit_arena == nullptr) cm.jit_arena = std::make_unique<JitArena>();
  rf.jit_entry = cm.jit_arena->install(*rf.jit);
  if (rf.jit_entry == nullptr) {
    rf.jit = nullptr;
    cm.jit_fallback_funcs.fetch_add(1, std::memory_order_relaxed);
    MW_TRACE_INSTANT("engine", "jit.fallback");
    return false;
  }
  cm.jit_funcs.fetch_add(1, std::memory_order_relaxed);
  MW_TRACE_INSTANT("engine", "jit.compile", "code_bytes",
                   i64(rf.jit->code.size()));
  return true;
}

/// Canonicalizes structurally equal function types so call_indirect
/// signature checks are integer comparisons (MPI libraries lean on
/// call_indirect-heavy code for reduction op tables).
void compute_canonical_ids(CompiledModule& cm) {
  const auto& types = cm.module.types;
  cm.canon_type_ids.resize(types.size());
  for (u32 i = 0; i < types.size(); ++i) {
    u32 canon = i;
    for (u32 j = 0; j < i; ++j) {
      if (types[j] == types[i]) {
        canon = j;
        break;
      }
    }
    cm.canon_type_ids[i] = canon;
  }
  const u32 nfuncs = cm.module.total_funcs();
  cm.func_canon.resize(nfuncs);
  for (u32 f = 0; f < nfuncs; ++f) {
    // func_type returns a reference into types; find its index.
    const wasm::FuncType& ft = cm.module.func_type(f);
    u32 ti = u32(&ft - types.data());
    cm.func_canon[f] = cm.canon_type_ids.at(ti);
  }
}

// ---------------------------------------------------------------------------
// Tiered entry thunks.
//
// Steady: installed once the final-stage body is published (Optimizing, or
// Jit when native promotion is on); calls go straight to the executor with
// no counter traffic. A jit body carries its native entry; a body without
// one runs on the threaded interpreter.
void tiered_steady_entry(Instance& inst, const CompiledModule& cm,
                         u32 defined_index, Slot* base) {
  const FuncUnit& u = cm.tiered.units[defined_index];
  const RFunc& rf = *u.active.load(std::memory_order_acquire);
  if (rf.jit_entry != nullptr) {
    inst.run_jit(rf, base);
  } else {
    inst.run_regcode(rf, base);
  }
}

// Counting: bumps the call counter, requests promotion when a threshold
// is crossed, then runs whatever body is currently published (regcode if
// promoted, predecoded bytecode otherwise).
void tiered_counting_entry(Instance& inst, const CompiledModule& cm,
                           u32 defined_index, Slot* base) {
  TieredState& ts = cm.tiered;
  FuncUnit& u = ts.units[defined_index];
  const u64 n = u.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  const EngineTier cur = u.tier.load(std::memory_order_relaxed);
  if (ts.jit_enabled && cur != EngineTier::kJit && n >= ts.jit_threshold) {
    tier_up(cm, defined_index, EngineTier::kJit);
  } else if (cur != EngineTier::kOptimizing && cur != EngineTier::kJit) {
    if (n >= ts.opt_threshold) {
      tier_up(cm, defined_index, EngineTier::kOptimizing);
    } else if (cur == EngineTier::kInterp && n >= ts.baseline_threshold) {
      tier_up(cm, defined_index, EngineTier::kBaseline);
    }
  }
  if (const RFunc* rf = u.active.load(std::memory_order_acquire)) {
    if (rf->jit_entry != nullptr) {
      inst.run_jit(*rf, base);
    } else {
      inst.run_regcode(*rf, base);
    }
  } else {
    inst.run_predecoded(cm.predecoded.funcs[defined_index], base);
  }
}

}  // namespace

void tier_up(const CompiledModule& cm, u32 defined_index, EngineTier target) {
  MW_CHECK(target == EngineTier::kBaseline ||
               target == EngineTier::kOptimizing ||
               target == EngineTier::kJit,
           "tier_up targets a compiled tier");
  TieredState& ts = cm.tiered;
  // Never stall a rank thread behind an in-progress promotion: if another
  // thread holds the compile lock, skip — the caller runs the currently
  // published body and promotion is retried on a later call.
  std::unique_lock<std::mutex> lock(ts.mu, std::try_to_lock);
  if (!lock.owns_lock()) return;
  FuncUnit& u = ts.units[defined_index];
  if (u.active.load(std::memory_order_relaxed) != nullptr &&
      u.tier.load(std::memory_order_relaxed) >= target) {
    return;  // another rank thread won the race
  }

  trace::Scope span("engine", "tier_up");
  Stopwatch watch;
  const std::string tag = cache_tag(target, ts.opt_superinstructions,
                                    ts.opt_hoist_bounds, ts.opt_simd);
  std::unique_ptr<RFunc> body;
  bool from_cache = false;
  std::optional<FileSystemCache> cache;
  if (ts.cache_enabled) cache.emplace(ts.cache_dir);
  if (cache) {
    if (auto cached = cache->load_func(cm.hash, defined_index, tag)) {
      body = std::make_unique<RFunc>(std::move(*cached));
      from_cache = true;
    }
    MW_TRACE_INSTANT("engine", from_cache ? "cache.hit" : "cache.miss", "func",
                     i64(defined_index));
  }
  if (!body) {
    body = std::make_unique<RFunc>(lower_function(cm.module, defined_index));
    // kJit sits on top of the full optimizing pipeline: templates cover the
    // fused superinstructions, so the native code keeps their wins.
    if (target != EngineTier::kBaseline) {
      OptOptions opt = OptOptions::full();
      opt.fuse_super = ts.opt_superinstructions;
      opt.hoist_bounds = ts.opt_hoist_bounds;
      opt.simd = ts.opt_simd;
      optimize_function(*body, opt);
    }
  }
  // Native codegen (or validation + reinstall of a cache-loaded blob). On
  // failure the fully optimized body is published at kOptimizing instead —
  // the function permanently falls back to the threaded interpreter.
  bool jit_ok = false;
  if (target == EngineTier::kJit) jit_ok = attach_jit_entry(cm, *body);
  if (cache && !from_cache)
    cache->store_func(cm.hash, defined_index, tag, *body);
  // Resolve direct-threading handler addresses before anyone can see the
  // body (handlers are derived state, never serialized to the cache).
  prepare_rfunc(*body);

  const EngineTier publish_tier = target == EngineTier::kJit && !jit_ok
                                      ? EngineTier::kOptimizing
                                      : target;

  // Publish. The superseded body (if any) stays alive: another thread may
  // still be executing it.
  std::unique_ptr<RFunc>& slot = target == EngineTier::kJit ? u.jit_body
                                 : target == EngineTier::kOptimizing
                                     ? u.optimized_body
                                     : u.baseline_body;
  slot = std::move(body);
  u.state.store(FuncState::kRegcode, std::memory_order_relaxed);
  u.active.store(slot.get(), std::memory_order_release);
  u.tier.store(publish_tier, std::memory_order_release);
  // Stop counting once the function reaches its final stage: the jit stage
  // when native promotion is on (reached even on template fallback, which
  // must not be retried every call), the optimizing stage otherwise.
  if (target == EngineTier::kJit ||
      (target == EngineTier::kOptimizing && !ts.jit_enabled))
    u.entry.store(&tiered_steady_entry, std::memory_order_release);

  ts.stats.tierup_compile_ns.fetch_add(watch.elapsed_ns(),
                                       std::memory_order_relaxed);
  auto& counter = jit_ok ? ts.stats.promoted_jit
                  : publish_tier == EngineTier::kOptimizing
                      ? ts.stats.promoted_optimizing
                      : ts.stats.promoted_baseline;
  counter.fetch_add(1, std::memory_order_relaxed);
  if (from_cache)
    ts.stats.func_cache_hits.fetch_add(1, std::memory_order_relaxed);
  if (MW_TRACE_ACTIVE()) {
    trace::note_arg("func", i64(defined_index));
    trace::note_arg("from_cache", from_cache ? 1 : 0);
    trace::note_str("tier", tier_name(publish_tier));
  }
  MW_DEBUG("tier-up: func " << defined_index << " -> " << tag
                            << (from_cache ? " (cache)" : ""));
}

TierUpSnapshot tierup_snapshot(const CompiledModule& cm) {
  const TieredState& ts = cm.tiered;
  TierUpSnapshot s;
  s.funcs_total = ts.num_units;
  for (u32 i = 0; i < ts.num_units; ++i) {
    switch (ts.units[i].state.load(std::memory_order_acquire)) {
      case FuncState::kNone: break;
      case FuncState::kPredecoded: ++s.funcs_predecoded; break;
      case FuncState::kRegcode: ++s.funcs_regcode; break;
    }
  }
  for (u32 i = 0; i < ts.num_units; ++i)
    s.calls_counted += ts.units[i].calls.load(std::memory_order_relaxed);
  s.promoted_baseline = ts.stats.promoted_baseline.load();
  s.promoted_optimizing = ts.stats.promoted_optimizing.load();
  s.promoted_jit = ts.stats.promoted_jit.load();
  s.func_cache_hits = ts.stats.func_cache_hits.load();
  s.tierup_compile_ms = f64(ts.stats.tierup_compile_ns.load()) / 1e6;
  // Native-code census covers static kJit modules too (num_units == 0).
  s.jit_funcs = cm.jit_funcs.load(std::memory_order_relaxed);
  s.jit_fallback_funcs = cm.jit_fallback_funcs.load(std::memory_order_relaxed);
  if (cm.jit_arena != nullptr) s.jit_code_bytes = cm.jit_arena->code_bytes();
  // Statically compiled kJit modules have no tier units; every function was
  // compiled to RegCode ahead of time, so report them all as such.
  if (cm.tier == EngineTier::kJit) {
    s.funcs_total = cm.regcode.funcs.size();
    s.funcs_regcode = s.funcs_total;
  }
  return s;
}

std::shared_ptr<const CompiledModule> compile(std::span<const u8> bytes,
                                              const EngineConfig& cfg) {
  auto cm = std::make_shared<CompiledModule>();
  // With native codegen switched off (config or MPIWASM_JIT=0) the jit tier
  // degrades to the optimizing tier — same RegCode, threaded dispatch.
  const EngineTier tier = cfg.tier == EngineTier::kJit && !cfg.jit
                              ? EngineTier::kOptimizing
                              : cfg.tier;
  cm->tier = tier;

  Stopwatch decode_watch;
  wasm::DecodeResult decoded = wasm::decode_module(bytes);
  if (!decoded.ok()) throw CompileError("decode error: " + decoded.error);
  cm->module = std::move(*decoded.module);
  wasm::ValidationResult vr = wasm::validate_module(cm->module);
  if (!vr.ok) throw CompileError("validation error: " + vr.error);
  cm->decode_ms = decode_watch.elapsed_ms();

  // Threads ablation: with the proposal switched off (config or
  // MPIWASM_THREADS=0), shared memories are rejected outright. Atomics
  // can't validate without one, so this single gate covers the whole
  // feature.
  if (!cfg.threads) {
    for (const wasm::Limits& lim : cm->module.memories)
      if (lim.shared)
        throw CompileError(
            "module declares a shared memory but threads support is "
            "disabled (MPIWASM_THREADS=0)");
  }

  cm->hash = sha256(bytes);
  compute_canonical_ids(*cm);

  Stopwatch compile_watch;
  if (tier == EngineTier::kInterp) {
    cm->predecoded = predecode_module(cm->module);
    cm->compile_ms = compile_watch.elapsed_ms();
    return cm;
  }

  if (tier == EngineTier::kTiered) {
    // Instant startup: predecode every function (cheap, linear), defer all
    // lowering/optimization to the counting thunks.
    cm->predecoded = predecode_module(cm->module);
    TieredState& ts = cm->tiered;
    ts.num_units = u32(cm->predecoded.funcs.size());
    ts.units = std::make_unique<FuncUnit[]>(ts.num_units);
    ts.baseline_threshold = std::max<u64>(1, cfg.tierup_baseline_threshold);
    ts.opt_threshold =
        std::max<u64>(ts.baseline_threshold, cfg.tierup_opt_threshold);
    ts.jit_threshold = std::max<u64>(ts.opt_threshold, cfg.tierup_jit_threshold);
    ts.jit_enabled = cfg.jit;
    ts.cache_enabled = cfg.enable_cache;
    ts.cache_dir = cfg.cache_dir;
    ts.opt_superinstructions = cfg.opt_superinstructions;
    ts.opt_hoist_bounds = cfg.opt_hoist_bounds;
    ts.opt_simd = cfg.opt_simd;
    for (u32 i = 0; i < ts.num_units; ++i) {
      ts.units[i].state.store(FuncState::kPredecoded,
                              std::memory_order_relaxed);
      ts.units[i].entry.store(&tiered_counting_entry,
                              std::memory_order_relaxed);
    }
    cm->compile_ms = compile_watch.elapsed_ms();
    return cm;
  }

  const std::string tag = cache_tag(tier, cfg.opt_superinstructions,
                                    cfg.opt_hoist_bounds, cfg.opt_simd);
  if (cfg.enable_cache) {
    FileSystemCache cache(cfg.cache_dir);
    if (auto rm = cache.load(cm->hash, tag)) {
      cm->regcode = std::move(*rm);
      cm->loaded_from_cache = true;
      for (auto& rf : cm->regcode.funcs) prepare_rfunc(rf);
      if (tier == EngineTier::kJit) {
        // Re-validate and re-install every cached native blob (helper
        // addresses are process-specific). Blobs from a different CPU or
        // codegen layout are silently recompiled; functions that still
        // can't be compiled run on the threaded interpreter.
        for (auto& rf : cm->regcode.funcs) attach_jit_entry(*cm, rf);
      }
      cm->compile_ms = compile_watch.elapsed_ms();
      MW_TRACE_INSTANT("engine", "cache.hit", "module", 1);
      MW_DEBUG("cache hit for " << cm->hash.hex() << " (" << tag << ")");
      return cm;
    }
    MW_TRACE_INSTANT("engine", "cache.miss", "module", 1);
  }

  cm->regcode = lower_module(cm->module);
  if (tier == EngineTier::kLightOpt) {
    optimize_module(cm->regcode, OptOptions::light());
  } else if (tier == EngineTier::kOptimizing || tier == EngineTier::kJit) {
    OptOptions opt = OptOptions::full();
    opt.fuse_super = cfg.opt_superinstructions;
    opt.hoist_bounds = cfg.opt_hoist_bounds;
    opt.simd = cfg.opt_simd;
    OptStats stats = optimize_module(cm->regcode, opt);
    MW_DEBUG("optimizer: " << stats.instrs_before << " -> "
                           << stats.instrs_after << " instrs, "
                           << stats.fused_super << " superinstrs, "
                           << stats.guards_hoisted << " guards hoisted");
  }
  if (tier == EngineTier::kJit) {
    // Native codegen over the optimized RegCode; per-function fallback to
    // the threaded interpreter wherever a template is missing.
    u32 compiled = 0;
    for (auto& rf : cm->regcode.funcs)
      if (attach_jit_entry(*cm, rf)) ++compiled;
    MW_DEBUG("jit: " << compiled << "/" << cm->regcode.funcs.size()
                     << " functions native, "
                     << (cm->jit_arena ? cm->jit_arena->code_bytes() : 0)
                     << " code bytes");
  }
  // Resolve direct-threading handler addresses once per published body.
  for (auto& rf : cm->regcode.funcs) prepare_rfunc(rf);
  cm->compile_ms = compile_watch.elapsed_ms();

  if (cfg.enable_cache) {
    // For kJit this runs after codegen so the native blobs land in the
    // cache entry alongside the RegCode.
    FileSystemCache cache(cfg.cache_dir);
    cache.store(cm->hash, tag, cm->regcode);
  }
  return cm;
}

}  // namespace mpiwasm::rt
