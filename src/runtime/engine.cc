#include "runtime/engine.h"

#include "runtime/cache.h"
#include "runtime/lowering.h"
#include "runtime/optimizer.h"
#include "support/log.h"
#include "support/timing.h"
#include "wasm/decoder.h"
#include "wasm/validator.h"

namespace mpiwasm::rt {

const char* tier_name(EngineTier tier) {
  switch (tier) {
    case EngineTier::kInterp: return "interp";
    case EngineTier::kBaseline: return "baseline";
    case EngineTier::kLightOpt: return "lightopt";
    case EngineTier::kOptimizing: return "optimizing";
  }
  return "?";
}

namespace {

/// Canonicalizes structurally equal function types so call_indirect
/// signature checks are integer comparisons (MPI libraries lean on
/// call_indirect-heavy code for reduction op tables).
void compute_canonical_ids(CompiledModule& cm) {
  const auto& types = cm.module.types;
  cm.canon_type_ids.resize(types.size());
  for (u32 i = 0; i < types.size(); ++i) {
    u32 canon = i;
    for (u32 j = 0; j < i; ++j) {
      if (types[j] == types[i]) {
        canon = j;
        break;
      }
    }
    cm.canon_type_ids[i] = canon;
  }
  const u32 nfuncs = cm.module.total_funcs();
  cm.func_canon.resize(nfuncs);
  for (u32 f = 0; f < nfuncs; ++f) {
    // func_type returns a reference into types; find its index.
    const wasm::FuncType& ft = cm.module.func_type(f);
    u32 ti = u32(&ft - types.data());
    cm.func_canon[f] = cm.canon_type_ids.at(ti);
  }
}

}  // namespace

std::shared_ptr<const CompiledModule> compile(std::span<const u8> bytes,
                                              const EngineConfig& cfg) {
  auto cm = std::make_shared<CompiledModule>();
  cm->tier = cfg.tier;

  Stopwatch decode_watch;
  wasm::DecodeResult decoded = wasm::decode_module(bytes);
  if (!decoded.ok()) throw CompileError("decode error: " + decoded.error);
  cm->module = std::move(*decoded.module);
  wasm::ValidationResult vr = wasm::validate_module(cm->module);
  if (!vr.ok) throw CompileError("validation error: " + vr.error);
  cm->decode_ms = decode_watch.elapsed_ms();

  cm->hash = sha256(bytes);
  compute_canonical_ids(*cm);

  Stopwatch compile_watch;
  if (cfg.tier == EngineTier::kInterp) {
    cm->predecoded = predecode_module(cm->module);
    cm->compile_ms = compile_watch.elapsed_ms();
    return cm;
  }

  if (cfg.enable_cache) {
    FileSystemCache cache(cfg.cache_dir);
    if (auto rm = cache.load(cm->hash, tier_name(cfg.tier))) {
      cm->regcode = std::move(*rm);
      cm->loaded_from_cache = true;
      cm->compile_ms = compile_watch.elapsed_ms();
      MW_DEBUG("cache hit for " << cm->hash.hex() << " (" << tier_name(cfg.tier)
                                << ")");
      return cm;
    }
  }

  cm->regcode = lower_module(cm->module);
  if (cfg.tier == EngineTier::kLightOpt) {
    optimize_module(cm->regcode, OptOptions::light());
  } else if (cfg.tier == EngineTier::kOptimizing) {
    OptStats stats = optimize_module(cm->regcode, OptOptions::full());
    MW_DEBUG("optimizer: " << stats.instrs_before << " -> "
                           << stats.instrs_after << " instrs");
  }
  cm->compile_ms = compile_watch.elapsed_ms();

  if (cfg.enable_cache) {
    FileSystemCache cache(cfg.cache_dir);
    cache.store(cm->hash, tier_name(cfg.tier), cm->regcode);
  }
  return cm;
}

}  // namespace mpiwasm::rt
