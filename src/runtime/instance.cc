#include "runtime/instance.h"

#include <atomic>
#include <cstring>

#include "runtime/engine.h"
#include "runtime/exec.h"
#include "runtime/interp.h"
#include "runtime/jit_support.h"

namespace mpiwasm::rt {

const char* trap_kind_name(TrapKind k) {
  switch (k) {
    case TrapKind::kUnreachable: return "unreachable";
    case TrapKind::kMemoryOutOfBounds: return "out of bounds memory access";
    case TrapKind::kIntegerDivByZero: return "integer divide by zero";
    case TrapKind::kIntegerOverflow: return "integer overflow";
    case TrapKind::kInvalidConversion: return "invalid conversion to integer";
    case TrapKind::kIndirectCallTypeMismatch: return "indirect call type mismatch";
    case TrapKind::kUndefinedTableElement: return "undefined table element";
    case TrapKind::kCallStackExhausted: return "call stack exhausted";
    case TrapKind::kHostError: return "host error";
    case TrapKind::kUnalignedAtomic: return "unaligned atomic";
  }
  return "unknown trap";
}

LinearMemory& HostContext::memory() { return inst_.memory(); }
void* HostContext::user_data() { return inst_.user_data(); }

void ImportTable::add(const std::string& module, const std::string& name,
                      wasm::FuncType type, HostFn fn) {
  entries_[{module, name}] = Entry{module, name, std::move(type), std::move(fn)};
}

const ImportTable::Entry* ImportTable::lookup(const std::string& module,
                                              const std::string& name) const {
  auto it = entries_.find({module, name});
  return it == entries_.end() ? nullptr : &it->second;
}

namespace {

Slot eval_const(const wasm::ConstExpr& e) {
  Slot s;
  switch (e.kind) {
    case wasm::ConstExpr::Kind::kI32: s.u32v = u32(e.i); break;
    case wasm::ConstExpr::Kind::kI64: s.u64v = u64(e.i); break;
    case wasm::ConstExpr::Kind::kF32: s.f32v = f32(e.f); break;
    case wasm::ConstExpr::Kind::kF64: s.f64v = e.f; break;
    case wasm::ConstExpr::Kind::kGlobalGet:
      throw LinkError("imported-global initializers are not supported");
  }
  return s;
}

constexpr size_t kArenaSlots = 1 << 17;  // 2 MiB of Slot frames per thread

std::atomic<u64> g_next_instance_id{1};

}  // namespace

Instance::Instance(std::shared_ptr<const CompiledModule> cm,
                   const ImportTable& imports, void* user_data)
    : cm_(std::move(cm)), user_data_(user_data) {
  const wasm::Module& m = cm_->module;

  // Memory (at most one; imported memories unsupported).
  if (!m.memories.empty()) {
    const wasm::Limits& lim = m.memories[0];
    memory_ = LinearMemory(lim.min, lim.has_max ? lim.max : 0, lim.shared);
  }

  // Globals (module-defined only).
  globals_.resize(m.globals.size());
  for (size_t i = 0; i < m.globals.size(); ++i)
    globals_[i] = eval_const(m.globals[i].init);

  // Table.
  if (!m.tables.empty()) table_.assign(m.tables[0].min, UINT32_MAX);

  // Import resolution: every function import must have a host definition
  // with a matching signature (Wasmer-style link-time checking).
  for (const auto& imp : m.imports) {
    switch (imp.kind) {
      case wasm::ExternKind::kFunc: {
        const ImportTable::Entry* e = imports.lookup(imp.module, imp.name);
        if (e == nullptr)
          throw LinkError("unresolved import " + imp.module + "." + imp.name);
        if (!(e->type == m.types.at(imp.type_index)))
          throw LinkError("import signature mismatch for " + imp.module + "." +
                          imp.name + ": module wants " +
                          m.types.at(imp.type_index).to_string() +
                          ", host provides " + e->type.to_string());
        resolved_.push_back(e);
        break;
      }
      default:
        throw LinkError("non-function imports are not supported");
    }
  }

  apply_segments();
  instance_id_ = g_next_instance_id.fetch_add(1, std::memory_order_relaxed);

  if (m.start.has_value()) invoke_index(*m.start, {});
}

void Instance::apply_segments() {
  const wasm::Module& m = cm_->module;
  for (const auto& seg : m.datas) {
    u32 off = eval_const(seg.offset).u32v;
    memory_.check(off, seg.bytes.size());
    std::memcpy(memory_.base() + off, seg.bytes.data(), seg.bytes.size());
  }
  for (const auto& seg : m.elems) {
    u32 off = eval_const(seg.offset).u32v;
    if (u64(off) + seg.func_indices.size() > table_.size())
      throw LinkError("element segment out of table bounds");
    for (size_t i = 0; i < seg.func_indices.size(); ++i)
      table_[off + i] = seg.func_indices[i];
  }
}

std::optional<u32> Instance::exported_func(const std::string& name) const {
  const wasm::Export* e =
      cm_->module.find_export(name, wasm::ExternKind::kFunc);
  if (e == nullptr) return std::nullopt;
  return e->index;
}

Instance::ExecState& Instance::exec_state() {
  thread_local u64 cached_id = 0;
  thread_local ExecState* cached = nullptr;
  if (cached_id == instance_id_ && cached != nullptr) return *cached;
  std::lock_guard<std::mutex> lock(exec_mu_);
  std::unique_ptr<ExecState>& slot = exec_states_[std::this_thread::get_id()];
  if (!slot) {
    slot = std::make_unique<ExecState>();
    slot->arena.resize(kArenaSlots);
  }
  cached_id = instance_id_;
  cached = slot.get();
  return *cached;
}

Slot* Instance::alloc_frame(u32 slots) {
  ExecState& es = exec_state();
  if (es.arena_top + slots > es.arena.size())
    throw Trap(TrapKind::kCallStackExhausted, "frame arena exhausted");
  Slot* p = es.arena.data() + es.arena_top;
  es.arena_top += slots;
  return p;
}

void Instance::release_frame(u32 slots) {
  ExecState& es = exec_state();
  MW_CHECK(es.arena_top >= slots, "frame arena underflow");
  es.arena_top -= slots;
}

void Instance::call_function(u32 fidx, Slot* base) {
  const CompiledModule& cm = *cm_;
  const u32 imported = cm.module.num_imported_funcs();

  ExecState& es = exec_state();
  if (++es.depth > kMaxCallDepth) {
    --es.depth;
    throw Trap(TrapKind::kCallStackExhausted,
               "call depth exceeds " + std::to_string(kMaxCallDepth));
  }

  struct DepthGuard {
    int& d;
    ~DepthGuard() { --d; }
  } depth_guard{es.depth};

  if (fidx < imported) {
    HostContext ctx(*this);
    resolved_[fidx]->fn(ctx, base, base);
    return;
  }

  const u32 di = fidx - imported;
  switch (cm.tier) {
    case EngineTier::kTiered:
      // Per-function dispatch: the entry thunk reflects the unit's current
      // tier (counting/interp, counting/baseline, or steady/optimizing).
      cm.tiered.units[di].entry.load(std::memory_order_acquire)(*this, cm, di,
                                                                base);
      return;
    case EngineTier::kInterp:
      run_predecoded(cm.predecoded.funcs[di], base);
      return;
    case EngineTier::kJit: {
      // Per-function fallback: bodies without a native entry (template gap
      // or arena failure) run on the threaded interpreter.
      const RFunc& rf = cm.regcode.funcs[di];
      if (rf.jit_entry != nullptr) {
        run_jit(rf, base);
      } else {
        run_regcode(rf, base);
      }
      return;
    }
    default:
      run_regcode(cm.regcode.funcs[di], base);
      return;
  }
}

void Instance::run_predecoded(const PreFunc& f, Slot* base) {
  const u32 frame_slots = f.num_locals + f.max_stack;
  Slot* frame = alloc_frame(frame_slots);
  struct FrameGuard {
    Instance& inst;
    u32 n;
    ~FrameGuard() { inst.release_frame(n); }
  } frame_guard{*this, frame_slots};
  // Zero locals beyond params (spec: locals start zeroed), copy args.
  std::memset(frame + f.num_params, 0,
              (frame_slots - f.num_params) * sizeof(Slot));
  if (f.num_params > 0) std::memcpy(frame, base, f.num_params * sizeof(Slot));
  interp_exec(*this, f, frame);
  if (f.has_result) base[0] = frame[0];
}

void Instance::run_regcode(const RFunc& f, Slot* base) {
  Slot* frame = alloc_frame(f.num_regs);
  struct FrameGuard {
    Instance& inst;
    u32 n;
    ~FrameGuard() { inst.release_frame(n); }
  } frame_guard{*this, f.num_regs};
  std::memset(frame + f.num_params, 0,
              (f.num_regs - f.num_params) * sizeof(Slot));
  if (f.num_params > 0) std::memcpy(frame, base, f.num_params * sizeof(Slot));
  exec_regcode(*this, f, frame);
  if (f.has_result) base[0] = frame[0];
}

void Instance::run_jit(const RFunc& f, Slot* base) {
  Slot* frame = alloc_frame(f.num_regs);
  struct FrameGuard {
    Instance& inst;
    u32 n;
    ~FrameGuard() { inst.release_frame(n); }
  } frame_guard{*this, f.num_regs};
  std::memset(frame + f.num_params, 0,
              (f.num_regs - f.num_params) * sizeof(Slot));
  if (f.num_params > 0) std::memcpy(frame, base, f.num_params * sizeof(Slot));
  jit_enter(f.jit_entry, *this, frame);
  if (f.has_result) base[0] = frame[0];
}

Value Instance::invoke_index(u32 func_index, std::span<const Value> args) {
  const wasm::FuncType& ft = cm_->module.func_type(func_index);
  MW_CHECK(args.size() == ft.params.size(), "invoke: arg count mismatch");

  // Reserve a small argument window; call_function reads args in place and
  // writes the result to slot 0.
  const u32 window = u32(std::max<size_t>(args.size(), 1));
  ExecState& es = exec_state();
  const size_t saved_top = es.arena_top;
  Slot* base = alloc_frame(window);
  for (size_t i = 0; i < args.size(); ++i) base[i] = args[i].slot;
  try {
    call_function(func_index, base);
  } catch (...) {
    es.arena_top = saved_top;  // unwind any frames the trap skipped
    es.depth = 0;
    throw;
  }
  Value result;
  if (!ft.results.empty()) {
    result.type = ft.results[0];
    result.slot = base[0];
  }
  release_frame(window);
  return result;
}

Value Instance::invoke(const std::string& export_name,
                       std::span<const Value> args) {
  auto idx = exported_func(export_name);
  if (!idx.has_value())
    throw LinkError("no exported function named '" + export_name + "'");
  return invoke_index(*idx, args);
}

}  // namespace mpiwasm::rt
