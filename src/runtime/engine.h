// Compilation engine: turns Wasm binaries into executable CompiledModules.
//
// Four static tiers; the three compiled ones reproduce the paper's
// compiler-backend trade-off (Table 1):
//   kInterp     — predecode + stack-machine execution (not in Table 1;
//                 kept for differential testing and instant startup)
//   kBaseline   — linear-time stack->register lowering, no optimization
//                 (the Singlepass point of the trade-off curve)
//   kLightOpt   — one cheap pass round: copy propagation, constant
//                 folding, DCE (the Cranelift point)
//   kOptimizing — fixpoint pass pipeline with compare/branch, immediate,
//                 and mul-add fusion (the LLVM point: slowest compile,
//                 fastest run)
//
// kTiered dissolves the compile-time/run-time trade-off: the unit of
// compilation becomes the *function*, not the module. compile() only
// predecodes (instant startup, like kInterp); each function carries an
// atomic call counter and is lazily lowered to Baseline regcode, then
// re-lowered + fully optimized, as its counter crosses the configured
// thresholds. Publication is thread-safe: CompiledModule is shared across
// rank threads, so promoted bodies are handed off through atomic pointers
// and never freed while the module lives.
//
// A FileSystemCache keyed by a SHA-256 module digest (paper §3.3 uses
// BLAKE-3) lets repeated executions skip recompilation entirely; in tiered
// mode the cache holds per-function entries keyed by
// (module hash, function index, tier) so hot functions warm-start.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "runtime/interp.h"
#include "runtime/jit_arena.h"
#include "runtime/jit_support.h"
#include "runtime/regcode.h"
#include "runtime/value.h"
#include "support/sha256.h"
#include "wasm/module.h"

namespace mpiwasm::rt {

class Instance;
struct CompiledModule;

enum class EngineTier : u8 {
  kInterp = 0,
  kBaseline = 1,
  kLightOpt = 2,
  kOptimizing = 3,
  kTiered = 4,  // lazy per-function compile with dynamic tier-up
  // Native x86-64 template codegen on top of the full optimizing pipeline
  // (jit_x64.h). Functions whose RegCode contains an op without a template
  // fall back to the threaded interpreter, so kJit is never worse than
  // kOptimizing. Note kTiered sits between kOptimizing and kJit numerically
  // but is a *mode*, not a code quality level; per-function tier fields
  // only ever hold the compiled tiers, whose order is monotone.
  kJit = 5,
};

const char* tier_name(EngineTier tier);

/// Reads the MPIWASM_SIMD environment variable once per process: "0",
/// "false", or "off" disable SIMD-aware optimization (and the toolchain
/// kernels' vectorized twins); anything else — including unset — enables
/// them. This is the ablation knob behind EngineConfig::opt_simd's default
/// and the benches' scalar-vs-SIMD kernel selection (docs/TUNING.md).
bool simd_enabled_from_env();

/// Reads the MPIWASM_THREADS environment variable once per process: "0",
/// "false", or "off" disable the threads proposal (shared memories are
/// rejected at compile time and the toolchain's threaded kernel twins are
/// skipped); anything else — including unset — enables it (docs/TUNING.md).
bool threads_enabled_from_env();

struct EngineConfig {
  EngineTier tier = EngineTier::kOptimizing;
  bool enable_cache = false;
  std::string cache_dir;  // empty -> "<tmp>/mpiwasm-cache"
  // kTiered promotion thresholds (call counts). A function is lowered to
  // Baseline regcode once it has been entered `tierup_baseline_threshold`
  // times and re-compiled at the full Optimizing tier at
  // `tierup_opt_threshold`. Threshold 1 promotes on the first call.
  u64 tierup_baseline_threshold = 8;
  u64 tierup_opt_threshold = 512;
  // Third promotion stage: once a function has been entered this many times
  // it is recompiled to native code (only when `jit` is on; clamped to at
  // least tierup_opt_threshold).
  u64 tierup_jit_threshold = 4096;
  /// Master switch for native codegen, defaulting to the MPIWASM_JIT
  /// environment variable (docs/TUNING.md). Off: EngineTier::kJit degrades
  /// to kOptimizing and tiered promotion stops at the optimizing stage.
  bool jit = jit_enabled_from_env();
  // Optimizing-tier pass toggles (bench/test ablation; both on by default
  // and applied wherever the full pipeline runs — kOptimizing and tiered
  // promotions to it).
  bool opt_superinstructions = true;  // load+op, op+store, select, indexed
  bool opt_hoist_bounds = true;       // kMemGuard loop versioning + raw ops
  /// SIMD-aware optimization (v128 const folding, v128 load+op / op+store
  /// superinstructions, v128 indexed addressing). Defaults to the
  /// MPIWASM_SIMD environment variable so the whole test/bench suite can be
  /// ablated without recompiling; v128 code still *executes* when this is
  /// off — it just runs through the generic pipeline.
  bool opt_simd = simd_enabled_from_env();
  /// Threads-proposal master switch, defaulting to the MPIWASM_THREADS
  /// environment variable. Off: compile() rejects modules that declare a
  /// shared memory (atomics themselves never validate without one), giving
  /// a clean ablation leg with zero concurrency in the engine.
  bool threads = threads_enabled_from_env();
};

/// Raised when a module fails to decode or validate.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

/// Lifecycle of one function's code in tiered mode.
enum class FuncState : u8 {
  kNone = 0,        // nothing derived from the body yet
  kPredecoded = 1,  // interpreter bytecode ready (module load)
  kRegcode = 2,     // compiled regcode published (baseline or optimizing)
};

/// Entry thunk: how a call enters one function. Tiered dispatch swaps the
/// thunk as the function is promoted so steady-state calls pay no
/// counting/promotion checks.
using EntryThunk = void (*)(Instance& inst, const CompiledModule& cm,
                            u32 defined_index, Slot* base);

/// Per-function compilation unit (tiered mode). Readers are lock-free:
/// they load `entry`/`active` with acquire semantics. Writers serialize on
/// TieredState::mu and publish with release stores. Promoted bodies are
/// kept alive for the module's lifetime (another rank thread may still be
/// executing the superseded one).
struct FuncUnit {
  std::atomic<FuncState> state{FuncState::kNone};
  std::atomic<EngineTier> tier{EngineTier::kInterp};  // tier of `active`
  std::atomic<u64> calls{0};
  std::atomic<const RFunc*> active{nullptr};  // best published body
  std::atomic<EntryThunk> entry{nullptr};
  // Writer-owned storage behind the published pointers.
  std::unique_ptr<RFunc> baseline_body;
  std::unique_ptr<RFunc> optimized_body;
  std::unique_ptr<RFunc> jit_body;  // optimized body + native entry
};

/// Monotonic tier-up counters, aggregated across all rank threads.
struct TierUpStats {
  std::atomic<u64> promoted_baseline{0};
  std::atomic<u64> promoted_optimizing{0};
  std::atomic<u64> promoted_jit{0};
  std::atomic<u64> func_cache_hits{0};   // promotions served from cache
  std::atomic<u64> tierup_compile_ns{0};  // wall time spent promoting
};

/// Plain-value copy of TierUpStats for reports, plus a census of the
/// unit table's current FuncState distribution.
struct TierUpSnapshot {
  u64 funcs_total = 0;
  u64 funcs_predecoded = 0;  // still interpreter-only
  u64 funcs_regcode = 0;     // promoted to compiled code
  u64 promoted_baseline = 0;
  u64 promoted_optimizing = 0;
  u64 promoted_jit = 0;
  u64 func_cache_hits = 0;
  f64 tierup_compile_ms = 0;
  // Calls observed while counting thunks were installed (tiered mode; a
  // function stops counting once its final-stage thunk is published).
  u64 calls_counted = 0;
  // Native-tier census — filled for kJit modules and tiered modules alike.
  u64 jit_funcs = 0;           // functions running native code
  u64 jit_fallback_funcs = 0;  // template gaps: fell back to threaded interp
  u64 jit_code_bytes = 0;      // machine code installed in the arena
};

/// Mutable tiered-execution state hanging off an otherwise immutable
/// CompiledModule.
struct TieredState {
  std::unique_ptr<FuncUnit[]> units;  // parallel to Module::bodies
  u32 num_units = 0;
  u64 baseline_threshold = 8;
  u64 opt_threshold = 512;
  u64 jit_threshold = 4096;
  bool jit_enabled = false;
  bool cache_enabled = false;
  bool opt_superinstructions = true;
  bool opt_hoist_bounds = true;
  bool opt_simd = true;
  std::string cache_dir;
  std::mutex mu;  // serializes promotion compilation/publication
  TierUpStats stats;
};

/// An immutable compiled module, shareable across rank instances. (In
/// kTiered mode `tiered` is the one mutable, internally synchronized
/// exception: code is born lazily but each published body is immutable.)
struct CompiledModule {
  wasm::Module module;
  EngineTier tier = EngineTier::kOptimizing;
  RModule regcode;              // kBaseline / kLightOpt / kOptimizing
  PreModule predecoded;         // kInterp / kTiered
  std::vector<u32> canon_type_ids;  // type index -> canonical sig id
  std::vector<u32> func_canon;      // func index (combined) -> canonical sig id
  Sha256Digest hash;
  f64 compile_ms = 0;           // excludes decode/validate
  f64 decode_ms = 0;
  bool loaded_from_cache = false;
  mutable TieredState tiered;   // kTiered only
  // Native-code state (kJit, and kTiered promotions to the jit stage). The
  // arena owns the executable mappings for the module's lifetime; installs
  // are serialized (compile() is single-threaded, tiered promotions hold
  // TieredState::mu). The counters feed TierUpSnapshot.
  mutable std::unique_ptr<JitArena> jit_arena;
  mutable std::atomic<u64> jit_funcs{0};
  mutable std::atomic<u64> jit_fallback_funcs{0};
};

/// Compiles `bytes` under `cfg`. Throws CompileError on malformed or
/// type-incorrect modules.
std::shared_ptr<const CompiledModule> compile(std::span<const u8> bytes,
                                              const EngineConfig& cfg);

/// Promotes defined function `defined_index` to `target` (kBaseline,
/// kOptimizing, or kJit) and publishes the body; no-op if the function is
/// already
/// at or above `target`, or if another thread currently holds the
/// promotion lock (callers fall through to the published body and retry
/// on a later call — promotion never stalls execution). Normally driven
/// by the counting entry thunk, exposed for tests and warm-up hooks.
void tier_up(const CompiledModule& cm, u32 defined_index, EngineTier target);

/// Reads the module's tier-up counters (zeros for non-tiered modules).
TierUpSnapshot tierup_snapshot(const CompiledModule& cm);

}  // namespace mpiwasm::rt
