// Compilation engine: turns Wasm binaries into executable CompiledModules.
//
// Four tiers; the three compiled ones reproduce the paper's
// compiler-backend trade-off (Table 1):
//   kInterp     — predecode + stack-machine execution (not in Table 1;
//                 kept for differential testing and instant startup)
//   kBaseline   — linear-time stack->register lowering, no optimization
//                 (the Singlepass point of the trade-off curve)
//   kLightOpt   — one cheap pass round: copy propagation, constant
//                 folding, DCE (the Cranelift point)
//   kOptimizing — fixpoint pass pipeline with compare/branch, immediate,
//                 and mul-add fusion (the LLVM point: slowest compile,
//                 fastest run)
//
// A FileSystemCache keyed by a SHA-256 module digest (paper §3.3 uses
// BLAKE-3) lets repeated executions skip recompilation entirely.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "runtime/interp.h"
#include "runtime/regcode.h"
#include "support/sha256.h"
#include "wasm/module.h"

namespace mpiwasm::rt {

enum class EngineTier : u8 {
  kInterp = 0,
  kBaseline = 1,
  kLightOpt = 2,
  kOptimizing = 3,
};

const char* tier_name(EngineTier tier);

struct EngineConfig {
  EngineTier tier = EngineTier::kOptimizing;
  bool enable_cache = false;
  std::string cache_dir;  // empty -> "<tmp>/mpiwasm-cache"
};

/// Raised when a module fails to decode or validate.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

/// An immutable compiled module, shareable across rank instances.
struct CompiledModule {
  wasm::Module module;
  EngineTier tier = EngineTier::kOptimizing;
  RModule regcode;              // kBaseline / kOptimizing
  PreModule predecoded;         // kInterp
  std::vector<u32> canon_type_ids;  // type index -> canonical sig id
  std::vector<u32> func_canon;      // func index (combined) -> canonical sig id
  Sha256Digest hash;
  f64 compile_ms = 0;           // excludes decode/validate
  f64 decode_ms = 0;
  bool loaded_from_cache = false;
};

/// Compiles `bytes` under `cfg`. Throws CompileError on malformed or
/// type-incorrect modules.
std::shared_ptr<const CompiledModule> compile(std::span<const u8> bytes,
                                              const EngineConfig& cfg);

}  // namespace mpiwasm::rt
