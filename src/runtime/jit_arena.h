// Executable code arena for the JIT tier.
//
// True W^X: the arena is a memfd mapped twice — one PROT_READ|PROT_WRITE
// view the installer writes through, one PROT_READ|PROT_EXEC view the CPU
// executes from. No page ever holds W and X at once, and installation never
// flips protections on pages another rank thread may be executing (tiered
// promotions publish code while the module is live). Falls back to a single
// RWX anonymous mapping where memfd_create is unavailable.
#pragma once

#include <memory>
#include <vector>

#include "runtime/regcode.h"

namespace mpiwasm::rt {

class JitArena {
 public:
  JitArena();
  ~JitArena();
  JitArena(const JitArena&) = delete;
  JitArena& operator=(const JitArena&) = delete;

  /// False when no executable mapping could be created (hardened kernels);
  /// install() always returns null in that case and callers fall back to
  /// the threaded interpreter.
  bool available() const;

  /// Copies `blob.code` into the arena, patches each reloc's movabs imm64
  /// with the current process's helper address, and returns the executable
  /// entry point (blob code starts at its prologue). Returns null when the
  /// arena is unavailable or a reloc references an unknown helper.
  void (*install(const JitBlob& blob))(void*);

  /// Total machine-code bytes installed so far.
  u64 code_bytes() const { return code_bytes_; }

 private:
  struct Chunk;
  Chunk* grow_chunk(size_t min_bytes);

  std::vector<std::unique_ptr<Chunk>> chunks_;
  u64 code_bytes_ = 0;
};

}  // namespace mpiwasm::rt
