// Module instantiation: memory, globals, tables, import resolution, and the
// uniform call path shared by every execution tier and by host functions.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "runtime/memory.h"
#include "runtime/value.h"
#include "wasm/module.h"

namespace mpiwasm::rt {

struct CompiledModule;
struct PreFunc;
struct RFunc;
class Instance;

/// Context handed to host functions; the embedder uses it for the paper's
/// address translation (§3.5): host functions read/write the module's
/// linear memory directly through `memory()`.
class HostContext {
 public:
  explicit HostContext(Instance& inst) : inst_(inst) {}
  Instance& instance() { return inst_; }
  LinearMemory& memory();
  /// Opaque per-instance pointer installed by the embedder (the Env of
  /// paper §3.7 hangs off this).
  void* user_data();

 private:
  Instance& inst_;
};

/// Host (embedder-provided) function: args in `args[0..n)`, single result
/// (if the signature has one) written to `*result`.
using HostFn =
    std::function<void(HostContext&, const Slot* args, Slot* result)>;

/// Named host functions the module's imports resolve against. Mirrors
/// Wasmer's ImportObject: WASI lives in "wasi_snapshot_preview1", the MPI
/// layer in "env" (paper Listing 3).
class ImportTable {
 public:
  struct Entry {
    std::string module, name;
    wasm::FuncType type;
    HostFn fn;
  };

  void add(const std::string& module, const std::string& name,
           wasm::FuncType type, HostFn fn);
  const Entry* lookup(const std::string& module, const std::string& name) const;
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, Entry> entries_;
};

/// Raised at instantiation when an import has no matching host definition
/// or its signature disagrees.
class LinkError : public std::runtime_error {
 public:
  explicit LinkError(const std::string& what) : std::runtime_error(what) {}
};

class Instance {
 public:
  /// Instantiates: allocates memory, applies data/elem segments, resolves
  /// imports, then runs the start function if present.
  Instance(std::shared_ptr<const CompiledModule> cm, const ImportTable& imports,
           void* user_data = nullptr);

  const CompiledModule& compiled() const { return *cm_; }
  LinearMemory& memory() { return memory_; }
  void* user_data() { return user_data_; }
  void set_user_data(void* p) { user_data_ = p; }

  std::optional<u32> exported_func(const std::string& name) const;

  /// Invokes an exported function by name.
  Value invoke(const std::string& export_name, std::span<const Value> args = {});
  /// Invokes by function index (combined import+defined space).
  Value invoke_index(u32 func_index, std::span<const Value> args);

  // --- Executor internals (public for the tier executors) ----------------
  /// Calls function `fidx`; args pre-placed at `base[0..nargs)`; the result
  /// (if any) is written to `base[0]`. In tiered mode this dispatches
  /// through the module's FuncUnit table (each function may be at a
  /// different tier); otherwise the module-wide tier picks the executor.
  void call_function(u32 fidx, Slot* base);

  /// Runs a predecoded body: allocates the frame, zeroes locals, copies the
  /// args from `base`, executes, and writes the result back to `base[0]`.
  void run_predecoded(const PreFunc& f, Slot* base);
  /// Same, for a lowered RegCode body (any compiled tier).
  void run_regcode(const RFunc& f, Slot* base);
  /// Same, for a body with a native entry point (f.jit_entry != nullptr);
  /// enters the code through a trap activation (jit_enter).
  void run_jit(const RFunc& f, Slot* base);
  Slot* globals() { return globals_.data(); }
  std::vector<u32>& table() { return table_; }

  Slot* alloc_frame(u32 slots);
  void release_frame(u32 slots);

 private:
  /// Per-thread execution state. With shared memories a single Instance is
  /// entered concurrently by several guest threads (wasi thread-spawn), so
  /// the frame arena and call-depth counter cannot be instance members.
  struct ExecState {
    std::vector<Slot> arena;
    size_t arena_top = 0;
    int depth = 0;
  };

  /// Returns the calling thread's ExecState, creating it on first entry.
  /// A thread_local (id, pointer) pair caches the lookup; the id guards
  /// against address reuse after an Instance is destroyed.
  ExecState& exec_state();

  void apply_segments();

  std::shared_ptr<const CompiledModule> cm_;
  LinearMemory memory_;
  std::vector<Slot> globals_;
  std::vector<u32> table_;
  std::vector<const ImportTable::Entry*> resolved_;  // by import ordinal
  void* user_data_ = nullptr;
  u64 instance_id_ = 0;  // process-unique, assigned at construction
  std::mutex exec_mu_;
  std::map<std::thread::id, std::unique_ptr<ExecState>> exec_states_;
  static constexpr int kMaxCallDepth = 1000;
};

}  // namespace mpiwasm::rt
