#include "runtime/optimizer.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "runtime/arith.h"

namespace mpiwasm::rt {
namespace {

bool is_branch(ROp op) {
  switch (op) {
    case ROp::kBr: case ROp::kBrIf: case ROp::kBrIfNot: case ROp::kBrTable:
    case ROp::kBrIfI32Eq: case ROp::kBrIfI32Ne: case ROp::kBrIfI32LtS:
    case ROp::kBrIfI32LtU: case ROp::kBrIfI32GtS: case ROp::kBrIfI32GtU:
    case ROp::kBrIfI32LeS: case ROp::kBrIfI32LeU: case ROp::kBrIfI32GeS:
    case ROp::kBrIfI32GeU:
      return true;
    default:
      return false;
  }
}

bool is_terminator(ROp op) {
  return op == ROp::kBr || op == ROp::kBrTable || op == ROp::kReturn ||
         op == ROp::kReturnVoid || op == ROp::kUnreachable;
}

/// Register reads of an instruction (calls handled by callers).
void collect_reads(const RInstr& in, std::vector<u32>& out) {
  out.clear();
  switch (in.op) {
    case ROp::kNop: case ROp::kConst: case ROp::kConstV128:
    case ROp::kGlobalGet: case ROp::kBr: case ROp::kReturnVoid:
    case ROp::kUnreachable: case ROp::kMemorySize:
      break;
    case ROp::kMov:
      out.push_back(in.b);
      break;
    case ROp::kSelect:
      out.push_back(in.a); out.push_back(in.b); out.push_back(in.c);
      break;
    case ROp::kGlobalSet: case ROp::kBrIf: case ROp::kBrIfNot:
    case ROp::kBrTable: case ROp::kReturn: case ROp::kMemoryGrow:
      out.push_back(in.a);
      break;
    case ROp::kMemoryCopy: case ROp::kMemoryFill:
      out.push_back(in.a); out.push_back(in.b); out.push_back(in.c);
      break;
    case ROp::kCall:
      for (u32 i = 0; i < in.b; ++i) out.push_back(in.a + i);
      break;
    case ROp::kCallIndirect:
      for (u32 i = 0; i < in.b + 1; ++i) out.push_back(in.a + i);
      break;
    case ROp::kBrIfI32Eq: case ROp::kBrIfI32Ne: case ROp::kBrIfI32LtS:
    case ROp::kBrIfI32LtU: case ROp::kBrIfI32GtS: case ROp::kBrIfI32GtU:
    case ROp::kBrIfI32LeS: case ROp::kBrIfI32LeU: case ROp::kBrIfI32GeS:
    case ROp::kBrIfI32GeU:
      out.push_back(in.a); out.push_back(in.b);
      break;
    case ROp::kF64MulAdd:
      out.push_back(in.b); out.push_back(in.c); out.push_back(in.d);
      break;
    case ROp::kI32AddImm: case ROp::kI64AddImm: case ROp::kI32ShlImm:
    case ROp::kI32ShrUImm: case ROp::kI32AndImm: case ROp::kI32MulImm:
      out.push_back(in.b);
      break;
    // Loads read the address in b.
    case ROp::kI32Load: case ROp::kI64Load: case ROp::kF32Load:
    case ROp::kF64Load: case ROp::kI32Load8S: case ROp::kI32Load8U:
    case ROp::kI32Load16S: case ROp::kI32Load16U: case ROp::kI64Load8S:
    case ROp::kI64Load8U: case ROp::kI64Load16S: case ROp::kI64Load16U:
    case ROp::kI64Load32S: case ROp::kI64Load32U: case ROp::kV128Load:
      out.push_back(in.b);
      break;
    // Stores read address (a) and value (b).
    case ROp::kI32Store: case ROp::kI64Store: case ROp::kF32Store:
    case ROp::kF64Store: case ROp::kI32Store8: case ROp::kI32Store16:
    case ROp::kI64Store8: case ROp::kI64Store16: case ROp::kI64Store32:
    case ROp::kV128Store:
      out.push_back(in.a); out.push_back(in.b);
      break;
    default:
      // Numeric ops: unops read b; binops read b and c. We conservatively
      // report both; b==c for unops is harmless.
      out.push_back(in.b);
      out.push_back(in.c);
      break;
  }
}

bool writes_dest(const RInstr& in) {
  switch (in.op) {
    case ROp::kNop: case ROp::kGlobalSet: case ROp::kBr: case ROp::kBrIf:
    case ROp::kBrIfNot: case ROp::kBrTable: case ROp::kReturn:
    case ROp::kReturnVoid: case ROp::kUnreachable: case ROp::kMemoryCopy:
    case ROp::kMemoryFill:
    case ROp::kI32Store: case ROp::kI64Store: case ROp::kF32Store:
    case ROp::kF64Store: case ROp::kI32Store8: case ROp::kI32Store16:
    case ROp::kI64Store8: case ROp::kI64Store16: case ROp::kI64Store32:
    case ROp::kV128Store:
    case ROp::kBrIfI32Eq: case ROp::kBrIfI32Ne: case ROp::kBrIfI32LtS:
    case ROp::kBrIfI32LtU: case ROp::kBrIfI32GtS: case ROp::kBrIfI32GtU:
    case ROp::kBrIfI32LeS: case ROp::kBrIfI32LeU: case ROp::kBrIfI32GeS:
    case ROp::kBrIfI32GeU:
      return false;
    default:
      return true;
  }
}

/// Instructions that may be removed when their destination is dead: no
/// traps, no control flow, no stores/calls/global writes.
bool is_pure(ROp op) {
  switch (op) {
    case ROp::kMov: case ROp::kConst: case ROp::kConstV128: case ROp::kSelect:
    case ROp::kGlobalGet:
    case ROp::kI32Eqz: case ROp::kI32Eq: case ROp::kI32Ne: case ROp::kI32LtS:
    case ROp::kI32LtU: case ROp::kI32GtS: case ROp::kI32GtU: case ROp::kI32LeS:
    case ROp::kI32LeU: case ROp::kI32GeS: case ROp::kI32GeU:
    case ROp::kI64Eqz: case ROp::kI64Eq: case ROp::kI64Ne: case ROp::kI64LtS:
    case ROp::kI64LtU: case ROp::kI64GtS: case ROp::kI64GtU: case ROp::kI64LeS:
    case ROp::kI64LeU: case ROp::kI64GeS: case ROp::kI64GeU:
    case ROp::kF32Eq: case ROp::kF32Ne: case ROp::kF32Lt: case ROp::kF32Gt:
    case ROp::kF32Le: case ROp::kF32Ge:
    case ROp::kF64Eq: case ROp::kF64Ne: case ROp::kF64Lt: case ROp::kF64Gt:
    case ROp::kF64Le: case ROp::kF64Ge:
    case ROp::kI32Clz: case ROp::kI32Ctz: case ROp::kI32Popcnt:
    case ROp::kI32Add: case ROp::kI32Sub: case ROp::kI32Mul:
    case ROp::kI32And: case ROp::kI32Or: case ROp::kI32Xor: case ROp::kI32Shl:
    case ROp::kI32ShrS: case ROp::kI32ShrU: case ROp::kI32Rotl: case ROp::kI32Rotr:
    case ROp::kI64Clz: case ROp::kI64Ctz: case ROp::kI64Popcnt:
    case ROp::kI64Add: case ROp::kI64Sub: case ROp::kI64Mul:
    case ROp::kI64And: case ROp::kI64Or: case ROp::kI64Xor: case ROp::kI64Shl:
    case ROp::kI64ShrS: case ROp::kI64ShrU: case ROp::kI64Rotl: case ROp::kI64Rotr:
    case ROp::kF32Abs: case ROp::kF32Neg: case ROp::kF32Ceil: case ROp::kF32Floor:
    case ROp::kF32Trunc: case ROp::kF32Nearest: case ROp::kF32Sqrt:
    case ROp::kF32Add: case ROp::kF32Sub: case ROp::kF32Mul: case ROp::kF32Div:
    case ROp::kF32Min: case ROp::kF32Max: case ROp::kF32Copysign:
    case ROp::kF64Abs: case ROp::kF64Neg: case ROp::kF64Ceil: case ROp::kF64Floor:
    case ROp::kF64Trunc: case ROp::kF64Nearest: case ROp::kF64Sqrt:
    case ROp::kF64Add: case ROp::kF64Sub: case ROp::kF64Mul: case ROp::kF64Div:
    case ROp::kF64Min: case ROp::kF64Max: case ROp::kF64Copysign:
    case ROp::kI32WrapI64: case ROp::kI64ExtendI32S: case ROp::kI64ExtendI32U:
    case ROp::kF32ConvertI32S: case ROp::kF32ConvertI32U:
    case ROp::kF32ConvertI64S: case ROp::kF32ConvertI64U: case ROp::kF32DemoteF64:
    case ROp::kF64ConvertI32S: case ROp::kF64ConvertI32U:
    case ROp::kF64ConvertI64S: case ROp::kF64ConvertI64U: case ROp::kF64PromoteF32:
    case ROp::kI32ReinterpretF32: case ROp::kI64ReinterpretF64:
    case ROp::kF32ReinterpretI32: case ROp::kF64ReinterpretI64:
    case ROp::kI32Extend8S: case ROp::kI32Extend16S: case ROp::kI64Extend8S:
    case ROp::kI64Extend16S: case ROp::kI64Extend32S:
    case ROp::kI8x16Splat: case ROp::kI32x4Splat: case ROp::kI64x2Splat:
    case ROp::kF32x4Splat: case ROp::kF64x2Splat:
    case ROp::kI32x4ExtractLane: case ROp::kI64x2ExtractLane:
    case ROp::kF32x4ExtractLane: case ROp::kF64x2ExtractLane:
    case ROp::kI8x16Eq: case ROp::kV128Not: case ROp::kV128And:
    case ROp::kV128Or: case ROp::kV128Xor: case ROp::kV128AnyTrue:
    case ROp::kI32x4Add: case ROp::kI32x4Sub: case ROp::kI32x4Mul:
    case ROp::kI64x2Add: case ROp::kI64x2Sub:
    case ROp::kF32x4Add: case ROp::kF32x4Sub: case ROp::kF32x4Mul:
    case ROp::kF32x4Div:
    case ROp::kF64x2Add: case ROp::kF64x2Sub: case ROp::kF64x2Mul:
    case ROp::kF64x2Div:
    case ROp::kI32AddImm: case ROp::kI64AddImm: case ROp::kI32ShlImm:
    case ROp::kI32ShrUImm: case ROp::kI32AndImm: case ROp::kI32MulImm:
    case ROp::kF64MulAdd:
      return true;
    default:
      return false;  // div/rem/trunc trap; loads trap; calls/stores effect
  }
}

struct Cfg {
  std::vector<size_t> leaders;               // sorted block start indices
  std::vector<size_t> block_of;              // instr -> block id
  std::vector<std::vector<u32>> successors;  // block id -> block ids

  size_t block_start(size_t b) const { return leaders[b]; }
  size_t block_end(size_t b, size_t n) const {
    return b + 1 < leaders.size() ? leaders[b + 1] : n;
  }
};

std::vector<u32> branch_targets(const RFunc& f, const RInstr& in) {
  std::vector<u32> out;
  if (in.op == ROp::kBrTable) {
    for (u32 t : f.br_pool[in.imm]) out.push_back(t);
  } else if (is_branch(in.op)) {
    out.push_back(u32(in.imm));
  }
  return out;
}

Cfg build_cfg(const RFunc& f) {
  const size_t n = f.code.size();
  std::vector<bool> leader(n + 1, false);
  leader[0] = true;
  for (size_t i = 0; i < n; ++i) {
    const RInstr& in = f.code[i];
    if (is_branch(in.op) || is_terminator(in.op)) {
      for (u32 t : branch_targets(f, in)) {
        MW_CHECK(t <= n, "branch target out of range");
        if (t < n) leader[t] = true;
      }
      if (i + 1 < n) leader[i + 1] = true;
    }
  }
  Cfg cfg;
  cfg.block_of.resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (leader[i]) cfg.leaders.push_back(i);
    cfg.block_of[i] = cfg.leaders.size() - 1;
  }
  cfg.successors.resize(cfg.leaders.size());
  for (size_t b = 0; b < cfg.leaders.size(); ++b) {
    size_t last = cfg.block_end(b, n) - 1;
    const RInstr& in = f.code[last];
    if (is_terminator(in.op)) {
      for (u32 t : branch_targets(f, in))
        if (t < n) cfg.successors[b].push_back(u32(cfg.block_of[t]));
    } else {
      if (is_branch(in.op))
        for (u32 t : branch_targets(f, in))
          if (t < n) cfg.successors[b].push_back(u32(cfg.block_of[t]));
      if (last + 1 < n) cfg.successors[b].push_back(u32(cfg.block_of[last + 1]));
    }
  }
  return cfg;
}

// ---- Pass 1+2: block-local copy propagation & constant folding -----------

std::optional<u64> fold_binop(ROp op, u64 x, u64 y) {
  using namespace arith;
  auto xi32 = i32(u32(x)); auto yi32 = i32(u32(y));
  auto xu32 = u32(x); auto yu32 = u32(y);
  auto xi64 = i64(x); auto yi64 = i64(y);
  switch (op) {
    case ROp::kI32Add: return u64(u32(xi32 + yi32));
    case ROp::kI32Sub: return u64(u32(xi32 - yi32));
    case ROp::kI32Mul: return u64(u32(xi32 * yi32));
    case ROp::kI32And: return u64(xu32 & yu32);
    case ROp::kI32Or: return u64(xu32 | yu32);
    case ROp::kI32Xor: return u64(xu32 ^ yu32);
    case ROp::kI32Shl: return u64(i32_shl(xu32, yu32));
    case ROp::kI32ShrS: return u64(u32(i32_shr_s(xi32, yu32)));
    case ROp::kI32ShrU: return u64(i32_shr_u(xu32, yu32));
    case ROp::kI32Eq: return u64(xi32 == yi32);
    case ROp::kI32Ne: return u64(xi32 != yi32);
    case ROp::kI32LtS: return u64(xi32 < yi32);
    case ROp::kI32LtU: return u64(xu32 < yu32);
    case ROp::kI32GtS: return u64(xi32 > yi32);
    case ROp::kI32GtU: return u64(xu32 > yu32);
    case ROp::kI32LeS: return u64(xi32 <= yi32);
    case ROp::kI32LeU: return u64(xu32 <= yu32);
    case ROp::kI32GeS: return u64(xi32 >= yi32);
    case ROp::kI32GeU: return u64(xu32 >= yu32);
    case ROp::kI64Add: return u64(xi64 + yi64);
    case ROp::kI64Sub: return u64(xi64 - yi64);
    case ROp::kI64Mul: return u64(xi64 * yi64);
    case ROp::kI64And: return x & y;
    case ROp::kI64Or: return x | y;
    case ROp::kI64Xor: return x ^ y;
    case ROp::kI64Shl: return i64_shl(x, y);
    default: return std::nullopt;
  }
}

struct ImmFusion {
  ROp fused;
  bool commutative;
};

std::optional<ImmFusion> imm_fusable(ROp op) {
  switch (op) {
    case ROp::kI32Add: return ImmFusion{ROp::kI32AddImm, true};
    case ROp::kI64Add: return ImmFusion{ROp::kI64AddImm, true};
    case ROp::kI32Shl: return ImmFusion{ROp::kI32ShlImm, false};
    case ROp::kI32ShrU: return ImmFusion{ROp::kI32ShrUImm, false};
    case ROp::kI32And: return ImmFusion{ROp::kI32AndImm, true};
    case ROp::kI32Mul: return ImmFusion{ROp::kI32MulImm, true};
    default: return std::nullopt;
  }
}

u32 local_forward_pass(RFunc& f, const Cfg& cfg) {
  u32 changes = 0;
  std::vector<u32> reads;
  const size_t n = f.code.size();
  for (size_t b = 0; b < cfg.leaders.size(); ++b) {
    std::unordered_map<u32, u32> copy_of;   // reg -> original reg
    std::unordered_map<u32, u64> const_of;  // reg -> constant bits
    auto resolve = [&](u32 r) {
      auto it = copy_of.find(r);
      return it == copy_of.end() ? r : it->second;
    };
    auto kill = [&](u32 r) {
      copy_of.erase(r);
      const_of.erase(r);
      for (auto it = copy_of.begin(); it != copy_of.end();) {
        if (it->second == r) it = copy_of.erase(it);
        else ++it;
      }
    };
    for (size_t i = cfg.block_start(b); i < cfg.block_end(b, n); ++i) {
      RInstr& in = f.code[i];
      // Copy propagation on register operands.
      switch (in.op) {
        case ROp::kMov: {
          u32 src = resolve(in.b);
          if (src != in.b) { in.b = src; ++changes; }
          break;
        }
        case ROp::kCall: case ROp::kCallIndirect:
          break;  // contiguous arg window: cannot rewrite operands
        case ROp::kSelect:
          // a is both source and dest; only b/c are rewritable.
          if (resolve(in.b) != in.b) { in.b = resolve(in.b); ++changes; }
          if (resolve(in.c) != in.c) { in.c = resolve(in.c); ++changes; }
          break;
        default: {
          collect_reads(in, reads);
          bool dest_written = writes_dest(in);
          for (u32 r : reads) {
            u32 rr = resolve(r);
            if (rr == r) continue;
            // Rewrite matching operand fields (careful: dest alias in.a).
            if (!dest_written && in.a == r) { in.a = rr; ++changes; }
            if (in.op == ROp::kF64MulAdd) {
              if (in.b == r) { in.b = rr; ++changes; }
              if (in.c == r) { in.c = rr; ++changes; }
              if (in.d == r) { in.d = rr; ++changes; }
            } else {
              if (in.b == r) { in.b = rr; ++changes; }
              if (writes_dest(in) && in.c == r &&
                  in.op != ROp::kMov) { in.c = rr; ++changes; }
              if (!writes_dest(in) && in.c == r) { in.c = rr; ++changes; }
            }
          }
          break;
        }
      }
      // Constant folding.
      if (writes_dest(in)) {
        bool b_const = const_of.count(in.b) != 0;
        bool c_const = const_of.count(in.c) != 0;
        if (in.op != ROp::kMov && in.op != ROp::kConst &&
            in.op != ROp::kConstV128 && in.op != ROp::kSelect &&
            in.op != ROp::kCall && in.op != ROp::kCallIndirect) {
          if (b_const && c_const) {
            if (auto v = fold_binop(in.op, const_of[in.b], const_of[in.c])) {
              in = RInstr{ROp::kConst, in.a, 0, 0, 0, *v};
              ++changes;
            }
          } else if (c_const) {
            if (auto fu = imm_fusable(in.op)) {
              in = RInstr{fu->fused, in.a, in.b, 0, 0, const_of[in.c]};
              ++changes;
            }
          } else if (b_const) {
            if (auto fu = imm_fusable(in.op); fu && fu->commutative) {
              in = RInstr{fu->fused, in.a, in.c, 0, 0, const_of[in.b]};
              ++changes;
            }
          }
        }
        if (in.op == ROp::kMov && const_of.count(in.b)) {
          in = RInstr{ROp::kConst, in.a, 0, 0, 0, const_of[in.b]};
          ++changes;
        }
      }
      // Update maps.
      if (writes_dest(in)) {
        kill(in.a);
        if (in.op == ROp::kConst) const_of[in.a] = in.imm;
        else if (in.op == ROp::kMov && in.a != in.b) copy_of[in.a] = resolve(in.b);
      }
      if (in.op == ROp::kMemoryGrow) kill(in.a);
    }
  }
  return changes;
}

// ---- Pass 3: peephole fusion ----------------------------------------------

std::optional<ROp> fused_brif(ROp cmp, bool negate) {
  switch (cmp) {
    case ROp::kI32Eq: return negate ? ROp::kBrIfI32Ne : ROp::kBrIfI32Eq;
    case ROp::kI32Ne: return negate ? ROp::kBrIfI32Eq : ROp::kBrIfI32Ne;
    case ROp::kI32LtS: return negate ? ROp::kBrIfI32GeS : ROp::kBrIfI32LtS;
    case ROp::kI32LtU: return negate ? ROp::kBrIfI32GeU : ROp::kBrIfI32LtU;
    case ROp::kI32GtS: return negate ? ROp::kBrIfI32LeS : ROp::kBrIfI32GtS;
    case ROp::kI32GtU: return negate ? ROp::kBrIfI32LeU : ROp::kBrIfI32GtU;
    case ROp::kI32LeS: return negate ? ROp::kBrIfI32GtS : ROp::kBrIfI32LeS;
    case ROp::kI32LeU: return negate ? ROp::kBrIfI32GtU : ROp::kBrIfI32LeU;
    case ROp::kI32GeS: return negate ? ROp::kBrIfI32LtS : ROp::kBrIfI32GeS;
    case ROp::kI32GeU: return negate ? ROp::kBrIfI32LtU : ROp::kBrIfI32GeU;
    default: return std::nullopt;
  }
}

// ---- Liveness ---------------------------------------------------------------

/// Per-instruction live-out sets (reg live immediately after the instruction
/// executes, considering all CFG paths). O(n_instr * n_regs) memory, which is
/// fine at RegCode function sizes.
struct Liveness {
  std::vector<std::vector<bool>> out;  // [instr][reg]
  bool live_after(size_t i, u32 reg) const { return out[i][reg]; }
};

Liveness compute_liveness(const RFunc& f, const Cfg& cfg) {
  const size_t n = f.code.size();
  const size_t nb = cfg.leaders.size();
  const u32 nregs = f.num_regs;
  std::vector<std::vector<bool>> live_in(nb, std::vector<bool>(nregs, false));
  std::vector<std::vector<bool>> block_out(nb, std::vector<bool>(nregs, false));
  std::vector<u32> reads;

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = nb; b-- > 0;) {
      std::vector<bool> out(nregs, false);
      for (u32 s : cfg.successors[b])
        for (u32 r = 0; r < nregs; ++r)
          if (live_in[s][r]) out[r] = true;
      std::vector<bool> in = out;
      for (size_t i = cfg.block_end(b, n); i-- > cfg.block_start(b);) {
        const RInstr& instr = f.code[i];
        if (writes_dest(instr)) in[instr.a] = false;
        collect_reads(instr, reads);
        for (u32 r : reads) in[r] = true;
      }
      if (in != live_in[b]) { live_in[b] = in; changed = true; }
      block_out[b] = out;
    }
  }

  Liveness lv;
  lv.out.assign(n, {});
  for (size_t b = 0; b < nb; ++b) {
    std::vector<bool> live = block_out[b];
    for (size_t i = cfg.block_end(b, n); i-- > cfg.block_start(b);) {
      const RInstr& instr = f.code[i];
      lv.out[i] = live;
      if (writes_dest(instr)) live[instr.a] = false;
      collect_reads(instr, reads);
      for (u32 r : reads) live[r] = true;
    }
  }
  return lv;
}

// ---- Pass 3: peephole fusion ----------------------------------------------

u32 peephole_pass(RFunc& f, const Cfg& cfg, const Liveness& lv) {
  u32 changes = 0;
  const size_t n = f.code.size();
  for (size_t b = 0; b < cfg.leaders.size(); ++b) {
    for (size_t i = cfg.block_start(b); i + 1 < cfg.block_end(b, n); ++i) {
      RInstr& a = f.code[i];
      RInstr& next = f.code[i + 1];
      // cmp t <- x, y ; br_if t  -->  br_if_cmp x, y   (t dead after br_if)
      if ((next.op == ROp::kBrIf || next.op == ROp::kBrIfNot) &&
          next.a == a.a && writes_dest(a) && !lv.live_after(i + 1, a.a)) {
        if (auto fop = fused_brif(a.op, next.op == ROp::kBrIfNot)) {
          next = RInstr{*fop, a.b, a.c, 0, 0, next.imm};
          a = RInstr{ROp::kNop};
          ++changes;
          continue;
        }
        // eqz t <- x ; br_if t  -->  br_if_not x  (and the inverse)
        if (a.op == ROp::kI32Eqz) {
          next.op = next.op == ROp::kBrIf ? ROp::kBrIfNot : ROp::kBrIf;
          next.a = a.b;
          a = RInstr{ROp::kNop};
          ++changes;
          continue;
        }
      }
      // f64.mul t <- x, y ; f64.add d <- t, z  -->  fma d <- x, y, z
      // Legal when the mul's value dies at the add: either the add
      // overwrites t, or t is not live past the add.
      if (a.op == ROp::kF64Mul && next.op == ROp::kF64Add &&
          (next.a == a.a || !lv.live_after(i + 1, a.a))) {
        u32 t = a.a;
        if (next.b == t && next.c != t) {
          next = RInstr{ROp::kF64MulAdd, next.a, a.b, a.c, next.c, 0};
          a = RInstr{ROp::kNop};
          ++changes;
        } else if (next.c == t && next.b != t) {
          next = RInstr{ROp::kF64MulAdd, next.a, a.b, a.c, next.b, 0};
          a = RInstr{ROp::kNop};
          ++changes;
        }
      }
    }
  }
  return changes;
}

// ---- Pass 4: DCE ------------------------------------------------------------

u32 dce_pass(RFunc& f, const Liveness& lv) {
  u32 changes = 0;
  for (size_t i = 0; i < f.code.size(); ++i) {
    RInstr& in = f.code[i];
    if (in.op == ROp::kNop) continue;
    if (is_pure(in.op) && writes_dest(in) && !lv.live_after(i, in.a)) {
      in = RInstr{ROp::kNop};
      ++changes;
    }
    if (in.op == ROp::kMov && in.a == in.b) {
      in = RInstr{ROp::kNop};
      ++changes;
    }
  }
  return changes;
}

// ---- Pass 5: branch threading + compaction --------------------------------

void thread_branches(RFunc& f) {
  auto final_target = [&](u32 t) {
    u32 seen = 0;
    while (t < f.code.size() && f.code[t].op == ROp::kBr && seen < 8) {
      t = u32(f.code[t].imm);
      ++seen;
    }
    return t;
  };
  for (auto& in : f.code) {
    if (is_branch(in.op) && in.op != ROp::kBrTable)
      in.imm = final_target(u32(in.imm));
  }
  for (auto& pool : f.br_pool)
    for (u32& t : pool) t = final_target(t);
}

void compact(RFunc& f) {
  const size_t n = f.code.size();
  std::vector<u32> remap(n + 1, 0);
  u32 next = 0;
  for (size_t i = 0; i < n; ++i) {
    remap[i] = next;
    if (f.code[i].op != ROp::kNop) ++next;
  }
  remap[n] = next;
  std::vector<RInstr> out;
  out.reserve(next);
  for (const auto& in : f.code)
    if (in.op != ROp::kNop) out.push_back(in);
  for (auto& in : out) {
    if (is_branch(in.op) && in.op != ROp::kBrTable) in.imm = remap[in.imm];
  }
  for (auto& pool : f.br_pool)
    for (u32& t : pool) t = remap[t];
  f.code = std::move(out);
}

}  // namespace

OptStats optimize_function(RFunc& f, const OptOptions& opts) {
  OptStats stats;
  stats.instrs_before = f.code.size();
  for (u32 round = 0; round < opts.max_rounds; ++round) {
    ++stats.rounds;
    Cfg cfg = build_cfg(f);
    u32 changes = local_forward_pass(f, cfg);
    Liveness live = compute_liveness(f, cfg);
    if (opts.fuse) {
      changes += peephole_pass(f, cfg, live);
      // Peephole invalidates liveness; recompute before DCE.
      live = compute_liveness(f, cfg);
    }
    changes += dce_pass(f, live);
    thread_branches(f);
    compact(f);
    if (changes == 0) break;
  }
  stats.instrs_after = f.code.size();
  return stats;
}

OptStats optimize_module(RModule& m, const OptOptions& opts) {
  OptStats total;
  for (auto& f : m.funcs) {
    OptStats s = optimize_function(f, opts);
    total.instrs_before += s.instrs_before;
    total.instrs_after += s.instrs_after;
    total.rounds = std::max(total.rounds, s.rounds);
  }
  return total;
}

}  // namespace mpiwasm::rt
